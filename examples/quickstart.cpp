// Quickstart: the smallest useful Distributed Filaments program.
//
// Builds a 4-node simulated cluster, puts an array in distributed shared memory, creates one
// run-to-completion filament per element (each node takes a strip), squares every element, and
// sums the result with a reduction. Run: build/examples/quickstart
#include <cstdio>

#include "src/core/dfil.h"

using namespace dfil;

namespace {

constexpr int kElements = 10000;

core::GlobalArray1D<double> g_data;

// A filament is a stackless thread: a code pointer plus a few argument words. This one squares
// one element. Reading/writing DSM may suspend the executing server thread on a page fault —
// another server thread runs meanwhile, overlapping the page fetch with computation.
void SquareElement(core::NodeEnv& env, int64_t i, int64_t, int64_t) {
  const double v = g_data.Read(env, static_cast<size_t>(i));
  g_data.Write(env, static_cast<size_t>(i), v * v);
  env.ChargeWork(Microseconds(2.0));  // model the cost of the real computation
}

}  // namespace

int main() {
  core::ClusterConfig cfg;
  cfg.nodes = 4;
  core::Cluster cluster(cfg);

  // Shared data is laid out before the cluster starts; addresses mean the same on every node.
  g_data = core::GlobalArray1D<double>::Alloc(cluster.layout(), kElements, "data");

  core::RunReport report = cluster.Run([&](core::NodeEnv& env) {
    // SPMD: this body runs on every node. Node 0 initializes; everyone synchronizes; each node
    // creates filaments for its strip; a reduction both sums and acts as the final barrier.
    if (env.node() == 0) {
      for (int i = 0; i < kElements; ++i) {
        g_data.Write(env, i, 1.0 + i % 7);
      }
    }
    env.Barrier();

    const int per = kElements / env.nodes();
    const int lo = env.node() * per;
    const int hi = env.node() == env.nodes() - 1 ? kElements : lo + per;
    const core::PoolHandle pool = env.CreatePool();
    for (int i = lo; i < hi; ++i) {
      env.CreateFilament(pool, &SquareElement, i);
    }
    env.RunPools();

    double local = 0;
    for (int i = lo; i < hi; ++i) {
      local += g_data.Read(env, i);  // our own strip: local pages, no faults
    }
    const double total = env.Reduce(local, core::ReduceOp::kSum);
    if (env.node() == 0) {
      std::printf("sum of squares = %.0f\n", total);
    }
  });

  std::printf("completed=%s virtual time=%.3f ms over %d nodes\n",
              report.completed ? "yes" : "no", ToMilliseconds(report.makespan), cfg.nodes);
  std::printf("messages on the wire: %llu\n",
              static_cast<unsigned long long>(report.net.messages_sent));
  return report.completed ? 0 : 1;
}
