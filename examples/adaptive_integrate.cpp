// Adaptive integration with fork/join filaments and dynamic load balancing (paper §2.3, §4.3).
//
// Integrates a function whose cost is wildly uneven across the domain. The natural program is
// divide-and-conquer: each filament bisects its interval and forks both halves. Distributed
// Filaments makes this efficient on a cluster with three mechanisms this example surfaces in its
// output: binomial-tree initial distribution (forks ship until every node has work), dynamic
// pruning (deep forks become plain calls), and receiver-initiated stealing (idle nodes poll
// round-robin for surplus filaments).
#include <cmath>
#include <cstdio>

#include "src/core/dfil.h"

using namespace dfil;

namespace {

// Sharp ridge near x = 0.2: the left part of the domain holds most of the work.
double F(double x) { return std::sin(3 * x) + 2.0 + 500.0 / (1.0 + 2500.0 * (x - 0.2) * (x - 0.2)); }

constexpr double kTolerance = 1e-8;

core::FjResult Integrate(core::NodeEnv& env, const core::FjArgs& a) {
  const double lo = a.d[0], hi = a.d[1], flo = a.d[2], fhi = a.d[3];
  const double mid = 0.5 * (lo + hi);
  const double fmid = F(mid);
  env.ChargeWork(Microseconds(19.0));
  const double whole = 0.5 * (flo + fhi) * (hi - lo);
  const double halves = 0.5 * (flo + fmid) * (mid - lo) + 0.5 * (fmid + fhi) * (hi - mid);
  if (std::fabs(whole - halves) <= kTolerance * (hi - lo) || hi - lo < 1e-12) {
    return core::FjResult{halves, 0};
  }
  core::FjArgs left{{lo, mid, flo, fmid}, {}};
  core::FjArgs right{{mid, hi, fmid, fhi}, {}};
  core::FjHandle hl = env.Fork(&Integrate, left);
  core::FjHandle hr = env.Fork(&Integrate, right);
  const double sum = env.Join(hl).d + env.Join(hr).d;
  return core::FjResult{sum, 0};
}

}  // namespace

int main() {
  core::ClusterConfig cfg;
  cfg.nodes = 8;
  cfg.wake_at_front = true;   // fork/join anti-thrashing wake policy
  cfg.fj.steal_enabled = true;   // imbalanced workload: stealing is essential here
  core::Cluster cluster(cfg);

  double integral = 0;
  core::RunReport report = cluster.Run([&](core::NodeEnv& env) {
    core::FjArgs root{{0.0, 1.0, F(0.0), F(1.0)}, {}};
    core::FjResult res = env.RunForkJoin(&Integrate, root);
    if (env.node() == 0) {
      integral = res.d;
    }
  });

  std::printf("integral of f over [0,1] = %.9f\n", integral);
  std::printf("virtual time: %.3f s on %d nodes (completed=%s)\n\n", report.seconds(), cfg.nodes,
              report.completed ? "yes" : "no");
  std::printf("%-5s %10s %8s %8s %8s %8s %8s\n", "node", "executed", "shipped", "pruned",
              "steal-ok", "denied", "threads");
  for (const auto& nr : report.nodes) {
    std::printf("%-5d %10llu %8llu %8llu %8llu %8llu %8llu\n", nr.node,
                static_cast<unsigned long long>(nr.filaments.filaments_run),
                static_cast<unsigned long long>(nr.filaments.forks_sent),
                static_cast<unsigned long long>(nr.filaments.forks_pruned),
                static_cast<unsigned long long>(nr.filaments.steals_succeeded),
                static_cast<unsigned long long>(nr.filaments.steals_denied),
                static_cast<unsigned long long>(nr.filaments.server_threads_started));
  }
  return report.completed ? 0 : 1;
}
