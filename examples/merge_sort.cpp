// Distributed merge sort — fork/join filaments over DSM (the paper lists merge sort among the
// balanced fork/join applications for which load balancing is NOT worth its page traffic, §2.3).
//
// The array lives in distributed shared memory; each fork/join filament sorts a segment (halves
// sorted by forked children, then merged in place through DSM accesses). The migratory protocol
// moves segment pages to whichever node does the merge. Stealing is off: the tree is balanced.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "src/core/dfil.h"

using namespace dfil;

namespace {

constexpr int kElements = 1 << 15;
constexpr int kCutoff = 1 << 10;  // below this, sort locally

core::GlobalArray1D<int64_t> g_data;
core::GlobalArray1D<int64_t> g_scratch;

// Sort [lo, hi) of the DSM array. Charges ~n log n comparison costs.
core::FjResult SortSegment(core::NodeEnv& env, const core::FjArgs& a) {
  const int64_t lo = a.i[0];
  const int64_t hi = a.i[1];
  const int64_t n = hi - lo;
  if (n <= kCutoff) {
    int64_t* seg = g_data.Span(env, lo, n, dsm::AccessMode::kWrite);
    std::sort(seg, seg + n);
    env.ChargeWork(Microseconds(0.1) * n * 10);  // ~ n log2(cutoff) comparisons
    return core::FjResult{};
  }
  const int64_t mid = lo + n / 2;
  core::FjArgs left{{}, {lo, mid}};
  core::FjArgs right{{}, {mid, hi}};
  core::FjHandle hl = env.Fork(&SortSegment, left);
  core::FjHandle hr = env.Fork(&SortSegment, right);
  env.Join(hl);
  env.Join(hr);

  // Merge the two sorted halves through DSM (pages migrate to this node).
  const int64_t* src = g_data.Span(env, lo, n, dsm::AccessMode::kRead);
  int64_t* dst = g_scratch.Span(env, lo, n, dsm::AccessMode::kWrite);
  std::merge(src, src + (mid - lo), src + (mid - lo), src + n, dst);
  int64_t* back = g_data.Span(env, lo, n, dsm::AccessMode::kWrite);
  std::copy(dst, dst + n, back);
  env.ChargeWork(Microseconds(0.1) * n * 2);
  return core::FjResult{};
}

}  // namespace

int main() {
  core::ClusterConfig cfg;
  cfg.nodes = 8;
  cfg.dsm.pcp = dsm::Pcp::kMigratory;
  cfg.wake_at_front = true;
  cfg.fj.steal_enabled = false;  // balanced tree: page acquisition would outweigh the balance gain
  core::Cluster cluster(cfg);

  g_data = core::GlobalArray1D<int64_t>::Alloc(cluster.layout(), kElements, "data");
  g_scratch = core::GlobalArray1D<int64_t>::Alloc(cluster.layout(), kElements, "scratch");

  bool sorted = false;
  core::RunReport report = cluster.Run([&](core::NodeEnv& env) {
    if (env.node() == 0) {
      // Deterministic pseudo-random fill.
      uint64_t x = 0x2545F4914F6CDD1DULL;
      for (int i = 0; i < kElements; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        g_data.Write(env, i, static_cast<int64_t>(x % 1000000));
      }
    }
    env.Barrier();

    core::FjArgs root{{}, {0, kElements}};
    env.RunForkJoin(&SortSegment, root);

    if (env.node() == 0) {
      sorted = true;
      int64_t prev = g_data.Read(env, 0);
      for (int i = 1; i < kElements; ++i) {
        const int64_t cur = g_data.Read(env, i);
        if (cur < prev) {
          sorted = false;
          break;
        }
        prev = cur;
      }
    }
  });

  std::printf("sorted %d elements across %d nodes: %s\n", kElements, cfg.nodes,
              sorted ? "OK" : "FAILED");
  std::printf("virtual time %.3f s; %llu messages; completed=%s\n", report.seconds(),
              static_cast<unsigned long long>(report.net.messages_sent),
              report.completed ? "yes" : "no");
  uint64_t faults = 0;
  for (const auto& nr : report.nodes) {
    faults += nr.dsm.read_faults + nr.dsm.write_faults;
  }
  std::printf("page faults cluster-wide: %llu (migratory pages follow the merges)\n",
              static_cast<unsigned long long>(faults));
  return report.completed && sorted ? 0 : 1;
}
