// Visualizing communication/computation overlap.
//
// Runs a small Jacobi-style workload with tracing enabled and writes a Chrome trace-event file
// (open chrome://tracing or https://ui.perfetto.dev and load /tmp/dfil_trace.json). Each node is
// a process row; each server thread a track. The paper's §2.2 mechanism is directly visible:
// while one server thread sits inside a "fault pXX" span, another thread's "pool N" span runs —
// that concurrency in virtual time is the masked page-fetch latency.
#include <cstdio>
#include <fstream>

#include "src/core/dfil.h"

using namespace dfil;

namespace {

constexpr int kN = 64;

struct State {
  core::GlobalArray2D<double> grid[2];
  int src = 0;
};

void Relax(core::NodeEnv& env, int64_t i, int64_t j, int64_t) {
  auto* st = static_cast<State*>(env.user_ctx);
  if (i == 0 || j == 0 || i == kN - 1 || j == kN - 1) {
    return;
  }
  const auto& u = st->grid[st->src];
  const auto& v = st->grid[1 - st->src];
  v.Write(env, i, j,
          0.25 * (u.Read(env, i - 1, j) + u.Read(env, i + 1, j) + u.Read(env, i, j - 1) +
                  u.Read(env, i, j + 1)));
  env.ChargeWork(env.runtime().costs().jacobi_point);
}

}  // namespace

int main() {
  core::ClusterConfig cfg;
  cfg.nodes = 4;
  cfg.trace_enabled = true;
  cfg.dsm.pcp = dsm::Pcp::kImplicitInvalidate;
  core::Cluster cluster(cfg);
  auto g0 = core::GlobalArray2D<double>::Alloc(cluster.layout(), kN, kN, false, "g0");
  auto g1 = core::GlobalArray2D<double>::Alloc(cluster.layout(), kN, kN, false, "g1");

  std::vector<State> states(cfg.nodes);
  core::RunReport report = cluster.Run([&](core::NodeEnv& env) {
    State& st = states[env.node()];
    st.grid[0] = g0;
    st.grid[1] = g1;
    env.user_ctx = &st;
    if (env.node() == 0) {
      for (int i = 0; i < kN; ++i) {
        for (int j = 0; j < kN; ++j) {
          g0.Write(env, i, j, i == 0 ? 100.0 : 0.0);
          g1.Write(env, i, j, i == 0 ? 100.0 : 0.0);
        }
      }
    }
    env.Barrier();
    // Adaptive pools: after the profiling sweep the tracer shows the per-page pools frontloaded
    // ahead of the quiet pool on every iteration.
    core::ParallelIterate2D(env, kN, kN, &Relax, [&](int iter) {
      env.Barrier();
      st.src = 1 - st.src;
      return iter + 1 < 12;
    });
  });

  const char* path = "/tmp/dfil_trace.json";
  std::ofstream out(path);
  report.trace->WriteChromeTrace(out);
  std::printf("run complete: %.3f virtual seconds, %zu trace events -> %s\n", report.seconds(),
              report.trace->event_count(), path);
  std::printf("open chrome://tracing (or ui.perfetto.dev) and load the file to see pool spans\n"
              "overlapping page-fault spans — the paper's masked communication latency.\n");
  return report.completed ? 0 : 1;
}
