// Heat diffusion with iterative filaments — the paper's flagship workload style (§4.2).
//
// Simulates a heated plate: fixed-temperature edges, interior relaxed by Jacobi iteration until
// convergence. One iterative filament per interior point; three pools per node (top edge, bottom
// edge, interior) so the neighbour-page fetches overlap with interior computation; a max-
// reduction per iteration doubles as the barrier. Prints the convergence trace and an ASCII
// rendering of the final temperature field.
#include <cmath>
#include <cstdio>
#include <vector>

#include "src/core/dfil.h"

using namespace dfil;

namespace {

constexpr int kN = 64;
constexpr double kEps = 1e-3;
constexpr int kMaxIters = 2000;

struct PlateState {
  core::GlobalArray2D<double> grid[2];
  int src = 0;
  double local_max = 0;
};

void RelaxPoint(core::NodeEnv& env, int64_t i, int64_t j, int64_t) {
  auto* st = static_cast<PlateState*>(env.user_ctx);
  const auto& u = st->grid[st->src];
  const auto& v = st->grid[1 - st->src];
  const double next = 0.25 * (u.Read(env, i - 1, j) + u.Read(env, i + 1, j) +
                              u.Read(env, i, j - 1) + u.Read(env, i, j + 1));
  v.Write(env, i, j, next);
  const double diff = std::fabs(next - u.Read(env, i, j));
  if (diff > st->local_max) {
    st->local_max = diff;
  }
  env.ChargeWork(env.runtime().costs().jacobi_point);
}

}  // namespace

int main() {
  core::ClusterConfig cfg;
  cfg.nodes = 4;
  cfg.dsm.pcp = dsm::Pcp::kImplicitInvalidate;  // regular sharing pattern: no invalidation traffic
  core::Cluster cluster(cfg);

  auto g0 = core::GlobalArray2D<double>::Alloc(cluster.layout(), kN, kN, false, "plate0");
  auto g1 = core::GlobalArray2D<double>::Alloc(cluster.layout(), kN, kN, false, "plate1");

  std::vector<double> final_plate(kN * kN, 0.0);
  std::vector<PlateState> states(cfg.nodes);
  int iterations = 0;

  core::RunReport report = cluster.Run([&](core::NodeEnv& env) {
    PlateState& st = states[env.node()];
    st.grid[0] = g0;
    st.grid[1] = g1;
    env.user_ctx = &st;

    // Each node initializes its strip: hot spot on the top edge, cold elsewhere.
    const int rows_per = kN / env.nodes();
    const int lo = env.node() * rows_per;
    const int hi = env.node() == env.nodes() - 1 ? kN : lo + rows_per;
    for (int i = lo; i < hi; ++i) {
      for (int j = 0; j < kN; ++j) {
        double val = 0.0;
        if (i == 0 && j > kN / 4 && j < 3 * kN / 4) {
          val = 100.0;  // the heater
        }
        g0.Write(env, i, j, val);
        g1.Write(env, i, j, val);
      }
    }
    env.Barrier();

    const int first = std::max(lo, 1);
    const int last = std::min(hi, kN - 1);
    if (first < last) {
      const core::PoolHandle top = env.CreatePool();
      const core::PoolHandle bottom = env.CreatePool();
      const core::PoolHandle interior = env.CreatePool();
      auto fill = [&](core::PoolHandle pool, int i) {
        for (int j = 1; j < kN - 1; ++j) {
          env.CreateFilament(pool, &RelaxPoint, i, j);
        }
      };
      fill(top, first);
      if (last - 1 != first) {
        fill(bottom, last - 1);
      }
      for (int i = first + 1; i < last - 1; ++i) {
        fill(interior, i);
      }
    }

    env.RunIterative([&](int iter) {
      const double residual = env.Reduce(st.local_max, core::ReduceOp::kMax);
      st.local_max = 0;
      st.src = 1 - st.src;
      if (env.node() == 0 && iter % 200 == 0) {
        std::printf("iteration %4d: residual %.6f\n", iter, residual);
      }
      iterations = iter + 1;
      return residual >= kEps && iter + 1 < kMaxIters;
    });

    // Extract this node's strip of the converged plate.
    const auto& result = st.grid[st.src];
    for (int i = lo; i < hi; ++i) {
      for (int j = 0; j < kN; ++j) {
        final_plate[i * kN + j] = result.Read(env, i, j);
      }
    }
  });

  std::printf("\nfinished after %d iterations (eps=1e-3 or iteration cap); virtual time %.2f s on %d nodes\n", iterations,
              report.seconds(), cfg.nodes);
  std::printf("temperature field (every 4th point):\n");
  const char* shades = " .:-=+*#%@";
  for (int i = 0; i < kN; i += 4) {
    for (int j = 0; j < kN; j += 2) {
      const int level = std::min(9, static_cast<int>(final_plate[i * kN + j] / 10.0));
      std::putchar(shades[level]);
    }
    std::putchar('\n');
  }
  return report.completed ? 0 : 1;
}
