// Tests for the critical-path engine and the wait-state accounting it rests on: merged-histogram
// percentile edge cases, the exact run/serve/wait clock ledger, schedule invariance of the
// recorder, the end-to-end path builder (synthetic traces and a real traced cluster run), the
// critpath share gate, and the flight-recorder dump/replay pipeline.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "src/apps/fuzz_driver.h"
#include "src/apps/jacobi.h"
#include "src/common/trace.h"
#include "src/common/waitstate.h"
#include "src/core/cluster.h"
#include "src/core/metrics_io.h"
#include "tools/report_lib.h"

namespace dfil {
namespace {

// --- HistSummary: merged-percentile edge cases (the report-side half of Histogram) ---

report::HistSummary OneBucket(double low, double high, double count, double min, double max) {
  report::HistSummary h;
  h.count = static_cast<uint64_t>(count);
  h.sum = count * (low + high) / 2.0;
  h.min = min;
  h.max = max;
  h.buckets.push_back({low, high, count});
  return h;
}

TEST(HistSummaryTest, EmptyAndSingleSample) {
  report::HistSummary empty;
  EXPECT_DOUBLE_EQ(empty.Percentile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(empty.Percentile(50.0), 0.0);
  EXPECT_DOUBLE_EQ(empty.Percentile(100.0), 0.0);

  const report::HistSummary one = OneBucket(64.0, 128.0, 1.0, 100.0, 100.0);
  // Every quantile of a single sample is that sample (clamped to [min, max]).
  EXPECT_DOUBLE_EQ(one.Percentile(0.0), 100.0);
  EXPECT_DOUBLE_EQ(one.Percentile(50.0), 100.0);
  EXPECT_DOUBLE_EQ(one.Percentile(100.0), 100.0);
}

TEST(HistSummaryTest, ExtremeQuantilesClampToObservedRange) {
  report::HistSummary h = OneBucket(1.0, 2.0, 10.0, 1.25, 1.75);
  // Interpolation over the full [1, 2) bucket would leave [min, max]; the clamp keeps q=0 and
  // q=100 at the actually-observed extremes.
  EXPECT_DOUBLE_EQ(h.Percentile(0.0), 1.25);
  EXPECT_DOUBLE_EQ(h.Percentile(100.0), 1.75);
  EXPECT_GE(h.Percentile(50.0), 1.25);
  EXPECT_LE(h.Percentile(50.0), 1.75);
}

TEST(HistSummaryTest, PercentileStraddlesBucketBoundary) {
  // 50 samples in [1, 2), 50 in [2, 4): p50 must come from the first bucket, p51 from the
  // second — the rank walk may not smear across the boundary.
  report::HistSummary h = OneBucket(1.0, 2.0, 50.0, 1.0, 4.0);
  h.count = 100;
  h.buckets.push_back({2.0, 4.0, 50.0});
  EXPECT_LE(h.Percentile(50.0), 2.0);
  EXPECT_GE(h.Percentile(51.0), 2.0);
  EXPECT_GE(h.Percentile(99.0), h.Percentile(51.0));
}

TEST(HistSummaryTest, MergeIsAssociativeAndOrderInsensitive) {
  const report::HistSummary a = OneBucket(1.0, 2.0, 10.0, 1.0, 1.9);
  const report::HistSummary b = OneBucket(2.0, 4.0, 30.0, 2.0, 3.9);
  const report::HistSummary c = OneBucket(1.0, 2.0, 5.0, 1.2, 1.8);

  report::HistSummary ab_c = a;
  ab_c.Merge(b);
  ab_c.Merge(c);
  report::HistSummary a_bc = b;
  a_bc.Merge(c);
  a_bc.Merge(a);

  EXPECT_EQ(ab_c.count, a_bc.count);
  EXPECT_DOUBLE_EQ(ab_c.sum, a_bc.sum);
  EXPECT_DOUBLE_EQ(ab_c.min, a_bc.min);
  EXPECT_DOUBLE_EQ(ab_c.max, a_bc.max);
  ASSERT_EQ(ab_c.buckets.size(), a_bc.buckets.size());
  for (double p : {0.0, 25.0, 50.0, 90.0, 99.0, 100.0}) {
    EXPECT_DOUBLE_EQ(ab_c.Percentile(p), a_bc.Percentile(p)) << "p=" << p;
  }
  // Merging an empty summary is the identity, in both directions.
  report::HistSummary with_empty = a;
  with_empty.Merge(report::HistSummary{});
  EXPECT_EQ(with_empty.count, a.count);
  report::HistSummary from_empty;
  from_empty.Merge(a);
  EXPECT_DOUBLE_EQ(from_empty.Percentile(50.0), a.Percentile(50.0));
}

// --- Wait-state ledger: the accounting invariant ---

core::RunReport SmallJacobiRun(bool waitstate, bool trace) {
  apps::JacobiParams p;
  p.n = 128;
  p.iterations = 3;
  core::ClusterConfig cfg;
  cfg.nodes = 4;
  cfg.costs = sim::CostModel::SunIpcEthernet();
  cfg.network = core::NetworkKind::kSharedEthernet;
  cfg.dsm.pcp = dsm::Pcp::kImplicitInvalidate;
  cfg.waitstate_enabled = waitstate;
  cfg.trace_enabled = trace;
  apps::AppRun run = apps::RunJacobiDf(p, cfg);
  EXPECT_TRUE(run.report.completed) << run.report.deadlock_report;
  return run.report;
}

TEST(WaitStateTest, RunServeWaitSumsToFinalClockExactly) {
  const core::RunReport r = SmallJacobiRun(/*waitstate=*/true, /*trace=*/false);
  for (const core::NodeReport& nr : r.nodes) {
    // The three ledgers are the only clock-advance paths, so the invariant is exact at SimTime
    // (nanosecond) resolution — not approximate.
    const SimTime accounted =
        nr.waits.run_time() + nr.waits.serve_time() + nr.waits.wait_time();
    EXPECT_EQ(accounted, nr.final_clock) << "node " << nr.node;
    EXPECT_GE(nr.final_clock, nr.finished_at);
    EXPECT_GT(nr.waits.run_time(), 0) << "node " << nr.node;
  }
  // The blocked-interval ring saw events on every node of a faulting multi-node run.
  for (const core::NodeReport& nr : r.nodes) {
    EXPECT_GT(nr.waits.events_seen(), 0u) << "node " << nr.node;
  }
}

TEST(WaitStateTest, RecorderOnOffIsScheduleInvariant) {
  const core::RunReport on = SmallJacobiRun(/*waitstate=*/true, /*trace=*/false);
  const core::RunReport off = SmallJacobiRun(/*waitstate=*/false, /*trace=*/false);
  EXPECT_EQ(on.makespan, off.makespan);
  EXPECT_EQ(on.net.messages_sent, off.net.messages_sent);
  EXPECT_EQ(on.events, off.events);
  ASSERT_EQ(on.nodes.size(), off.nodes.size());
  for (size_t i = 0; i < on.nodes.size(); ++i) {
    EXPECT_EQ(on.nodes[i].finished_at, off.nodes[i].finished_at);
    EXPECT_EQ(on.nodes[i].dsm.read_faults, off.nodes[i].dsm.read_faults);
    // Off really is off: the ledgers stay zero, so the invariant is waitstate-only.
    EXPECT_EQ(off.nodes[i].waits.events_seen(), 0u);
    EXPECT_EQ(off.nodes[i].waits.run_time(), 0);
  }
}

TEST(WaitStateTest, EpochSeriesTracksBarriers) {
  const core::RunReport r = SmallJacobiRun(/*waitstate=*/true, /*trace=*/false);
  std::ostringstream os;
  core::WriteMetricsJson(r, "epoch_series", os);
  report::RunSummary run;
  std::string error;
  ASSERT_TRUE(report::ParseRun(os.str(), &run, &error)) << error;
  EXPECT_EQ(run.schema_version, 2);
  // Provenance names the schedule-picking knobs.
  EXPECT_EQ(run.provenance.at("nodes"), "4");
  EXPECT_EQ(run.provenance.at("pcp"), "implicit_invalidate");
  EXPECT_EQ(run.provenance.at("waitstate"), "on");
  for (const report::RunSummary::Node& n : run.per_node) {
    ASSERT_FALSE(n.epochs.empty()) << "node " << n.node;
    double prev_epoch = 0.0;
    double prev_release = 0.0;
    for (const auto& row : n.epochs) {
      EXPECT_EQ(row.at("epoch"), prev_epoch + 1.0);
      EXPECT_GE(row.at("released_at_us"), prev_release);
      EXPECT_GE(row.at("barrier_wait_us"), 0.0);
      EXPECT_GE(row.at("wait_us"), 0.0);
      EXPECT_GE(row.at("faults"), 0.0);
      prev_epoch = row.at("epoch");
      prev_release = row.at("released_at_us");
    }
    // The v2 ledgers survive the JSON round trip and still satisfy the invariant. Each exported
    // field is independently rounded to 0.1 us, so the sum of ~10 terms may drift by a few
    // tenths — 1 us of slack is still far inside the 1% acceptance bound.
    double wait_total = 0.0;
    for (const auto& [kind, us] : n.wait_us) {
      wait_total += us;
    }
    EXPECT_NEAR(n.run_us + n.serve_us + wait_total, n.final_clock_us, 1.0);
  }
}

// --- Critical path: synthetic trace with a known answer ---

std::string SyntheticTrace() {
  // Two nodes, one barrier. Node 0 computes [12, 30] with a fault on page 5 in [15, 20]; node 1
  // is the last arriver (enters the e1 barrier at 11 vs node 0's 10) and finishes earlier.
  TraceRecorder rec;
  rec.Begin(0, 1, "sync", "reduce e1", Microseconds(10.0));
  rec.End(0, 1, Microseconds(12.0));
  rec.Begin(0, 2, "dsm", "fault p5", Microseconds(15.0));
  rec.End(0, 2, Microseconds(20.0));
  rec.Instant(0, 1, "node", "done", Microseconds(30.0));
  rec.Begin(1, 1, "sync", "reduce e1", Microseconds(11.0));
  rec.End(1, 1, Microseconds(12.5));
  rec.Instant(1, 1, "node", "done", Microseconds(25.0));
  std::ostringstream os;
  rec.WriteChromeTrace(os);
  return os.str();
}

TEST(CritPathTest, SyntheticTwoNodePathIsExact) {
  const report::CriticalPath path = report::BuildCriticalPath(SyntheticTrace());
  ASSERT_TRUE(path.ok) << path.error;
  EXPECT_EQ(path.critical_node, 0);
  EXPECT_DOUBLE_EQ(path.completion_us, 30.0);

  // Expected hops: compute n1 [0,11], barrier e1 [11,12], compute n0 [12,15], fault p5 [15,20],
  // compute n0 [20,30].
  ASSERT_EQ(path.segments.size(), 5u);
  EXPECT_EQ(path.segments[0].kind, report::PathSegment::Kind::kCompute);
  EXPECT_EQ(path.segments[0].node, 1);
  EXPECT_DOUBLE_EQ(path.segments[0].end_us, 11.0);
  EXPECT_EQ(path.segments[1].kind, report::PathSegment::Kind::kBarrier);
  EXPECT_EQ(path.segments[1].epoch, 1u);
  EXPECT_DOUBLE_EQ(path.segments[1].duration_us(), 1.0);
  EXPECT_EQ(path.segments[2].kind, report::PathSegment::Kind::kCompute);
  EXPECT_EQ(path.segments[2].node, 0);
  EXPECT_EQ(path.segments[3].kind, report::PathSegment::Kind::kPageFault);
  EXPECT_EQ(path.segments[3].page, 5u);
  EXPECT_DOUBLE_EQ(path.segments[3].duration_us(), 5.0);
  EXPECT_EQ(path.segments[4].kind, report::PathSegment::Kind::kCompute);
  EXPECT_DOUBLE_EQ(path.segments[4].end_us, 30.0);

  EXPECT_DOUBLE_EQ(path.compute_us, 24.0);
  EXPECT_DOUBLE_EQ(path.fault_us, 5.0);
  EXPECT_DOUBLE_EQ(path.barrier_us, 1.0);
  EXPECT_DOUBLE_EQ(report::WhatIfZeroCostPages(path), 25.0);

  const std::vector<report::BlameRow> blame = report::BlamePath(path);
  ASSERT_FALSE(blame.empty());
  double blame_total = 0.0;
  for (const report::BlameRow& row : blame) {
    blame_total += row.us;
  }
  EXPECT_DOUBLE_EQ(blame_total, path.completion_us);
  EXPECT_EQ(blame.front().label, "compute n0");  // 13 us on node 0 tops the ranking
}

TEST(CritPathTest, RejectsTraceWithoutDoneInstants) {
  TraceRecorder rec;
  rec.Begin(0, 1, "sync", "reduce e1", Microseconds(1.0));
  rec.End(0, 1, Microseconds(2.0));
  std::ostringstream os;
  rec.WriteChromeTrace(os);
  const report::CriticalPath path = report::BuildCriticalPath(os.str());
  EXPECT_FALSE(path.ok);
  EXPECT_NE(path.error.find("done"), std::string::npos);
}

// --- Critical path: a real traced cluster run ---

TEST(CritPathTest, RealRunPathIsConnectedAndTilesCompletionTime) {
  const core::RunReport r = SmallJacobiRun(/*waitstate=*/true, /*trace=*/true);
  ASSERT_NE(r.trace, nullptr);
  std::ostringstream os;
  r.trace->WriteChromeTrace(os);
  const report::CriticalPath path = report::BuildCriticalPath(os.str());
  ASSERT_TRUE(path.ok) << path.error;
  ASSERT_FALSE(path.segments.empty());

  // Connected end-to-end: starts at 0, every hop abuts the next, ends at the completion instant,
  // and the hop durations telescope to exactly the run's virtual completion time.
  EXPECT_DOUBLE_EQ(path.segments.front().start_us, 0.0);
  double sum = 0.0;
  for (size_t i = 0; i < path.segments.size(); ++i) {
    if (i > 0) {
      EXPECT_NEAR(path.segments[i].start_us, path.segments[i - 1].end_us, 1e-3);
    }
    EXPECT_GT(path.segments[i].duration_us(), 0.0);
    sum += path.segments[i].duration_us();
  }
  EXPECT_NEAR(path.segments.back().end_us, path.completion_us, 1e-3);
  EXPECT_NEAR(sum, path.completion_us, 1e-3);
  EXPECT_NEAR(path.compute_us + path.fault_us + path.barrier_us, path.completion_us, 1e-3);

  // The completion instant is the last node's main-finished time, bounded by the makespan.
  SimTime last_done = 0;
  for (const core::NodeReport& nr : r.nodes) {
    last_done = std::max(last_done, nr.finished_at);
  }
  EXPECT_NEAR(path.completion_us, ToMicroseconds(last_done), 1e-3);
  EXPECT_LE(path.completion_us, ToMicroseconds(r.makespan) + 1e-3);

  // Renderers produce the expected anchors.
  std::ostringstream crit;
  report::PrintCritPath(path, 5, crit);
  EXPECT_NE(crit.str().find("Critical path:"), std::string::npos);
  EXPECT_NE(crit.str().find("what-if"), std::string::npos);
  std::ostringstream blame;
  report::PrintBlame(path, 5, blame);
  EXPECT_NE(blame.str().find("Critical-path blame"), std::string::npos);
}

TEST(CritPathTest, ShareGatePassesAtTruthFailsWhenShifted) {
  const core::RunReport r = SmallJacobiRun(/*waitstate=*/true, /*trace=*/true);
  std::ostringstream os;
  r.trace->WriteChromeTrace(os);
  const report::CriticalPath path = report::BuildCriticalPath(os.str());
  ASSERT_TRUE(path.ok) << path.error;
  const double compute_pct = 100.0 * path.compute_us / path.completion_us;
  const double fault_pct = 100.0 * path.fault_us / path.completion_us;
  const double barrier_pct = 100.0 * path.barrier_us / path.completion_us;

  auto baseline = [](double compute, double fault, double barrier, double tol) {
    std::ostringstream b;
    b << R"({"schema": "dfil-critpath-gate-v1", "tolerance_pp": )" << tol
      << R"(, "shares_pct": {"compute": )" << compute << R"(, "page_fault": )" << fault
      << R"(, "barrier": )" << barrier << "}}";
    return b.str();
  };
  std::string error;
  report::GateResult pass =
      report::CheckCritpathGate(baseline(compute_pct, fault_pct, barrier_pct, 5.0), path, &error);
  EXPECT_TRUE(pass.ok) << (pass.lines.empty() ? error : pass.lines.back());
  // Shifting one expectation past the tolerance flips the verdict.
  report::GateResult fail = report::CheckCritpathGate(
      baseline(compute_pct + 20.0, fault_pct, barrier_pct, 5.0), path, &error);
  EXPECT_FALSE(fail.ok);
  // A structurally broken path fails regardless of shares.
  report::CriticalPath broken;
  broken.error = "synthetic";
  report::GateResult structural = report::CheckCritpathGate(
      baseline(compute_pct, fault_pct, barrier_pct, 5.0), broken, &error);
  EXPECT_FALSE(structural.ok);
}

// --- Flight recorder: dump, parse, render ---

TEST(FlightRecorderTest, EndOfRunSnapshotRoundTrips) {
  core::RunReport r = SmallJacobiRun(/*waitstate=*/true, /*trace=*/false);
  EXPECT_FALSE(r.flight.at_violation);
  ASSERT_EQ(r.flight.node_events.size(), 4u);
  size_t events = 0;
  for (const auto& ring : r.flight.node_events) {
    events += ring.size();
  }
  EXPECT_GT(events, 0u);

  std::ostringstream os;
  core::WriteFlightJson(r, "ft", {"synthetic violation: page 3 stale"}, os);
  report::FlightDump dump;
  std::string error;
  ASSERT_TRUE(report::ParseFlight(os.str(), &dump, &error)) << error;
  EXPECT_EQ(dump.label, "ft");
  EXPECT_FALSE(dump.at_violation);
  ASSERT_EQ(dump.violations.size(), 1u);
  EXPECT_NE(dump.violations[0].find("page 3"), std::string::npos);
  ASSERT_EQ(dump.nodes.size(), 4u);
  size_t parsed_events = 0;
  bool saw_barrier = false;
  for (const auto& log : dump.nodes) {
    parsed_events += log.events.size();
    for (const auto& e : log.events) {
      EXPECT_GE(e.end_us, e.start_us);
      saw_barrier = saw_barrier || e.kind == "barrier";
    }
  }
  EXPECT_EQ(parsed_events, events);
  EXPECT_TRUE(saw_barrier);  // a multi-node Jacobi blocks at reductions

  std::ostringstream rendered;
  report::PrintFlight(dump, rendered);
  EXPECT_NE(rendered.str().find("synthetic violation"), std::string::npos);
  EXPECT_NE(rendered.str().find("barrier"), std::string::npos);
}

TEST(FlightRecorderTest, FailedFuzzReplayWritesARenderableDump) {
  // Force a deterministic failure: a virtual-time budget no run can meet. The override is
  // applied after every RNG draw, so the case's config is the same one the corpus seed picks.
  apps::FuzzOptions opts;
  opts.flight_dump_on_failure = true;
  opts.max_virtual_time = Milliseconds(5.0);
  const apps::FuzzResult r = apps::RunFuzzCase("clean", 1, opts);
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.completed);
  ASSERT_FALSE(r.flight_path.empty());
  ASSERT_FALSE(r.flight.node_events.empty());

  std::string text;
  std::string error;
  ASSERT_TRUE(report::ReadFile(r.flight_path, &text, &error)) << error;
  report::FlightDump dump;
  ASSERT_TRUE(report::ParseFlight(text, &dump, &error)) << error;
  EXPECT_EQ(dump.nodes.size(), r.flight.node_events.size());
  std::ostringstream rendered;
  report::PrintFlight(dump, rendered);
  EXPECT_NE(rendered.str().find("Flight recorder:"), std::string::npos);
  std::remove(r.flight_path.c_str());

  // A clean replay of the same case writes nothing.
  apps::FuzzOptions clean_opts;
  clean_opts.flight_dump_on_failure = true;
  const apps::FuzzResult clean = apps::RunFuzzCase("clean", 1, clean_opts);
  EXPECT_TRUE(clean.ok()) << clean.Summary();
  EXPECT_TRUE(clean.flight_path.empty());
}

}  // namespace
}  // namespace dfil
