// Tests for adaptive pool assignment — the paper's §2.2 future-work item "automatic clustering
// of filaments that share pages into execution pools", implemented in PoolEngine.
#include <gtest/gtest.h>

#include "src/core/cluster.h"
#include "src/core/global_array.h"
#include "src/core/node_runtime.h"
#include "src/core/pool_engine.h"

namespace dfil::core {
namespace {

struct AutoState {
  GlobalArray1D<double> remote;  // owned by node 0
  double sink = 0;
};

// Filaments with a0 < 0 are purely local; otherwise they read element a0 of the remote array.
void MixedFilament(NodeEnv& env, int64_t a0, int64_t, int64_t) {
  auto* st = static_cast<AutoState*>(env.user_ctx);
  if (a0 >= 0) {
    st->sink += st->remote.Read(env, static_cast<size_t>(a0));
  }
  env.ChargeWork(Microseconds(8.0));
}

constexpr int kRemote = 2048;  // spans 4 pages of doubles

RunReport RunMixed(int pools_mode, int iterations, int* pools_after) {
  // pools_mode: 0 = single manual pool, 1 = adaptive.
  ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.dsm.pcp = dsm::Pcp::kImplicitInvalidate;
  Cluster cluster(cfg);
  auto remote = GlobalArray1D<double>::Alloc(cluster.layout(), kRemote, "remote");
  std::vector<AutoState> states(2);
  RunReport r = cluster.Run([&](NodeEnv& env) {
    AutoState& st = states[env.node()];
    st.remote = remote;
    env.user_ctx = &st;
    if (env.node() == 0) {
      for (int i = 0; i < kRemote; ++i) {
        remote.Write(env, i, 1.0);
      }
    }
    env.Barrier();
    if (env.node() == 1) {
      // Interleave remote-touching filaments (4 distinct pages) among many local ones — the worst
      // case for a single pool, and exactly what the auto-clusterer should untangle.
      const int kLocal = 400;
      int next_remote = 0;
      for (int i = 0; i < kLocal; ++i) {
        if (i % 100 == 50) {
          // A run of filaments touching one remote page each.
          for (int j = 0; j < 8; ++j) {
            env.CreateAutoFilament(&MixedFilament, next_remote * 512 + j, 0, 0);
          }
          ++next_remote;
        }
        if (pools_mode == 1) {
          env.CreateAutoFilament(&MixedFilament, -1, i, 0);
        } else {
          // emulate "one big manual pool" through the same API by never repartitioning:
          env.CreateAutoFilament(&MixedFilament, -1, i, 0);
        }
      }
      int sweeps = 0;
      env.RunIterative([&](int iter) {
        env.Barrier();
        sweeps = iter + 1;
        return iter + 1 < iterations;
      });
      if (pools_after != nullptr) {
        *pools_after = env.runtime().pools().num_pools();
      }
    } else {
      for (int i = 0; i < iterations; ++i) {
        env.Barrier();
      }
    }
  });
  return r;
}

TEST(AdaptivePoolsTest, ProfilingSweepSplitsByFaultedPage) {
  int pools_after = 0;
  RunReport r = RunMixed(1, 3, &pools_after);
  ASSERT_TRUE(r.completed) << r.deadlock_report;
  // 1 profiling pool -> 4 per-page pools (the remote array spans 4 pages) + 1 quiet pool.
  EXPECT_EQ(pools_after, 5);
}

TEST(AdaptivePoolsTest, RepartitioningPreservesEveryFilament) {
  ClusterConfig cfg;
  cfg.nodes = 2;
  Cluster cluster(cfg);
  auto remote = GlobalArray1D<double>::Alloc(cluster.layout(), kRemote, "remote");
  std::vector<AutoState> states(2);
  std::vector<uint64_t> runs_per_sweep;
  RunReport r = cluster.Run([&](NodeEnv& env) {
    AutoState& st = states[env.node()];
    st.remote = remote;
    env.user_ctx = &st;
    if (env.node() == 0) {
      for (int i = 0; i < kRemote; ++i) {
        remote.Write(env, i, 1.0);
      }
    }
    env.Barrier();
    if (env.node() == 1) {
      for (int i = 0; i < 100; ++i) {
        env.CreateAutoFilament(&MixedFilament, i % 10 == 0 ? (i * 37) % kRemote : -1, i, 0);
      }
      uint64_t before = 0;
      env.RunIterative([&](int iter) {
        const uint64_t total = env.runtime().fil_stats().filaments_run;
        runs_per_sweep.push_back(total - before);
        before = total;
        env.Barrier();
        return iter + 1 < 4;
      });
    } else {
      for (int i = 0; i < 4; ++i) {
        env.Barrier();
      }
    }
  });
  ASSERT_TRUE(r.completed) << r.deadlock_report;
  ASSERT_EQ(runs_per_sweep.size(), 4u);
  for (uint64_t runs : runs_per_sweep) {
    EXPECT_EQ(runs, 100u) << "every filament must run exactly once per sweep, before and after "
                             "repartitioning";
  }
}

TEST(AdaptivePoolsTest, NoFaultsMeansNoSplit) {
  ClusterConfig cfg;
  cfg.nodes = 1;
  Cluster cluster(cfg);
  int pools_after = 0;
  std::vector<AutoState> states(1);
  RunReport r = cluster.Run([&](NodeEnv& env) {
    env.user_ctx = &states[0];
    for (int i = 0; i < 50; ++i) {
      env.CreateAutoFilament(&MixedFilament, -1, i, 0);
    }
    env.RunPools();
    env.RunPools();
    pools_after = env.runtime().pools().num_pools();
  });
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(pools_after, 1);
}

TEST(AdaptivePoolsTest, AdaptivePoolsRecoverOverlap) {
  // After repartitioning, the faulting pools suspend while the quiet pool overlaps the fetches;
  // later iterations must be faster than the first (profiling) one.
  ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.dsm.pcp = dsm::Pcp::kImplicitInvalidate;
  Cluster cluster(cfg);
  auto remote = GlobalArray1D<double>::Alloc(cluster.layout(), kRemote, "remote");
  std::vector<AutoState> states(2);
  std::vector<SimTime> sweep_times;
  RunReport r = cluster.Run([&](NodeEnv& env) {
    AutoState& st = states[env.node()];
    st.remote = remote;
    env.user_ctx = &st;
    if (env.node() == 0) {
      for (int i = 0; i < kRemote; ++i) {
        remote.Write(env, i, 1.0);
      }
    }
    env.Barrier();
    if (env.node() == 1) {
      for (int page = 0; page < 4; ++page) {
        for (int j = 0; j < 4; ++j) {
          env.CreateAutoFilament(&MixedFilament, page * 512 + j, 0, 0);
        }
      }
      for (int i = 0; i < 600; ++i) {
        env.CreateAutoFilament(&MixedFilament, -1, i, 0);
      }
      SimTime last = env.Now();
      env.RunIterative([&](int iter) {
        env.Barrier();
        sweep_times.push_back(env.Now() - last);
        last = env.Now();
        return iter + 1 < 4;
      });
    } else {
      for (int i = 0; i < 4; ++i) {
        env.Barrier();
      }
    }
  });
  ASSERT_TRUE(r.completed) << r.deadlock_report;
  ASSERT_EQ(sweep_times.size(), 4u);
  // Iterations 2..4 (post-repartition, implicit-invalidate re-faults every sweep) should overlap
  // the fetch latency behind the quiet pool, beating the single-pool profiling sweep.
  EXPECT_LT(sweep_times[2], sweep_times[0]);
  EXPECT_LT(sweep_times[3], sweep_times[0]);
}

}  // namespace
}  // namespace dfil::core
