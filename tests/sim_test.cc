// Tests for the discrete-event substrate: event queue ordering, network models, cost model.
#include <gtest/gtest.h>

#include <vector>

#include "src/common/rng.h"
#include "src/sim/cost_model.h"
#include "src/sim/event_queue.h"
#include "src/sim/network.h"

namespace dfil::sim {
namespace {

TEST(EventQueueTest, DispatchesInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.Schedule(30, [&] { order.push_back(3); }).Release();
  q.Schedule(10, [&] { order.push_back(1); }).Release();
  q.Schedule(20, [&] { order.push_back(2); }).Release();
  while (!q.empty()) {
    q.Pop().second();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, EqualTimesAreFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.Schedule(5, [&order, i] { order.push_back(i); }).Release();
  }
  while (!q.empty()) {
    q.Pop().second();
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(EventQueueTest, CancelledEventsNeverFire) {
  EventQueue q;
  int fired = 0;
  EventHandle h1 = q.Schedule(10, [&] { ++fired; });
  q.Schedule(20, [&] { ++fired; }).Release();
  h1.Cancel();
  EXPECT_EQ(q.NextTime(), 20);
  while (!q.empty()) {
    q.Pop().second();
  }
  EXPECT_EQ(fired, 1);
}

TEST(EventQueueTest, CancellingHeadExposesNext) {
  EventQueue q;
  EventHandle h = q.Schedule(5, [] {});
  q.Schedule(15, [] {}).Release();
  h.Cancel();
  EXPECT_FALSE(q.empty());
  EXPECT_EQ(q.NextTime(), 15);
}

TEST(EventQueueTest, EmptyAfterAllCancelled) {
  EventQueue q;
  EventHandle a = q.Schedule(1, [] {});
  EventHandle b = q.Schedule(2, [] {});
  a.Cancel();
  b.Cancel();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.NextTime(), kSimTimeNever);
}

TEST(CostModelTest, WireTimeMatchesTenMegabit) {
  CostModel m = CostModel::SunIpcEthernet();
  // 4 KB page + 58 bytes framing at 1.25 bytes/us ~ 3.32 ms.
  EXPECT_NEAR(ToMilliseconds(m.WireTime(4096)), 3.32, 0.01);
  // Minimum frame applies to tiny payloads.
  EXPECT_EQ(m.WireTime(1), m.WireTime(4));
}

TEST(SharedEthernetTest, TransmissionsSerializeOnTheMedium) {
  CostModel m = CostModel::SunIpcEthernet();
  SharedEthernet net(m, 0.0, 1);
  TxPlan a = net.PlanUnicast(0, 1, 4096, /*ready=*/0);
  TxPlan b = net.PlanUnicast(2, 3, 4096, /*ready=*/0);
  // Same ready time, but the medium is busy: b starts after a finishes.
  EXPECT_GE(b.deliver_at - a.deliver_at, m.WireTime(4096));
  EXPECT_EQ(net.MediumBusyTime(), 2 * m.WireTime(4096));
}

TEST(SharedEthernetTest, BroadcastIsOneTransmission) {
  CostModel m = CostModel::SunIpcEthernet();
  SharedEthernet net(m, 0.0, 1);
  std::vector<TxPlan> plans;
  net.PlanBroadcast(0, {1, 2, 3}, 1000, 0, plans);
  ASSERT_EQ(plans.size(), 3u);
  EXPECT_EQ(plans[0].deliver_at, plans[1].deliver_at);
  EXPECT_EQ(plans[1].deliver_at, plans[2].deliver_at);
  EXPECT_EQ(net.MediumBusyTime(), m.WireTime(1000));
}

TEST(SwitchedNetworkTest, DistinctSourcesDoNotContend) {
  CostModel m = CostModel::SunIpcEthernet();
  SwitchedNetwork net(m, 4, 0.0, 1);
  TxPlan a = net.PlanUnicast(0, 1, 4096, 0);
  TxPlan b = net.PlanUnicast(2, 3, 4096, 0);
  EXPECT_EQ(a.deliver_at, b.deliver_at);  // full parallelism across links
}

TEST(SwitchedNetworkTest, SameSourceSerializesAtTheNic) {
  CostModel m = CostModel::SunIpcEthernet();
  SwitchedNetwork net(m, 4, 0.0, 1);
  TxPlan a = net.PlanUnicast(0, 1, 4096, 0);
  TxPlan b = net.PlanUnicast(0, 2, 4096, 0);
  EXPECT_GE(b.deliver_at - a.deliver_at, m.WireTime(4096));
}

class LossRateTest : public ::testing::TestWithParam<double> {};

TEST_P(LossRateTest, DropRateTracksProbability) {
  CostModel m = CostModel::SunIpcEthernet();
  SharedEthernet net(m, GetParam(), 42);
  int dropped = 0;
  constexpr int kFrames = 20000;
  for (int i = 0; i < kFrames; ++i) {
    if (net.PlanUnicast(0, 1, 100, static_cast<SimTime>(i) * 1000000).dropped) {
      ++dropped;
    }
  }
  EXPECT_NEAR(static_cast<double>(dropped) / kFrames, GetParam(), 0.02);
}

INSTANTIATE_TEST_SUITE_P(Rates, LossRateTest, ::testing::Values(0.0, 0.01, 0.1, 0.5));

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(7);
  Rng child = a.Fork();
  // The forked stream must not mirror the parent.
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == child.NextU64()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng r(1);
  EXPECT_FALSE(r.NextBernoulli(0.0));
  EXPECT_TRUE(r.NextBernoulli(1.0));
}

}  // namespace
}  // namespace dfil::sim
