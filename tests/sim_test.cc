// Tests for the discrete-event substrate: event queue ordering, network models, cost model.
#include <gtest/gtest.h>

#include <vector>

#include "src/common/rng.h"
#include "src/sim/cost_model.h"
#include "src/sim/event_queue.h"
#include "src/sim/fault_plan.h"
#include "src/sim/network.h"

namespace dfil::sim {
namespace {

TEST(EventQueueTest, DispatchesInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.Schedule(30, [&] { order.push_back(3); }).Release();
  q.Schedule(10, [&] { order.push_back(1); }).Release();
  q.Schedule(20, [&] { order.push_back(2); }).Release();
  while (!q.empty()) {
    q.Pop().second();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, EqualTimesAreFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.Schedule(5, [&order, i] { order.push_back(i); }).Release();
  }
  while (!q.empty()) {
    q.Pop().second();
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(EventQueueTest, CancelledEventsNeverFire) {
  EventQueue q;
  int fired = 0;
  EventHandle h1 = q.Schedule(10, [&] { ++fired; });
  q.Schedule(20, [&] { ++fired; }).Release();
  h1.Cancel();
  EXPECT_EQ(q.NextTime(), 20);
  while (!q.empty()) {
    q.Pop().second();
  }
  EXPECT_EQ(fired, 1);
}

TEST(EventQueueTest, CancellingHeadExposesNext) {
  EventQueue q;
  EventHandle h = q.Schedule(5, [] {});
  q.Schedule(15, [] {}).Release();
  h.Cancel();
  EXPECT_FALSE(q.empty());
  EXPECT_EQ(q.NextTime(), 15);
}

TEST(EventQueueTest, EmptyAfterAllCancelled) {
  EventQueue q;
  EventHandle a = q.Schedule(1, [] {});
  EventHandle b = q.Schedule(2, [] {});
  a.Cancel();
  b.Cancel();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.NextTime(), kSimTimeNever);
}

TEST(CostModelTest, WireTimeMatchesTenMegabit) {
  CostModel m = CostModel::SunIpcEthernet();
  // 4 KB page + 58 bytes framing at 1.25 bytes/us ~ 3.32 ms.
  EXPECT_NEAR(ToMilliseconds(m.WireTime(4096)), 3.32, 0.01);
  // Minimum frame applies to tiny payloads.
  EXPECT_EQ(m.WireTime(1), m.WireTime(4));
}

TEST(SharedEthernetTest, TransmissionsSerializeOnTheMedium) {
  CostModel m = CostModel::SunIpcEthernet();
  SharedEthernet net(m);
  TxPlan a = net.PlanUnicast(0, 1, 4096, /*ready=*/0);
  TxPlan b = net.PlanUnicast(2, 3, 4096, /*ready=*/0);
  // Same ready time, but the medium is busy: b starts after a finishes.
  EXPECT_GE(b.deliver_at - a.deliver_at, m.WireTime(4096));
  EXPECT_EQ(net.MediumBusyTime(), 2 * m.WireTime(4096));
}

TEST(SharedEthernetTest, BroadcastIsOneTransmission) {
  CostModel m = CostModel::SunIpcEthernet();
  SharedEthernet net(m);
  std::vector<TxPlan> plans;
  net.PlanBroadcast(0, {1, 2, 3}, 1000, 0, plans);
  ASSERT_EQ(plans.size(), 3u);
  EXPECT_EQ(plans[0].deliver_at, plans[1].deliver_at);
  EXPECT_EQ(plans[1].deliver_at, plans[2].deliver_at);
  EXPECT_EQ(net.MediumBusyTime(), m.WireTime(1000));
}

TEST(SwitchedNetworkTest, DistinctSourcesDoNotContend) {
  CostModel m = CostModel::SunIpcEthernet();
  SwitchedNetwork net(m, 4);
  TxPlan a = net.PlanUnicast(0, 1, 4096, 0);
  TxPlan b = net.PlanUnicast(2, 3, 4096, 0);
  EXPECT_EQ(a.deliver_at, b.deliver_at);  // full parallelism across links
}

TEST(SwitchedNetworkTest, SameSourceSerializesAtTheNic) {
  CostModel m = CostModel::SunIpcEthernet();
  SwitchedNetwork net(m, 4);
  TxPlan a = net.PlanUnicast(0, 1, 4096, 0);
  TxPlan b = net.PlanUnicast(0, 2, 4096, 0);
  EXPECT_GE(b.deliver_at - a.deliver_at, m.WireTime(4096));
}

class LossRateTest : public ::testing::TestWithParam<double> {};

TEST_P(LossRateTest, DropRateTracksProbability) {
  FaultInjector inj(FaultPlan::UniformLoss(GetParam(), 42));
  int dropped = 0;
  constexpr int kFrames = 20000;
  for (int i = 0; i < kFrames; ++i) {
    if (inj.Decide(0, 1, 0, MsgClass::kUnknown).drop) {
      ++dropped;
    }
  }
  EXPECT_NEAR(static_cast<double>(dropped) / kFrames, GetParam(), 0.02);
}

INSTANTIATE_TEST_SUITE_P(Rates, LossRateTest, ::testing::Values(0.0, 0.01, 0.1, 0.5));

TEST(FaultInjectorTest, DecisionsAreReplayable) {
  FaultPlan plan = FaultPlan::UniformLoss(0.3, 7);
  FaultRule dup;
  dup.klass = MsgClass::kReply;
  dup.duplicate = 0.5;
  dup.delay_max = Microseconds(100);
  plan.rules.push_back(dup);
  FaultInjector a(plan);
  FaultInjector b(plan);
  for (int i = 0; i < 1000; ++i) {
    const NodeId src = i % 3;
    const NodeId dst = (i + 1) % 3;
    const MsgClass k = (i % 2) != 0 ? MsgClass::kReply : MsgClass::kRequest;
    const FaultDecision da = a.Decide(src, dst, 1, k);
    const FaultDecision db = b.Decide(src, dst, 1, k);
    EXPECT_EQ(da.drop, db.drop);
    EXPECT_EQ(da.extra_delay, db.extra_delay);
    EXPECT_EQ(da.dup_delays, db.dup_delays);
  }
}

// The satellite fix this PR pins: decisions are keyed by (src, dst, per-pair ordinal), so the
// fate of pair (0,1)'s messages does not change when unrelated traffic is interleaved (the old
// per-receiver shared Rng stream reshuffled every decision when topology or timing changed).
TEST(FaultInjectorTest, PairDecisionsAreStableUnderUnrelatedTraffic) {
  const FaultPlan plan = FaultPlan::UniformLoss(0.4, 99);
  FaultInjector quiet(plan);
  FaultInjector noisy(plan);
  std::vector<bool> quiet_drops;
  std::vector<bool> noisy_drops;
  for (int i = 0; i < 500; ++i) {
    quiet_drops.push_back(quiet.Decide(0, 1, 5, MsgClass::kRequest).drop);
    // The noisy run interleaves three unrelated flows before each (0,1) message.
    noisy.Decide(2, 3, 5, MsgClass::kRequest);
    noisy.Decide(3, 1, 5, MsgClass::kReply);
    noisy.Decide(1, 0, 5, MsgClass::kReply);
    noisy_drops.push_back(noisy.Decide(0, 1, 5, MsgClass::kRequest).drop);
  }
  EXPECT_EQ(quiet_drops, noisy_drops);
}

TEST(FaultInjectorTest, RuleSeqWindowTargetsOneMessage) {
  FaultPlan plan;
  plan.seed = 3;
  FaultRule r;
  r.src = 0;
  r.dst = 1;
  r.drop = 1.0;
  r.seq_from = 2;  // drop exactly the 3rd (0->1) message
  r.seq_to = 3;
  plan.rules.push_back(r);
  FaultInjector inj(plan);
  std::vector<bool> drops;
  for (int i = 0; i < 5; ++i) {
    drops.push_back(inj.Decide(0, 1, 0, MsgClass::kUnknown).drop);
  }
  EXPECT_EQ(drops, (std::vector<bool>{false, false, true, false, false}));
}

TEST(FaultInjectorTest, StallDefersIntoWindowEnd) {
  FaultPlan plan;
  plan.seed = 1;
  StallSpec s;
  s.node = 2;
  s.first = Milliseconds(10);
  s.period = Milliseconds(100);
  s.duration = Milliseconds(5);
  plan.stalls.push_back(s);
  FaultInjector inj(plan);
  // Before, inside, and after the first window; inside the second (periodic) window.
  EXPECT_EQ(inj.AdjustForStall(2, Milliseconds(9)), Milliseconds(9));
  EXPECT_EQ(inj.AdjustForStall(2, Milliseconds(12)), Milliseconds(15));
  EXPECT_EQ(inj.AdjustForStall(2, Milliseconds(16)), Milliseconds(16));
  EXPECT_EQ(inj.AdjustForStall(2, Milliseconds(111)), Milliseconds(115));
  // Other nodes are unaffected.
  EXPECT_EQ(inj.AdjustForStall(1, Milliseconds(12)), Milliseconds(12));
}

TEST(FaultInjectorTest, BurstLossClustersDrops) {
  FaultPlan plan;
  plan.seed = 5;
  plan.burst.p_good_to_bad = 0.05;
  plan.burst.p_bad_to_good = 0.3;
  plan.burst.loss_good = 0.0;
  plan.burst.loss_bad = 1.0;
  FaultInjector inj(plan);
  int drops = 0;
  int runs = 0;  // maximal consecutive-drop runs
  bool in_run = false;
  constexpr int kFrames = 20000;
  for (int i = 0; i < kFrames; ++i) {
    const bool drop = inj.Decide(0, 1, 0, MsgClass::kUnknown).drop;
    drops += drop ? 1 : 0;
    runs += (drop && !in_run) ? 1 : 0;
    in_run = drop;
  }
  ASSERT_GT(drops, 0);
  // Correlated loss: far fewer runs than drops (independent loss would give runs ~= drops here,
  // since the overall drop rate is low).
  EXPECT_LT(runs * 2, drops);
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(7);
  Rng child = a.Fork();
  // The forked stream must not mirror the parent.
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == child.NextU64()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng r(1);
  EXPECT_FALSE(r.NextBernoulli(0.0));
  EXPECT_TRUE(r.NextBernoulli(1.0));
}

}  // namespace
}  // namespace dfil::sim
