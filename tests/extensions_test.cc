// Tests for extension features beyond the paper's evaluation: barrier algorithm variants (the
// paper's stated future work) and the recursive-FFT fork/join application.
#include <gtest/gtest.h>

#include <cmath>

#include "src/apps/fft.h"
#include "src/apps/sor.h"
#include "src/core/cluster.h"

namespace dfil {
namespace {

using core::Cluster;
using core::ClusterConfig;
using core::NodeEnv;
using core::ReduceOp;

class BarrierKindTest
    : public ::testing::TestWithParam<std::tuple<ClusterConfig::BarrierKind, int>> {};

TEST_P(BarrierKindTest, SumReductionCorrect) {
  const auto [kind, nodes] = GetParam();
  ClusterConfig cfg;
  cfg.nodes = nodes;
  cfg.barrier = kind;
  Cluster cluster(cfg);
  std::vector<double> results(nodes);
  core::RunReport r = cluster.Run([&](NodeEnv& env) {
    for (int i = 0; i < 5; ++i) {
      results[env.node()] = env.Reduce(env.node() + 1.0, ReduceOp::kSum);
    }
  });
  ASSERT_TRUE(r.completed) << r.deadlock_report;
  for (double v : results) {
    EXPECT_DOUBLE_EQ(v, nodes * (nodes + 1) / 2.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BarrierKindTest,
    ::testing::Combine(::testing::Values(ClusterConfig::BarrierKind::kTournamentBroadcast,
                                         ClusterConfig::BarrierKind::kDissemination,
                                         ClusterConfig::BarrierKind::kCentral),
                       ::testing::Values(2, 4, 8, 16)));

TEST(BarrierKindTest, DisseminationBarrierWorksAtOddNodeCounts) {
  ClusterConfig cfg;
  cfg.nodes = 5;
  cfg.barrier = ClusterConfig::BarrierKind::kDissemination;
  Cluster cluster(cfg);
  std::vector<SimTime> after(5);
  core::RunReport r = cluster.Run([&](NodeEnv& env) {
    env.ChargeWork(Milliseconds(env.node() * 2.0));
    env.Barrier();  // barriers (idempotent combine) are fine at any node count
    after[env.node()] = env.Now();
  });
  ASSERT_TRUE(r.completed) << r.deadlock_report;
  for (SimTime t : after) {
    EXPECT_GE(t, Milliseconds(8.0));  // nobody leaves before the slowest arrives
  }
}

TEST(BarrierKindTest, MessageCountsMatchTheory) {
  // Tournament: 2(p-1)+1; dissemination: 2 * p*ceil(log2 p) (requests + acks);
  // central: 2(p-1)+1.
  const int p = 8;
  auto count = [&](ClusterConfig::BarrierKind kind) {
    ClusterConfig cfg;
    cfg.nodes = p;
    cfg.barrier = kind;
    Cluster cluster(cfg);
    core::RunReport r = cluster.Run([&](NodeEnv& env) { env.Barrier(); });
    EXPECT_TRUE(r.completed);
    return r.net.messages_sent;
  };
  EXPECT_EQ(count(ClusterConfig::BarrierKind::kTournamentBroadcast),
            static_cast<uint64_t>(2 * (p - 1) + 1));
  EXPECT_EQ(count(ClusterConfig::BarrierKind::kCentral), static_cast<uint64_t>(2 * (p - 1) + 1));
  EXPECT_EQ(count(ClusterConfig::BarrierKind::kDissemination),
            static_cast<uint64_t>(2 * p * 3));
}

TEST(BarrierKindTest, DisseminationHasNoBroadcastHotspot) {
  // Central serializes at node 0; dissemination spreads the load. Compare per-barrier latency.
  auto latency = [&](ClusterConfig::BarrierKind kind) {
    ClusterConfig cfg;
    cfg.nodes = 16;
    cfg.barrier = kind;
    Cluster cluster(cfg);
    core::RunReport r = cluster.Run([&](NodeEnv& env) {
      for (int i = 0; i < 20; ++i) {
        env.Barrier();
      }
    });
    EXPECT_TRUE(r.completed);
    return r.makespan;
  };
  EXPECT_LT(latency(ClusterConfig::BarrierKind::kTournamentBroadcast),
            latency(ClusterConfig::BarrierKind::kCentral));
}

class FftNodes : public ::testing::TestWithParam<int> {};

TEST_P(FftNodes, DfMatchesSequentialBitwise) {
  apps::FftParams p;
  p.log2_n = 10;
  p.sequential_cutoff = 64;
  ClusterConfig base;
  base.nodes = 1;
  apps::AppRun seq = apps::RunFftSeq(p, base);
  ClusterConfig cfg;
  cfg.nodes = GetParam();
  apps::AppRun df = apps::RunFftDf(p, cfg);
  ASSERT_TRUE(seq.report.completed);
  ASSERT_TRUE(df.report.completed) << df.report.deadlock_report;
  ASSERT_EQ(seq.output.size(), df.output.size());
  for (size_t i = 0; i < seq.output.size(); ++i) {
    ASSERT_EQ(seq.output[i], df.output[i]) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Nodes, FftNodes, ::testing::Values(1, 2, 4, 8));

TEST(FftTest, TransformIsActuallyAFourierTransform) {
  // Validate against a direct DFT at small n.
  apps::FftParams p;
  p.log2_n = 6;
  p.sequential_cutoff = 4;
  ClusterConfig base;
  base.nodes = 1;
  apps::AppRun seq = apps::RunFftSeq(p, base);
  const int n = 64;
  // Rebuild the input and compute the DFT directly.
  auto signal_re = [](int i) { return std::sin(0.05 * i); };
  auto signal_im = [](int i) { return std::cos(0.11 * i) * 0.5; };
  for (int k = 0; k < n; ++k) {
    double re = 0, im = 0;
    for (int t = 0; t < n; ++t) {
      const double angle = -2.0 * 3.14159265358979323846 * k * t / n;
      const double c = std::cos(angle), s = std::sin(angle);
      re += signal_re(t) * c - signal_im(t) * s;
      im += signal_re(t) * s + signal_im(t) * c;
    }
    EXPECT_NEAR(seq.output[2 * k], re, 1e-9) << k;
    EXPECT_NEAR(seq.output[2 * k + 1], im, 1e-9) << k;
  }
}

TEST(FftTest, BalancedWorkloadGainsLittleFromStealing) {
  // The paper's §2.3 claim for FFT: the tree distribution already balances it.
  apps::FftParams p;
  p.log2_n = 12;
  ClusterConfig off;
  off.nodes = 8;
  off.fj.steal_enabled = false;
  ClusterConfig on = off;
  on.fj.steal_enabled = true;
  apps::AppRun without = apps::RunFftDf(p, off);
  apps::AppRun with = apps::RunFftDf(p, on);
  ASSERT_TRUE(without.report.completed);
  ASSERT_TRUE(with.report.completed);
  // Stealing must not be a large win here (tolerate noise either way).
  EXPECT_GT(static_cast<double>(with.report.makespan) /
                static_cast<double>(without.report.makespan),
            0.85);
}

class SorNodes : public ::testing::TestWithParam<int> {};

TEST_P(SorNodes, DfMatchesSequentialExactly) {
  apps::SorParams p;
  p.n = 32;
  p.iterations = 15;
  ClusterConfig base;
  base.nodes = 1;
  apps::AppRun seq = apps::RunSorSeq(p, base);
  ClusterConfig cfg;
  cfg.nodes = GetParam();
  cfg.dsm.pcp = dsm::Pcp::kImplicitInvalidate;
  apps::AppRun df = apps::RunSorDf(p, cfg);
  ASSERT_TRUE(seq.report.completed);
  ASSERT_TRUE(df.report.completed) << df.report.deadlock_report;
  ASSERT_EQ(seq.output.size(), df.output.size());
  for (size_t i = 0; i < seq.output.size(); ++i) {
    ASSERT_EQ(seq.output[i], df.output[i]) << i;
  }
  EXPECT_EQ(seq.checksum, df.checksum);
}

INSTANTIATE_TEST_SUITE_P(Nodes, SorNodes, ::testing::Values(1, 2, 4, 8));

TEST(SorTest, ConvergesFasterThanJacobiPerIteration) {
  // Sanity: with over-relaxation the residual after K iterations is smaller than plain Jacobi's
  // on the same boundary-value problem size. (Not a paper claim — a numerical sanity check.)
  apps::SorParams p;
  p.n = 32;
  p.iterations = 40;
  ClusterConfig base;
  base.nodes = 1;
  apps::AppRun a = apps::RunSorSeq(p, base);
  apps::SorParams p2 = p;
  p2.omega = 1.0;  // omega=1 degenerates to Gauss-Seidel
  ClusterConfig base2;
  base2.nodes = 1;
  apps::AppRun b = apps::RunSorSeq(p2, base2);
  EXPECT_LT(a.checksum, b.checksum);
}

TEST(SorTest, TwoSyncPointsPerIteration) {
  apps::SorParams p;
  p.n = 32;
  p.iterations = 10;
  ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.dsm.pcp = dsm::Pcp::kImplicitInvalidate;
  apps::AppRun df = apps::RunSorDf(p, cfg);
  ASSERT_TRUE(df.report.completed);
  // Red and black halves each end in a reduction: at least 2 x iterations implicit-invalidation
  // rounds show up as re-fetches of the edge pages.
  uint64_t rf = 0;
  for (const auto& nr : df.report.nodes) {
    rf += nr.dsm.read_faults;
  }
  EXPECT_GE(rf, static_cast<uint64_t>(2 * p.iterations));
}

}  // namespace
}  // namespace dfil
