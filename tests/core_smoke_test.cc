// End-to-end smoke tests of the Distributed Filaments runtime: DSM access across nodes,
// reductions, pools with overlap, and fork/join.
#include <gtest/gtest.h>

#include "src/core/cluster.h"
#include "src/core/global_array.h"

namespace dfil::core {
namespace {

TEST(ClusterSmoke, SingleNodeMainRuns) {
  ClusterConfig cfg;
  cfg.nodes = 1;
  Cluster cluster(cfg);
  bool ran = false;
  RunReport r = cluster.Run([&](NodeEnv& env) {
    env.ChargeWork(Seconds(1.0));
    ran = true;
  });
  EXPECT_TRUE(r.completed);
  EXPECT_FALSE(r.deadlocked);
  EXPECT_TRUE(ran);
  EXPECT_NEAR(r.seconds(), 1.0, 0.01);
}

TEST(ClusterSmoke, BarrierSynchronizesClocks) {
  ClusterConfig cfg;
  cfg.nodes = 4;
  Cluster cluster(cfg);
  std::vector<SimTime> after(4);
  RunReport r = cluster.Run([&](NodeEnv& env) {
    // Unequal work, then a barrier: everyone leaves at (or after) the slowest node's arrival.
    env.ChargeWork(Seconds(0.1 * (env.node() + 1)));
    env.Barrier();
    after[env.node()] = env.Now();
  });
  ASSERT_TRUE(r.completed) << r.deadlock_report;
  for (int n = 0; n < 4; ++n) {
    EXPECT_GE(after[n], Seconds(0.4));
  }
}

TEST(ClusterSmoke, ReduceSumAcrossNodes) {
  ClusterConfig cfg;
  cfg.nodes = 8;
  Cluster cluster(cfg);
  std::vector<double> sums(8);
  RunReport r = cluster.Run([&](NodeEnv& env) {
    sums[env.node()] = env.Reduce(static_cast<double>(env.node() + 1), ReduceOp::kSum);
  });
  ASSERT_TRUE(r.completed) << r.deadlock_report;
  for (double s : sums) {
    EXPECT_DOUBLE_EQ(s, 36.0);
  }
}

TEST(ClusterSmoke, DsmReadAcrossNodes) {
  ClusterConfig cfg;
  cfg.nodes = 4;
  cfg.dsm.pcp = dsm::Pcp::kWriteInvalidate;
  Cluster cluster(cfg);
  auto value = GlobalRef<double>::Alloc(cluster.layout(), "x");
  std::vector<double> seen(4);
  RunReport r = cluster.Run([&](NodeEnv& env) {
    if (env.node() == 0) {
      value.Write(env, 42.5);
    }
    env.Barrier();
    seen[env.node()] = value.Read(env);
    env.Barrier();
  });
  ASSERT_TRUE(r.completed) << r.deadlock_report;
  for (double v : seen) {
    EXPECT_DOUBLE_EQ(v, 42.5);
  }
}

TEST(ClusterSmoke, DsmMigratoryWriteChain) {
  ClusterConfig cfg;
  cfg.nodes = 4;
  cfg.dsm.pcp = dsm::Pcp::kMigratory;
  Cluster cluster(cfg);
  auto counter = GlobalRef<int64_t>::Alloc(cluster.layout(), "counter");
  int64_t final_value = -1;
  RunReport r = cluster.Run([&](NodeEnv& env) {
    if (env.node() == 0) {
      counter.Write(env, 0);
    }
    env.Barrier();
    // Each node increments in turn, serialized by barriers (race-free by construction).
    for (int turn = 0; turn < env.nodes(); ++turn) {
      if (turn == env.node()) {
        counter.Write(env, counter.Read(env) + 1);
      }
      env.Barrier();
    }
    if (env.node() == 0) {
      final_value = counter.Read(env);
    }
  });
  ASSERT_TRUE(r.completed) << r.deadlock_report;
  EXPECT_EQ(final_value, 4);
}

// One RTC filament per element; each filament doubles its element.
void DoubleElement(NodeEnv& env, int64_t base_addr, int64_t i, int64_t) {
  const GlobalAddr a = static_cast<GlobalAddr>(base_addr) + static_cast<GlobalAddr>(i) * 8;
  env.Write<double>(a, env.Read<double>(a) * 2.0);
  env.ChargeWork(Microseconds(5.0));
}

TEST(ClusterSmoke, RtcFilamentsSweep) {
  ClusterConfig cfg;
  cfg.nodes = 2;
  Cluster cluster(cfg);
  constexpr int kN = 1000;
  auto arr = GlobalArray1D<double>::Alloc(cluster.layout(), kN, "arr");
  std::vector<double> out(kN);
  RunReport r = cluster.Run([&](NodeEnv& env) {
    if (env.node() == 0) {
      for (int i = 0; i < kN; ++i) {
        arr.Write(env, i, i + 1.0);
      }
    }
    env.Barrier();
    // Each node takes a strip.
    const int per = kN / env.nodes();
    const int lo = env.node() * per;
    const int hi = env.node() == env.nodes() - 1 ? kN : lo + per;
    const PoolHandle pool = env.CreatePool();
    for (int i = lo; i < hi; ++i) {
      env.CreateFilament(pool, &DoubleElement, static_cast<int64_t>(arr.addr(0)), i, 0);
    }
    env.RunPools();
    env.Barrier();
    if (env.node() == 0) {
      for (int i = 0; i < kN; ++i) {
        out[i] = arr.Read(env, i);
      }
    }
  });
  ASSERT_TRUE(r.completed) << r.deadlock_report;
  for (int i = 0; i < kN; ++i) {
    ASSERT_DOUBLE_EQ(out[i], 2.0 * (i + 1)) << i;
  }
  // Pattern recognition must have kicked in: the strips are affine runs.
  uint64_t inlined = 0;
  for (const auto& nr : r.nodes) {
    inlined += nr.filaments.filaments_run_inlined;
  }
  EXPECT_GT(inlined, 900u);
}

// Fork/join: recursive sum of [lo, hi).
FjResult SumRange(NodeEnv& env, const FjArgs& a) {
  const int64_t lo = a.i[0];
  const int64_t hi = a.i[1];
  env.ChargeWork(Microseconds(20.0));
  if (hi - lo <= 4) {
    int64_t s = 0;
    for (int64_t k = lo; k < hi; ++k) {
      s += k;
    }
    return FjResult{0.0, s};
  }
  const int64_t mid = lo + (hi - lo) / 2;
  FjArgs left;
  left.i[0] = lo;
  left.i[1] = mid;
  FjArgs right;
  right.i[0] = mid;
  right.i[1] = hi;
  FjHandle hl = env.Fork(&SumRange, left);
  FjHandle hr = env.Fork(&SumRange, right);
  FjResult rl = env.Join(hl);
  FjResult rr = env.Join(hr);
  return FjResult{0.0, rl.i + rr.i};
}

class ForkJoinSmoke : public ::testing::TestWithParam<int> {};

TEST_P(ForkJoinSmoke, RecursiveSum) {
  ClusterConfig cfg;
  cfg.nodes = GetParam();
  cfg.wake_at_front = true;
  Cluster cluster(cfg);
  constexpr int64_t kN = 4096;
  int64_t result = -1;
  RunReport r = cluster.Run([&](NodeEnv& env) {
    FjArgs args;
    args.i[0] = 0;
    args.i[1] = kN;
    FjResult res = env.RunForkJoin(&SumRange, args);
    if (env.node() == 0) {
      result = res.i;
    }
  });
  ASSERT_TRUE(r.completed) << r.deadlock_report;
  EXPECT_EQ(result, kN * (kN - 1) / 2);
}

INSTANTIATE_TEST_SUITE_P(Nodes, ForkJoinSmoke, ::testing::Values(1, 2, 3, 4, 8));

TEST(ClusterSmoke, ChannelsRoundTrip) {
  ClusterConfig cfg;
  cfg.nodes = 2;
  Cluster cluster(cfg);
  double got = 0;
  RunReport r = cluster.Run([&](NodeEnv& env) {
    if (env.node() == 0) {
      env.SendValue<double>(1, /*tag=*/7, 3.25);
      got = env.RecvValue<double>(1, /*tag=*/8);
    } else {
      const double v = env.RecvValue<double>(0, 7);
      env.SendValue<double>(0, 8, v * 2);
    }
  });
  ASSERT_TRUE(r.completed) << r.deadlock_report;
  EXPECT_DOUBLE_EQ(got, 6.5);
}

TEST(ClusterSmoke, LostChannelMessageDeadlocksLikeThePaper) {
  // The paper's CG programs hang when a UDP message is lost; the simulator detects the hang.
  ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.fault_plan.loss_rate = 1.0;  // drop everything
  // Keeps the config valid (Validate insists on it when frames can drop); inert here — the test
  // exercises raw channel messages, never a barrier broadcast.
  cfg.reliable_broadcast = true;
  Cluster cluster(cfg);
  RunReport r = cluster.Run([&](NodeEnv& env) {
    if (env.node() == 0) {
      env.SendValue<int>(1, 1, 42);
    } else {
      (void)env.RecvValue<int>(0, 1);
    }
  });
  EXPECT_FALSE(r.completed);
  EXPECT_TRUE(r.deadlocked);
  EXPECT_NE(r.deadlock_report.find("recv"), std::string::npos);
}

}  // namespace
}  // namespace dfil::core
