// Regression and property tests for the fault-injection harness + coherence oracle.
//
// Two kinds of tests live here:
//  * pinned (scenario, seed) cases the fuzzer once failed on — each is named for the protocol
//    bug it exposed, so a reappearance points straight at the regressed fix;
//  * direct adversarial runs that build a targeted FaultPlan (duplicate every invalidation,
//    duplicate every reply, ...) and assert both the output and the defense counters, proving
//    the defense actually fired rather than the schedule dodging the hazard.
#include <gtest/gtest.h>

#include <string>

#include "src/apps/fuzz_driver.h"
#include "src/apps/jacobi.h"
#include "src/core/cluster.h"
#include "src/core/config.h"
#include "src/dsm/coherence_oracle.h"
#include "src/net/packet.h"
#include "src/sim/fault_plan.h"

namespace dfil::apps {
namespace {

core::ClusterConfig AdversarialConfig(int nodes, dsm::Pcp pcp) {
  core::ClusterConfig cfg;
  cfg.nodes = nodes;
  cfg.seed = 12345;
  cfg.page_shift = 9;  // 512 B pages: small grids still share pages across strips
  cfg.dsm.pcp = pcp;
  cfg.reliable_broadcast = true;
  cfg.packet.retransmit_timeout = Milliseconds(10.0);
  cfg.packet.retransmit_timeout_max = Milliseconds(40.0);
  cfg.max_virtual_time = Seconds(120.0);
  return cfg;
}

DsmStats SumDsm(const core::RunReport& report) {
  DsmStats sum;
  for (const core::NodeReport& nr : report.nodes) {
    sum.read_faults += nr.dsm.read_faults;
    sum.write_faults += nr.dsm.write_faults;
    sum.use_deferrals += nr.dsm.use_deferrals;
    sum.grant_reserves += nr.dsm.grant_reserves;
    sum.stale_invalidations_ignored += nr.dsm.stale_invalidations_ignored;
    sum.stale_transfer_dups_ignored += nr.dsm.stale_transfer_dups_ignored;
    sum.discarded_installs += nr.dsm.discarded_installs;
  }
  return sum;
}

uint64_t SumDuplicateReplies(const core::RunReport& report) {
  uint64_t sum = 0;
  for (const core::NodeReport& nr : report.nodes) {
    sum += nr.packet.duplicate_replies;
  }
  return sum;
}

// --- Seed-replay determinism -----------------------------------------------------------------

TEST(FuzzReplayTest, SameScenarioAndSeedReplayIdentically) {
  const FuzzResult a = RunFuzzCase("mixed", 3, {});
  const FuzzResult b = RunFuzzCase("mixed", 3, {});
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.output_ok, b.output_ok);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.violations, b.violations);
  EXPECT_EQ(a.oracle_checks, b.oracle_checks);
  EXPECT_EQ(a.net.messages_dropped, b.net.messages_dropped);
  EXPECT_EQ(a.net.messages_duplicated, b.net.messages_duplicated);
  EXPECT_EQ(a.net.retransmissions, b.net.retransmissions);
  EXPECT_EQ(a.dsm.write_faults, b.dsm.write_faults);
  EXPECT_EQ(a.dsm.page_requests_served, b.dsm.page_requests_served);
}

TEST(FuzzReplayTest, CleanScenarioIsAnOracleCanary) {
  // No faults: any oracle violation here is a false positive in the oracle itself.
  const FuzzResult r = RunFuzzCase("clean", 0, {});
  EXPECT_TRUE(r.ok()) << r.Summary();
  EXPECT_GT(r.oracle_checks, 0u);
  EXPECT_GT(r.quiescent_points, 0u);
}

// --- Pinned fuzzer finds ---------------------------------------------------------------------

// Found by: dfil_fuzz --scenario stall --seed 11 (also stall/8, stall/13, clean/6). Write-write
// page ping-pong where install+service charges push the node's clock past the next steal
// request's arrival, so the event loop serves the steal before the woken faulting filament ever
// runs — with service latency above the Mirage window the page bounces forever and no writer
// completes an access (virtual time runs to the cap). Fixed by the use-once hold: a page fetched
// for blocked waiters is not served away until one of them has run (PageEntry::pending_use).
TEST(FuzzPinnedRegressionTest, UseOnceHoldBreaksWriteWriteLivelock) {
  for (const uint64_t seed : {uint64_t{11}, uint64_t{8}, uint64_t{13}}) {
    const FuzzResult r = RunFuzzCase("stall", seed, {});
    EXPECT_TRUE(r.ok()) << r.Summary();
    // The livelock ran to the 120 s virtual-time cap; the fixed runs finish in well under a
    // second of virtual time.
    EXPECT_LT(r.makespan, Seconds(10.0)) << r.Summary();
  }
}

// Found by: dfil_fuzz --scenario page-chaos --seed 0. A read-copy install raced with an
// invalidation: the owner served the read, granted the page to a writer, and the writer's
// invalidation overtook the read reply — installing the in-flight bytes would resurrect a stale
// untracked copy. Fixed by PageEntry::discard_install (drop the install, re-fault).
// (Seed re-pinned to page-chaos/113 when the matrix grew the diff protocol and protocol
// adaptation: the extra RNG draws re-rolled every case, and seed 0 no longer hits the race.
// Re-pinned again to page-chaos/181 — a coalesce-off case, keeping the original uncoalesced
// character of the race — when the coalesce dimension flipped 113 on and its timing shift
// stopped the install from racing the invalidation.)
TEST(FuzzPinnedRegressionTest, InvalidationOvertakingReadReplyDiscardsInstall) {
  const FuzzResult r = RunFuzzCase("page-chaos", 181, {});
  EXPECT_TRUE(r.ok()) << r.Summary();
  EXPECT_GT(r.dsm.discarded_installs, 0u);
}

// Pins PR 1's idempotent ownership-transfer re-serve: under heavy page-request loss the grant
// record (granted_to, grant_seq == requester fault_seq) re-serves lost transfers instead of
// creating a second owner or deadlocking the pair.
TEST(FuzzPinnedRegressionTest, LostOwnershipTransfersReServeFromGrantRecord) {
  const FuzzResult r = RunFuzzCase("page-chaos", 11, {});
  EXPECT_TRUE(r.ok()) << r.Summary();
  EXPECT_GT(r.dsm.grant_reserves, 0u);
}

// Pins PR 1's FaultAndWait re-check after the fault-handling charge (write-invalidate under
// uniform loss: the charge can dispatch the last invalidation ack, completing the upgrade before
// the fault picks a branch — acting on the stale view re-requested an owned page from self).
TEST(FuzzPinnedRegressionTest, WriteInvalidateUnderLossCompletesCorrectly) {
  const FuzzResult r = RunFuzzCase("uniform-loss", 9, {});
  EXPECT_TRUE(r.ok()) << r.Summary();
  EXPECT_GT(r.net.retransmissions, 0u);
}

// Pins the stale-done guard in NodeRuntime's reduce handler (DESIGN.md §11). With coalescing on,
// a reduce-up and its gated diff merge travel unacked; the barrier done broadcast stands in for
// both acks. Under loss the done for epoch E-1 arrives AGAIN — a duplicated raw broadcast, or the
// reliable done request retransmitted because this node's reply to it was lost — after the node
// already sent epoch E's pair. Cancelling E's requests on that stale done orphaned the lost gated
// merge; the parent then deferred the up forever (merge-epoch piggyback guard) until it aborted at
// the retransmission limit. Found by the coalesce fuzz dimension on every one of these seeds.
TEST(FuzzPinnedRegressionTest, StaleDoneMustNotCancelNextEpochSyncRequests) {
  for (const uint64_t seed : {uint64_t{3}, uint64_t{8}, uint64_t{53}}) {
    const FuzzResult r = RunFuzzCase("uniform-loss", seed, {});
    EXPECT_TRUE(r.ok()) << r.Summary();
    EXPECT_NE(r.config_desc.find("coalesce"), std::string::npos) << r.Summary();
  }
  for (const uint64_t seed : {uint64_t{20}, uint64_t{28}}) {
    const FuzzResult r = RunFuzzCase("burst-loss", seed, {});
    EXPECT_TRUE(r.ok()) << r.Summary();
    EXPECT_NE(r.config_desc.find("coalesce"), std::string::npos) << r.Summary();
  }
}

// --- Directed adversarial runs (duplication / reordering defenses) ---------------------------

JacobiParams SmallJacobi() {
  JacobiParams p;
  p.n = 16;
  p.iterations = 4;
  p.pools = 3;
  return p;
}

// Every invalidation is duplicated with up to a full iteration of extra delay, so duplicates
// routinely arrive after the invalidated node write-faulted and re-acquired ownership (jacobi
// swaps grids each iteration: this iteration's invalidated reader is next iteration's writer).
// The stale duplicate must be ignored (before the fix this was a DFIL_CHECK crash; honoring it
// would invalidate a live owner).
TEST(DuplicationDefenseTest, DuplicateInvalidationsIgnoredAfterReacquisition) {
  core::ClusterConfig cfg = AdversarialConfig(3, dsm::Pcp::kWriteInvalidate);
  sim::FaultRule dup;
  dup.type = static_cast<uint32_t>(net::Service::kInvalidate);
  dup.duplicate = 1.0;
  dup.delay_min = Milliseconds(1.0);
  dup.delay_max = Milliseconds(40.0);
  cfg.fault_plan.rules.push_back(dup);
  cfg.fault_plan.seed = 77;
  dsm::CoherenceOracle oracle;
  cfg.coherence_oracle = &oracle;

  // n=20 rows are 160 B, so 512 B pages straddle the strip boundaries and are read AND written
  // by neighboring nodes, which is what makes an invalidated reader re-acquire ownership (by
  // writing its own rows) while the duplicate is still in flight. Three nodes matter: with two,
  // the writer of a straddling page is always the node that just read it, so the transferred
  // copyset never holds a third party and actual invalidations are rare.
  JacobiParams p = SmallJacobi();
  p.n = 20;
  p.iterations = 6;
  const AppRun faulted = RunJacobiDf(p, cfg);
  const AppRun reference = RunJacobiSeq(p, {});
  ASSERT_TRUE(faulted.report.completed) << faulted.report.deadlock_report;
  EXPECT_EQ(faulted.output, reference.output);
  EXPECT_TRUE(oracle.violations().empty()) << oracle.violations().front();
  EXPECT_GT(SumDsm(faulted.report).stale_invalidations_ignored, 0u);
}

// Every page request is duplicated with up to 25 ms of extra delay under migratory, where
// ownership cycles: a duplicated transfer request can chase back to a node that has since
// re-acquired the page. Serving it would demote the owner and orphan the page (the original
// requester is long done with that fault); the grant record recognizes and drops it.
TEST(DuplicationDefenseTest, DuplicateTransferRequestsIgnoredAfterReacquisition) {
  core::ClusterConfig cfg = AdversarialConfig(2, dsm::Pcp::kMigratory);
  sim::FaultRule dup;
  dup.type = static_cast<uint32_t>(net::Service::kPageRequest);
  dup.duplicate = 1.0;
  dup.delay_min = Milliseconds(1.0);
  dup.delay_max = Milliseconds(25.0);
  cfg.fault_plan.rules.push_back(dup);
  cfg.fault_plan.seed = 91;
  dsm::CoherenceOracle oracle;
  cfg.coherence_oracle = &oracle;

  const JacobiParams p = SmallJacobi();
  const AppRun faulted = RunJacobiDf(p, cfg);
  const AppRun reference = RunJacobiSeq(p, {});
  ASSERT_TRUE(faulted.report.completed) << faulted.report.deadlock_report;
  EXPECT_EQ(faulted.output, reference.output);
  EXPECT_TRUE(oracle.violations().empty()) << oracle.violations().front();
  EXPECT_GT(SumDsm(faulted.report).stale_transfer_dups_ignored, 0u);
}

// --- Reply idempotence (property) ------------------------------------------------------------

// Replies are never buffered: a retransmitted or duplicated request makes the service rebuild
// its reply from current state, and receivers drop reply duplicates by sequence number. So
// duplicating (or delaying) EVERY reply must leave the computation bitwise identical, with the
// duplicates visible only in the duplicate_replies counter.
class ReplyIdempotenceTest : public ::testing::TestWithParam<dsm::Pcp> {};

TEST_P(ReplyIdempotenceTest, DuplicatedRepliesLeaveStateIdentical) {
  core::ClusterConfig cfg = AdversarialConfig(3, GetParam());
  sim::FaultRule dup;
  dup.klass = sim::MsgClass::kReply;
  dup.duplicate = 1.0;
  dup.delay_min = Milliseconds(0.1);
  dup.delay_max = Milliseconds(2.0);
  cfg.fault_plan.rules.push_back(dup);
  cfg.fault_plan.seed = 5;
  dsm::CoherenceOracle oracle;
  cfg.coherence_oracle = &oracle;

  const JacobiParams p = SmallJacobi();
  const AppRun faulted = RunJacobiDf(p, cfg);
  const AppRun reference = RunJacobiSeq(p, {});
  ASSERT_TRUE(faulted.report.completed) << faulted.report.deadlock_report;
  EXPECT_EQ(faulted.output, reference.output);
  EXPECT_TRUE(oracle.violations().empty()) << oracle.violations().front();
  // Every duplicated reply the network delivered was recognized and dropped by a receiver.
  EXPECT_GT(faulted.report.net.messages_duplicated, 0u);
  EXPECT_GT(SumDuplicateReplies(faulted.report), 0u);
}

TEST_P(ReplyIdempotenceTest, ReorderedRepliesLeaveStateIdentical) {
  core::ClusterConfig cfg = AdversarialConfig(3, GetParam());
  sim::FaultRule delay;
  delay.klass = sim::MsgClass::kReply;
  delay.delay = 1.0;
  delay.delay_min = Milliseconds(0.1);
  delay.delay_max = Milliseconds(3.0);
  cfg.fault_plan.rules.push_back(delay);
  cfg.fault_plan.seed = 6;
  dsm::CoherenceOracle oracle;
  cfg.coherence_oracle = &oracle;

  const JacobiParams p = SmallJacobi();
  const AppRun faulted = RunJacobiDf(p, cfg);
  const AppRun reference = RunJacobiSeq(p, {});
  ASSERT_TRUE(faulted.report.completed) << faulted.report.deadlock_report;
  EXPECT_EQ(faulted.output, reference.output);
  EXPECT_TRUE(oracle.violations().empty()) << oracle.violations().front();
  EXPECT_GT(faulted.report.net.messages_delayed, 0u);
}

INSTANTIATE_TEST_SUITE_P(Pcps, ReplyIdempotenceTest,
                         ::testing::Values(dsm::Pcp::kMigratory, dsm::Pcp::kWriteInvalidate,
                                           dsm::Pcp::kImplicitInvalidate),
                         [](const auto& info) {
                           switch (info.param) {
                             case dsm::Pcp::kMigratory:
                               return std::string("Migratory");
                             case dsm::Pcp::kWriteInvalidate:
                               return std::string("WriteInvalidate");
                             default:
                               return std::string("ImplicitInvalidate");
                           }
                         });

}  // namespace
}  // namespace dfil::apps
