// Per-pool profiling tests (DESIGN.md §14): the attribution contract of common/poolprof.h.
//
// The load-bearing invariants:
//   * Exact partition — sum(pool run) + other_run == the wait-state run ledger, at SimTime
//     resolution (both sides are fed from the same Charge quanta). This must be checked
//     in-process: the metrics JSON rounds to microseconds, where the partition only holds to
//     ±1 µs per row.
//   * Schedule invariance — profiling on vs off yields byte-identical traces and identical
//     counters; the profiler observes the schedule, never perturbs it.
//   * Deterministic fn ids — filament-function ids are assigned by first-registration order, so
//     they agree across nodes of an SPMD run and across repeated runs.
#include <map>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "src/apps/jacobi.h"
#include "src/core/cluster.h"
#include "src/core/metrics_io.h"
#include "tools/report_lib.h"

namespace dfil {
namespace {

core::ClusterConfig ProfiledConfig() {
  core::ClusterConfig cfg;
  cfg.nodes = 8;
  cfg.costs = sim::CostModel::SunIpcEthernet();
  cfg.network = core::NetworkKind::kSharedEthernet;
  cfg.dsm.pcp = dsm::Pcp::kImplicitInvalidate;
  cfg.waitstate_enabled = true;
  cfg.pool_profile_enabled = true;
  return cfg;
}

core::RunReport QuickJacobi(const core::ClusterConfig& cfg) {
  apps::JacobiParams p;
  p.n = 256;
  p.iterations = 3;
  apps::AppRun run = apps::RunJacobiDf(p, cfg);
  EXPECT_TRUE(run.report.completed) << run.report.deadlock_report;
  return run.report;
}

TEST(PoolProfTest, ExactPartitionAtSimTimeResolution) {
  core::RunReport r = QuickJacobi(ProfiledConfig());
  ASSERT_EQ(r.nodes.size(), 8u);
  for (const core::NodeReport& n : r.nodes) {
    // The partition is exact, not approximate: every Charge quantum that lands in the
    // wait-state RUN ledger lands in exactly one pool ledger or in other_run.
    EXPECT_EQ(n.poolprof.pool_run_total() + n.poolprof.other_run(), n.waits.run_time())
        << "node " << n.node;
    // Jacobi DF runs three pools per node; each must have observed filaments and a bound fn.
    EXPECT_FALSE(n.poolprof.pools().empty()) << "node " << n.node;
    for (const auto& [pool, ledger] : n.poolprof.pools()) {
      EXPECT_GE(ledger.fn, 0) << "node " << n.node << " pool " << pool;
      EXPECT_GT(ledger.filaments_run, 0u) << "node " << n.node << " pool " << pool;
    }
  }
}

TEST(PoolProfTest, FnIdsDeterministicAcrossNodesAndRuns) {
  core::RunReport r1 = QuickJacobi(ProfiledConfig());
  core::RunReport r2 = QuickJacobi(ProfiledConfig());
  ASSERT_EQ(r1.nodes.size(), r2.nodes.size());
  // SPMD: every node registers filament functions in the same order, so the set of fn ids in
  // play agrees cluster-wide.
  std::map<int, int> fn_of_pool;  // pool id -> fn id, from node 0
  for (const auto& [pool, ledger] : r1.nodes[0].poolprof.pools()) {
    fn_of_pool[pool] = ledger.fn;
  }
  for (const core::NodeReport& n : r1.nodes) {
    for (const auto& [pool, ledger] : n.poolprof.pools()) {
      auto it = fn_of_pool.find(pool);
      ASSERT_NE(it, fn_of_pool.end()) << "node " << n.node << " pool " << pool;
      EXPECT_EQ(ledger.fn, it->second) << "node " << n.node << " pool " << pool;
    }
  }
  // Determinism: an identical config reproduces the ledgers exactly.
  for (size_t i = 0; i < r1.nodes.size(); ++i) {
    const auto& p1 = r1.nodes[i].poolprof;
    const auto& p2 = r2.nodes[i].poolprof;
    EXPECT_EQ(p1.other_run(), p2.other_run()) << "node " << i;
    ASSERT_EQ(p1.pools().size(), p2.pools().size()) << "node " << i;
    for (const auto& [pool, l1] : p1.pools()) {
      const auto& l2 = p2.pools().at(pool);
      EXPECT_EQ(l1.run, l2.run) << "node " << i << " pool " << pool;
      EXPECT_EQ(l1.blocked, l2.blocked) << "node " << i << " pool " << pool;
      EXPECT_EQ(l1.faults, l2.faults) << "node " << i << " pool " << pool;
      EXPECT_EQ(l1.filaments_run, l2.filaments_run) << "node " << i << " pool " << pool;
      EXPECT_EQ(l1.fn, l2.fn) << "node " << i << " pool " << pool;
    }
  }
}

TEST(PoolProfTest, ProfilingOnVsOffIsScheduleInvariant) {
  core::ClusterConfig on = ProfiledConfig();
  on.trace_enabled = true;
  core::ClusterConfig off = on;
  off.pool_profile_enabled = false;

  core::RunReport r_on = QuickJacobi(on);
  core::RunReport r_off = QuickJacobi(off);

  // The profiler must never charge time, send messages, or branch the runtime: the two runs
  // are the same schedule, down to the trace bytes.
  EXPECT_EQ(r_on.makespan, r_off.makespan);
  EXPECT_EQ(r_on.events, r_off.events);
  EXPECT_EQ(r_on.net.messages_sent, r_off.net.messages_sent);
  EXPECT_EQ(r_on.net.bytes_sent, r_off.net.bytes_sent);
  ASSERT_NE(r_on.trace, nullptr);
  ASSERT_NE(r_off.trace, nullptr);
  std::ostringstream trace_on;
  std::ostringstream trace_off;
  r_on.trace->WriteChromeTrace(trace_on);
  r_off.trace->WriteChromeTrace(trace_off);
  EXPECT_EQ(trace_on.str(), trace_off.str());

  // Off really is off: the ledgers stay empty, and the metrics export carries no pool rows.
  for (const core::NodeReport& n : r_off.nodes) {
    EXPECT_TRUE(n.poolprof.empty()) << "node " << n.node;
  }
  std::ostringstream os;
  core::WriteMetricsJson(r_off, "poolprof_off", os);
  report::RunSummary run;
  std::string error;
  ASSERT_TRUE(report::ParseRun(os.str(), &run, &error)) << error;
  EXPECT_TRUE(run.pools_by_fn.empty());
  for (const auto& node : run.per_node) {
    EXPECT_TRUE(node.pools.empty()) << "node " << node.node;
  }
  // And the schedule-invariance claim is visible to readers: the digest ignores the knob.
  EXPECT_EQ(on.DigestHex(), off.DigestHex());
}

TEST(PoolProfTest, MetricsExportCarriesPoolsAndResidual) {
  core::RunReport r = QuickJacobi(ProfiledConfig());
  std::ostringstream os;
  core::WriteMetricsJson(r, "poolprof_on", os);
  report::RunSummary run;
  std::string error;
  ASSERT_TRUE(report::ParseRun(os.str(), &run, &error)) << error;

  // Cluster-wide rollup: at least the pool fns plus the residual row.
  ASSERT_FALSE(run.pools_by_fn.empty());
  bool rollup_residual = false;
  for (const auto& row : run.pools_by_fn) {
    rollup_residual = rollup_residual || (row.fn == -1);
  }
  EXPECT_TRUE(rollup_residual);

  ASSERT_EQ(run.per_node.size(), r.nodes.size());
  for (size_t i = 0; i < run.per_node.size(); ++i) {
    const auto& node = run.per_node[i];
    ASSERT_FALSE(node.pools.empty()) << "node " << node.node;
    // Exactly one residual row per node, carrying all serve time (handler context serves the
    // cluster, not the pool it preempts) plus run time outside any pool.
    double run_sum = 0.0;
    double serve_sum = 0.0;
    size_t residuals = 0;
    for (const auto& row : node.pools) {
      run_sum += row.run_us;
      serve_sum += row.serve_us;
      if (row.pool == -1) {
        ++residuals;
        EXPECT_EQ(row.fn, -1);
        EXPECT_NEAR(row.serve_us, node.serve_us, 1.0) << "node " << node.node;
      } else {
        EXPECT_EQ(row.serve_us, 0.0) << "node " << node.node << " pool " << row.pool;
      }
    }
    EXPECT_EQ(residuals, 1u) << "node " << node.node;
    // In JSON the partition holds to microsecond rounding only (±1 µs per row); the exact
    // SimTime identity is checked in-process above.
    EXPECT_NEAR(run_sum, node.run_us, static_cast<double>(node.pools.size()))
        << "node " << node.node;
    EXPECT_NEAR(serve_sum, node.serve_us, 1.0) << "node " << node.node;
  }
}

}  // namespace
}  // namespace dfil
