// Tests for the machine-dependent context switch, stacks, and server threads — both backends.
#include "src/threads/server_thread.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "src/threads/context.h"
#include "src/threads/stack.h"

namespace dfil::threads {
namespace {

class ContextBackendTest : public ::testing::TestWithParam<ContextBackend> {};

TEST_P(ContextBackendTest, ThreadRunsAndFinishes) {
  ThreadSystem sys(GetParam());
  bool ran = false;
  ServerThread* t = sys.Create([&] { ran = true; });
  sys.SwitchTo(t);
  EXPECT_TRUE(ran);
  EXPECT_EQ(t->state(), ThreadState::kDone);
  EXPECT_EQ(sys.current(), nullptr);
}

TEST_P(ContextBackendTest, BlockAndResumePreservesLocals) {
  ThreadSystem sys(GetParam());
  std::vector<int> trace;
  ServerThread* t = sys.Create([&] {
    int local = 41;
    double fp = 2.5;
    trace.push_back(local);
    sys.current()->set_state(ThreadState::kBlocked);
    sys.current()->set_block_reason("test");
    sys.SwitchToHost();
    // Locals must survive the suspension.
    trace.push_back(local + 1);
    trace.push_back(static_cast<int>(fp * 4));
  });
  sys.SwitchTo(t);
  EXPECT_EQ(t->state(), ThreadState::kBlocked);
  EXPECT_EQ(t->block_reason(), "test");
  t->set_state(ThreadState::kReady);
  sys.SwitchTo(t);
  EXPECT_EQ(t->state(), ThreadState::kDone);
  EXPECT_EQ(trace, (std::vector<int>{41, 42, 10}));
}

TEST_P(ContextBackendTest, ManyThreadsInterleave) {
  ThreadSystem sys(GetParam());
  constexpr int kThreads = 16;
  constexpr int kRounds = 50;
  std::vector<int> progress(kThreads, 0);
  std::vector<ServerThread*> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.push_back(sys.Create([&, i] {
      for (int r = 0; r < kRounds; ++r) {
        progress[i] = r + 1;
        sys.current()->set_state(ThreadState::kReady);
        sys.SwitchToHost();
      }
    }));
  }
  // Round-robin until everyone is done.
  bool any_alive = true;
  while (any_alive) {
    any_alive = false;
    for (ServerThread* t : threads) {
      if (t->state() == ThreadState::kReady) {
        sys.SwitchTo(t);
        any_alive = any_alive || t->state() != ThreadState::kDone;
      }
    }
  }
  for (int i = 0; i < kThreads; ++i) {
    EXPECT_EQ(progress[i], kRounds);
  }
}

TEST_P(ContextBackendTest, DeepCallChainsSurviveSwitches) {
  ThreadSystem sys(GetParam());
  // Recursive function that yields at every level, stressing saved stack contents.
  struct Recurser {
    ThreadSystem* sys;
    int Run(int depth) {
      if (depth == 0) {
        return 1;
      }
      char pad[128];
      std::memset(pad, depth & 0xff, sizeof(pad));
      sys->current()->set_state(ThreadState::kReady);
      sys->SwitchToHost();
      int below = Run(depth - 1);
      // Verify our frame was not clobbered while suspended.
      for (char c : pad) {
        if (c != static_cast<char>(depth & 0xff)) {
          return -1000000;
        }
      }
      return below + depth;
    }
  };
  int result = 0;
  Recurser rec{&sys};
  ServerThread* t = sys.Create([&] { result = rec.Run(100); });
  while (t->state() != ThreadState::kDone) {
    sys.SwitchTo(t);
  }
  EXPECT_EQ(result, 1 + 100 * 101 / 2);
}

TEST_P(ContextBackendTest, RecycleReusesThreadsAndStacks) {
  ThreadSystem sys(GetParam());
  int runs = 0;
  for (int i = 0; i < 100; ++i) {
    ServerThread* t = sys.Create([&] { ++runs; });
    sys.SwitchTo(t);
    ASSERT_EQ(t->state(), ThreadState::kDone);
    sys.Recycle(t);
  }
  EXPECT_EQ(runs, 100);
  EXPECT_EQ(sys.live_threads(), 0u);
  // Sequential create/recycle must not grow the stack pool beyond one stack.
  EXPECT_EQ(sys.stacks_allocated(), 1u);
}

TEST_P(ContextBackendTest, OnExitHookFires) {
  ThreadSystem sys(GetParam());
  ServerThread* exited = nullptr;
  sys.on_exit = [&](ServerThread* t) { exited = t; };
  ServerThread* t = sys.Create([] {});
  sys.SwitchTo(t);
  EXPECT_EQ(exited, t);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, ContextBackendTest,
                         ::testing::Values(ContextBackend::kAsm, ContextBackend::kUcontext),
                         [](const auto& info) {
                           return info.param == ContextBackend::kAsm ? "Asm" : "Ucontext";
                         });

TEST(StackTest, CanaryDetectsUnderflow) {
  Stack stack(16384);
  EXPECT_TRUE(stack.CanaryIntact());
  // Scribble below the usable region (i.e., the overflow direction on x86).
  std::memset(stack.usable().data() - 8, 0xAB, 8);
  EXPECT_FALSE(stack.CanaryIntact());
}

TEST(StackPoolTest, AcquireReleaseRoundTrips) {
  StackPool pool(32768);
  auto s1 = pool.Acquire();
  auto s2 = pool.Acquire();
  EXPECT_EQ(pool.allocated(), 2u);
  std::byte* raw1 = s1->usable().data();
  pool.Release(std::move(s1));
  pool.Release(std::move(s2));
  EXPECT_EQ(pool.pooled(), 2u);
  // LIFO reuse.
  auto s3 = pool.Acquire();
  EXPECT_EQ(s3->usable().data(), raw1 == s3->usable().data() ? raw1 : s3->usable().data());
  EXPECT_EQ(pool.allocated(), 2u);
}

}  // namespace
}  // namespace dfil::threads
