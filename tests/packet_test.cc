// Tests for the Packet reliable-datagram protocol: Figure 3 scenarios, loss sweeps, duplicate
// suppression, critical-section deferral, and the response cache for non-idempotent services.
#include <gtest/gtest.h>

#include <memory>
#include <optional>

#include "src/net/packet.h"
#include "src/sim/machine.h"

namespace dfil::net {
namespace {

// Host that runs only Packet handlers — no server threads needed at this layer.
class MiniHost : public sim::NodeHost {
 public:
  MiniHost(NodeId id, sim::Machine* machine, PacketConfig config = PacketConfig{}) : id_(id) {
    endpoint = std::make_unique<PacketEndpoint>(
        machine, id, config, [this](TimeCategory, SimTime t) { clock_ += t; },
        [this] { return clock_; });
  }
  NodeId id() const override { return id_; }
  SimTime Clock() const override { return clock_; }
  bool Runnable() const override { return false; }
  bool Done() const override { return true; }
  void Step() override {}
  void AdvanceTo(SimTime t) override { clock_ = t > clock_ ? t : clock_; }
  void OnDatagram(sim::Datagram d) override { endpoint->OnDatagram(std::move(d)); }
  std::string DescribeBlocked() const override { return ""; }

  std::unique_ptr<PacketEndpoint> endpoint;

 private:
  NodeId id_;
  SimTime clock_ = 0;
};

struct Rig {
  std::unique_ptr<sim::Machine> machine;
  std::unique_ptr<MiniHost> a, b;

  explicit Rig(double loss_rate = 0.0, uint64_t seed = 1) {
    sim::CostModel costs = sim::CostModel::SunIpcEthernet();
    machine = std::make_unique<sim::Machine>(std::make_unique<sim::SharedEthernet>(costs),
                                             costs, sim::FaultPlan::UniformLoss(loss_rate, seed));
    a = std::make_unique<MiniHost>(0, machine.get());
    b = std::make_unique<MiniHost>(1, machine.get());
    machine->AddHost(a.get());
    machine->AddHost(b.get());
  }
};

Payload Int64Payload(int64_t v) {
  WireWriter w;
  w.Put(v);
  return w.Take();
}

TEST(PacketTest, RequestReplyRoundTrip) {
  Rig rig;
  rig.b->endpoint->RegisterService(
      Service::kTestEcho,
      [](NodeId, WireReader r) -> std::optional<Payload> {
        return Int64Payload(r.Get<int64_t>() + 1);
      },
      true);
  int64_t got = 0;
  rig.a->endpoint->SendRequest(1, Service::kTestEcho, Int64Payload(41), [&](Payload p) {
    got = WireReader(p).Get<int64_t>();
  });
  rig.machine->Run();
  EXPECT_EQ(got, 42);
  EXPECT_EQ(rig.a->endpoint->stats().retransmissions, 0u);
  EXPECT_EQ(rig.a->endpoint->outstanding(), 0u);
}

TEST(PacketTest, ManyOutstandingRequestsComplete) {
  Rig rig;
  rig.b->endpoint->RegisterService(
      Service::kTestEcho,
      [](NodeId, WireReader r) -> std::optional<Payload> {
        return Int64Payload(r.Get<int64_t>() * 2);
      },
      true);
  int64_t sum = 0;
  constexpr int kRequests = 50;
  for (int i = 0; i < kRequests; ++i) {
    rig.a->endpoint->SendRequest(1, Service::kTestEcho, Int64Payload(i), [&](Payload p) {
      sum += WireReader(p).Get<int64_t>();
    });
  }
  rig.machine->Run();
  EXPECT_EQ(sum, 2 * (kRequests * (kRequests - 1) / 2));
}

class PacketLossTest : public ::testing::TestWithParam<std::tuple<double, uint64_t>> {};

TEST_P(PacketLossTest, ReliableUnderLoss) {
  const auto [loss, seed] = GetParam();
  Rig rig(loss, seed);
  int64_t served = 0;
  rig.b->endpoint->RegisterService(
      Service::kTestEcho,
      [&](NodeId, WireReader r) -> std::optional<Payload> {
        ++served;
        return Int64Payload(r.Get<int64_t>());
      },
      true);
  int replies = 0;
  constexpr int kRequests = 30;
  for (int i = 0; i < kRequests; ++i) {
    rig.a->endpoint->SendRequest(1, Service::kTestEcho, Int64Payload(i),
                                 [&](Payload) { ++replies; });
  }
  sim::RunResult r = rig.machine->Run();
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(replies, kRequests);
  EXPECT_EQ(rig.a->endpoint->outstanding(), 0u);
  if (loss > 0) {
    EXPECT_GT(rig.a->endpoint->stats().retransmissions, 0u);
  }
  // Idempotent loss recovery (Figure 3c): each request id is first-served exactly once; every
  // further serve of a retransmission is a reply rebuilt from current state, never a buffered one.
  const PacketStats& bs = rig.b->endpoint->stats();
  EXPECT_EQ(bs.replies_first_serve, static_cast<uint64_t>(kRequests));
  EXPECT_EQ(bs.replies_rebuilt, static_cast<uint64_t>(served) - kRequests);
  EXPECT_EQ(bs.replies_first_serve + bs.replies_rebuilt, bs.replies_sent);
}

INSTANTIATE_TEST_SUITE_P(LossSweep, PacketLossTest,
                         ::testing::Combine(::testing::Values(0.05, 0.2, 0.5),
                                            ::testing::Values(1u, 2u, 3u, 4u)));

TEST(PacketTest, NonIdempotentServiceRunsOncePerRequest) {
  // Reply loss forces retransmission; the response cache must re-send the old reply instead of
  // re-running the mutating service.
  Rig rig(0.35, 7);
  int mutations = 0;
  rig.b->endpoint->RegisterService(
      Service::kTestMutate,
      [&](NodeId, WireReader) -> std::optional<Payload> {
        ++mutations;
        return Int64Payload(mutations);
      },
      /*idempotent=*/false);
  constexpr int kRequests = 25;
  int replies = 0;
  int64_t sum = 0;
  for (int i = 0; i < kRequests; ++i) {
    rig.a->endpoint->SendRequest(1, Service::kTestMutate, {}, [&](Payload p) {
      ++replies;
      sum += WireReader(p).Get<int64_t>();
    });
  }
  rig.machine->Run();
  EXPECT_EQ(replies, kRequests);
  EXPECT_EQ(mutations, kRequests) << "a retransmitted request re-ran a mutating service";
  // Each reply value 1..kRequests delivered exactly once.
  EXPECT_EQ(sum, kRequests * (kRequests + 1) / 2);
}

TEST(PacketTest, CriticalSectionDefersMutatingRequests) {
  Rig rig;
  bool critical = true;
  rig.b->endpoint->in_critical_section = [&] { return critical; };
  int mutations = 0;
  rig.b->endpoint->RegisterService(
      Service::kTestMutate,
      [&](NodeId, WireReader) -> std::optional<Payload> {
        ++mutations;
        return Payload{};
      },
      /*idempotent=*/false);
  bool done = false;
  rig.a->endpoint->SendRequest(1, Service::kTestMutate, {}, [&](Payload) { done = true; });
  // Release the critical section partway through: the deferred request's retransmission lands.
  rig.machine->ScheduleTimer(1, Milliseconds(150.0), [&] { critical = false; }).Release();
  rig.machine->Run();
  EXPECT_TRUE(done);
  EXPECT_EQ(mutations, 1);
  EXPECT_GT(rig.b->endpoint->stats().deferred_requests, 0u);
  EXPECT_GT(rig.a->endpoint->stats().retransmissions, 0u);
}

TEST(PacketTest, ServiceDeferralViaNullopt) {
  Rig rig;
  int attempts = 0;
  rig.b->endpoint->RegisterService(
      Service::kTestEcho,
      [&](NodeId, WireReader) -> std::optional<Payload> {
        if (++attempts < 3) {
          return std::nullopt;  // busy; the requester's retransmission retries
        }
        return Int64Payload(99);
      },
      true);
  int64_t got = 0;
  rig.a->endpoint->SendRequest(1, Service::kTestEcho, {}, [&](Payload p) {
    got = WireReader(p).Get<int64_t>();
  });
  rig.machine->Run();
  EXPECT_EQ(got, 99);
  EXPECT_EQ(attempts, 3);
}

TEST(PacketTest, RawDatagramsAreFireAndForget) {
  Rig rig(1.0, 1);  // total loss
  int received = 0;
  rig.b->endpoint->RegisterRawHandler(Service::kAppData,
                                      [&](NodeId, Payload) { ++received; });
  rig.a->endpoint->SendRaw(1, Service::kAppData, Int64Payload(1));
  sim::RunResult r = rig.machine->Run();
  EXPECT_TRUE(r.completed);  // nothing retries; the datagram is simply gone
  EXPECT_EQ(received, 0);
  EXPECT_EQ(rig.machine->net_stats().messages_dropped, 1u);
}

class AckModeLossTest : public ::testing::TestWithParam<double> {};

TEST_P(AckModeLossTest, TcpLikeModeIsAlsoReliable) {
  // The paper's §3 remark: a TCP-like mechanism (buffer + ack replies) also works — it just costs
  // an extra ack per exchange and reply buffering.
  PacketConfig cfg;
  cfg.ack_replies = true;
  sim::CostModel costs = sim::CostModel::SunIpcEthernet();
  auto machine = std::make_unique<sim::Machine>(std::make_unique<sim::SharedEthernet>(costs),
                                                costs, sim::FaultPlan::UniformLoss(GetParam(), 11));
  MiniHost a(0, machine.get(), cfg);
  MiniHost b(1, machine.get(), cfg);
  machine->AddHost(&a);
  machine->AddHost(&b);
  int mutations = 0;
  b.endpoint->RegisterService(
      Service::kTestMutate,
      [&](NodeId, WireReader) -> std::optional<Payload> {
        ++mutations;
        return Int64Payload(mutations);
      },
      /*idempotent=*/false);
  int replies = 0;
  constexpr int kRequests = 20;
  for (int i = 0; i < kRequests; ++i) {
    a.endpoint->SendRequest(1, Service::kTestMutate, {}, [&](Payload) { ++replies; });
  }
  sim::RunResult r = machine->Run();
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(replies, kRequests);
  EXPECT_EQ(mutations, kRequests);
  // Every exchange carries an explicit ack in this mode.
  EXPECT_GE(a.endpoint->stats().acks_sent, static_cast<uint64_t>(kRequests));
  if (GetParam() == 0.0) {
    // Quiet network: exactly 3 messages per exchange (request, reply, ack) vs Packet's 2 — the
    // overhead the paper's design avoids.
    EXPECT_EQ(machine->net_stats().messages_sent, static_cast<uint64_t>(3 * kRequests));
  }
}

INSTANTIATE_TEST_SUITE_P(Loss, AckModeLossTest, ::testing::Values(0.0, 0.2));

TEST(PacketTest, RetransmissionUsesExponentialBackoff) {
  Rig rig(1.0, 1);  // nothing gets through; watch the retry clock
  rig.a->endpoint->config().retransmit_limit = 4;
  rig.b->endpoint->RegisterService(
      Service::kTestEcho, [](NodeId, WireReader) -> std::optional<Payload> { return Payload{}; },
      true);
  rig.a->endpoint->SendRequest(1, Service::kTestEcho, {}, [](Payload) {});
  EXPECT_DEATH(rig.machine->Run(), "exceeded the retransmission limit");
}

}  // namespace
}  // namespace dfil::net
