// Cross-variant validation: every application's CG and DF programs must reproduce the sequential
// program's results, across node counts and consistency protocols (small problem sizes).
#include <gtest/gtest.h>

#include <cmath>

#include "src/apps/exprtree.h"
#include "src/apps/jacobi.h"
#include "src/apps/matmul.h"
#include "src/apps/quadrature.h"

namespace dfil::apps {
namespace {

core::ClusterConfig BaseConfig(int nodes) {
  core::ClusterConfig cfg;
  cfg.nodes = nodes;
  return cfg;
}

void ExpectSameVector(const std::vector<double>& a, const std::vector<double>& b,
                      double tol = 0.0) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    if (tol == 0.0) {
      ASSERT_EQ(a[i], b[i]) << "index " << i;
    } else {
      ASSERT_NEAR(a[i], b[i], tol) << "index " << i;
    }
  }
}

class MatmulNodes : public ::testing::TestWithParam<int> {};

TEST_P(MatmulNodes, CgAndDfMatchSequential) {
  MatmulParams p;
  p.n = 48;
  AppRun seq = RunMatmulSeq(p, BaseConfig(1));
  AppRun cg = RunMatmulCg(p, BaseConfig(GetParam()));
  AppRun df = RunMatmulDf(p, BaseConfig(GetParam()));
  ASSERT_TRUE(seq.report.completed);
  ASSERT_TRUE(cg.report.completed) << cg.report.deadlock_report;
  ASSERT_TRUE(df.report.completed) << df.report.deadlock_report;
  ExpectSameVector(seq.output, cg.output);
  ExpectSameVector(seq.output, df.output);
}

INSTANTIATE_TEST_SUITE_P(Nodes, MatmulNodes, ::testing::Values(1, 2, 3, 4, 8));

class JacobiCase : public ::testing::TestWithParam<std::tuple<int, dsm::Pcp, int>> {};

TEST_P(JacobiCase, VariantsMatchSequential) {
  const auto [nodes, pcp, pools] = GetParam();
  JacobiParams p;
  p.n = 32;
  p.iterations = 20;
  p.pools = pools;
  AppRun seq = RunJacobiSeq(p, BaseConfig(1));
  core::ClusterConfig cfg = BaseConfig(nodes);
  cfg.dsm.pcp = pcp;
  AppRun cg = RunJacobiCg(p, BaseConfig(nodes));
  AppRun df = RunJacobiDf(p, cfg);
  ASSERT_TRUE(cg.report.completed) << cg.report.deadlock_report;
  ASSERT_TRUE(df.report.completed) << df.report.deadlock_report;
  ExpectSameVector(seq.output, cg.output);
  ExpectSameVector(seq.output, df.output);
  EXPECT_EQ(seq.checksum, df.checksum);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, JacobiCase,
    ::testing::Combine(::testing::Values(1, 2, 4, 8),
                       ::testing::Values(dsm::Pcp::kImplicitInvalidate,
                                         dsm::Pcp::kWriteInvalidate, dsm::Pcp::kMigratory),
                       ::testing::Values(1, 3)));

TEST(JacobiOddNodes, NonAlignedStripsStillCorrect) {
  // 3 nodes over 32 rows: strip boundaries fall mid-page, so writes share pages. The protocols
  // must still serialize correctly (it thrashes, but stays correct — paper §5's remark).
  JacobiParams p;
  p.n = 32;
  p.iterations = 10;
  AppRun seq = RunJacobiSeq(p, BaseConfig(1));
  core::ClusterConfig cfg = BaseConfig(3);
  cfg.dsm.pcp = dsm::Pcp::kWriteInvalidate;
  AppRun df = RunJacobiDf(p, cfg);
  ASSERT_TRUE(df.report.completed) << df.report.deadlock_report;
  ExpectSameVector(seq.output, df.output);
}

class QuadNodes : public ::testing::TestWithParam<int> {};

TEST_P(QuadNodes, AllVariantsAgree) {
  QuadratureParams p;
  p.tolerance = 1e-5;  // small eval count for tests
  p.bag_tasks = 64;
  AppRun seq = RunQuadratureSeq(p, BaseConfig(1));
  AppRun cg = RunQuadratureCgStatic(p, BaseConfig(GetParam()));
  AppRun bag = RunQuadratureCgBag(p, BaseConfig(GetParam()));
  AppRun df = RunQuadratureDf(p, BaseConfig(GetParam()));
  ASSERT_TRUE(cg.report.completed) << cg.report.deadlock_report;
  ASSERT_TRUE(bag.report.completed) << bag.report.deadlock_report;
  ASSERT_TRUE(df.report.completed) << df.report.deadlock_report;
  // DF preserves the sequential association exactly; CG variants re-partition the recursion.
  EXPECT_EQ(seq.checksum, df.checksum);
  const double tol = std::fabs(seq.checksum) * 1e-6;
  EXPECT_NEAR(seq.checksum, cg.checksum, tol);
  EXPECT_NEAR(seq.checksum, bag.checksum, tol);
}

INSTANTIATE_TEST_SUITE_P(Nodes, QuadNodes, ::testing::Values(1, 2, 3, 4, 8));

class TreeNodes : public ::testing::TestWithParam<int> {};

TEST_P(TreeNodes, CgAndDfMatchSequential) {
  ExprTreeParams p;
  p.height = 4;
  p.matrix_dim = 12;
  AppRun seq = RunExprTreeSeq(p, BaseConfig(1));
  AppRun cg = RunExprTreeCg(p, BaseConfig(GetParam()));
  AppRun df = RunExprTreeDf(p, BaseConfig(GetParam()));
  ASSERT_TRUE(cg.report.completed) << cg.report.deadlock_report;
  ASSERT_TRUE(df.report.completed) << df.report.deadlock_report;
  ExpectSameVector(seq.output, cg.output);
  ExpectSameVector(seq.output, df.output);
}

INSTANTIATE_TEST_SUITE_P(Nodes, TreeNodes, ::testing::Values(1, 2, 4, 8));

TEST(TreeNonPow2, DfHandlesAnyNodeCount) {
  ExprTreeParams p;
  p.height = 3;
  p.matrix_dim = 8;
  AppRun seq = RunExprTreeSeq(p, BaseConfig(1));
  for (int nodes : {3, 5, 6}) {
    AppRun df = RunExprTreeDf(p, BaseConfig(nodes));
    ASSERT_TRUE(df.report.completed) << df.report.deadlock_report;
    ExpectSameVector(seq.output, df.output);
  }
}

}  // namespace
}  // namespace dfil::apps
