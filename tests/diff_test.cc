// dfil_diff library tests: ParseRun hardening (malformed-input corpus), fingerprint
// comparability, run diffing, CLI-flag parsing, and the result-history round trip.
//
// The pinned acceptance test at the bottom re-creates the PR's motivating story: two fixed-seed
// 8-node Jacobi runs that differ only in PCP (write-invalidate vs the multiple-writer diff
// protocol), diffed from their metrics alone — the report must name the shared edge pages and
// the dsm.page_data_bytes movement without any trace in hand.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/apps/jacobi.h"
#include "src/common/json.h"
#include "src/core/cluster.h"
#include "src/core/metrics_io.h"
#include "tools/report_lib.h"

namespace dfil {
namespace {

// --- ParseRun hardening ---------------------------------------------------------------------

// A syntactically minimal but structurally complete v1 document (the floor ParseRun accepts).
const char kMinimalV1[] =
    "{\"schema\": \"dfil-metrics-v1\", \"label\": \"t\", \"pcp\": \"wi\", \"nodes\": 1,"
    " \"completed\": 1, \"makespan_us\": 5.0, \"per_node\": [{\"node\": 0}]}";

TEST(ParseRunHardeningTest, AcceptsMinimalV1Document) {
  report::RunSummary run;
  std::string error;
  ASSERT_TRUE(report::ParseRun(kMinimalV1, &run, &error)) << error;
  EXPECT_EQ(run.schema_version, 1);
  EXPECT_EQ(run.label, "t");
  EXPECT_EQ(run.nodes, 1);
  EXPECT_TRUE(run.completed);
  ASSERT_EQ(run.per_node.size(), 1u);
  EXPECT_TRUE(run.fingerprint.empty());
}

TEST(ParseRunHardeningTest, RejectsMalformedCorpus) {
  // Every entry must be rejected with a non-empty, field-level error — never parsed into a
  // zeroed summary a downstream gate would silently "pass".
  const struct {
    const char* name;
    std::string text;
  } corpus[] = {
      {"empty", ""},
      {"garbage", "not json at all"},
      {"root array", "[1, 2, 3]"},
      {"root number", "42"},
      {"unterminated object", "{\"schema\": \"dfil-metrics-v1\""},
      {"missing schema", "{\"label\": \"t\", \"pcp\": \"wi\", \"nodes\": 1, \"completed\": 1,"
                         " \"makespan_us\": 1, \"per_node\": []}"},
      {"schema wrong type", "{\"schema\": 2, \"label\": \"t\", \"pcp\": \"wi\", \"nodes\": 1,"
                            " \"completed\": 1, \"makespan_us\": 1, \"per_node\": []}"},
      {"unknown schema", "{\"schema\": \"dfil-metrics-v9\", \"label\": \"t\", \"pcp\": \"wi\","
                         " \"nodes\": 1, \"completed\": 1, \"makespan_us\": 1, \"per_node\": []}"},
      {"missing label", "{\"schema\": \"dfil-metrics-v1\", \"pcp\": \"wi\", \"nodes\": 1,"
                        " \"completed\": 1, \"makespan_us\": 1, \"per_node\": []}"},
      {"missing pcp", "{\"schema\": \"dfil-metrics-v1\", \"label\": \"t\", \"nodes\": 1,"
                      " \"completed\": 1, \"makespan_us\": 1, \"per_node\": []}"},
      {"nodes wrong type", "{\"schema\": \"dfil-metrics-v1\", \"label\": \"t\", \"pcp\": \"wi\","
                           " \"nodes\": \"eight\", \"completed\": 1, \"makespan_us\": 1,"
                           " \"per_node\": []}"},
      {"missing makespan", "{\"schema\": \"dfil-metrics-v1\", \"label\": \"t\", \"pcp\": \"wi\","
                           " \"nodes\": 1, \"completed\": 1, \"per_node\": []}"},
      {"missing per_node", "{\"schema\": \"dfil-metrics-v1\", \"label\": \"t\", \"pcp\": \"wi\","
                           " \"nodes\": 1, \"completed\": 1, \"makespan_us\": 1}"},
      {"per_node not array", "{\"schema\": \"dfil-metrics-v1\", \"label\": \"t\","
                             " \"pcp\": \"wi\", \"nodes\": 1, \"completed\": 1,"
                             " \"makespan_us\": 1, \"per_node\": {}}"},
      {"per_node entry not object", "{\"schema\": \"dfil-metrics-v1\", \"label\": \"t\","
                                    " \"pcp\": \"wi\", \"nodes\": 1, \"completed\": 1,"
                                    " \"makespan_us\": 1, \"per_node\": [7]}"},
      {"per_node entry missing node", "{\"schema\": \"dfil-metrics-v1\", \"label\": \"t\","
                                      " \"pcp\": \"wi\", \"nodes\": 1, \"completed\": 1,"
                                      " \"makespan_us\": 1, \"per_node\": [{}]}"},
      {"cluster wrong type", "{\"schema\": \"dfil-metrics-v1\", \"label\": \"t\","
                             " \"pcp\": \"wi\", \"nodes\": 1, \"completed\": 1,"
                             " \"makespan_us\": 1, \"cluster\": 3, \"per_node\": []}"},
  };
  for (const auto& c : corpus) {
    report::RunSummary run;
    std::string error;
    EXPECT_FALSE(report::ParseRun(c.text, &run, &error)) << c.name;
    EXPECT_FALSE(error.empty()) << c.name;
  }
}

TEST(ParseRunHardeningTest, RejectsTruncatedRealDocument) {
  // A real artifact chopped mid-write (disk full, killed bench) must fail loudly at every
  // truncation point, not just at a lucky prefix.
  apps::JacobiParams p;
  p.n = 256;
  p.iterations = 1;
  core::ClusterConfig cfg;
  cfg.nodes = 2;
  apps::AppRun run = apps::RunJacobiDf(p, cfg);
  ASSERT_TRUE(run.report.completed);
  std::ostringstream os;
  core::WriteMetricsJson(run.report, "trunc", os);
  const std::string full = os.str();
  report::RunSummary summary;
  std::string error;
  ASSERT_TRUE(report::ParseRun(full, &summary, &error)) << error;
  for (const double frac : {0.1, 0.5, 0.9, 0.99}) {
    const std::string cut = full.substr(0, static_cast<size_t>(full.size() * frac));
    error.clear();
    EXPECT_FALSE(report::ParseRun(cut, &summary, &error)) << "fraction " << frac;
    EXPECT_FALSE(error.empty()) << "fraction " << frac;
  }
}

// --- CLI flag vocabulary --------------------------------------------------------------------

report::CliOptions ParseArgs(std::vector<std::string> tokens, int first) {
  std::vector<char*> argv;
  argv.reserve(tokens.size());
  for (std::string& t : tokens) {
    argv.push_back(t.data());
  }
  return report::ParseCliOptions(static_cast<int>(argv.size()), argv.data(), first);
}

TEST(CliOptionsTest, ParsesBothFlagForms) {
  const report::CliOptions opt =
      ParseArgs({"tool", "--top", "5", "a.json", "--force", "--gate=g.json", "b.json"}, 1);
  EXPECT_TRUE(opt.error.empty()) << opt.error;
  EXPECT_EQ(opt.top_n, 5u);
  EXPECT_TRUE(opt.force);
  EXPECT_EQ(opt.gate_baseline, "g.json");
  ASSERT_EQ(opt.paths.size(), 2u);
  EXPECT_EQ(opt.paths[0], "a.json");
  EXPECT_EQ(opt.paths[1], "b.json");
}

TEST(CliOptionsTest, FlagsArePositionIndependent) {
  const report::CliOptions a = ParseArgs({"tool", "--history", "h.jsonl", "x.json"}, 1);
  const report::CliOptions b = ParseArgs({"tool", "x.json", "--history=h.jsonl"}, 1);
  EXPECT_EQ(a.history_path, b.history_path);
  EXPECT_EQ(a.paths, b.paths);
}

TEST(CliOptionsTest, RejectsUnknownFlagAndMissingValue) {
  EXPECT_EQ(ParseArgs({"tool", "--bogus"}, 1).error, "--bogus");
  EXPECT_FALSE(ParseArgs({"tool", "--gate"}, 1).error.empty());
  EXPECT_FALSE(ParseArgs({"tool", "--top"}, 1).error.empty());
}

// --- Fingerprints and diffing ---------------------------------------------------------------

report::RunSummary SummaryWith(const std::string& app, const std::string& config) {
  report::RunSummary run;
  run.label = "s";
  run.nodes = 4;
  run.fingerprint.app = app;
  run.fingerprint.config = config;
  run.fingerprint.seed = "1";
  return run;
}

TEST(FingerprintTest, IdenticalConfigsCompareIdentical) {
  const report::FingerprintCheck check =
      report::CompareFingerprints(SummaryWith("jacobi", "abc"), SummaryWith("jacobi", "abc"));
  EXPECT_TRUE(check.compatible);
  EXPECT_TRUE(check.identical_config);
  EXPECT_TRUE(check.mismatches.empty());
}

TEST(FingerprintTest, ConfigDeltaIsCompatibleButItemized) {
  report::RunSummary a = SummaryWith("jacobi", "abc");
  report::RunSummary b = SummaryWith("jacobi", "def");
  a.provenance["pcp"] = "write_invalidate";
  b.provenance["pcp"] = "diff";
  const report::FingerprintCheck check = report::CompareFingerprints(a, b);
  EXPECT_TRUE(check.compatible);
  EXPECT_FALSE(check.identical_config);
  ASSERT_FALSE(check.config_notes.empty());
  EXPECT_NE(check.config_notes[0].find("pcp"), std::string::npos);
}

TEST(FingerprintTest, DifferentAppsAreIncompatible) {
  const report::FingerprintCheck check =
      report::CompareFingerprints(SummaryWith("jacobi", "abc"), SummaryWith("fft", "abc"));
  EXPECT_FALSE(check.compatible);
  ASSERT_FALSE(check.mismatches.empty());
  EXPECT_NE(check.mismatches[0].find("app"), std::string::npos);
}

TEST(FingerprintTest, DifferentNodeCountsAreIncompatible) {
  report::RunSummary a = SummaryWith("jacobi", "abc");
  report::RunSummary b = SummaryWith("jacobi", "abc");
  b.nodes = 8;
  EXPECT_FALSE(report::CompareFingerprints(a, b).compatible);
}

TEST(DiffRunsTest, RanksByRelativeMovementAndSkipsUnchanged) {
  report::RunSummary a = SummaryWith("jacobi", "abc");
  report::RunSummary b = SummaryWith("jacobi", "abc");
  a.cluster_counters = {{"same", 100}, {"doubled", 50}, {"nudged", 1000}, {"gone", 7}};
  b.cluster_counters = {{"same", 100}, {"doubled", 100}, {"nudged", 1010}, {"fresh", 3}};
  const report::RunDiff diff = report::DiffRuns(a, b);
  std::vector<std::string> names;
  for (const report::Delta& d : diff.counters) {
    names.push_back(d.name);
  }
  // "same" is unchanged and omitted; counters present on only one side surface as full-swing
  // deltas ("fresh" 0 -> 3 is +300% against the ±1 floor base); "doubled" (+100%) outranks
  // "gone" (-100%) on |diff| at equal |rel|, and "nudged" (+1%) ranks last.
  EXPECT_EQ(names, (std::vector<std::string>{"fresh", "doubled", "gone", "nudged"}));
  EXPECT_DOUBLE_EQ(diff.counters[0].rel(), 3.0);
}

// --- Result history -------------------------------------------------------------------------

TEST(HistoryTest, MetricsLineRoundTripsThroughJson) {
  report::RunSummary run;
  std::string error;
  ASSERT_TRUE(report::ParseRun(kMinimalV1, &run, &error)) << error;
  run.fingerprint.app = "jacobi";
  run.cluster_counters["dsm.page_request_messages"] = 42;
  const std::string line = report::HistoryLine(run);
  EXPECT_EQ(line.find('\n'), std::string::npos);
  json::ParseResult parsed = json::Parse(line);
  ASSERT_TRUE(parsed.ok()) << parsed.error << " in " << line;
  EXPECT_EQ(parsed.value->GetString("kind"), "metrics");
  EXPECT_EQ(parsed.value->GetString("label"), "t");
  EXPECT_EQ(parsed.value->GetString("app"), "jacobi");
  const json::Value* counters = parsed.value->Get("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->GetNumber("dsm.page_request_messages"), 42.0);
}

TEST(HistoryTest, BenchLineRoundTripsThroughJson) {
  const std::string bench =
      "{\n  \"bench\": \"jacobi_pcp\",\n  \"nodes\": 8,\n  \"rows\": [\n    {\"x\": 1},\n"
      "    {\"x\": 2}\n  ]\n}\n";
  std::string line;
  std::string error;
  ASSERT_TRUE(report::BenchHistoryLine(bench, &line, &error)) << error;
  json::ParseResult parsed = json::Parse(line);
  ASSERT_TRUE(parsed.ok()) << parsed.error << " in " << line;
  EXPECT_EQ(parsed.value->GetString("kind"), "bench");
  EXPECT_EQ(parsed.value->GetString("bench"), "jacobi_pcp");
  EXPECT_EQ(parsed.value->GetNumber("rows"), 2.0);

  // Anything without a "bench" tag is rejected, not guessed at.
  EXPECT_FALSE(report::BenchHistoryLine("{\"rows\": []}", &line, &error));
  EXPECT_FALSE(error.empty());
}

TEST(HistoryTest, AppendIsIdempotent) {
  const std::string path = ::testing::TempDir() + "/dfil_history_test.jsonl";
  std::remove(path.c_str());
  const std::vector<std::string> lines = {"{\"kind\": \"bench\", \"bench\": \"a\"}",
                                          "{\"kind\": \"bench\", \"bench\": \"b\"}"};
  size_t appended = 0;
  std::string error;
  ASSERT_TRUE(report::AppendHistory(path, lines, &appended, &error)) << error;
  EXPECT_EQ(appended, 2u);
  // Re-appending the same lines (plus one new) only writes the new one.
  std::vector<std::string> again = lines;
  again.push_back("{\"kind\": \"bench\", \"bench\": \"c\"}");
  ASSERT_TRUE(report::AppendHistory(path, again, &appended, &error)) << error;
  EXPECT_EQ(appended, 1u);
  std::ifstream in(path);
  std::string file_line;
  std::vector<std::string> contents;
  while (std::getline(in, file_line)) {
    contents.push_back(file_line);
  }
  EXPECT_EQ(contents, again);
  std::remove(path.c_str());
}

// --- Pinned acceptance: the false-sharing story from counters alone -------------------------

report::RunSummary JacobiRunSummary(dsm::Pcp pcp) {
  apps::JacobiParams p;
  // 248 rows across 8 nodes = 31-row strips whose boundaries split 4 KB pages: genuine false
  // sharing (two neighbours write distinct rows of one page), the scenario the diff protocol
  // exists for. The aligned 256-row default never write-shares a page and diffs nothing.
  p.n = 248;
  p.iterations = 3;
  core::ClusterConfig cfg;
  cfg.nodes = 8;
  cfg.seed = 42;
  cfg.costs = sim::CostModel::SunIpcEthernet();
  cfg.network = core::NetworkKind::kSharedEthernet;
  cfg.dsm.pcp = pcp;
  apps::AppRun run = apps::RunJacobiDf(p, cfg);
  EXPECT_TRUE(run.report.completed) << run.report.deadlock_report;
  std::ostringstream os;
  // Same label for both runs: the app identity (label fallback) must match for the runs to be
  // comparable; the PCP difference is exactly the deliberate A/B the fingerprint itemizes.
  core::WriteMetricsJson(run.report, "jacobi8", os);
  report::RunSummary summary;
  std::string error;
  EXPECT_TRUE(report::ParseRun(os.str(), &summary, &error)) << error;
  return summary;
}

TEST(DiffAcceptanceTest, JacobiWiVsDiffNamesEdgePagesFromCountersAlone) {
  const report::RunSummary wi = JacobiRunSummary(dsm::Pcp::kWriteInvalidate);
  const report::RunSummary df = JacobiRunSummary(dsm::Pcp::kDiff);
  const report::RunDiff diff = report::DiffRuns(wi, df);

  // Same app, same shape, deliberately different protocol: comparable, non-identical config,
  // and the PCP move is itemized by name.
  EXPECT_TRUE(diff.fingerprints.compatible);
  EXPECT_FALSE(diff.fingerprints.identical_config);
  bool pcp_note = false;
  for (const std::string& note : diff.fingerprints.config_notes) {
    pcp_note = pcp_note || note.find("pcp") != std::string::npos;
  }
  EXPECT_TRUE(pcp_note);

  // The page-data movement is the headline: multiple-writer diffs replace the write-invalidate
  // ownership ping-pong on the shared boundary pages, cutting whole-page transfers by well over
  // the gate tolerance while the diff-merge counters appear from zero.
  auto find = [&](const std::string& name) -> const report::Delta* {
    for (const report::Delta& d : diff.counters) {
      if (d.name == name) {
        return &d;
      }
    }
    return nullptr;
  };
  const report::Delta* data_bytes = find("dsm.page_data_bytes");
  ASSERT_NE(data_bytes, nullptr)
      << "dsm.page_data_bytes moved out of the ranked counter deltas";
  EXPECT_LT(data_bytes->b, data_bytes->a);
  EXPECT_GT((data_bytes->a - data_bytes->b) / data_bytes->a, 0.10);
  const report::Delta* merges = find("dsm.diff_merges_sent");
  ASSERT_NE(merges, nullptr);
  EXPECT_EQ(merges->a, 0.0);
  EXPECT_GT(merges->b, 0.0);
  const report::Delta* write_faults = find("dsm.write_faults");
  ASSERT_NE(write_faults, nullptr);
  EXPECT_LT(write_faults->b, write_faults->a);

  // The per-page fault heat names the edge pages and nothing else. A strip boundary k lives at
  // byte 31k * 1984 (row = 248 doubles) inside each of the two grids (the second starts at byte
  // 248*248*8 of the shared heap); every ranked page delta must land within one page of a
  // boundary — interior pages behave identically under both protocols.
  ASSERT_FALSE(diff.pages.empty());
  std::set<uint64_t> pages_named;
  for (const report::Delta& d : diff.pages) {
    ASSERT_EQ(d.name.rfind("page ", 0), 0u) << d.name;
    pages_named.insert(std::stoull(d.name.substr(5)));
  }
  std::set<uint64_t> boundary_pages;
  const uint64_t row_bytes = 248 * sizeof(double);
  for (const uint64_t grid_base : {uint64_t{0}, uint64_t{248 * row_bytes}}) {
    for (uint64_t k = 1; k < 8; ++k) {
      boundary_pages.insert((grid_base + 31 * k * row_bytes) / 4096);
    }
  }
  for (const uint64_t page : pages_named) {
    uint64_t nearest = ~uint64_t{0};
    for (const uint64_t b : boundary_pages) {
      nearest = std::min(nearest, page > b ? page - b : b - page);
    }
    EXPECT_LE(nearest, 1u) << "page " << page << " is not a strip-edge page";
  }
  // The first boundary (rows 30/31 of grid one share page 15) is the canonical false-sharing
  // page; it must be named, with its write-invalidate fault heat halved by the diff protocol.
  EXPECT_TRUE(pages_named.count(15));

  // The report renders end to end (smoke: the CLI path over the same data; --top 50 keeps the
  // byte counters in view below the full-swing diff-protocol rows).
  std::ostringstream os;
  report::PrintRunDiff(diff, wi, df, 50, os);
  EXPECT_NE(os.str().find("dsm.page_data_bytes"), std::string::npos);
  EXPECT_NE(os.str().find("dsm.diff_merges_sent"), std::string::npos);
}

}  // namespace
}  // namespace dfil
