// Tests for the execution tracer and the high-level parallel-loop helpers.
#include <gtest/gtest.h>

#include <sstream>

#include "src/common/trace.h"
#include "src/core/cluster.h"
#include "src/core/global_array.h"
#include "src/core/parallel.h"

namespace dfil {
namespace {

using core::Cluster;
using core::ClusterConfig;
using core::NodeEnv;

TEST(TraceRecorderTest, SpansBalanceAndSerialize) {
  TraceRecorder rec;
  rec.Begin(0, 1, "test", "outer", Microseconds(1.0));
  rec.Begin(0, 1, "test", "inner", Microseconds(2.0));
  rec.Instant(0, 1, "test", "tick", Microseconds(3.0));
  rec.End(0, 1, Microseconds(4.0));
  rec.End(0, 1, Microseconds(5.0));
  EXPECT_EQ(rec.open_spans(), 0u);
  EXPECT_EQ(rec.event_count(), 5u);
  std::ostringstream os;
  rec.WriteChromeTrace(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"outer\""), std::string::npos);
  EXPECT_EQ(json.front(), '[');
}

TEST(TraceRecorderTest, EscapesNames) {
  TraceRecorder rec;
  rec.Instant(0, 0, "t", "a\"b\\c", 0);
  std::ostringstream os;
  rec.WriteChromeTrace(os);
  EXPECT_NE(os.str().find("a\\\"b\\\\c"), std::string::npos);
}

core::GlobalArray1D<double> g_trace_arr;

void TouchRemote(NodeEnv& env, int64_t i, int64_t, int64_t) {
  g_trace_arr.Read(env, static_cast<size_t>(i) % g_trace_arr.size());
  env.ChargeWork(Microseconds(4.0));
}

TEST(TraceIntegrationTest, ClusterRunProducesBalancedTrace) {
  ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.trace_enabled = true;
  Cluster cluster(cfg);
  g_trace_arr = core::GlobalArray1D<double>::Alloc(cluster.layout(), 2048, "arr");
  core::RunReport r = cluster.Run([&](NodeEnv& env) {
    if (env.node() == 0) {
      for (int i = 0; i < 2048; ++i) {
        g_trace_arr.Write(env, i, 1.0);
      }
    }
    env.Barrier();
    core::ParallelFor(env, 512, &TouchRemote);
  });
  ASSERT_TRUE(r.completed) << r.deadlock_report;
  ASSERT_NE(r.trace, nullptr);
  EXPECT_EQ(r.trace->open_spans(), 0u);
  EXPECT_GT(r.trace->event_count(), 10u);
  std::ostringstream os;
  r.trace->WriteChromeTrace(os);
  // Faults on node 1 must appear as spans (that is the overlap visualization).
  EXPECT_NE(os.str().find("fault p"), std::string::npos);
  EXPECT_NE(os.str().find("reduce"), std::string::npos);
  EXPECT_NE(os.str().find("pool"), std::string::npos);
}

TEST(TraceIntegrationTest, TracingOffByDefault) {
  ClusterConfig cfg;
  cfg.nodes = 2;
  Cluster cluster(cfg);
  core::RunReport r = cluster.Run([](NodeEnv& env) { env.Barrier(); });
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.trace, nullptr);
}

// --- ParallelFor helpers ---

core::GlobalArray1D<int64_t> g_par_arr;

void Fill(NodeEnv& env, int64_t i, int64_t, int64_t) {
  g_par_arr.Write(env, static_cast<size_t>(i), i * 3);
  env.ChargeWork(Microseconds(1.0));
}

class ParallelForNodes : public ::testing::TestWithParam<int> {};

TEST_P(ParallelForNodes, CoversEveryIndexExactlyOnce) {
  ClusterConfig cfg;
  cfg.nodes = GetParam();
  Cluster cluster(cfg);
  constexpr int kN = 1000;
  g_par_arr = core::GlobalArray1D<int64_t>::Alloc(cluster.layout(), kN, "arr");
  std::vector<int64_t> out(kN);
  core::RunReport r = cluster.Run([&](NodeEnv& env) {
    core::ParallelFor(env, kN, &Fill);
    const core::Block b = core::BlockOf(kN, env.node(), env.nodes());
    for (int64_t i = b.lo; i < b.hi; ++i) {
      out[i] = g_par_arr.Read(env, static_cast<size_t>(i));
    }
  });
  ASSERT_TRUE(r.completed) << r.deadlock_report;
  for (int i = 0; i < kN; ++i) {
    EXPECT_EQ(out[i], i * 3);
  }
}

INSTANTIATE_TEST_SUITE_P(Nodes, ParallelForNodes, ::testing::Values(1, 2, 3, 7, 8));

TEST(BlockOfTest, PartitionIsExactAndBalanced) {
  for (int nodes : {1, 2, 3, 7, 8, 13}) {
    for (int64_t count : {0, 1, 5, 100, 1001}) {
      int64_t covered = 0;
      int64_t min_size = count + 1, max_size = -1;
      for (int n = 0; n < nodes; ++n) {
        const core::Block b = core::BlockOf(count, n, nodes);
        covered += b.size();
        min_size = std::min(min_size, b.size());
        max_size = std::max(max_size, b.size());
        if (n > 0) {
          EXPECT_EQ(b.lo, core::BlockOf(count, n - 1, nodes).hi);
        }
      }
      EXPECT_EQ(covered, count);
      EXPECT_LE(max_size - min_size, 1);
    }
  }
}

struct Iterate2DState {
  core::GlobalArray2D<double> grid[2];
  int src = 0;
};

void Smooth(NodeEnv& env, int64_t i, int64_t j, int64_t) {
  auto* st = static_cast<Iterate2DState*>(env.user_ctx);
  if (i == 0 || j == 0 || i == 15 || j == 15) {
    return;  // boundary
  }
  const auto& u = st->grid[st->src];
  const auto& v = st->grid[1 - st->src];
  v.Write(env, i, j,
          0.25 * (u.Read(env, i - 1, j) + u.Read(env, i + 1, j) + u.Read(env, i, j - 1) +
                  u.Read(env, i, j + 1)));
  env.ChargeWork(Microseconds(2.0));
}

TEST(ParallelIterateTest, IterativeSweepWithAdaptivePools) {
  ClusterConfig cfg;
  cfg.nodes = 2;
  Cluster cluster(cfg);
  auto a = core::GlobalArray2D<double>::Alloc(cluster.layout(), 16, 16, false, "a");
  auto b = core::GlobalArray2D<double>::Alloc(cluster.layout(), 16, 16, false, "b");
  std::vector<Iterate2DState> states(2);
  double corner = 0;
  core::RunReport r = cluster.Run([&](NodeEnv& env) {
    Iterate2DState& st = states[env.node()];
    st.grid[0] = a;
    st.grid[1] = b;
    env.user_ctx = &st;
    if (env.node() == 0) {
      for (int i = 0; i < 16; ++i) {
        for (int j = 0; j < 16; ++j) {
          a.Write(env, i, j, i == 0 ? 10.0 : 0.0);
          b.Write(env, i, j, i == 0 ? 10.0 : 0.0);
        }
      }
    }
    env.Barrier();
    core::ParallelIterate2D(env, 16, 16, &Smooth, [&](int iter) {
      env.Barrier();
      st.src = 1 - st.src;
      return iter + 1 < 10;
    });
    if (env.node() == 0) {
      corner = states[0].grid[states[0].src].Read(env, 1, 1);
    }
  });
  ASSERT_TRUE(r.completed) << r.deadlock_report;
  EXPECT_GT(corner, 0.0);  // heat diffused inward
  EXPECT_LT(corner, 10.0);
}

}  // namespace
}  // namespace dfil
