// Tests for the distributed shared memory: layout/allocator, page groups, and the three page
// consistency protocols' invariants, exercised through full clusters.
#include <gtest/gtest.h>

#include "src/apps/jacobi.h"
#include "src/core/cluster.h"
#include "src/core/global_array.h"
#include "src/core/node_runtime.h"
#include "src/dsm/layout.h"

namespace dfil::dsm {
namespace {

using core::Cluster;
using core::ClusterConfig;
using core::GlobalArray1D;
using core::GlobalRef;
using core::NodeEnv;

// --- Layout / allocator ---

TEST(LayoutTest, AllocRespectsAlignment) {
  GlobalLayout layout;
  GlobalAddr a = layout.Alloc(3, 1);
  GlobalAddr b = layout.Alloc(8, 8);
  GlobalAddr c = layout.Alloc(1, 64);
  EXPECT_EQ(b % 8, 0u);
  EXPECT_EQ(c % 64, 0u);
  EXPECT_GT(b, a);
  EXPECT_GT(c, b);
}

TEST(LayoutTest, PaddedAllocationsShareNoPage) {
  GlobalLayout layout;
  GlobalAddr a = layout.AllocPadded(100, "a");
  GlobalAddr b = layout.AllocPadded(100, "b");
  EXPECT_NE(layout.PageOf(a), layout.PageOf(b));
  EXPECT_NE(layout.PageOf(a + 99), layout.PageOf(b));
}

TEST(LayoutTest, RowPaddedArrayPutsEachRowOnItsOwnPage) {
  GlobalLayout layout;
  // 10 doubles per row: far less than a page, padded to one page per row.
  GlobalAddr base = layout.AllocArray2D(4, 10, sizeof(double), /*pad_rows_to_pages=*/true, "m");
  EXPECT_EQ(base % layout.page_size(), 0u);
}

TEST(LayoutTest, SealAssignsOwnersAndRoundsRegion) {
  GlobalLayout layout;
  GlobalAddr a = layout.AllocPadded(layout.page_size() * 2, "a");
  layout.SetInitialOwner(a + layout.page_size(), layout.page_size(), 1);
  layout.Seal(2);
  EXPECT_EQ(layout.InitialOwner(layout.PageOf(a)), 0);
  EXPECT_EQ(layout.InitialOwner(layout.PageOf(a) + 1), 1);
  EXPECT_EQ(layout.region_bytes() % layout.page_size(), 0u);
}

TEST(LayoutTest, GroupsReportAllMembers) {
  GlobalLayout layout;
  layout.AllocPadded(layout.page_size() * 5, "blob");
  uint16_t g = layout.GroupPages(1, 3);
  layout.Seal(1);
  EXPECT_NE(g, kNoGroup);
  EXPECT_EQ(layout.GroupPagesOf(2), (std::vector<PageId>{1, 2, 3}));
  EXPECT_EQ(layout.GroupPagesOf(0), (std::vector<PageId>{0}));
}

TEST(LayoutTest, CustomPageSize) {
  GlobalLayout layout(/*page_shift=*/9);  // 512-byte pages
  EXPECT_EQ(layout.page_size(), 512u);
  GlobalAddr a = layout.AllocPadded(100, "a");
  GlobalAddr b = layout.AllocPadded(100, "b");
  EXPECT_EQ(layout.PageOf(b) - layout.PageOf(a), 1u);
}

// --- Protocol behaviour through full clusters ---

ClusterConfig Config(int nodes, Pcp pcp) {
  ClusterConfig cfg;
  cfg.nodes = nodes;
  cfg.dsm.pcp = pcp;
  return cfg;
}

TEST(DsmProtocolTest, ImplicitInvalidateSendsNoInvalidationMessages) {
  Cluster cluster(Config(4, Pcp::kImplicitInvalidate));
  auto x = GlobalRef<double>::Alloc(cluster.layout(), "x");
  core::RunReport r = cluster.Run([&](NodeEnv& env) {
    for (int iter = 0; iter < 5; ++iter) {
      if (env.node() == 0) {
        x.Write(env, iter * 1.0);
      }
      env.Barrier();
      EXPECT_DOUBLE_EQ(x.Read(env), iter * 1.0);
      env.Barrier();
    }
  });
  ASSERT_TRUE(r.completed) << r.deadlock_report;
  uint64_t invalidations = 0, implicit = 0;
  for (const auto& nr : r.nodes) {
    invalidations += nr.dsm.invalidations_sent;
    implicit += nr.dsm.implicit_invalidations;
  }
  EXPECT_EQ(invalidations, 0u);
  EXPECT_GT(implicit, 0u);
}

TEST(DsmProtocolTest, WriteInvalidateSendsInvalidations) {
  Cluster cluster(Config(4, Pcp::kWriteInvalidate));
  auto x = GlobalRef<double>::Alloc(cluster.layout(), "x");
  core::RunReport r = cluster.Run([&](NodeEnv& env) {
    for (int iter = 0; iter < 5; ++iter) {
      if (env.node() == iter % env.nodes()) {
        x.Write(env, iter * 1.0);
      }
      env.Barrier();
      EXPECT_DOUBLE_EQ(x.Read(env), iter * 1.0);
      env.Barrier();
    }
  });
  ASSERT_TRUE(r.completed) << r.deadlock_report;
  uint64_t invalidations = 0;
  for (const auto& nr : r.nodes) {
    invalidations += nr.dsm.invalidations_sent;
  }
  EXPECT_GT(invalidations, 0u);
}

TEST(DsmProtocolTest, MigratoryKeepsOneCopy) {
  // Under migratory even reads move the page; after the run exactly one node owns it.
  Cluster cluster(Config(4, Pcp::kMigratory));
  auto x = GlobalRef<int64_t>::Alloc(cluster.layout(), "x");
  std::vector<int64_t> seen(4);
  core::RunReport r = cluster.Run([&](NodeEnv& env) {
    if (env.node() == 0) {
      x.Write(env, 7);
    }
    env.Barrier();
    for (int turn = 0; turn < env.nodes(); ++turn) {
      if (turn == env.node()) {
        seen[env.node()] = x.Read(env);
      }
      env.Barrier();
    }
  });
  ASSERT_TRUE(r.completed) << r.deadlock_report;
  for (int64_t v : seen) {
    EXPECT_EQ(v, 7);
  }
}

TEST(DsmProtocolTest, OwnerForwardingChainsResolve) {
  // Ownership hops 0 -> 1 -> 2 -> 3; then node 0 (whose hint is stale) must chase redirects.
  Cluster cluster(Config(4, Pcp::kMigratory));
  auto x = GlobalRef<int64_t>::Alloc(cluster.layout(), "x");
  int64_t final_value = 0;
  core::RunReport r = cluster.Run([&](NodeEnv& env) {
    for (int turn = 1; turn < env.nodes(); ++turn) {
      if (env.node() == turn) {
        x.Write(env, x.Read(env) + turn);
      }
      env.Barrier();
    }
    if (env.node() == 0) {
      final_value = x.Read(env);
    }
  });
  ASSERT_TRUE(r.completed) << r.deadlock_report;
  EXPECT_EQ(final_value, 1 + 2 + 3);
  uint64_t forwards = 0;
  for (const auto& nr : r.nodes) {
    forwards += nr.dsm.page_forwards;
  }
  EXPECT_GT(forwards, 0u) << "stale hints should have produced at least one redirect";
}

TEST(DsmProtocolTest, PageGroupsFetchTogether) {
  ClusterConfig cfg = Config(2, Pcp::kWriteInvalidate);
  Cluster cluster(cfg);
  const size_t ps = cluster.layout().page_size();
  GlobalAddr blob = cluster.layout().AllocPadded(4 * ps, "blob");
  cluster.layout().GroupPages(cluster.layout().PageOf(blob), 4);
  core::RunReport r = cluster.Run([&](NodeEnv& env) {
    if (env.node() == 0) {
      for (size_t i = 0; i < 4 * ps; i += sizeof(uint64_t)) {
        env.Write<uint64_t>(blob + i, i);
      }
    }
    env.Barrier();
    if (env.node() == 1) {
      // Touch one byte of the first page: the whole group must arrive with one request.
      EXPECT_EQ(env.Read<uint64_t>(blob), 0u);
      for (size_t i = 0; i < 4 * ps; i += sizeof(uint64_t)) {
        EXPECT_EQ(env.Read<uint64_t>(blob + i), i);
      }
    }
    env.Barrier();
  });
  ASSERT_TRUE(r.completed) << r.deadlock_report;
  EXPECT_EQ(r.nodes[1].dsm.read_faults, 1u);
  EXPECT_EQ(r.nodes[0].dsm.page_requests_served, 1u);
}

TEST(DsmProtocolTest, MirageWindowDefersTransfers) {
  ClusterConfig cfg = Config(2, Pcp::kMigratory);
  cfg.dsm.mirage_window = Milliseconds(50.0);
  Cluster cluster(cfg);
  auto x = GlobalRef<int64_t>::Alloc(cluster.layout(), "x");
  core::RunReport r = cluster.Run([&](NodeEnv& env) {
    if (env.node() == 0) {
      x.Write(env, 1);
    }
    env.Barrier();
    if (env.node() == 1) {
      x.Write(env, 2);  // migrates the page; hold window starts at install
    }
    env.Barrier();
    if (env.node() == 0) {
      // Request arrives inside node 1's hold window: deferred, then satisfied by retransmission.
      EXPECT_EQ(x.Read(env), 2);
    }
    env.Barrier();
  });
  ASSERT_TRUE(r.completed) << r.deadlock_report;
  uint64_t deferrals = 0;
  for (const auto& nr : r.nodes) {
    deferrals += nr.dsm.mirage_deferrals;
  }
  EXPECT_GT(deferrals, 0u);
}

TEST(DsmProtocolTest, LostPageTrafficRecovers) {
  // Packet reliability end-to-end: page requests and transfers survive heavy loss.
  ClusterConfig cfg = Config(3, Pcp::kWriteInvalidate);
  cfg.fault_plan.loss_rate = 0.15;
  cfg.reliable_broadcast = true;  // barrier dissemination must survive loss too
  cfg.packet.retransmit_timeout = Milliseconds(20.0);
  Cluster cluster(cfg);
  auto arr = GlobalArray1D<int64_t>::Alloc(cluster.layout(), 1024, "arr");
  int64_t sum = 0;
  core::RunReport r = cluster.Run([&](NodeEnv& env) {
    if (env.node() == 0) {
      for (int i = 0; i < 1024; ++i) {
        arr.Write(env, i, i);
      }
    }
    env.Barrier();
    // Every node reads everything; node 2 then rewrites a slice (ownership transfers under loss).
    int64_t local = 0;
    for (int i = 0; i < 1024; ++i) {
      local += arr.Read(env, i);
    }
    EXPECT_EQ(local, 1024 * 1023 / 2);
    env.Barrier();
    if (env.node() == 2) {
      for (int i = 0; i < 100; ++i) {
        arr.Write(env, i, -1);
      }
    }
    env.Barrier();
    if (env.node() == 0) {
      sum = 0;
      for (int i = 0; i < 1024; ++i) {
        sum += arr.Read(env, i);
      }
    }
  });
  ASSERT_TRUE(r.completed) << r.deadlock_report;
  EXPECT_EQ(sum, 1024 * 1023 / 2 - (100 * 99 / 2) - 100);
  EXPECT_GT(r.net.messages_dropped, 0u);
  // Loss recovery for idempotent page traffic never replays buffered replies: re-serves are
  // rebuilt from current state, and the split accounts for every reply sent.
  uint64_t rebuilt = 0;
  for (const auto& nr : r.nodes) {
    EXPECT_EQ(nr.packet.replies_first_serve + nr.packet.replies_rebuilt, nr.packet.replies_sent);
    rebuilt += nr.packet.replies_rebuilt;
  }
  EXPECT_GT(rebuilt, 0u) << "15% loss over hundreds of transfers must rebuild some reply";
}

class PageSizeTest : public ::testing::TestWithParam<int> {};

TEST_P(PageSizeTest, ProtocolsWorkAtAnyPageSize) {
  ClusterConfig cfg = Config(3, Pcp::kWriteInvalidate);
  cfg.page_shift = static_cast<size_t>(GetParam());
  Cluster cluster(cfg);
  auto arr = GlobalArray1D<double>::Alloc(cluster.layout(), 4096, "arr");
  double total = 0;
  core::RunReport r = cluster.Run([&](NodeEnv& env) {
    const int per = 4096 / env.nodes();
    const int lo = env.node() * per;
    const int hi = env.node() == env.nodes() - 1 ? 4096 : lo + per;
    if (env.node() == 0) {
      for (int i = 0; i < 4096; ++i) {
        arr.Write(env, i, 1.0);
      }
    }
    env.Barrier();
    for (int i = lo; i < hi; ++i) {
      arr.Write(env, i, arr.Read(env, i) + env.node());
    }
    double local = 0;
    for (int i = lo; i < hi; ++i) {
      local += arr.Read(env, i);
    }
    total = env.Reduce(local, core::ReduceOp::kSum);
  });
  ASSERT_TRUE(r.completed) << r.deadlock_report;
  double expected = 4096;
  for (int n = 0; n < 3; ++n) {
    const int per = 4096 / 3;
    const int size = n == 2 ? 4096 - 2 * per : per;
    expected += static_cast<double>(n) * size;
  }
  EXPECT_DOUBLE_EQ(total, expected);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PageSizeTest, ::testing::Values(9, 12, 14));

// --- Bulk transfers / prefetching ---

TEST(DsmPrefetchTest, ExplicitPrefetchCoalescesRequestsIntoOneBulk) {
  Cluster cluster(Config(2, Pcp::kWriteInvalidate));
  const size_t ps = cluster.layout().page_size();
  GlobalAddr blob = cluster.layout().AllocPadded(8 * ps, "blob");
  const PageId first = cluster.layout().PageOf(blob);
  core::RunReport r = cluster.Run([&](NodeEnv& env) {
    if (env.node() == 0) {
      for (int p = 0; p < 8; ++p) {
        env.Write<uint64_t>(blob + p * ps, 100 + p);
      }
    }
    env.Barrier();
    if (env.node() == 1) {
      env.runtime().dsm().Prefetch(first, 8, AccessMode::kRead);
      for (int p = 0; p < 8; ++p) {
        EXPECT_EQ(env.Read<uint64_t>(blob + p * ps), 100u + p);
      }
    }
    env.Barrier();
  });
  ASSERT_TRUE(r.completed) << r.deadlock_report;
  const DsmStats& s1 = r.nodes[1].dsm;
  EXPECT_EQ(s1.bulk_requests, 1u);
  EXPECT_EQ(s1.bulk_pages_requested, 8u);
  EXPECT_EQ(s1.bulk_misses, 0u);
  EXPECT_EQ(s1.single_page_requests, 0u) << "all 8 pages should ride the one bulk request";
  EXPECT_EQ(r.nodes[0].dsm.bulk_pages_served, 8u);
}

TEST(DsmPrefetchTest, DetectorTurnsSequentialFaultsIntoBulkFetches) {
  ClusterConfig cfg = Config(2, Pcp::kWriteInvalidate);
  cfg.dsm.prefetch_detector = true;
  cfg.dsm.prefetch_min_run = 2;
  cfg.dsm.prefetch_degree = 4;
  Cluster cluster(cfg);
  const size_t ps = cluster.layout().page_size();
  GlobalAddr blob = cluster.layout().AllocPadded(16 * ps, "blob");
  core::RunReport r = cluster.Run([&](NodeEnv& env) {
    if (env.node() == 0) {
      for (int p = 0; p < 16; ++p) {
        env.Write<uint64_t>(blob + p * ps, p);
      }
    }
    env.Barrier();
    if (env.node() == 1) {
      uint64_t sum = 0;
      for (int p = 0; p < 16; ++p) {
        sum += env.Read<uint64_t>(blob + p * ps);
      }
      EXPECT_EQ(sum, 16u * 15 / 2);
    }
    env.Barrier();
  });
  ASSERT_TRUE(r.completed) << r.deadlock_report;
  const DsmStats& s1 = r.nodes[1].dsm;
  EXPECT_GT(s1.bulk_requests, 0u) << "two adjacent faults should have armed the detector";
  EXPECT_LT(s1.single_page_requests, 16u)
      << "detector prefetches should have absorbed most of the sequential faults";
  EXPECT_GT(s1.prefetched_pages, 0u);
  EXPECT_EQ(s1.prefetch_wasted, 0u) << "every page of the run is eventually read";
}

TEST(DsmPrefetchTest, BulkMissesAreRefaultedThroughOwnerForwarding) {
  // Pages 2 and 3 migrate to node 2 before node 1 prefetches the whole run with a stale hint
  // pointing at node 0: the bulk reply must report them as misses, and node 1 must recover them
  // through single-page requests chasing the owner-forwarding chain.
  Cluster cluster(Config(3, Pcp::kWriteInvalidate));
  const size_t ps = cluster.layout().page_size();
  GlobalAddr blob = cluster.layout().AllocPadded(8 * ps, "blob");
  const PageId first = cluster.layout().PageOf(blob);
  core::RunReport r = cluster.Run([&](NodeEnv& env) {
    if (env.node() == 0) {
      for (int p = 0; p < 8; ++p) {
        env.Write<uint64_t>(blob + p * ps, 100 + p);
      }
    }
    env.Barrier();
    if (env.node() == 2) {
      env.Write<uint64_t>(blob + 2 * ps, 202);
      env.Write<uint64_t>(blob + 3 * ps, 203);
    }
    env.Barrier();
    if (env.node() == 1) {
      env.runtime().dsm().Prefetch(first, 8, AccessMode::kRead);
      EXPECT_EQ(env.Read<uint64_t>(blob + 2 * ps), 202u);
      EXPECT_EQ(env.Read<uint64_t>(blob + 3 * ps), 203u);
      for (int p : {0, 1, 4, 5, 6, 7}) {
        EXPECT_EQ(env.Read<uint64_t>(blob + p * ps), 100u + p);
      }
    }
    env.Barrier();
  });
  ASSERT_TRUE(r.completed) << r.deadlock_report;
  const DsmStats& s1 = r.nodes[1].dsm;
  EXPECT_EQ(s1.bulk_misses, 2u);
  EXPECT_GE(s1.single_page_requests, 2u) << "missed pages re-fault individually";
  EXPECT_EQ(s1.bulk_requests, 1u);
}

TEST(DsmPrefetchTest, MigratoryProtocolNeverUsesBulkTransfers) {
  ClusterConfig cfg = Config(2, Pcp::kMigratory);
  cfg.dsm.prefetch_detector = true;
  Cluster cluster(cfg);
  const size_t ps = cluster.layout().page_size();
  GlobalAddr blob = cluster.layout().AllocPadded(8 * ps, "blob");
  const PageId first = cluster.layout().PageOf(blob);
  core::RunReport r = cluster.Run([&](NodeEnv& env) {
    if (env.node() == 0) {
      for (int p = 0; p < 8; ++p) {
        env.Write<uint64_t>(blob + p * ps, p);
      }
    }
    env.Barrier();
    if (env.node() == 1) {
      env.runtime().dsm().Prefetch(first, 8, AccessMode::kRead);  // must be a no-op
      uint64_t sum = 0;
      for (int p = 0; p < 8; ++p) {
        sum += env.Read<uint64_t>(blob + p * ps);
      }
      EXPECT_EQ(sum, 8u * 7 / 2);
    }
    env.Barrier();
  });
  ASSERT_TRUE(r.completed) << r.deadlock_report;
  for (const auto& nr : r.nodes) {
    EXPECT_EQ(nr.dsm.bulk_requests, 0u);
    EXPECT_EQ(nr.dsm.bulk_pages_served, 0u);
  }
}

TEST(DsmPrefetchTest, LostBulkRepliesAreRebuiltFromCurrentState) {
  ClusterConfig cfg = Config(2, Pcp::kWriteInvalidate);
  cfg.fault_plan.loss_rate = 0.25;
  cfg.reliable_broadcast = true;
  cfg.packet.retransmit_timeout = Milliseconds(20.0);
  Cluster cluster(cfg);
  const size_t ps = cluster.layout().page_size();
  GlobalAddr blob = cluster.layout().AllocPadded(16 * ps, "blob");
  const PageId first = cluster.layout().PageOf(blob);
  core::RunReport r = cluster.Run([&](NodeEnv& env) {
    if (env.node() == 0) {
      for (int p = 0; p < 16; ++p) {
        env.Write<uint64_t>(blob + p * ps, 100 + p);
      }
    }
    env.Barrier();
    if (env.node() == 1) {
      env.runtime().dsm().Prefetch(first, 16, AccessMode::kRead);
      for (int p = 0; p < 16; ++p) {
        EXPECT_EQ(env.Read<uint64_t>(blob + p * ps), 100u + p);
      }
    }
    env.Barrier();
  });
  ASSERT_TRUE(r.completed) << r.deadlock_report;
  EXPECT_GT(r.net.messages_dropped, 0u);
  EXPECT_GT(r.nodes[1].dsm.bulk_requests, 0u);
}

// --- Prefetch correctness sweep: DF Jacobi must match the sequential program with prefetching
// enabled, across protocols, node counts, and injected loss (the bulk path must not perturb any
// per-PCP state machine). Small pages make boundary rows span several pages, so both the
// detector and the strip hints actually fire.

class PrefetchSweep
    : public ::testing::TestWithParam<std::tuple<int, Pcp, double>> {};

TEST_P(PrefetchSweep, JacobiMatchesSequentialWithPrefetchingOn) {
  const auto [nodes, pcp, loss] = GetParam();
  apps::JacobiParams p;
  p.n = 32;
  p.iterations = 10;
  core::ClusterConfig seq_cfg;
  seq_cfg.nodes = 1;
  apps::AppRun seq = apps::RunJacobiSeq(p, seq_cfg);

  core::ClusterConfig cfg;
  cfg.nodes = nodes;
  cfg.dsm.pcp = pcp;
  cfg.dsm.prefetch_detector = true;
  cfg.dsm.prefetch_hints = true;
  cfg.page_shift = 10;  // 32 doubles/row = 256 B: four rows per page, several pages per strip
  if (loss > 0) {
    cfg.fault_plan.loss_rate = loss;
    cfg.reliable_broadcast = true;
    cfg.packet.retransmit_timeout = Milliseconds(20.0);
  }
  apps::AppRun df = apps::RunJacobiDf(p, cfg);
  ASSERT_TRUE(df.report.completed) << df.report.deadlock_report;
  ASSERT_EQ(seq.output.size(), df.output.size());
  for (size_t i = 0; i < seq.output.size(); ++i) {
    ASSERT_EQ(seq.output[i], df.output[i]) << "index " << i;
  }
  EXPECT_EQ(seq.checksum, df.checksum);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PrefetchSweep,
    ::testing::Combine(::testing::Values(2, 4, 8),
                       ::testing::Values(Pcp::kImplicitInvalidate, Pcp::kWriteInvalidate,
                                         Pcp::kMigratory),
                       ::testing::Values(0.0, 0.05)));

TEST(DsmPrefetchTest, RegularJacobiStripsWasteNoPrefetches) {
  // Property (hints only): with page-aligned strips, every page the hint layer prefetches is one
  // the pool re-reads every sweep, so no prefetched copy may ever die untouched. The detector is
  // off because its fixed lookahead legitimately overshoots the last strip boundary.
  apps::JacobiParams p;
  p.n = 64;
  p.iterations = 10;
  core::ClusterConfig cfg;
  cfg.nodes = 4;
  cfg.dsm.pcp = Pcp::kImplicitInvalidate;
  cfg.dsm.prefetch_hints = true;
  cfg.page_shift = 9;  // 64 doubles/row = 512 B = exactly one page: strips are page-aligned
  apps::AppRun df = apps::RunJacobiDf(p, cfg);
  ASSERT_TRUE(df.report.completed) << df.report.deadlock_report;
  uint64_t prefetched = 0, wasted = 0;
  for (const auto& nr : df.report.nodes) {
    prefetched += nr.dsm.prefetched_pages;
    wasted += nr.dsm.prefetch_wasted;
  }
  EXPECT_GT(prefetched, 0u) << "the hint layer should have prefetched the boundary rows";
  EXPECT_EQ(wasted, 0u) << "perfectly regular strips must not waste a single prefetch";
}

}  // namespace
}  // namespace dfil::dsm
