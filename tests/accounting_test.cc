// Invariant tests for virtual-time accounting (the basis of Figure 10's breakdown) and for the
// exactness of implicit-invalidate's per-iteration refetch pattern.
#include <gtest/gtest.h>

#include "src/apps/jacobi.h"
#include "src/core/cluster.h"
#include "src/core/global_array.h"

namespace dfil {
namespace {

using core::Cluster;
using core::ClusterConfig;
using core::NodeEnv;

TEST(AccountingTest, BusySingleNodeIsFullyAttributed) {
  ClusterConfig cfg;
  cfg.nodes = 1;
  Cluster cluster(cfg);
  core::RunReport r = cluster.Run([&](NodeEnv& env) {
    env.ChargeWork(Seconds(1.0));
    env.Charge(TimeCategory::kFilamentExec, Milliseconds(5.0));
  });
  ASSERT_TRUE(r.completed);
  // A node that never idles has every nanosecond attributed to a category.
  EXPECT_EQ(r.nodes[0].breakdown.Total(), r.nodes[0].finished_at);
  EXPECT_EQ(r.nodes[0].breakdown.Get(TimeCategory::kWork), Seconds(1.0));
}

TEST(AccountingTest, BreakdownNeverExceedsFinishTime) {
  ClusterConfig cfg;
  cfg.nodes = 4;
  Cluster cluster(cfg);
  auto x = core::GlobalRef<double>::Alloc(cluster.layout(), "x");
  core::RunReport r = cluster.Run([&](NodeEnv& env) {
    if (env.node() == 0) {
      x.Write(env, 1.0);
    }
    env.Barrier();
    env.ChargeWork(Milliseconds(env.node() * 3.0));
    EXPECT_DOUBLE_EQ(x.Read(env), 1.0);
    env.Barrier();
  });
  ASSERT_TRUE(r.completed) << r.deadlock_report;
  for (const auto& nr : r.nodes) {
    // Charged + classified-idle time can never exceed the node's total run time; any shortfall is
    // an unclassified tail gap (the node finished before a final wake).
    EXPECT_LE(nr.breakdown.Total(), nr.finished_at);
    EXPECT_GT(nr.breakdown.Total(), 0);
  }
}

TEST(AccountingTest, SyncDelayCapturesBarrierSkew) {
  ClusterConfig cfg;
  cfg.nodes = 2;
  Cluster cluster(cfg);
  core::RunReport r = cluster.Run([&](NodeEnv& env) {
    if (env.node() == 1) {
      env.ChargeWork(Milliseconds(50.0));  // node 0 waits ~50 ms at the barrier
    }
    env.Barrier();
  });
  ASSERT_TRUE(r.completed);
  EXPECT_GE(r.nodes[0].breakdown.Get(TimeCategory::kSyncDelay), Milliseconds(40.0));
  EXPECT_LT(r.nodes[1].breakdown.Get(TimeCategory::kSyncDelay), Milliseconds(10.0));
}

TEST(AccountingTest, WorkChargesAreIdenticalAcrossVariants) {
  // The same computation must charge the same kWork regardless of node count — the invariant
  // behind comparing DF against sequential times.
  apps::JacobiParams p;
  p.n = 32;
  p.iterations = 8;
  ClusterConfig one;
  one.nodes = 1;
  apps::AppRun seq = apps::RunJacobiSeq(p, one);
  ClusterConfig four;
  four.nodes = 4;
  apps::AppRun df = apps::RunJacobiDf(p, four);
  ASSERT_TRUE(seq.report.completed);
  ASSERT_TRUE(df.report.completed);
  SimTime seq_work = seq.report.nodes[0].breakdown.Get(TimeCategory::kWork);
  SimTime df_work = 0;
  for (const auto& nr : df.report.nodes) {
    df_work += nr.breakdown.Get(TimeCategory::kWork);
  }
  // Identical point updates => identical total work (init loop overhead differs slightly).
  EXPECT_NEAR(static_cast<double>(df_work) / static_cast<double>(seq_work), 1.0, 0.01);
}

TEST(ImplicitInvalidateTest, ExactlyOneEdgeRefetchPerIterationPerNode) {
  // 2 nodes over 32 rows: one 4 KB page holds 16 rows, each node owns exactly one page, and each
  // reads the neighbour's edge row once per iteration. Under implicit-invalidate the read copy
  // dies at every reduction, so read faults must equal iterations per node, exactly.
  apps::JacobiParams p;
  p.n = 32;
  p.iterations = 12;
  ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.dsm.pcp = dsm::Pcp::kImplicitInvalidate;
  apps::AppRun df = apps::RunJacobiDf(p, cfg);
  ASSERT_TRUE(df.report.completed) << df.report.deadlock_report;
  for (const auto& nr : df.report.nodes) {
    EXPECT_EQ(nr.dsm.read_faults, static_cast<uint64_t>(p.iterations)) << "node " << nr.node;
    EXPECT_EQ(nr.dsm.page_requests_served, static_cast<uint64_t>(p.iterations))
        << "node " << nr.node;
    EXPECT_EQ(nr.dsm.invalidations_sent, 0u);
  }
}

TEST(ImplicitInvalidateTest, WriteInvalidatePaysWithInvalidationMessages) {
  // Same geometry under write-invalidate: the fetch count is the same (the owner's next-iteration
  // write to its own edge page invalidates the neighbour's copy, forcing a refetch), but now each
  // of those refetches was bought with an explicit invalidate + ack — the message overhead
  // implicit-invalidate eliminates (paper Figure 11 vs Figure 5).
  apps::JacobiParams p;
  p.n = 32;
  p.iterations = 12;
  ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.dsm.pcp = dsm::Pcp::kWriteInvalidate;
  apps::AppRun df = apps::RunJacobiDf(p, cfg);
  ASSERT_TRUE(df.report.completed) << df.report.deadlock_report;
  uint64_t inv = 0;
  for (const auto& nr : df.report.nodes) {
    EXPECT_EQ(nr.dsm.read_faults, static_cast<uint64_t>(p.iterations)) << "node " << nr.node;
    inv += nr.dsm.invalidations_sent;
  }
  // One upgrade invalidation per node per iteration (minus the first, which starts owned-RW).
  EXPECT_GE(inv, static_cast<uint64_t>(2 * (p.iterations - 1)));

  // And the implicit-invalidate run is strictly cheaper in both messages and time.
  ClusterConfig cfg2;
  cfg2.nodes = 2;
  cfg2.dsm.pcp = dsm::Pcp::kImplicitInvalidate;
  apps::AppRun ii = apps::RunJacobiDf(p, cfg2);
  ASSERT_TRUE(ii.report.completed);
  EXPECT_LT(ii.report.net.messages_sent, df.report.net.messages_sent);
  EXPECT_LT(ii.report.makespan, df.report.makespan);
}

}  // namespace
}  // namespace dfil
