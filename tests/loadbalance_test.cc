// Tests for epoch-driven load balancing (DESIGN.md §13): the balancer-off invariance contract
// (disabled runs are byte-identical, knobs and all), schedule determinism of the balanced runs
// (replay-stable, unperturbed by tracing), page re-homing correctness under message loss and
// duplication with the coherence oracle attached, and ClusterConfig::Validate's accept/reject
// rules for the balancer knob block.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/cluster.h"
#include "src/core/config.h"
#include "src/core/global_array.h"
#include "src/core/node_env.h"
#include "src/dsm/coherence_oracle.h"
#include "src/net/packet.h"
#include "src/sim/fault_plan.h"

namespace dfil::core {
namespace {

// A deliberately skewed iterative workload, a miniature of bench_loadbalance: every node owns
// kPoolsPerNode pools of kFilamentsPerPool filaments, one page-aligned grid row per pool, and
// node 0 charges double for every filament. With the balancer off the cluster idles at each
// barrier waiting for node 0; with it on, pools (and their backing pages) should drain to
// node 0's neighbor.
constexpr int kNodes = 4;
constexpr int kSlowNode = 0;
constexpr int kSlowFactor = 2;
constexpr int kPoolsPerNode = 4;
constexpr int kFilamentsPerPool = 8;
// Enough iterations at enough work per filament that a migration's one-time cost (the migrate
// message plus one re-home fault per moved pool, ~4 ms each) amortizes within the run.
constexpr int kIterations = 32;
constexpr SimTime kPointCost = Microseconds(150.0);

struct LbState {
  GlobalArray2D<double> grid;
};

void BumpFilament(NodeEnv& env, int64_t row, int64_t col, int64_t) {
  auto* st = static_cast<LbState*>(env.user_ctx);
  const double v = st->grid.Read(env, static_cast<size_t>(row), static_cast<size_t>(col));
  st->grid.Write(env, static_cast<size_t>(row), static_cast<size_t>(col), v + 1.0);
  env.ChargeWork(kPointCost * (env.node() == kSlowNode ? kSlowFactor : 1));
}

struct LbRun {
  RunReport report;
  double validation_error = 0.0;  // sum over original-home cells of |cell - kIterations|
  std::string trace_json;         // WriteChromeTrace output when the run was traced
};

ClusterConfig BaseConfig() {
  ClusterConfig cfg;
  cfg.nodes = kNodes;
  cfg.seed = 7;
  cfg.waitstate_enabled = true;
  return cfg;
}

// Aggressive hysteresis so the tiny problem emits plans within its 16 epochs.
void EnableBalancer(ClusterConfig& cfg) {
  cfg.balancer.enabled = true;
  cfg.balancer.balance_patience_epochs = 1;
  cfg.balancer.balance_cooldown_epochs = 1;
}

LbRun RunSkewed(const ClusterConfig& cfg) {
  Cluster cluster(cfg);
  const size_t rows = static_cast<size_t>(kNodes) * kPoolsPerNode;
  const size_t cols = cluster.layout().page_size() / sizeof(double);
  auto grid = GlobalArray2D<double>::Alloc(cluster.layout(), rows, cols,
                                           /*pad_rows_to_pages=*/true, "lb_grid");
  for (int node = 0; node < kNodes; ++node) {
    for (int p = 0; p < kPoolsPerNode; ++p) {
      const size_t row = static_cast<size_t>(node) * kPoolsPerNode + p;
      cluster.layout().SetInitialOwner(grid.row_addr(row), cols * sizeof(double), node);
    }
  }

  LbRun out;
  std::vector<LbState> states(kNodes);
  std::vector<double> errors(kNodes, 0.0);
  out.report = cluster.Run([&](NodeEnv& env) {
    LbState& st = states[env.node()];
    st.grid = grid;
    env.user_ctx = &st;
    for (int p = 0; p < kPoolsPerNode; ++p) {
      const auto row = static_cast<int64_t>(env.node()) * kPoolsPerNode + p;
      const PoolHandle pool = env.CreatePool();
      for (int f = 0; f < kFilamentsPerPool; ++f) {
        env.CreateFilament(pool, &BumpFilament, row, f, 0);
      }
    }
    env.RunIterative([&](int iter) {
      env.Reduce(0.0, ReduceOp::kMax);
      return iter + 1 < kIterations;
    });
    // Wherever each pool ended up executing, every cell of this node's original rows must have
    // been bumped exactly once per iteration — a migrated filament that ran twice, never, or on
    // stale pages shows up here.
    double err = 0.0;
    for (int p = 0; p < kPoolsPerNode; ++p) {
      const size_t row = static_cast<size_t>(env.node()) * kPoolsPerNode + p;
      for (int f = 0; f < kFilamentsPerPool; ++f) {
        err += std::abs(st.grid.Read(env, row, static_cast<size_t>(f)) - kIterations);
      }
    }
    errors[env.node()] = err;
  });
  for (double e : errors) {
    out.validation_error += e;
  }
  if (out.report.trace != nullptr) {
    std::ostringstream os;
    out.report.trace->WriteChromeTrace(os);
    out.trace_json = os.str();
  }
  return out;
}

uint64_t SumCounter(const RunReport& report, const std::string& name) {
  uint64_t total = 0;
  for (const auto& nr : report.nodes) {
    const auto& counters = nr.metrics.counters();
    if (auto it = counters.find(name); it != counters.end()) {
      total += it->second;
    }
  }
  return total;
}

uint64_t SumPagesRehomed(const RunReport& report) {
  uint64_t total = 0;
  for (const auto& nr : report.nodes) {
    total += nr.dsm.pages_rehomed;
  }
  return total;
}

// --- Balancer-off invariance -----------------------------------------------------------------

TEST(BalancerOffTest, DisabledRunsReplayByteIdentically) {
  ClusterConfig cfg = BaseConfig();
  cfg.trace_enabled = true;
  const LbRun a = RunSkewed(cfg);
  const LbRun b = RunSkewed(cfg);
  ASSERT_TRUE(a.report.completed) << a.report.deadlock_report;
  EXPECT_EQ(a.validation_error, 0.0);
  EXPECT_EQ(a.report.makespan, b.report.makespan);
  ASSERT_FALSE(a.trace_json.empty());
  EXPECT_EQ(a.trace_json, b.trace_json);  // byte-identical schedule, not just equal totals
}

TEST(BalancerOffTest, KnobValuesAreInertWhileDisabled) {
  // The whole knob block must be dead weight while enabled=false: a config that carries wild
  // balancer settings (but never flips the switch) produces the byte-identical trace of the
  // default config, with zero plans, migrations, or re-homed pages.
  ClusterConfig plain = BaseConfig();
  plain.trace_enabled = true;
  ClusterConfig wild = plain;
  wild.balancer.balance_trigger_ratio = 0.01;
  wild.balancer.balance_patience_epochs = 1;
  wild.balancer.balance_cooldown_epochs = 1;
  wild.balancer.balance_move_fraction = 1.0;
  wild.balancer.balance_rehome_pages = false;
  const LbRun a = RunSkewed(plain);
  const LbRun b = RunSkewed(wild);
  ASSERT_TRUE(a.report.completed) << a.report.deadlock_report;
  EXPECT_EQ(a.trace_json, b.trace_json);
  EXPECT_EQ(a.report.makespan, b.report.makespan);
  EXPECT_EQ(SumCounter(b.report, "core.rebalance_plans"), 0u);
  EXPECT_EQ(SumCounter(b.report, "core.filaments_migrated"), 0u);
  EXPECT_EQ(SumPagesRehomed(b.report), 0u);
  EXPECT_EQ(a.report.net.messages_sent, b.report.net.messages_sent);
}

TEST(BalancerOffTest, WaitstateAccountingNeverMovesTheSchedule) {
  // The ledgers the balancer reads must be pure observation: flipping waitstate_enabled with
  // the balancer off changes no clock and sends no message.
  ClusterConfig on = BaseConfig();
  ClusterConfig off = BaseConfig();
  off.waitstate_enabled = false;
  const LbRun a = RunSkewed(on);
  const LbRun b = RunSkewed(off);
  ASSERT_TRUE(a.report.completed) << a.report.deadlock_report;
  ASSERT_TRUE(b.report.completed) << b.report.deadlock_report;
  EXPECT_EQ(a.report.makespan, b.report.makespan);
  EXPECT_EQ(a.report.net.messages_sent, b.report.net.messages_sent);
  EXPECT_EQ(a.report.events, b.report.events);
}

// --- Migration determinism -------------------------------------------------------------------

TEST(BalancerOnTest, BalancedRunsReplayIdentically) {
  ClusterConfig cfg = BaseConfig();
  EnableBalancer(cfg);
  const LbRun a = RunSkewed(cfg);
  const LbRun b = RunSkewed(cfg);
  ASSERT_TRUE(a.report.completed) << a.report.deadlock_report;
  EXPECT_EQ(a.validation_error, 0.0);
  EXPECT_EQ(b.validation_error, 0.0);
  EXPECT_GE(SumCounter(a.report, "core.rebalance_plans"), 1u)
      << "the skewed workload never triggered a plan; the remaining equalities are vacuous";
  EXPECT_EQ(a.report.makespan, b.report.makespan);
  EXPECT_EQ(a.report.net.messages_sent, b.report.net.messages_sent);
  EXPECT_EQ(SumCounter(a.report, "core.rebalance_plans"),
            SumCounter(b.report, "core.rebalance_plans"));
  EXPECT_EQ(SumCounter(a.report, "core.filaments_migrated"),
            SumCounter(b.report, "core.filaments_migrated"));
  EXPECT_EQ(SumPagesRehomed(a.report), SumPagesRehomed(b.report));
}

TEST(BalancerOnTest, TracingDoesNotPerturbTheBalancedSchedule) {
  // The rebalance trace instants are observation only: a traced balanced run and an untraced
  // one make identical decisions and finish at the identical virtual instant.
  ClusterConfig untraced = BaseConfig();
  EnableBalancer(untraced);
  ClusterConfig traced = untraced;
  traced.trace_enabled = true;
  const LbRun a = RunSkewed(untraced);
  const LbRun b = RunSkewed(traced);
  ASSERT_TRUE(a.report.completed) << a.report.deadlock_report;
  ASSERT_TRUE(b.report.completed) << b.report.deadlock_report;
  EXPECT_EQ(a.validation_error, 0.0);
  EXPECT_EQ(b.validation_error, 0.0);
  EXPECT_EQ(a.report.makespan, b.report.makespan);
  EXPECT_EQ(a.report.net.messages_sent, b.report.net.messages_sent);
  EXPECT_EQ(SumCounter(a.report, "core.rebalance_plans"),
            SumCounter(b.report, "core.rebalance_plans"));
  EXPECT_EQ(SumCounter(a.report, "core.filaments_migrated"),
            SumCounter(b.report, "core.filaments_migrated"));
  EXPECT_NE(b.trace_json.find("rebalance plan"), std::string::npos)
      << "a balanced traced run must record its plan instants";
}

TEST(BalancerOnTest, MigrationShedsLoadOffTheSlowNode) {
  ClusterConfig off = BaseConfig();
  ClusterConfig on = BaseConfig();
  EnableBalancer(on);
  const LbRun stat = RunSkewed(off);
  const LbRun bal = RunSkewed(on);
  ASSERT_TRUE(stat.report.completed) << stat.report.deadlock_report;
  ASSERT_TRUE(bal.report.completed) << bal.report.deadlock_report;
  EXPECT_EQ(stat.validation_error, 0.0);
  EXPECT_EQ(bal.validation_error, 0.0);
  EXPECT_GE(SumCounter(bal.report, "core.rebalance_plans"), 1u);
  EXPECT_GE(SumCounter(bal.report, "core.filaments_migrated"),
            static_cast<uint64_t>(kFilamentsPerPool));
  EXPECT_GE(SumPagesRehomed(bal.report), 1u);
  EXPECT_LT(bal.report.makespan, stat.report.makespan)
      << "migrating pools off a 2x-slow node must shorten the run";
}

// --- Page re-homing under faults, checked by the coherence oracle ----------------------------

// Short retransmission timeouts keep the faulted runs quick; reliable_broadcast is required by
// Validate whenever the plan can drop frames (a lost done broadcast would hang every barrier).
ClusterConfig FaultedBalancedConfig() {
  ClusterConfig cfg = BaseConfig();
  EnableBalancer(cfg);
  cfg.reliable_broadcast = true;
  cfg.packet.retransmit_timeout = Milliseconds(10.0);
  cfg.packet.retransmit_timeout_max = Milliseconds(40.0);
  cfg.max_virtual_time = Seconds(300.0);
  return cfg;
}

TEST(BalancerFaultTest, RehomingSurvivesUniformLossUnderTheOracle) {
  ClusterConfig cfg = FaultedBalancedConfig();
  cfg.fault_plan.loss_rate = 0.05;  // every class: migrates, re-homes, acks, page traffic
  cfg.fault_plan.seed = 33;
  dsm::CoherenceOracle oracle;
  cfg.coherence_oracle = &oracle;
  const LbRun r = RunSkewed(cfg);
  ASSERT_TRUE(r.report.completed) << r.report.deadlock_report;
  EXPECT_EQ(r.validation_error, 0.0) << "a lost migrate or re-home corrupted the grid";
  EXPECT_TRUE(oracle.violations().empty()) << oracle.violations().front();
  EXPECT_GE(SumCounter(r.report, "core.filaments_migrated"), 1u);
  EXPECT_GE(SumPagesRehomed(r.report), 1u);
}

TEST(BalancerFaultTest, DuplicatedMigratesAndRehomesApplyExactlyOnce) {
  // Duplicate every kFilamentMigrate and kRehomePages datagram with enough delay that the copy
  // lands an epoch later: the per-epoch idempotence guard must drop it, or filaments run twice
  // (validation catches it) and ownership forks (the oracle catches it).
  ClusterConfig cfg = FaultedBalancedConfig();
  for (const net::Service svc : {net::Service::kFilamentMigrate, net::Service::kRehomePages}) {
    sim::FaultRule dup;
    dup.type = static_cast<uint32_t>(svc);
    dup.duplicate = 1.0;
    dup.delay_min = Milliseconds(1.0);
    dup.delay_max = Milliseconds(30.0);
    cfg.fault_plan.rules.push_back(dup);
  }
  cfg.fault_plan.seed = 91;
  dsm::CoherenceOracle oracle;
  cfg.coherence_oracle = &oracle;
  const LbRun r = RunSkewed(cfg);
  ASSERT_TRUE(r.report.completed) << r.report.deadlock_report;
  EXPECT_EQ(r.validation_error, 0.0) << "a duplicated migrate re-ran filaments";
  EXPECT_TRUE(oracle.violations().empty()) << oracle.violations().front();
  EXPECT_GE(SumCounter(r.report, "core.filaments_migrated"), 1u);
  EXPECT_GE(SumPagesRehomed(r.report), 1u);
}

// --- ClusterConfig::Validate on the balancer block -------------------------------------------

bool AnyErrorMentions(const std::vector<std::string>& errors, const std::string& needle) {
  for (const std::string& e : errors) {
    if (e.find(needle) != std::string::npos) {
      return true;
    }
  }
  return false;
}

TEST(BalancerValidateTest, AcceptsEnabledBalancerOnChampionBarriers) {
  ClusterConfig cfg = BaseConfig();
  EnableBalancer(cfg);
  EXPECT_TRUE(cfg.Validate().empty());
  cfg.barrier = ClusterConfig::BarrierKind::kCentral;  // central also has a champion
  EXPECT_TRUE(cfg.Validate().empty());
}

TEST(BalancerValidateTest, DisabledBalancerSkipsKnobChecks) {
  // Out-of-range knobs in a disabled block are inert (KnobValuesAreInertWhileDisabled proves
  // the runtime side); Validate must not reject a config whose dead knobs are nonsense.
  ClusterConfig cfg = BaseConfig();
  cfg.balancer.enabled = false;
  cfg.balancer.balance_trigger_ratio = -3.0;
  cfg.balancer.balance_move_fraction = 42.0;
  cfg.balancer.balance_patience_epochs = 0;
  EXPECT_TRUE(cfg.Validate().empty());
}

TEST(BalancerValidateTest, RejectsDisseminationBarrier) {
  ClusterConfig cfg = BaseConfig();
  EnableBalancer(cfg);
  cfg.barrier = ClusterConfig::BarrierKind::kDissemination;
  EXPECT_TRUE(AnyErrorMentions(cfg.Validate(), "champion"))
      << "dissemination has no champion to aggregate the samples";
}

TEST(BalancerValidateTest, RejectsBalancerWithoutWaitstate) {
  ClusterConfig cfg = BaseConfig();
  EnableBalancer(cfg);
  cfg.waitstate_enabled = false;
  EXPECT_TRUE(AnyErrorMentions(cfg.Validate(), "waitstate_enabled"));
}

TEST(BalancerValidateTest, RejectsOutOfRangeKnobs) {
  {
    ClusterConfig cfg = BaseConfig();
    EnableBalancer(cfg);
    cfg.balancer.balance_trigger_ratio = 0.0;
    EXPECT_TRUE(AnyErrorMentions(cfg.Validate(), "balance_trigger_ratio"));
    cfg.balancer.balance_trigger_ratio = 1.5;
    EXPECT_TRUE(AnyErrorMentions(cfg.Validate(), "balance_trigger_ratio"));
  }
  {
    ClusterConfig cfg = BaseConfig();
    EnableBalancer(cfg);
    cfg.balancer.balance_patience_epochs = 0;
    EXPECT_TRUE(AnyErrorMentions(cfg.Validate(), "balance_patience_epochs"));
  }
  {
    ClusterConfig cfg = BaseConfig();
    EnableBalancer(cfg);
    cfg.balancer.balance_cooldown_epochs = 0;
    EXPECT_TRUE(AnyErrorMentions(cfg.Validate(), "balance_cooldown_epochs"));
  }
  {
    ClusterConfig cfg = BaseConfig();
    EnableBalancer(cfg);
    cfg.balancer.balance_move_fraction = 0.0;
    EXPECT_TRUE(AnyErrorMentions(cfg.Validate(), "balance_move_fraction"));
    cfg.balancer.balance_move_fraction = 2.0;
    EXPECT_TRUE(AnyErrorMentions(cfg.Validate(), "balance_move_fraction"));
  }
}

}  // namespace
}  // namespace dfil::core
