// Tests for the Filaments runtime mechanisms: pattern recognition, fault frontloading, the
// binomial distribution tree (paper Figure 2), pruning, stealing, reductions, and determinism.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/core/cluster.h"
#include "src/core/forkjoin.h"
#include "src/core/global_array.h"
#include "src/core/node_runtime.h"
#include "src/core/pool_engine.h"

namespace dfil::core {
namespace {

int64_t g_counter = 0;

void CountFilament(NodeEnv&, int64_t, int64_t, int64_t) { ++g_counter; }

void CountWithWork(NodeEnv& env, int64_t, int64_t, int64_t) {
  ++g_counter;
  env.ChargeWork(Microseconds(1.0));
}

// --- Pattern recognition -------------------------------------------------------------------------

TEST(PatternRecognitionTest, AffineStripsRunInlined) {
  ClusterConfig cfg;
  cfg.nodes = 1;
  Cluster cluster(cfg);
  g_counter = 0;
  RunReport r = cluster.Run([&](NodeEnv& env) {
    const PoolHandle pool = env.CreatePool();
    for (int i = 0; i < 1000; ++i) {
      env.CreateFilament(pool, &CountFilament, i, 2 * i, 7);
    }
    env.RunPools();
  });
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(g_counter, 1000);
  EXPECT_EQ(r.nodes[0].filaments.filaments_run_inlined, 1000u);
}

TEST(PatternRecognitionTest, NonAffineArgumentsUseDescriptorPath) {
  ClusterConfig cfg;
  cfg.nodes = 1;
  Cluster cluster(cfg);
  g_counter = 0;
  RunReport r = cluster.Run([&](NodeEnv& env) {
    const PoolHandle pool = env.CreatePool();
    for (int i = 0; i < 100; ++i) {
      env.CreateFilament(pool, &CountFilament, (i * i) % 31, 0, 0);
    }
    env.RunPools();
  });
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(g_counter, 100);
  EXPECT_EQ(r.nodes[0].filaments.filaments_run_inlined, 0u);
}

TEST(PatternRecognitionTest, InliningIsCheaperInVirtualTime) {
  auto run_with = [&](bool affine) {
    ClusterConfig cfg;
    cfg.nodes = 1;
    Cluster cluster(cfg);
    RunReport r = cluster.Run([&](NodeEnv& env) {
      const PoolHandle pool = env.CreatePool();
      for (int i = 0; i < 20000; ++i) {
        env.CreateFilament(pool, &CountFilament, affine ? i : (i * i) % 97, 0, 0);
      }
      env.RunPools();
    });
    return r.makespan;
  };
  const SimTime inlined = run_with(true);
  const SimTime generic = run_with(false);
  // Paper Figure 9: 0.126 us vs 0.643 us per filament switch.
  EXPECT_LT(inlined, generic);
  EXPECT_NEAR(static_cast<double>(generic - inlined) / 20000.0, 643.0 - 126.0, 60.0);
}

TEST(PatternRecognitionTest, MixedPoolSplitsIntoRuns) {
  ClusterConfig cfg;
  cfg.nodes = 1;
  Cluster cluster(cfg);
  g_counter = 0;
  RunReport r = cluster.Run([&](NodeEnv& env) {
    const PoolHandle pool = env.CreatePool();
    for (int i = 0; i < 100; ++i) {  // affine run
      env.CreateFilament(pool, &CountFilament, i, 0, 0);
    }
    for (int i = 0; i < 5; ++i) {  // too short / irregular tail
      env.CreateFilament(pool, &CountFilament, (i * i) % 7, 0, 0);
    }
    env.RunPools();
  });
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(g_counter, 105);
  EXPECT_GE(r.nodes[0].filaments.filaments_run_inlined, 100u);
}

// --- Fault frontloading (paper §2.2) -------------------------------------------------------------

std::map<int, std::vector<int>> g_sweep_orders;  // node -> pool execution order (by marker)

void MarkPool(NodeEnv& env, int64_t marker, int64_t node, int64_t) {
  if (static_cast<NodeId>(node) == env.node()) {
    g_sweep_orders[static_cast<int>(env.node())].push_back(static_cast<int>(marker));
  }
  env.ChargeWork(Microseconds(3.0));
}

TEST(FrontloadingTest, FaultingPoolsRunFirstOnLaterIterations) {
  // Node 1 has three pools; pool 2's filaments read node 0's page and fault every iteration
  // (implicit-invalidate). After the first sweep, pool 2 must be scheduled first.
  ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.dsm.pcp = dsm::Pcp::kImplicitInvalidate;
  Cluster cluster(cfg);
  auto remote = GlobalRef<double>::Alloc(cluster.layout(), "remote");

  struct Ctx {
    GlobalAddr addr;
  };
  static Ctx ctx;
  ctx.addr = remote.addr();

  static std::vector<int> order_per_sweep;
  g_sweep_orders.clear();
  order_per_sweep.clear();

  RunReport r = cluster.Run([&](NodeEnv& env) {
    if (env.node() == 0) {
      env.Write<double>(ctx.addr, 1.0);
    }
    env.Barrier();
    if (env.node() == 1) {
      // Pool 0 and 1: local-only; pool 2: faults on node 0's page.
      for (int q = 0; q < 3; ++q) {
        const PoolHandle pool = env.CreatePool();
        for (int i = 0; i < 4; ++i) {
          if (q == 2) {
            env.CreateFilament(
                pool,
                +[](NodeEnv& e, int64_t, int64_t, int64_t) {
                  e.Read<double>(ctx.addr);
                  e.ChargeWork(Microseconds(3.0));
                },
                q, 1, 0);
          } else {
            env.CreateFilament(pool, &MarkPool, q, 1, 0);
          }
        }
      }
      int sweeps = 0;
      env.RunIterative([&](int iter) {
        order_per_sweep.push_back(env.runtime().pools().last_sweep_order().front());
        env.Barrier();
        sweeps = iter + 1;
        return iter + 1 < 3;
      });
      EXPECT_EQ(sweeps, 3);
    } else {
      for (int iter = 0; iter < 3; ++iter) {
        env.Barrier();
      }
    }
  });
  ASSERT_TRUE(r.completed) << r.deadlock_report;
  ASSERT_EQ(order_per_sweep.size(), 3u);
  // Sweep 0 runs in creation order (pool 0 first); later sweeps frontload the faulting pool 2.
  EXPECT_EQ(order_per_sweep[0], 0);
  EXPECT_EQ(order_per_sweep[1], 2);
  EXPECT_EQ(order_per_sweep[2], 2);
}

// --- Fork/join mechanisms ------------------------------------------------------------------------

FjResult LeafTask(NodeEnv& env, const FjArgs& a) {
  env.ChargeWork(Microseconds(50.0));
  return FjResult{0.0, a.i[0]};
}

FjResult SpreadTask(NodeEnv& env, const FjArgs& a) {
  const int64_t depth = a.i[0];
  env.ChargeWork(Microseconds(30.0));
  if (depth == 0) {
    return LeafTask(env, a);
  }
  FjArgs child;
  child.i[0] = depth - 1;
  FjHandle l = env.Fork(&SpreadTask, child);
  FjHandle r = env.Fork(&SpreadTask, child);
  FjResult rl = env.Join(l);
  FjResult rr = env.Join(r);
  return FjResult{0.0, rl.i + rr.i + 1};
}

TEST(ForkJoinTreeTest, BinomialChildrenMatchFigure2) {
  // For 16 nodes, Figure 2: node 0's children are 8,4,2,1; node 8's are 12,10,9; node 4's: 6,5.
  ClusterConfig cfg;
  cfg.nodes = 16;
  Cluster cluster(cfg);
  std::map<int, std::vector<NodeId>> children;
  RunReport r = cluster.Run([&](NodeEnv& env) {
    FjArgs args;
    args.i[0] = 0;
    env.RunForkJoin(&LeafTask, args);  // activates the engine; tree computed at entry
    children[env.node()] = env.runtime().fj().tree_children();
  });
  ASSERT_TRUE(r.completed) << r.deadlock_report;
  // tree_children() reports the *remaining* (unused) children; with a single leaf task none are
  // consumed except possibly node 0's first. Recompute expectations accordingly: node 0 shipped
  // nothing (no forks), so the full lists remain.
  EXPECT_EQ(children[0], (std::vector<NodeId>{8, 4, 2, 1}));
  EXPECT_EQ(children[8], (std::vector<NodeId>{12, 10, 9}));
  EXPECT_EQ(children[4], (std::vector<NodeId>{6, 5}));
  EXPECT_EQ(children[5], (std::vector<NodeId>{}));
  EXPECT_EQ(children[15], (std::vector<NodeId>{}));
}

TEST(ForkJoinTreeTest, WorkDoublesAcrossTheCluster) {
  // A deep fork tree must reach every node through tree distribution alone (stealing off).
  ClusterConfig cfg;
  cfg.nodes = 8;
  cfg.fj.steal_enabled = false;
  cfg.wake_at_front = true;
  Cluster cluster(cfg);
  int64_t total = 0;
  RunReport r = cluster.Run([&](NodeEnv& env) {
    FjArgs args;
    args.i[0] = 10;  // 2^10 leaves
    FjResult res = env.RunForkJoin(&SpreadTask, args);
    if (env.node() == 0) {
      total = res.i;
    }
  });
  ASSERT_TRUE(r.completed) << r.deadlock_report;
  EXPECT_EQ(total, (1 << 10) - 1);  // interior nodes each contribute 1; leaves return 0
  int nodes_that_ran = 0;
  for (const auto& nr : r.nodes) {
    if (nr.filaments.filaments_run > 0) {
      ++nodes_that_ran;
    }
  }
  EXPECT_EQ(nodes_that_ran, 8) << "tree distribution must reach every node";
}

TEST(ForkJoinTest, PruningConvertsForksToCalls) {
  ClusterConfig cfg;
  cfg.nodes = 1;
  cfg.fj.prune_threshold = 2;
  Cluster cluster(cfg);
  RunReport r = cluster.Run([&](NodeEnv& env) {
    FjArgs args;
    args.i[0] = 8;
    env.RunForkJoin(&SpreadTask, args);
  });
  ASSERT_TRUE(r.completed);
  const auto& fs = r.nodes[0].filaments;
  EXPECT_GT(fs.forks_pruned, fs.forks_local) << "deep forks should prune into plain calls";
}

TEST(ForkJoinTest, PruneThresholdControlsQueueDepth) {
  for (int threshold : {1, 16}) {
    ClusterConfig cfg;
    cfg.nodes = 1;
    cfg.fj.prune_threshold = threshold;
    Cluster cluster(cfg);
    RunReport r = cluster.Run([&](NodeEnv& env) {
      FjArgs args;
      args.i[0] = 8;
      env.RunForkJoin(&SpreadTask, args);
    });
    ASSERT_TRUE(r.completed);
    // Higher threshold => more queued filaments before pruning kicks in.
    if (threshold == 1) {
      EXPECT_LT(r.nodes[0].filaments.forks_local, 20u);
    } else {
      EXPECT_GT(r.nodes[0].filaments.forks_local, 20u);
    }
  }
}

// Range-splitting tree over 256 leaves; the leftmost eighth carries coarse 10 ms leaves (the
// quadrature-style imbalance), the rest are 50 us.
FjResult ImbalancedRange(NodeEnv& env, const FjArgs& a) {
  const int64_t lo = a.i[0];
  const int64_t hi = a.i[1];
  if (hi - lo == 1) {
    env.ChargeWork(lo < 32 ? Milliseconds(10.0) : Microseconds(50.0));
    return FjResult{1.0, 0};
  }
  const int64_t mid = lo + (hi - lo) / 2;
  FjArgs left;
  left.i[0] = lo;
  left.i[1] = mid;
  FjArgs right;
  right.i[0] = mid;
  right.i[1] = hi;
  FjHandle l = env.Fork(&ImbalancedRange, left);
  FjHandle r = env.Fork(&ImbalancedRange, right);
  FjResult rl = env.Join(l);
  FjResult rr = env.Join(r);
  return FjResult{rl.d + rr.d, 0};
}

TEST(ForkJoinStealTest, StealingBalancesSkewedWork) {
  auto run_with = [&](bool steal) {
    ClusterConfig cfg;
    cfg.nodes = 4;
    cfg.fj.steal_enabled = steal;
    cfg.wake_at_front = true;
    Cluster cluster(cfg);
    double total = 0;
    RunReport r = cluster.Run([&](NodeEnv& env) {
      FjArgs args;
      args.i[0] = 0;
      args.i[1] = 256;
      const FjResult res = env.RunForkJoin(&ImbalancedRange, args);
      if (env.node() == 0) {
        total = res.d;
      }
    });
    EXPECT_TRUE(r.completed) << r.deadlock_report;
    EXPECT_EQ(total, 256.0);
    return r;
  };
  RunReport with = run_with(true);
  RunReport without = run_with(false);
  // 320 ms of heavy leaves is concentrated in one subtree: stealing must shorten the makespan.
  EXPECT_LT(with.makespan, without.makespan);
  uint64_t steals = 0;
  for (const auto& nr : with.nodes) {
    steals += nr.filaments.steals_succeeded;
  }
  EXPECT_GT(steals, 0u);
}

// --- Reductions ----------------------------------------------------------------------------------

struct ReduceCase {
  ReduceOp op;
  double expected_for_8;  // inputs are node+1 for nodes 0..7
};

class ReduceOpTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ReduceOpTest, AllOpsAllNodeCounts) {
  const auto [nodes, op_index] = GetParam();
  const ReduceOp ops[] = {ReduceOp::kSum, ReduceOp::kMax, ReduceOp::kMin, ReduceOp::kLogicalAnd,
                          ReduceOp::kLogicalOr};
  const ReduceOp op = ops[op_index];
  ClusterConfig cfg;
  cfg.nodes = nodes;
  Cluster cluster(cfg);
  std::vector<double> results(nodes);
  RunReport r = cluster.Run([&](NodeEnv& env) {
    const double mine = op == ReduceOp::kLogicalAnd || op == ReduceOp::kLogicalOr
                            ? (env.node() % 2 == 0 ? 1.0 : 0.0)
                            : env.node() + 1.0;
    results[env.node()] = env.Reduce(mine, op);
  });
  ASSERT_TRUE(r.completed) << r.deadlock_report;
  double expected = 0;
  switch (op) {
    case ReduceOp::kSum:
      expected = nodes * (nodes + 1) / 2.0;
      break;
    case ReduceOp::kMax:
      expected = nodes;
      break;
    case ReduceOp::kMin:
      expected = 1.0;
      break;
    case ReduceOp::kLogicalAnd:
      expected = nodes == 1 ? 1.0 : 0.0;
      break;
    case ReduceOp::kLogicalOr:
      expected = 1.0;
      break;
    default:
      break;
  }
  for (double v : results) {
    EXPECT_DOUBLE_EQ(v, expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ReduceOpTest,
                         ::testing::Combine(::testing::Values(1, 2, 3, 5, 7, 8, 16),
                                            ::testing::Values(0, 1, 2, 3, 4)));

TEST(ReduceTest, MessageCountIsLinear) {
  // Tournament + ack + broadcast: O(p) messages per reduction (paper §4.5).
  for (int nodes : {2, 4, 8, 16}) {
    ClusterConfig cfg;
    cfg.nodes = nodes;
    Cluster cluster(cfg);
    RunReport r = cluster.Run([&](NodeEnv& env) { env.Barrier(); });
    ASSERT_TRUE(r.completed);
    // (p-1) reports + (p-1) acks + 1 broadcast.
    EXPECT_EQ(r.net.messages_sent, static_cast<uint64_t>(2 * (nodes - 1) + 1));
  }
}

TEST(ReduceTest, ManySequentialReductionsStayConsistent) {
  ClusterConfig cfg;
  cfg.nodes = 5;
  Cluster cluster(cfg);
  RunReport r = cluster.Run([&](NodeEnv& env) {
    for (int i = 0; i < 50; ++i) {
      const double sum = env.Reduce(i * 1.0, ReduceOp::kSum);
      ASSERT_DOUBLE_EQ(sum, i * 5.0);
    }
  });
  ASSERT_TRUE(r.completed) << r.deadlock_report;
}

TEST(ReduceTest, ReliableBroadcastSurvivesLoss) {
  ClusterConfig cfg;
  cfg.nodes = 4;
  cfg.fault_plan.loss_rate = 0.2;
  cfg.reliable_broadcast = true;
  cfg.packet.retransmit_timeout = Milliseconds(20.0);
  Cluster cluster(cfg);
  RunReport r = cluster.Run([&](NodeEnv& env) {
    for (int i = 0; i < 10; ++i) {
      ASSERT_DOUBLE_EQ(env.Reduce(1.0, ReduceOp::kSum), 4.0);
    }
  });
  ASSERT_TRUE(r.completed) << r.deadlock_report;
}

// --- Determinism ---------------------------------------------------------------------------------

TEST(DeterminismTest, IdenticalRunsProduceIdenticalTraces) {
  auto run_once = [] {
    ClusterConfig cfg;
    cfg.nodes = 4;
    cfg.seed = 99;
    Cluster cluster(cfg);
    auto arr = GlobalArray1D<double>::Alloc(cluster.layout(), 512, "arr");
    RunReport r = cluster.Run([&](NodeEnv& env) {
      if (env.node() == 0) {
        for (int i = 0; i < 512; ++i) {
          arr.Write(env, i, i * 0.5);
        }
      }
      env.Barrier();
      double local = 0;
      for (int i = env.node(); i < 512; i += env.nodes()) {
        local += arr.Read(env, i);
      }
      env.Reduce(local, ReduceOp::kSum);
    });
    return r;
  };
  RunReport a = run_once();
  RunReport b = run_once();
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.net.messages_sent, b.net.messages_sent);
  for (int n = 0; n < 4; ++n) {
    EXPECT_EQ(a.nodes[n].dsm.read_faults, b.nodes[n].dsm.read_faults);
    EXPECT_EQ(a.nodes[n].breakdown.Total(), b.nodes[n].breakdown.Total());
  }
}

TEST(DeterminismTest, LossyRunsAreAlsoDeterministic) {
  auto run_once = [] {
    ClusterConfig cfg;
    cfg.nodes = 3;
    cfg.seed = 5;
    cfg.fault_plan.loss_rate = 0.1;
    cfg.reliable_broadcast = true;
    Cluster cluster(cfg);
    auto x = GlobalRef<double>::Alloc(cluster.layout(), "x");
    RunReport r = cluster.Run([&](NodeEnv& env) {
      if (env.node() == 0) {
        x.Write(env, 3.0);
      }
      env.Barrier();
      env.Reduce(x.Read(env), ReduceOp::kSum);
    });
    return r;
  };
  RunReport a = run_once();
  RunReport b = run_once();
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.net.messages_dropped, b.net.messages_dropped);
}

// --- Server thread management --------------------------------------------------------------------

TEST(ServerThreadTest, FaultsSpawnReplacementRunners) {
  ClusterConfig cfg;
  cfg.nodes = 2;
  Cluster cluster(cfg);
  auto arr = GlobalArray1D<double>::Alloc(cluster.layout(), 4096, "arr");
  RunReport r = cluster.Run([&](NodeEnv& env) {
    if (env.node() == 0) {
      for (int i = 0; i < 4096; ++i) {
        arr.Write(env, i, 1.0);
      }
    }
    env.Barrier();
    if (env.node() == 1) {
      // Four pools touching different remote pages: each fault suspends one pool and starts a
      // server thread for the next.
      for (int q = 0; q < 4; ++q) {
        const PoolHandle pool = env.CreatePool();
        for (int i = 0; i < 8; ++i) {
          env.CreateFilament(
              pool,
              +[](NodeEnv& e, int64_t idx, int64_t, int64_t) {
                e.ChargeWork(Microseconds(5.0));
                e.Read<double>(static_cast<GlobalAddr>(idx));
              },
              static_cast<int64_t>(arr.addr(static_cast<size_t>(q) * 1024 + i)), 0, 0);
        }
      }
      env.RunPools();
    }
    env.Barrier();
  });
  ASSERT_TRUE(r.completed) << r.deadlock_report;
  EXPECT_GT(r.nodes[1].filaments.server_threads_started, 1u);
  EXPECT_GT(r.nodes[1].filaments.pool_suspensions, 0u);
}

}  // namespace
}  // namespace dfil::core
