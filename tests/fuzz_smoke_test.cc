// Fixed-seed fuzz smoke sweep, one test per scenario (seeds [0, 64) each), run in tier-1 CI
// under the `fuzz-smoke` ctest label. The sweep is deterministic: a red test names the scenario,
// and the failing seed is in the assertion message — replay it with
//   tools/dfil_fuzz --scenario <name> --seed <seed> --log
// The nightly-depth sweep is the `fuzz_nightly` target (512 seeds per scenario).
#include <gtest/gtest.h>

#include <string>

#include "src/apps/fuzz_driver.h"

namespace dfil::apps {
namespace {

constexpr uint64_t kSmokeSeeds = 64;

class FuzzSmokeTest : public ::testing::TestWithParam<std::string> {};

TEST_P(FuzzSmokeTest, SweepIsClean) {
  // A failing case leaves FLIGHT_<scenario>_seed<N>.json next to the test binary — the flight
  // recorder's last wait events and injections, rendered with `dfil_report flight` (CI uploads
  // them when this lane goes red).
  FuzzOptions opts;
  opts.flight_dump_on_failure = true;
  for (uint64_t seed = 0; seed < kSmokeSeeds; ++seed) {
    const FuzzResult r = RunFuzzCase(GetParam(), seed, opts);
    EXPECT_TRUE(r.ok()) << r.Summary()
                        << (r.flight_path.empty() ? "" : " — flight dump: " + r.flight_path);
  }
}

INSTANTIATE_TEST_SUITE_P(Scenarios, FuzzSmokeTest, ::testing::ValuesIn(FuzzScenarios()),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return name;
                         });

}  // namespace
}  // namespace dfil::apps
