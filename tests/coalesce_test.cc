// Tests for per-destination frame coalescing (DESIGN.md §11): packing back-to-back frames into
// one datagram, MTU-bounded flushes, idempotent unpacking of packed datagrams under FaultPlan
// drop/duplication/reorder/burst loss, the mutual-peer request hold (and its just-served filter),
// reply elision with request cancelation, and the Jacobson/Karels RTT estimator.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <optional>

#include "src/common/metrics.h"
#include "src/net/packet.h"
#include "src/sim/machine.h"

namespace dfil::net {
namespace {

// Host that runs only Packet handlers — no server threads needed at this layer.
class MiniHost : public sim::NodeHost {
 public:
  MiniHost(NodeId id, sim::Machine* machine, PacketConfig config = PacketConfig{}) : id_(id) {
    endpoint = std::make_unique<PacketEndpoint>(
        machine, id, config, [this](TimeCategory, SimTime t) { clock_ += t; },
        [this] { return clock_; });
  }
  NodeId id() const override { return id_; }
  SimTime Clock() const override { return clock_; }
  bool Runnable() const override { return false; }
  bool Done() const override { return true; }
  void Step() override {}
  void AdvanceTo(SimTime t) override { clock_ = t > clock_ ? t : clock_; }
  void OnDatagram(sim::Datagram d) override { endpoint->OnDatagram(std::move(d)); }
  std::string DescribeBlocked() const override { return ""; }

  std::unique_ptr<PacketEndpoint> endpoint;

 private:
  NodeId id_;
  SimTime clock_ = 0;
};

// Two MiniHosts under a FaultPlan, with coalescing configurable per test.
struct Rig {
  std::unique_ptr<sim::Machine> machine;
  std::unique_ptr<MiniHost> a, b;

  explicit Rig(sim::FaultPlan plan = {}, bool coalesce = true) {
    sim::CostModel costs = sim::CostModel::SunIpcEthernet();
    machine = std::make_unique<sim::Machine>(std::make_unique<sim::SharedEthernet>(costs), costs,
                                             std::move(plan));
    a = std::make_unique<MiniHost>(0, machine.get());
    b = std::make_unique<MiniHost>(1, machine.get());
    if (coalesce) {
      CoalesceConfig co;
      co.enabled = true;
      a->endpoint->set_coalesce(co);
      b->endpoint->set_coalesce(co);
    }
    machine->AddHost(a.get());
    machine->AddHost(b.get());
  }
};

Payload Int64Payload(int64_t v) {
  WireWriter w;
  w.Put(v);
  return w.Take();
}

void RegisterEcho(MiniHost& host, Service service = Service::kTestEcho) {
  host.endpoint->RegisterService(
      service,
      [](NodeId, WireReader r) -> std::optional<Payload> {
        return Int64Payload(r.Get<int64_t>() + 1);
      },
      /*idempotent=*/true);
}

TEST(CoalesceTest, OffByDefaultSendsOneDatagramPerMessage) {
  Rig rig({}, /*coalesce=*/false);
  RegisterEcho(*rig.b);
  int replies = 0;
  constexpr int kRequests = 6;
  for (int i = 0; i < kRequests; ++i) {
    rig.a->endpoint->SendRequest(1, Service::kTestEcho, Int64Payload(i),
                                 [&](Payload) { ++replies; });
  }
  rig.machine->Run();
  EXPECT_EQ(replies, kRequests);
  // Legacy schedule: no packing machinery engages; every logical message is its own datagram.
  const PacketStats& as = rig.a->endpoint->stats();
  EXPECT_EQ(as.frames_coalesced, 0u);
  EXPECT_EQ(as.datagrams_sent, as.requests_sent);
  EXPECT_EQ(rig.b->endpoint->stats().frames_coalesced, 0u);
  EXPECT_EQ(rig.b->endpoint->stats().datagrams_sent, rig.b->endpoint->stats().replies_sent);
}

TEST(CoalesceTest, SingletonFlushStaysOneDatagram) {
  Rig rig;
  RegisterEcho(*rig.b);
  int64_t got = 0;
  rig.a->endpoint->SendRequest(1, Service::kTestEcho, Int64Payload(41),
                               [&](Payload p) { got = WireReader(p).Get<int64_t>(); });
  rig.machine->Run();
  EXPECT_EQ(got, 42);
  // A lone frame flushes as a legacy singleton: one datagram each way, nothing coalesced.
  EXPECT_EQ(rig.a->endpoint->stats().datagrams_sent, 1u);
  EXPECT_EQ(rig.a->endpoint->stats().frames_coalesced, 0u);
  EXPECT_EQ(rig.b->endpoint->stats().datagrams_sent, 1u);
  EXPECT_EQ(rig.a->endpoint->stats().retransmissions, 0u);
}

TEST(CoalesceTest, BackToBackRequestsPackIntoOneDatagram) {
  Rig rig;
  RegisterEcho(*rig.b);
  int64_t sum = 0;
  constexpr int kRequests = 8;
  for (int i = 0; i < kRequests; ++i) {
    rig.a->endpoint->SendRequest(1, Service::kTestEcho, Int64Payload(i),
                                 [&](Payload p) { sum += WireReader(p).Get<int64_t>(); });
  }
  rig.machine->Run();
  EXPECT_EQ(sum, kRequests * (kRequests - 1) / 2 + kRequests);
  // All eight small requests are queued at the same instant, so the flush event packs them into
  // a single datagram; the eight replies are produced in one delivery and pack the same way back.
  EXPECT_EQ(rig.a->endpoint->stats().datagrams_sent, 1u);
  EXPECT_EQ(rig.a->endpoint->stats().frames_coalesced, static_cast<uint64_t>(kRequests - 1));
  EXPECT_EQ(rig.b->endpoint->stats().datagrams_sent, 1u);
  EXPECT_EQ(rig.b->endpoint->stats().frames_coalesced, static_cast<uint64_t>(kRequests - 1));
}

TEST(CoalesceTest, MtuBoundSplitsOversizedBatches) {
  Rig rig;
  int served = 0;
  rig.b->endpoint->RegisterService(
      Service::kTestEcho,
      [&](NodeId, WireReader) -> std::optional<Payload> {
        ++served;
        return Payload{};
      },
      /*idempotent=*/true);
  // 8 x 2000-byte requests exceed the 8800-byte datagram budget: the flush must split the batch,
  // never emit an over-MTU datagram, and still deliver every frame.
  constexpr int kRequests = 8;
  int replies = 0;
  for (int i = 0; i < kRequests; ++i) {
    WireWriter w;
    for (int j = 0; j < 250; ++j) {
      w.Put(static_cast<int64_t>(i * 1000 + j));
    }
    rig.a->endpoint->SendRequest(1, Service::kTestEcho, w.Take(), [&](Payload) { ++replies; });
  }
  rig.machine->Run();
  EXPECT_EQ(replies, kRequests);
  EXPECT_EQ(served, kRequests);
  const PacketStats& as = rig.a->endpoint->stats();
  EXPECT_GE(as.datagrams_sent, 2u);
  EXPECT_LT(as.datagrams_sent, static_cast<uint64_t>(kRequests));
  EXPECT_GT(as.frames_coalesced, 0u);
}

TEST(CoalesceTest, PackedUnpackIsIdempotentUnderDuplication) {
  // Every packed datagram is delivered twice: unpacking must suppress the duplicate frames, so a
  // non-idempotent service still runs exactly once per request and each reply lands once.
  sim::FaultPlan plan;
  plan.seed = 5;
  sim::FaultRule dup;
  dup.klass = sim::MsgClass::kPacked;
  dup.duplicate = 1.0;
  dup.delay_min = Milliseconds(1.0);
  dup.delay_max = Milliseconds(8.0);
  plan.rules.push_back(dup);
  Rig rig(plan);
  int mutations = 0;
  rig.b->endpoint->RegisterService(
      Service::kTestMutate,
      [&](NodeId, WireReader) -> std::optional<Payload> {
        ++mutations;
        return Int64Payload(mutations);
      },
      /*idempotent=*/false);
  constexpr int kRequests = 10;
  int replies = 0;
  int64_t sum = 0;
  for (int i = 0; i < kRequests; ++i) {
    rig.a->endpoint->SendRequest(1, Service::kTestMutate, {}, [&](Payload p) {
      ++replies;
      sum += WireReader(p).Get<int64_t>();
    });
  }
  sim::RunResult r = rig.machine->Run();
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(replies, kRequests);
  EXPECT_EQ(mutations, kRequests) << "a duplicated packed datagram re-ran a mutating service";
  EXPECT_EQ(sum, kRequests * (kRequests + 1) / 2);  // each reply value delivered exactly once
  EXPECT_GT(rig.b->endpoint->stats().duplicate_requests, 0u);
}

TEST(CoalesceTest, PackedDatagramLossRecovers) {
  // Dropping a packed datagram loses every frame inside (correlated loss); per-request
  // retransmission must recover each one independently.
  sim::FaultPlan plan;
  plan.seed = 11;
  sim::FaultRule drop;
  drop.klass = sim::MsgClass::kPacked;
  drop.drop = 0.4;
  plan.rules.push_back(drop);
  Rig rig(plan);
  RegisterEcho(*rig.b);
  constexpr int kRequests = 20;
  int replies = 0;
  for (int i = 0; i < kRequests; ++i) {
    rig.a->endpoint->SendRequest(1, Service::kTestEcho, Int64Payload(i),
                                 [&](Payload) { ++replies; });
  }
  sim::RunResult r = rig.machine->Run();
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(replies, kRequests);
  EXPECT_EQ(rig.a->endpoint->outstanding(), 0u);
  EXPECT_GT(rig.a->endpoint->stats().retransmissions, 0u);
}

TEST(CoalesceTest, PackedReorderDeliversEveryFrameOnce) {
  // Random extra delay reorders packed datagrams against retransmissions and each other; the
  // response cache plus duplicate suppression keep non-idempotent semantics intact.
  sim::FaultPlan plan;
  plan.seed = 23;
  sim::FaultRule delay;
  delay.klass = sim::MsgClass::kPacked;
  delay.delay = 0.6;
  delay.delay_min = 0;
  delay.delay_max = Milliseconds(40.0);
  plan.rules.push_back(delay);
  Rig rig(plan);
  int mutations = 0;
  rig.b->endpoint->RegisterService(
      Service::kTestMutate,
      [&](NodeId, WireReader) -> std::optional<Payload> {
        ++mutations;
        return Int64Payload(mutations);
      },
      /*idempotent=*/false);
  constexpr int kRequests = 15;
  int replies = 0;
  int64_t sum = 0;
  for (int i = 0; i < kRequests; ++i) {
    rig.a->endpoint->SendRequest(1, Service::kTestMutate, {}, [&](Payload p) {
      ++replies;
      sum += WireReader(p).Get<int64_t>();
    });
  }
  sim::RunResult r = rig.machine->Run();
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(replies, kRequests);
  EXPECT_EQ(mutations, kRequests);
  EXPECT_EQ(sum, kRequests * (kRequests + 1) / 2);
}

TEST(CoalesceTest, PackedBurstLossRecovers) {
  // Gilbert-Elliott burst loss wipes out runs of consecutive datagrams — including whole packed
  // batches — and the protocol must still complete every exchange.
  sim::FaultPlan plan;
  plan.seed = 31;
  plan.burst.p_good_to_bad = 0.1;
  plan.burst.p_bad_to_good = 0.3;
  plan.burst.loss_good = 0.0;
  plan.burst.loss_bad = 1.0;
  Rig rig(plan);
  RegisterEcho(*rig.b);
  constexpr int kRequests = 20;
  int replies = 0;
  for (int i = 0; i < kRequests; ++i) {
    rig.a->endpoint->SendRequest(1, Service::kTestEcho, Int64Payload(i),
                                 [&](Payload) { ++replies; });
  }
  sim::RunResult r = rig.machine->Run();
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(replies, kRequests);
  EXPECT_EQ(rig.a->endpoint->outstanding(), 0u);
}

TEST(CoalesceTest, ElidedReplyThenCancelClearsOutstanding) {
  Rig rig;
  int served = 0;
  rig.b->endpoint->RegisterService(
      Service::kTestEcho,
      [&](NodeId, WireReader) -> std::optional<Payload> {
        ++served;
        rig.b->endpoint->ElideCurrentReply();
        return Int64Payload(0);
      },
      /*idempotent=*/true);
  bool reply_ran = false;
  const uint64_t req = rig.a->endpoint->SendRequest(1, Service::kTestEcho, {},
                                                    [&](Payload) { reply_ran = true; });
  // A broader signal (in the runtime: the barrier done broadcast) supersedes the elided reply;
  // model it with a timer that cancels the request before the first retransmission would fire.
  rig.machine->ScheduleTimer(0, Milliseconds(30.0), [&] { rig.a->endpoint->CancelRequest(req); })
      .Release();
  sim::RunResult r = rig.machine->Run();
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(served, 1);
  EXPECT_FALSE(reply_ran);
  EXPECT_EQ(rig.a->endpoint->outstanding(), 0u);
  EXPECT_EQ(rig.a->endpoint->stats().requests_canceled, 1u);
  EXPECT_EQ(rig.a->endpoint->stats().retransmissions, 0u);
  EXPECT_EQ(rig.b->endpoint->stats().replies_elided, 1u);
  EXPECT_EQ(rig.b->endpoint->stats().replies_sent, 0u);
}

TEST(CoalesceTest, MutualPeerHoldRidesOnOwedReply) {
  Rig rig;
  RegisterEcho(*rig.a, Service::kPageRequest);
  RegisterEcho(*rig.b, Service::kPageRequest);
  int replies = 0;
  // t=0: node 0 requests from node 1, making them mutual peers (and stamping last_req_from_).
  rig.a->endpoint->SendRequest(1, Service::kPageRequest, Int64Payload(1),
                               [&](Payload) { ++replies; });
  // t=30ms: node 1 requests from node 0. Age since node 0's request (~29ms) sits between
  // request_hold (20ms) and mutual_window (250ms), and node 1 is the higher-numbered peer, so
  // the request is HELD for a carrier.
  rig.machine
      ->ScheduleTimer(1, Milliseconds(30.0),
                      [&] {
                        rig.b->endpoint->SendRequest(0, Service::kPageRequest, Int64Payload(2),
                                                     [&](Payload) { ++replies; });
                      })
      .Release();
  // t=35ms: node 0 requests again; node 1's reply to it is the carrier the held frame rides on.
  rig.machine
      ->ScheduleTimer(0, Milliseconds(35.0),
                      [&] {
                        rig.a->endpoint->SendRequest(1, Service::kPageRequest, Int64Payload(3),
                                                     [&](Payload) { ++replies; });
                      })
      .Release();
  sim::RunResult r = rig.machine->Run();
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(replies, 3);
  // The held request packed with the reply node 1 owed node 0: at least one coalesced frame on
  // node 1's side, and nobody needed a retransmission (the hold is well under the RTO).
  EXPECT_GT(rig.b->endpoint->stats().frames_coalesced, 0u);
  EXPECT_EQ(rig.a->endpoint->stats().retransmissions, 0u);
  EXPECT_EQ(rig.b->endpoint->stats().retransmissions, 0u);
}

TEST(CoalesceTest, JustServedFilterSendsRequestImmediately) {
  Rig rig;
  RegisterEcho(*rig.a, Service::kPageRequest);
  RegisterEcho(*rig.b, Service::kPageRequest);
  int replies = 0;
  rig.a->endpoint->SendRequest(1, Service::kPageRequest, Int64Payload(1),
                               [&](Payload) { ++replies; });
  // t=10ms: node 0's request was served ~8ms ago — inside the hold window — so node 0's next
  // request (the only possible carrier) is a full exchange period away. The just-served filter
  // must send node 1's request immediately instead of stalling it for the whole hold.
  rig.machine
      ->ScheduleTimer(1, Milliseconds(10.0),
                      [&] {
                        rig.b->endpoint->SendRequest(0, Service::kPageRequest, Int64Payload(2),
                                                     [&](Payload) { ++replies; });
                      })
      .Release();
  sim::RunResult r = rig.machine->Run();
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(replies, 2);
  // Nothing packed: the request went out alone, unheld.
  EXPECT_EQ(rig.b->endpoint->stats().frames_coalesced, 0u);
  EXPECT_EQ(rig.b->endpoint->stats().retransmissions, 0u);
}

TEST(CoalesceTest, HoldTimerFlushesCarrierlessRequest) {
  Rig rig;
  RegisterEcho(*rig.a, Service::kPageRequest);
  RegisterEcho(*rig.b, Service::kPageRequest);
  int replies = 0;
  rig.a->endpoint->SendRequest(1, Service::kPageRequest, Int64Payload(1),
                               [&](Payload) { ++replies; });
  // Node 1's request is held at t=30ms, but node 0 never sends again: the per-destination hold
  // timer (request_hold) must flush it on its own, well before the retransmission timeout.
  rig.machine
      ->ScheduleTimer(1, Milliseconds(30.0),
                      [&] {
                        rig.b->endpoint->SendRequest(0, Service::kPageRequest, Int64Payload(2),
                                                     [&](Payload) { ++replies; });
                      })
      .Release();
  sim::RunResult r = rig.machine->Run();
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(replies, 2);
  EXPECT_EQ(rig.b->endpoint->stats().frames_coalesced, 0u);  // it flushed alone
  EXPECT_EQ(rig.b->endpoint->stats().retransmissions, 0u);   // the hold never reached the RTO
}

TEST(CoalesceTest, RttEstimatorAbsorbsReplyJitter) {
  // Reply-side jitter up to 40ms keeps every RTT sample under the rto_min clamp (100ms), so the
  // Jacobson/Karels estimator must never undercut the legacy timeout: zero spurious
  // retransmissions over a long sequential exchange train, with net.rto_us recording each sample.
  sim::FaultPlan plan;
  plan.seed = 47;
  sim::FaultRule jitter;
  jitter.klass = sim::MsgClass::kReply;
  jitter.delay = 1.0;
  jitter.delay_min = Milliseconds(5.0);
  jitter.delay_max = Milliseconds(40.0);
  plan.rules.push_back(jitter);
  Rig rig(plan);
  MetricsRegistry metrics;
  rig.a->endpoint->set_metrics(&metrics);
  RegisterEcho(*rig.b);
  constexpr int kExchanges = 20;
  int replies = 0;
  std::function<void()> next = [&] {
    rig.a->endpoint->SendRequest(1, Service::kTestEcho, Int64Payload(replies), [&](Payload) {
      if (++replies < kExchanges) {
        next();
      }
    });
  };
  next();
  sim::RunResult r = rig.machine->Run();
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(replies, kExchanges);
  EXPECT_EQ(rig.a->endpoint->stats().retransmissions, 0u);
  const Histogram& rto = metrics.Hist("net.rto_us");
  EXPECT_EQ(rto.count(), static_cast<uint64_t>(kExchanges));  // every first-attempt reply sampled
  // The recorded RTO is clamped to [rto_min, retransmit_timeout_max].
  EXPECT_GE(rto.min(), 100000.0);
  EXPECT_LE(rto.max(), 400000.0);
}

}  // namespace
}  // namespace dfil::net
