// JsonReport round-trip: the bench result files are consumed by commit-over-commit tracking, so
// the emitted JSON must parse back to exactly the numbers that went in (including doubles, which
// are printed with %.17g — enough digits to round-trip a double exactly).
#include <gtest/gtest.h>

#include <cctype>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.h"

namespace dfil::bench {
namespace {

// Minimal parser for the flat JsonReport shape: one object holding a "bench" string, scalar
// number fields, and a "rows" array of flat {key: number} objects. Strict enough that any
// malformed emission (missing comma, unquoted key, truncated number) fails the test.
class FlatJsonParser {
 public:
  explicit FlatJsonParser(std::string text) : s_(std::move(text)) {}

  bool Parse() {
    SkipWs();
    if (!Consume('{')) {
      return false;
    }
    bool first = true;
    while (true) {
      SkipWs();
      if (Consume('}')) {
        return true;
      }
      if (!first && !Consume(',')) {
        return false;
      }
      first = false;
      SkipWs();
      std::string key;
      if (!ParseString(&key)) {
        return false;
      }
      SkipWs();
      if (!Consume(':')) {
        return false;
      }
      SkipWs();
      if (key == "bench") {
        if (!ParseString(&bench)) {
          return false;
        }
      } else if (key == "rows") {
        if (!ParseRows()) {
          return false;
        }
      } else {
        double v = 0;
        if (!ParseNumber(&v)) {
          return false;
        }
        scalars[key] = v;
      }
    }
  }

  std::string bench;
  std::map<std::string, double> scalars;
  std::vector<std::map<std::string, double>> rows;

 private:
  void SkipWs() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) {
      return false;
    }
    out->clear();
    while (pos_ < s_.size() && s_[pos_] != '"') {
      out->push_back(s_[pos_++]);
    }
    return Consume('"');
  }

  bool ParseNumber(double* out) {
    const char* start = s_.c_str() + pos_;
    char* end = nullptr;
    *out = std::strtod(start, &end);
    if (end == start) {
      return false;
    }
    pos_ += static_cast<size_t>(end - start);
    return true;
  }

  bool ParseRows() {
    if (!Consume('[')) {
      return false;
    }
    bool first = true;
    while (true) {
      SkipWs();
      if (Consume(']')) {
        return true;
      }
      if (!first && !Consume(',')) {
        return false;
      }
      first = false;
      SkipWs();
      if (!Consume('{')) {
        return false;
      }
      std::map<std::string, double> row;
      bool first_field = true;
      while (true) {
        SkipWs();
        if (Consume('}')) {
          break;
        }
        if (!first_field && !Consume(',')) {
          return false;
        }
        first_field = false;
        SkipWs();
        std::string key;
        double v = 0;
        if (!ParseString(&key)) {
          return false;
        }
        SkipWs();
        if (!Consume(':')) {
          return false;
        }
        SkipWs();
        if (!ParseNumber(&v)) {
          return false;
        }
        row[key] = v;
      }
      rows.push_back(std::move(row));
    }
  }

  const std::string s_;
  size_t pos_ = 0;
};

TEST(JsonReportTest, EmitParseRoundTripsExactly) {
  JsonReport jr("roundtrip");
  jr.Scalar("nodes", 8);
  jr.Scalar("loss_rate", 0.0125);
  jr.Scalar("pi_ish", 3.141592653589793);        // needs all 17 significant digits
  jr.Scalar("big_count", 1e15);                  // integral double beyond int32 range
  jr.Scalar("tiny", 4.9406564584124654e-16);     // sub-normal-ish magnitude
  jr.AddRow().Set("nodes", 1).Set("time_s", 1.5).Set("speedup", 1.0);
  jr.AddRow().Set("nodes", 2).Set("time_s", 0.7619047619047619).Set("speedup", 1.96875);
  jr.AddRow();  // empty row must survive too

  FlatJsonParser parsed(jr.ToJson());
  ASSERT_TRUE(parsed.Parse()) << jr.ToJson();

  EXPECT_EQ(parsed.bench, "roundtrip");
  ASSERT_EQ(parsed.scalars.size(), 5u);
  EXPECT_EQ(parsed.scalars.at("nodes"), 8.0);
  EXPECT_EQ(parsed.scalars.at("loss_rate"), 0.0125);
  EXPECT_EQ(parsed.scalars.at("pi_ish"), 3.141592653589793);
  EXPECT_EQ(parsed.scalars.at("big_count"), 1e15);
  EXPECT_EQ(parsed.scalars.at("tiny"), 4.9406564584124654e-16);

  ASSERT_EQ(parsed.rows.size(), 3u);
  EXPECT_EQ(parsed.rows[0].at("nodes"), 1.0);
  EXPECT_EQ(parsed.rows[0].at("time_s"), 1.5);
  EXPECT_EQ(parsed.rows[1].at("time_s"), 0.7619047619047619);
  EXPECT_EQ(parsed.rows[1].at("speedup"), 1.96875);
  EXPECT_TRUE(parsed.rows[2].empty());
}

TEST(JsonReportTest, EmptyReportIsStillValidJson) {
  JsonReport jr("empty");
  FlatJsonParser parsed(jr.ToJson());
  ASSERT_TRUE(parsed.Parse()) << jr.ToJson();
  EXPECT_EQ(parsed.bench, "empty");
  EXPECT_TRUE(parsed.scalars.empty());
  EXPECT_TRUE(parsed.rows.empty());
}

}  // namespace
}  // namespace dfil::bench
