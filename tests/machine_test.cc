// Tests for the Machine event loop: virtual-time causality, timer semantics, broadcast delivery,
// deadlock detection, and the wire serialization helpers.
#include <gtest/gtest.h>

#include <memory>

#include "src/net/wire.h"
#include "src/sim/machine.h"

namespace dfil::sim {
namespace {

// Scriptable host: runs a queue of (charge, action) steps when stepped.
class ScriptHost : public NodeHost {
 public:
  ScriptHost(NodeId id, Machine* machine) : id_(id), machine_(machine) {}

  NodeId id() const override { return id_; }
  SimTime Clock() const override { return clock_; }
  bool Runnable() const override { return !steps_.empty(); }
  bool Done() const override { return steps_.empty() && done_; }
  void Step() override {
    // One step: advance the clock by the scripted charge (respecting the machine's charge
    // limit — split like a real runtime would), then run the action.
    auto [cost, action] = steps_.front();
    const SimTime limit = machine_->ChargeLimit(id_);
    if (limit != kSimTimeNever && clock_ + cost > limit) {
      // Partial charge up to the limit; the remainder stays scripted.
      const SimTime done_part = limit > clock_ ? limit - clock_ : 0;
      clock_ += done_part;
      steps_.front().first = cost - done_part;
      return;
    }
    clock_ += cost;
    steps_.erase(steps_.begin());
    if (action) {
      action();
    }
  }
  void AdvanceTo(SimTime t) override { clock_ = t > clock_ ? t : clock_; }
  void OnDatagram(Datagram d) override { received.push_back(std::move(d)); }
  std::string DescribeBlocked() const override { return "scripted"; }

  void AddStep(SimTime cost, std::function<void()> action = nullptr) {
    steps_.emplace_back(cost, std::move(action));
  }
  void MarkDone() { done_ = true; }

  std::vector<Datagram> received;

 private:
  NodeId id_;
  Machine* machine_;
  SimTime clock_ = 0;
  bool done_ = true;
  std::vector<std::pair<SimTime, std::function<void()>>> steps_;
};

struct Rig {
  std::unique_ptr<Machine> machine;
  std::unique_ptr<ScriptHost> a, b;

  Rig() {
    CostModel costs = CostModel::SunIpcEthernet();
    machine = std::make_unique<Machine>(std::make_unique<SharedEthernet>(costs), costs);
    a = std::make_unique<ScriptHost>(0, machine.get());
    b = std::make_unique<ScriptHost>(1, machine.get());
    machine->AddHost(a.get());
    machine->AddHost(b.get());
  }
};

TEST(MachineTest, MessageArrivesAtItsVirtualTime) {
  Rig rig;
  // A sends at its clock 1 ms; B is busy computing for 50 ms. The delivery must bump nothing —
  // B's AdvanceTo sees a time in its past, and the message is handled "during" B's compute.
  rig.a->AddStep(Milliseconds(1.0), [&] {
    Datagram d;
    d.src = 0;
    d.dst = 1;
    d.type = 7;
    rig.machine->Send(std::move(d), rig.a->Clock());
  });
  rig.b->AddStep(Milliseconds(50.0));
  RunResult r = rig.machine->Run();
  EXPECT_TRUE(r.completed);
  ASSERT_EQ(rig.b->received.size(), 1u);
  // B's final clock is its own compute time; the early delivery never rewound it.
  EXPECT_GE(rig.b->Clock(), Milliseconds(50.0));
}

TEST(MachineTest, CausalityHorizonStopsRunahead) {
  Rig rig;
  // Both nodes runnable. The charge limit for each must track the other's clock + lookahead, so
  // neither can race ahead while its peer is runnable.
  rig.a->AddStep(Milliseconds(10.0));
  rig.b->AddStep(Milliseconds(10.0));
  const SimTime limit0 = rig.machine->ChargeLimit(0);
  EXPECT_LT(limit0, Milliseconds(1.0));  // other node is at 0; lookahead is small
  RunResult r = rig.machine->Run();
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(rig.a->Clock(), Milliseconds(10.0));
  EXPECT_EQ(rig.b->Clock(), Milliseconds(10.0));
}

TEST(MachineTest, TimersFireInOrderAndAdvanceTheHost) {
  Rig rig;
  std::vector<int> order;
  rig.machine->ScheduleTimer(0, Milliseconds(5.0), [&] { order.push_back(2); }).Release();
  rig.machine->ScheduleTimer(0, Milliseconds(2.0), [&] { order.push_back(1); }).Release();
  rig.machine->ScheduleTimer(1, Milliseconds(9.0), [&] { order.push_back(3); }).Release();
  RunResult r = rig.machine->Run();
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(rig.a->Clock(), Milliseconds(5.0));
  EXPECT_EQ(rig.b->Clock(), Milliseconds(9.0));
}

TEST(MachineTest, CancelledTimerNeverFires) {
  Rig rig;
  bool fired = false;
  EventHandle h = rig.machine->ScheduleTimer(0, Milliseconds(1.0), [&] { fired = true; });
  h.Cancel();
  RunResult r = rig.machine->Run();
  EXPECT_TRUE(r.completed);
  EXPECT_FALSE(fired);
}

TEST(MachineTest, BroadcastReachesAllOthers) {
  CostModel costs = CostModel::SunIpcEthernet();
  auto machine = std::make_unique<Machine>(std::make_unique<SharedEthernet>(costs), costs);
  std::vector<std::unique_ptr<ScriptHost>> hosts;
  for (NodeId n = 0; n < 4; ++n) {
    hosts.push_back(std::make_unique<ScriptHost>(n, machine.get()));
    machine->AddHost(hosts.back().get());
  }
  Datagram d;
  d.src = 2;
  d.type = 9;
  machine->Broadcast(std::move(d), 0);
  RunResult r = machine->Run();
  EXPECT_TRUE(r.completed);
  for (NodeId n = 0; n < 4; ++n) {
    EXPECT_EQ(hosts[n]->received.size(), n == 2 ? 0u : 1u) << n;
  }
}

TEST(MachineTest, MakespanIsMaxClock) {
  Rig rig;
  rig.a->AddStep(Milliseconds(3.0));
  rig.b->AddStep(Milliseconds(8.0));
  RunResult r = rig.machine->Run();
  EXPECT_EQ(r.makespan, Milliseconds(8.0));
}

TEST(MachineTest, VirtualTimeLimitStopsRunaways) {
  Rig rig;
  // Many steps: the loop's limit check runs between steps and must cut the run short.
  for (int i = 0; i < 100; ++i) {
    rig.a->AddStep(Seconds(0.5));
  }
  RunResult r = rig.machine->Run(/*max_virtual_time=*/Seconds(1.0));
  EXPECT_FALSE(r.completed);
  EXPECT_NE(r.deadlock_report.find("limit"), std::string::npos);
  EXPECT_LT(r.makespan, Seconds(2.0));
}

// --- Wire serialization ---

TEST(WireTest, RoundTripsPods) {
  net::WireWriter w;
  w.Put<uint64_t>(0x1122334455667788ULL);
  w.Put<int32_t>(-7);
  w.Put(3.5);
  net::Payload p = w.Take();
  net::WireReader r(p);
  EXPECT_EQ(r.Get<uint64_t>(), 0x1122334455667788ULL);
  EXPECT_EQ(r.Get<int32_t>(), -7);
  EXPECT_EQ(r.Get<double>(), 3.5);
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(WireTest, BytesAndRest) {
  net::WireWriter w;
  w.Put<uint16_t>(2);
  const char data[] = "abcd";
  w.PutBytes(data, 4);
  net::Payload p = w.Take();
  net::WireReader r(p);
  EXPECT_EQ(r.Get<uint16_t>(), 2);
  EXPECT_EQ(r.Rest().size(), 4u);
  char out[4];
  r.GetBytes(out, 4);
  EXPECT_EQ(std::memcmp(out, data, 4), 0);
}

TEST(WireDeathTest, TruncatedReadIsFatal) {
  net::WireWriter w;
  w.Put<uint16_t>(1);
  net::Payload p = w.Take();
  net::WireReader r(p);
  EXPECT_DEATH(r.Get<uint64_t>(), "DFIL_CHECK failed");
}

}  // namespace
}  // namespace dfil::sim
