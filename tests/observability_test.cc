// Tests for the observability stack: metrics registry + histograms, the JSON parser, the
// hardened trace recorder, causal flow arcs across a real cluster run, the dfil-metrics-v1
// export/report pipeline, and the CI counter-regression gate.
#include <gtest/gtest.h>

#include <sstream>

#include "src/apps/fuzz_driver.h"
#include "src/apps/jacobi.h"
#include "src/common/json.h"
#include "src/common/metrics.h"
#include "src/common/trace.h"
#include "src/core/cluster.h"
#include "src/core/metrics_io.h"
#include "tools/report_lib.h"

namespace dfil {
namespace {

// --- Histogram / MetricsRegistry ---

TEST(HistogramTest, BucketsArePowersOfTwo) {
  Histogram h;
  h.Record(0.5);    // bucket 0: < 1
  h.Record(1.0);    // [1, 2)
  h.Record(1.9);    // [1, 2)
  h.Record(2.0);    // [2, 4)
  h.Record(1024.0);  // [1024, 2048)
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.buckets()[0], 1u);
  EXPECT_EQ(h.buckets()[1], 2u);
  EXPECT_EQ(h.buckets()[2], 1u);
  EXPECT_EQ(h.buckets()[11], 1u);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 1024.0);
  EXPECT_DOUBLE_EQ(Histogram::BucketLow(11), 1024.0);
  EXPECT_DOUBLE_EQ(Histogram::BucketHigh(11), 2048.0);
}

TEST(HistogramTest, PercentilesAreClampedToObservedRange) {
  Histogram h;
  for (int i = 0; i < 100; ++i) {
    h.Record(100.0);  // all in [64, 128)
  }
  EXPECT_DOUBLE_EQ(h.Percentile(0.0), 100.0);
  EXPECT_DOUBLE_EQ(h.Percentile(0.50), 100.0);
  EXPECT_DOUBLE_EQ(h.Percentile(1.0), 100.0);
  EXPECT_DOUBLE_EQ(Histogram().Percentile(0.5), 0.0);
}

TEST(HistogramTest, PercentileOrdersAcrossBuckets) {
  Histogram h;
  for (int i = 0; i < 90; ++i) {
    h.Record(10.0);
  }
  for (int i = 0; i < 10; ++i) {
    h.Record(10000.0);
  }
  EXPECT_LT(h.Percentile(0.50), 16.0);
  EXPECT_GT(h.Percentile(0.99), 8000.0);
}

TEST(HistogramTest, MergeSumsCountsAndWidensRange) {
  Histogram a, b;
  a.Record(2.0);
  b.Record(300.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 300.0);
}

TEST(MetricsRegistryTest, CountersAndJsonRoundTrip) {
  MetricsRegistry m;
  m.Inc("dsm.read_faults");
  m.Inc("dsm.read_faults", 4);
  m.Set("net.requests_sent", 17);
  m.Hist("dsm.fault_wait_us").Record(123.0);
  EXPECT_EQ(m.Counter("dsm.read_faults"), 5u);
  EXPECT_EQ(m.Counter("absent"), 0u);

  std::ostringstream os;
  m.WriteJson(os, "");
  json::ParseResult parsed = json::Parse(os.str());
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  const json::Value* counters = parsed.value->Get("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->GetNumber("dsm.read_faults"), 5.0);
  const json::Value* hist = parsed.value->Get("histograms")->Get("dsm.fault_wait_us");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->GetNumber("count"), 1.0);
  EXPECT_EQ(hist->GetNumber("p50"), 123.0);
}

// --- JSON parser ---

TEST(JsonTest, ParsesEveryValueKind) {
  json::ParseResult r = json::Parse(
      R"({"s": "a\"b\\cA", "n": -1.5e2, "b": true, "z": null, "a": [1, {"k": 2}]})");
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.value->GetString("s"), "a\"b\\cA");
  EXPECT_EQ(r.value->GetNumber("n"), -150.0);
  EXPECT_TRUE(r.value->Get("b")->boolean);
  EXPECT_TRUE(r.value->Get("z")->is_null());
  ASSERT_EQ(r.value->Get("a")->array.size(), 2u);
  EXPECT_EQ(r.value->Get("a")->array[1]->GetNumber("k"), 2.0);
}

TEST(JsonTest, ReportsErrorsWithOffsets) {
  json::ParseResult r = json::Parse("{\"a\": }");
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.error.empty());
  EXPECT_GT(r.error_offset, 0u);
  EXPECT_FALSE(json::Parse("").ok());
  EXPECT_FALSE(json::Parse("[1, 2").ok());
}

// --- TraceRecorder hardening ---

TEST(TraceRecorderTest, UnmatchedEndIsDroppedNotFatal) {
  TraceRecorder rec;
  rec.End(0, 1, Microseconds(1.0));  // nothing open: must not abort or emit
  rec.Begin(0, 1, "t", "span", Microseconds(2.0));
  rec.End(0, 1, Microseconds(3.0));
  rec.End(0, 1, Microseconds(4.0));  // over-close again
  EXPECT_EQ(rec.unmatched_ends(), 2u);
  EXPECT_EQ(rec.open_spans(), 0u);
  std::ostringstream os;
  rec.WriteChromeTrace(os);
  EXPECT_TRUE(dfil::report::CheckChromeTrace(os.str()).ok);
}

TEST(TraceRecorderTest, DanglingSpansAreClosedOnExport) {
  TraceRecorder rec;
  rec.Begin(0, 1, "t", "never closed", Microseconds(1.0));
  rec.Begin(2, 7, "t", "also open", Microseconds(5.0));
  EXPECT_EQ(rec.open_spans(), 2u);
  std::ostringstream os;
  rec.WriteChromeTrace(os);
  report::TraceCheck check = report::CheckChromeTrace(os.str());
  EXPECT_TRUE(check.ok) << (check.errors.empty() ? "" : check.errors.front());
  EXPECT_EQ(check.spans, 2u);
}

TEST(TraceRecorderTest, EscapesControlCharactersAndQuotes) {
  TraceRecorder rec;
  rec.Instant(0, 0, "t", std::string("a\"b\\c\n\x01 d"), 0);
  std::ostringstream os;
  rec.WriteChromeTrace(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("a\\\"b\\\\c\\n\\u0001 d"), std::string::npos);
  json::ParseResult parsed = json::Parse(out);
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  EXPECT_EQ(parsed.value->array[0]->GetString("name"), "a\"b\\c\n\x01 d");
}

TEST(TraceRecorderTest, FlowEventsCarryIdAndBinding) {
  TraceRecorder rec;
  rec.Begin(0, 1, "dsm", "fault p3", Microseconds(1.0));
  rec.Flow(0, 1, kFlowStart, "dsm", "p3", Microseconds(1.5), 42);
  rec.End(0, 1, Microseconds(2.0));
  rec.Begin(1, 2, "dsm", "serve p3", Microseconds(3.0));
  rec.Flow(1, 2, kFlowStep, "dsm", "p3", Microseconds(3.5), 42);
  rec.End(1, 2, Microseconds(4.0));
  rec.Begin(0, 1, "dsm", "install p3", Microseconds(5.0));
  rec.Flow(0, 1, kFlowEnd, "dsm", "p3", Microseconds(5.5), 42);
  rec.End(0, 1, Microseconds(6.0));
  std::ostringstream os;
  rec.WriteChromeTrace(os);
  EXPECT_NE(os.str().find("\"id\":42,\"bp\":\"e\""), std::string::npos);
  report::TraceCheck check = report::CheckChromeTrace(os.str());
  EXPECT_TRUE(check.ok);
  EXPECT_EQ(check.complete_flows, 1u);
  std::vector<report::FlowArc> arcs = report::ExtractFlows(os.str());
  ASSERT_EQ(arcs.size(), 1u);
  EXPECT_EQ(arcs[0].id, 42u);
  EXPECT_EQ(arcs[0].steps, 1u);
  EXPECT_EQ(arcs[0].start_node, 0);
  EXPECT_DOUBLE_EQ(arcs[0].duration_us(), 4.0);
}

TEST(TraceCheckTest, CatchesStructuralViolations) {
  // Backwards timestamp on one track.
  EXPECT_FALSE(report::CheckChromeTrace(
                   R"([{"ph":"B","pid":0,"tid":1,"ts":5,"cat":"t","name":"a"},
                       {"ph":"E","pid":0,"tid":1,"ts":3}])")
                   .ok);
  // Flow start that never finishes.
  EXPECT_FALSE(report::CheckChromeTrace(
                   R"([{"ph":"s","pid":0,"tid":1,"ts":1,"cat":"d","name":"p1","id":7,"bp":"e"}])")
                   .ok);
  // Unbalanced E.
  EXPECT_FALSE(report::CheckChromeTrace(R"([{"ph":"E","pid":0,"tid":1,"ts":1}])").ok);
  // An 'f' without an 's' is tolerated.
  EXPECT_TRUE(report::CheckChromeTrace(
                  R"([{"ph":"f","pid":0,"tid":1,"ts":1,"cat":"d","name":"p1","id":7,"bp":"e"}])")
                  .ok);
}

// --- Cluster integration: causal arcs, metrics export, report rendering ---

// The acceptance workload: 256x256 Jacobi on 8 nodes (few iterations — the arcs and counters
// exist from the first sweep).
core::RunReport TracedJacobiRun() {
  apps::JacobiParams p;
  p.n = 256;
  p.iterations = 3;
  core::ClusterConfig cfg;
  cfg.nodes = 8;
  cfg.costs = sim::CostModel::SunIpcEthernet();
  cfg.network = core::NetworkKind::kSharedEthernet;
  cfg.dsm.pcp = dsm::Pcp::kImplicitInvalidate;
  cfg.trace_enabled = true;
  apps::AppRun run = apps::RunJacobiDf(p, cfg);
  EXPECT_TRUE(run.report.completed) << run.report.deadlock_report;
  return run.report;
}

TEST(ObservabilityIntegrationTest, JacobiTraceIsValidWithConnectedFlows) {
  core::RunReport r = TracedJacobiRun();
  ASSERT_NE(r.trace, nullptr);
  std::ostringstream os;
  r.trace->WriteChromeTrace(os);
  const std::string trace = os.str();

  report::TraceCheck check = report::CheckChromeTrace(trace);
  EXPECT_TRUE(check.ok) << (check.errors.empty() ? "" : check.errors.front());
  EXPECT_GT(check.spans, 0u);
  ASSERT_GT(check.complete_flows, 0u);  // >= 1 remote page fault rendered as a connected arc

  // The arc is genuinely causal: fault 's' on the faulting node, >= 1 serve 't' hop, 'f' at the
  // install back on the faulting node.
  std::vector<report::FlowArc> arcs = report::ExtractFlows(trace);
  ASSERT_FALSE(arcs.empty());
  bool found_remote = false;
  for (const report::FlowArc& arc : arcs) {
    EXPECT_GT(arc.duration_us(), 0.0);
    EXPECT_EQ(arc.end_node, arc.start_node);  // install happens where the fault blocked
    if (arc.steps >= 1) {
      found_remote = true;
    }
  }
  EXPECT_TRUE(found_remote);
  std::ostringstream paths;
  report::PrintCriticalPaths(arcs, 5, paths);
  EXPECT_NE(paths.str().find("n"), std::string::npos);
}

TEST(ObservabilityIntegrationTest, MetricsJsonExportsAndReportsRender) {
  core::RunReport r = TracedJacobiRun();
  std::ostringstream os;
  core::WriteMetricsJson(r, "obs_test", os);

  report::RunSummary run;
  std::string error;
  ASSERT_TRUE(report::ParseRun(os.str(), &run, &error)) << error;
  EXPECT_EQ(run.label, "obs_test");
  EXPECT_EQ(run.pcp, "implicit_invalidate");
  EXPECT_EQ(run.nodes, 8);
  ASSERT_EQ(run.per_node.size(), 8u);

  // Flattened struct counters and cluster totals agree with the report.
  uint64_t read_faults = 0;
  for (const auto& nr : r.nodes) {
    read_faults += nr.dsm.read_faults;
  }
  EXPECT_EQ(run.ClusterCounter("dsm.read_faults"), read_faults);
  EXPECT_GT(run.ClusterCounter("dsm.page_request_messages"), 0u);
  EXPECT_GT(run.ClusterCounter("net.barrier_messages"), 0u);
  EXPECT_GT(run.ClusterCounter("net.sent.page_request"), 0u);

  // Live histograms survive the round trip; the faulting nodes block for measurable time.
  report::HistSummary fault_wait = run.MergedHistogram("dsm.fault_wait_us");
  EXPECT_GT(fault_wait.count, 0u);
  EXPECT_GT(fault_wait.Percentile(50.0), 0.0);
  EXPECT_GE(fault_wait.Percentile(99.0), fault_wait.Percentile(50.0));
  EXPECT_GT(run.MergedHistogram("sync.barrier_wait_us").count, 0u);

  // Page heat: the read-shared strip-edge pages are the hot ones.
  bool any_heat = false;
  for (const auto& nr : run.per_node) {
    any_heat = any_heat || !nr.page_heat.empty();
  }
  EXPECT_TRUE(any_heat);

  // Figure 10 / Figure 9 / hot-pages tables render with the expected anchors.
  std::ostringstream fig10;
  report::PrintFigure10(run, fig10);
  EXPECT_NE(fig10.str().find("work"), std::string::npos);
  EXPECT_NE(fig10.str().find("sync_delay"), std::string::npos);
  std::ostringstream fig9;
  report::PrintFigure9({run}, fig9);
  EXPECT_NE(fig9.str().find("dsm.page_request_messages"), std::string::npos);
  EXPECT_NE(fig9.str().find("implicit_invalidate"), std::string::npos);
  EXPECT_NE(fig9.str().find("fault_wait_us p99"), std::string::npos);
  std::ostringstream hot;
  report::PrintHotPages(run, 5, hot);
  EXPECT_NE(hot.str().find("page"), std::string::npos);
}

TEST(ObservabilityIntegrationTest, FuzzReplayTraceIsValid) {
  apps::FuzzOptions opts;
  opts.capture_trace = true;
  const apps::FuzzResult r = apps::RunFuzzCase("page-chaos", 7, opts);
  EXPECT_TRUE(r.ok()) << r.Summary();
  ASSERT_NE(r.trace, nullptr);
  std::ostringstream os;
  r.trace->WriteChromeTrace(os);
  report::TraceCheck check = report::CheckChromeTrace(os.str());
  EXPECT_TRUE(check.ok) << (check.errors.empty() ? "" : check.errors.front());
  // The adversary's decisions are visible on the dedicated injection track.
  EXPECT_NE(os.str().find("\"cat\":\"inject\""), std::string::npos);
}

TEST(ObservabilityIntegrationTest, TraceCaptureDoesNotChangeTheSchedule) {
  apps::FuzzOptions traced;
  traced.capture_trace = true;
  const apps::FuzzResult with_trace = apps::RunFuzzCase("mixed", 3, traced);
  const apps::FuzzResult without = apps::RunFuzzCase("mixed", 3, {});
  EXPECT_EQ(with_trace.makespan, without.makespan);
  EXPECT_EQ(with_trace.net.messages_sent, without.net.messages_sent);
  EXPECT_EQ(with_trace.dsm.read_faults, without.dsm.read_faults);
}

// --- Regression gate ---

TEST(GateTest, PassesWithinToleranceFailsBeyond) {
  core::RunReport r = TracedJacobiRun();
  std::ostringstream os;
  core::WriteMetricsJson(r, "gate_run", os);
  report::RunSummary run;
  std::string error;
  ASSERT_TRUE(report::ParseRun(os.str(), &run, &error)) << error;
  const uint64_t prm = run.ClusterCounter("dsm.page_request_messages");
  ASSERT_GT(prm, 0u);

  auto baseline = [&](uint64_t expected) {
    return std::string(R"({"schema": "dfil-gate-v1", "tolerance": 0.10, "runs": {"gate_run": )") +
           "{\"dsm.page_request_messages\": " + std::to_string(expected) + "}}}";
  };
  std::string gate_error;
  EXPECT_TRUE(report::CheckGate(baseline(prm), {run}, &gate_error).ok) << gate_error;
  // 5% drift passes a 10% gate; 50% drift fails it.
  EXPECT_TRUE(report::CheckGate(baseline(prm + prm / 20), {run}, &gate_error).ok);
  report::GateResult fail = report::CheckGate(baseline(prm * 2), {run}, &gate_error);
  EXPECT_FALSE(fail.ok);
  ASSERT_FALSE(fail.lines.empty());
  EXPECT_NE(fail.lines.front().find("FAIL"), std::string::npos);
  // A baseline run with no matching metrics file fails loudly (renames cannot silently skip).
  EXPECT_FALSE(report::CheckGate(baseline(prm), {}, &gate_error).ok);
}

}  // namespace
}  // namespace dfil
