// Tests for the PageProtocol seam: the multiple-writer diff protocol (twin on write, RLE diffs
// merged at the home node at sync points), the per-page-group adapter that flips groups between
// implicit-invalidate and diff, and the padding-allocator / page-group APIs the seam builds on.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/core/cluster.h"
#include "src/core/global_array.h"
#include "src/core/node_runtime.h"
#include "src/dsm/coherence_oracle.h"
#include "src/dsm/layout.h"
#include "src/sim/fault_plan.h"

namespace dfil::dsm {
namespace {

using core::Cluster;
using core::ClusterConfig;
using core::GlobalArray1D;
using core::GlobalRef;
using core::NodeEnv;

ClusterConfig Config(int nodes, Pcp pcp) {
  ClusterConfig cfg;
  cfg.nodes = nodes;
  cfg.dsm.pcp = pcp;
  return cfg;
}

DsmStats SumDsm(const core::RunReport& r) {
  DsmStats total;
  for (const auto& nr : r.nodes) {
    total.read_faults += nr.dsm.read_faults;
    total.write_faults += nr.dsm.write_faults;
    total.invalidations_sent += nr.dsm.invalidations_sent;
    total.diff_twins_created += nr.dsm.diff_twins_created;
    total.diff_merges_sent += nr.dsm.diff_merges_sent;
    total.diff_pages_flushed += nr.dsm.diff_pages_flushed;
    total.diff_bytes_sent += nr.dsm.diff_bytes_sent;
    total.diff_merges_applied += nr.dsm.diff_merges_applied;
    total.diff_pages_merged += nr.dsm.diff_pages_merged;
    total.diff_stale_merges_ignored += nr.dsm.diff_stale_merges_ignored;
    total.adapter_switches_to_diff += nr.dsm.adapter_switches_to_diff;
    total.adapter_switches_to_ii += nr.dsm.adapter_switches_to_ii;
    total.page_data_bytes += nr.dsm.page_data_bytes;
  }
  return total;
}

// --- Diff protocol ---------------------------------------------------------------------------

// Four nodes concurrently write disjoint quarters of ONE shared page per epoch. Under any
// single-writer protocol the page ping-pongs; under diff each node twins its copy and the home
// merges O(bytes changed) at the barrier. Everyone must observe all writes afterwards, with no
// invalidation traffic at all.
TEST(DiffProtocolTest, ConcurrentWritersToOnePageMergeAtBarrier) {
  ClusterConfig cfg = Config(4, Pcp::kDiff);
  CoherenceOracle oracle;
  cfg.coherence_oracle = &oracle;
  Cluster cluster(cfg);
  auto arr = GlobalArray1D<int64_t>::Alloc(cluster.layout(), 64, "arr");  // 512 B: one page
  core::RunReport r = cluster.Run([&](NodeEnv& env) {
    for (int iter = 0; iter < 3; ++iter) {
      for (int i = 0; i < 16; ++i) {
        arr.Write(env, env.node() * 16 + i, iter * 1000 + env.node() * 16 + i);
      }
      env.Barrier();
      for (int i = 0; i < 64; ++i) {
        EXPECT_EQ(arr.Read(env, i), iter * 1000 + i) << "iter " << iter << " index " << i;
      }
      env.Barrier();
    }
  });
  ASSERT_TRUE(r.completed) << r.deadlock_report;
  EXPECT_TRUE(oracle.violations().empty()) << oracle.violations().front();
  const DsmStats s = SumDsm(r);
  EXPECT_GT(s.diff_twins_created, 0u);
  EXPECT_GT(s.diff_merges_sent, 0u);
  EXPECT_EQ(s.diff_merges_applied, s.diff_merges_sent);
  EXPECT_GT(s.diff_pages_merged, 0u);
  EXPECT_EQ(s.invalidations_sent, 0u) << "diff must not send invalidations";
}

// A write fault on an already-installed diff read copy is satisfied locally by twinning in
// place: no second page request goes out.
TEST(DiffProtocolTest, WriteFaultOnDiffReadCopyTwinsWithoutRefetch) {
  ClusterConfig cfg = Config(2, Pcp::kDiff);
  CoherenceOracle oracle;
  cfg.coherence_oracle = &oracle;
  Cluster cluster(cfg);
  auto x = GlobalRef<int64_t>::Alloc(cluster.layout(), "x");
  int64_t merged = 0;
  core::RunReport r = cluster.Run([&](NodeEnv& env) {
    if (env.node() == 0) {
      x.Write(env, 5);  // home writes in place, no twin
    }
    env.Barrier();
    if (env.node() == 1) {
      EXPECT_EQ(x.Read(env), 5);  // installs a diff-tagged read copy
      x.Write(env, 6);            // upgrade must twin locally, not refetch
    }
    env.Barrier();
    if (env.node() == 0) {
      merged = x.Read(env);
    }
    env.Barrier();
  });
  ASSERT_TRUE(r.completed) << r.deadlock_report;
  EXPECT_TRUE(oracle.violations().empty()) << oracle.violations().front();
  EXPECT_EQ(merged, 6);
  EXPECT_EQ(r.nodes[1].dsm.single_page_requests, 1u) << "write upgrade must not refetch";
  EXPECT_EQ(r.nodes[1].dsm.diff_twins_created, 1u);
  EXPECT_EQ(r.nodes[1].dsm.diff_merges_sent, 1u);
  EXPECT_EQ(r.nodes[0].dsm.diff_twins_created, 0u) << "the owner writes in place";
}

// Duplicated merge requests (retransmission-style) must apply exactly once: the flush-epoch
// filter recognizes the replay and re-acks without touching the frame.
TEST(DiffProtocolTest, DuplicatedMergesApplyOnce) {
  ClusterConfig cfg = Config(3, Pcp::kDiff);
  sim::FaultRule dup;
  dup.type = static_cast<uint32_t>(net::Service::kDiffMerge);
  dup.duplicate = 1.0;
  dup.delay_min = Milliseconds(0.1);
  dup.delay_max = Milliseconds(5.0);
  cfg.fault_plan.rules.push_back(dup);
  cfg.fault_plan.seed = 11;
  CoherenceOracle oracle;
  cfg.coherence_oracle = &oracle;
  Cluster cluster(cfg);
  auto arr = GlobalArray1D<int64_t>::Alloc(cluster.layout(), 64, "arr");
  core::RunReport r = cluster.Run([&](NodeEnv& env) {
    for (int iter = 0; iter < 4; ++iter) {
      arr.Write(env, env.node(), iter * 10 + env.node());
      env.Barrier();
      for (int n = 0; n < env.nodes(); ++n) {
        EXPECT_EQ(arr.Read(env, n), iter * 10 + n);
      }
      env.Barrier();
    }
  });
  ASSERT_TRUE(r.completed) << r.deadlock_report;
  EXPECT_TRUE(oracle.violations().empty()) << oracle.violations().front();
  EXPECT_GT(SumDsm(r).diff_stale_merges_ignored, 0u)
      << "every merge was duplicated; replays must hit the epoch filter";
}

// Negative test: two nodes writing the SAME bytes between the same barriers is a data race under
// the multiple-writer protocol. The run still completes (last merge wins at the home), but the
// oracle must flag the overlapping same-epoch merges.
TEST(DiffOracleTest, OverlappingSameEpochWritersAreFlagged) {
  ClusterConfig cfg = Config(3, Pcp::kDiff);
  CoherenceOracle oracle;
  cfg.coherence_oracle = &oracle;
  Cluster cluster(cfg);
  auto x = GlobalRef<int64_t>::Alloc(cluster.layout(), "x");
  core::RunReport r = cluster.Run([&](NodeEnv& env) {
    if (env.node() == 1) {
      x.Write(env, 111);
    }
    if (env.node() == 2) {
      x.Write(env, 222);  // same 8 bytes, same epoch: overlapping runs at the home
    }
    env.Barrier();
    x.Read(env);
    env.Barrier();
  });
  ASSERT_TRUE(r.completed) << r.deadlock_report;
  ASSERT_FALSE(oracle.violations().empty()) << "overlapping writers must be flagged";
  EXPECT_NE(oracle.violations().front().find("overlapping diff merges"), std::string::npos)
      << oracle.violations().front();
}

// Disjoint-range concurrent writers, by contrast, are legal: same page, same epoch, different
// bytes must stay oracle-clean (this is the whole point of the multiple-writer protocol).
TEST(DiffOracleTest, DisjointSameEpochWritersAreClean) {
  ClusterConfig cfg = Config(3, Pcp::kDiff);
  CoherenceOracle oracle;
  cfg.coherence_oracle = &oracle;
  Cluster cluster(cfg);
  auto arr = GlobalArray1D<int64_t>::Alloc(cluster.layout(), 8, "arr");
  core::RunReport r = cluster.Run([&](NodeEnv& env) {
    arr.Write(env, env.node(), 100 + env.node());
    env.Barrier();
    for (int n = 0; n < env.nodes(); ++n) {
      EXPECT_EQ(arr.Read(env, n), 100 + n);
    }
    env.Barrier();
  });
  ASSERT_TRUE(r.completed) << r.deadlock_report;
  EXPECT_TRUE(oracle.violations().empty()) << oracle.violations().front();
}

// --- Per-page-group adapter ------------------------------------------------------------------

// False sharing under implicit-invalidate makes a page's owner see a stream of write-fault
// traffic; the adapter must flip the group to diff, and once traffic dies down for
// adapt_calm_epochs it must flip back. Values must stay correct across both switches.
TEST(AdapterTest, FalseSharingFlipsToDiffAndCalmsBack) {
  ClusterConfig cfg = Config(4, Pcp::kImplicitInvalidate);
  cfg.dsm.adapt_protocols = true;
  cfg.dsm.adapt_to_diff_threshold = 1;
  cfg.dsm.adapt_calm_epochs = 2;
  CoherenceOracle oracle;
  cfg.coherence_oracle = &oracle;
  Cluster cluster(cfg);
  auto arr = GlobalArray1D<int64_t>::Alloc(cluster.layout(), 64, "arr");  // one falsely-shared page
  int64_t final_value = 0;
  core::RunReport r = cluster.Run([&](NodeEnv& env) {
    // Hot phase: every node writes its own slot of the same page each epoch.
    for (int iter = 0; iter < 6; ++iter) {
      arr.Write(env, env.node() * 16, iter * 1000 + env.node());
      env.Barrier();
      for (int n = 0; n < env.nodes(); ++n) {
        EXPECT_EQ(arr.Read(env, n * 16), iter * 1000 + n) << "iter " << iter;
      }
      env.Barrier();
    }
    // Calm phase: nobody touches the page; the owner must decay the group back to II.
    for (int iter = 0; iter < 4; ++iter) {
      env.Barrier();
    }
    // Post-switch epoch: a single writer again, values must still propagate.
    if (env.node() == 2) {
      arr.Write(env, 5, 4242);
    }
    env.Barrier();
    if (env.node() == 0) {
      final_value = arr.Read(env, 5);
    }
    env.Barrier();
  });
  ASSERT_TRUE(r.completed) << r.deadlock_report;
  EXPECT_TRUE(oracle.violations().empty()) << oracle.violations().front();
  EXPECT_EQ(final_value, 4242);
  const DsmStats s = SumDsm(r);
  EXPECT_GE(s.adapter_switches_to_diff, 1u) << "hot false sharing must trigger the diff switch";
  EXPECT_GE(s.adapter_switches_to_ii, 1u) << "calm epochs must decay the group back";
  EXPECT_GT(s.diff_twins_created, 0u) << "the diff phase must actually engage twinning";
  EXPECT_GT(s.diff_merges_sent, 0u);
}

// Adaptation is per GROUP: all pages of a group share one mode, and a writable diff install of
// any member twins the whole group (the group moves as a unit, so every page may be dirtied).
TEST(AdapterTest, GroupedPagesSwitchAsAUnit) {
  ClusterConfig cfg = Config(2, Pcp::kImplicitInvalidate);
  cfg.dsm.adapt_protocols = true;
  cfg.dsm.adapt_to_diff_threshold = 1;
  // A node with no work between barriers enters later barriers early, ticking the owner's calm
  // counter while the peer still computes; pin the mode so the asserts see a stable diff group.
  cfg.dsm.adapt_calm_epochs = 100;
  Cluster cluster(cfg);
  const size_t ps = cluster.layout().page_size();
  GlobalAddr blob = cluster.layout().AllocPadded(2 * ps, "blob");
  const PageId root = cluster.layout().PageOf(blob);
  cluster.layout().GroupPages(root, 2);
  core::RunReport r = cluster.Run([&](NodeEnv& env) {
    if (env.node() == 1) {
      env.Write<int64_t>(blob + ps, 7);  // write the SECOND page; node 1 becomes group owner
    }
    env.Barrier();  // owner's sync point: traffic >= 1 flips the group to diff
    if (env.node() == 1) {
      EXPECT_EQ(env.runtime().dsm().page_pcp(root), Pcp::kDiff);
      EXPECT_EQ(env.runtime().dsm().page_pcp(root + 1), Pcp::kDiff)
          << "both group members must switch together";
    }
    env.Barrier();
    if (env.node() == 0) {
      env.Write<int64_t>(blob, 9);  // diff install of the group at a non-owner
      EXPECT_GE(env.runtime().dsm().stats().diff_twins_created, 2u)
          << "a writable diff install twins every page of the group";
    }
    env.Barrier();
    if (env.node() == 1) {
      EXPECT_EQ(env.Read<int64_t>(blob), 9);
      EXPECT_EQ(env.Read<int64_t>(blob + ps), 7);
    }
    env.Barrier();
  });
  ASSERT_TRUE(r.completed) << r.deadlock_report;
}

// Ungrouped pages adapt independently: hammering one page must not change the protocol of a
// quiet page from a different padded allocation.
TEST(AdapterTest, GroupsAdaptIndependently) {
  ClusterConfig cfg = Config(2, Pcp::kImplicitInvalidate);
  cfg.dsm.adapt_protocols = true;
  cfg.dsm.adapt_to_diff_threshold = 1;
  cfg.dsm.adapt_calm_epochs = 100;  // see GroupedPagesSwitchAsAUnit
  Cluster cluster(cfg);
  const GlobalRef<int64_t> hot(cluster.layout().AllocPadded(sizeof(int64_t), "hot"));
  const GlobalRef<int64_t> cold(cluster.layout().AllocPadded(sizeof(int64_t), "cold"));
  const PageId hot_page = cluster.layout().PageOf(hot.addr());
  const PageId cold_page = cluster.layout().PageOf(cold.addr());
  ASSERT_NE(hot_page, cold_page);  // padded allocations own their pages
  core::RunReport r = cluster.Run([&](NodeEnv& env) {
    for (int iter = 0; iter < 3; ++iter) {
      if (env.node() == 1) {
        hot.Write(env, iter);
      }
      env.Barrier();
    }
    if (env.node() == 1) {
      EXPECT_EQ(env.runtime().dsm().page_pcp(hot_page), Pcp::kDiff);
    }
    EXPECT_EQ(env.runtime().dsm().page_pcp(cold_page), Pcp::kImplicitInvalidate)
        << "an untouched group must keep the base protocol";
    env.Barrier();
  });
  ASSERT_TRUE(r.completed) << r.deadlock_report;
}

// --- Padding allocator through the seam ------------------------------------------------------

TEST(LayoutSeamTest, PaddedAllocationsStartOnAPageBoundary) {
  GlobalLayout layout;
  GlobalAddr a = layout.AllocPadded(100, "a");
  GlobalAddr b = layout.AllocPadded(1, "b");
  EXPECT_EQ(a % layout.page_size(), 0u);
  EXPECT_EQ(b % layout.page_size(), 0u);
  // Even a 1-byte padded allocation owns its whole page.
  EXPECT_EQ(layout.PageOf(b) - layout.PageOf(a), 1u);
}

TEST(LayoutSeamTest, SmallPagesKeepPaddingInvariant) {
  GlobalLayout layout(/*page_shift=*/9);
  GlobalAddr a = layout.AllocPadded(513, "a");  // one byte over a page: must take two pages
  GlobalAddr b = layout.AllocPadded(1, "b");
  EXPECT_EQ(layout.PageOf(b) - layout.PageOf(a), 2u);
  EXPECT_EQ(b % layout.page_size(), 0u);
}

}  // namespace
}  // namespace dfil::dsm
