// dfil_diff: "did my change make it slower, and why?" — A/B attribution over the runtime's
// observability artifacts.
//
// Three modes, selected by flag:
//   * default: compare two METRICS_*.json runs (optionally plus their two TRACE_*.json traces).
//     Verifies the run fingerprints are comparable (same app / node count / page size; a config
//     digest delta is the normal deliberate-A/B case and is itemized), then prints ranked deltas
//     of every cluster counter, merged-histogram percentile, per-pool ledger, per-epoch series
//     cell, and per-page fault heat. With traces, re-runs BuildCriticalPath on both and diffs
//     the blame tables, so "the makespan moved" comes with "page 223 gained 4 ms of path time".
//   * --gate BASELINE.json: the dfil_report counter gate plus attribution — every failing
//     counter is localized to nodes / pages / epochs of the failing run. CI runs this when the
//     plain gate goes red.
//   * --history FILE.jsonl: append one-line JSON summaries of METRICS_*.json / BENCH_*.json
//     artifacts to a result-history log (idempotent: exact-duplicate lines are skipped).
//
// Exit codes (shared contract with dfil_report, tools/report_lib.h):
//   0  success
//   1  a gate/check failed or the runs are incompatible (no --force)
//   2  usage error
//   3  an input could not be read or parsed
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "tools/report_lib.h"

namespace {

using dfil::report::AppendHistory;
using dfil::report::BenchHistoryLine;
using dfil::report::BuildCriticalPath;
using dfil::report::CliOptions;
using dfil::report::CriticalPath;
using dfil::report::DiffBlame;
using dfil::report::DiffRuns;
using dfil::report::ExplainGate;
using dfil::report::GateResult;
using dfil::report::HistoryLine;
using dfil::report::kExitCheckFailed;
using dfil::report::kExitIo;
using dfil::report::kExitOk;
using dfil::report::kExitUsage;
using dfil::report::LoadRun;
using dfil::report::ParseCliOptions;
using dfil::report::PrintBlameDiff;
using dfil::report::PrintCritPath;
using dfil::report::PrintRunDiff;
using dfil::report::ReadFile;
using dfil::report::RunDiff;
using dfil::report::RunSummary;

int Usage() {
  std::fprintf(
      stderr,
      "usage: dfil_diff [flags] A_METRICS.json B_METRICS.json [A_TRACE.json B_TRACE.json]\n"
      "       dfil_diff --gate BASELINE.json METRICS_*.json...\n"
      "       dfil_diff --history FILE.jsonl METRICS_*.json|BENCH_*.json...\n"
      "\n"
      "Compares two runs (A = baseline, B = candidate) and prints a ranked attribution report:\n"
      "fingerprint comparability, then per-counter / per-histogram / per-pool / per-epoch /\n"
      "per-page deltas, largest relative movement first. With the optional trace pair, the\n"
      "end-to-end critical path is rebuilt for both runs and the blame tables are diffed.\n"
      "\n"
      "--gate runs the dfil-gate-v1 counter gate and, for every failing counter, prints where\n"
      "the drift lives (per-node split, hottest pages, top epochs). --history appends one-line\n"
      "JSON summaries of result artifacts to a JSONL log, skipping exact duplicates.\n"
      "\n"
      "flags (position-independent):\n"
      "  --top N          rows per section (default 10)\n"
      "  --force          diff even when fingerprints are incompatible (different app/shape)\n"
      "  --gate FILE      gate-explain mode against a dfil-gate-v1 baseline\n"
      "  --history FILE   history-append mode\n"
      "\n"
      "exit codes (shared with dfil_report): 0 ok, 1 gate/check failure or incompatible runs,\n"
      "2 usage error, 3 unreadable/unparseable input\n");
  return kExitUsage;
}

int CmdGate(const CliOptions& opt) {
  if (opt.paths.empty()) {
    return Usage();
  }
  std::string baseline_text;
  std::string error;
  if (!ReadFile(opt.gate_baseline, &baseline_text, &error)) {
    std::fprintf(stderr, "dfil_diff: %s\n", error.c_str());
    return kExitIo;
  }
  std::vector<RunSummary> runs;
  for (const std::string& path : opt.paths) {
    RunSummary run;
    if (!LoadRun(path, &run, &error)) {
      std::fprintf(stderr, "dfil_diff: %s\n", error.c_str());
      return kExitIo;
    }
    runs.push_back(std::move(run));
  }
  GateResult gate = ExplainGate(baseline_text, runs, opt.top_n, std::cout, &error);
  if (!error.empty()) {
    std::fprintf(stderr, "dfil_diff: %s\n", error.c_str());
    return kExitIo;
  }
  std::printf("gate: %s\n", gate.ok ? "PASS" : "FAIL");
  return gate.ok ? kExitOk : kExitCheckFailed;
}

int CmdHistory(const CliOptions& opt) {
  if (opt.paths.empty()) {
    return Usage();
  }
  std::vector<std::string> lines;
  for (const std::string& path : opt.paths) {
    std::string text;
    std::string error;
    if (!ReadFile(path, &text, &error)) {
      std::fprintf(stderr, "dfil_diff: %s\n", error.c_str());
      return kExitIo;
    }
    // METRICS files carry a dfil-metrics schema tag; everything else must be a BENCH report.
    if (text.find("\"dfil-metrics-v") != std::string::npos) {
      RunSummary run;
      if (!dfil::report::ParseRun(text, &run, &error)) {
        std::fprintf(stderr, "dfil_diff: %s: %s\n", path.c_str(), error.c_str());
        return kExitIo;
      }
      lines.push_back(HistoryLine(run));
    } else {
      std::string line;
      if (!BenchHistoryLine(text, &line, &error)) {
        std::fprintf(stderr, "dfil_diff: %s: %s\n", path.c_str(), error.c_str());
        return kExitIo;
      }
      lines.push_back(std::move(line));
    }
  }
  size_t appended = 0;
  std::string error;
  if (!AppendHistory(opt.history_path, lines, &appended, &error)) {
    std::fprintf(stderr, "dfil_diff: %s\n", error.c_str());
    return kExitIo;
  }
  std::printf("appended %zu line(s) to %s (%zu duplicate(s) skipped)\n", appended,
              opt.history_path.c_str(), lines.size() - appended);
  return kExitOk;
}

int CmdDiff(const CliOptions& opt) {
  if (opt.paths.size() != 2 && opt.paths.size() != 4) {
    return Usage();
  }
  RunSummary a;
  RunSummary b;
  std::string error;
  if (!LoadRun(opt.paths[0], &a, &error) ||
      (error.clear(), !LoadRun(opt.paths[1], &b, &error))) {
    std::fprintf(stderr, "dfil_diff: %s\n", error.c_str());
    return kExitIo;
  }
  const RunDiff diff = DiffRuns(a, b);
  PrintRunDiff(diff, a, b, opt.top_n, std::cout);
  if (!diff.fingerprints.compatible && !opt.force) {
    std::fprintf(stderr,
                 "dfil_diff: fingerprints are incompatible — the deltas above compare different "
                 "programs (use --force to accept them anyway)\n");
    return kExitCheckFailed;
  }
  if (opt.paths.size() == 4) {
    std::string trace_a;
    std::string trace_b;
    if (!ReadFile(opt.paths[2], &trace_a, &error) || !ReadFile(opt.paths[3], &trace_b, &error)) {
      std::fprintf(stderr, "dfil_diff: %s\n", error.c_str());
      return kExitIo;
    }
    const CriticalPath path_a = BuildCriticalPath(trace_a);
    const CriticalPath path_b = BuildCriticalPath(trace_b);
    auto check = [](const std::string& path, const CriticalPath& built, int* rc) {
      if (built.ok) {
        return true;
      }
      std::fprintf(stderr, "dfil_diff: %s: %s\n", path.c_str(), built.error.c_str());
      *rc = built.error.rfind("JSON parse error", 0) == 0 ? kExitIo : kExitCheckFailed;
      return false;
    };
    int rc = kExitOk;
    if (!check(opt.paths[2], path_a, &rc) || !check(opt.paths[3], path_b, &rc)) {
      return rc;
    }
    std::cout << "\nCritical path A (" << opt.paths[2] << "):\n";
    PrintCritPath(path_a, 3, std::cout);
    std::cout << "\nCritical path B (" << opt.paths[3] << "):\n";
    PrintCritPath(path_b, 3, std::cout);
    std::cout << "\n";
    PrintBlameDiff(DiffBlame(path_a, path_b), opt.top_n, std::cout);
  }
  return kExitOk;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2) {
    const std::string first = argv[1];
    if (first == "--help" || first == "-h" || first == "help") {
      Usage();
      return kExitOk;
    }
  }
  const CliOptions opt = ParseCliOptions(argc, argv, 1);
  if (!opt.error.empty()) {
    std::fprintf(stderr, "dfil_diff: bad flag '%s'\n", opt.error.c_str());
    return Usage();
  }
  if (!opt.check_baseline.empty()) {
    std::fprintf(stderr, "dfil_diff: --check is a dfil_report flag; did you mean --gate?\n");
    return Usage();
  }
  if (!opt.gate_baseline.empty() && !opt.history_path.empty()) {
    std::fprintf(stderr, "dfil_diff: --gate and --history are mutually exclusive\n");
    return Usage();
  }
  if (!opt.gate_baseline.empty()) {
    return CmdGate(opt);
  }
  if (!opt.history_path.empty()) {
    return CmdHistory(opt);
  }
  return CmdDiff(opt);
}
