#include "tools/report_lib.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <iomanip>
#include <set>
#include <sstream>

#include "src/common/json.h"

namespace dfil::report {
namespace {

// Figure 10 row order (matches TimeCategoryName; the writer emits all six keys).
constexpr const char* kTimeCategories[] = {"work",          "filament_exec", "data_transfer",
                                           "sync_overhead", "sync_delay",    "idle"};

// Figure 9 rows: the protocol-differentiating traffic counters from the paper, plus the
// multiple-writer diff / adapter traffic (DESIGN.md §10) and totals.
constexpr const char* kFigure9Counters[] = {
    "dsm.page_request_messages", "net.sent.page_request",  "net.sent.bulk_page_request",
    "net.sent.invalidate",       "net.sent.diff_merge",    "dsm.diff_bytes_sent",
    "dsm.page_data_bytes",       "dsm.adapter_switches_to_diff",
    "dsm.adapter_switches_to_ii",
    "net.barrier_messages",      "net.requests_sent",
    "net.replies_sent",          "net.acks_sent",          "net.retransmissions",
    "net.messages_sent",         "net.bytes_sent",
};

std::string FormatUs(double us) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(1) << us;
  return os.str();
}

}  // namespace

void HistSummary::Merge(const HistSummary& other) {
  if (other.count == 0) {
    return;
  }
  if (count == 0) {
    *this = other;
    return;
  }
  min = std::min(min, other.min);
  max = std::max(max, other.max);
  count += other.count;
  sum += other.sum;
  // Buckets share the power-of-two grid, so merging is summing counts at equal lows.
  for (const auto& b : other.buckets) {
    bool merged = false;
    for (auto& mine : buckets) {
      if (mine[0] == b[0]) {
        mine[2] += b[2];
        merged = true;
        break;
      }
    }
    if (!merged) {
      buckets.push_back(b);
    }
  }
  std::sort(buckets.begin(), buckets.end(),
            [](const auto& a, const auto& b) { return a[0] < b[0]; });
}

double HistSummary::Percentile(double p) const {
  if (count == 0) {
    return 0.0;
  }
  const double rank = std::ceil(p / 100.0 * static_cast<double>(count));
  double seen = 0.0;
  for (const auto& b : buckets) {
    if (seen + b[2] >= rank) {
      const double frac = b[2] > 0.0 ? (rank - seen) / b[2] : 0.0;
      const double v = b[0] + frac * (b[1] - b[0]);
      return std::min(std::max(v, min), max);
    }
    seen += b[2];
  }
  return max;
}

uint64_t RunSummary::ClusterCounter(const std::string& name) const {
  auto it = cluster_counters.find(name);
  return it == cluster_counters.end() ? 0 : it->second;
}

HistSummary RunSummary::MergedHistogram(const std::string& name) const {
  HistSummary merged;
  for (const Node& n : per_node) {
    auto it = n.histograms.find(name);
    if (it != n.histograms.end()) {
      merged.Merge(it->second);
    }
  }
  return merged;
}

bool ReadFile(const std::string& path, std::string* out, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    *error = path + ": cannot open";
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

namespace {

void ParseCounters(const json::Value* obj, std::map<std::string, uint64_t>* out) {
  if (obj == nullptr || !obj->is_object()) {
    return;
  }
  for (const auto& [key, value] : obj->object) {
    if (value->is_number()) {
      (*out)[key] = static_cast<uint64_t>(std::llround(value->number));
    }
  }
}

HistSummary ParseHistogram(const json::Value& h) {
  HistSummary out;
  out.count = static_cast<uint64_t>(h.GetNumber("count"));
  out.sum = h.GetNumber("sum");
  out.min = h.GetNumber("min");
  out.max = h.GetNumber("max");
  if (const json::Value* buckets = h.Get("buckets"); buckets != nullptr && buckets->is_array()) {
    for (const auto& b : buckets->array) {
      if (b->is_array() && b->array.size() == 3) {
        out.buckets.push_back(
            {b->array[0]->number, b->array[1]->number, b->array[2]->number});
      }
    }
  }
  return out;
}

}  // namespace

bool ParseRun(const std::string& text, RunSummary* out, std::string* error) {
  json::ParseResult parsed = json::Parse(text);
  if (!parsed.ok()) {
    *error = "JSON parse error at byte " + std::to_string(parsed.error_offset) + ": " +
             parsed.error;
    return false;
  }
  const json::Value& root = *parsed.value;
  if (root.GetString("schema") != "dfil-metrics-v1") {
    *error = "not a dfil-metrics-v1 document (schema=\"" + root.GetString("schema") + "\")";
    return false;
  }
  out->label = root.GetString("label");
  out->pcp = root.GetString("pcp");
  out->nodes = static_cast<int>(root.GetNumber("nodes"));
  out->completed = root.GetNumber("completed") != 0;
  out->makespan_us = root.GetNumber("makespan_us");
  out->cluster_counters.clear();
  out->per_node.clear();
  if (const json::Value* cluster = root.Get("cluster"); cluster != nullptr) {
    ParseCounters(cluster->Get("counters"), &out->cluster_counters);
  }
  const json::Value* per_node = root.Get("per_node");
  if (per_node == nullptr || !per_node->is_array()) {
    *error = "missing per_node array";
    return false;
  }
  for (const auto& n : per_node->array) {
    RunSummary::Node node;
    node.node = static_cast<int>(n->GetNumber("node"));
    node.finished_at_us = n->GetNumber("finished_at_us");
    if (const json::Value* t = n->Get("time_us"); t != nullptr && t->is_object()) {
      for (const auto& [key, value] : t->object) {
        node.time_us[key] = value->number;
      }
    }
    if (const json::Value* m = n->Get("metrics"); m != nullptr) {
      ParseCounters(m->Get("counters"), &node.counters);
      if (const json::Value* hists = m->Get("histograms");
          hists != nullptr && hists->is_object()) {
        for (const auto& [key, value] : hists->object) {
          node.histograms[key] = ParseHistogram(*value);
        }
      }
    }
    if (const json::Value* heat = n->Get("page_heat"); heat != nullptr && heat->is_array()) {
      for (const auto& pair : heat->array) {
        if (pair->is_array() && pair->array.size() == 2) {
          node.page_heat.emplace_back(static_cast<uint64_t>(pair->array[0]->number),
                                      static_cast<uint64_t>(pair->array[1]->number));
        }
      }
    }
    out->per_node.push_back(std::move(node));
  }
  return true;
}

bool LoadRun(const std::string& path, RunSummary* out, std::string* error) {
  std::string text;
  if (!ReadFile(path, &text, error)) {
    return false;
  }
  if (!ParseRun(text, out, error)) {
    *error = path + ": " + *error;
    return false;
  }
  out->path = path;
  return true;
}

void PrintFigure10(const RunSummary& run, std::ostream& os) {
  os << "Figure 10 — per-node time breakdown (us): " << run.label << " (" << run.pcp << ", "
     << run.nodes << " nodes, makespan " << FormatUs(run.makespan_us) << " us)\n";
  os << std::setw(5) << "node";
  for (const char* cat : kTimeCategories) {
    os << std::setw(15) << cat;
  }
  os << std::setw(15) << "total" << "\n";
  std::map<std::string, double> totals;
  double grand_total = 0.0;
  for (const RunSummary::Node& n : run.per_node) {
    os << std::setw(5) << n.node;
    double row_total = 0.0;
    for (const char* cat : kTimeCategories) {
      auto it = n.time_us.find(cat);
      const double us = it == n.time_us.end() ? 0.0 : it->second;
      totals[cat] += us;
      row_total += us;
      os << std::setw(15) << FormatUs(us);
    }
    grand_total += row_total;
    os << std::setw(15) << FormatUs(row_total) << "\n";
  }
  os << std::setw(5) << "sum";
  for (const char* cat : kTimeCategories) {
    os << std::setw(15) << FormatUs(totals[cat]);
  }
  os << std::setw(15) << FormatUs(grand_total) << "\n";
  os << std::setw(5) << "share";
  for (const char* cat : kTimeCategories) {
    std::ostringstream pct;
    pct << std::fixed << std::setprecision(1)
        << (grand_total > 0.0 ? 100.0 * totals[cat] / grand_total : 0.0) << "%";
    os << std::setw(15) << pct.str();
  }
  os << "\n";
}

void PrintFigure9(const std::vector<RunSummary>& runs, std::ostream& os) {
  os << "Figure 9 — message counts by protocol";
  if (!runs.empty()) {
    os << " (" << runs.front().nodes << " nodes)";
  }
  os << "\n" << std::left << std::setw(28) << "counter" << std::right;
  for (const RunSummary& run : runs) {
    os << std::setw(21) << run.pcp;
  }
  os << "\n";
  for (const char* counter : kFigure9Counters) {
    os << std::left << std::setw(28) << counter << std::right;
    for (const RunSummary& run : runs) {
      os << std::setw(21) << run.ClusterCounter(counter);
    }
    os << "\n";
  }
  for (const char* row : {"fault_wait_us p50", "fault_wait_us p99"}) {
    const double p = row[std::string(row).size() - 2] == '5' ? 50.0 : 99.0;
    os << std::left << std::setw(28) << row << std::right;
    for (const RunSummary& run : runs) {
      os << std::setw(21) << FormatUs(run.MergedHistogram("dsm.fault_wait_us").Percentile(p));
    }
    os << "\n";
  }
}

void PrintFaultLatency(const RunSummary& run, std::ostream& os) {
  const HistSummary h = run.MergedHistogram("dsm.fault_wait_us");
  os << "Fault latency: " << run.label << " — " << h.count << " remote faults";
  if (h.count > 0) {
    os << ", p50 " << FormatUs(h.Percentile(50.0)) << " us, p90 " << FormatUs(h.Percentile(90.0))
       << " us, p99 " << FormatUs(h.Percentile(99.0)) << " us, max " << FormatUs(h.max) << " us";
  }
  os << "\n";
}

void PrintHotPages(const RunSummary& run, size_t top_n, std::ostream& os) {
  std::map<uint64_t, uint64_t> heat;  // page -> total demand faults
  std::map<uint64_t, int> spread;     // page -> nodes that faulted it
  for (const RunSummary::Node& n : run.per_node) {
    for (const auto& [page, faults] : n.page_heat) {
      heat[page] += faults;
      spread[page]++;
    }
  }
  std::vector<std::pair<uint64_t, uint64_t>> ranked(heat.begin(), heat.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second : a.first < b.first;
  });
  os << "Hottest pages: " << run.label << " (" << ranked.size() << " pages faulted)\n";
  os << std::setw(10) << "page" << std::setw(10) << "faults" << std::setw(10) << "nodes" << "\n";
  for (size_t i = 0; i < ranked.size() && i < top_n; ++i) {
    os << std::setw(10) << ranked[i].first << std::setw(10) << ranked[i].second << std::setw(10)
       << spread[ranked[i].first] << "\n";
  }
}

// ---- Trace analysis ------------------------------------------------------------------------

namespace {

// Accepts a bare event array (what WriteChromeTrace emits) or the {"traceEvents": [...]} wrapper.
const json::Value* TraceEvents(const json::Value& root) {
  if (root.is_array()) {
    return &root;
  }
  const json::Value* events = root.Get("traceEvents");
  return events != nullptr && events->is_array() ? events : nullptr;
}

}  // namespace

TraceCheck CheckChromeTrace(const std::string& text) {
  TraceCheck out;
  constexpr size_t kMaxErrors = 32;
  auto fail = [&out](std::string msg) {
    if (out.errors.size() < kMaxErrors) {
      out.errors.push_back(std::move(msg));
    }
  };
  json::ParseResult parsed = json::Parse(text);
  if (!parsed.ok()) {
    fail("JSON parse error at byte " + std::to_string(parsed.error_offset) + ": " + parsed.error);
    return out;
  }
  const json::Value* events = TraceEvents(*parsed.value);
  if (events == nullptr) {
    fail("no trace event array found");
    return out;
  }
  struct Track {
    int depth = 0;
    double last_ts = -1.0;
  };
  std::map<std::pair<int64_t, int64_t>, Track> tracks;
  std::set<uint64_t> flow_start_ids;
  std::set<uint64_t> flow_end_ids;
  for (size_t i = 0; i < events->array.size(); ++i) {
    const json::Value& e = *events->array[i];
    out.events++;
    const std::string ph = e.GetString("ph");
    const auto pid = static_cast<int64_t>(e.GetNumber("pid", -1));
    const auto tid = static_cast<int64_t>(e.GetNumber("tid", -1));
    const double ts = e.GetNumber("ts", -1.0);
    if (ph.size() != 1) {
      fail("event " + std::to_string(i) + ": missing/bad ph");
      continue;
    }
    Track& track = tracks[{pid, tid}];
    switch (ph[0]) {
      case 'B':
      case 'E':
        // Duration events must nest and be time-ordered per (pid, tid) track.
        if (ts < track.last_ts) {
          fail("event " + std::to_string(i) + ": ts " + std::to_string(ts) +
               " goes backwards on track (" + std::to_string(pid) + "," + std::to_string(tid) +
               ")");
        }
        track.last_ts = ts;
        if (ph[0] == 'B') {
          if (e.GetString("name").empty()) {
            fail("event " + std::to_string(i) + ": B without a name");
          }
          track.depth++;
        } else {
          if (track.depth <= 0) {
            fail("event " + std::to_string(i) + ": E with no open span on track (" +
                 std::to_string(pid) + "," + std::to_string(tid) + ")");
          } else {
            track.depth--;
            out.spans++;
          }
        }
        break;
      case 's':
      case 't':
      case 'f': {
        const auto id = static_cast<uint64_t>(e.GetNumber("id", 0));
        if (id == 0) {
          fail("event " + std::to_string(i) + ": flow '" + ph + "' without an id");
          break;
        }
        if (ph[0] == 's') {
          if (!flow_start_ids.insert(id).second) {
            fail("event " + std::to_string(i) + ": duplicate flow start id " +
                 std::to_string(id));
          }
          out.flow_starts++;
        } else if (ph[0] == 'f') {
          flow_end_ids.insert(id);
          out.flow_ends++;
        }
        break;
      }
      case 'i':
        break;  // instants may sit on dedicated tracks (injection events) at delivery times
      default:
        fail("event " + std::to_string(i) + ": unexpected ph '" + ph + "'");
    }
  }
  for (const auto& [key, track] : tracks) {
    if (track.depth != 0) {
      fail("track (" + std::to_string(key.first) + "," + std::to_string(key.second) + ") ends with " +
           std::to_string(track.depth) + " unclosed span(s)");
    }
  }
  // An 'f' without an 's' is fine (a serve observed without the faulting side blocking), but every
  // started arc must terminate somewhere or Perfetto renders a dangling arrow.
  for (uint64_t id : flow_start_ids) {
    if (flow_end_ids.count(id) != 0) {
      out.complete_flows++;
    } else {
      fail("flow id " + std::to_string(id) + " has 's' but no matching 'f'");
    }
  }
  out.ok = out.errors.empty();
  return out;
}

std::vector<FlowArc> ExtractFlows(const std::string& text) {
  std::vector<FlowArc> arcs;
  json::ParseResult parsed = json::Parse(text);
  if (!parsed.ok()) {
    return arcs;
  }
  const json::Value* events = TraceEvents(*parsed.value);
  if (events == nullptr) {
    return arcs;
  }
  std::map<uint64_t, FlowArc> by_id;
  std::set<uint64_t> finished;
  for (const auto& ep : events->array) {
    const json::Value& e = *ep;
    const std::string ph = e.GetString("ph");
    if (ph != "s" && ph != "t" && ph != "f") {
      continue;
    }
    const auto id = static_cast<uint64_t>(e.GetNumber("id", 0));
    if (id == 0) {
      continue;
    }
    FlowArc& arc = by_id[id];
    arc.id = id;
    if (ph == "s") {
      arc.name = e.GetString("name");
      arc.start_ts = e.GetNumber("ts");
      arc.start_node = static_cast<int>(e.GetNumber("pid", -1));
    } else if (ph == "t") {
      arc.steps++;
    } else {
      arc.end_ts = e.GetNumber("ts");
      arc.end_node = static_cast<int>(e.GetNumber("pid", -1));
      finished.insert(id);
    }
  }
  for (const auto& [id, arc] : by_id) {
    if (arc.start_node >= 0 && finished.count(id) != 0) {
      arcs.push_back(arc);
    }
  }
  return arcs;
}

void PrintCriticalPaths(std::vector<FlowArc> arcs, size_t top_n, std::ostream& os) {
  std::sort(arcs.begin(), arcs.end(),
            [](const FlowArc& a, const FlowArc& b) { return a.duration_us() > b.duration_us(); });
  os << "Longest fault critical paths (" << arcs.size() << " complete flow arcs)\n";
  os << std::left << std::setw(14) << "flow" << std::right << std::setw(12) << "wait_us"
     << std::setw(8) << "hops" << std::setw(14) << "path" << std::setw(14) << "start_us" << "\n";
  for (size_t i = 0; i < arcs.size() && i < top_n; ++i) {
    const FlowArc& a = arcs[i];
    os << std::left << std::setw(14) << a.name << std::right << std::setw(12)
       << FormatUs(a.duration_us()) << std::setw(8) << a.steps << std::setw(14)
       << ("n" + std::to_string(a.start_node) + "->n" + std::to_string(a.end_node))
       << std::setw(14) << FormatUs(a.start_ts) << "\n";
  }
}

// ---- CI regression gate --------------------------------------------------------------------

GateResult CheckGate(const std::string& baseline_text, const std::vector<RunSummary>& runs,
                     std::string* error) {
  GateResult out;
  json::ParseResult parsed = json::Parse(baseline_text);
  if (!parsed.ok()) {
    *error = "baseline JSON parse error at byte " + std::to_string(parsed.error_offset) + ": " +
             parsed.error;
    out.ok = false;
    return out;
  }
  const json::Value& root = *parsed.value;
  if (root.GetString("schema") != "dfil-gate-v1") {
    *error = "baseline is not a dfil-gate-v1 document";
    out.ok = false;
    return out;
  }
  const double tolerance = root.GetNumber("tolerance", 0.10);
  const json::Value* baseline_runs = root.Get("runs");
  if (baseline_runs == nullptr || !baseline_runs->is_object()) {
    *error = "baseline has no runs object";
    out.ok = false;
    return out;
  }
  for (const auto& [label, expectations] : baseline_runs->object) {
    const RunSummary* run = nullptr;
    for (const RunSummary& candidate : runs) {
      if (candidate.label == label) {
        run = &candidate;
        break;
      }
    }
    if (run == nullptr) {
      out.ok = false;
      out.lines.push_back("FAIL " + label + ": no metrics file with this label was supplied");
      continue;
    }
    for (const auto& [counter, expected_value] : expectations->object) {
      if (!expected_value->is_number()) {
        continue;
      }
      const double expected = expected_value->number;
      const auto actual = static_cast<double>(run->ClusterCounter(counter));
      const double drift = std::abs(actual - expected) / std::max(expected, 1.0);
      std::ostringstream line;
      line << (drift > tolerance ? "FAIL " : "ok   ") << label << " " << counter << ": expected "
           << std::llround(expected) << ", got " << std::llround(actual) << " ("
           << std::showpos << std::fixed << std::setprecision(1) << 100.0 * (actual - expected) /
                  std::max(expected, 1.0)
           << "%, tolerance ±" << std::noshowpos << 100.0 * tolerance << "%)";
      out.lines.push_back(line.str());
      if (drift > tolerance) {
        out.ok = false;
      }
    }
  }
  return out;
}

}  // namespace dfil::report
