#include "tools/report_lib.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <set>
#include <sstream>

#include "src/common/json.h"

namespace dfil::report {
namespace {

// Figure 10 row order (matches TimeCategoryName; the writer emits all six keys).
constexpr const char* kTimeCategories[] = {"work",          "filament_exec", "data_transfer",
                                           "sync_overhead", "sync_delay",    "idle"};

// Figure 9 rows: the protocol-differentiating traffic counters from the paper, plus the
// multiple-writer diff / adapter traffic (DESIGN.md §10) and totals.
constexpr const char* kFigure9Counters[] = {
    "dsm.page_request_messages", "net.sent.page_request",  "net.sent.bulk_page_request",
    "net.sent.invalidate",       "net.sent.diff_merge",    "dsm.diff_bytes_sent",
    "dsm.page_data_bytes",       "dsm.adapter_switches_to_diff",
    "dsm.adapter_switches_to_ii",
    "net.barrier_messages",      "net.requests_sent",
    "net.replies_sent",          "net.acks_sent",          "net.retransmissions",
    "net.messages_sent",         "net.bytes_sent",
    "core.rebalance_plans",      "core.filaments_migrated",
    "dsm.pages_rehomed",
};

std::string FormatUs(double us) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(1) << us;
  return os.str();
}

}  // namespace

void HistSummary::Merge(const HistSummary& other) {
  if (other.count == 0) {
    return;
  }
  if (count == 0) {
    *this = other;
    return;
  }
  min = std::min(min, other.min);
  max = std::max(max, other.max);
  count += other.count;
  sum += other.sum;
  // Buckets share the power-of-two grid, so merging is summing counts at equal lows.
  for (const auto& b : other.buckets) {
    bool merged = false;
    for (auto& mine : buckets) {
      if (mine[0] == b[0]) {
        mine[2] += b[2];
        merged = true;
        break;
      }
    }
    if (!merged) {
      buckets.push_back(b);
    }
  }
  std::sort(buckets.begin(), buckets.end(),
            [](const auto& a, const auto& b) { return a[0] < b[0]; });
}

double HistSummary::Percentile(double p) const {
  if (count == 0) {
    return 0.0;
  }
  const double rank = std::ceil(p / 100.0 * static_cast<double>(count));
  double seen = 0.0;
  for (const auto& b : buckets) {
    if (seen + b[2] >= rank) {
      const double frac = b[2] > 0.0 ? (rank - seen) / b[2] : 0.0;
      const double v = b[0] + frac * (b[1] - b[0]);
      return std::min(std::max(v, min), max);
    }
    seen += b[2];
  }
  return max;
}

uint64_t RunSummary::ClusterCounter(const std::string& name) const {
  if (name == "makespan_us") {
    // Virtual pseudo-counter so gate baselines can pin the run's completion time alongside the
    // traffic counters (the load-balancing gate holds the balanced run's makespan down with it).
    return static_cast<uint64_t>(makespan_us);
  }
  auto it = cluster_counters.find(name);
  return it == cluster_counters.end() ? 0 : it->second;
}

HistSummary RunSummary::MergedHistogram(const std::string& name) const {
  HistSummary merged;
  for (const Node& n : per_node) {
    auto it = n.histograms.find(name);
    if (it != n.histograms.end()) {
      merged.Merge(it->second);
    }
  }
  return merged;
}

bool ReadFile(const std::string& path, std::string* out, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    *error = path + ": cannot open";
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

namespace {

void ParseCounters(const json::Value* obj, std::map<std::string, uint64_t>* out) {
  if (obj == nullptr || !obj->is_object()) {
    return;
  }
  for (const auto& [key, value] : obj->object) {
    if (value->is_number()) {
      (*out)[key] = static_cast<uint64_t>(std::llround(value->number));
    }
  }
}

HistSummary ParseHistogram(const json::Value& h) {
  HistSummary out;
  out.count = static_cast<uint64_t>(h.GetNumber("count"));
  out.sum = h.GetNumber("sum");
  out.min = h.GetNumber("min");
  out.max = h.GetNumber("max");
  if (const json::Value* buckets = h.Get("buckets"); buckets != nullptr && buckets->is_array()) {
    for (const auto& b : buckets->array) {
      if (b->is_array() && b->array.size() == 3 && b->array[0]->is_number() &&
          b->array[1]->is_number() && b->array[2]->is_number()) {
        out.buckets.push_back(
            {b->array[0]->number, b->array[1]->number, b->array[2]->number});
      }
    }
  }
  return out;
}

PoolRow ParsePoolRow(const json::Value& v) {
  PoolRow r;
  r.pool = static_cast<int>(v.GetNumber("pool", -1));
  r.fn = static_cast<int>(v.GetNumber("fn", -1));
  r.run_us = v.GetNumber("run_us");
  r.blocked_us = v.GetNumber("blocked_us");
  r.serve_us = v.GetNumber("serve_us");
  r.faults = static_cast<uint64_t>(std::llround(v.GetNumber("faults")));
  r.filaments_run = static_cast<uint64_t>(std::llround(v.GetNumber("filaments_run")));
  r.migrated_in = static_cast<uint64_t>(std::llround(v.GetNumber("migrated_in")));
  return r;
}

// Requires `key` to exist on `obj` with the named JSON type; false + *error otherwise. The
// contract ParseRun enforces: the structural skeleton of a metrics document must be present and
// well-typed, so a truncated or hand-damaged file is rejected with a field-level message instead
// of silently parsing to a zeroed summary the downstream gates would happily "pass".
bool RequireField(const json::Value& obj, const std::string& where, const std::string& key,
                  json::Type type, std::string* error) {
  const json::Value* v = obj.Get(key);
  const char* want = type == json::Type::kString ? "string"
                     : type == json::Type::kNumber ? "number"
                     : type == json::Type::kArray ? "array"
                                                  : "object";
  if (v == nullptr) {
    *error = where + ": missing required " + want + " field \"" + key + "\"";
    return false;
  }
  if (v->type != type) {
    *error = where + ": field \"" + key + "\" is not a " + want;
    return false;
  }
  return true;
}

}  // namespace

bool ParseRun(const std::string& text, RunSummary* out, std::string* error) {
  json::ParseResult parsed = json::Parse(text);
  if (!parsed.ok()) {
    *error = "JSON parse error at byte " + std::to_string(parsed.error_offset) + ": " +
             parsed.error;
    return false;
  }
  const json::Value& root = *parsed.value;
  if (!root.is_object()) {
    *error = "root is not a JSON object";
    return false;
  }
  if (!RequireField(root, "root", "schema", json::Type::kString, error)) {
    return false;
  }
  const std::string schema = root.GetString("schema");
  if (schema != "dfil-metrics-v1" && schema != "dfil-metrics-v2") {
    *error = "not a dfil-metrics-v1/v2 document (schema=\"" + schema + "\")";
    return false;
  }
  for (const char* key : {"label", "pcp"}) {
    if (!RequireField(root, "root", key, json::Type::kString, error)) {
      return false;
    }
  }
  for (const char* key : {"nodes", "completed", "makespan_us"}) {
    if (!RequireField(root, "root", key, json::Type::kNumber, error)) {
      return false;
    }
  }
  out->schema_version = schema == "dfil-metrics-v2" ? 2 : 1;
  out->label = root.GetString("label");
  out->pcp = root.GetString("pcp");
  out->nodes = static_cast<int>(root.GetNumber("nodes"));
  out->completed = root.GetNumber("completed") != 0;
  out->makespan_us = root.GetNumber("makespan_us");
  out->fingerprint = Fingerprint{};
  out->provenance.clear();
  out->cluster_counters.clear();
  out->pools_by_fn.clear();
  out->per_node.clear();
  if (const json::Value* prov = root.Get("provenance"); prov != nullptr && prov->is_object()) {
    for (const auto& [key, value] : prov->object) {
      if (value->is_string()) {
        out->provenance[key] = value->str;
      }
    }
  }
  if (const json::Value* fp = root.Get("fingerprint"); fp != nullptr && fp->is_object()) {
    out->fingerprint.config = fp->GetString("config");
    out->fingerprint.git = fp->GetString("git");
    out->fingerprint.seed = fp->GetString("seed");
    out->fingerprint.app = fp->GetString("app");
  } else {
    // Pre-fingerprint v2 files: recover what the provenance block carries so diffing old
    // artifacts still checks what it can.
    auto prov_or = [out](const char* key) {
      auto it = out->provenance.find(key);
      return it == out->provenance.end() ? std::string() : it->second;
    };
    out->fingerprint.config = prov_or("config_digest");
    out->fingerprint.git = prov_or("git");
    out->fingerprint.seed = prov_or("seed");
    out->fingerprint.app = prov_or("app");
  }
  if (const json::Value* cluster = root.Get("cluster"); cluster != nullptr) {
    if (!cluster->is_object()) {
      *error = "root: field \"cluster\" is not an object";
      return false;
    }
    ParseCounters(cluster->Get("counters"), &out->cluster_counters);
    if (const json::Value* by_fn = cluster->Get("pools_by_fn");
        by_fn != nullptr && by_fn->is_array()) {
      for (const auto& row : by_fn->array) {
        if (row->is_object()) {
          out->pools_by_fn.push_back(ParsePoolRow(*row));
        }
      }
    }
  }
  if (!RequireField(root, "root", "per_node", json::Type::kArray, error)) {
    return false;
  }
  const json::Value* per_node = root.Get("per_node");
  for (size_t i = 0; i < per_node->array.size(); ++i) {
    const json::ValuePtr& n = per_node->array[i];
    const std::string where = "per_node[" + std::to_string(i) + "]";
    if (!n->is_object()) {
      *error = where + ": not an object";
      return false;
    }
    if (!RequireField(*n, where, "node", json::Type::kNumber, error)) {
      return false;
    }
    RunSummary::Node node;
    node.node = static_cast<int>(n->GetNumber("node"));
    node.finished_at_us = n->GetNumber("finished_at_us");
    node.final_clock_us = n->GetNumber("final_clock_us");
    node.run_us = n->GetNumber("run_us");
    node.serve_us = n->GetNumber("serve_us");
    if (const json::Value* t = n->Get("time_us"); t != nullptr && t->is_object()) {
      for (const auto& [key, value] : t->object) {
        if (value->is_number()) {
          node.time_us[key] = value->number;
        }
      }
    }
    if (const json::Value* w = n->Get("wait_us"); w != nullptr && w->is_object()) {
      for (const auto& [key, value] : w->object) {
        if (value->is_number()) {
          node.wait_us[key] = value->number;
        }
      }
    }
    if (const json::Value* w = n->Get("wait_events"); w != nullptr && w->is_object()) {
      ParseCounters(w, &node.wait_events);
    }
    if (const json::Value* pools = n->Get("pools"); pools != nullptr && pools->is_array()) {
      for (const auto& row : pools->array) {
        if (row->is_object()) {
          node.pools.push_back(ParsePoolRow(*row));
        }
      }
    }
    if (const json::Value* es = n->Get("epochs"); es != nullptr && es->is_array()) {
      for (const auto& row : es->array) {
        if (!row->is_object()) {
          continue;
        }
        std::map<std::string, double> cols;
        for (const auto& [key, value] : row->object) {
          if (value->is_number()) {
            cols[key] = value->number;
          }
        }
        node.epochs.push_back(std::move(cols));
      }
    }
    if (const json::Value* m = n->Get("metrics"); m != nullptr && m->is_object()) {
      ParseCounters(m->Get("counters"), &node.counters);
      if (const json::Value* hists = m->Get("histograms");
          hists != nullptr && hists->is_object()) {
        for (const auto& [key, value] : hists->object) {
          if (value->is_object()) {
            node.histograms[key] = ParseHistogram(*value);
          }
        }
      }
    }
    if (const json::Value* heat = n->Get("page_heat"); heat != nullptr && heat->is_array()) {
      for (const auto& pair : heat->array) {
        if (pair->is_array() && pair->array.size() == 2 && pair->array[0]->is_number() &&
            pair->array[1]->is_number()) {
          node.page_heat.emplace_back(static_cast<uint64_t>(pair->array[0]->number),
                                      static_cast<uint64_t>(pair->array[1]->number));
        }
      }
    }
    out->per_node.push_back(std::move(node));
  }
  return true;
}

bool LoadRun(const std::string& path, RunSummary* out, std::string* error) {
  std::string text;
  if (!ReadFile(path, &text, error)) {
    return false;
  }
  if (!ParseRun(text, out, error)) {
    *error = path + ": " + *error;
    return false;
  }
  out->path = path;
  return true;
}

void PrintFigure10(const RunSummary& run, std::ostream& os) {
  os << "Figure 10 — per-node time breakdown (us): " << run.label << " (" << run.pcp << ", "
     << run.nodes << " nodes, makespan " << FormatUs(run.makespan_us) << " us)\n";
  os << std::setw(5) << "node";
  for (const char* cat : kTimeCategories) {
    os << std::setw(15) << cat;
  }
  os << std::setw(15) << "total" << "\n";
  std::map<std::string, double> totals;
  double grand_total = 0.0;
  for (const RunSummary::Node& n : run.per_node) {
    os << std::setw(5) << n.node;
    double row_total = 0.0;
    for (const char* cat : kTimeCategories) {
      auto it = n.time_us.find(cat);
      const double us = it == n.time_us.end() ? 0.0 : it->second;
      totals[cat] += us;
      row_total += us;
      os << std::setw(15) << FormatUs(us);
    }
    grand_total += row_total;
    os << std::setw(15) << FormatUs(row_total) << "\n";
  }
  os << std::setw(5) << "sum";
  for (const char* cat : kTimeCategories) {
    os << std::setw(15) << FormatUs(totals[cat]);
  }
  os << std::setw(15) << FormatUs(grand_total) << "\n";
  os << std::setw(5) << "share";
  for (const char* cat : kTimeCategories) {
    std::ostringstream pct;
    pct << std::fixed << std::setprecision(1)
        << (grand_total > 0.0 ? 100.0 * totals[cat] / grand_total : 0.0) << "%";
    os << std::setw(15) << pct.str();
  }
  os << "\n";
}

void PrintFigure9(const std::vector<RunSummary>& runs, std::ostream& os) {
  os << "Figure 9 — message counts by protocol";
  if (!runs.empty()) {
    os << " (" << runs.front().nodes << " nodes)";
  }
  os << "\n" << std::left << std::setw(28) << "counter" << std::right;
  for (const RunSummary& run : runs) {
    os << std::setw(21) << run.pcp;
  }
  os << "\n";
  for (const char* counter : kFigure9Counters) {
    os << std::left << std::setw(28) << counter << std::right;
    for (const RunSummary& run : runs) {
      os << std::setw(21) << run.ClusterCounter(counter);
    }
    os << "\n";
  }
  for (const char* row : {"fault_wait_us p50", "fault_wait_us p99"}) {
    const double p = row[std::string(row).size() - 2] == '5' ? 50.0 : 99.0;
    os << std::left << std::setw(28) << row << std::right;
    for (const RunSummary& run : runs) {
      os << std::setw(21) << FormatUs(run.MergedHistogram("dsm.fault_wait_us").Percentile(p));
    }
    os << "\n";
  }
}

void PrintFaultLatency(const RunSummary& run, std::ostream& os) {
  const HistSummary h = run.MergedHistogram("dsm.fault_wait_us");
  os << "Fault latency: " << run.label << " — " << h.count << " remote faults";
  if (h.count > 0) {
    os << ", p50 " << FormatUs(h.Percentile(50.0)) << " us, p90 " << FormatUs(h.Percentile(90.0))
       << " us, p99 " << FormatUs(h.Percentile(99.0)) << " us, max " << FormatUs(h.max) << " us";
  }
  os << "\n";
}

void PrintHotPages(const RunSummary& run, size_t top_n, std::ostream& os) {
  std::map<uint64_t, uint64_t> heat;  // page -> total demand faults
  std::map<uint64_t, int> spread;     // page -> nodes that faulted it
  for (const RunSummary::Node& n : run.per_node) {
    for (const auto& [page, faults] : n.page_heat) {
      heat[page] += faults;
      spread[page]++;
    }
  }
  std::vector<std::pair<uint64_t, uint64_t>> ranked(heat.begin(), heat.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second : a.first < b.first;
  });
  os << "Hottest pages: " << run.label << " (" << ranked.size() << " pages faulted)\n";
  os << std::setw(10) << "page" << std::setw(10) << "faults" << std::setw(10) << "nodes" << "\n";
  for (size_t i = 0; i < ranked.size() && i < top_n; ++i) {
    os << std::setw(10) << ranked[i].first << std::setw(10) << ranked[i].second << std::setw(10)
       << spread[ranked[i].first] << "\n";
  }
}

// ---- Trace analysis ------------------------------------------------------------------------

namespace {

// Accepts a bare event array (what WriteChromeTrace emits) or the {"traceEvents": [...]} wrapper.
const json::Value* TraceEvents(const json::Value& root) {
  if (root.is_array()) {
    return &root;
  }
  const json::Value* events = root.Get("traceEvents");
  return events != nullptr && events->is_array() ? events : nullptr;
}

}  // namespace

TraceCheck CheckChromeTrace(const std::string& text) {
  TraceCheck out;
  constexpr size_t kMaxErrors = 32;
  auto fail = [&out](std::string msg) {
    if (out.errors.size() < kMaxErrors) {
      out.errors.push_back(std::move(msg));
    }
  };
  json::ParseResult parsed = json::Parse(text);
  if (!parsed.ok()) {
    fail("JSON parse error at byte " + std::to_string(parsed.error_offset) + ": " + parsed.error);
    return out;
  }
  const json::Value* events = TraceEvents(*parsed.value);
  if (events == nullptr) {
    fail("no trace event array found");
    return out;
  }
  struct Track {
    int depth = 0;
    double last_ts = -1.0;
  };
  std::map<std::pair<int64_t, int64_t>, Track> tracks;
  std::set<uint64_t> flow_start_ids;
  std::set<uint64_t> flow_end_ids;
  for (size_t i = 0; i < events->array.size(); ++i) {
    const json::Value& e = *events->array[i];
    out.events++;
    const std::string ph = e.GetString("ph");
    const auto pid = static_cast<int64_t>(e.GetNumber("pid", -1));
    const auto tid = static_cast<int64_t>(e.GetNumber("tid", -1));
    const double ts = e.GetNumber("ts", -1.0);
    if (ph.size() != 1) {
      fail("event " + std::to_string(i) + ": missing/bad ph");
      continue;
    }
    Track& track = tracks[{pid, tid}];
    switch (ph[0]) {
      case 'B':
      case 'E':
        // Duration events must nest and be time-ordered per (pid, tid) track.
        if (ts < track.last_ts) {
          fail("event " + std::to_string(i) + ": ts " + std::to_string(ts) +
               " goes backwards on track (" + std::to_string(pid) + "," + std::to_string(tid) +
               ")");
        }
        track.last_ts = ts;
        if (ph[0] == 'B') {
          if (e.GetString("name").empty()) {
            fail("event " + std::to_string(i) + ": B without a name");
          }
          track.depth++;
        } else {
          if (track.depth <= 0) {
            fail("event " + std::to_string(i) + ": E with no open span on track (" +
                 std::to_string(pid) + "," + std::to_string(tid) + ")");
          } else {
            track.depth--;
            out.spans++;
          }
        }
        break;
      case 's':
      case 't':
      case 'f': {
        const auto id = static_cast<uint64_t>(e.GetNumber("id", 0));
        if (id == 0) {
          fail("event " + std::to_string(i) + ": flow '" + ph + "' without an id");
          break;
        }
        if (ph[0] == 's') {
          if (!flow_start_ids.insert(id).second) {
            fail("event " + std::to_string(i) + ": duplicate flow start id " +
                 std::to_string(id));
          }
          out.flow_starts++;
        } else if (ph[0] == 'f') {
          flow_end_ids.insert(id);
          out.flow_ends++;
        }
        break;
      }
      case 'i':
        break;  // instants may sit on dedicated tracks (injection events) at delivery times
      default:
        fail("event " + std::to_string(i) + ": unexpected ph '" + ph + "'");
    }
  }
  for (const auto& [key, track] : tracks) {
    if (track.depth != 0) {
      fail("track (" + std::to_string(key.first) + "," + std::to_string(key.second) + ") ends with " +
           std::to_string(track.depth) + " unclosed span(s)");
    }
  }
  // An 'f' without an 's' is fine (a serve observed without the faulting side blocking), but every
  // started arc must terminate somewhere or Perfetto renders a dangling arrow.
  for (uint64_t id : flow_start_ids) {
    if (flow_end_ids.count(id) != 0) {
      out.complete_flows++;
    } else {
      fail("flow id " + std::to_string(id) + " has 's' but no matching 'f'");
    }
  }
  out.ok = out.errors.empty();
  return out;
}

std::vector<FlowArc> ExtractFlows(const std::string& text) {
  std::vector<FlowArc> arcs;
  json::ParseResult parsed = json::Parse(text);
  if (!parsed.ok()) {
    return arcs;
  }
  const json::Value* events = TraceEvents(*parsed.value);
  if (events == nullptr) {
    return arcs;
  }
  std::map<uint64_t, FlowArc> by_id;
  std::set<uint64_t> finished;
  for (const auto& ep : events->array) {
    const json::Value& e = *ep;
    const std::string ph = e.GetString("ph");
    if (ph != "s" && ph != "t" && ph != "f") {
      continue;
    }
    const auto id = static_cast<uint64_t>(e.GetNumber("id", 0));
    if (id == 0) {
      continue;
    }
    FlowArc& arc = by_id[id];
    arc.id = id;
    if (ph == "s") {
      arc.name = e.GetString("name");
      arc.start_ts = e.GetNumber("ts");
      arc.start_node = static_cast<int>(e.GetNumber("pid", -1));
    } else if (ph == "t") {
      arc.steps++;
    } else {
      arc.end_ts = e.GetNumber("ts");
      arc.end_node = static_cast<int>(e.GetNumber("pid", -1));
      finished.insert(id);
    }
  }
  for (const auto& [id, arc] : by_id) {
    if (arc.start_node >= 0 && finished.count(id) != 0) {
      arcs.push_back(arc);
    }
  }
  return arcs;
}

void PrintCriticalPaths(std::vector<FlowArc> arcs, size_t top_n, std::ostream& os) {
  std::sort(arcs.begin(), arcs.end(),
            [](const FlowArc& a, const FlowArc& b) { return a.duration_us() > b.duration_us(); });
  os << "Longest fault critical paths (" << arcs.size() << " complete flow arcs)\n";
  os << std::left << std::setw(14) << "flow" << std::right << std::setw(12) << "wait_us"
     << std::setw(8) << "hops" << std::setw(14) << "path" << std::setw(14) << "start_us" << "\n";
  for (size_t i = 0; i < arcs.size() && i < top_n; ++i) {
    const FlowArc& a = arcs[i];
    os << std::left << std::setw(14) << a.name << std::right << std::setw(12)
       << FormatUs(a.duration_us()) << std::setw(8) << a.steps << std::setw(14)
       << ("n" + std::to_string(a.start_node) + "->n" + std::to_string(a.end_node))
       << std::setw(14) << FormatUs(a.start_ts) << "\n";
  }
}

// ---- End-to-end critical path --------------------------------------------------------------

const char* PathSegmentKindName(PathSegment::Kind kind) {
  switch (kind) {
    case PathSegment::Kind::kCompute:
      return "compute";
    case PathSegment::Kind::kPageFault:
      return "page_fault";
    case PathSegment::Kind::kBarrier:
      return "barrier";
  }
  return "?";
}

namespace {

struct TraceSpan {
  double b = 0.0;
  double e = 0.0;
};

// The three trace shapes the walker consumes, keyed for lookup: per-node completion instants,
// per-(node, epoch) barrier spans, and per-node fault spans (across all thread tracks — several
// threads of one node can be blocked faulting concurrently).
struct CritTrace {
  std::map<int, double> done_ts;
  std::map<int, std::map<uint64_t, TraceSpan>> reduces;
  std::map<int, std::vector<std::pair<TraceSpan, uint64_t>>> faults;
  uint64_t rebalance_events = 0;  // plan/migrate instants on the rebalance track
};

bool ParseCritTrace(const std::string& text, CritTrace* out, std::string* error) {
  json::ParseResult parsed = json::Parse(text);
  if (!parsed.ok()) {
    *error = "JSON parse error at byte " + std::to_string(parsed.error_offset) + ": " +
             parsed.error;
    return false;
  }
  const json::Value* events = TraceEvents(*parsed.value);
  if (events == nullptr) {
    *error = "no trace event array found";
    return false;
  }
  // Open-span stack per (pid, tid) track; E events carry no name, so the B name rides the stack.
  std::map<std::pair<int, int64_t>, std::vector<std::pair<std::string, double>>> open;
  for (const auto& ep : events->array) {
    const json::Value& e = *ep;
    const std::string ph = e.GetString("ph");
    const int pid = static_cast<int>(e.GetNumber("pid", -1));
    const auto tid = static_cast<int64_t>(e.GetNumber("tid", -1));
    const double ts = e.GetNumber("ts", 0.0);
    if (ph == "i") {
      const std::string name = e.GetString("name");
      if (name == "done" && ts > out->done_ts[pid]) {
        out->done_ts[pid] = ts;
      } else if (name.rfind("rebalance", 0) == 0) {
        ++out->rebalance_events;
      }
    } else if (ph == "B") {
      open[{pid, tid}].emplace_back(e.GetString("name"), ts);
    } else if (ph == "E") {
      auto& stack = open[{pid, tid}];
      if (stack.empty()) {
        continue;  // unbalanced track; CheckChromeTrace is the validity gate, not this parser
      }
      const auto [name, begin_ts] = stack.back();
      stack.pop_back();
      if (name.rfind("reduce e", 0) == 0) {
        const uint64_t epoch = std::strtoull(name.c_str() + 8, nullptr, 10);
        out->reduces[pid][epoch] = TraceSpan{begin_ts, ts};
      } else if (name.rfind("fault p", 0) == 0) {
        const uint64_t page = std::strtoull(name.c_str() + 7, nullptr, 10);
        out->faults[pid].emplace_back(TraceSpan{begin_ts, ts}, page);
      }
    }
  }
  return true;
}

// Decomposes the on-node interval [s, e] into page-fault stalls vs compute: fault spans are
// clipped to the interval and merged where they overlap (concurrent faults from different
// threads), each merged stall attributed to the page covering the most of it; what no fault
// covers is compute. The returned segments tile [s, e] exactly, in time order.
std::vector<PathSegment> DecomposeGap(const CritTrace& t, int node, double s, double e) {
  std::vector<PathSegment> out;
  if (e <= s) {
    return out;
  }
  struct Clip {
    double b, e;
    uint64_t page;
  };
  std::vector<Clip> clips;
  if (auto it = t.faults.find(node); it != t.faults.end()) {
    for (const auto& [span, page] : it->second) {
      if (span.e > s && span.b < e) {
        clips.push_back({std::max(span.b, s), std::min(span.e, e), page});
      }
    }
  }
  std::sort(clips.begin(), clips.end(), [](const Clip& a, const Clip& b) { return a.b < b.b; });
  auto push = [&out, node](PathSegment::Kind kind, double b, double end, uint64_t page) {
    if (end <= b) {
      return;  // zero-width: boundaries are shared, so dropping it keeps the tiling exact
    }
    PathSegment seg;
    seg.kind = kind;
    seg.node = node;
    seg.start_us = b;
    seg.end_us = end;
    seg.page = page;
    out.push_back(seg);
  };
  double cursor = s;
  for (size_t i = 0; i < clips.size();) {
    double merged_end = clips[i].e;
    std::map<uint64_t, double> cover;
    cover[clips[i].page] += clips[i].e - clips[i].b;
    size_t j = i + 1;
    while (j < clips.size() && clips[j].b <= merged_end) {
      merged_end = std::max(merged_end, clips[j].e);
      cover[clips[j].page] += clips[j].e - clips[j].b;
      ++j;
    }
    uint64_t page = clips[i].page;
    double best = -1.0;
    for (const auto& [p, us] : cover) {
      if (us > best) {
        best = us;
        page = p;
      }
    }
    push(PathSegment::Kind::kCompute, cursor, clips[i].b, 0);
    push(PathSegment::Kind::kPageFault, clips[i].b, merged_end, page);
    cursor = merged_end;
    i = j;
  }
  push(PathSegment::Kind::kCompute, cursor, e, 0);
  return out;
}

}  // namespace

CriticalPath BuildCriticalPath(const std::string& trace_text) {
  CriticalPath path;
  CritTrace t;
  if (!ParseCritTrace(trace_text, &t, &path.error)) {
    return path;
  }
  if (t.done_ts.empty()) {
    path.error = "trace has no per-node \"done\" instants (not produced by this runtime?)";
    return path;
  }
  path.rebalance_events = t.rebalance_events;
  for (const auto& [node, ts] : t.done_ts) {
    if (ts > path.completion_us) {
      path.completion_us = ts;
      path.critical_node = node;
    }
  }
  // Walk backward from the last-finishing node's "done". At each step the interval since the
  // previous barrier release belongs to the current node; the barrier itself is blamed on the
  // epoch and the walk jumps to its last arriver — the node that held the release back.
  constexpr double kEps = 1e-6;
  std::vector<PathSegment> rev;  // built back-to-front
  int node = path.critical_node;
  double anchor = path.completion_us;
  uint64_t prev_epoch = UINT64_MAX;  // epochs must strictly decrease, guaranteeing termination
  while (true) {
    const TraceSpan* release = nullptr;
    uint64_t epoch = 0;
    if (auto it = t.reduces.find(node); it != t.reduces.end()) {
      for (const auto& [ep, span] : it->second) {
        if (ep < prev_epoch && span.e <= anchor + kEps &&
            (release == nullptr || span.e > release->e)) {
          release = &span;
          epoch = ep;
        }
      }
    }
    if (release == nullptr) {
      // No earlier barrier on this node: the chain starts with its initial segment from t = 0.
      const auto gap = DecomposeGap(t, node, 0.0, anchor);
      rev.insert(rev.end(), gap.rbegin(), gap.rend());
      break;
    }
    const auto gap = DecomposeGap(t, node, release->e, anchor);
    rev.insert(rev.end(), gap.rbegin(), gap.rend());
    // Last arriver for this epoch across all nodes; its entry opens the barrier hop.
    int last_arriver = node;
    double entry = release->b;
    for (const auto& [n, reds] : t.reduces) {
      if (auto it = reds.find(epoch); it != reds.end() && it->second.b > entry) {
        entry = it->second.b;
        last_arriver = n;
      }
    }
    if (entry > release->e + kEps) {
      path.error = "barrier e" + std::to_string(epoch) + " released on node " +
                   std::to_string(node) + " before its last arriver entered (malformed trace)";
      path.segments.clear();
      return path;
    }
    PathSegment hop;
    hop.kind = PathSegment::Kind::kBarrier;
    hop.node = node;
    hop.start_us = std::min(entry, release->e);
    hop.end_us = release->e;
    hop.epoch = epoch;
    if (hop.end_us > hop.start_us) {
      rev.push_back(hop);
    }
    node = last_arriver;
    anchor = hop.start_us;
    prev_epoch = epoch;
  }
  path.segments.assign(rev.rbegin(), rev.rend());
  // The invariant the whole analysis rests on: the hops tile [0, completion] with no gap and no
  // overlap, so their durations sum to the run's virtual completion time.
  double cursor = 0.0;
  for (const PathSegment& seg : path.segments) {
    if (std::abs(seg.start_us - cursor) > 1e-3) {
      path.error = "path discontinuity at " + FormatUs(seg.start_us) + " us (previous hop ended " +
                   FormatUs(cursor) + " us)";
      return path;
    }
    cursor = seg.end_us;
    switch (seg.kind) {
      case PathSegment::Kind::kCompute:
        path.compute_us += seg.duration_us();
        break;
      case PathSegment::Kind::kPageFault:
        path.fault_us += seg.duration_us();
        break;
      case PathSegment::Kind::kBarrier:
        path.barrier_us += seg.duration_us();
        break;
    }
  }
  if (std::abs(cursor - path.completion_us) > 1e-3) {
    path.error = "path length " + FormatUs(cursor) + " us != completion time " +
                 FormatUs(path.completion_us) + " us";
    return path;
  }
  path.ok = true;
  return path;
}

std::vector<BlameRow> BlamePath(const CriticalPath& path) {
  std::map<std::string, BlameRow> rows;
  for (const PathSegment& seg : path.segments) {
    std::string label;
    switch (seg.kind) {
      case PathSegment::Kind::kCompute:
        label = "compute n" + std::to_string(seg.node);
        break;
      case PathSegment::Kind::kPageFault:
        label = "page " + std::to_string(seg.page);
        break;
      case PathSegment::Kind::kBarrier:
        label = "barrier e" + std::to_string(seg.epoch);
        break;
    }
    BlameRow& row = rows[label];
    row.label = label;
    row.us += seg.duration_us();
    row.hops++;
  }
  std::vector<BlameRow> ranked;
  ranked.reserve(rows.size());
  for (auto& [label, row] : rows) {
    ranked.push_back(std::move(row));
  }
  std::sort(ranked.begin(), ranked.end(), [](const BlameRow& a, const BlameRow& b) {
    return a.us != b.us ? a.us > b.us : a.label < b.label;
  });
  return ranked;
}

double WhatIfZeroCostPages(const CriticalPath& path) {
  return path.completion_us - path.fault_us;
}

namespace {

std::string Pct(double part, double whole) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(1) << (whole > 0.0 ? 100.0 * part / whole : 0.0) << "%";
  return os.str();
}

std::string SegmentDetail(const PathSegment& seg) {
  switch (seg.kind) {
    case PathSegment::Kind::kPageFault:
      return "p" + std::to_string(seg.page);
    case PathSegment::Kind::kBarrier:
      return "e" + std::to_string(seg.epoch);
    case PathSegment::Kind::kCompute:
      break;
  }
  return "-";
}

}  // namespace

void PrintCritPath(const CriticalPath& path, size_t top_n, std::ostream& os) {
  if (!path.ok) {
    os << "critical path: UNAVAILABLE — " << path.error << "\n";
    return;
  }
  os << "Critical path: " << FormatUs(path.completion_us) << " us end-to-end, finishing on node "
     << path.critical_node << " (" << path.segments.size() << " hops)\n";
  os << "  compute " << FormatUs(path.compute_us) << " us (" << Pct(path.compute_us, path.completion_us)
     << "), page_fault " << FormatUs(path.fault_us) << " us ("
     << Pct(path.fault_us, path.completion_us) << "), barrier " << FormatUs(path.barrier_us)
     << " us (" << Pct(path.barrier_us, path.completion_us) << ")\n";
  os << "  what-if zero-cost page serves: " << FormatUs(WhatIfZeroCostPages(path)) << " us ("
     << Pct(path.fault_us, path.completion_us) << " faster)\n";
  if (path.rebalance_events > 0) {
    os << "  load balancing: " << path.rebalance_events
       << " rebalance event(s) on the trace (plans + migrations, DESIGN.md §13)\n";
  }
  // The top_n longest hops, each tagged with its position on the path so the reader can line
  // them up with the full timeline.
  std::vector<size_t> order(path.segments.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::sort(order.begin(), order.end(), [&path](size_t a, size_t b) {
    return path.segments[a].duration_us() > path.segments[b].duration_us();
  });
  os << std::setw(8) << "hop" << std::setw(12) << "kind" << std::setw(8) << "node" << std::setw(10)
     << "detail" << std::setw(14) << "start_us" << std::setw(14) << "dur_us" << std::setw(9)
     << "share" << "\n";
  for (size_t i = 0; i < order.size() && i < top_n; ++i) {
    const PathSegment& seg = path.segments[order[i]];
    os << std::setw(8) << ("#" + std::to_string(order[i])) << std::setw(12)
       << PathSegmentKindName(seg.kind) << std::setw(8) << seg.node << std::setw(10)
       << SegmentDetail(seg) << std::setw(14) << FormatUs(seg.start_us) << std::setw(14)
       << FormatUs(seg.duration_us()) << std::setw(9) << Pct(seg.duration_us(), path.completion_us)
       << "\n";
  }
}

void PrintBlame(const CriticalPath& path, size_t top_n, std::ostream& os) {
  if (!path.ok) {
    os << "blame: UNAVAILABLE — " << path.error << "\n";
    return;
  }
  const std::vector<BlameRow> ranked = BlamePath(path);
  os << "Critical-path blame (" << FormatUs(path.completion_us) << " us total, " << ranked.size()
     << " causes)\n";
  os << std::left << std::setw(20) << "cause" << std::right << std::setw(14) << "path_us"
     << std::setw(9) << "share" << std::setw(8) << "hops" << "\n";
  for (size_t i = 0; i < ranked.size() && i < top_n; ++i) {
    const BlameRow& row = ranked[i];
    os << std::left << std::setw(20) << row.label << std::right << std::setw(14)
       << FormatUs(row.us) << std::setw(9) << Pct(row.us, path.completion_us) << std::setw(8)
       << row.hops << "\n";
  }
}

// ---- Flight-recorder dumps -----------------------------------------------------------------

bool ParseFlight(const std::string& text, FlightDump* out, std::string* error) {
  json::ParseResult parsed = json::Parse(text);
  if (!parsed.ok()) {
    *error = "JSON parse error at byte " + std::to_string(parsed.error_offset) + ": " +
             parsed.error;
    return false;
  }
  const json::Value& root = *parsed.value;
  if (root.GetString("schema") != "dfil-flight-v1") {
    *error = "not a dfil-flight-v1 document (schema=\"" + root.GetString("schema") + "\")";
    return false;
  }
  out->label = root.GetString("label");
  out->at_violation = root.GetNumber("at_violation") != 0;
  out->violations.clear();
  out->nodes.clear();
  out->injections.clear();
  if (const json::Value* v = root.Get("violations"); v != nullptr && v->is_array()) {
    for (const auto& item : v->array) {
      if (item->is_string()) {
        out->violations.push_back(item->str);
      }
    }
  }
  if (const json::Value* nodes = root.Get("nodes"); nodes != nullptr && nodes->is_array()) {
    for (const auto& n : nodes->array) {
      FlightDump::NodeLog log;
      log.node = static_cast<int>(n->GetNumber("node"));
      if (const json::Value* events = n->Get("events"); events != nullptr && events->is_array()) {
        for (const auto& e : events->array) {
          FlightDump::Event event;
          event.kind = e->GetString("kind");
          event.detail = static_cast<uint64_t>(e->GetNumber("detail"));
          event.start_us = e->GetNumber("start_us");
          event.end_us = e->GetNumber("end_us");
          log.events.push_back(std::move(event));
        }
      }
      out->nodes.push_back(std::move(log));
    }
  }
  if (const json::Value* inj = root.Get("injections"); inj != nullptr && inj->is_array()) {
    for (const auto& i : inj->array) {
      FlightDump::Injection note;
      note.what = i->GetString("what");
      note.klass = i->GetString("class");
      note.type = static_cast<uint32_t>(i->GetNumber("type"));
      note.src = static_cast<int>(i->GetNumber("src"));
      note.dst = static_cast<int>(i->GetNumber("dst"));
      note.at_us = i->GetNumber("at_us");
      out->injections.push_back(std::move(note));
    }
  }
  return true;
}

void PrintFlight(const FlightDump& dump, std::ostream& os) {
  os << "Flight recorder: " << dump.label << " — captured "
     << (dump.at_violation ? "at first oracle violation" : "at end of run") << "\n";
  if (!dump.violations.empty()) {
    os << dump.violations.size() << " violation(s):\n";
    for (const std::string& v : dump.violations) {
      os << "  ! " << v << "\n";
    }
  }
  // Interleave the per-node wait rings and the injection log into one timeline, ordered by the
  // instant each entry completed — the shape of the cluster's final moments.
  struct Line {
    double ts;
    std::string text;
  };
  std::vector<Line> lines;
  size_t events = 0;
  for (const FlightDump::NodeLog& log : dump.nodes) {
    for (const FlightDump::Event& e : log.events) {
      events++;
      std::ostringstream text;
      text << std::fixed << std::setprecision(1) << std::setw(14) << e.end_us << "  n" << log.node
           << " " << e.kind;
      if (e.kind == "page_fault") {
        text << " p" << e.detail;
      } else if (e.kind == "barrier") {
        text << " e" << e.detail;
      } else if (e.detail != 0) {
        text << " d" << e.detail;
      }
      text << " (" << FormatUs(e.end_us - e.start_us) << " us)";
      lines.push_back({e.end_us, text.str()});
    }
  }
  for (const FlightDump::Injection& i : dump.injections) {
    std::ostringstream text;
    text << std::fixed << std::setprecision(1) << std::setw(14) << i.at_us << "  inject " << i.what
         << " " << i.klass << " svc" << i.type << " n" << i.src << "->n" << i.dst;
    lines.push_back({i.at_us, text.str()});
  }
  std::stable_sort(lines.begin(), lines.end(),
                   [](const Line& a, const Line& b) { return a.ts < b.ts; });
  os << events << " wait event(s) across " << dump.nodes.size() << " node(s), "
     << dump.injections.size() << " injection(s):\n";
  for (const Line& line : lines) {
    os << line.text << "\n";
  }
}

// ---- CI regression gate --------------------------------------------------------------------

GateResult CheckGate(const std::string& baseline_text, const std::vector<RunSummary>& runs,
                     std::string* error) {
  GateResult out;
  json::ParseResult parsed = json::Parse(baseline_text);
  if (!parsed.ok()) {
    *error = "baseline JSON parse error at byte " + std::to_string(parsed.error_offset) + ": " +
             parsed.error;
    out.ok = false;
    return out;
  }
  const json::Value& root = *parsed.value;
  if (root.GetString("schema") != "dfil-gate-v1") {
    *error = "baseline is not a dfil-gate-v1 document";
    out.ok = false;
    return out;
  }
  const double tolerance = root.GetNumber("tolerance", 0.10);
  const json::Value* baseline_runs = root.Get("runs");
  if (baseline_runs == nullptr || !baseline_runs->is_object()) {
    *error = "baseline has no runs object";
    out.ok = false;
    return out;
  }
  for (const auto& [label, expectations] : baseline_runs->object) {
    const RunSummary* run = nullptr;
    for (const RunSummary& candidate : runs) {
      if (candidate.label == label) {
        run = &candidate;
        break;
      }
    }
    if (run == nullptr) {
      out.ok = false;
      out.lines.push_back("FAIL " + label + ": no metrics file with this label was supplied");
      continue;
    }
    for (const auto& [counter, expected_value] : expectations->object) {
      if (!expected_value->is_number()) {
        continue;
      }
      const double expected = expected_value->number;
      const auto actual = static_cast<double>(run->ClusterCounter(counter));
      const double drift = std::abs(actual - expected) / std::max(expected, 1.0);
      std::ostringstream line;
      line << (drift > tolerance ? "FAIL " : "ok   ") << label << " " << counter << ": expected "
           << std::llround(expected) << ", got " << std::llround(actual) << " ("
           << std::showpos << std::fixed << std::setprecision(1) << 100.0 * (actual - expected) /
                  std::max(expected, 1.0)
           << "%, tolerance ±" << std::noshowpos << 100.0 * tolerance << "%)";
      out.lines.push_back(line.str());
      if (drift > tolerance) {
        out.ok = false;
      }
    }
  }
  return out;
}

GateResult CheckCritpathGate(const std::string& baseline_text, const CriticalPath& path,
                             std::string* error) {
  GateResult out;
  json::ParseResult parsed = json::Parse(baseline_text);
  if (!parsed.ok()) {
    *error = "baseline JSON parse error at byte " + std::to_string(parsed.error_offset) + ": " +
             parsed.error;
    out.ok = false;
    return out;
  }
  const json::Value& root = *parsed.value;
  if (root.GetString("schema") != "dfil-critpath-gate-v1") {
    *error = "baseline is not a dfil-critpath-gate-v1 document";
    out.ok = false;
    return out;
  }
  if (!path.ok) {
    out.ok = false;
    out.lines.push_back("FAIL critpath: " + path.error);
    return out;
  }
  out.lines.push_back("ok   critpath: " + std::to_string(path.segments.size()) + " hops tile [0, " +
                      FormatUs(path.completion_us) + " us] with no gaps");
  const double tolerance_pp = root.GetNumber("tolerance_pp", 10.0);
  const json::Value* shares = root.Get("shares_pct");
  if (shares == nullptr || !shares->is_object()) {
    *error = "baseline has no shares_pct object";
    out.ok = false;
    return out;
  }
  const double denom = path.completion_us > 0.0 ? path.completion_us : 1.0;
  const std::map<std::string, double> actual = {
      {"compute", 100.0 * path.compute_us / denom},
      {"page_fault", 100.0 * path.fault_us / denom},
      {"barrier", 100.0 * path.barrier_us / denom},
  };
  for (const auto& [kind, expected_value] : shares->object) {
    if (!expected_value->is_number()) {
      continue;
    }
    auto it = actual.find(kind);
    if (it == actual.end()) {
      out.ok = false;
      out.lines.push_back("FAIL critpath " + kind + ": unknown wait category in baseline");
      continue;
    }
    const double expected = expected_value->number;
    const double drift = std::abs(it->second - expected);
    std::ostringstream line;
    line << (drift > tolerance_pp ? "FAIL " : "ok   ") << "critpath " << kind << " share: expected "
         << std::fixed << std::setprecision(1) << expected << "pp, got " << it->second << "pp (±"
         << tolerance_pp << "pp)";
    out.lines.push_back(line.str());
    if (drift > tolerance_pp) {
      out.ok = false;
    }
  }
  return out;
}

// ---- Shared CLI parsing --------------------------------------------------------------------

CliOptions ParseCliOptions(int argc, char** argv, int first) {
  CliOptions opt;
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    // "--flag VALUE" and "--flag=VALUE" are both accepted; a trailing valueless "--flag" is a
    // usage error (reported through opt.error, never a silent default).
    auto value_of = [&](const char* flag, std::string* value) {
      const std::string name(flag);
      if (arg == name) {
        if (i + 1 >= argc) {
          opt.error = arg + " (missing value)";
          return true;
        }
        *value = argv[++i];
        return true;
      }
      if (arg.rfind(name + "=", 0) == 0) {
        *value = arg.substr(name.size() + 1);
        return true;
      }
      return false;
    };
    std::string top_value;
    if (value_of("--top", &top_value)) {
      if (!opt.error.empty()) {
        break;
      }
      opt.top_n = static_cast<size_t>(std::strtoul(top_value.c_str(), nullptr, 10));
    } else if (value_of("--check", &opt.check_baseline) ||
               value_of("--gate", &opt.gate_baseline) ||
               value_of("--history", &opt.history_path)) {
      if (!opt.error.empty()) {
        break;
      }
    } else if (arg == "--force") {
      opt.force = true;
    } else if (arg.rfind("--", 0) == 0) {
      opt.error = arg;
      break;
    } else {
      opt.paths.push_back(arg);
    }
  }
  return opt;
}

// ---- Run diffing (tools/dfil_diff) ---------------------------------------------------------

double Delta::rel() const {
  return (b - a) / std::max(std::abs(a), 1.0);
}

namespace {

std::string ProvenanceOr(const RunSummary& run, const std::string& key) {
  auto it = run.provenance.find(key);
  return it == run.provenance.end() ? std::string() : it->second;
}

void AddDelta(std::vector<Delta>* out, std::string name, double a, double b) {
  if (a == b) {
    return;
  }
  out->push_back(Delta{std::move(name), a, b});
}

void RankDeltas(std::vector<Delta>* deltas) {
  std::sort(deltas->begin(), deltas->end(), [](const Delta& x, const Delta& y) {
    const double rx = std::abs(x.rel());
    const double ry = std::abs(y.rel());
    if (rx != ry) {
      return rx > ry;
    }
    const double dx = std::abs(x.diff());
    const double dy = std::abs(y.diff());
    return dx != dy ? dx > dy : x.name < y.name;
  });
}

// Per-epoch rows summed across nodes: epoch key (the "epoch" column when present, else the row
// index + 1) -> column -> cluster total.
std::map<uint64_t, std::map<std::string, double>> EpochTotals(const RunSummary& run) {
  std::map<uint64_t, std::map<std::string, double>> totals;
  for (const RunSummary::Node& n : run.per_node) {
    for (size_t i = 0; i < n.epochs.size(); ++i) {
      const auto& row = n.epochs[i];
      uint64_t epoch = i + 1;
      if (auto it = row.find("epoch"); it != row.end()) {
        epoch = static_cast<uint64_t>(it->second);
      }
      for (const auto& [col, value] : row) {
        if (col != "epoch") {
          totals[epoch][col] += value;
        }
      }
    }
  }
  return totals;
}

std::map<uint64_t, uint64_t> PageHeatTotals(const RunSummary& run) {
  std::map<uint64_t, uint64_t> heat;
  for (const RunSummary::Node& n : run.per_node) {
    for (const auto& [page, faults] : n.page_heat) {
      heat[page] += faults;
    }
  }
  return heat;
}

std::map<int, PoolRow> PoolsByFn(const RunSummary& run) {
  std::map<int, PoolRow> by_fn;
  for (const PoolRow& row : run.pools_by_fn) {
    by_fn[row.fn] = row;
  }
  return by_fn;
}

std::string FnLabel(int fn) { return fn < 0 ? std::string("residual") : "fn" + std::to_string(fn); }

}  // namespace

FingerprintCheck CompareFingerprints(const RunSummary& a, const RunSummary& b) {
  FingerprintCheck out;
  // Hard mismatches: the runs execute different programs or a different memory shape, so no
  // counter delta between them attributes anything. Empty fields (old files) are "unknown", not
  // a mismatch.
  auto hard = [&out](const char* what, const std::string& va, const std::string& vb) {
    if (!va.empty() && !vb.empty() && va != vb) {
      out.compatible = false;
      out.mismatches.push_back(std::string(what) + ": " + va + " vs " + vb);
    }
  };
  hard("app", a.fingerprint.app, b.fingerprint.app);
  hard("page_shift", ProvenanceOr(a, "page_shift"), ProvenanceOr(b, "page_shift"));
  if (a.nodes != b.nodes) {
    out.compatible = false;
    out.mismatches.push_back("nodes: " + std::to_string(a.nodes) + " vs " +
                             std::to_string(b.nodes));
  }
  out.identical_config =
      !a.fingerprint.config.empty() && a.fingerprint.config == b.fingerprint.config;
  if (!out.identical_config) {
    // The digest only says "something schedule-affecting differs"; the provenance block says
    // what. cli.* keys record how the bench was invoked, not what ran — skip them.
    std::set<std::string> keys;
    for (const auto& [key, value] : a.provenance) {
      keys.insert(key);
    }
    for (const auto& [key, value] : b.provenance) {
      keys.insert(key);
    }
    for (const std::string& key : keys) {
      if (key.rfind("cli.", 0) == 0 || key == "config_digest") {
        continue;
      }
      const std::string va = ProvenanceOr(a, key);
      const std::string vb = ProvenanceOr(b, key);
      if (va != vb) {
        out.config_notes.push_back(key + ": " + (va.empty() ? "(unset)" : va) + " -> " +
                                   (vb.empty() ? "(unset)" : vb));
      }
    }
  }
  return out;
}

RunDiff DiffRuns(const RunSummary& a, const RunSummary& b) {
  RunDiff d;
  d.fingerprints = CompareFingerprints(a, b);
  d.makespan = Delta{"makespan_us", a.makespan_us, b.makespan_us};

  std::set<std::string> counter_names;
  for (const auto& [name, value] : a.cluster_counters) {
    counter_names.insert(name);
  }
  for (const auto& [name, value] : b.cluster_counters) {
    counter_names.insert(name);
  }
  for (const std::string& name : counter_names) {
    AddDelta(&d.counters, name, static_cast<double>(a.ClusterCounter(name)),
             static_cast<double>(b.ClusterCounter(name)));
  }

  std::set<std::string> hist_names;
  for (const RunSummary* run : {&a, &b}) {
    for (const RunSummary::Node& n : run->per_node) {
      for (const auto& [name, hist] : n.histograms) {
        hist_names.insert(name);
      }
    }
  }
  for (const std::string& name : hist_names) {
    const HistSummary ha = a.MergedHistogram(name);
    const HistSummary hb = b.MergedHistogram(name);
    AddDelta(&d.histograms, name + ".p50", ha.Percentile(50.0), hb.Percentile(50.0));
    AddDelta(&d.histograms, name + ".p99", ha.Percentile(99.0), hb.Percentile(99.0));
  }

  const auto epochs_a = EpochTotals(a);
  const auto epochs_b = EpochTotals(b);
  std::set<uint64_t> epoch_keys;
  for (const auto& [epoch, cols] : epochs_a) {
    epoch_keys.insert(epoch);
  }
  for (const auto& [epoch, cols] : epochs_b) {
    epoch_keys.insert(epoch);
  }
  for (const uint64_t epoch : epoch_keys) {
    std::set<std::string> cols;
    if (auto it = epochs_a.find(epoch); it != epochs_a.end()) {
      for (const auto& [col, value] : it->second) {
        cols.insert(col);
      }
    }
    if (auto it = epochs_b.find(epoch); it != epochs_b.end()) {
      for (const auto& [col, value] : it->second) {
        cols.insert(col);
      }
    }
    for (const std::string& col : cols) {
      auto cell = [epoch, &col](const std::map<uint64_t, std::map<std::string, double>>& totals) {
        auto it = totals.find(epoch);
        if (it == totals.end()) {
          return 0.0;
        }
        auto ct = it->second.find(col);
        return ct == it->second.end() ? 0.0 : ct->second;
      };
      AddDelta(&d.epochs, "e" + std::to_string(epoch) + "." + col, cell(epochs_a),
               cell(epochs_b));
    }
  }

  const auto pools_a = PoolsByFn(a);
  const auto pools_b = PoolsByFn(b);
  std::set<int> fns;
  for (const auto& [fn, row] : pools_a) {
    fns.insert(fn);
  }
  for (const auto& [fn, row] : pools_b) {
    fns.insert(fn);
  }
  for (const int fn : fns) {
    const PoolRow ra = pools_a.count(fn) != 0 ? pools_a.at(fn) : PoolRow{};
    const PoolRow rb = pools_b.count(fn) != 0 ? pools_b.at(fn) : PoolRow{};
    const std::string prefix = FnLabel(fn) + ".";
    AddDelta(&d.pools, prefix + "run_us", ra.run_us, rb.run_us);
    AddDelta(&d.pools, prefix + "blocked_us", ra.blocked_us, rb.blocked_us);
    AddDelta(&d.pools, prefix + "serve_us", ra.serve_us, rb.serve_us);
    AddDelta(&d.pools, prefix + "faults", static_cast<double>(ra.faults),
             static_cast<double>(rb.faults));
    AddDelta(&d.pools, prefix + "filaments_run", static_cast<double>(ra.filaments_run),
             static_cast<double>(rb.filaments_run));
    AddDelta(&d.pools, prefix + "migrated_in", static_cast<double>(ra.migrated_in),
             static_cast<double>(rb.migrated_in));
  }

  const auto heat_a = PageHeatTotals(a);
  const auto heat_b = PageHeatTotals(b);
  std::set<uint64_t> pages;
  for (const auto& [page, faults] : heat_a) {
    pages.insert(page);
  }
  for (const auto& [page, faults] : heat_b) {
    pages.insert(page);
  }
  for (const uint64_t page : pages) {
    const auto fa = heat_a.count(page) != 0 ? heat_a.at(page) : 0;
    const auto fb = heat_b.count(page) != 0 ? heat_b.at(page) : 0;
    AddDelta(&d.pages, "page " + std::to_string(page), static_cast<double>(fa),
             static_cast<double>(fb));
  }

  RankDeltas(&d.counters);
  RankDeltas(&d.histograms);
  RankDeltas(&d.epochs);
  RankDeltas(&d.pools);
  RankDeltas(&d.pages);
  return d;
}

namespace {

std::string DeltaNumber(double v) {
  char buf[40];
  if (v == static_cast<double>(static_cast<long long>(v))) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f", v);
  }
  return buf;
}

std::string RelPct(const Delta& d) {
  // Appearing / vanishing quantities would print as absurd percentages of the +/-1 floor;
  // name the situation instead.
  if (d.a == 0.0 && d.b != 0.0) {
    return "(new)";
  }
  if (d.b == 0.0 && d.a != 0.0) {
    return "(gone)";
  }
  std::ostringstream os;
  os << std::showpos << std::fixed << std::setprecision(1) << 100.0 * d.rel() << "%";
  return os.str();
}

void PrintDeltaTable(const char* title, const std::vector<Delta>& deltas, size_t top_n,
                     std::ostream& os) {
  if (deltas.empty()) {
    return;
  }
  os << title << " (" << deltas.size() << " changed)\n";
  os << std::left << std::setw(34) << "  name" << std::right << std::setw(16) << "A"
     << std::setw(16) << "B" << std::setw(16) << "delta" << std::setw(10) << "rel" << "\n";
  for (size_t i = 0; i < deltas.size() && i < top_n; ++i) {
    const Delta& d = deltas[i];
    os << std::left << std::setw(34) << ("  " + d.name) << std::right << std::setw(16)
       << DeltaNumber(d.a) << std::setw(16) << DeltaNumber(d.b) << std::setw(16)
       << DeltaNumber(d.diff()) << std::setw(10) << RelPct(d) << "\n";
  }
  if (deltas.size() > top_n) {
    os << "  ... " << deltas.size() - top_n << " more (raise --top)\n";
  }
}

}  // namespace

void PrintRunDiff(const RunDiff& diff, const RunSummary& a, const RunSummary& b, size_t top_n,
                  std::ostream& os) {
  os << "Run diff: A=" << a.label << " (" << a.pcp << ") vs B=" << b.label << " (" << b.pcp
     << ")\n";
  const FingerprintCheck& fp = diff.fingerprints;
  if (!fp.compatible) {
    os << "fingerprints: INCOMPATIBLE — the runs execute different programs:\n";
    for (const std::string& m : fp.mismatches) {
      os << "  ! " << m << "\n";
    }
  } else if (fp.identical_config) {
    os << "fingerprints: identical config (digest " << a.fingerprint.config
       << ") — any delta below is noise or a code change";
    if (!a.fingerprint.git.empty() && a.fingerprint.git != b.fingerprint.git) {
      os << " (git " << a.fingerprint.git << " -> " << b.fingerprint.git << ")";
    }
    os << "\n";
  } else {
    os << "fingerprints: comparable A/B (app " << (a.fingerprint.app.empty() ? "?" : a.fingerprint.app)
       << ", " << a.nodes << " nodes); config differs:\n";
    for (const std::string& note : fp.config_notes) {
      os << "  ~ " << note << "\n";
    }
    if (fp.config_notes.empty()) {
      os << "  ~ (digest differs but no provenance key does — a knob outside provenance moved)\n";
    }
  }
  {
    std::ostringstream line;
    line << "makespan_us: " << DeltaNumber(diff.makespan.a) << " -> "
         << DeltaNumber(diff.makespan.b);
    if (diff.makespan.diff() != 0.0) {
      line << " (" << RelPct(diff.makespan) << ")";
    }
    os << line.str() << "\n\n";
  }
  PrintDeltaTable("Counter deltas", diff.counters, top_n, os);
  PrintDeltaTable("Histogram percentile deltas", diff.histograms, top_n, os);
  PrintDeltaTable("Per-pool deltas (by filament fn)", diff.pools, top_n, os);
  PrintDeltaTable("Per-epoch deltas (cluster totals)", diff.epochs, top_n, os);
  PrintDeltaTable("Page-heat deltas (demand faults)", diff.pages, top_n, os);
}

std::vector<Delta> DiffBlame(const CriticalPath& a, const CriticalPath& b) {
  std::map<std::string, Delta> joined;
  for (const BlameRow& row : BlamePath(a)) {
    Delta& d = joined[row.label];
    d.name = row.label;
    d.a = row.us;
  }
  for (const BlameRow& row : BlamePath(b)) {
    Delta& d = joined[row.label];
    d.name = row.label;
    d.b = row.us;
  }
  std::vector<Delta> out;
  for (auto& [label, d] : joined) {
    if (d.a != d.b) {
      out.push_back(std::move(d));
    }
  }
  RankDeltas(&out);
  return out;
}

void PrintBlameDiff(const std::vector<Delta>& deltas, size_t top_n, std::ostream& os) {
  if (deltas.empty()) {
    os << "Critical-path blame: identical between the two traces\n";
    return;
  }
  PrintDeltaTable("Critical-path blame deltas (us on the path)", deltas, top_n, os);
}

// ---- Gate explanation (dfil_diff --gate) ---------------------------------------------------

namespace {

// Where a failing counter lives: the per-node split, the hottest pages for DSM counters, and
// the epochs carrying the matching per-epoch column when the series records one.
void ExplainCounter(const RunSummary& run, const std::string& counter, size_t top_n,
                    std::ostream& os) {
  os << "  " << run.label << " " << counter << ":\n";
  os << "    per-node:";
  for (const RunSummary::Node& n : run.per_node) {
    std::ostringstream cell;
    if (counter == "makespan_us") {
      cell << FormatUs(n.finished_at_us);
    } else {
      auto it = n.counters.find(counter);
      cell << (it == n.counters.end() ? 0 : it->second);
    }
    os << " n" << n.node << "=" << cell.str();
  }
  os << "\n";
  if (counter.rfind("dsm.", 0) == 0) {
    const auto heat = PageHeatTotals(run);
    std::vector<std::pair<uint64_t, uint64_t>> ranked(heat.begin(), heat.end());
    std::sort(ranked.begin(), ranked.end(), [](const auto& x, const auto& y) {
      return x.second != y.second ? x.second > y.second : x.first < y.first;
    });
    if (!ranked.empty()) {
      os << "    hottest pages:";
      for (size_t i = 0; i < ranked.size() && i < top_n; ++i) {
        os << " p" << ranked[i].first << "=" << ranked[i].second;
      }
      os << "\n";
    }
  }
  // The per-epoch series names columns without the layer prefix ("faults", not
  // "dsm.read_faults"); try the counter's suffix, then the generic fault column.
  std::string col = counter.substr(counter.rfind('.') + 1);
  const auto epochs = EpochTotals(run);
  auto has_col = [&epochs](const std::string& name) {
    for (const auto& [epoch, cols] : epochs) {
      if (cols.count(name) != 0) {
        return true;
      }
    }
    return false;
  };
  if (!has_col(col) && counter.find("fault") != std::string::npos && has_col("faults")) {
    col = "faults";
  }
  if (has_col(col)) {
    std::vector<std::pair<uint64_t, double>> by_epoch;
    for (const auto& [epoch, cols] : epochs) {
      if (auto it = cols.find(col); it != cols.end() && it->second != 0.0) {
        by_epoch.emplace_back(epoch, it->second);
      }
    }
    std::sort(by_epoch.begin(), by_epoch.end(), [](const auto& x, const auto& y) {
      return x.second != y.second ? x.second > y.second : x.first < y.first;
    });
    if (!by_epoch.empty()) {
      os << "    top epochs by " << col << ":";
      for (size_t i = 0; i < by_epoch.size() && i < top_n; ++i) {
        os << " e" << by_epoch[i].first << "=" << DeltaNumber(by_epoch[i].second);
      }
      os << "\n";
    }
  }
}

}  // namespace

GateResult ExplainGate(const std::string& baseline_text, const std::vector<RunSummary>& runs,
                       size_t top_n, std::ostream& os, std::string* error) {
  GateResult gate = CheckGate(baseline_text, runs, error);
  if (!error->empty()) {
    return gate;
  }
  for (const std::string& line : gate.lines) {
    os << line << "\n";
  }
  if (gate.ok) {
    return gate;
  }
  // Re-walk the baseline for the failing (label, counter) pairs; CheckGate just validated it.
  json::ParseResult parsed = json::Parse(baseline_text);
  const json::Value& root = *parsed.value;
  const double tolerance = root.GetNumber("tolerance", 0.10);
  const json::Value* baseline_runs = root.Get("runs");
  os << "\nWhere the drift lives:\n";
  for (const auto& [label, expectations] : baseline_runs->object) {
    if (!expectations->is_object()) {
      continue;
    }
    const RunSummary* run = nullptr;
    for (const RunSummary& candidate : runs) {
      if (candidate.label == label) {
        run = &candidate;
        break;
      }
    }
    if (run == nullptr) {
      os << "  " << label << ": no metrics file with this label was supplied — check the CI\n"
         << "  step's file list against the baseline's run labels\n";
      continue;
    }
    for (const auto& [counter, expected_value] : expectations->object) {
      if (!expected_value->is_number()) {
        continue;
      }
      const double expected = expected_value->number;
      const auto actual = static_cast<double>(run->ClusterCounter(counter));
      if (std::abs(actual - expected) / std::max(expected, 1.0) > tolerance) {
        ExplainCounter(*run, counter, top_n, os);
      }
    }
  }
  return gate;
}

// ---- Result history (bench/HISTORY.jsonl) --------------------------------------------------

std::string HistoryLine(const RunSummary& run) {
  std::ostringstream os;
  os << "{\"kind\": \"metrics\", \"label\": \"" << run.label << "\", \"app\": \""
     << run.fingerprint.app << "\", \"config\": \"" << run.fingerprint.config << "\", \"git\": \""
     << run.fingerprint.git << "\", \"seed\": \"" << run.fingerprint.seed
     << "\", \"nodes\": " << run.nodes << ", \"pcp\": \"" << run.pcp
     << "\", \"completed\": " << (run.completed ? 1 : 0)
     << ", \"makespan_us\": " << DeltaNumber(run.makespan_us) << ", \"counters\": {";
  bool first = true;
  for (const char* counter : kFigure9Counters) {
    const uint64_t value = run.ClusterCounter(counter);
    if (value == 0) {
      continue;
    }
    os << (first ? "" : ", ") << "\"" << counter << "\": " << value;
    first = false;
  }
  os << "}}";
  return os.str();
}

bool BenchHistoryLine(const std::string& bench_json_text, std::string* line, std::string* error) {
  json::ParseResult parsed = json::Parse(bench_json_text);
  if (!parsed.ok()) {
    *error = "JSON parse error at byte " + std::to_string(parsed.error_offset) + ": " +
             parsed.error;
    return false;
  }
  const json::Value& root = *parsed.value;
  if (!root.is_object() || root.Get("bench") == nullptr || !root.Get("bench")->is_string()) {
    *error = "not a BENCH_*.json report (no \"bench\" string field)";
    return false;
  }
  std::ostringstream os;
  os << "{\"kind\": \"bench\", \"bench\": \"" << root.GetString("bench") << "\"";
  size_t rows = 0;
  for (const auto& [key, value] : root.object) {
    if (value->is_number()) {
      os << ", \"" << key << "\": " << DeltaNumber(value->number);
    } else if (key == "rows" && value->is_array()) {
      rows = value->array.size();
    }
  }
  os << ", \"rows\": " << rows << "}";
  *line = os.str();
  return true;
}

bool AppendHistory(const std::string& path, const std::vector<std::string>& lines,
                   size_t* appended, std::string* error) {
  *appended = 0;
  std::set<std::string> existing;
  {
    std::ifstream in(path);  // absent file = empty history, created below
    std::string line;
    while (std::getline(in, line)) {
      existing.insert(line);
    }
  }
  std::ofstream out(path, std::ios::app);
  if (!out) {
    *error = path + ": cannot open for append";
    return false;
  }
  for (const std::string& line : lines) {
    if (existing.insert(line).second) {
      out << line << "\n";
      ++*appended;
    }
  }
  if (!out) {
    *error = path + ": write failed";
    return false;
  }
  return true;
}

}  // namespace dfil::report
