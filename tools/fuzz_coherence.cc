// Standalone coherence fuzzer: sweeps (scenario, seed) cases through the fault-injection harness
// and the DSM coherence oracle (src/apps/fuzz_driver.h), or replays one failing case.
//
//   dfil_fuzz                          # default sweep: every scenario x seeds [0, 64)
//   dfil_fuzz --seeds 512              # wider sweep (the fuzz_nightly target)
//   dfil_fuzz --scenario reorder --seed 17          # replay one case
//   dfil_fuzz --scenario reorder --seed 17 --log    # ... with kDebug packet logging
//   dfil_fuzz --scenario reorder --seed 17 --trace out.json
//                                      # ... writing a Chrome trace of the faulted run
//                                      # (--trace with no path: dfil_fuzz_trace.json)
//   dfil_fuzz --list                   # print scenario names
//
// Exit status is the number of failing cases (capped at 125), so CI can gate on it directly.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "src/apps/fuzz_driver.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--seeds N] [--scenario NAME [--seed S] [--log] [--trace [PATH]]] "
               "[--list]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t num_seeds = 64;
  std::string scenario;
  uint64_t seed = 0;
  bool have_seed = false;
  bool log_packets = false;
  std::string trace_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::exit(Usage(argv[0]));
      }
      return argv[++i];
    };
    if (arg == "--list") {
      for (const std::string& s : dfil::apps::FuzzScenarios()) {
        std::printf("%s\n", s.c_str());
      }
      return 0;
    } else if (arg == "--seeds") {
      num_seeds = std::strtoull(next(), nullptr, 0);
    } else if (arg == "--scenario") {
      scenario = next();
    } else if (arg == "--seed") {
      seed = std::strtoull(next(), nullptr, 0);
      have_seed = true;
    } else if (arg == "--log") {
      log_packets = true;
    } else if (arg == "--trace") {
      // Optional path operand; bare --trace (or --trace followed by another flag) uses the
      // default file name.
      trace_path = (i + 1 < argc && argv[i + 1][0] != '-') ? argv[++i] : "dfil_fuzz_trace.json";
    } else {
      return Usage(argv[0]);
    }
  }

  if (!trace_path.empty() && !(have_seed && !scenario.empty())) {
    std::fprintf(stderr, "--trace needs a single replay case (--scenario NAME --seed S)\n");
    return Usage(argv[0]);
  }

  dfil::apps::FuzzOptions opts;
  opts.log_packets = log_packets;
  opts.capture_trace = !trace_path.empty();
  // Every failing case writes FLIGHT_<scenario>_seed<N>.json (render: dfil_report flight ...).
  opts.flight_dump_on_failure = true;

  int failures = 0;
  uint64_t cases = 0;
  auto run = [&](const std::string& sc, uint64_t sd) {
    const dfil::apps::FuzzResult r = dfil::apps::RunFuzzCase(sc, sd, opts);
    ++cases;
    if (!r.ok() || have_seed) {
      std::printf("%s\n", r.Summary().c_str());
      for (const std::string& v : r.violations) {
        std::printf("    violation: %s\n", v.c_str());
      }
    }
    if (have_seed) {
      std::printf(
          "    checks=%llu quiescent_points=%llu makespan_ms=%.3f\n"
          "    dropped=%llu duplicated=%llu delayed=%llu stall_deferrals=%llu retransmits=%llu\n"
          "    grant_reserves=%llu stale_invals=%llu stale_transfer_dups=%llu "
          "discarded_installs=%llu\n"
          "    read_faults=%llu write_faults=%llu served=%llu invals_sent=%llu forwards=%llu "
          "mirage_deferrals=%llu fetch_deferrals=%llu use_deferrals=%llu\n",
          static_cast<unsigned long long>(r.oracle_checks),
          static_cast<unsigned long long>(r.quiescent_points), dfil::ToMilliseconds(r.makespan),
          static_cast<unsigned long long>(r.net.messages_dropped),
          static_cast<unsigned long long>(r.net.messages_duplicated),
          static_cast<unsigned long long>(r.net.messages_delayed),
          static_cast<unsigned long long>(r.net.stall_deferrals),
          static_cast<unsigned long long>(r.net.retransmissions),
          static_cast<unsigned long long>(r.dsm.grant_reserves),
          static_cast<unsigned long long>(r.dsm.stale_invalidations_ignored),
          static_cast<unsigned long long>(r.dsm.stale_transfer_dups_ignored),
          static_cast<unsigned long long>(r.dsm.discarded_installs),
          static_cast<unsigned long long>(r.dsm.read_faults),
          static_cast<unsigned long long>(r.dsm.write_faults),
          static_cast<unsigned long long>(r.dsm.page_requests_served),
          static_cast<unsigned long long>(r.dsm.invalidations_sent),
          static_cast<unsigned long long>(r.dsm.page_forwards),
          static_cast<unsigned long long>(r.dsm.mirage_deferrals),
          static_cast<unsigned long long>(r.dsm.fetch_deferrals),
          static_cast<unsigned long long>(r.dsm.use_deferrals));
    }
    if (!trace_path.empty() && r.trace != nullptr) {
      std::ofstream out(trace_path);
      r.trace->WriteChromeTrace(out);
      std::printf("    wrote %s (%zu events) — load in Perfetto / chrome://tracing\n",
                  trace_path.c_str(), r.trace->event_count());
    }
    if (!r.ok()) {
      ++failures;
    }
  };

  if (!scenario.empty()) {
    if (have_seed) {
      run(scenario, seed);
    } else {
      for (uint64_t s = 0; s < num_seeds; ++s) {
        run(scenario, s);
      }
    }
  } else {
    for (const std::string& sc : dfil::apps::FuzzScenarios()) {
      for (uint64_t s = 0; s < num_seeds; ++s) {
        run(sc, s);
      }
    }
  }

  std::printf("%llu case(s), %d failure(s)\n", static_cast<unsigned long long>(cases), failures);
  return failures > 125 ? 125 : failures;
}
