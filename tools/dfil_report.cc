// dfil_report: analysis CLI over the runtime's observability artifacts.
//
//   dfil_report report METRICS_*.json        full report: Figure 10 per run, Figure 9 across
//                                            runs, fault latency, hottest pages
//   dfil_report figure10 METRICS.json...     per-node time breakdown only
//   dfil_report figure9 METRICS.json...      message counts per protocol only
//   dfil_report hot [--top N] METRICS.json   hottest pages
//   dfil_report check-trace TRACE.json...    trace validity (exit 1 when malformed)
//   dfil_report paths [--top N] TRACE.json   longest fault critical paths
//   dfil_report gate BASELINE.json METRICS_*.json
//   dfil_report --gate BASELINE.json METRICS_*.json
//                                            counter-regression gate (exit 1 on drift)
//
// Metrics files come from bench runs (dfil-metrics-v1, see src/core/metrics_io.h); trace files
// are Chrome trace-event JSON (load in Perfetto / chrome://tracing).
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "tools/report_lib.h"

namespace {

using dfil::report::CheckChromeTrace;
using dfil::report::CheckGate;
using dfil::report::ExtractFlows;
using dfil::report::GateResult;
using dfil::report::LoadRun;
using dfil::report::RunSummary;
using dfil::report::TraceCheck;

int Usage() {
  std::fprintf(stderr,
               "usage: dfil_report <command> [--top N] <files...>\n"
               "  report      METRICS_*.json   Figure 10 + Figure 9 + latency + hottest pages\n"
               "  figure10    METRICS_*.json   per-node time breakdown\n"
               "  figure9     METRICS_*.json   message counts per protocol\n"
               "  hot         METRICS_*.json   hottest pages\n"
               "  check-trace TRACE.json...    trace validity check\n"
               "  paths       TRACE.json...    longest fault critical paths\n"
               "  gate BASELINE.json METRICS_*.json   counter-regression gate\n");
  return 2;
}

bool LoadRuns(const std::vector<std::string>& paths, std::vector<RunSummary>* runs) {
  for (const std::string& path : paths) {
    RunSummary run;
    std::string error;
    if (!LoadRun(path, &run, &error)) {
      std::fprintf(stderr, "dfil_report: %s\n", error.c_str());
      return false;
    }
    runs->push_back(std::move(run));
  }
  return true;
}

int CmdMetrics(const std::string& cmd, const std::vector<std::string>& paths, size_t top_n) {
  std::vector<RunSummary> runs;
  if (paths.empty() || !LoadRuns(paths, &runs)) {
    return paths.empty() ? Usage() : 1;
  }
  const bool all = cmd == "report";
  for (const RunSummary& run : runs) {
    if (all || cmd == "figure10") {
      PrintFigure10(run, std::cout);
      std::cout << "\n";
    }
    if (all) {
      PrintFaultLatency(run, std::cout);
    }
    if (all || cmd == "hot") {
      PrintHotPages(run, top_n, std::cout);
      std::cout << "\n";
    }
  }
  if (all || cmd == "figure9") {
    PrintFigure9(runs, std::cout);
  }
  return 0;
}

int CmdTrace(const std::string& cmd, const std::vector<std::string>& paths, size_t top_n) {
  if (paths.empty()) {
    return Usage();
  }
  bool ok = true;
  for (const std::string& path : paths) {
    std::string text;
    std::string error;
    if (!dfil::report::ReadFile(path, &text, &error)) {
      std::fprintf(stderr, "dfil_report: %s\n", error.c_str());
      return 1;
    }
    if (cmd == "check-trace") {
      TraceCheck check = CheckChromeTrace(text);
      std::printf("%s: %zu events, %zu spans, %zu/%zu flows complete — %s\n", path.c_str(),
                  check.events, check.spans, check.complete_flows, check.flow_starts,
                  check.ok ? "OK" : "MALFORMED");
      for (const std::string& err : check.errors) {
        std::printf("  %s\n", err.c_str());
      }
      ok = ok && check.ok;
    } else {
      std::cout << path << ":\n";
      PrintCriticalPaths(ExtractFlows(text), top_n, std::cout);
    }
  }
  return ok ? 0 : 1;
}

int CmdGate(const std::vector<std::string>& paths) {
  if (paths.size() < 2) {
    return Usage();
  }
  std::string baseline_text;
  std::string error;
  if (!dfil::report::ReadFile(paths[0], &baseline_text, &error)) {
    std::fprintf(stderr, "dfil_report: %s\n", error.c_str());
    return 1;
  }
  std::vector<RunSummary> runs;
  if (!LoadRuns({paths.begin() + 1, paths.end()}, &runs)) {
    return 1;
  }
  GateResult gate = CheckGate(baseline_text, runs, &error);
  if (!error.empty()) {
    std::fprintf(stderr, "dfil_report: %s\n", error.c_str());
  }
  for (const std::string& line : gate.lines) {
    std::printf("%s\n", line.c_str());
  }
  std::printf("gate: %s\n", gate.ok ? "PASS" : "FAIL");
  return gate.ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return Usage();
  }
  std::string cmd = argv[1];
  if (cmd == "--gate") {
    cmd = "gate";
  }
  size_t top_n = 10;
  std::vector<std::string> paths;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--top") == 0 && i + 1 < argc) {
      top_n = static_cast<size_t>(std::stoul(argv[++i]));
    } else {
      paths.emplace_back(argv[i]);
    }
  }
  if (cmd == "report" || cmd == "figure10" || cmd == "figure9" || cmd == "hot") {
    return CmdMetrics(cmd, paths, top_n);
  }
  if (cmd == "check-trace" || cmd == "paths") {
    return CmdTrace(cmd, paths, top_n);
  }
  if (cmd == "gate") {
    return CmdGate(paths);
  }
  return Usage();
}
