// dfil_report: analysis CLI over the runtime's observability artifacts.
//
// Inputs come in three shapes: METRICS_*.json (dfil-metrics-v1/-v2, src/core/metrics_io.h),
// Chrome trace-event JSON (TRACE_*.json, load in Perfetto / chrome://tracing), and
// FLIGHT_*.json flight-recorder dumps (dfil-flight-v1, written on fuzz/oracle failures).
// Usage() below is the authoritative subcommand list; flags may appear anywhere on the command
// line (they are parsed order-insensitively).
//
// Exit codes (the shared contract in tools/report_lib.h, common to dfil_report and dfil_diff):
//   0  success
//   1  a gate or check failed (counter drift, malformed trace, broken critical path)
//   2  usage error (unknown command, missing operands, bad flag)
//   3  an input could not be read or parsed
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "tools/report_lib.h"

namespace {

using dfil::report::BuildCriticalPath;
using dfil::report::CheckChromeTrace;
using dfil::report::CheckCritpathGate;
using dfil::report::CheckGate;
using dfil::report::CliOptions;
using dfil::report::CriticalPath;
using dfil::report::ExtractFlows;
using dfil::report::FlightDump;
using dfil::report::GateResult;
using dfil::report::kExitCheckFailed;
using dfil::report::kExitIo;
using dfil::report::kExitOk;
using dfil::report::kExitUsage;
using dfil::report::LoadRun;
using dfil::report::ParseCliOptions;
using dfil::report::ParseFlight;
using dfil::report::RunSummary;
using dfil::report::TraceCheck;

int Usage() {
  std::fprintf(
      stderr,
      "usage: dfil_report <command> [flags] <files...>\n"
      "\n"
      "metrics commands (METRICS_*.json, dfil-metrics-v1/-v2):\n"
      "  report      METRICS_*.json        Figure 10 + fault latency + hottest pages per run,\n"
      "                                    Figure 9 across runs\n"
      "  figure10    METRICS_*.json        per-node time breakdown only\n"
      "  figure9     METRICS_*.json        message counts per protocol only\n"
      "  hot         METRICS_*.json        hottest pages only\n"
      "\n"
      "trace commands (Chrome trace-event JSON):\n"
      "  check-trace TRACE.json...         structural validity (span nesting, flow arcs)\n"
      "  paths       TRACE.json...         longest single-fault flow arcs\n"
      "  critpath    TRACE.json...         end-to-end critical path: per-hop compute /\n"
      "                                    page-fault / barrier blame and the what-if bound\n"
      "  blame       TRACE.json...         critical-path residency ranked by cause\n"
      "                                    (page / barrier epoch / node compute)\n"
      "\n"
      "failure forensics (FLIGHT_*.json, dfil-flight-v1):\n"
      "  flight      FLIGHT.json...        render a flight-recorder dump: oracle violations,\n"
      "                                    last wait events per node, recent fault injections\n"
      "\n"
      "CI gates:\n"
      "  gate     BASELINE.json METRICS_*.json   counter-regression gate (dfil-gate-v1)\n"
      "  critpath --check BASELINE.json TRACE.json\n"
      "                                    gate the path's wait-category shares\n"
      "                                    (dfil-critpath-gate-v1)\n"
      "\n"
      "flags (position-independent):\n"
      "  --top N          rows/hops to print (default 10)\n"
      "  --check FILE     critpath only: gate against a dfil-critpath-gate-v1 baseline\n"
      "\n"
      "exit codes (shared contract with dfil_diff — scripts may rely on it):\n"
      "  0 ok, 1 gate/check failure, 2 usage error, 3 unreadable/unparseable input\n"
      "\n"
      "see also: dfil_diff — A/B attribution between two runs, gate-failure explanation\n"
      "(--gate), and result history (--history); same exit codes\n");
  return kExitUsage;
}

// Loads every metrics file, or reports the first unreadable one. Returns kExitOk or kExitIo.
int LoadRuns(const std::vector<std::string>& paths, std::vector<RunSummary>* runs) {
  for (const std::string& path : paths) {
    RunSummary run;
    std::string error;
    if (!LoadRun(path, &run, &error)) {
      std::fprintf(stderr, "dfil_report: %s\n", error.c_str());
      return kExitIo;
    }
    runs->push_back(std::move(run));
  }
  return kExitOk;
}

int CmdMetrics(const std::string& cmd, const std::vector<std::string>& paths, size_t top_n) {
  if (paths.empty()) {
    return Usage();
  }
  std::vector<RunSummary> runs;
  if (const int rc = LoadRuns(paths, &runs); rc != kExitOk) {
    return rc;
  }
  const bool all = cmd == "report";
  for (const RunSummary& run : runs) {
    if (all || cmd == "figure10") {
      PrintFigure10(run, std::cout);
      std::cout << "\n";
    }
    if (all) {
      PrintFaultLatency(run, std::cout);
    }
    if (all || cmd == "hot") {
      PrintHotPages(run, top_n, std::cout);
      std::cout << "\n";
    }
  }
  if (all || cmd == "figure9") {
    PrintFigure9(runs, std::cout);
  }
  return kExitOk;
}

int CmdTrace(const std::string& cmd, const std::vector<std::string>& paths, size_t top_n) {
  if (paths.empty()) {
    return Usage();
  }
  bool ok = true;
  for (const std::string& path : paths) {
    std::string text;
    std::string error;
    if (!dfil::report::ReadFile(path, &text, &error)) {
      std::fprintf(stderr, "dfil_report: %s\n", error.c_str());
      return kExitIo;
    }
    if (cmd == "check-trace") {
      TraceCheck check = CheckChromeTrace(text);
      std::printf("%s: %zu events, %zu spans, %zu/%zu flows complete — %s\n", path.c_str(),
                  check.events, check.spans, check.complete_flows, check.flow_starts,
                  check.ok ? "OK" : "MALFORMED");
      for (const std::string& err : check.errors) {
        std::printf("  %s\n", err.c_str());
      }
      ok = ok && check.ok;
    } else {
      std::cout << path << ":\n";
      PrintCriticalPaths(ExtractFlows(text), top_n, std::cout);
    }
  }
  return ok ? kExitOk : kExitCheckFailed;
}

int CmdCritpath(const std::string& cmd, const std::vector<std::string>& paths, size_t top_n,
                const std::string& check_baseline) {
  if (paths.empty()) {
    return Usage();
  }
  std::string baseline_text;
  std::string error;
  if (!check_baseline.empty() &&
      !dfil::report::ReadFile(check_baseline, &baseline_text, &error)) {
    std::fprintf(stderr, "dfil_report: %s\n", error.c_str());
    return kExitIo;
  }
  bool ok = true;
  for (const std::string& path : paths) {
    std::string text;
    if (!dfil::report::ReadFile(path, &text, &error)) {
      std::fprintf(stderr, "dfil_report: %s\n", error.c_str());
      return kExitIo;
    }
    const CriticalPath critpath = BuildCriticalPath(text);
    if (!critpath.ok && critpath.error.rfind("JSON parse error", 0) == 0) {
      std::fprintf(stderr, "dfil_report: %s: %s\n", path.c_str(), critpath.error.c_str());
      return kExitIo;
    }
    std::cout << path << ":\n";
    if (cmd == "blame") {
      PrintBlame(critpath, top_n, std::cout);
    } else {
      PrintCritPath(critpath, top_n, std::cout);
    }
    ok = ok && critpath.ok;
    if (!check_baseline.empty()) {
      error.clear();
      GateResult gate = CheckCritpathGate(baseline_text, critpath, &error);
      if (!error.empty()) {
        std::fprintf(stderr, "dfil_report: %s\n", error.c_str());
        return kExitIo;
      }
      for (const std::string& line : gate.lines) {
        std::printf("%s\n", line.c_str());
      }
      std::printf("critpath gate: %s\n", gate.ok ? "PASS" : "FAIL");
      ok = ok && gate.ok;
    }
    std::cout << "\n";
  }
  return ok ? kExitOk : kExitCheckFailed;
}

int CmdFlight(const std::vector<std::string>& paths) {
  if (paths.empty()) {
    return Usage();
  }
  for (const std::string& path : paths) {
    std::string text;
    std::string error;
    if (!dfil::report::ReadFile(path, &text, &error)) {
      std::fprintf(stderr, "dfil_report: %s\n", error.c_str());
      return kExitIo;
    }
    FlightDump dump;
    if (!ParseFlight(text, &dump, &error)) {
      std::fprintf(stderr, "dfil_report: %s: %s\n", path.c_str(), error.c_str());
      return kExitIo;
    }
    std::cout << path << ":\n";
    PrintFlight(dump, std::cout);
    std::cout << "\n";
  }
  return kExitOk;
}

int CmdGate(const std::vector<std::string>& paths) {
  if (paths.size() < 2) {
    return Usage();
  }
  std::string baseline_text;
  std::string error;
  if (!dfil::report::ReadFile(paths[0], &baseline_text, &error)) {
    std::fprintf(stderr, "dfil_report: %s\n", error.c_str());
    return kExitIo;
  }
  std::vector<RunSummary> runs;
  if (const int rc = LoadRuns({paths.begin() + 1, paths.end()}, &runs); rc != kExitOk) {
    return rc;
  }
  GateResult gate = CheckGate(baseline_text, runs, &error);
  if (!error.empty()) {
    std::fprintf(stderr, "dfil_report: %s\n", error.c_str());
    return kExitIo;
  }
  for (const std::string& line : gate.lines) {
    std::printf("%s\n", line.c_str());
  }
  std::printf("gate: %s\n", gate.ok ? "PASS" : "FAIL");
  return gate.ok ? kExitOk : kExitCheckFailed;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return Usage();
  }
  std::string cmd = argv[1];
  if (cmd == "--gate") {
    cmd = "gate";
  }
  if (cmd == "--help" || cmd == "-h" || cmd == "help") {
    Usage();
    return kExitOk;
  }
  // Flags may appear anywhere after the command; everything else is an input file, in order.
  // The flag vocabulary is the shared report::ParseCliOptions one, restricted to the flags this
  // tool documents — dfil_diff's --gate/--history/--force are rejected with a pointer there.
  const CliOptions opt = ParseCliOptions(argc, argv, 2);
  if (!opt.error.empty()) {
    std::fprintf(stderr, "dfil_report: unrecognized flag '%s'\n", opt.error.c_str());
    return Usage();
  }
  if (!opt.gate_baseline.empty() || !opt.history_path.empty() || opt.force) {
    std::fprintf(stderr,
                 "dfil_report: --gate/--history/--force belong to dfil_diff (the gate command "
                 "here takes the baseline as its first operand)\n");
    return Usage();
  }
  const size_t top_n = opt.top_n;
  const std::string& check_baseline = opt.check_baseline;
  const std::vector<std::string>& paths = opt.paths;
  if (cmd == "report" || cmd == "figure10" || cmd == "figure9" || cmd == "hot") {
    return CmdMetrics(cmd, paths, top_n);
  }
  if (cmd == "check-trace" || cmd == "paths") {
    return CmdTrace(cmd, paths, top_n);
  }
  if (cmd == "critpath" || cmd == "blame") {
    return CmdCritpath(cmd, paths, top_n, check_baseline);
  }
  if (cmd == "flight") {
    return CmdFlight(paths);
  }
  if (cmd == "gate") {
    return CmdGate(paths);
  }
  return Usage();
}
