// Analysis library behind tools/dfil_report and the observability tests.
//
// Consumes the two JSON artifacts the runtime emits — METRICS_<label>.json (dfil-metrics-v1,
// src/core/metrics_io.h) and Chrome trace-event files (TraceRecorder::WriteChromeTrace) — and
// renders the paper's analysis tables:
//   * Figure 10: per-node stacked time breakdown (work / filament_exec / data_transfer /
//     sync_overhead / sync_delay / idle).
//   * Figure 9: message counts per page-consistency protocol, side by side across runs, with
//     p50/p99 fault latency from the merged per-node histograms.
//   * Hottest pages (per-page demand-fault heat) and the longest fault critical paths (complete
//     s->t->f flow arcs reconstructed from the trace).
// It also hosts the trace-validity checker and the CI counter-regression gate.
#ifndef DFIL_TOOLS_REPORT_LIB_H_
#define DFIL_TOOLS_REPORT_LIB_H_

#include <array>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace dfil::report {

// ---- Shared CLI contract -------------------------------------------------------------------

// Exit-code contract shared by every analysis CLI (dfil_report, dfil_diff). Scripts and CI steps
// key off these values, so they are part of the tools' public interface:
//   0  success
//   1  a gate or check failed (counter drift, malformed trace, incompatible fingerprints)
//   2  usage error (unknown command, missing operands, bad flag)
//   3  an input could not be read or parsed
constexpr int kExitOk = 0;
constexpr int kExitCheckFailed = 1;
constexpr int kExitUsage = 2;
constexpr int kExitIo = 3;

// The position-independent flag vocabulary shared by dfil_report and dfil_diff. Each tool uses
// the subset it documents; unknown "--flags" set `error` and the caller prints usage (exit 2).
struct CliOptions {
  size_t top_n = 10;           // --top N / --top=N
  std::string check_baseline;  // --check FILE   (dfil_report critpath)
  std::string gate_baseline;   // --gate FILE    (dfil_diff gate-explain mode)
  std::string history_path;    // --history FILE (dfil_diff history-append mode)
  bool force = false;          // --force        (dfil_diff: diff despite incompatible runs)
  std::vector<std::string> paths;  // bare operands, in order
  std::string error;           // non-empty = malformed/unknown flag (the offending token)
};
CliOptions ParseCliOptions(int argc, char** argv, int first);

// One histogram as exported by MetricsRegistry::WriteJson, buckets included so histograms from
// different nodes can be merged before computing cluster-wide percentiles.
struct HistSummary {
  uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  // Power-of-two buckets as [low, high, count] triples (empty buckets omitted by the writer).
  std::vector<std::array<double, 3>> buckets;

  void Merge(const HistSummary& other);
  // Interpolated percentile over the merged buckets, clamped to [min, max]; 0 when empty.
  double Percentile(double p) const;
};

// The run fingerprint stamped into every dfil-metrics-v2 document (src/core/metrics_io.h):
// "config" is ClusterConfig::DigestHex() over every schedule-affecting knob, "git" the build's
// commit, "seed" the cluster RNG seed, "app" the program identity. Empty fields = a v1 or
// pre-fingerprint file.
struct Fingerprint {
  std::string config;
  std::string git;
  std::string seed;
  std::string app;

  bool empty() const { return config.empty() && git.empty() && seed.empty() && app.empty(); }
};

// One row of the per-pool profiling section ("pools" per node, "pools_by_fn" cluster-wide).
// pool/fn -1 is the residual: run time outside any pool plus all handler serve time.
struct PoolRow {
  int pool = -1;
  int fn = -1;
  double run_us = 0.0;
  double blocked_us = 0.0;
  double serve_us = 0.0;
  uint64_t faults = 0;
  uint64_t filaments_run = 0;
  uint64_t migrated_in = 0;
};

// A parsed dfil-metrics-v1 or -v2 document. v2-only fields (provenance, the wait-state ledgers,
// final_clock_us, epochs, fingerprint, pools) stay zero/empty when a v1 file is loaded.
struct RunSummary {
  std::string path;   // file it was loaded from (diagnostics)
  std::string label;
  std::string pcp;
  int schema_version = 1;
  int nodes = 0;
  bool completed = false;
  double makespan_us = 0.0;
  Fingerprint fingerprint;
  std::map<std::string, std::string> provenance;
  std::map<std::string, uint64_t> cluster_counters;
  std::vector<PoolRow> pools_by_fn;  // cluster-wide per-filament-fn rollup (keyed on .fn)

  struct Node {
    int node = 0;
    double finished_at_us = 0.0;
    double final_clock_us = 0.0;                      // v2: clock at end of run (incl. tail)
    std::map<std::string, double> time_us;            // Figure 10 categories
    double run_us = 0.0;                              // v2 wait-state ledgers:
    double serve_us = 0.0;                            //   run + serve + sum(wait_us) ==
    std::map<std::string, double> wait_us;            //   final_clock_us
    std::map<std::string, uint64_t> wait_events;      // blocked-interval counts by kind
    std::vector<PoolRow> pools;                       // per-pool ledgers (keyed on .pool)
    std::vector<std::map<std::string, double>> epochs;  // per-sync-point time series rows
    std::map<std::string, uint64_t> counters;
    std::map<std::string, HistSummary> histograms;
    std::vector<std::pair<uint64_t, uint64_t>> page_heat;  // (page, demand faults)
  };
  std::vector<Node> per_node;

  uint64_t ClusterCounter(const std::string& name) const;
  // Per-node histograms of `name` merged into one cluster-wide histogram.
  HistSummary MergedHistogram(const std::string& name) const;
};

// Parse a metrics document from text / load it from a file. On failure returns false and sets
// *error; *out is left in an unspecified state.
bool ParseRun(const std::string& text, RunSummary* out, std::string* error);
bool LoadRun(const std::string& path, RunSummary* out, std::string* error);

// Reads a whole file; returns false and sets *error when unreadable.
bool ReadFile(const std::string& path, std::string* out, std::string* error);

// Paper tables.
void PrintFigure10(const RunSummary& run, std::ostream& os);
void PrintFigure9(const std::vector<RunSummary>& runs, std::ostream& os);
void PrintFaultLatency(const RunSummary& run, std::ostream& os);
void PrintHotPages(const RunSummary& run, size_t top_n, std::ostream& os);

// ---- Trace analysis ------------------------------------------------------------------------

// Structural validity of a Chrome trace-event JSON document (bare array or {"traceEvents": [...]}):
// every track's B/E events balance with non-decreasing timestamps, and every flow-start id is
// eventually finished. Errors are capped at a few dozen lines; `ok` reflects the full scan.
struct TraceCheck {
  bool ok = false;
  std::vector<std::string> errors;
  size_t events = 0;
  size_t spans = 0;           // completed B/E pairs
  size_t flow_starts = 0;
  size_t flow_ends = 0;
  size_t complete_flows = 0;  // flow ids with both an 's' and an 'f'
};
TraceCheck CheckChromeTrace(const std::string& text);

// One reconstructed cross-node flow arc (fault begin on the faulting node through serve/chase
// steps to the install): the trace-level view of a single remote page fault.
struct FlowArc {
  uint64_t id = 0;
  std::string name;      // "p<page>" / "bulk p<first>"
  double start_ts = 0.0;  // microseconds
  double end_ts = 0.0;
  int start_node = -1;
  int end_node = -1;
  size_t steps = 0;  // 't' events in between (serves, chases, invalidation hops)

  double duration_us() const { return end_ts - start_ts; }
};

// All complete arcs (those with both 's' and 'f'), unsorted.
std::vector<FlowArc> ExtractFlows(const std::string& text);
// The top_n longest arcs — the fault critical paths that gate the run.
void PrintCriticalPaths(std::vector<FlowArc> arcs, size_t top_n, std::ostream& os);

// ---- End-to-end critical path --------------------------------------------------------------

// One hop of the run's critical path: an interval on one node's timeline, classified as compute,
// a page-fault stall (detail: the page), or a barrier gap (detail: the epoch; the interval runs
// from the last arriver's entry to the release on the node the walk is on). A page-fault hop is
// fault *residency* — time during which at least one demand fault was outstanding on the node.
// Other threads of the node may execute under it (communication/computation overlap), so the
// what-if bound below is optimistic by construction.
struct PathSegment {
  enum class Kind { kCompute, kPageFault, kBarrier };
  Kind kind = Kind::kCompute;
  int node = -1;
  double start_us = 0.0;
  double end_us = 0.0;
  uint64_t page = 0;   // kPageFault only
  uint64_t epoch = 0;  // kBarrier only

  double duration_us() const { return end_us - start_us; }
};
const char* PathSegmentKindName(PathSegment::Kind kind);

// The longest dependency chain through the run, reconstructed from a Chrome trace. The builder
// anchors at the latest per-node "done" instant, walks backward through the epoch-stamped
// "reduce e<K>" spans — each barrier hop jumps to that epoch's last arriver, the node that held
// the release back — and decomposes every inter-barrier gap into "fault p<P>" stalls vs compute.
// Segments are contiguous by construction: they tile [0, completion_us] exactly, so
// sum(duration) == completion_us (the run's virtual completion time). Violations of that
// invariant (a malformed trace) surface as ok = false.
struct CriticalPath {
  bool ok = false;
  std::string error;                  // set when !ok
  int critical_node = -1;             // node whose "done" instant is latest
  double completion_us = 0.0;         // max per-node done timestamp
  double compute_us = 0.0;            // segment-duration sums by kind
  double fault_us = 0.0;
  double barrier_us = 0.0;
  uint64_t rebalance_events = 0;      // "rebalance ..." instants seen anywhere on the trace
  std::vector<PathSegment> segments;  // time order, from ts 0 to completion_us
};
CriticalPath BuildCriticalPath(const std::string& trace_text);

// Blame view: path segments aggregated by cause — "page <p>", "barrier e<k>", "compute n<i>" —
// ranked by total critical-path residency, largest first.
struct BlameRow {
  std::string label;
  double us = 0.0;
  uint64_t hops = 0;  // path segments aggregated into this row
};
std::vector<BlameRow> BlamePath(const CriticalPath& path);

// What-if lower bound: completion time with every page serve made free (all fault segments
// excised from the path). Barrier hops are kept — they bound even a perfect-DSM run.
double WhatIfZeroCostPages(const CriticalPath& path);

void PrintCritPath(const CriticalPath& path, size_t top_n, std::ostream& os);
void PrintBlame(const CriticalPath& path, size_t top_n, std::ostream& os);

// ---- Flight-recorder dumps -----------------------------------------------------------------

// A parsed dfil-flight-v1 document (src/core/metrics_io.h WriteFlightJson): the last wait events
// per node plus recent fault-injection decisions, captured at the first oracle violation or at
// end of run.
struct FlightDump {
  std::string label;
  bool at_violation = false;
  std::vector<std::string> violations;

  struct Event {
    std::string kind;      // WaitKindName: "page_fault", "barrier", ...
    uint64_t detail = 0;   // page / epoch / service, kind-dependent
    double start_us = 0.0;
    double end_us = 0.0;
  };
  struct NodeLog {
    int node = 0;
    std::vector<Event> events;  // oldest first
  };
  std::vector<NodeLog> nodes;

  struct Injection {
    std::string what;   // "drop", "dup", "delay", "stall"
    std::string klass;  // "request", "reply", ...
    uint32_t type = 0;
    int src = 0;
    int dst = 0;
    double at_us = 0.0;
  };
  std::vector<Injection> injections;  // oldest first
};
bool ParseFlight(const std::string& text, FlightDump* out, std::string* error);
// Renders the dump as an interleaved, time-ordered last-moments timeline.
void PrintFlight(const FlightDump& dump, std::ostream& os);

// ---- CI regression gate --------------------------------------------------------------------

// Baseline format (dfil-gate-v1):
//   {"schema": "dfil-gate-v1", "tolerance": 0.10,
//    "runs": {"<label>": {"<counter>": <expected>, ...}, ...}}
// Every baseline run must be matched by a loaded metrics file of the same label, and every listed
// cluster counter must be within `tolerance` relative drift of its expectation.
struct GateResult {
  bool ok = true;
  std::vector<std::string> lines;  // one human-readable verdict per comparison
};
GateResult CheckGate(const std::string& baseline_text, const std::vector<RunSummary>& runs,
                     std::string* error);

// critpath CI gate. Baseline format (dfil-critpath-gate-v1):
//   {"schema": "dfil-critpath-gate-v1", "tolerance_pp": 10.0,
//    "shares_pct": {"compute": 60.0, "page_fault": 25.0, "barrier": 15.0}}
// Passes when the path is structurally valid and each kind's share of the path (in percentage
// points of completion time) is within tolerance_pp of its expectation.
GateResult CheckCritpathGate(const std::string& baseline_text, const CriticalPath& path,
                             std::string* error);

// ---- Run diffing (tools/dfil_diff) ---------------------------------------------------------

// Fingerprint comparability verdict for an A/B pair. Hard mismatches (different app, node count,
// or page size) make the runs structurally incomparable — diffing them answers no question;
// dfil_diff refuses unless --force. Config-digest differences with matching shape are the normal
// deliberate-A/B case; `config_notes` lists exactly which provenance knobs moved.
struct FingerprintCheck {
  bool compatible = true;        // no hard mismatch
  bool identical_config = false; // equal non-empty config digests: same schedule-affecting config
  std::vector<std::string> mismatches;    // hard mismatches, human-readable
  std::vector<std::string> config_notes;  // provenance keys that differ ("pcp: wi -> diff")
};
FingerprintCheck CompareFingerprints(const RunSummary& a, const RunSummary& b);

// One compared quantity: counter, merged-histogram percentile, per-epoch series cell, or
// per-pool ledger field. Named "<what>", values from run A and run B.
struct Delta {
  std::string name;
  double a = 0.0;
  double b = 0.0;

  double diff() const { return b - a; }
  // Relative change with a +/-1 floor on the base, mirroring the gate's drift metric.
  double rel() const;
};

// The full A-vs-B attribution report. Every section is ranked by |rel| then |diff|, largest
// movement first; unchanged quantities are omitted.
struct RunDiff {
  FingerprintCheck fingerprints;
  Delta makespan;                      // "makespan_us"
  std::vector<Delta> counters;         // cluster counters
  std::vector<Delta> histograms;       // "<hist>.p50" / "<hist>.p99" over merged histograms
  std::vector<Delta> epochs;           // "e<K>.<col>" over per-epoch rows summed across nodes
  std::vector<Delta> pools;            // "fn<F>.<field>" over the cluster pools_by_fn rollup
  std::vector<Delta> pages;            // "page <P>" demand-fault heat summed across nodes
};
RunDiff DiffRuns(const RunSummary& a, const RunSummary& b);
void PrintRunDiff(const RunDiff& diff, const RunSummary& a, const RunSummary& b, size_t top_n,
                  std::ostream& os);

// Critical-path blame tables of two traces, joined by cause label and ranked like RunDiff
// sections. Causes present in only one run appear with 0 on the other side.
std::vector<Delta> DiffBlame(const CriticalPath& a, const CriticalPath& b);
void PrintBlameDiff(const std::vector<Delta>& deltas, size_t top_n, std::ostream& os);

// Gate-explain (dfil_diff --gate): runs CheckGate, and for every failing counter prints where
// the drift lives in the supplied runs — per-node breakdown, the hottest pages for dsm.*
// counters, and the epochs contributing most when the per-epoch series carries the counter.
// Returns the underlying GateResult; *error as in CheckGate.
GateResult ExplainGate(const std::string& baseline_text, const std::vector<RunSummary>& runs,
                       size_t top_n, std::ostream& os, std::string* error);

// ---- Result history (bench/HISTORY.jsonl) --------------------------------------------------

// One-line JSON summaries of result artifacts, appended by `dfil_diff --history`. METRICS files
// yield {"kind": "metrics", "label", "app", "config", "git", "seed", "nodes", "pcp",
// "makespan_us", "counters": {<the Figure 9 counters that are non-zero>}}; BENCH files yield
// {"kind": "bench", "bench", <the report's scalar fields>}. Lines carry no wall-clock timestamp
// on purpose — identical results produce identical lines, so re-running --history is idempotent
// (exact-duplicate lines are skipped on append).
std::string HistoryLine(const RunSummary& run);
bool BenchHistoryLine(const std::string& bench_json_text, std::string* line, std::string* error);
// Appends each line not already present verbatim in `path` (file created when absent);
// *appended = how many were new. False + *error on I/O failure.
bool AppendHistory(const std::string& path, const std::vector<std::string>& lines,
                   size_t* appended, std::string* error);

}  // namespace dfil::report

#endif  // DFIL_TOOLS_REPORT_LIB_H_
