// Analysis library behind tools/dfil_report and the observability tests.
//
// Consumes the two JSON artifacts the runtime emits — METRICS_<label>.json (dfil-metrics-v1,
// src/core/metrics_io.h) and Chrome trace-event files (TraceRecorder::WriteChromeTrace) — and
// renders the paper's analysis tables:
//   * Figure 10: per-node stacked time breakdown (work / filament_exec / data_transfer /
//     sync_overhead / sync_delay / idle).
//   * Figure 9: message counts per page-consistency protocol, side by side across runs, with
//     p50/p99 fault latency from the merged per-node histograms.
//   * Hottest pages (per-page demand-fault heat) and the longest fault critical paths (complete
//     s->t->f flow arcs reconstructed from the trace).
// It also hosts the trace-validity checker and the CI counter-regression gate.
#ifndef DFIL_TOOLS_REPORT_LIB_H_
#define DFIL_TOOLS_REPORT_LIB_H_

#include <array>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace dfil::report {

// One histogram as exported by MetricsRegistry::WriteJson, buckets included so histograms from
// different nodes can be merged before computing cluster-wide percentiles.
struct HistSummary {
  uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  // Power-of-two buckets as [low, high, count] triples (empty buckets omitted by the writer).
  std::vector<std::array<double, 3>> buckets;

  void Merge(const HistSummary& other);
  // Interpolated percentile over the merged buckets, clamped to [min, max]; 0 when empty.
  double Percentile(double p) const;
};

// A parsed dfil-metrics-v1 or -v2 document. v2-only fields (provenance, the wait-state ledgers,
// final_clock_us, epochs) stay zero/empty when a v1 file is loaded.
struct RunSummary {
  std::string path;   // file it was loaded from (diagnostics)
  std::string label;
  std::string pcp;
  int schema_version = 1;
  int nodes = 0;
  bool completed = false;
  double makespan_us = 0.0;
  std::map<std::string, std::string> provenance;
  std::map<std::string, uint64_t> cluster_counters;

  struct Node {
    int node = 0;
    double finished_at_us = 0.0;
    double final_clock_us = 0.0;                      // v2: clock at end of run (incl. tail)
    std::map<std::string, double> time_us;            // Figure 10 categories
    double run_us = 0.0;                              // v2 wait-state ledgers:
    double serve_us = 0.0;                            //   run + serve + sum(wait_us) ==
    std::map<std::string, double> wait_us;            //   final_clock_us
    std::map<std::string, uint64_t> wait_events;      // blocked-interval counts by kind
    std::vector<std::map<std::string, double>> epochs;  // per-sync-point time series rows
    std::map<std::string, uint64_t> counters;
    std::map<std::string, HistSummary> histograms;
    std::vector<std::pair<uint64_t, uint64_t>> page_heat;  // (page, demand faults)
  };
  std::vector<Node> per_node;

  uint64_t ClusterCounter(const std::string& name) const;
  // Per-node histograms of `name` merged into one cluster-wide histogram.
  HistSummary MergedHistogram(const std::string& name) const;
};

// Parse a metrics document from text / load it from a file. On failure returns false and sets
// *error; *out is left in an unspecified state.
bool ParseRun(const std::string& text, RunSummary* out, std::string* error);
bool LoadRun(const std::string& path, RunSummary* out, std::string* error);

// Reads a whole file; returns false and sets *error when unreadable.
bool ReadFile(const std::string& path, std::string* out, std::string* error);

// Paper tables.
void PrintFigure10(const RunSummary& run, std::ostream& os);
void PrintFigure9(const std::vector<RunSummary>& runs, std::ostream& os);
void PrintFaultLatency(const RunSummary& run, std::ostream& os);
void PrintHotPages(const RunSummary& run, size_t top_n, std::ostream& os);

// ---- Trace analysis ------------------------------------------------------------------------

// Structural validity of a Chrome trace-event JSON document (bare array or {"traceEvents": [...]}):
// every track's B/E events balance with non-decreasing timestamps, and every flow-start id is
// eventually finished. Errors are capped at a few dozen lines; `ok` reflects the full scan.
struct TraceCheck {
  bool ok = false;
  std::vector<std::string> errors;
  size_t events = 0;
  size_t spans = 0;           // completed B/E pairs
  size_t flow_starts = 0;
  size_t flow_ends = 0;
  size_t complete_flows = 0;  // flow ids with both an 's' and an 'f'
};
TraceCheck CheckChromeTrace(const std::string& text);

// One reconstructed cross-node flow arc (fault begin on the faulting node through serve/chase
// steps to the install): the trace-level view of a single remote page fault.
struct FlowArc {
  uint64_t id = 0;
  std::string name;      // "p<page>" / "bulk p<first>"
  double start_ts = 0.0;  // microseconds
  double end_ts = 0.0;
  int start_node = -1;
  int end_node = -1;
  size_t steps = 0;  // 't' events in between (serves, chases, invalidation hops)

  double duration_us() const { return end_ts - start_ts; }
};

// All complete arcs (those with both 's' and 'f'), unsorted.
std::vector<FlowArc> ExtractFlows(const std::string& text);
// The top_n longest arcs — the fault critical paths that gate the run.
void PrintCriticalPaths(std::vector<FlowArc> arcs, size_t top_n, std::ostream& os);

// ---- End-to-end critical path --------------------------------------------------------------

// One hop of the run's critical path: an interval on one node's timeline, classified as compute,
// a page-fault stall (detail: the page), or a barrier gap (detail: the epoch; the interval runs
// from the last arriver's entry to the release on the node the walk is on). A page-fault hop is
// fault *residency* — time during which at least one demand fault was outstanding on the node.
// Other threads of the node may execute under it (communication/computation overlap), so the
// what-if bound below is optimistic by construction.
struct PathSegment {
  enum class Kind { kCompute, kPageFault, kBarrier };
  Kind kind = Kind::kCompute;
  int node = -1;
  double start_us = 0.0;
  double end_us = 0.0;
  uint64_t page = 0;   // kPageFault only
  uint64_t epoch = 0;  // kBarrier only

  double duration_us() const { return end_us - start_us; }
};
const char* PathSegmentKindName(PathSegment::Kind kind);

// The longest dependency chain through the run, reconstructed from a Chrome trace. The builder
// anchors at the latest per-node "done" instant, walks backward through the epoch-stamped
// "reduce e<K>" spans — each barrier hop jumps to that epoch's last arriver, the node that held
// the release back — and decomposes every inter-barrier gap into "fault p<P>" stalls vs compute.
// Segments are contiguous by construction: they tile [0, completion_us] exactly, so
// sum(duration) == completion_us (the run's virtual completion time). Violations of that
// invariant (a malformed trace) surface as ok = false.
struct CriticalPath {
  bool ok = false;
  std::string error;                  // set when !ok
  int critical_node = -1;             // node whose "done" instant is latest
  double completion_us = 0.0;         // max per-node done timestamp
  double compute_us = 0.0;            // segment-duration sums by kind
  double fault_us = 0.0;
  double barrier_us = 0.0;
  uint64_t rebalance_events = 0;      // "rebalance ..." instants seen anywhere on the trace
  std::vector<PathSegment> segments;  // time order, from ts 0 to completion_us
};
CriticalPath BuildCriticalPath(const std::string& trace_text);

// Blame view: path segments aggregated by cause — "page <p>", "barrier e<k>", "compute n<i>" —
// ranked by total critical-path residency, largest first.
struct BlameRow {
  std::string label;
  double us = 0.0;
  uint64_t hops = 0;  // path segments aggregated into this row
};
std::vector<BlameRow> BlamePath(const CriticalPath& path);

// What-if lower bound: completion time with every page serve made free (all fault segments
// excised from the path). Barrier hops are kept — they bound even a perfect-DSM run.
double WhatIfZeroCostPages(const CriticalPath& path);

void PrintCritPath(const CriticalPath& path, size_t top_n, std::ostream& os);
void PrintBlame(const CriticalPath& path, size_t top_n, std::ostream& os);

// ---- Flight-recorder dumps -----------------------------------------------------------------

// A parsed dfil-flight-v1 document (src/core/metrics_io.h WriteFlightJson): the last wait events
// per node plus recent fault-injection decisions, captured at the first oracle violation or at
// end of run.
struct FlightDump {
  std::string label;
  bool at_violation = false;
  std::vector<std::string> violations;

  struct Event {
    std::string kind;      // WaitKindName: "page_fault", "barrier", ...
    uint64_t detail = 0;   // page / epoch / service, kind-dependent
    double start_us = 0.0;
    double end_us = 0.0;
  };
  struct NodeLog {
    int node = 0;
    std::vector<Event> events;  // oldest first
  };
  std::vector<NodeLog> nodes;

  struct Injection {
    std::string what;   // "drop", "dup", "delay", "stall"
    std::string klass;  // "request", "reply", ...
    uint32_t type = 0;
    int src = 0;
    int dst = 0;
    double at_us = 0.0;
  };
  std::vector<Injection> injections;  // oldest first
};
bool ParseFlight(const std::string& text, FlightDump* out, std::string* error);
// Renders the dump as an interleaved, time-ordered last-moments timeline.
void PrintFlight(const FlightDump& dump, std::ostream& os);

// ---- CI regression gate --------------------------------------------------------------------

// Baseline format (dfil-gate-v1):
//   {"schema": "dfil-gate-v1", "tolerance": 0.10,
//    "runs": {"<label>": {"<counter>": <expected>, ...}, ...}}
// Every baseline run must be matched by a loaded metrics file of the same label, and every listed
// cluster counter must be within `tolerance` relative drift of its expectation.
struct GateResult {
  bool ok = true;
  std::vector<std::string> lines;  // one human-readable verdict per comparison
};
GateResult CheckGate(const std::string& baseline_text, const std::vector<RunSummary>& runs,
                     std::string* error);

// critpath CI gate. Baseline format (dfil-critpath-gate-v1):
//   {"schema": "dfil-critpath-gate-v1", "tolerance_pp": 10.0,
//    "shares_pct": {"compute": 60.0, "page_fault": 25.0, "barrier": 15.0}}
// Passes when the path is structurally valid and each kind's share of the path (in percentage
// points of completion time) is within tolerance_pp of its expectation.
GateResult CheckCritpathGate(const std::string& baseline_text, const CriticalPath& path,
                             std::string* error);

}  // namespace dfil::report

#endif  // DFIL_TOOLS_REPORT_LIB_H_
