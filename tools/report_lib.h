// Analysis library behind tools/dfil_report and the observability tests.
//
// Consumes the two JSON artifacts the runtime emits — METRICS_<label>.json (dfil-metrics-v1,
// src/core/metrics_io.h) and Chrome trace-event files (TraceRecorder::WriteChromeTrace) — and
// renders the paper's analysis tables:
//   * Figure 10: per-node stacked time breakdown (work / filament_exec / data_transfer /
//     sync_overhead / sync_delay / idle).
//   * Figure 9: message counts per page-consistency protocol, side by side across runs, with
//     p50/p99 fault latency from the merged per-node histograms.
//   * Hottest pages (per-page demand-fault heat) and the longest fault critical paths (complete
//     s->t->f flow arcs reconstructed from the trace).
// It also hosts the trace-validity checker and the CI counter-regression gate.
#ifndef DFIL_TOOLS_REPORT_LIB_H_
#define DFIL_TOOLS_REPORT_LIB_H_

#include <array>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace dfil::report {

// One histogram as exported by MetricsRegistry::WriteJson, buckets included so histograms from
// different nodes can be merged before computing cluster-wide percentiles.
struct HistSummary {
  uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  // Power-of-two buckets as [low, high, count] triples (empty buckets omitted by the writer).
  std::vector<std::array<double, 3>> buckets;

  void Merge(const HistSummary& other);
  // Interpolated percentile over the merged buckets, clamped to [min, max]; 0 when empty.
  double Percentile(double p) const;
};

// A parsed dfil-metrics-v1 document.
struct RunSummary {
  std::string path;   // file it was loaded from (diagnostics)
  std::string label;
  std::string pcp;
  int nodes = 0;
  bool completed = false;
  double makespan_us = 0.0;
  std::map<std::string, uint64_t> cluster_counters;

  struct Node {
    int node = 0;
    double finished_at_us = 0.0;
    std::map<std::string, double> time_us;            // Figure 10 categories
    std::map<std::string, uint64_t> counters;
    std::map<std::string, HistSummary> histograms;
    std::vector<std::pair<uint64_t, uint64_t>> page_heat;  // (page, demand faults)
  };
  std::vector<Node> per_node;

  uint64_t ClusterCounter(const std::string& name) const;
  // Per-node histograms of `name` merged into one cluster-wide histogram.
  HistSummary MergedHistogram(const std::string& name) const;
};

// Parse a metrics document from text / load it from a file. On failure returns false and sets
// *error; *out is left in an unspecified state.
bool ParseRun(const std::string& text, RunSummary* out, std::string* error);
bool LoadRun(const std::string& path, RunSummary* out, std::string* error);

// Reads a whole file; returns false and sets *error when unreadable.
bool ReadFile(const std::string& path, std::string* out, std::string* error);

// Paper tables.
void PrintFigure10(const RunSummary& run, std::ostream& os);
void PrintFigure9(const std::vector<RunSummary>& runs, std::ostream& os);
void PrintFaultLatency(const RunSummary& run, std::ostream& os);
void PrintHotPages(const RunSummary& run, size_t top_n, std::ostream& os);

// ---- Trace analysis ------------------------------------------------------------------------

// Structural validity of a Chrome trace-event JSON document (bare array or {"traceEvents": [...]}):
// every track's B/E events balance with non-decreasing timestamps, and every flow-start id is
// eventually finished. Errors are capped at a few dozen lines; `ok` reflects the full scan.
struct TraceCheck {
  bool ok = false;
  std::vector<std::string> errors;
  size_t events = 0;
  size_t spans = 0;           // completed B/E pairs
  size_t flow_starts = 0;
  size_t flow_ends = 0;
  size_t complete_flows = 0;  // flow ids with both an 's' and an 'f'
};
TraceCheck CheckChromeTrace(const std::string& text);

// One reconstructed cross-node flow arc (fault begin on the faulting node through serve/chase
// steps to the install): the trace-level view of a single remote page fault.
struct FlowArc {
  uint64_t id = 0;
  std::string name;      // "p<page>" / "bulk p<first>"
  double start_ts = 0.0;  // microseconds
  double end_ts = 0.0;
  int start_node = -1;
  int end_node = -1;
  size_t steps = 0;  // 't' events in between (serves, chases, invalidation hops)

  double duration_us() const { return end_ts - start_ts; }
};

// All complete arcs (those with both 's' and 'f'), unsorted.
std::vector<FlowArc> ExtractFlows(const std::string& text);
// The top_n longest arcs — the fault critical paths that gate the run.
void PrintCriticalPaths(std::vector<FlowArc> arcs, size_t top_n, std::ostream& os);

// ---- CI regression gate --------------------------------------------------------------------

// Baseline format (dfil-gate-v1):
//   {"schema": "dfil-gate-v1", "tolerance": 0.10,
//    "runs": {"<label>": {"<counter>": <expected>, ...}, ...}}
// Every baseline run must be matched by a loaded metrics file of the same label, and every listed
// cluster counter must be within `tolerance` relative drift of its expectation.
struct GateResult {
  bool ok = true;
  std::vector<std::string> lines;  // one human-readable verdict per comparison
};
GateResult CheckGate(const std::string& baseline_text, const std::vector<RunSummary>& runs,
                     std::string* error);

}  // namespace dfil::report

#endif  // DFIL_TOOLS_REPORT_LIB_H_
