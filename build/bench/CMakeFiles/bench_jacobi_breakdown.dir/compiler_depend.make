# Empty compiler generated dependencies file for bench_jacobi_breakdown.
# This may be replaced when dependencies are built.
