file(REMOVE_RECURSE
  "CMakeFiles/bench_jacobi_breakdown.dir/bench_jacobi_breakdown.cc.o"
  "CMakeFiles/bench_jacobi_breakdown.dir/bench_jacobi_breakdown.cc.o.d"
  "bench_jacobi_breakdown"
  "bench_jacobi_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_jacobi_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
