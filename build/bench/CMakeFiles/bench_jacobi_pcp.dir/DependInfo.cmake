
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_jacobi_pcp.cc" "bench/CMakeFiles/bench_jacobi_pcp.dir/bench_jacobi_pcp.cc.o" "gcc" "bench/CMakeFiles/bench_jacobi_pcp.dir/bench_jacobi_pcp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/dfil_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dfil_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dsm/CMakeFiles/dfil_dsm.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dfil_net.dir/DependInfo.cmake"
  "/root/repo/build/src/threads/CMakeFiles/dfil_threads.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dfil_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dfil_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
