# Empty dependencies file for bench_jacobi_pcp.
# This may be replaced when dependencies are built.
