file(REMOVE_RECURSE
  "CMakeFiles/bench_jacobi_pcp.dir/bench_jacobi_pcp.cc.o"
  "CMakeFiles/bench_jacobi_pcp.dir/bench_jacobi_pcp.cc.o.d"
  "bench_jacobi_pcp"
  "bench_jacobi_pcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_jacobi_pcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
