file(REMOVE_RECURSE
  "CMakeFiles/bench_quadrature.dir/bench_quadrature.cc.o"
  "CMakeFiles/bench_quadrature.dir/bench_quadrature.cc.o.d"
  "bench_quadrature"
  "bench_quadrature.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_quadrature.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
