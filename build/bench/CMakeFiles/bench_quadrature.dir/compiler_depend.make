# Empty compiler generated dependencies file for bench_quadrature.
# This may be replaced when dependencies are built.
