file(REMOVE_RECURSE
  "CMakeFiles/bench_exprtree.dir/bench_exprtree.cc.o"
  "CMakeFiles/bench_exprtree.dir/bench_exprtree.cc.o.d"
  "bench_exprtree"
  "bench_exprtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_exprtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
