# Empty dependencies file for bench_exprtree.
# This may be replaced when dependencies are built.
