
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/accounting_test.cc" "tests/CMakeFiles/dfil_tests.dir/accounting_test.cc.o" "gcc" "tests/CMakeFiles/dfil_tests.dir/accounting_test.cc.o.d"
  "/root/repo/tests/adaptive_pools_test.cc" "tests/CMakeFiles/dfil_tests.dir/adaptive_pools_test.cc.o" "gcc" "tests/CMakeFiles/dfil_tests.dir/adaptive_pools_test.cc.o.d"
  "/root/repo/tests/apps_test.cc" "tests/CMakeFiles/dfil_tests.dir/apps_test.cc.o" "gcc" "tests/CMakeFiles/dfil_tests.dir/apps_test.cc.o.d"
  "/root/repo/tests/core_smoke_test.cc" "tests/CMakeFiles/dfil_tests.dir/core_smoke_test.cc.o" "gcc" "tests/CMakeFiles/dfil_tests.dir/core_smoke_test.cc.o.d"
  "/root/repo/tests/core_test.cc" "tests/CMakeFiles/dfil_tests.dir/core_test.cc.o" "gcc" "tests/CMakeFiles/dfil_tests.dir/core_test.cc.o.d"
  "/root/repo/tests/dsm_test.cc" "tests/CMakeFiles/dfil_tests.dir/dsm_test.cc.o" "gcc" "tests/CMakeFiles/dfil_tests.dir/dsm_test.cc.o.d"
  "/root/repo/tests/extensions_test.cc" "tests/CMakeFiles/dfil_tests.dir/extensions_test.cc.o" "gcc" "tests/CMakeFiles/dfil_tests.dir/extensions_test.cc.o.d"
  "/root/repo/tests/machine_test.cc" "tests/CMakeFiles/dfil_tests.dir/machine_test.cc.o" "gcc" "tests/CMakeFiles/dfil_tests.dir/machine_test.cc.o.d"
  "/root/repo/tests/packet_test.cc" "tests/CMakeFiles/dfil_tests.dir/packet_test.cc.o" "gcc" "tests/CMakeFiles/dfil_tests.dir/packet_test.cc.o.d"
  "/root/repo/tests/sim_test.cc" "tests/CMakeFiles/dfil_tests.dir/sim_test.cc.o" "gcc" "tests/CMakeFiles/dfil_tests.dir/sim_test.cc.o.d"
  "/root/repo/tests/threads_test.cc" "tests/CMakeFiles/dfil_tests.dir/threads_test.cc.o" "gcc" "tests/CMakeFiles/dfil_tests.dir/threads_test.cc.o.d"
  "/root/repo/tests/trace_parallel_test.cc" "tests/CMakeFiles/dfil_tests.dir/trace_parallel_test.cc.o" "gcc" "tests/CMakeFiles/dfil_tests.dir/trace_parallel_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/dfil_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dfil_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dsm/CMakeFiles/dfil_dsm.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dfil_net.dir/DependInfo.cmake"
  "/root/repo/build/src/threads/CMakeFiles/dfil_threads.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dfil_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dfil_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
