file(REMOVE_RECURSE
  "CMakeFiles/dfil_tests.dir/accounting_test.cc.o"
  "CMakeFiles/dfil_tests.dir/accounting_test.cc.o.d"
  "CMakeFiles/dfil_tests.dir/adaptive_pools_test.cc.o"
  "CMakeFiles/dfil_tests.dir/adaptive_pools_test.cc.o.d"
  "CMakeFiles/dfil_tests.dir/apps_test.cc.o"
  "CMakeFiles/dfil_tests.dir/apps_test.cc.o.d"
  "CMakeFiles/dfil_tests.dir/core_smoke_test.cc.o"
  "CMakeFiles/dfil_tests.dir/core_smoke_test.cc.o.d"
  "CMakeFiles/dfil_tests.dir/core_test.cc.o"
  "CMakeFiles/dfil_tests.dir/core_test.cc.o.d"
  "CMakeFiles/dfil_tests.dir/dsm_test.cc.o"
  "CMakeFiles/dfil_tests.dir/dsm_test.cc.o.d"
  "CMakeFiles/dfil_tests.dir/extensions_test.cc.o"
  "CMakeFiles/dfil_tests.dir/extensions_test.cc.o.d"
  "CMakeFiles/dfil_tests.dir/machine_test.cc.o"
  "CMakeFiles/dfil_tests.dir/machine_test.cc.o.d"
  "CMakeFiles/dfil_tests.dir/packet_test.cc.o"
  "CMakeFiles/dfil_tests.dir/packet_test.cc.o.d"
  "CMakeFiles/dfil_tests.dir/sim_test.cc.o"
  "CMakeFiles/dfil_tests.dir/sim_test.cc.o.d"
  "CMakeFiles/dfil_tests.dir/threads_test.cc.o"
  "CMakeFiles/dfil_tests.dir/threads_test.cc.o.d"
  "CMakeFiles/dfil_tests.dir/trace_parallel_test.cc.o"
  "CMakeFiles/dfil_tests.dir/trace_parallel_test.cc.o.d"
  "dfil_tests"
  "dfil_tests.pdb"
  "dfil_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfil_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
