# Empty dependencies file for dfil_tests.
# This may be replaced when dependencies are built.
