file(REMOVE_RECURSE
  "CMakeFiles/dfil_sim.dir/machine.cc.o"
  "CMakeFiles/dfil_sim.dir/machine.cc.o.d"
  "CMakeFiles/dfil_sim.dir/network.cc.o"
  "CMakeFiles/dfil_sim.dir/network.cc.o.d"
  "libdfil_sim.a"
  "libdfil_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfil_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
