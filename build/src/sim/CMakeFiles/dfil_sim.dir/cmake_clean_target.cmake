file(REMOVE_RECURSE
  "libdfil_sim.a"
)
