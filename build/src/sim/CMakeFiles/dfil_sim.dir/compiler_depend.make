# Empty compiler generated dependencies file for dfil_sim.
# This may be replaced when dependencies are built.
