
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cluster.cc" "src/core/CMakeFiles/dfil_core.dir/cluster.cc.o" "gcc" "src/core/CMakeFiles/dfil_core.dir/cluster.cc.o.d"
  "/root/repo/src/core/forkjoin.cc" "src/core/CMakeFiles/dfil_core.dir/forkjoin.cc.o" "gcc" "src/core/CMakeFiles/dfil_core.dir/forkjoin.cc.o.d"
  "/root/repo/src/core/node_env.cc" "src/core/CMakeFiles/dfil_core.dir/node_env.cc.o" "gcc" "src/core/CMakeFiles/dfil_core.dir/node_env.cc.o.d"
  "/root/repo/src/core/node_runtime.cc" "src/core/CMakeFiles/dfil_core.dir/node_runtime.cc.o" "gcc" "src/core/CMakeFiles/dfil_core.dir/node_runtime.cc.o.d"
  "/root/repo/src/core/pool_engine.cc" "src/core/CMakeFiles/dfil_core.dir/pool_engine.cc.o" "gcc" "src/core/CMakeFiles/dfil_core.dir/pool_engine.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dsm/CMakeFiles/dfil_dsm.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dfil_net.dir/DependInfo.cmake"
  "/root/repo/build/src/threads/CMakeFiles/dfil_threads.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dfil_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dfil_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
