# Empty dependencies file for dfil_core.
# This may be replaced when dependencies are built.
