file(REMOVE_RECURSE
  "libdfil_core.a"
)
