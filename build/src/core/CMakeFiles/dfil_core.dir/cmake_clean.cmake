file(REMOVE_RECURSE
  "CMakeFiles/dfil_core.dir/cluster.cc.o"
  "CMakeFiles/dfil_core.dir/cluster.cc.o.d"
  "CMakeFiles/dfil_core.dir/forkjoin.cc.o"
  "CMakeFiles/dfil_core.dir/forkjoin.cc.o.d"
  "CMakeFiles/dfil_core.dir/node_env.cc.o"
  "CMakeFiles/dfil_core.dir/node_env.cc.o.d"
  "CMakeFiles/dfil_core.dir/node_runtime.cc.o"
  "CMakeFiles/dfil_core.dir/node_runtime.cc.o.d"
  "CMakeFiles/dfil_core.dir/pool_engine.cc.o"
  "CMakeFiles/dfil_core.dir/pool_engine.cc.o.d"
  "libdfil_core.a"
  "libdfil_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfil_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
