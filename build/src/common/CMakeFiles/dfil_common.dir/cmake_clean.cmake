file(REMOVE_RECURSE
  "CMakeFiles/dfil_common.dir/check.cc.o"
  "CMakeFiles/dfil_common.dir/check.cc.o.d"
  "CMakeFiles/dfil_common.dir/log.cc.o"
  "CMakeFiles/dfil_common.dir/log.cc.o.d"
  "CMakeFiles/dfil_common.dir/trace.cc.o"
  "CMakeFiles/dfil_common.dir/trace.cc.o.d"
  "libdfil_common.a"
  "libdfil_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfil_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
