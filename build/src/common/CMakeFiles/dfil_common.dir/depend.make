# Empty dependencies file for dfil_common.
# This may be replaced when dependencies are built.
