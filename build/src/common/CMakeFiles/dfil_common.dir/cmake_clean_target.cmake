file(REMOVE_RECURSE
  "libdfil_common.a"
)
