file(REMOVE_RECURSE
  "CMakeFiles/dfil_threads.dir/context.cc.o"
  "CMakeFiles/dfil_threads.dir/context.cc.o.d"
  "CMakeFiles/dfil_threads.dir/context_switch_x86_64.S.o"
  "CMakeFiles/dfil_threads.dir/server_thread.cc.o"
  "CMakeFiles/dfil_threads.dir/server_thread.cc.o.d"
  "CMakeFiles/dfil_threads.dir/stack.cc.o"
  "CMakeFiles/dfil_threads.dir/stack.cc.o.d"
  "libdfil_threads.a"
  "libdfil_threads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang ASM CXX)
  include(CMakeFiles/dfil_threads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
