# Empty compiler generated dependencies file for dfil_threads.
# This may be replaced when dependencies are built.
