file(REMOVE_RECURSE
  "libdfil_threads.a"
)
