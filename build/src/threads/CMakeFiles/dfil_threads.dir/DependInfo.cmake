
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  "ASM"
  )
# The set of files for implicit dependencies of each language:
set(CMAKE_DEPENDS_CHECK_ASM
  "/root/repo/src/threads/context_switch_x86_64.S" "/root/repo/build/src/threads/CMakeFiles/dfil_threads.dir/context_switch_x86_64.S.o"
  )
set(CMAKE_ASM_COMPILER_ID "GNU")

# The include file search paths:
set(CMAKE_ASM_TARGET_INCLUDE_PATH
  "/root/repo"
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/threads/context.cc" "src/threads/CMakeFiles/dfil_threads.dir/context.cc.o" "gcc" "src/threads/CMakeFiles/dfil_threads.dir/context.cc.o.d"
  "/root/repo/src/threads/server_thread.cc" "src/threads/CMakeFiles/dfil_threads.dir/server_thread.cc.o" "gcc" "src/threads/CMakeFiles/dfil_threads.dir/server_thread.cc.o.d"
  "/root/repo/src/threads/stack.cc" "src/threads/CMakeFiles/dfil_threads.dir/stack.cc.o" "gcc" "src/threads/CMakeFiles/dfil_threads.dir/stack.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dfil_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
