# Empty compiler generated dependencies file for dfil_dsm.
# This may be replaced when dependencies are built.
