file(REMOVE_RECURSE
  "libdfil_dsm.a"
)
