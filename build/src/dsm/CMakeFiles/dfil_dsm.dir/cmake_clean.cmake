file(REMOVE_RECURSE
  "CMakeFiles/dfil_dsm.dir/dsm_node.cc.o"
  "CMakeFiles/dfil_dsm.dir/dsm_node.cc.o.d"
  "CMakeFiles/dfil_dsm.dir/layout.cc.o"
  "CMakeFiles/dfil_dsm.dir/layout.cc.o.d"
  "libdfil_dsm.a"
  "libdfil_dsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfil_dsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
