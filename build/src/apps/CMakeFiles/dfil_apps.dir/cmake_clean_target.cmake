file(REMOVE_RECURSE
  "libdfil_apps.a"
)
