# Empty compiler generated dependencies file for dfil_apps.
# This may be replaced when dependencies are built.
