# Empty dependencies file for dfil_apps.
# This may be replaced when dependencies are built.
