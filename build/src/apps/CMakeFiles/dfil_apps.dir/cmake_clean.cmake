file(REMOVE_RECURSE
  "CMakeFiles/dfil_apps.dir/exprtree.cc.o"
  "CMakeFiles/dfil_apps.dir/exprtree.cc.o.d"
  "CMakeFiles/dfil_apps.dir/fft.cc.o"
  "CMakeFiles/dfil_apps.dir/fft.cc.o.d"
  "CMakeFiles/dfil_apps.dir/jacobi.cc.o"
  "CMakeFiles/dfil_apps.dir/jacobi.cc.o.d"
  "CMakeFiles/dfil_apps.dir/matmul.cc.o"
  "CMakeFiles/dfil_apps.dir/matmul.cc.o.d"
  "CMakeFiles/dfil_apps.dir/quadrature.cc.o"
  "CMakeFiles/dfil_apps.dir/quadrature.cc.o.d"
  "CMakeFiles/dfil_apps.dir/sor.cc.o"
  "CMakeFiles/dfil_apps.dir/sor.cc.o.d"
  "libdfil_apps.a"
  "libdfil_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfil_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
