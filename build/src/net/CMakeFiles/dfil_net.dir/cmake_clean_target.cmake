file(REMOVE_RECURSE
  "libdfil_net.a"
)
