# Empty dependencies file for dfil_net.
# This may be replaced when dependencies are built.
