file(REMOVE_RECURSE
  "CMakeFiles/dfil_net.dir/packet.cc.o"
  "CMakeFiles/dfil_net.dir/packet.cc.o.d"
  "libdfil_net.a"
  "libdfil_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfil_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
