file(REMOVE_RECURSE
  "CMakeFiles/trace_overlap.dir/trace_overlap.cpp.o"
  "CMakeFiles/trace_overlap.dir/trace_overlap.cpp.o.d"
  "trace_overlap"
  "trace_overlap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_overlap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
