# Empty dependencies file for trace_overlap.
# This may be replaced when dependencies are built.
