# Empty compiler generated dependencies file for merge_sort.
# This may be replaced when dependencies are built.
