file(REMOVE_RECURSE
  "CMakeFiles/merge_sort.dir/merge_sort.cpp.o"
  "CMakeFiles/merge_sort.dir/merge_sort.cpp.o.d"
  "merge_sort"
  "merge_sort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/merge_sort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
