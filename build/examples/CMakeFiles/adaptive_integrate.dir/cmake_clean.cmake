file(REMOVE_RECURSE
  "CMakeFiles/adaptive_integrate.dir/adaptive_integrate.cpp.o"
  "CMakeFiles/adaptive_integrate.dir/adaptive_integrate.cpp.o.d"
  "adaptive_integrate"
  "adaptive_integrate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_integrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
