# Empty dependencies file for adaptive_integrate.
# This may be replaced when dependencies are built.
