#include "src/dsm/coherence_oracle.h"

#include <algorithm>
#include <cstring>
#include <sstream>

#include "src/common/check.h"
#include "src/common/log.h"

namespace dfil::dsm {

void CoherenceOracle::AttachNode(NodeId node, DsmNode* dsm) {
  if (layout_ == nullptr) {
    layout_ = &dsm->layout();
    shadow_.assign(layout_->region_bytes(), std::byte{0});
    version_.assign(layout_->num_pages(), 0);
  } else {
    DFIL_CHECK_EQ(layout_, &dsm->layout()) << "oracle attached across clusters";
  }
  if (nodes_.size() <= static_cast<size_t>(node)) {
    nodes_.resize(node + 1, nullptr);
    installed_version_.resize(node + 1);
  }
  nodes_[node] = dsm;
  installed_version_[node].assign(layout_->num_pages(), 0);
}

const PageEntry& CoherenceOracle::Entry(NodeId node, PageId page) const {
  return nodes_[node]->page(page);
}

const std::byte* CoherenceOracle::Frame(NodeId node, PageId page) const {
  return nodes_[node]->raw_replica(static_cast<GlobalAddr>(page) << layout_->page_shift());
}

bool CoherenceOracle::FrameEqualsShadow(NodeId node, PageId page) const {
  const GlobalAddr off = static_cast<GlobalAddr>(page) << layout_->page_shift();
  return std::memcmp(Frame(node, page), shadow_.data() + off, layout_->page_size()) == 0;
}

void CoherenceOracle::SyncShadow(NodeId owner, PageId page) {
  if (!FrameEqualsShadow(owner, page)) {
    const GlobalAddr off = static_cast<GlobalAddr>(page) << layout_->page_shift();
    std::memcpy(shadow_.data() + off, Frame(owner, page), layout_->page_size());
    ++version_[page];
  }
}

void CoherenceOracle::Violate(const std::string& what) {
  DFIL_LOG(kError, "oracle") << "violation: " << what;
  const bool first = violations_.empty();
  if (violations_.size() < kMaxRecordedViolations) {
    violations_.push_back(what);
  }
  if (first && on_first_violation) {
    // Snapshot hook fires at the failure point, while the flight-recorder rings still hold the
    // events leading up to it — by end of run they may have wrapped past the interesting window.
    on_first_violation();
  }
}

void CoherenceOracle::OnServeRead(NodeId server, NodeId to, PageId page) {
  for (PageId p : layout_->GroupPagesOf(page)) {
    ++checks_run_;
    const PageEntry& e = Entry(server, p);
    if (!e.owner) {
      std::ostringstream os;
      os << "node " << server << " served a read copy of page " << p << " without owning it";
      Violate(os.str());
      continue;
    }
    SyncShadow(server, p);
    if (nodes_[server]->page_pcp(p) == Pcp::kWriteInvalidate &&
        (e.copyset & (uint64_t{1} << to)) == 0) {
      std::ostringstream os;
      os << "node " << server << " served page " << p << " to " << to
         << " without tracking it in the copyset";
      Violate(os.str());
    }
  }
}

void CoherenceOracle::OnServeTransfer(NodeId server, NodeId to, PageId page) {
  (void)to;
  for (PageId p : layout_->GroupPagesOf(page)) {
    ++checks_run_;
    const PageEntry& e = Entry(server, p);
    if (!e.owner) {
      std::ostringstream os;
      os << "node " << server << " transferred page " << p << " without owning it";
      Violate(os.str());
      continue;
    }
    if (e.fetching) {
      std::ostringstream os;
      os << "node " << server << " transferred page " << p << " while its entry was in flux";
      Violate(os.str());
    }
    SyncShadow(server, p);
  }
}

void CoherenceOracle::OnServeGrantReserve(NodeId server, NodeId to, PageId page) {
  (void)to;
  for (PageId p : layout_->GroupPagesOf(page)) {
    ++checks_run_;
    const PageEntry& e = Entry(server, p);
    if (e.owner || e.state != PageState::kInvalid) {
      std::ostringstream os;
      os << "node " << server << " re-served a grant of page " << p
         << " while holding a live copy (owner=" << e.owner
         << " state=" << static_cast<int>(e.state) << ")";
      Violate(os.str());
    }
    // No shadow sync: a grant re-reply ships the frame frozen at grant time, which is still the
    // latest version — ownership is parked at the requester until the transfer lands.
  }
}

void CoherenceOracle::OnInstallRead(NodeId node, PageId page) {
  for (PageId p : layout_->GroupPagesOf(page)) {
    ++checks_run_;
    const PageEntry& e = Entry(node, p);
    if (e.state != PageState::kReadOnly || e.owner) {
      std::ostringstream os;
      os << "node " << node << " read-install of page " << p << " left state "
         << static_cast<int>(e.state) << " owner=" << e.owner;
      Violate(os.str());
    }
    // Write-invalidate promises no stale read copies: a copy invalidated while the bytes were in
    // flight must be discarded, never installed. (Implicit-invalidate and diff tolerate
    // intra-epoch staleness by design, so the byte check applies only at sync points there.)
    if (nodes_[node]->page_pcp(p) == Pcp::kWriteInvalidate && !FrameEqualsShadow(node, p)) {
      std::ostringstream os;
      os << "node " << node << " installed stale bytes for page " << p << " (shadow v"
         << version_[p] << ")";
      Violate(os.str());
    }
    if (version_[p] < installed_version_[node][p]) {
      std::ostringstream os;
      os << "node " << node << " installed page " << p << " v" << version_[p]
         << " after already holding v" << installed_version_[node][p];
      Violate(os.str());
    }
    installed_version_[node][p] = version_[p];
  }
}

void CoherenceOracle::OnWriteGranted(NodeId node, PageId page) {
  for (PageId p : layout_->GroupPagesOf(page)) {
    ++checks_run_;
    const PageEntry& e = Entry(node, p);
    if (e.state != PageState::kReadWrite || !e.owner) {
      std::ostringstream os;
      os << "node " << node << " write grant of page " << p << " left state "
         << static_cast<int>(e.state) << " owner=" << e.owner;
      Violate(os.str());
    }
    if (!FrameEqualsShadow(node, p)) {
      std::ostringstream os;
      os << "node " << node << " acquired page " << p << " for writing with stale bytes (shadow v"
         << version_[p] << ")";
      Violate(os.str());
    }
    if (version_[p] < installed_version_[node][p]) {
      std::ostringstream os;
      os << "node " << node << " write-acquired page " << p << " v" << version_[p]
         << " after already holding v" << installed_version_[node][p];
      Violate(os.str());
    }
    installed_version_[node][p] = version_[p];
    // Single-writer: no second owner, and under the invalidating protocols no other valid copy.
    // (Implicit-invalidate copies die at the next sync point instead, and diff is multiple-writer
    // by design, so both tolerate other valid copies here.)
    const Pcp pcp = nodes_[node]->page_pcp(p);
    for (NodeId m = 0; m < static_cast<NodeId>(nodes_.size()); ++m) {
      if (m == node || nodes_[m] == nullptr) {
        continue;
      }
      const PageEntry& other = Entry(m, p);
      if (other.owner) {
        std::ostringstream os;
        os << "two owners of page " << p << ": " << node << " and " << m;
        Violate(os.str());
      }
      if (pcp != Pcp::kImplicitInvalidate && pcp != Pcp::kDiff &&
          other.state != PageState::kInvalid) {
        std::ostringstream os;
        os << "node " << node << " acquired page " << p << " for writing while node " << m
           << " still holds a valid copy";
        Violate(os.str());
      }
    }
  }
}

void CoherenceOracle::OnInvalidated(NodeId node, PageId page) {
  ++checks_run_;
  const PageEntry& e = Entry(node, page);
  if (e.owner || e.state != PageState::kInvalid) {
    std::ostringstream os;
    os << "node " << node << " invalidation of page " << page << " left state "
       << static_cast<int>(e.state) << " owner=" << e.owner;
    Violate(os.str());
  }
}

void CoherenceOracle::OnDiscardedInstall(NodeId node, PageId page) {
  (void)node;
  (void)page;
  ++installs_discarded_;
}

void CoherenceOracle::OnTwinWrite(NodeId node, PageId page) {
  ++checks_run_;
  const PageEntry& e = Entry(node, page);
  if (e.state != PageState::kReadWrite || e.owner) {
    std::ostringstream os;
    os << "node " << node << " twin-write of page " << page << " left state "
       << static_cast<int>(e.state) << " owner=" << e.owner;
    Violate(os.str());
  }
  if (nodes_[node]->page_pcp(page) != Pcp::kDiff) {
    std::ostringstream os;
    os << "node " << node << " twinned page " << page << " outside the diff protocol";
    Violate(os.str());
  }
}

void CoherenceOracle::OnDiffWriteInstall(NodeId node, PageId page) {
  for (PageId p : layout_->GroupPagesOf(page)) {
    ++checks_run_;
    const PageEntry& e = Entry(node, p);
    if (e.state != PageState::kReadWrite || e.owner || !e.diff_copy) {
      std::ostringstream os;
      os << "node " << node << " diff write-install of page " << p << " left state "
         << static_cast<int>(e.state) << " owner=" << e.owner << " diff=" << e.diff_copy;
      Violate(os.str());
    }
    // Like implicit-invalidate reads, the installed bytes may trail the shadow within the epoch
    // (the home can merge other writers after serving us); only version monotonicity is checked.
    if (version_[p] < installed_version_[node][p]) {
      std::ostringstream os;
      os << "node " << node << " diff-installed page " << p << " v" << version_[p]
         << " after already holding v" << installed_version_[node][p];
      Violate(os.str());
    }
    installed_version_[node][p] = version_[p];
  }
}

void CoherenceOracle::OnDiffMergeApplied(NodeId home, NodeId src, PageId page, uint64_t epoch,
                                         const std::vector<net::DiffRun>& runs) {
  ++checks_run_;
  const PageEntry& e = Entry(home, page);
  if (!e.owner) {
    std::ostringstream os;
    os << "node " << home << " merged a diff for page " << page << " without owning it";
    Violate(os.str());
  }
  // Concurrent diff writers are legal only on disjoint byte ranges: two same-epoch merges from
  // different senders whose runs overlap mean both wrote the same bytes between the same pair of
  // barriers — a data race the merge order would silently resolve.
  std::vector<MergeRec>& log = merge_log_[page];
  std::erase_if(log, [epoch](const MergeRec& rec) { return rec.epoch < epoch; });
  for (const MergeRec& rec : log) {
    if (rec.src == src || rec.epoch != epoch) {
      continue;
    }
    for (const net::DiffRun& a : rec.runs) {
      for (const net::DiffRun& b : runs) {
        const uint16_t lo = std::max(a.offset, b.offset);
        const uint32_t hi = std::min<uint32_t>(a.offset + a.len, b.offset + b.len);
        if (lo < hi) {
          std::ostringstream os;
          os << "overlapping diff merges on page " << page << " epoch " << epoch << ": nodes "
             << rec.src << " and " << src << " both wrote bytes [" << lo << "," << hi << ")";
          Violate(os.str());
        }
      }
    }
  }
  log.push_back(MergeRec{src, epoch, runs});
  // The merge made src's write burst observable in the home frame; fold it into the shadow.
  SyncShadow(home, page);
}

void CoherenceOracle::AtQuiescentPoint() {
  ++quiescent_points_;
  for (NodeId n = 0; n < static_cast<NodeId>(nodes_.size()); ++n) {
    if (nodes_[n] == nullptr) {
      continue;
    }
    if (nodes_[n]->pending_fetches() != 0) {
      std::ostringstream os;
      os << "node " << n << " has " << nodes_[n]->pending_fetches()
         << " fetches in flight at a quiescent point";
      Violate(os.str());
    }
  }
  for (PageId p = 0; p < static_cast<PageId>(version_.size()); ++p) {
    ++checks_run_;
    NodeId owner = kNoNode;
    int owners = 0;
    for (NodeId n = 0; n < static_cast<NodeId>(nodes_.size()); ++n) {
      if (nodes_[n] != nullptr && Entry(n, p).owner) {
        owner = n;
        ++owners;
      }
    }
    if (owners != 1) {
      std::ostringstream os;
      os << owners << " owners of page " << p << " at a quiescent point";
      Violate(os.str());
      continue;
    }
    SyncShadow(owner, p);
    // The owner's view of the page's protocol governs the sweep (under adaptation the owner is
    // the node that decides the group's mode).
    const Pcp pcp = nodes_[owner]->page_pcp(p);
    for (NodeId n = 0; n < static_cast<NodeId>(nodes_.size()); ++n) {
      if (nodes_[n] == nullptr) {
        continue;
      }
      const PageEntry& e = Entry(n, p);
      if (e.fetching) {
        std::ostringstream os;
        os << "node " << n << " still marked fetching page " << p << " at a quiescent point";
        Violate(os.str());
      }
      if (n == owner || e.state == PageState::kInvalid) {
        continue;
      }
      // A surviving non-owner copy: legal only under write-invalidate (read replication with
      // copyset tracking). Migratory keeps a single copy; implicit-invalidate drops every read
      // copy — and diff additionally flushes every twinned copy — at the sync point that
      // precedes this quiescent point.
      if (pcp != Pcp::kWriteInvalidate) {
        std::ostringstream os;
        os << "node " << n << " holds a copy of page " << p << " at a quiescent point under "
           << PcpName(pcp);
        Violate(os.str());
      } else if ((Entry(owner, p).copyset & (uint64_t{1} << n)) == 0) {
        std::ostringstream os;
        os << "node " << n << " holds page " << p << " untracked by owner " << owner
           << "'s copyset";
        Violate(os.str());
      }
      if (!FrameEqualsShadow(n, p)) {
        std::ostringstream os;
        os << "node " << n << "'s copy of page " << p << " diverges from owner " << owner
           << "'s frame at a quiescent point";
        Violate(os.str());
      }
    }
  }
}

}  // namespace dfil::dsm
