#include "src/dsm/layout.h"

#include <algorithm>

namespace dfil::dsm {

GlobalAddr GlobalLayout::Alloc(size_t bytes, size_t align, const std::string& name) {
  DFIL_CHECK(!sealed_);
  DFIL_CHECK_GT(bytes, 0u);
  DFIL_CHECK((align & (align - 1)) == 0) << "alignment must be a power of two";
  next_ = (next_ + align - 1) & ~static_cast<GlobalAddr>(align - 1);
  GlobalAddr addr = next_;
  next_ += bytes;
  allocations_.push_back(Allocation{name, addr, bytes});
  return addr;
}

GlobalAddr GlobalLayout::AllocPadded(size_t bytes, const std::string& name) {
  DFIL_CHECK(!sealed_);
  const size_t ps = page_size();
  next_ = (next_ + ps - 1) & ~static_cast<GlobalAddr>(ps - 1);
  GlobalAddr addr = Alloc(bytes, 8, name);
  next_ = (next_ + ps - 1) & ~static_cast<GlobalAddr>(ps - 1);
  return addr;
}

GlobalAddr GlobalLayout::AllocArray2D(size_t rows, size_t cols, size_t elem,
                                      bool pad_rows_to_pages, const std::string& name) {
  DFIL_CHECK(!sealed_);
  if (!pad_rows_to_pages) {
    return AllocPadded(rows * cols * elem, name);
  }
  const size_t ps = page_size();
  const size_t row_bytes = ((cols * elem + ps - 1) / ps) * ps;
  next_ = (next_ + ps - 1) & ~static_cast<GlobalAddr>(ps - 1);
  GlobalAddr addr = next_;
  next_ += rows * row_bytes;
  allocations_.push_back(Allocation{name, addr, rows * row_bytes});
  return addr;
}

uint16_t GlobalLayout::GroupPages(PageId first, size_t count) {
  DFIL_CHECK(!sealed_);
  DFIL_CHECK_GE(count, 2u);
  const PageId last = first + static_cast<PageId>(count) - 1;
  if (group_of_.size() <= last) {
    group_of_.resize(last + 1, kNoGroup);
  }
  for (PageId p = first; p <= last; ++p) {
    DFIL_CHECK_EQ(group_of_[p], kNoGroup) << "page " << p << " already grouped";
  }
  groups_.emplace_back(first, last);
  const auto id = static_cast<uint16_t>(groups_.size());  // ids start at 1; 0 = ungrouped
  for (PageId p = first; p <= last; ++p) {
    group_of_[p] = id;
  }
  return id;
}

void GlobalLayout::SetInitialOwner(GlobalAddr addr, size_t bytes, NodeId owner) {
  DFIL_CHECK(!sealed_);
  owner_ranges_.emplace_back(addr, bytes, owner);
}

void GlobalLayout::Seal(int num_nodes) {
  DFIL_CHECK(!sealed_);
  DFIL_CHECK_GT(num_nodes, 0);
  const size_t ps = page_size();
  region_bytes_ = ((next_ + ps - 1) / ps) * ps;
  if (region_bytes_ == 0) {
    region_bytes_ = ps;  // keep a non-empty region so the page table is well-formed
  }
  initial_owner_.assign(num_pages(), 0);
  group_of_.resize(num_pages(), kNoGroup);
  for (const auto& [addr, bytes, owner] : owner_ranges_) {
    DFIL_CHECK_GE(owner, 0);
    DFIL_CHECK_LT(owner, num_nodes);
    const PageId first = PageOf(addr);
    const PageId last = PageOf(addr + bytes - 1);
    for (PageId p = first; p <= last; ++p) {
      initial_owner_[p] = owner;
    }
  }
  sealed_ = true;
}

std::vector<PageId> GlobalLayout::GroupPagesOf(PageId page) const {
  const uint16_t g = GroupOf(page);
  if (g == kNoGroup) {
    return {page};
  }
  const auto [first, last] = groups_[g - 1];
  std::vector<PageId> pages;
  pages.reserve(last - first + 1);
  for (PageId p = first; p <= last; ++p) {
    pages.push_back(p);
  }
  return pages;
}

}  // namespace dfil::dsm
