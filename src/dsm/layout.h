// Global shared-memory layout.
//
// The paper's DSM replicates the shared section at the same location on every node so pointers
// have the same meaning everywhere (§3). Here a GlobalLayout is built once, before the cluster
// starts, and shared (read-only) by all nodes: a GlobalAddr is an offset into each node's replica,
// which gives the same same-meaning-everywhere property.
//
// The layout builder also implements the paper's two granularity controls:
//  * padding — "a library routine that allocates a data structure in global memory and
//    automatically pads (when necessary)" so elements land on distinct pages;
//  * page groups — "two or more pages can be grouped so that a request for any page in the group
//    is a request for all of them", i.e. logical pages larger than the OS page.
#ifndef DFIL_DSM_LAYOUT_H_
#define DFIL_DSM_LAYOUT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "src/common/check.h"
#include "src/common/types.h"

namespace dfil::dsm {

inline constexpr uint16_t kNoGroup = 0;

class GlobalLayout {
 public:
  explicit GlobalLayout(size_t page_shift = 12) : page_shift_(page_shift) {}

  size_t page_shift() const { return page_shift_; }
  size_t page_size() const { return size_t{1} << page_shift_; }
  PageId PageOf(GlobalAddr addr) const { return static_cast<PageId>(addr >> page_shift_); }

  // --- Allocation (done once, host-side, before the cluster runs) ---

  // Allocates `bytes` with the given alignment; returns its global address.
  GlobalAddr Alloc(size_t bytes, size_t align = 8, const std::string& name = "");

  // Allocates page-aligned and padded to whole pages, so the object shares no page with others.
  GlobalAddr AllocPadded(size_t bytes, const std::string& name = "");

  // Allocates a rows x cols array of `elem` bytes each. When `pad_rows_to_pages` is set, each row
  // starts on a fresh page (the paper's padding routine, used to avoid false sharing between the
  // strips of different nodes).
  GlobalAddr AllocArray2D(size_t rows, size_t cols, size_t elem, bool pad_rows_to_pages,
                          const std::string& name = "");

  // Groups the pages [first, first+count) so that a request for any of them fetches all of them.
  // Returns the group id. Pages must not already belong to a group.
  uint16_t GroupPages(PageId first, size_t count);

  // Sets the initial owner of every page overlapping [addr, addr+bytes). Default owner is node 0.
  void SetInitialOwner(GlobalAddr addr, size_t bytes, NodeId owner);

  // Finalizes the layout: freezes the region size (rounded to pages) for `num_nodes` nodes.
  void Seal(int num_nodes);
  bool sealed() const { return sealed_; }

  // --- Queries (used by DsmNode after Seal) ---
  size_t region_bytes() const { return region_bytes_; }
  size_t num_pages() const { return region_bytes_ >> page_shift_; }
  NodeId InitialOwner(PageId page) const { return initial_owner_.at(page); }
  uint16_t GroupOf(PageId page) const {
    return page < group_of_.size() ? group_of_[page] : kNoGroup;
  }
  // All pages of `page`'s group, in ascending order ({page} itself when ungrouped).
  std::vector<PageId> GroupPagesOf(PageId page) const;

  struct Allocation {
    std::string name;
    GlobalAddr addr;
    size_t bytes;
  };
  const std::vector<Allocation>& allocations() const { return allocations_; }

 private:
  size_t page_shift_;
  GlobalAddr next_ = 0;
  bool sealed_ = false;
  size_t region_bytes_ = 0;
  std::vector<NodeId> initial_owner_;
  std::vector<uint16_t> group_of_;
  std::vector<std::pair<PageId, PageId>> groups_;  // group id - 1 -> [first, last]
  std::vector<std::tuple<GlobalAddr, size_t, NodeId>> owner_ranges_;
  std::vector<Allocation> allocations_;
};

}  // namespace dfil::dsm

#endif  // DFIL_DSM_LAYOUT_H_
