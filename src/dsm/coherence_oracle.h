// Cluster-global DSM coherence oracle (test harness; see DESIGN.md "Fault model and oracle").
//
// The oracle shadows every shared page with a reference copy plus a version counter and checks
// protocol invariants at each observable state transition (page serves, installs, ownership
// grants, invalidations) and at every globally quiescent point (the combining step of a
// tournament/central barrier, where every node has drained its outstanding fetches):
//
//  * single-writer / multiple-reader — at most one owner per page, ever; a write-granted page
//    implies no other valid copy (write-invalidate, migratory);
//  * version monotonicity — a node never installs an older version of a page than it last saw;
//  * no stale bytes after invalidation — under write-invalidate, installed read copies must be
//    byte-identical to the shadow (a copy that was invalidated in flight must be discarded, not
//    installed);
//  * barrier equality — at a quiescent point there is exactly one owner per page, no fetch is in
//    flight, every surviving copy is byte-identical to the owner's frame, and (write-invalidate)
//    every read-only holder is tracked in the owner's copyset.
//
// Implicit-invalidate deliberately allows stale read copies *within* an epoch (they die at the
// next sync point), so the per-install byte check is skipped under that protocol; the barrier
// sweep still demands that no copy survives the sync point and that frames agree.
//
// The diff protocol is multiple-writer by design, so its writable copies are tracked through
// dedicated hooks instead of the single-writer grant invariant: concurrent diff writers to
// *disjoint* byte ranges of a page are legal, but two merges from different senders in the same
// epoch whose runs overlap are a data race and are flagged. Every protocol check consults the
// per-page protocol (DsmNode::page_pcp), so adapted clusters mixing implicit-invalidate and diff
// groups are checked per group.
//
// Wiring: construct one CoherenceOracle, point ClusterConfig::coherence_oracle at it, and every
// DsmNode attaches itself and reports transitions through DFIL_ORACLE hooks. The hooks are a
// null-pointer check when unused and compile out entirely with -DDFIL_DISABLE_COHERENCE_ORACLE,
// so benches pay nothing. Violations are recorded (capped) rather than aborting, so the fuzz
// driver can report the failing (scenario, seed) and keep sweeping.
#ifndef DFIL_DSM_COHERENCE_ORACLE_H_
#define DFIL_DSM_COHERENCE_ORACLE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/common/types.h"
#include "src/dsm/dsm_node.h"
#include "src/net/wire.h"

namespace dfil::dsm {

class CoherenceOracle {
 public:
  CoherenceOracle() = default;

  CoherenceOracle(const CoherenceOracle&) = delete;
  CoherenceOracle& operator=(const CoherenceOracle&) = delete;

  // Registers a node's DsmNode for live-state inspection. Called by DsmNode::AttachOracle; the
  // first attach fixes the layout and allocates the shadow region.
  void AttachNode(NodeId node, DsmNode* dsm);

  // --- Transition hooks (called from DsmNode via DFIL_ORACLE) ---
  // The owner served a read copy of `page`'s group to `to` (single-page or bulk path).
  void OnServeRead(NodeId server, NodeId to, PageId page);
  // The owner built an ownership-transfer reply for `to`; called before the server demotes.
  void OnServeTransfer(NodeId server, NodeId to, PageId page);
  // A lost transfer was re-served from the grant record (server must be a non-owner bystander).
  void OnServeGrantReserve(NodeId server, NodeId to, PageId page);
  // A read copy of `page`'s group was installed at `node` (state is kReadOnly).
  void OnInstallRead(NodeId node, PageId page);
  // `node` completed a write acquisition of `page`'s group (transfer install or in-place
  // upgrade); state is kReadWrite with ownership.
  void OnWriteGranted(NodeId node, PageId page);
  // `node` dropped its read copy of `page` on an explicit invalidation.
  void OnInvalidated(NodeId node, PageId page);
  // `node` discarded an in-flight install because the copy was invalidated before it landed.
  void OnDiscardedInstall(NodeId node, PageId page);
  // Diff protocol: `node` twinned `page` and promoted its non-owner copy to writable.
  void OnTwinWrite(NodeId node, PageId page);
  // Diff protocol: `node` installed a writable (unowned, twinned) copy of `page`'s group.
  void OnDiffWriteInstall(NodeId node, PageId page);
  // Diff protocol: home `home` merged `src`'s runs for `page` from its epoch-`epoch` flush.
  void OnDiffMergeApplied(NodeId home, NodeId src, PageId page, uint64_t epoch,
                          const std::vector<net::DiffRun>& runs);

  // Global sweep at a quiescent point: called by the barrier champion once every node has
  // contributed (and therefore drained its fetches and run AtSyncPoint).
  void AtQuiescentPoint();

  // Invoked once, the moment the first violation is recorded (the run keeps going afterwards).
  // Lets a harness snapshot flight-recorder rings at the failure point instead of at end of run,
  // when they may have wrapped past the interesting window. May be empty.
  std::function<void()> on_first_violation;

  // --- Results ---
  const std::vector<std::string>& violations() const { return violations_; }
  uint64_t checks_run() const { return checks_run_; }
  uint64_t quiescent_points() const { return quiescent_points_; }
  uint64_t installs_discarded() const { return installs_discarded_; }
  uint64_t version_of(PageId page) const { return version_[page]; }

 private:
  const PageEntry& Entry(NodeId node, PageId page) const;
  const std::byte* Frame(NodeId node, PageId page) const;
  // Folds the serving owner's frame into the shadow, bumping the version when the bytes changed
  // (the moment a private write burst becomes observable).
  void SyncShadow(NodeId owner, PageId page);
  bool FrameEqualsShadow(NodeId node, PageId page) const;
  void Violate(const std::string& what);

  const GlobalLayout* layout_ = nullptr;
  std::vector<DsmNode*> nodes_;
  std::vector<std::byte> shadow_;
  std::vector<uint64_t> version_;
  // version_[] value each node last installed, for the monotonicity check.
  std::vector<std::vector<uint64_t>> installed_version_;

  // Merge log for the overlapping-writer check: per page, the runs every sender merged in the
  // current epoch (older epochs are pruned as newer merges arrive — cross-epoch overlap is
  // ordinary sequential reuse, not a race).
  struct MergeRec {
    NodeId src;
    uint64_t epoch;
    std::vector<net::DiffRun> runs;
  };
  std::map<PageId, std::vector<MergeRec>> merge_log_;

  std::vector<std::string> violations_;
  uint64_t checks_run_ = 0;
  uint64_t quiescent_points_ = 0;
  uint64_t installs_discarded_ = 0;

  static constexpr size_t kMaxRecordedViolations = 64;
};

}  // namespace dfil::dsm

#endif  // DFIL_DSM_COHERENCE_ORACLE_H_
