#include "src/dsm/dsm_node.h"

#include <bit>
#include <cstring>
#include <utility>

#include "src/common/check.h"
#include "src/common/log.h"
#include "src/dsm/coherence_oracle.h"
#include "src/dsm/page_protocol.h"

// Coherence-oracle hook: a null-pointer check when no oracle is attached, nothing at all when
// compiled out (benches pay zero).
#ifndef DFIL_DISABLE_COHERENCE_ORACLE
#define DFIL_ORACLE(call)   \
  if (oracle_ == nullptr) { \
  } else /* NOLINT */       \
    oracle_->call
#else
#define DFIL_ORACLE(call) \
  do {                    \
  } while (false)
#endif

namespace dfil::dsm {
namespace {

constexpr uint8_t kReplyOk = 0;
constexpr uint8_t kReplyRedirect = 1;

struct RequestBody {
  PageId page;
  AccessMode mode;
  // Identifies the requester's fault, not just the requester: a grant record may only answer
  // retransmissions of the exact fault it served. A later fault by the same node that chases back
  // to a previous owner (ownership cycles under migratory) must NOT see the old grant's bytes.
  uint32_t fault_seq;
};

struct ReplyHeader {
  uint8_t status;
  NodeId owner_hint;  // redirect target, or the replying owner for data replies
  uint8_t flags;      // kReplyFlagOwnership | kReplyFlagDiff (bit 0 was `grants_ownership`, so
                      // single-writer replies are byte-identical to the pre-seam format)
  uint16_t npages;
};

struct PageBlockHeader {
  PageId page;
  uint64_t copyset;
};

// Bulk transfers: one request names a page run [first, first+count); the reply ships the pages
// the replier owns as read-only copies and lists the rest as misses, so it can be rebuilt
// idempotently from current state like every other page reply.
struct BulkRequestBody {
  PageId first;
  uint16_t count;
  AccessMode mode;
};

struct BulkReplyHeader {
  NodeId owner_hint;  // the replying node
  PageId first;       // first page of the requested run (names the flow arc on install)
  uint16_t npages;    // PageBlockHeader + page bytes follow
  uint16_t nmisses;   // then this many PageIds the replier does not own
};

// Rebalance page re-homing: a batch of per-page ownership requests, each carrying the
// requester's fault_seq so the grant machinery answers lost-reply retransmissions; the reply
// embeds one standard single-page transfer reply (BuildDataReply bytes) per served page and
// lists the rest as misses. Like bulk transfers it is rebuilt idempotently from current state
// and never defers — an unservable page is a miss, not a stall.
struct RehomeRequestHeader {
  uint16_t count;
};

struct RehomePageReq {
  PageId page;
  uint32_t fault_seq;
};

struct RehomeReplyHeader {
  uint16_t nserved;  // nserved x (PageId, uint32_t len, embedded reply payload) follow
  uint16_t nmisses;  // then nmisses x PageId
};

// Flow-arc name shared by the fault, serve and install sides ("p<page>" / "bulk p<first>").
std::string FlowName(PageId page) { return "p" + std::to_string(page); }
std::string BulkFlowName(PageId first) { return "bulk p" + std::to_string(first); }

uint64_t Bit(NodeId n) { return uint64_t{1} << n; }

}  // namespace

DsmNode::DsmNode(NodeId self, const GlobalLayout* layout, net::PacketEndpoint* packet,
                 const sim::CostModel* costs, const DsmConfig& config, Hooks hooks)
    : self_(self),
      layout_(layout),
      packet_(packet),
      costs_(costs),
      config_(config),
      hooks_(std::move(hooks)),
      replica_(layout->region_bytes()),
      table_(layout->num_pages()),
      fault_heat_(layout->num_pages()) {
  DFIL_CHECK(layout->sealed());
  DFIL_CHECK_LT(self_, 64) << "copysets are 64-bit masks";
  for (PageId p = 0; p < table_.size(); ++p) {
    PageEntry& e = table_[p];
    e.probable_owner = layout->InitialOwner(p);
    if (e.probable_owner == self_) {
      e.state = PageState::kReadWrite;
      e.owner = true;
    }
    // Grouped pages must share an initial owner, since they always move together.
    DFIL_CHECK_EQ(layout->InitialOwner(layout->GroupPagesOf(p).front()), e.probable_owner);
  }

  packet_->RegisterService(
      net::Service::kPageRequest,
      [this](NodeId src, net::WireReader body) { return ServePageRequest(src, body); },
      /*idempotent=*/true, TimeCategory::kDataTransfer);
  packet_->RegisterService(
      net::Service::kInvalidate,
      [this](NodeId src, net::WireReader body) { return ServeInvalidate(src, body); },
      /*idempotent=*/true, TimeCategory::kDataTransfer);
  packet_->RegisterService(
      net::Service::kBulkPageRequest,
      [this](NodeId src, net::WireReader body) { return ServeBulkRequest(src, body); },
      /*idempotent=*/true, TimeCategory::kDataTransfer);
  packet_->RegisterService(
      net::Service::kRehomePages,
      [this](NodeId src, net::WireReader body) { return ServeRehomeRequest(src, body); },
      /*idempotent=*/true, TimeCategory::kDataTransfer);
  packet_->RegisterService(
      net::Service::kDiffMerge,
      [this](NodeId src, net::WireReader body) {
        return diff_->ServeMerge(src, body, /*gated=*/false);
      },
      /*idempotent=*/true, TimeCategory::kDataTransfer);
  // Gated variant (coalescing sync-batch mode): same apply path, but the ack is elided — the
  // barrier done broadcast stands in for it. A separate service number keeps the stale path
  // (which returns before parsing any page) able to tell the two apart.
  packet_->RegisterService(
      net::Service::kDiffMergeGated,
      [this](NodeId src, net::WireReader body) {
        return diff_->ServeMerge(src, body, /*gated=*/true);
      },
      /*idempotent=*/true, TimeCategory::kDataTransfer);

  protocols_[static_cast<size_t>(Pcp::kMigratory)] = std::make_unique<MigratoryProtocol>(*this);
  protocols_[static_cast<size_t>(Pcp::kWriteInvalidate)] =
      std::make_unique<WriteInvalidateProtocol>(*this);
  protocols_[static_cast<size_t>(Pcp::kImplicitInvalidate)] =
      std::make_unique<ImplicitInvalidateProtocol>(*this);
  auto diff = std::make_unique<DiffProtocol>(*this);
  diff_ = diff.get();
  protocols_[static_cast<size_t>(Pcp::kDiff)] = std::move(diff);
  if (config_.adapt_protocols) {
    DFIL_CHECK(config_.pcp == Pcp::kImplicitInvalidate)
        << "protocol adaptation switches groups between implicit-invalidate and diff; the base "
           "PCP must be implicit-invalidate";
    // The diff flush runs first so twinned pages are encoded before any copy sweep.
    active_protocols_ = {diff_, protocols_[static_cast<size_t>(Pcp::kImplicitInvalidate)].get()};
  } else {
    active_protocols_ = {protocols_[static_cast<size_t>(config_.pcp)].get()};
  }
}

DsmNode::~DsmNode() = default;

Pcp DsmNode::page_pcp(PageId page) const {
  if (!config_.adapt_protocols) {
    return config_.pcp;
  }
  const auto it = adapt_.find(GroupRoot(page));
  return it == adapt_.end() ? Pcp::kImplicitInvalidate : it->second.mode;
}

void DsmNode::AttachOracle(CoherenceOracle* oracle) {
  oracle_ = oracle;
#ifndef DFIL_DISABLE_COHERENCE_ORACLE
  if (oracle_ != nullptr) {
    oracle_->AttachNode(self_, this);
  }
#endif
}

std::byte* DsmNode::TryAccess(GlobalAddr addr, size_t len, AccessMode mode) {
  DFIL_DCHECK(len > 0);
  DFIL_DCHECK(addr + len <= replica_.size());
  const PageId first = layout_->PageOf(addr);
  const PageId last = layout_->PageOf(addr + len - 1);
  for (PageId p = first; p <= last; ++p) {
    if (!PagePresent(table_[p], mode)) {
      return nullptr;
    }
  }
  for (PageId p = first; p <= last; ++p) {
    NotePageUsed(table_[p]);
  }
  return replica_.data() + addr;
}

std::byte* DsmNode::Access(GlobalAddr addr, size_t len, AccessMode mode) {
  for (;;) {
    const PageId first = layout_->PageOf(addr);
    const PageId last = layout_->PageOf(addr + len - 1);
    PageId missing = kNoPage;
    for (PageId p = first; p <= last; ++p) {
      if (!PagePresent(table_[p], mode)) {
        missing = p;
        break;
      }
    }
    if (missing == kNoPage) {
      for (PageId p = first; p <= last; ++p) {
        NotePageUsed(table_[p]);
      }
      return replica_.data() + addr;
    }
    FaultAndWait(missing, mode);
  }
}

void DsmNode::FaultAndWait(PageId page, AccessMode mode) {
  PageEntry& e = table_[page];
  if (mode == AccessMode::kRead) {
    stats_.read_faults++;
  } else {
    stats_.write_faults++;
  }
  fault_heat_[page]++;
  if (config_.adapt_protocols && mode == AccessMode::kWrite && !e.owner) {
    NoteAdaptTraffic(page);
  }
  hooks_.charge(TimeCategory::kDataTransfer, costs_->fault_handle);
  DFIL_LOG(kDebug, "dsm") << "node " << self_ << " " << (mode == AccessMode::kRead ? "r" : "w")
                          << "-fault page " << page << " @" << ToMilliseconds(hooks_.clock())
                          << "ms hint=" << e.probable_owner << (e.fetching ? " (in-flight)" : "");
  if (config_.prefetch_detector) {
    NoteFaultForDetector(page, mode);
  }
  if (PagePresent(e, mode)) {
    // The fault-handling charge can dispatch pending events (e.g. the last invalidation ack of an
    // in-flight upgrade), completing the fetch before we pick a branch below. Acting on the stale
    // pre-charge view would re-request a page we already hold — from ourselves.
    return;
  }

  bool initiated = false;
  if (!e.fetching) {
    // The protocol decides what a fresh fault does: demand-fetch through the owner directory
    // (default), upgrade in place (write-invalidate owners), or twin the copy locally (diff).
    const FaultResult r = mode == AccessMode::kWrite ? proto(page).OnWriteFault(page)
                                                     : proto(page).OnReadFault(page);
    if (r == FaultResult::kSatisfied) {
      return;  // handled without a fetch; the access proceeds immediately
    }
    initiated = true;
  }
  // If a fetch is already outstanding (even a weaker read fetch), simply wait: Access() rechecks
  // on wake-up and re-faults with the stronger mode if still insufficient.

  // Let the engines start a replacement server thread BEFORE this thread is queued as a waiter:
  // the spawn charges time and may yield, and the page could arrive during that yield — waking a
  // queued-but-still-running thread would corrupt the scheduler.
  if (hooks_.pre_block) {
    hooks_.pre_block(page);
  }
  if (PagePresent(e, mode) || !e.fetching) {
    // Resolved (or the fetch settled with a weaker mode) while the engines reacted; Access()
    // re-checks and re-faults as needed.
    return;
  }
  threads::ServerThread* t = hooks_.current_thread();
  DFIL_CHECK(t != nullptr) << "DSM fault outside a server thread";
  if (hooks_.trace_fault_begin) {
    hooks_.trace_fault_begin(page);
  }
  if (initiated && tracer() != nullptr && e.trace_id != 0) {
    // Opens the flow arc inside the fault span (only the thread that started the fetch; later
    // waiters join the same fetch without emitting a second 's').
    tracer()->Flow(kFlowStart, "dsm", FlowName(page), e.trace_id);
  }
  t->set_state(threads::ThreadState::kBlocked);
  t->set_block_reason("page " + std::to_string(page));
  e.waiters.PushBack(t);
  hooks_.block_current();
  if (hooks_.trace_fault_end) {
    hooks_.trace_fault_end();
  }
}

void DsmNode::StartOwnerUpgrade(PageId page) {
  // We own the page but downgraded to read-only for other readers; invalidate their copies and
  // upgrade in place — no page request needed.
  PageEntry& e = table_[page];
  e.fetching = true;
  e.fetch_mode = AccessMode::kWrite;
  ++pending_fetches_;
  e.trace_id = hooks_.tracer != nullptr ? hooks_.tracer->NewTraceId() : 0;
  const uint64_t targets = e.copyset & ~Bit(self_);
  TraceContext trace_ctx(hooks_.tracer, e.trace_id);
  StartInvalidations(page, targets);
}

void DsmNode::StartInvalidations(PageId page, uint64_t targets) {
  PageEntry& e = table_[page];
  e.pending_invalidate_acks = std::popcount(targets);
  if (e.pending_invalidate_acks == 0) {
    FinishFetch(page, PageState::kReadWrite, /*ownership=*/true);
    return;
  }
  for (NodeId n = 0; n < 64; ++n) {
    if ((targets & Bit(n)) == 0) {
      continue;
    }
    net::WireWriter w;
    w.Put(page);
    stats_.invalidations_sent++;
    packet_->SendRequest(
        n, net::Service::kInvalidate, w.Take(),
        [this, page](net::Payload) {
          PageEntry& entry = table_[page];
          DFIL_CHECK_GT(entry.pending_invalidate_acks, 0);
          if (--entry.pending_invalidate_acks == 0) {
            FinishFetch(page, PageState::kReadWrite, /*ownership=*/true);
          }
        },
        TimeCategory::kDataTransfer);
  }
}

void DsmNode::SendPageRequest(PageId page, AccessMode mode, NodeId target) {
  DFIL_CHECK_NE(target, self_) << "owner hint points at self on a fault (page " << page << ")";
  stats_.single_page_requests++;
  net::WireWriter w;
  w.Put(RequestBody{page, mode, table_[page].fetch_seq});
  packet_->SendRequest(
      target, net::Service::kPageRequest, w.Take(),
      [this, page, mode, target](net::Payload reply) {
        (void)target;
        OnPageReply(page, mode, std::move(reply));
      },
      TimeCategory::kDataTransfer);
}

std::optional<net::Payload> DsmNode::ServePageRequest(NodeId src, net::WireReader body) {
  const auto req = body.Get<RequestBody>();
  PageEntry& e = table_[req.page];
  // The serve span plus a flow step tie this handler into the faulting node's arc (the packet
  // layer put the request's trace id in our current context).
  TraceSpan serve_span(hooks_.tracer, "dsm", "serve p", req.page);
  if (NodeTracer* tr = tracer(); tr != nullptr) {
    tr->Flow(kFlowStep, "dsm", FlowName(req.page), tr->current());
  }

  if (e.granted_to == src && e.grant_seq == req.fault_seq && e.state == PageState::kInvalid &&
      !e.owner) {
    // A retransmission of the exact fault our last transfer answered: the requester never saw the
    // reply (it was lost), so re-serve the identical transfer from the stale frame. This keeps
    // page replies unbuffered yet loss-safe. Two subtleties:
    //  - it must come BEFORE the in-transition defer: after granting we may re-fault on this page
    //    ourselves, and our own fetch then chases a hint chain that runs through the requester —
    //    deferring here while the requester defers us (both mid-fetch) deadlocks the pair;
    //  - it must match the fault (grant_seq), not just the node: under migratory, ownership
    //    cycles, and a LATER fault by the same node can chase back to us mid-refetch — serving
    //    the old grant's bytes to that fault would hand out stale data (and a second owner).
    hooks_.charge(TimeCategory::kDataTransfer, costs_->page_service);
    stats_.page_requests_served++;
    stats_.grant_reserves++;
    DFIL_ORACLE(OnServeGrantReserve(self_, src, req.page));
    return BuildDataReply(req.page, /*transfer_ownership=*/true,
                          /*include_copyset=*/proto(req.page).TracksCopyset(),
                          /*from_grant=*/true);
  }

  if (e.fetching) {
    // This page table entry is in transition: either we are mid-upgrade (invalidation acks
    // outstanding — serving a transfer now would create a second owner), or we are fetching and
    // our chase hint may point right back at the requester. Ignore the request; the requester's
    // retransmission retries once our fetch settles (the paper's deferred-servicing pattern).
    stats_.fetch_deferrals++;
    if (NodeTracer* tr = tracer(); tr != nullptr) {
      tr->Instant("dsm", "defer_fetch " + FlowName(req.page));
    }
    return std::nullopt;
  }

  if (e.owner) {
    if (e.granted_to == src && e.grant_seq == req.fault_seq) {
      // A delayed duplicate of a transfer request we already answered, arriving after we
      // re-acquired the page. The requester is long done with that fault (had it still been
      // waiting, ownership could never have chased back through it to us), so serving a fresh
      // transfer here would demote us and orphan the page: the requester drops the unexpected
      // reply and nobody is left owning it. Grant records persist across re-acquisition
      // (FinishFetch keeps them) precisely so this duplicate is recognizable.
      stats_.stale_transfer_dups_ignored++;
      if (NodeTracer* tr = tracer(); tr != nullptr) {
        tr->Instant("dsm", "stale_dup " + FlowName(req.page));
      }
      return std::nullopt;
    }
    if (e.pending_use) {
      // The page just arrived for our own blocked faulters and none has run yet. Serving now —
      // even a read copy, which under write-invalidate demotes us and turns the blocked write
      // into an upgrade round — restarts their fault from scratch; with service latency above
      // the Mirage window that regresses into a livelock where no writer ever completes an
      // access. Ignore the request; the retransmission arrives after the waiters have run.
      stats_.use_deferrals++;
      if (NodeTracer* tr = tracer(); tr != nullptr) {
        tr->Instant("dsm", "defer_use " + FlowName(req.page));
      }
      return std::nullopt;
    }
    if (proto(req.page).TransfersOwnership(req.mode) && config_.mirage_window > 0 &&
        hooks_.clock() < e.hold_until) {
      // Mirage hold window: ignore the request; the requester's retransmission will retry.
      stats_.mirage_deferrals++;
      if (NodeTracer* tr = tracer(); tr != nullptr) {
        tr->Instant("dsm", "defer_mirage " + FlowName(req.page));
      }
      return std::nullopt;
    }
    hooks_.charge(TimeCategory::kDataTransfer, costs_->page_service);
    stats_.page_requests_served++;
    return proto(req.page).OnRemoteRequest(src, req.page, req.mode, req.fault_seq);
  }

  // Not the owner: redirect the requester along the probable-owner chain.
  hooks_.charge(TimeCategory::kDataTransfer, costs_->page_redirect);
  stats_.page_forwards++;
  net::WireWriter w;
  w.Put(ReplyHeader{kReplyRedirect, e.probable_owner, 0, 0});
  return w.Take();
}

net::Payload DsmNode::ServeReadCopy(NodeId src, PageId page, uint8_t extra_flags) {
  // Read copy. A copyset-tracking owner (write-invalidate) downgrades and tracks the copy;
  // otherwise the copy is untracked — it dies at the reader's next sync point
  // (implicit-invalidate) or is merged back by diffs (diff).
  if (proto(page).TracksCopyset()) {
    for (PageId p : layout_->GroupPagesOf(page)) {
      table_[p].state = PageState::kReadOnly;
      table_[p].copyset |= Bit(src);
    }
  }
  DFIL_ORACLE(OnServeRead(self_, src, page));
  return BuildDataReply(page, /*transfer_ownership=*/false, /*include_copyset=*/false,
                        /*from_grant=*/false, extra_flags);
}

net::Payload DsmNode::ServeTransfer(NodeId src, PageId page, uint32_t fault_seq) {
  // Ownership transfer (migratory always; write faults otherwise).
  DFIL_LOG(kDebug, "dsm") << "node " << self_ << " transfers page " << page << " -> " << src
                          << " @" << ToMilliseconds(hooks_.clock()) << "ms";
  if (config_.adapt_protocols) {
    NoteAdaptTraffic(page);  // write transfers served are the owner's half of the ping-pong count
  }
  net::Payload reply = BuildDataReply(page, /*transfer_ownership=*/true,
                                      /*include_copyset=*/proto(page).TracksCopyset());
  DFIL_ORACLE(OnServeTransfer(self_, src, page));
  for (PageId p : layout_->GroupPagesOf(page)) {
    PageEntry& ge = table_[p];
    ge.granted_to = src;
    ge.grant_seq = fault_seq;
    ge.grant_copyset = ge.copyset;
    ge.state = PageState::kInvalid;
    ge.owner = false;
    ge.copyset = 0;
    ge.probable_owner = src;
  }
  return reply;
}

net::Payload DsmNode::BuildDataReply(PageId page, bool transfer_ownership, bool include_copyset,
                                     bool from_grant, uint8_t extra_flags) {
  const std::vector<PageId> group = layout_->GroupPagesOf(page);
  const uint8_t flags =
      static_cast<uint8_t>((transfer_ownership ? kReplyFlagOwnership : 0) | extra_flags);
  net::WireWriter w;
  w.Put(ReplyHeader{kReplyOk, self_, flags, static_cast<uint16_t>(group.size())});
  const size_t ps = layout_->page_size();
  for (PageId p : group) {
    const PageEntry& e = table_[p];
    const uint64_t copyset = include_copyset ? (from_grant ? e.grant_copyset : e.copyset) : 0;
    w.Put(PageBlockHeader{p, copyset});
    w.PutBytes(replica_.data() + (static_cast<GlobalAddr>(p) << layout_->page_shift()), ps);
  }
  stats_.page_data_bytes += group.size() * ps;
  return w.Take();
}

void DsmNode::OnPageReply(PageId page, AccessMode mode, net::Payload reply) {
  net::WireReader r(reply);
  const auto h = r.Get<ReplyHeader>();
  PageEntry& e = table_[page];
  DFIL_CHECK(e.fetching) << "page reply for a page we are not fetching";

  if (h.status == kReplyRedirect) {
    DFIL_CHECK_NE(h.owner_hint, self_) << "redirected to self for page " << page;
    // One hop of the probable-owner chase: a step in the fault's flow arc (the redirect reply's
    // trace id is our current context, so the re-sent request inherits it).
    TraceSpan chase_span(hooks_.tracer, "dsm", "chase p", page);
    if (NodeTracer* tr = tracer(); tr != nullptr) {
      tr->Flow(kFlowStep, "dsm", FlowName(page), tr->current());
    }
    for (PageId p : layout_->GroupPagesOf(page)) {
      table_[p].probable_owner = h.owner_hint;
    }
    SendPageRequest(page, mode, h.owner_hint);
    return;
  }

  // Install the data for every page in the reply (the whole group).
  const size_t ps = layout_->page_size();
  uint64_t copyset = 0;
  for (uint16_t i = 0; i < h.npages; ++i) {
    const auto block = r.Get<PageBlockHeader>();
    r.GetBytes(replica_.data() + (static_cast<GlobalAddr>(block.page) << layout_->page_shift()),
               ps);
    copyset |= block.copyset;
    hooks_.charge(TimeCategory::kDataTransfer, costs_->page_install);
  }

  if ((h.flags & kReplyFlagOwnership) == 0 && e.discard_install) {
    // The copy was invalidated while the bytes were in flight: the owner served us, then granted
    // the page to a writer whose invalidation raced ahead of our reply. Installing now would
    // resurrect stale bytes as a read-only copy the owner no longer tracks. Drop the install;
    // waiters re-fault through Access() and chase the (updated) hint.
    for (PageId p : layout_->GroupPagesOf(page)) {
      table_[p].probable_owner = h.owner_hint;
    }
    stats_.discarded_installs++;
    DFIL_ORACLE(OnDiscardedInstall(self_, page));
    FinishFetch(page, PageState::kInvalid, /*ownership=*/false);
    return;
  }

  if ((h.flags & kReplyFlagOwnership) != 0) {
    if (mode == AccessMode::kWrite && proto(page).OnOwnershipInstall(page, copyset)) {
      return;  // the protocol continues the fetch itself (write-invalidate's invalidation round)
    }
    FinishFetch(page, PageState::kReadWrite, /*ownership=*/true);
    return;
  }

  for (PageId p : layout_->GroupPagesOf(page)) {
    table_[p].probable_owner = h.owner_hint;
  }
  if ((h.flags & kReplyFlagDiff) != 0 && mode == AccessMode::kWrite) {
    // A diff-tagged copy answering a write fault: twin it and install it writable in place, so
    // the write proceeds without an ownership transfer.
    diff_->InstallWritableCopy(page);
    return;
  }
  FinishFetch(page, PageState::kReadOnly, /*ownership=*/false,
              /*diff_copy=*/(h.flags & kReplyFlagDiff) != 0);
}

void DsmNode::FinishFetch(PageId page, PageState new_state, bool ownership, bool diff_copy) {
  // The arc terminates here whether the fetch installed or was discarded (a re-fault starts a new
  // arc with a fresh id).
  TraceSpan install_span(hooks_.tracer, "dsm",
                         new_state == PageState::kInvalid ? "discard p" : "install p", page);
  if (NodeTracer* tr = tracer(); tr != nullptr && table_[page].trace_id != 0) {
    tr->Flow(kFlowEnd, "dsm", FlowName(page), table_[page].trace_id);
  }
  DFIL_LOG(kDebug, "dsm") << "node " << self_ << " installs page " << page
                          << (ownership ? " owned" : " copy") << " @"
                          << ToMilliseconds(hooks_.clock()) << "ms waiters="
                          << (table_[page].waiters.empty() ? "no" : "yes");
  for (PageId p : layout_->GroupPagesOf(page)) {
    PageEntry& e = table_[p];
    NotePageDiscarded(e);  // a demand fetch replacing an untouched prefetched copy = waste
    e.state = new_state;
    e.owner = ownership;
    e.fetching = false;
    e.discard_install = false;
    e.pending_invalidate_acks = 0;
    e.trace_id = 0;
    e.diff_copy = new_state == PageState::kInvalid ? false : diff_copy;
    e.hold_until = hooks_.clock() + config_.mirage_window;
    // The grant record (granted_to/grant_seq/grant_copyset) deliberately survives this fetch:
    // a delayed duplicate of the transfer request the grant answered can still arrive after we
    // re-acquire the page, and ServePageRequest needs the record to recognize (and ignore) it.
    // Keeping it is safe — the re-serve path additionally requires state kInvalid and !owner.
    if (ownership) {
      e.probable_owner = self_;
      e.copyset = 0;
    }
    // Use-once progress guarantee: a page installed for blocked faulters must not be served away
    // before at least one of them runs. The waiters are runnable from this instant, but install
    // and service charges can push this node's clock past the arrival time of the next remote
    // request, in which case the event loop dispatches that steal first — with service latency
    // above the Mirage window, two writers then hand the page back and forth forever without
    // either faulting thread completing its access. Unlike `fetching`, the flag clears through
    // local scheduling alone (the first woken waiter's access), so deferring on it cannot
    // deadlock. (Assignment, not |=: a fetch that settles with no waiters heals a stale flag.)
    e.pending_use = !e.waiters.empty() && new_state != PageState::kInvalid;
    while (threads::ServerThread* t = e.waiters.PopFront()) {
      hooks_.wake(t);
    }
  }
  if (config_.adapt_protocols && new_state != PageState::kInvalid) {
    // The reply's diff tag is authoritative: the serving owner decided the group's mode, and the
    // requester's adapter view follows it so later faults twin (or demand-fetch) consistently.
    AdaptState& st = adapt_[GroupRoot(page)];
    st.mode = diff_copy ? Pcp::kDiff : Pcp::kImplicitInvalidate;
    st.calm = 0;
  }
  if (ownership && new_state == PageState::kReadWrite) {
    DFIL_ORACLE(OnWriteGranted(self_, page));
  } else if (new_state == PageState::kReadWrite) {
    DFIL_ORACLE(OnDiffWriteInstall(self_, page));
  } else if (new_state == PageState::kReadOnly) {
    DFIL_ORACLE(OnInstallRead(self_, page));
  }
  DFIL_CHECK_GT(pending_fetches_, 0);
  if (--pending_fetches_ == 0 && hooks_.fetches_drained) {
    hooks_.fetches_drained();
  }
}

// --- Bulk transfers / prefetching ------------------------------------------------------------

void DsmNode::NoteFaultForDetector(PageId page, AccessMode mode) {
  if (mode != AccessMode::kRead || config_.pcp == Pcp::kMigratory ||
      layout_->GroupOf(page) != kNoGroup) {
    return;
  }
  if (page == last_fault_page_) {
    return;  // a second thread faulting on the in-flight page is not new pattern evidence
  }
  fault_run_len_ = (last_fault_page_ != kNoPage && page == last_fault_page_ + 1)
                       ? fault_run_len_ + 1
                       : 1;
  last_fault_page_ = page;
  if (fault_run_len_ >= config_.prefetch_min_run) {
    Prefetch(page + 1, config_.prefetch_degree, AccessMode::kRead);
  }
}

void DsmNode::Prefetch(PageId first, int count, AccessMode mode) {
  // Read replication only: a write needs an ownership transfer, and prefetching a read copy
  // first would double the traffic. Migratory moves ownership on every fetch, so it is excluded
  // entirely (the correctness constraint on bulk reads).
  if (mode != AccessMode::kRead || config_.pcp == Pcp::kMigratory || count <= 0) {
    return;
  }
  const uint64_t clamped_end =
      std::min<uint64_t>(static_cast<uint64_t>(first) + static_cast<uint64_t>(count),
                         table_.size());
  if (first >= clamped_end) {
    return;
  }
  if (NodeTracer* tr = tracer(); tr != nullptr) {
    tr->Instant("dsm", "prefetch p" + std::to_string(first) + "+" +
                           std::to_string(clamped_end - first));
  }
  StartBulkFetch(first, static_cast<int>(clamped_end - first));
}

void DsmNode::StartBulkFetch(PageId first, int count) {
  auto eligible = [&](PageId p) {
    const PageEntry& e = table_[p];
    return e.state == PageState::kInvalid && !e.fetching && !e.owner &&
           e.probable_owner != self_ && layout_->GroupOf(p) == kNoGroup;
  };
  const PageId end = first + static_cast<PageId>(count);
  PageId p = first;
  while (p < end) {
    if (!eligible(p)) {
      ++p;
      continue;
    }
    // Extend a maximal run of eligible pages sharing a probable-owner hint, capped at
    // max_bulk_pages; hint changes split the run so replies carry few misses.
    const NodeId target = table_[p].probable_owner;
    PageId run_end = p + 1;
    while (run_end < end && run_end - p < static_cast<PageId>(config_.max_bulk_pages) &&
           eligible(run_end) && table_[run_end].probable_owner == target) {
      ++run_end;
    }
    for (PageId q = p; q < run_end; ++q) {
      PageEntry& e = table_[q];
      e.fetching = true;
      e.fetch_mode = AccessMode::kRead;
      ++pending_fetches_;
    }
    hooks_.charge(TimeCategory::kDataTransfer, costs_->prefetch_issue);
    SendBulkRequest(p, static_cast<uint16_t>(run_end - p), target);
    p = run_end;
  }
}

void DsmNode::SendBulkRequest(PageId first, uint16_t count, NodeId target) {
  DFIL_CHECK_NE(target, self_);
  stats_.bulk_requests++;
  stats_.bulk_pages_requested += count;
  // Each bulk run gets its own arc: 's' here, 't' in the remote serve, 'f' at install.
  const uint64_t flow = hooks_.tracer != nullptr ? hooks_.tracer->NewTraceId() : 0;
  TraceSpan span(hooks_.tracer, "dsm", "bulk_req p", first);
  if (NodeTracer* tr = tracer(); tr != nullptr) {
    tr->Flow(kFlowStart, "dsm", BulkFlowName(first), flow);
  }
  TraceContext trace_ctx(hooks_.tracer, flow);
  net::WireWriter w;
  w.Put(BulkRequestBody{first, count, AccessMode::kRead});
  // Upper bound on the reply: every requested page served full-size. Sizes the RTT estimator's
  // serialization floor so a long bulk reply is never mistaken for a loss.
  const size_t expected_reply =
      sizeof(BulkReplyHeader) + count * (sizeof(PageBlockHeader) + layout_->page_size());
  packet_->SendRequest(
      target, net::Service::kBulkPageRequest, w.Take(),
      [this](net::Payload reply) { OnBulkReply(std::move(reply)); },
      TimeCategory::kDataTransfer, expected_reply);
}

std::optional<net::Payload> DsmNode::ServeBulkRequest(NodeId src, net::WireReader body) {
  const auto req = body.Get<BulkRequestBody>();
  TraceSpan serve_span(hooks_.tracer, "dsm", "bulk_serve p", req.first);
  if (NodeTracer* tr = tracer(); tr != nullptr) {
    tr->Flow(kFlowStep, "dsm", BulkFlowName(req.first), tr->current());
  }
  // Served idempotently from current state, like single-page replies: pages this node owns ship
  // as read-only copies, everything else is reported back as a miss for the requester to re-fault
  // through the owner-forwarding directory. Never defers and never transfers ownership, so
  // in-flux entries, the Mirage window, and the grant record are untouched.
  std::vector<PageId> hits;
  std::vector<PageId> misses;
  const uint64_t end =
      std::min<uint64_t>(static_cast<uint64_t>(req.first) + req.count, table_.size());
  for (uint64_t p64 = req.first; p64 < end; ++p64) {
    const PageId p = static_cast<PageId>(p64);
    const PageEntry& e = table_[p];
    const bool servable = e.owner && !e.fetching && !e.pending_use &&
                          page_pcp(p) != Pcp::kMigratory && layout_->GroupOf(p) == kNoGroup;
    (servable ? hits : misses).push_back(p);
  }
  if (!hits.empty()) {
    hooks_.charge(TimeCategory::kDataTransfer,
                  costs_->page_service +
                      costs_->bulk_service_extra_page * static_cast<SimTime>(hits.size() - 1));
    stats_.bulk_pages_served += hits.size();
  }
  net::WireWriter w;
  w.Put(BulkReplyHeader{self_, req.first, static_cast<uint16_t>(hits.size()),
                        static_cast<uint16_t>(misses.size())});
  const size_t ps = layout_->page_size();
  for (PageId p : hits) {
    PageEntry& e = table_[p];
    if (proto(p).TracksCopyset()) {
      e.state = PageState::kReadOnly;  // owner downgrades and tracks the copy, as for any read
      e.copyset |= Bit(src);
    }
    // Bit 0 of the copyset field doubles as the diff tag in coalescing sync-batch mode: the home
    // marks served diff-mode pages so a flush-set bulk refetch installs twin-eligible copies.
    // Only set when sync-batch is on, so off-mode bulk replies stay byte-identical.
    const uint64_t diff_tag =
        (config_.coalesce_sync_batch && page_pcp(p) == Pcp::kDiff) ? 1 : 0;
    w.Put(PageBlockHeader{p, diff_tag});
    w.PutBytes(replica_.data() + (static_cast<GlobalAddr>(p) << layout_->page_shift()), ps);
    DFIL_ORACLE(OnServeRead(self_, src, p));
  }
  stats_.page_data_bytes += hits.size() * ps;
  for (PageId p : misses) {
    w.Put(p);
  }
  return w.Take();
}

void DsmNode::OnBulkReply(net::Payload reply) {
  net::WireReader r(reply);
  const auto h = r.Get<BulkReplyHeader>();
  TraceSpan install_span(hooks_.tracer, "dsm", "bulk_install p", h.first);
  if (NodeTracer* tr = tracer(); tr != nullptr) {
    tr->Flow(kFlowEnd, "dsm", BulkFlowName(h.first), tr->current());
    if (h.nmisses > 0) {
      tr->Instant("dsm", "bulk_miss p" + std::to_string(h.first) + " x" +
                             std::to_string(h.nmisses));
    }
  }
  const size_t ps = layout_->page_size();
  for (uint16_t i = 0; i < h.npages; ++i) {
    const auto block = r.Get<PageBlockHeader>();
    r.GetBytes(replica_.data() + (static_cast<GlobalAddr>(block.page) << layout_->page_shift()),
               ps);
    hooks_.charge(TimeCategory::kDataTransfer, costs_->page_install);
    FinishBulkPage(block.page, /*installed=*/true, h.owner_hint,
                   /*diff_copy=*/(block.copyset & 1) != 0);
  }
  for (uint16_t i = 0; i < h.nmisses; ++i) {
    const PageId p = r.Get<PageId>();
    stats_.bulk_misses++;
    FinishBulkPage(p, /*installed=*/false, h.owner_hint);
  }
}

void DsmNode::FinishBulkPage(PageId page, bool installed, NodeId owner_hint, bool diff_copy) {
  PageEntry& e = table_[page];
  DFIL_CHECK(e.fetching) << "bulk reply for page " << page << " we are not fetching";
  e.fetching = false;
  if (installed && e.discard_install) {
    // Invalidated while the bulk bytes were in flight; installing would resurrect a stale
    // untracked copy. Treat it as a miss: waiters re-fault, a pure prefetch just lapses.
    installed = false;
    stats_.discarded_installs++;
    DFIL_ORACLE(OnDiscardedInstall(self_, page));
  }
  e.discard_install = false;
  bool had_waiters = false;
  if (installed) {
    e.state = PageState::kReadOnly;
    e.owner = false;
    // In coalescing sync-batch mode the bulk block's diff tag carries through, so a write fault
    // on the installed copy twins in place. Otherwise bulk replies carry no tag and the copy
    // installs untagged even when the requester's adapter view says diff: a later write fault
    // then demand-fetches a properly tagged copy (one extra round trip, never a wrong twin).
    e.diff_copy = diff_copy;
    e.probable_owner = owner_hint;
    e.hold_until = hooks_.clock() + config_.mirage_window;
    // Any grant record survives (see FinishFetch); harmless here since state is now kReadOnly.
    stats_.prefetched_pages++;
    DFIL_ORACLE(OnInstallRead(self_, page));
    while (threads::ServerThread* t = e.waiters.PopFront()) {
      had_waiters = true;
      hooks_.wake(t);
    }
    if (!had_waiters) {
      // Nobody demanded this page yet; track it so an untouched death can be reported as waste.
      e.prefetched_unused = true;
    }
  } else {
    // Miss: the replier does not own this page (or it is in flux there). Waiters re-fault through
    // the single-page owner-forwarding path from their Access() loop; a pure prefetch just lapses.
    while (threads::ServerThread* t = e.waiters.PopFront()) {
      hooks_.wake(t);
    }
  }
  DFIL_CHECK_GT(pending_fetches_, 0);
  if (--pending_fetches_ == 0 && hooks_.fetches_drained) {
    hooks_.fetches_drained();
  }
}

// --- Rebalance page re-homing ----------------------------------------------------------------

void DsmNode::RequestRehome(const std::vector<PageId>& pages, NodeId source) {
  if (source == self_ || source == kNoNode) {
    return;
  }
  std::vector<std::pair<PageId, uint32_t>> batch;
  auto flush = [&] {
    if (!batch.empty()) {
      SendRehomeRequest(batch, source);
      batch.clear();
    }
  };
  for (PageId p : pages) {
    if (static_cast<size_t>(p) >= table_.size()) {
      continue;
    }
    PageEntry& e = table_[p];
    // Owned/fetching pages need no re-home; grouped pages move as a unit through the normal
    // fault path; the diff protocol never transfers ownership at all.
    if (e.owner || e.fetching || layout_->GroupOf(p) != kNoGroup || page_pcp(p) == Pcp::kDiff) {
      continue;
    }
    e.fetching = true;
    e.fetch_mode = AccessMode::kWrite;
    ++e.fetch_seq;  // a fresh fault, exactly like StartDemandFetch
    ++pending_fetches_;
    batch.emplace_back(p, e.fetch_seq);
    if (batch.size() >= static_cast<size_t>(config_.max_bulk_pages)) {
      flush();
    }
  }
  flush();
}

void DsmNode::SendRehomeRequest(const std::vector<std::pair<PageId, uint32_t>>& pages,
                                NodeId source) {
  DFIL_CHECK_NE(source, self_);
  stats_.rehome_requests++;
  stats_.rehome_pages_requested += pages.size();
  if (NodeTracer* tr = tracer(); tr != nullptr) {
    tr->InstantOnTrack(kRebalanceTid, "dsm",
                       "rebalance rehome_req p" + std::to_string(pages.front().first) + " x" +
                           std::to_string(pages.size()) + " <- n" + std::to_string(source));
  }
  net::WireWriter w;
  w.Put(RehomeRequestHeader{static_cast<uint16_t>(pages.size())});
  for (const auto& [p, seq] : pages) {
    w.Put(RehomePageReq{p, seq});
  }
  // Worst case every page ships full-size, flooring the RTT estimator like a bulk reply.
  const size_t expected_reply =
      sizeof(RehomeReplyHeader) +
      pages.size() * (sizeof(PageId) + sizeof(uint32_t) + sizeof(ReplyHeader) +
                      sizeof(PageBlockHeader) + layout_->page_size());
  packet_->SendRequest(
      source, net::Service::kRehomePages, w.Take(),
      [this](net::Payload reply) { OnRehomeReply(std::move(reply)); },
      TimeCategory::kDataTransfer, expected_reply);
}

std::optional<net::Payload> DsmNode::ServeRehomeRequest(NodeId src, net::WireReader body) {
  const auto h = body.Get<RehomeRequestHeader>();
  TraceSpan serve_span(hooks_.tracer, "dsm", "rehome_serve x", h.count);
  struct Served {
    PageId page;
    net::Payload payload;
  };
  std::vector<Served> served;
  std::vector<PageId> misses;
  for (uint16_t i = 0; i < h.count; ++i) {
    const auto preq = body.Get<RehomePageReq>();
    if (static_cast<size_t>(preq.page) >= table_.size()) {
      misses.push_back(preq.page);
      continue;
    }
    PageEntry& e = table_[preq.page];
    if (e.granted_to == src && e.grant_seq == preq.fault_seq &&
        e.state == PageState::kInvalid && !e.owner) {
      // A retransmission of the exact fault our last transfer answered (the reply was lost);
      // re-serve the identical transfer from the stale frame, as ServePageRequest does.
      stats_.grant_reserves++;
      DFIL_ORACLE(OnServeGrantReserve(self_, src, preq.page));
      served.push_back({preq.page,
                        BuildDataReply(preq.page, /*transfer_ownership=*/true,
                                       /*include_copyset=*/proto(preq.page).TracksCopyset(),
                                       /*from_grant=*/true)});
      continue;
    }
    // Unservable pages are misses, never deferrals: the batch reply must not stall on one page
    // in flux, and a missed page simply stays home until a demand fault moves it.
    const bool servable = e.owner && !e.fetching && !e.pending_use &&
                          page_pcp(preq.page) != Pcp::kDiff &&
                          layout_->GroupOf(preq.page) == kNoGroup &&
                          !(config_.mirage_window > 0 && hooks_.clock() < e.hold_until);
    if (!servable) {
      stats_.rehome_misses_served++;
      misses.push_back(preq.page);
      continue;
    }
    std::optional<net::Payload> reply =
        proto(preq.page).OnRemoteRequest(src, preq.page, AccessMode::kWrite, preq.fault_seq);
    if (!reply.has_value()) {
      stats_.rehome_misses_served++;
      misses.push_back(preq.page);
      continue;
    }
    served.push_back({preq.page, std::move(*reply)});
  }
  if (!served.empty()) {
    hooks_.charge(TimeCategory::kDataTransfer,
                  costs_->page_service +
                      costs_->bulk_service_extra_page * static_cast<SimTime>(served.size() - 1));
    stats_.rehome_pages_served += served.size();
  }
  net::WireWriter w;
  w.Put(RehomeReplyHeader{static_cast<uint16_t>(served.size()),
                          static_cast<uint16_t>(misses.size())});
  for (Served& s : served) {
    w.Put(s.page);
    w.Put(static_cast<uint32_t>(s.payload.size()));
    w.PutBytes(s.payload.data(), s.payload.size());
  }
  for (PageId p : misses) {
    w.Put(p);
  }
  return w.Take();
}

void DsmNode::OnRehomeReply(net::Payload reply) {
  net::WireReader r(reply);
  const auto h = r.Get<RehomeReplyHeader>();
  TraceSpan install_span(hooks_.tracer, "dsm", "rehome_install x", h.nserved);
  for (uint16_t i = 0; i < h.nserved; ++i) {
    const auto page = r.Get<PageId>();
    const auto len = r.Get<uint32_t>();
    net::Payload embedded(len);
    r.GetBytes(embedded.data(), len);
    stats_.pages_rehomed++;
    // The embedded payload is a standard single-page transfer reply: route it through the
    // normal install path so grants, copyset invalidation rounds, the Mirage window, waiter
    // wake-ups and the oracle hooks all behave exactly as for a demand fault.
    OnPageReply(page, AccessMode::kWrite, std::move(embedded));
  }
  for (uint16_t i = 0; i < h.nmisses; ++i) {
    const PageId p = r.Get<PageId>();
    stats_.rehome_misses++;
    PageEntry& e = table_[p];
    DFIL_CHECK(e.fetching) << "rehome miss for page " << p << " we are not fetching";
    e.fetching = false;
    e.discard_install = false;
    // Anyone who demand-faulted while the re-home was in flight re-faults through Access();
    // the page simply stays at its current owner.
    while (threads::ServerThread* t = e.waiters.PopFront()) {
      hooks_.wake(t);
    }
    DFIL_CHECK_GT(pending_fetches_, 0);
    if (--pending_fetches_ == 0 && hooks_.fetches_drained) {
      hooks_.fetches_drained();
    }
  }
}

void DsmNode::NotePageDiscarded(PageEntry& e) {
  if (e.prefetched_unused) {
    e.prefetched_unused = false;
    e.prefetch_wasted = true;
    stats_.prefetch_wasted++;
  }
}

bool DsmNode::ConsumePrefetchWasted(PageId page) {
  const bool wasted = table_[page].prefetch_wasted;
  table_[page].prefetch_wasted = false;
  return wasted;
}

std::optional<net::Payload> DsmNode::ServeInvalidate(NodeId src, net::WireReader body) {
  (void)src;
  const auto page = body.Get<PageId>();
  TraceSpan inval_span(hooks_.tracer, "dsm", "inval p", page);
  if (NodeTracer* tr = tracer(); tr != nullptr) {
    tr->Flow(kFlowStep, "dsm", FlowName(page), tr->current());
  }
  hooks_.charge(TimeCategory::kDataTransfer, costs_->invalidate_handle);
  stats_.invalidations_received++;
  for (PageId p : layout_->GroupPagesOf(page)) {
    PageEntry& e = table_[p];
    if (e.owner) {
      // A duplicated invalidation, delivered after we re-acquired the page we once held a read
      // copy of. The copy it targeted is long gone; crashing here (this used to be a CHECK) turns
      // a benign duplicate into a protocol failure.
      stats_.stale_invalidations_ignored++;
      continue;
    }
    if (e.fetching && e.fetch_mode == AccessMode::kRead) {
      // The invalidation targets the read copy currently in flight to us: the owner served our
      // request, then granted the page to a writer whose invalidation overtook our reply. Poison
      // the pending install so the stale bytes are dropped on arrival.
      e.discard_install = true;
    }
    if (e.state == PageState::kReadOnly) {
      e.state = PageState::kInvalid;
      NotePageDiscarded(e);
      DFIL_ORACLE(OnInvalidated(self_, p));
    }
  }
  return net::Payload{};  // empty ack
}

void DsmNode::AtSyncPoint() {
  for (PageProtocol* p : active_protocols_) {
    p->OnSyncPoint();
  }
  if (config_.adapt_protocols) {
    AdapterAtSyncPoint();
  }
}

void DsmNode::OnBarrierDone() { diff_->OnBarrierDone(); }

uint64_t DsmNode::DiffAppliedEpoch(NodeId src) const { return diff_->applied_epoch(src); }

uint64_t DsmNode::PendingGatedMergeEpoch() const { return diff_->pending_gated_merge_epoch(); }

void DsmNode::NoteAdaptTraffic(PageId page) { adapt_[GroupRoot(page)].traffic++; }

void DsmNode::AdapterAtSyncPoint() {
  for (auto& [root, st] : adapt_) {
    const bool owner = table_[root].owner;
    if (st.mode == Pcp::kImplicitInvalidate) {
      // Only the group's owner may flip it to diff: the mode propagates to the other nodes
      // through the diff tag on the copies this owner serves.
      if (owner && st.traffic >= config_.adapt_to_diff_threshold) {
        st.mode = Pcp::kDiff;
        st.calm = 0;
        stats_.adapter_switches_to_diff++;
        DFIL_LOG(kDebug, "dsm") << "node " << self_ << " adapts group p" << root
                                << " -> diff (traffic=" << st.traffic << ") @"
                                << ToMilliseconds(hooks_.clock()) << "ms";
        if (NodeTracer* tr = tracer(); tr != nullptr) {
          tr->InstantOnTrack(kAdaptTid, "dsm",
                             "adapt_diff p" + std::to_string(root) + " traffic=" +
                                 std::to_string(st.traffic));
        }
      }
    } else if (owner) {
      // Hysteresis: only after adapt_calm_epochs consecutive quiet epochs does the owner fall
      // back to implicit-invalidate. While any writer still holds a diff copy, its faults/merges
      // count as traffic, so a live multiple-writer group can never flip back mid-use (which
      // also pins ownership: the diff protocol never transfers it).
      if (st.traffic == 0) {
        if (++st.calm >= config_.adapt_calm_epochs) {
          st.mode = Pcp::kImplicitInvalidate;
          st.calm = 0;
          stats_.adapter_switches_to_ii++;
          DFIL_LOG(kDebug, "dsm") << "node " << self_ << " adapts group p" << root
                                  << " -> implicit-invalidate @"
                                  << ToMilliseconds(hooks_.clock()) << "ms";
          if (NodeTracer* tr = tracer(); tr != nullptr) {
            tr->InstantOnTrack(kAdaptTid, "dsm", "adapt_ii p" + std::to_string(root));
          }
        }
      } else {
        st.calm = 0;
      }
    }
    st.traffic = 0;
  }
}

}  // namespace dfil::dsm
