// Page-consistency-protocol strategy interface (the PCP seam).
//
// DsmNode owns the mechanisms every protocol shares — the page table, the fault/waiter plumbing,
// probable-owner forwarding, grant records, the Mirage hold window, bulk transfers — and asks a
// PageProtocol for the per-protocol policy at the four decision points:
//
//   OnReadFault / OnWriteFault  what a fault does when no fetch is outstanding (demand-fetch the
//                               page, upgrade in place, or twin a writable copy locally);
//   OnRemoteRequest             what the owner replies once the generic serve guards have passed
//                               (a tracked or untracked read copy, or an ownership transfer);
//   OnSyncPoint                 what happens at a synchronization point (nothing, dropping read
//                               copies, or flushing diffs to the home nodes).
//
// One instance per protocol exists on every node; DsmNode dispatches per page through
// page_pcp(), so the per-page-group adapter can run implicit-invalidate and diff side by side.
// The protocols mutate DsmNode state through friendship — they are the policy half of one
// machine, split out so a new protocol (kDiff) plugs in without touching the fault dispatcher.
#ifndef DFIL_DSM_PAGE_PROTOCOL_H_
#define DFIL_DSM_PAGE_PROTOCOL_H_

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "src/common/types.h"
#include "src/dsm/dsm_node.h"
#include "src/net/wire.h"

namespace dfil::dsm {

// Reply-header flag bits (the byte that used to be `grants_ownership`; bit 0 keeps its meaning,
// so the single-writer protocols' replies are byte-identical to the pre-seam wire format).
inline constexpr uint8_t kReplyFlagOwnership = 1;  // the reply transfers page ownership
inline constexpr uint8_t kReplyFlagDiff = 2;       // the served copy is a multiple-writer diff copy

// Trace track for the adapter's decision instants, next to the fault injector's
// sim::Machine::kInjectionTid = 1000000 `inject` lane.
inline constexpr uint64_t kAdaptTid = 1000001;

// Trace track for load-balancer events (plan emission, filament migration, page re-homing);
// every instant name on it starts with "rebalance" so report_lib can count them.
inline constexpr uint64_t kRebalanceTid = 1000002;

// Outcome of a fault entry point.
enum class FaultResult : uint8_t {
  kStarted,    // a fetch (or invalidation round) is now outstanding; the faulter must block
  kSatisfied,  // handled in place (diff twin promotion); the access can proceed immediately
};

class PageProtocol {
 public:
  explicit PageProtocol(DsmNode& node) : node_(node) {}
  virtual ~PageProtocol() = default;

  PageProtocol(const PageProtocol&) = delete;
  PageProtocol& operator=(const PageProtocol&) = delete;

  virtual Pcp pcp() const = 0;
  // Whether a request with `mode` takes the page away from the serving owner (drives the Mirage
  // hold window and the use-once guard in the generic serve path).
  virtual bool TransfersOwnership(AccessMode mode) const = 0;
  // Whether the owner tracks read copies in a copyset and ships it with ownership transfers.
  virtual bool TracksCopyset() const { return false; }

  // Fault entry points. Only called when the entry is not already fetching; the generic demand
  // fetch is the default policy.
  virtual FaultResult OnReadFault(PageId page) { return StartDemandFetch(page, AccessMode::kRead); }
  virtual FaultResult OnWriteFault(PageId page) {
    return StartDemandFetch(page, AccessMode::kWrite);
  }

  // Owner-side serve decision. The generic guards (grant re-serve, in-flux defer, stale-dup,
  // use-once hold, Mirage window, the page_service charge) have already run in
  // DsmNode::ServePageRequest; this builds the reply and applies the protocol's state transition.
  virtual std::optional<net::Payload> OnRemoteRequest(NodeId src, PageId page, AccessMode mode,
                                                      uint32_t fault_seq);

  // Requester side: an ownership-granting reply for a write fault just installed. Returns true
  // when the protocol started extra work (write-invalidate's invalidation round) and will call
  // FinishFetch itself; false lets the generic path finish the fetch immediately.
  virtual bool OnOwnershipInstall(PageId page, uint64_t copyset) {
    (void)page;
    (void)copyset;
    return false;
  }

  // Synchronization point (reduction/barrier), after outstanding fetches drained.
  virtual void OnSyncPoint() {}

 protected:
  // Generic demand fetch: marks the entry fetching and sends a page request at the probable
  // owner (the pre-seam fault path, verbatim).
  FaultResult StartDemandFetch(PageId page, AccessMode mode);
  PageEntry& entry(PageId page);

  DsmNode& node_;
};

// kMigratory — one copy; the page and its ownership move to any requester.
class MigratoryProtocol final : public PageProtocol {
 public:
  using PageProtocol::PageProtocol;
  Pcp pcp() const override { return Pcp::kMigratory; }
  bool TransfersOwnership(AccessMode) const override { return true; }
};

// kWriteInvalidate — replicated read copies tracked in the owner's copyset; a writer acquires
// ownership and explicitly invalidates every copy before writing.
class WriteInvalidateProtocol final : public PageProtocol {
 public:
  using PageProtocol::PageProtocol;
  Pcp pcp() const override { return Pcp::kWriteInvalidate; }
  bool TransfersOwnership(AccessMode mode) const override {
    return mode == AccessMode::kWrite;
  }
  bool TracksCopyset() const override { return true; }
  FaultResult OnWriteFault(PageId page) override;
  bool OnOwnershipInstall(PageId page, uint64_t copyset) override;
};

// kImplicitInvalidate — like write-invalidate, but read copies are untracked and die silently at
// every synchronization point, so no invalidation messages exist.
class ImplicitInvalidateProtocol final : public PageProtocol {
 public:
  using PageProtocol::PageProtocol;
  Pcp pcp() const override { return Pcp::kImplicitInvalidate; }
  bool TransfersOwnership(AccessMode mode) const override {
    return mode == AccessMode::kWrite;
  }
  void OnSyncPoint() override;
};

// kDiff — multiple-writer, barrier-merged diffs (TreadMarks-style twins at user level). Ownership
// never moves: the home node serves writable *copies*, each writer twins the page on first write,
// and at the next synchronization point every writer run-length-encodes its twin/page delta and
// sends it to the home, which merges the runs into its frame. N false-sharing writers of one page
// exchange O(bytes changed) instead of N full-page transfers. Copies die at every sync point like
// implicit-invalidate, so the merged frame is re-fetched next epoch — correct for the same
// barrier-structured programs implicit-invalidate requires.
class DiffProtocol final : public PageProtocol {
 public:
  using PageProtocol::PageProtocol;
  Pcp pcp() const override { return Pcp::kDiff; }
  bool TransfersOwnership(AccessMode) const override { return false; }
  FaultResult OnReadFault(PageId page) override;
  FaultResult OnWriteFault(PageId page) override;
  std::optional<net::Payload> OnRemoteRequest(NodeId src, PageId page, AccessMode mode,
                                              uint32_t fault_seq) override;
  void OnSyncPoint() override;

  // Twins every page of `page`'s group from the just-installed bytes and promotes the group to a
  // writable (non-owner) diff copy; used when a write fault was answered with a diff-tagged copy.
  void InstallWritableCopy(PageId page);

  // Home side: applies one kDiffMerge message (idempotently, keyed by (sender, epoch)). `gated`
  // (the kDiffMergeGated service) elides the ack: the barrier done broadcast stands in for it.
  std::optional<net::Payload> ServeMerge(NodeId src, net::WireReader body, bool gated = false);

  bool HasTwin(PageId page) const { return twins_.count(page) != 0; }

  // --- Coalescing sync-batch support (config_.coalesce_sync_batch) ---

  // Highest flush epoch applied from `src` (0 = none).
  uint64_t applied_epoch(NodeId src) const {
    const auto it = applied_epoch_.find(src);
    return it == applied_epoch_.end() ? 0 : it->second;
  }
  // Epoch of the gated merge still awaiting the barrier done signal (0 = none).
  uint64_t pending_gated_merge_epoch() const {
    return gated_merge_req_ != 0 ? gated_merge_epoch_ : 0;
  }
  // The done signal arrived: the parent has applied our gated merge, stop retransmitting it.
  void OnBarrierDone();

 private:
  // Copies the page into a fresh twin and promotes the entry to kReadWrite in place.
  void TwinInPlace(PageId page);
  // Encodes and sends all twins (one kDiffMerge per home node), then drops the flushed copies.
  void FlushTwins();
  // Sync-batch mode: a fault on a page this node flushed last epoch re-fetches the whole
  // per-home flush set with bulk requests (one datagram per contiguous run) instead of paging it
  // back one RTT-chained request at a time. One-shot per flush set. Returns true when the
  // faulted page itself is now fetching.
  bool MaybeBulkRefetch(PageId page);

  // Twinned pages, ordered so flush batches and message contents are deterministic.
  std::map<PageId, std::vector<std::byte>> twins_;
  // This node's sync-point counter, stamped into outgoing merges. Barriers are collective, so
  // the counter advances in lockstep across nodes and names the epoch a merge belongs to.
  uint64_t flush_epoch_ = 0;
  // Home side: last epoch applied per sender; retransmissions and delayed duplicates of an
  // already-applied flush are skipped (the empty ack is still rebuilt).
  std::map<NodeId, uint64_t> applied_epoch_;
  // Sync-batch mode: pages flushed at the last sync point, per home — the next epoch's expected
  // re-fetch footprint. Consumed (erased) by the first fault into each set.
  std::map<NodeId, std::set<PageId>> last_flush_sets_;
  // The request id and epoch of the gated merge sent to the barrier parent (0 = none pending).
  uint64_t gated_merge_req_ = 0;
  uint64_t gated_merge_epoch_ = 0;
};

}  // namespace dfil::dsm

#endif  // DFIL_DSM_PAGE_PROTOCOL_H_
