// Per-node engine of the multi-threaded distributed shared memory (paper §3).
//
// Each node holds a full replica of the shared region plus a page table. Access goes through
// Access()/TryAccess(): when a page is missing or under-privileged the calling server thread is
// suspended on the page's waiter queue and a page request goes out through Packet; meanwhile the
// runtime runs other server threads, which is how DF overlaps communication with computation.
// Message handlers (page requests, replies, invalidations) run asynchronously — the SIGIO analog —
// and never block.
//
// Four page consistency protocols are implemented (paper §3 plus the diff extension), as
// PageProtocol strategies (page_protocol.h):
//  * kMigratory        — one copy; the page (and ownership) moves to any requester.
//  * kWriteInvalidate  — replicated read-only copies; a writer acquires ownership and explicitly
//                        invalidates every copy in the owner-maintained copyset before writing.
//  * kImplicitInvalidate — like write-invalidate, but read-only copies are implicitly discarded by
//                        their holders at every synchronization point, so no invalidation messages
//                        exist. Correct only for regular programs with a stable sharing pattern.
//  * kDiff             — multiple-writer: the home node serves writable copies, writers twin the
//                        page on first write and flush run-length-encoded twin/page deltas to the
//                        home at every synchronization point, which merges them. Same program
//                        restrictions as implicit-invalidate; falsely-shared pages cost O(bytes
//                        changed) instead of whole-page ping-pong. See DESIGN.md §10.
//
// Ownership is located by probable-owner forwarding: a request sent to a stale owner is answered
// with a redirect carrying a better hint, and the requester chases the chain (each transfer
// updates hints, so chains stay short). Ownership transfers are made idempotent against reply
// loss with a per-page grant record: the previous owner keeps the stale frame and re-serves the
// same transfer if the same requester asks again, so Packet never needs to buffer page data.
//
// Thrashing control (paper §2.3): an owner holds a freshly acquired page for a configurable
// Mirage-style time window, deferring requests that would take the page away (deferred requests
// are simply ignored; Packet retransmission recovers them).
#ifndef DFIL_DSM_DSM_NODE_H_
#define DFIL_DSM_DSM_NODE_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "src/common/intrusive_list.h"
#include "src/common/stats.h"
#include "src/common/trace.h"
#include "src/common/types.h"
#include "src/dsm/layout.h"
#include "src/net/packet.h"
#include "src/threads/server_thread.h"

namespace dfil::dsm {

class CoherenceOracle;
class PageProtocol;
class MigratoryProtocol;
class WriteInvalidateProtocol;
class ImplicitInvalidateProtocol;
class DiffProtocol;

enum class Pcp : uint8_t { kMigratory, kWriteInvalidate, kImplicitInvalidate, kDiff };
inline constexpr size_t kNumPcps = 4;

// Stable protocol name used in metrics JSON and report tables.
constexpr const char* PcpName(Pcp pcp) {
  switch (pcp) {
    case Pcp::kMigratory:
      return "migratory";
    case Pcp::kWriteInvalidate:
      return "write_invalidate";
    case Pcp::kImplicitInvalidate:
      return "implicit_invalidate";
    case Pcp::kDiff:
      return "diff";
  }
  return "unknown";
}

enum class AccessMode : uint8_t { kRead = 0, kWrite = 1 };

enum class PageState : uint8_t { kInvalid, kReadOnly, kReadWrite };

struct DsmConfig {
  Pcp pcp = Pcp::kWriteInvalidate;
  // Mirage hold window: a node keeps a freshly acquired page this long, deferring requests that
  // would take it away. Besides controlling fork/join thrashing (paper §2.3), the window is the
  // progress guarantee when pages ping-pong (Mirage [FP89]); 0 disables it.
  SimTime mirage_window = Milliseconds(2.0);

  // --- Strip-aware prefetching / bulk transfers (extension; both off = paper behaviour) ---
  // Sequential-fault detector: after `prefetch_min_run` consecutive demand read faults on
  // adjacent pages, the remainder of the run is fetched with one bulk request.
  bool prefetch_detector = false;
  // Strip hints: the pool engine re-issues last sweep's per-pool fault footprint as bulk
  // prefetches before running the pool's filaments.
  bool prefetch_hints = false;
  int prefetch_min_run = 2;   // consecutive adjacent faults that arm the detector
  int prefetch_degree = 4;    // pages the armed detector fetches ahead of the faulting page
  int max_bulk_pages = 16;    // cap on the page count of one bulk request

  // --- Per-page-group protocol adaptation (extension; DESIGN.md §10) ---
  // Requires pcp == kImplicitInvalidate. Every page group starts under implicit-invalidate; the
  // group's owner flips it to the diff protocol when the group's per-epoch ping-pong write
  // traffic (write faults taken plus write copies/transfers served) reaches
  // adapt_to_diff_threshold, and flips it back after adapt_calm_epochs consecutive epochs with
  // no diff activity (hysteresis, so a group does not oscillate at the threshold). Decisions are
  // made at synchronization points and recorded as instants on the trace `adapt` track.
  bool adapt_protocols = false;
  uint32_t adapt_to_diff_threshold = 3;
  uint32_t adapt_calm_epochs = 2;

  // --- Sync-point traffic batching (extension; DESIGN.md §11) ---
  // Set by the runtime from ClusterConfig::coalesce.{enabled,sync_batch}: diff flush sets are
  // re-fetched with bulk requests, bulk replies carry the diff tag, and the merge to
  // `barrier_parent` goes out gated (ack elided; it piggybacks on the reduce-up frame).
  bool coalesce_sync_batch = false;
  // This node's parent in the reduction tree (kNoNode = no gating: root node, or a barrier kind
  // without a fixed parent, e.g. dissemination).
  NodeId barrier_parent = kNoNode;
};

struct PageEntry {
  PageState state = PageState::kInvalid;
  bool owner = false;
  bool fetching = false;            // a page request is outstanding
  AccessMode fetch_mode = AccessMode::kRead;
  int pending_invalidate_acks = 0;  // write-invalidate: acks awaited before the write proceeds
  NodeId probable_owner = 0;
  uint64_t copyset = 0;      // owner side (write-invalidate): nodes holding read-only copies
  SimTime hold_until = 0;    // Mirage window expiry
  NodeId granted_to = kNoNode;  // last ownership grant, for idempotent transfer re-replies
  uint64_t grant_copyset = 0;
  uint32_t grant_seq = 0;  // fault_seq of the request the grant answered (re-reply match key)
  uint32_t fetch_seq = 0;  // this node's fault counter for the page; stamped into page requests
  bool discard_install = false;    // the in-flight read copy was invalidated; drop it on arrival
  bool pending_use = false;        // installed for blocked faulters that have not yet run (defer serves)
  bool diff_copy = false;          // a multiple-writer (diff-protocol) copy; twinned on first write
  bool prefetched_unused = false;  // installed by a prefetch and not yet touched by any access
  bool prefetch_wasted = false;    // sticky: the last prefetched copy died untouched (hint pruning)
  uint64_t trace_id = 0;           // causal trace id of the in-flight fetch (0 = none)
  IntrusiveList<threads::ServerThread, &threads::ServerThread::queue_link> waiters;
};

class DsmNode {
 public:
  struct Hooks {
    // Charges CPU time to this node's virtual clock.
    std::function<void(TimeCategory, SimTime)> charge;
    // Reads this node's virtual clock (for the Mirage hold window).
    std::function<SimTime()> clock;
    // Notifies the runtime that the current thread is about to suspend on `page` (the pool/fj
    // engines start replacement server threads here). May charge time and yield; the fetch may
    // even complete during it, which FaultAndWait re-checks.
    std::function<void(PageId)> pre_block;
    // Suspends the calling server thread (already enqueued on the page's waiter list, state set).
    // Returns when the thread is woken. Runs on a server-thread context. Must not charge.
    std::function<void()> block_current;
    // Makes `t` runnable again (ready-queue placement policy is the runtime's).
    std::function<void(threads::ServerThread*)> wake;
    // The server thread currently executing on this node.
    std::function<threads::ServerThread*()> current_thread;
    // Invoked when the last outstanding fetch completes (synchronization points wait on this).
    std::function<void()> fetches_drained;
    // Optional tracing of the blocked interval of a fault (from suspension to wake-up).
    std::function<void(PageId)> trace_fault_begin;
    std::function<void()> trace_fault_end;
    // Optional causal tracer (spans, flow arcs, trace-id allocation). May be null; trace ids then
    // stay 0 and all instrumentation is skipped.
    NodeTracer* tracer = nullptr;
  };

  DsmNode(NodeId self, const GlobalLayout* layout, net::PacketEndpoint* packet,
          const sim::CostModel* costs, const DsmConfig& config, Hooks hooks);
  ~DsmNode();

  DsmNode(const DsmNode&) = delete;
  DsmNode& operator=(const DsmNode&) = delete;

  // --- Access paths (server-thread context) ---

  // Fast path: returns a pointer to the bytes when every page in [addr, addr+len) is present with
  // `mode` access; otherwise nullptr.
  std::byte* TryAccess(GlobalAddr addr, size_t len, AccessMode mode);

  // Blocking path: faults pages in as needed; returns a valid pointer. Must be called from a
  // server thread.
  std::byte* Access(GlobalAddr addr, size_t len, AccessMode mode);

  // Typed convenience accessors.
  template <typename T>
  const T& Read(GlobalAddr addr) {
    return *reinterpret_cast<const T*>(Access(addr, sizeof(T), AccessMode::kRead));
  }
  template <typename T>
  void Write(GlobalAddr addr, const T& value) {
    *reinterpret_cast<T*>(Access(addr, sizeof(T), AccessMode::kWrite)) = value;
  }

  // --- Prefetching (any context; never blocks) ---

  // Asynchronously fetches the page run [first, first+count) with bulk requests, skipping pages
  // that are present, already being fetched, grouped, or owned here. Only read prefetches are
  // supported: a write needs an ownership transfer, and prefetching a read copy first would turn
  // one transfer into two. No-op under the migratory PCP (every fetch moves ownership there).
  // Fetched pages land as replicated read-only copies, subject to the normal PCP rules —
  // write-invalidate tracks them in the owner's copyset, implicit-invalidate drops them at the
  // next synchronization point. Outstanding prefetches count as pending fetches, so they drain
  // at synchronization points like demand faults.
  void Prefetch(PageId first, int count, AccessMode mode);

  // Hint-pruning handshake: returns whether the last prefetched copy of `page` was discarded
  // without ever being accessed, and clears the flag.
  bool ConsumePrefetchWasted(PageId page);

  // --- Synchronization integration ---

  // Called by the runtime at every synchronization point (reduction/barrier). Under
  // implicit-invalidate this discards all read-only copies — no messages are sent.
  void AtSyncPoint();

  // Called when the barrier's done signal arrives (coalescing sync-batch mode): cancels the
  // retransmission of the gated diff merge — the done broadcast proves the parent applied it.
  void OnBarrierDone();

  // Highest diff-flush epoch this node has applied from `src` (home side). The reduce tree uses
  // it to defer a child's arrival until the child's gated merge has landed.
  uint64_t DiffAppliedEpoch(NodeId src) const;

  // Epoch of the gated merge still awaiting the done signal (0 = none). Piggybacked on the
  // reduce-up message so the parent can order merge-apply before arrival.
  uint64_t PendingGatedMergeEpoch() const;

  // --- Rebalance page re-homing (load balancer; DESIGN.md §13) ---

  // Requests ownership of `pages` from `source` in one batched kRehomePages exchange per
  // max_bulk_pages run, so a migrated strip's next epoch faults locally instead of chasing
  // ownership page by page. Pages that are owned here, already being fetched, grouped, or under
  // the diff protocol (which never transfers ownership) are skipped. Each re-homed page goes
  // through the standard single-page install path — grants, copyset invalidation rounds, the
  // Mirage window, and the coherence oracle all see an ordinary ownership transfer. Pages the
  // source cannot serve (not the owner, in flux, inside its Mirage window) come back as misses
  // and simply stay where they were: a later demand fault fetches them the normal way. The
  // requests count as pending fetches, so they drain before the next sync point.
  void RequestRehome(const std::vector<PageId>& pages, NodeId source);

  // Outstanding page fetches; a node delays at synchronization points until this reaches zero.
  int pending_fetches() const { return pending_fetches_; }

  // --- Introspection (tests, benches) ---

  // Registers this node with a cluster-global coherence oracle; subsequent protocol transitions
  // are reported through it. Pass nullptr to detach. Testing only; see coherence_oracle.h.
  void AttachOracle(CoherenceOracle* oracle);

  const PageEntry& page(PageId p) const { return table_[p]; }
  // Demand faults taken per page on this node (prefetches excluded) — the report's "hottest
  // pages" table.
  const std::vector<uint32_t>& fault_heat() const { return fault_heat_; }
  const DsmStats& stats() const { return stats_; }
  DsmStats& mutable_stats() { return stats_; }
  const GlobalLayout& layout() const { return *layout_; }
  std::byte* raw_replica(GlobalAddr addr) { return replica_.data() + addr; }
  Pcp pcp() const { return config_.pcp; }
  // The protocol currently governing `page`: the configured PCP, or the adapter's per-group
  // choice (implicit-invalidate or diff) when adaptation is enabled.
  Pcp page_pcp(PageId page) const;

 private:
  friend class PageProtocol;
  friend class MigratoryProtocol;
  friend class WriteInvalidateProtocol;
  friend class ImplicitInvalidateProtocol;
  friend class DiffProtocol;
  // Initiates (or joins) a fetch of `page` with `mode` and suspends the current thread.
  void FaultAndWait(PageId page, AccessMode mode);

  // Sends a page request for `page` towards `target`.
  void SendPageRequest(PageId page, AccessMode mode, NodeId target);

  // Write-invalidate: sends invalidations to every node in `targets`; when all acks are in,
  // completes the pending write fetch of `page`.
  void StartInvalidations(PageId page, uint64_t targets);

  // Handles an incoming page request; returns the reply payload or nullopt to defer.
  std::optional<net::Payload> ServePageRequest(NodeId src, net::WireReader body);
  std::optional<net::Payload> ServeInvalidate(NodeId src, net::WireReader body);
  void OnPageReply(PageId page, AccessMode mode, net::Payload reply);

  // --- PageProtocol plumbing (policy helpers the strategies share; page_protocol.h) ---

  // Write-invalidate upgrade-in-place: invalidate the copyset, no page request.
  void StartOwnerUpgrade(PageId page);
  // Owner-side reply builders used by OnRemoteRequest. ServeReadCopy ships an (optionally
  // copyset-tracked) read copy with `extra_flags` folded into the reply header; ServeTransfer
  // demotes this owner and records the grant.
  net::Payload ServeReadCopy(NodeId src, PageId page, uint8_t extra_flags);
  net::Payload ServeTransfer(NodeId src, PageId page, uint32_t fault_seq);
  PageProtocol& proto(PageId page) { return *protocols_[static_cast<size_t>(page_pcp(page))]; }

  // --- Per-page-group adapter ---

  PageId GroupRoot(PageId page) const { return layout_->GroupPagesOf(page).front(); }
  // Counts one unit of ping-pong write traffic against `page`'s group this epoch.
  void NoteAdaptTraffic(PageId page);
  // Sync-point decision pass: flip groups between implicit-invalidate and diff with hysteresis.
  void AdapterAtSyncPoint();

  // --- Bulk transfers / prefetching ---

  // Sequential-fault detector (called on every demand read fault when enabled): arms on
  // `prefetch_min_run` adjacent faults and bulk-prefetches the run's continuation.
  void NoteFaultForDetector(PageId page, AccessMode mode);

  // Marks every eligible page of [first, first+count) as fetching and sends one bulk request per
  // probable-owner run. Pages that are present, fetching, grouped, or owned here are skipped.
  void StartBulkFetch(PageId first, int count);

  // Sends one kBulkPageRequest for [first, first+count) towards `target`.
  void SendBulkRequest(PageId first, uint16_t count, NodeId target);

  // Serves a bulk request from current state: ships the pages this node owns as read-only copies
  // and reports the rest as misses (idempotent; never defers, never transfers ownership).
  std::optional<net::Payload> ServeBulkRequest(NodeId src, net::WireReader body);
  void OnBulkReply(net::Payload reply);

  // --- Rebalance page re-homing ---

  // Sends one kRehomePages request for `pages` (each already marked fetching) to `source`.
  void SendRehomeRequest(const std::vector<std::pair<PageId, uint32_t>>& pages, NodeId source);
  // Serves a re-home batch from current state: each page this node owns (and may release) ships
  // as an embedded ownership-transfer reply; everything else is a miss. Never defers — the whole
  // batch answers at once, and a per-page grant record keeps re-serves loss-safe.
  std::optional<net::Payload> ServeRehomeRequest(NodeId src, net::WireReader body);
  void OnRehomeReply(net::Payload reply);

  // Completes one page of a bulk fetch (no group logic: bulk runs cover ungrouped pages only).
  // `diff_copy` installs the page as a multiple-writer copy (from the block's diff tag).
  void FinishBulkPage(PageId page, bool installed, NodeId owner_hint, bool diff_copy = false);

  // Marks a present page as touched; discarding an untouched prefetched copy counts as waste.
  // Also retires the use-once hold: a page fetched for blocked faulters becomes servable again
  // the moment any local access lands on it.
  void NotePageUsed(PageEntry& e) {
    if (e.prefetched_unused) {
      e.prefetched_unused = false;
    }
    e.pending_use = false;
  }
  void NotePageDiscarded(PageEntry& e);

  // Completes a fetch: grants access, wakes waiters, decrements pending counter. `diff_copy`
  // tags the installed group as multiple-writer copies (from the reply's diff flag).
  void FinishFetch(PageId page, PageState new_state, bool ownership, bool diff_copy = false);

  // Builds a data reply for the whole group of `page`, optionally transferring ownership.
  // `from_grant` re-serves a lost transfer from the grant record instead of the live copyset.
  net::Payload BuildDataReply(PageId page, bool transfer_ownership, bool include_copyset,
                              bool from_grant = false, uint8_t extra_flags = 0);

  bool PagePresent(const PageEntry& e, AccessMode mode) const {
    if (mode == AccessMode::kRead) {
      return e.state != PageState::kInvalid;
    }
    return e.state == PageState::kReadWrite;
  }

  NodeId self_;
  const GlobalLayout* layout_;
  net::PacketEndpoint* packet_;
  const sim::CostModel* costs_;
  DsmConfig config_;
  Hooks hooks_;
  // hooks_.tracer when it can record, nullptr otherwise (so hot paths skip name building).
  NodeTracer* tracer() const {
    return hooks_.tracer != nullptr && hooks_.tracer->enabled() ? hooks_.tracer : nullptr;
  }

  std::vector<std::byte> replica_;
  std::vector<PageEntry> table_;
  std::vector<uint32_t> fault_heat_;
  int pending_fetches_ = 0;
  DsmStats stats_;
  CoherenceOracle* oracle_ = nullptr;

  // One strategy instance per protocol, indexed by Pcp; active_protocols_ are the ones whose
  // OnSyncPoint runs ({configured} normally, {diff, implicit-invalidate} under adaptation).
  std::array<std::unique_ptr<PageProtocol>, kNumPcps> protocols_;
  std::vector<PageProtocol*> active_protocols_;
  DiffProtocol* diff_ = nullptr;

  // Adapter state, per group root (ungrouped pages are singleton groups). Only groups that saw
  // ping-pong write traffic have an entry; absent means implicit-invalidate. std::map so the
  // sync-point decision pass iterates deterministically.
  struct AdaptState {
    Pcp mode = Pcp::kImplicitInvalidate;
    uint32_t traffic = 0;  // this epoch's write faults taken + write copies/transfers served
    uint32_t calm = 0;     // consecutive epochs with zero traffic while in diff mode
  };
  std::map<PageId, AdaptState> adapt_;

  // Sequential-fault detector state (last-fault window reduced to a run counter: the run is the
  // only pattern the bulk protocol exploits).
  PageId last_fault_page_ = kNoPage;
  int fault_run_len_ = 0;
};

}  // namespace dfil::dsm

#endif  // DFIL_DSM_DSM_NODE_H_
