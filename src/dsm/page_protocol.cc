// Strategy implementations for the four page-consistency protocols (the policy half of DsmNode).
//
// The single-writer protocols (migratory, write-invalidate, implicit-invalidate) are verbatim
// extractions of the pre-seam fault/serve/sync branches — their message schedules and wire bytes
// are unchanged, which the bench/baselines/jacobi_gate.json schedule-invariance gate pins. The
// diff protocol is new; DESIGN.md §10 describes it.
#include "src/dsm/page_protocol.h"

#include <string>
#include <utility>
#include <vector>

#include "src/common/check.h"
#include "src/dsm/coherence_oracle.h"
#include "src/net/packet.h"

// Coherence-oracle hook, as in dsm_node.cc but through the strategy's node reference.
#ifndef DFIL_DISABLE_COHERENCE_ORACLE
#define DFIL_ORACLE(call)         \
  if (node_.oracle_ == nullptr) { \
  } else /* NOLINT */             \
    node_.oracle_->call
#else
#define DFIL_ORACLE(call) \
  do {                    \
  } while (false)
#endif

namespace dfil::dsm {
namespace {

uint64_t Bit(NodeId n) { return uint64_t{1} << n; }

}  // namespace

PageEntry& PageProtocol::entry(PageId page) { return node_.table_[page]; }

FaultResult PageProtocol::StartDemandFetch(PageId page, AccessMode mode) {
  PageEntry& e = entry(page);
  e.fetching = true;
  e.fetch_mode = mode;
  ++e.fetch_seq;  // a fresh fault; redirect re-sends within it keep the same seq
  ++node_.pending_fetches_;
  // Allocate the causal trace id for this fetch; the request, every chase hop, the owner's serve,
  // and the final install all carry it.
  e.trace_id = node_.hooks_.tracer != nullptr ? node_.hooks_.tracer->NewTraceId() : 0;
  TraceContext trace_ctx(node_.hooks_.tracer, e.trace_id);
  node_.SendPageRequest(page, mode, e.probable_owner);
  return FaultResult::kStarted;
}

std::optional<net::Payload> PageProtocol::OnRemoteRequest(NodeId src, PageId page, AccessMode mode,
                                                          uint32_t fault_seq) {
  if (!TransfersOwnership(mode)) {
    return node_.ServeReadCopy(src, page, /*extra_flags=*/0);
  }
  return node_.ServeTransfer(src, page, fault_seq);
}

// --- Write-invalidate --------------------------------------------------------------------------

FaultResult WriteInvalidateProtocol::OnWriteFault(PageId page) {
  const PageEntry& e = entry(page);
  if (e.owner && e.state == PageState::kReadOnly) {
    node_.StartOwnerUpgrade(page);
    return FaultResult::kStarted;
  }
  return StartDemandFetch(page, AccessMode::kWrite);
}

bool WriteInvalidateProtocol::OnOwnershipInstall(PageId page, uint64_t copyset) {
  // Invalidate every other read copy before the write proceeds.
  node_.StartInvalidations(page, copyset & ~Bit(node_.self_));
  return true;
}

// --- Implicit-invalidate -----------------------------------------------------------------------

void ImplicitInvalidateProtocol::OnSyncPoint() {
  // Implicit invalidation: read-only copies have a very short lifetime — they die, without any
  // message traffic, at every synchronization point (paper §3).
  for (PageEntry& e : node_.table_) {
    if (!e.owner && e.state == PageState::kReadOnly && !e.fetching) {
      e.state = PageState::kInvalid;
      node_.stats_.implicit_invalidations++;
      node_.NotePageDiscarded(e);
    }
  }
}

// --- Diff (multiple-writer) --------------------------------------------------------------------

FaultResult DiffProtocol::OnReadFault(PageId page) {
  if (MaybeBulkRefetch(page)) {
    return FaultResult::kStarted;
  }
  return StartDemandFetch(page, AccessMode::kRead);
}

FaultResult DiffProtocol::OnWriteFault(PageId page) {
  const PageEntry& e = entry(page);
  if (!e.owner && e.state == PageState::kReadOnly && e.diff_copy) {
    // First write to a diff-tagged read copy: twin it and promote in place — no messages at all.
    // The `diff_copy` tag (set from the serving owner's reply flag) is required, not just the
    // local adapter mode: a stale local mode must never twin a plain implicit-invalidate copy.
    TwinInPlace(page);
    return FaultResult::kSatisfied;
  }
  if (MaybeBulkRefetch(page)) {
    // The bulk reply installs diff-tagged read copies; the woken writer re-faults and twins the
    // page in place (the branch above), so the write still never transfers ownership.
    return FaultResult::kStarted;
  }
  // No usable copy: demand-fetch one from the home. A diff-mode home answers with a
  // kReplyFlagDiff copy and OnPageReply routes write faults into InstallWritableCopy.
  return StartDemandFetch(page, AccessMode::kWrite);
}

bool DiffProtocol::MaybeBulkRefetch(PageId page) {
  if (!node_.config_.coalesce_sync_batch || last_flush_sets_.empty()) {
    return false;
  }
  for (auto it = last_flush_sets_.begin(); it != last_flush_sets_.end(); ++it) {
    const std::set<PageId>& pages = it->second;
    if (pages.count(page) == 0) {
      continue;
    }
    // The whole set this node flushed to `it->first` last epoch is about to be re-read; fetch it
    // back in maximal contiguous runs (std::set iterates sorted). StartBulkFetch skips pages that
    // are present, fetching, grouped, or owned here, so overlap with other traffic is safe.
    std::vector<PageId> sorted(pages.begin(), pages.end());
    size_t i = 0;
    while (i < sorted.size()) {
      size_t j = i + 1;
      while (j < sorted.size() && sorted[j] == sorted[j - 1] + 1) {
        ++j;
      }
      node_.StartBulkFetch(sorted[i], static_cast<int>(j - i));
      i = j;
    }
    last_flush_sets_.erase(it);  // one-shot: a second fault must not re-issue the sweep
    node_.stats_.diff_bulk_refetches++;
    return node_.table_[page].fetching;
  }
  return false;
}

std::optional<net::Payload> DiffProtocol::OnRemoteRequest(NodeId src, PageId page, AccessMode mode,
                                                          uint32_t fault_seq) {
  (void)fault_seq;  // ownership never transfers, so the grant machinery is never engaged
  if (node_.config_.adapt_protocols && mode == AccessMode::kWrite) {
    // Served write copies keep the group hot — and thereby pinned to this owner: a group with
    // live diff writers can never go calm and flip back to implicit-invalidate mid-use.
    node_.NoteAdaptTraffic(page);
  }
  return node_.ServeReadCopy(src, page, kReplyFlagDiff);
}

void DiffProtocol::TwinInPlace(PageId page) {
  PageEntry& e = entry(page);
  const size_t ps = node_.layout_->page_size();
  const std::byte* cur =
      node_.replica_.data() + (static_cast<GlobalAddr>(page) << node_.layout_->page_shift());
  twins_[page].assign(cur, cur + ps);
  e.state = PageState::kReadWrite;
  node_.stats_.diff_twins_created++;
  node_.hooks_.charge(TimeCategory::kDataTransfer, node_.costs_->diff_twin_copy);
  DFIL_ORACLE(OnTwinWrite(node_.self_, page));
}

void DiffProtocol::InstallWritableCopy(PageId page) {
  // OnPageReply already copied the group's bytes into the replica; twin every page of the group
  // (a write anywhere in it must be tracked) and finish the fetch writable but unowned. Under
  // adaptation the local mode must say diff BEFORE the first twin exists (FinishFetch would sync
  // it anyway, but by then the twins are already live).
  if (node_.config_.adapt_protocols) {
    DsmNode::AdaptState& st = node_.adapt_[node_.GroupRoot(page)];
    st.mode = Pcp::kDiff;
    st.calm = 0;
  }
  for (PageId p : node_.layout_->GroupPagesOf(page)) {
    TwinInPlace(p);
  }
  node_.FinishFetch(page, PageState::kReadWrite, /*ownership=*/false, /*diff_copy=*/true);
}

void DiffProtocol::OnSyncPoint() {
  ++flush_epoch_;
  FlushTwins();
  // Clean (never-written) read copies die silently, exactly like implicit-invalidate copies.
  // This covers untagged copies too (bulk/prefetch installs carry no diff tag): any copy that
  // survived a sync point could hold bytes from before other writers' merges landed at the home.
  for (PageEntry& e : node_.table_) {
    if (!e.owner && e.state == PageState::kReadOnly && !e.fetching) {
      e.state = PageState::kInvalid;
      e.diff_copy = false;
      node_.stats_.implicit_invalidations++;
      node_.NotePageDiscarded(e);
    }
  }
}

void DiffProtocol::FlushTwins() {
  if (twins_.empty()) {
    return;
  }
  TraceSpan flush_span(node_.hooks_.tracer, "dsm", "diff_flush e", flush_epoch_);
  const size_t ps = node_.layout_->page_size();
  // Encode every twin and batch the non-empty diffs by home node. std::map ordering makes both
  // the target sequence and each message's page order deterministic.
  struct PageDiff {
    PageId page;
    std::vector<net::DiffRun> runs;
  };
  std::map<NodeId, std::vector<PageDiff>> by_home;
  for (const auto& [p, twin] : twins_) {
    const std::byte* cur =
        node_.replica_.data() + (static_cast<GlobalAddr>(p) << node_.layout_->page_shift());
    node_.hooks_.charge(TimeCategory::kDataTransfer, node_.costs_->diff_encode_page);
    std::vector<net::DiffRun> runs = net::DiffPageRuns(twin.data(), cur, ps);
    if (runs.empty()) {
      continue;  // the twin was never actually changed; nothing to merge
    }
    const NodeId home = node_.table_[p].probable_owner;
    DFIL_CHECK_NE(home, node_.self_) << "diff twin of a page we own (page " << p << ")";
    by_home[home].push_back(PageDiff{p, std::move(runs)});
  }
  struct Merge {
    NodeId home;
    net::Payload payload;
    uint64_t flow;
  };
  std::vector<Merge> merges;
  for (auto& [home, pages] : by_home) {
    net::WireWriter w;
    w.Put(net::DiffMergeHeader{flush_epoch_, static_cast<uint16_t>(pages.size())});
    for (const PageDiff& d : pages) {
      w.Put(net::DiffPageHeader{d.page, static_cast<uint16_t>(d.runs.size())});
      const std::byte* cur =
          node_.replica_.data() + (static_cast<GlobalAddr>(d.page) << node_.layout_->page_shift());
      for (const net::DiffRun& run : d.runs) {
        w.Put(run);
        w.PutBytes(cur + run.offset, run.len);
        node_.stats_.diff_bytes_sent += run.len;
        node_.stats_.page_data_bytes += run.len;
      }
      node_.stats_.diff_pages_flushed++;
    }
    const uint64_t flow = node_.hooks_.tracer != nullptr ? node_.hooks_.tracer->NewTraceId() : 0;
    merges.push_back(Merge{home, w.Take(), flow});
  }
  // Sync-batch mode: remember what was flushed where — the next epoch's first fault into a set
  // re-fetches the whole set with bulk requests instead of RTT-chained single-page faults.
  if (node_.config_.coalesce_sync_batch) {
    last_flush_sets_.clear();
    for (const auto& [p, twin] : twins_) {
      last_flush_sets_[node_.table_[p].probable_owner].insert(p);
    }
  }
  // The merge to the barrier parent goes out gated: its ack is elided (the done broadcast stands
  // in), it does not count as an outstanding fetch, and the transport holds its frame so it packs
  // with the reduce-up of the same sync point.
  const bool gating =
      node_.config_.coalesce_sync_batch && node_.config_.barrier_parent != kNoNode;
  auto is_gated = [&](const Merge& m) { return gating && m.home == node_.config_.barrier_parent; };
  // Count every acked merge as an outstanding fetch BEFORE sending any: a send's time charge can
  // dispatch pending events (even this flush's own ack), and a premature zero crossing would
  // release the barrier's drain wait while merges are still unacknowledged.
  int acked_merges = 0;
  for (const Merge& m : merges) {
    if (!is_gated(m)) {
      ++acked_merges;
    }
  }
  node_.pending_fetches_ += acked_merges;
  const uint64_t epoch = flush_epoch_;
  for (Merge& m : merges) {
    node_.stats_.diff_merges_sent++;
    if (NodeTracer* tr = node_.tracer(); tr != nullptr) {
      tr->Flow(kFlowStart, "dsm", "diff e" + std::to_string(epoch), m.flow);
    }
    TraceContext trace_ctx(node_.hooks_.tracer, m.flow);
    if (is_gated(m)) {
      DFIL_CHECK_EQ(gated_merge_req_, uint64_t{0})
          << "gated merge of epoch " << gated_merge_epoch_ << " still pending";
      gated_merge_epoch_ = epoch;
      gated_merge_req_ = node_.packet_->SendRequest(m.home, net::Service::kDiffMergeGated,
                                                    std::move(m.payload), /*on_reply=*/nullptr,
                                                    TimeCategory::kDataTransfer);
      continue;
    }
    node_.packet_->SendRequest(
        m.home, net::Service::kDiffMerge, std::move(m.payload),
        [this, epoch, flow = m.flow](net::Payload) {
          if (NodeTracer* tr = node_.tracer(); tr != nullptr) {
            tr->Flow(kFlowEnd, "dsm", "diff e" + std::to_string(epoch), flow);
          }
          DFIL_CHECK_GT(node_.pending_fetches_, 0);
          if (--node_.pending_fetches_ == 0 && node_.hooks_.fetches_drained) {
            node_.hooks_.fetches_drained();
          }
        },
        TimeCategory::kDataTransfer);
  }
  // The flushed copies die like any sync-point copy; the home's frame is now authoritative.
  for (const auto& [p, twin] : twins_) {
    PageEntry& e = node_.table_[p];
    e.state = PageState::kInvalid;
    e.diff_copy = false;
    node_.stats_.implicit_invalidations++;
    node_.NotePageDiscarded(e);
  }
  twins_.clear();
}

std::optional<net::Payload> DiffProtocol::ServeMerge(NodeId src, net::WireReader body,
                                                     bool gated) {
  const auto h = body.Get<net::DiffMergeHeader>();
  TraceSpan apply_span(node_.hooks_.tracer, "dsm", "diff_apply e", h.epoch);
  if (NodeTracer* tr = node_.tracer(); tr != nullptr) {
    tr->Flow(kFlowStep, "dsm", "diff e" + std::to_string(h.epoch), tr->current());
  }
  // A gated merge's ack is elided: the sender treats the barrier done broadcast (which this node
  // only sends after applying the merge) as the acknowledgment.
  if (gated) {
    node_.packet_->ElideCurrentReply();
  }
  const auto it = applied_epoch_.find(src);
  if (it != applied_epoch_.end() && h.epoch <= it->second) {
    // A retransmission (or delayed duplicate) of a flush we already merged; re-ack without
    // re-applying, so a lost ack can never double-apply runs.
    node_.stats_.diff_stale_merges_ignored++;
    return net::Payload{};
  }
  applied_epoch_[src] = h.epoch;
  std::vector<std::byte> scratch(node_.layout_->page_size());
  bool applied_any = false;
  for (uint16_t i = 0; i < h.npages; ++i) {
    const auto ph = body.Get<net::DiffPageHeader>();
    // Ownership is pinned while diff copies exist (see OnRemoteRequest), so merges always find
    // their home; a page we no longer own can only appear in pathological injected schedules,
    // and its runs are consumed without touching the frame.
    const bool own = node_.table_[ph.page].owner;
    std::byte* frame =
        node_.replica_.data() + (static_cast<GlobalAddr>(ph.page) << node_.layout_->page_shift());
    std::vector<net::DiffRun> runs;
    runs.reserve(ph.nruns);
    for (uint16_t r = 0; r < ph.nruns; ++r) {
      const auto run = body.Get<net::DiffRun>();
      body.GetBytes(own ? frame + run.offset : scratch.data(), run.len);
      runs.push_back(run);
    }
    if (!own) {
      node_.stats_.diff_stale_merges_ignored++;
      continue;
    }
    node_.hooks_.charge(TimeCategory::kDataTransfer, node_.costs_->diff_apply_page);
    node_.stats_.diff_pages_merged++;
    if (node_.config_.adapt_protocols) {
      node_.NoteAdaptTraffic(ph.page);  // incoming merges keep the group hot (and pinned)
    }
    applied_any = true;
    DFIL_ORACLE(OnDiffMergeApplied(node_.self_, src, ph.page, h.epoch, runs));
  }
  if (applied_any) {
    node_.stats_.diff_merges_applied++;
  }
  return net::Payload{};  // empty ack; the sender's barrier drain waits on it
}

void DiffProtocol::OnBarrierDone() {
  if (gated_merge_req_ != 0) {
    // The done broadcast proves the parent applied (or durably recorded) our gated merge; stop
    // retransmitting it.
    node_.packet_->CancelRequest(gated_merge_req_);
    gated_merge_req_ = 0;
  }
}

}  // namespace dfil::dsm
