#include "src/core/config.h"

#include <string>

namespace dfil::core {
namespace {

// True when the plan can make a raw broadcast frame vanish (drop, burst loss, or a rule with a
// nonzero drop probability): the done broadcast then needs per-node reliable delivery.
bool PlanCanDropFrames(const sim::FaultPlan& plan) {
  if (plan.loss_rate > 0.0 || plan.burst.enabled()) {
    return true;
  }
  for (const sim::FaultRule& rule : plan.rules) {
    if (rule.drop > 0.0) {
      return true;
    }
  }
  return false;
}

bool InUnitInterval(double v) { return v >= 0.0 && v <= 1.0; }

}  // namespace

sim::FaultPlan ClusterConfig::EffectiveFaultPlan() const {
  sim::FaultPlan plan = fault_plan;
  if (plan.loss_rate == 0.0) {
    plan.loss_rate = loss_rate;  // deprecated alias, kept one release
  }
  if (plan.seed == 0) {
    plan.seed = seed ^ 0x9E3779B97F4A7C15ULL;  // derived, so `seed` alone replays the run
  }
  return plan;
}

std::vector<std::string> ClusterConfig::Validate() const {
  std::vector<std::string> errors;
  const auto reject = [&errors](const std::string& what) { errors.push_back(what); };

  if (nodes < 1) {
    reject("nodes must be >= 1 (got " + std::to_string(nodes) + ")");
  } else if (nodes > 64) {
    reject("nodes must be <= 64 (copysets are 64-bit masks; got " + std::to_string(nodes) + ")");
  }
  if (page_shift < 6 || page_shift > 20) {
    reject("page_shift must be in [6, 20] (got " + std::to_string(page_shift) +
           "); pages below 64 B thrash the directory, above 1 MB defeat fine-grain sharing");
  }
  if (max_server_threads < 1) {
    reject("max_server_threads must be >= 1 (got " + std::to_string(max_server_threads) + ")");
  }

  const sim::FaultPlan plan = EffectiveFaultPlan();
  if (!InUnitInterval(plan.loss_rate)) {
    reject("fault plan loss_rate must be a probability in [0, 1] (got " +
           std::to_string(plan.loss_rate) + ")");
  }
  if (fault_plan.loss_rate != 0.0 && loss_rate != 0.0 &&
      fault_plan.loss_rate != loss_rate) {
    reject("loss_rate (deprecated) and fault_plan.loss_rate disagree; set only "
           "fault_plan.loss_rate");
  }
  if (PlanCanDropFrames(plan) && !reliable_broadcast) {
    reject("reliable_broadcast is required when the fault plan can drop frames: a lost done "
           "broadcast hangs every barrier");
  }

  if (coalesce.enabled) {
    if (coalesce.max_datagram_bytes < 256) {
      reject("coalesce.max_datagram_bytes must be >= 256 (got " +
             std::to_string(coalesce.max_datagram_bytes) + "); smaller than any single frame");
    }
    if (coalesce.request_hold < 0 || coalesce.ack_hold < 0 || coalesce.mutual_window < 0) {
      reject("coalesce hold windows must be non-negative");
    }
  }

  if (balancer.enabled) {
    if (!InUnitInterval(balancer.balance_trigger_ratio) || balancer.balance_trigger_ratio <= 0.0) {
      reject("balancer.balance_trigger_ratio must be in (0, 1] (got " +
             std::to_string(balancer.balance_trigger_ratio) + ")");
    }
    if (balancer.balance_patience_epochs < 1) {
      reject("balancer.balance_patience_epochs must be >= 1");
    }
    if (balancer.balance_cooldown_epochs < 1) {
      reject("balancer.balance_cooldown_epochs must be >= 1");
    }
    if (balancer.balance_move_fraction <= 0.0 || balancer.balance_move_fraction > 1.0) {
      reject("balancer.balance_move_fraction must be in (0, 1] (got " +
             std::to_string(balancer.balance_move_fraction) + ")");
    }
    if (!waitstate_enabled) {
      reject("balancer requires waitstate_enabled: the wait-state ledgers are its load signal");
    }
    if (barrier == BarrierKind::kDissemination) {
      reject("balancer requires a champion barrier (tournament or central): dissemination has "
             "no node that sees every sample");
    }
  }

  return errors;
}

}  // namespace dfil::core
