#include "src/core/config.h"

#include <cstdio>
#include <string>

namespace dfil::core {
namespace {

// Canonical serialization sink for ClusterConfig::Digest(): appends "key=value;" pairs and
// FNV-1a-hashes the resulting byte stream. Field ORDER and NAMES are part of the digest contract
// — appending new fields at the end changes the digest for configs that set them away from the
// hash of their textual default, which is exactly the desired behaviour (a new schedule-affecting
// knob makes old and new runs provably non-comparable only when it actually differs... but since
// the serialization always includes every field, ANY addition rolls the digest; dfil_diff treats
// that as a config difference and says so).
class DigestWriter {
 public:
  void Field(const char* key, uint64_t v) { Append(key, std::to_string(v)); }
  void Field(const char* key, uint32_t v) { Append(key, std::to_string(v)); }
  void Field(const char* key, int64_t v) { Append(key, std::to_string(v)); }
  void Field(const char* key, int v) { Append(key, std::to_string(v)); }
  void Field(const char* key, bool v) { Append(key, v ? "1" : "0"); }
  void Field(const char* key, double v) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    Append(key, buf);
  }

  uint64_t hash() const { return hash_; }

 private:
  void Append(const char* key, const std::string& value) {
    for (const char* p = key; *p != '\0'; ++p) {
      Mix(static_cast<unsigned char>(*p));
    }
    Mix('=');
    for (const char c : value) {
      Mix(static_cast<unsigned char>(c));
    }
    Mix(';');
  }
  void Mix(unsigned char byte) {
    hash_ ^= byte;
    hash_ *= 0x100000001B3ULL;  // FNV-1a 64-bit prime
  }

  uint64_t hash_ = 0xCBF29CE484222325ULL;  // FNV-1a offset basis
};

// True when the plan can make a raw broadcast frame vanish (drop, burst loss, or a rule with a
// nonzero drop probability): the done broadcast then needs per-node reliable delivery.
bool PlanCanDropFrames(const sim::FaultPlan& plan) {
  if (plan.loss_rate > 0.0 || plan.burst.enabled()) {
    return true;
  }
  for (const sim::FaultRule& rule : plan.rules) {
    if (rule.drop > 0.0) {
      return true;
    }
  }
  return false;
}

bool InUnitInterval(double v) { return v >= 0.0 && v <= 1.0; }

}  // namespace

sim::FaultPlan ClusterConfig::EffectiveFaultPlan() const {
  sim::FaultPlan plan = fault_plan;
  if (plan.loss_rate == 0.0) {
    plan.loss_rate = loss_rate;  // deprecated alias, kept one release
  }
  if (plan.seed == 0) {
    plan.seed = seed ^ 0x9E3779B97F4A7C15ULL;  // derived, so `seed` alone replays the run
  }
  return plan;
}

uint64_t ClusterConfig::Digest() const {
  DigestWriter w;
  w.Field("nodes", nodes);
  w.Field("network", network == NetworkKind::kSharedEthernet ? 0 : 1);
  w.Field("seed", seed);
  w.Field("page_shift", page_shift);
  w.Field("wake_at_front", wake_at_front);
  w.Field("max_server_threads", max_server_threads);
  w.Field("stack_bytes", stack_bytes);
  w.Field("reliable_broadcast", reliable_broadcast);
  w.Field("barrier", static_cast<int>(barrier));
  w.Field("max_virtual_time", max_virtual_time);

  const sim::CostModel& c = costs;
  w.Field("cost.filament_create", c.filament_create);
  w.Field("cost.filament_switch", c.filament_switch);
  w.Field("cost.filament_switch_inlined", c.filament_switch_inlined);
  w.Field("cost.thread_context_switch", c.thread_context_switch);
  w.Field("cost.thread_create", c.thread_create);
  w.Field("cost.fork_inline", c.fork_inline);
  w.Field("cost.fault_handle", c.fault_handle);
  w.Field("cost.page_service", c.page_service);
  w.Field("cost.page_install", c.page_install);
  w.Field("cost.invalidate_handle", c.invalidate_handle);
  w.Field("cost.page_redirect", c.page_redirect);
  w.Field("cost.bulk_service_extra_page", c.bulk_service_extra_page);
  w.Field("cost.prefetch_issue", c.prefetch_issue);
  w.Field("cost.diff_twin_copy", c.diff_twin_copy);
  w.Field("cost.diff_encode_page", c.diff_encode_page);
  w.Field("cost.diff_apply_page", c.diff_apply_page);
  w.Field("cost.msg_send_overhead", c.msg_send_overhead);
  w.Field("cost.msg_recv_overhead", c.msg_recv_overhead);
  w.Field("cost.timer_overhead", c.timer_overhead);
  w.Field("cost.coalesce_frame_send", c.coalesce_frame_send);
  w.Field("cost.coalesce_frame_recv", c.coalesce_frame_recv);
  w.Field("cost.wire_bytes_per_us", c.wire_bytes_per_us);
  w.Field("cost.frame_overhead_bytes", c.frame_overhead_bytes);
  w.Field("cost.min_frame_bytes", c.min_frame_bytes);
  w.Field("cost.propagation_delay", c.propagation_delay);
  w.Field("cost.retransmit_timeout", c.retransmit_timeout);
  w.Field("cost.retransmit_timeout_max", c.retransmit_timeout_max);
  w.Field("cost.retransmit_limit", c.retransmit_limit);
  w.Field("cost.matmul_mac", c.matmul_mac);
  w.Field("cost.jacobi_point", c.jacobi_point);
  w.Field("cost.quad_feval", c.quad_feval);
  w.Field("cost.tree_mac", c.tree_mac);
  w.Field("cost.loop_iter_overhead", c.loop_iter_overhead);

  w.Field("dsm.pcp", static_cast<int>(dsm.pcp));
  w.Field("dsm.mirage_window", dsm.mirage_window);
  w.Field("dsm.prefetch_detector", dsm.prefetch_detector);
  w.Field("dsm.prefetch_hints", dsm.prefetch_hints);
  w.Field("dsm.prefetch_min_run", dsm.prefetch_min_run);
  w.Field("dsm.prefetch_degree", dsm.prefetch_degree);
  w.Field("dsm.max_bulk_pages", dsm.max_bulk_pages);
  w.Field("dsm.adapt_protocols", dsm.adapt_protocols);
  w.Field("dsm.adapt_to_diff_threshold", dsm.adapt_to_diff_threshold);
  w.Field("dsm.adapt_calm_epochs", dsm.adapt_calm_epochs);

  w.Field("packet.retransmit_timeout", packet.retransmit_timeout);
  w.Field("packet.retransmit_timeout_max", packet.retransmit_timeout_max);
  w.Field("packet.rto_min", packet.rto_min);
  w.Field("packet.retransmit_limit", packet.retransmit_limit);
  w.Field("packet.response_cache_timeouts", packet.response_cache_timeouts);
  w.Field("packet.ack_replies", packet.ack_replies);

  w.Field("coalesce.enabled", coalesce.enabled);
  w.Field("coalesce.max_datagram_bytes", coalesce.max_datagram_bytes);
  w.Field("coalesce.request_hold", coalesce.request_hold);
  w.Field("coalesce.ack_hold", coalesce.ack_hold);
  w.Field("coalesce.mutual_window", coalesce.mutual_window);
  w.Field("coalesce.hold_requests", coalesce.hold_requests);
  w.Field("coalesce.sync_batch", coalesce.sync_batch);
  w.Field("coalesce.elide_reduce_replies", coalesce.elide_reduce_replies);
  w.Field("coalesce.elided_ack_timeout", coalesce.elided_ack_timeout);

  w.Field("fj.steal_enabled", fj.steal_enabled);
  w.Field("fj.prune_threshold", fj.prune_threshold);
  w.Field("fj.steal_min_surplus", fj.steal_min_surplus);
  w.Field("fj.steal_retry", fj.steal_retry);
  w.Field("fj.steal_grace", fj.steal_grace);

  w.Field("balancer.enabled", balancer.enabled);
  w.Field("balancer.balance_trigger_ratio", balancer.balance_trigger_ratio);
  w.Field("balancer.balance_patience_epochs", balancer.balance_patience_epochs);
  w.Field("balancer.balance_cooldown_epochs", balancer.balance_cooldown_epochs);
  w.Field("balancer.balance_move_fraction", balancer.balance_move_fraction);
  w.Field("balancer.balance_rehome_pages", balancer.balance_rehome_pages);

  const sim::FaultPlan plan = EffectiveFaultPlan();
  w.Field("fault.seed", plan.seed);
  w.Field("fault.loss_rate", plan.loss_rate);
  w.Field("fault.burst", plan.burst.enabled());
  w.Field("fault.rules", plan.rules.size());
  for (const sim::FaultRule& rule : plan.rules) {
    w.Field("rule.src", static_cast<int64_t>(rule.src));
    w.Field("rule.dst", static_cast<int64_t>(rule.dst));
    w.Field("rule.type", static_cast<uint64_t>(rule.type));
    w.Field("rule.klass", static_cast<int>(rule.klass));
    w.Field("rule.seq_from", rule.seq_from);
    w.Field("rule.seq_to", rule.seq_to);
    w.Field("rule.drop", rule.drop);
    w.Field("rule.duplicate", rule.duplicate);
    w.Field("rule.delay", rule.delay);
    w.Field("rule.delay_min", rule.delay_min);
    w.Field("rule.delay_max", rule.delay_max);
  }
  w.Field("fault.stalls", plan.stalls.size());
  return w.hash();
}

std::string ClusterConfig::DigestHex() const {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(Digest()));
  return buf;
}

std::vector<std::string> ClusterConfig::Validate() const {
  std::vector<std::string> errors;
  const auto reject = [&errors](const std::string& what) { errors.push_back(what); };

  if (nodes < 1) {
    reject("nodes must be >= 1 (got " + std::to_string(nodes) + ")");
  } else if (nodes > 64) {
    reject("nodes must be <= 64 (copysets are 64-bit masks; got " + std::to_string(nodes) + ")");
  }
  if (page_shift < 6 || page_shift > 20) {
    reject("page_shift must be in [6, 20] (got " + std::to_string(page_shift) +
           "); pages below 64 B thrash the directory, above 1 MB defeat fine-grain sharing");
  }
  if (max_server_threads < 1) {
    reject("max_server_threads must be >= 1 (got " + std::to_string(max_server_threads) + ")");
  }

  const sim::FaultPlan plan = EffectiveFaultPlan();
  if (!InUnitInterval(plan.loss_rate)) {
    reject("fault plan loss_rate must be a probability in [0, 1] (got " +
           std::to_string(plan.loss_rate) + ")");
  }
  if (fault_plan.loss_rate != 0.0 && loss_rate != 0.0 &&
      fault_plan.loss_rate != loss_rate) {
    reject("loss_rate (deprecated) and fault_plan.loss_rate disagree; set only "
           "fault_plan.loss_rate");
  }
  if (PlanCanDropFrames(plan) && !reliable_broadcast) {
    reject("reliable_broadcast is required when the fault plan can drop frames: a lost done "
           "broadcast hangs every barrier");
  }

  if (coalesce.enabled) {
    if (coalesce.max_datagram_bytes < 256) {
      reject("coalesce.max_datagram_bytes must be >= 256 (got " +
             std::to_string(coalesce.max_datagram_bytes) + "); smaller than any single frame");
    }
    if (coalesce.request_hold < 0 || coalesce.ack_hold < 0 || coalesce.mutual_window < 0) {
      reject("coalesce hold windows must be non-negative");
    }
  }

  if (balancer.enabled) {
    if (!InUnitInterval(balancer.balance_trigger_ratio) || balancer.balance_trigger_ratio <= 0.0) {
      reject("balancer.balance_trigger_ratio must be in (0, 1] (got " +
             std::to_string(balancer.balance_trigger_ratio) + ")");
    }
    if (balancer.balance_patience_epochs < 1) {
      reject("balancer.balance_patience_epochs must be >= 1");
    }
    if (balancer.balance_cooldown_epochs < 1) {
      reject("balancer.balance_cooldown_epochs must be >= 1");
    }
    if (balancer.balance_move_fraction <= 0.0 || balancer.balance_move_fraction > 1.0) {
      reject("balancer.balance_move_fraction must be in (0, 1] (got " +
             std::to_string(balancer.balance_move_fraction) + ")");
    }
    if (!waitstate_enabled) {
      reject("balancer requires waitstate_enabled: the wait-state ledgers are its load signal");
    }
    if (barrier == BarrierKind::kDissemination) {
      reject("balancer requires a champion barrier (tournament or central): dissemination has "
             "no node that sees every sample");
    }
  }

  return errors;
}

}  // namespace dfil::core
