// PoolEngine: executes RTC and iterative filaments through pools (paper §2.2).
//
// A sweep runs every pool's filaments exactly once. Pools are executed by server threads; when a
// filament faults, its whole pool is suspended with the faulting thread and a fresh server thread
// starts on the next pool, overlapping the page fetch with useful computation. For iterative
// programs the engine frontloads faults: pools are run in the reverse order of the previous
// sweep's completion (a pool that faulted finishes late, so it runs first next time), and threads
// enabled by a page arrival are placed at the tail of the ready queue.
//
// Before executing, a pool's filament list is pattern-matched into contiguous strips (same code
// pointer, affine argument steps). Strips execute through a tight loop that generates arguments
// directly — the paper's run-time pattern recognition — at the cheaper inlined-switch cost.
#ifndef DFIL_CORE_POOL_ENGINE_H_
#define DFIL_CORE_POOL_ENGINE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "src/common/types.h"
#include "src/core/filament.h"
#include "src/threads/server_thread.h"

namespace dfil::core {

class NodeRuntime;

class PoolEngine {
 public:
  explicit PoolEngine(NodeRuntime* rt) : rt_(rt) {}

  int CreatePool();
  int num_pools() const { return static_cast<int>(pools_.size()); }
  void AddFilament(int pool, FilamentFn fn, int64_t a0, int64_t a1, int64_t a2);

  // Adaptive pool assignment (paper §2.2 future work): filaments added here start in one
  // profiling pool; after the first sweep they are re-clustered into one pool per first-faulted
  // page plus a pool of non-faulting filaments, restoring communication/computation overlap
  // without any manual pool choice.
  void AddAutoFilament(FilamentFn fn, int64_t a0, int64_t a1, int64_t a2);

  // Runs one sweep over all pools; blocks the calling (main) thread until every filament ran.
  void RunSweep();

  // Runs sweeps until `after_iteration` returns false. `after_iteration` executes on the calling
  // thread after each sweep and must contain the iteration's synchronization point.
  void RunIterative(const std::function<bool(int iter)>& after_iteration);

  // Runtime hook: the current server thread is about to suspend on a page fault.
  void OnThreadBlockedOnPage(PageId page);

  // Execution order of the most recent sweep (pool ids), for frontloading tests.
  const std::vector<int>& last_sweep_order() const { return last_order_ids_; }

  // --- Load-balancer hooks (DESIGN.md §13; all inert while the balancer is off) ---

  // A rebalance plan named this node as source: extracts whole pools in id order — skipping
  // auto-profile pools and always leaving at least one populated pool behind — until at least
  // `fraction` of this node's filaments moved. Returns the filaments plus the union of the moved
  // pools' last-sweep write footprints. Deterministic; returns an empty batch rather than
  // stripping the node bare.
  struct MigrationBatch {
    std::vector<Filament> filaments;
    std::vector<uint32_t> pages;
  };
  MigrationBatch ExtractMigration(double fraction);

  // The done broadcast named this node as a migration target: the next RunSweep blocks at entry
  // until the matching kFilamentMigrate batch has been integrated.
  void ExpectMigration() { ++expected_migrations_; }
  // A migration batch arrived (possibly empty); integrated at the next RunSweep entry.
  void AcceptMigration(std::vector<Filament> filaments);

  // Records one page of the current runner's pool write footprint (called from NodeEnv on write
  // accesses while the balancer is on; O(1) via last-page dedupe).
  void NoteWriteAccess(uint32_t page);

 private:
  void RunnerLoop();
  void ExecutePool(Pool* pool);
  // prefetch_hints mode: prune + re-issue the pool's fault footprint as bulk prefetches.
  void IssuePrefetchHints(Pool* pool);
  static void BuildPatterns(Pool* pool);
  void EnsureRunnerForRemainingPools();
  // Splits profiled auto pools into per-page pools after the sweep.
  void RepartitionAutoPools();
  // Sweep-entry migration barrier: integrates arrived batches, blocks ("migrate") on in-flight
  // ones, so no sweep runs while migrated filaments are between nodes.
  void WaitForMigrations();

  NodeRuntime* rt_;
  std::vector<std::unique_ptr<Pool>> pools_;

  // Sweep state.
  bool sweep_active_ = false;
  std::vector<Pool*> order_;
  std::vector<int> last_order_ids_;
  size_t next_pool_ = 0;
  int pools_remaining_ = 0;
  std::vector<Pool*> finish_stack_;  // completion order; reversed, it frontloads the next sweep
  threads::ServerThread* sweep_waiter_ = nullptr;
  int spare_runners_ = 0;  // spawned runners that have not picked a pool yet
  struct RunnerPosition {
    Pool* pool = nullptr;
    int64_t ordinal = 0;  // index of the filament currently executing (profiling key)
  };
  std::map<threads::ServerThread*, RunnerPosition> running_pool_;
  int auto_pool_ = -1;
  std::map<uint32_t, int> auto_page_pools_;  // faulted page -> pool id

  // Migration state (balancer only).
  int expected_migrations_ = 0;  // plans that named this node destination
  int applied_migrations_ = 0;   // batches integrated into pools
  std::deque<std::vector<Filament>> arrived_migrations_;
  threads::ServerThread* migrate_waiter_ = nullptr;
};

}  // namespace dfil::core

#endif  // DFIL_CORE_POOL_ENGINE_H_
