// Typed views over distributed shared memory.
//
// These are the library routines the paper mentions for allocating padded global data structures.
// A GlobalArray2D<T> can pad each row to a page boundary so different nodes' strips never share a
// page (the user-controlled granularity knob that stands in for false-sharing avoidance).
#ifndef DFIL_CORE_GLOBAL_ARRAY_H_
#define DFIL_CORE_GLOBAL_ARRAY_H_

#include <cstddef>
#include <string>

#include "src/common/check.h"
#include "src/common/types.h"
#include "src/core/node_env.h"
#include "src/dsm/layout.h"

namespace dfil::core {

template <typename T>
class GlobalRef {
 public:
  GlobalRef() = default;
  explicit GlobalRef(GlobalAddr addr) : addr_(addr) {}

  static GlobalRef Alloc(dsm::GlobalLayout& layout, const std::string& name) {
    return GlobalRef(layout.Alloc(sizeof(T), alignof(T), name));
  }

  GlobalAddr addr() const { return addr_; }
  T Read(NodeEnv& env) const { return env.Read<T>(addr_); }
  void Write(NodeEnv& env, const T& v) const { env.Write<T>(addr_, v); }

 private:
  GlobalAddr addr_ = 0;
};

template <typename T>
class GlobalArray1D {
 public:
  GlobalArray1D() = default;
  GlobalArray1D(GlobalAddr base, size_t count) : base_(base), count_(count) {}

  static GlobalArray1D Alloc(dsm::GlobalLayout& layout, size_t count, const std::string& name) {
    return GlobalArray1D(layout.AllocPadded(count * sizeof(T), name), count);
  }

  size_t size() const { return count_; }
  GlobalAddr addr(size_t i) const {
    DFIL_DCHECK(i < count_);
    return base_ + i * sizeof(T);
  }

  T Read(NodeEnv& env, size_t i) const { return env.Read<T>(addr(i)); }
  void Write(NodeEnv& env, size_t i, const T& v) const { env.Write<T>(addr(i), v); }

  // Blocking span access: faults in all pages covering [i, i+n), then returns a raw pointer
  // (valid until the next potential suspension point).
  T* Span(NodeEnv& env, size_t i, size_t n, dsm::AccessMode mode) const {
    return reinterpret_cast<T*>(env.AccessBytes(addr(i), n * sizeof(T), mode));
  }

 private:
  GlobalAddr base_ = 0;
  size_t count_ = 0;
};

template <typename T>
class GlobalArray2D {
 public:
  GlobalArray2D() = default;
  GlobalArray2D(GlobalAddr base, size_t rows, size_t cols, size_t row_stride_bytes)
      : base_(base), rows_(rows), cols_(cols), row_stride_(row_stride_bytes) {}

  // When `pad_rows_to_pages` is true every row starts a fresh DSM page — the padding library
  // routine of paper §3, which keeps per-row strips from sharing pages across nodes.
  static GlobalArray2D Alloc(dsm::GlobalLayout& layout, size_t rows, size_t cols,
                             bool pad_rows_to_pages, const std::string& name) {
    size_t stride = cols * sizeof(T);
    if (pad_rows_to_pages) {
      const size_t ps = layout.page_size();
      stride = ((stride + ps - 1) / ps) * ps;
    }
    GlobalAddr base = layout.AllocArray2D(rows, cols, sizeof(T), pad_rows_to_pages, name);
    return GlobalArray2D(base, rows, cols, stride);
  }

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  GlobalAddr addr(size_t i, size_t j) const {
    DFIL_DCHECK(i < rows_ && j < cols_);
    return base_ + i * row_stride_ + j * sizeof(T);
  }
  GlobalAddr row_addr(size_t i) const { return base_ + i * row_stride_; }

  T Read(NodeEnv& env, size_t i, size_t j) const { return env.Read<T>(addr(i, j)); }
  void Write(NodeEnv& env, size_t i, size_t j, const T& v) const { env.Write<T>(addr(i, j), v); }

  // Row access with a single fault check for the whole row.
  const T* RowRead(NodeEnv& env, size_t i) const {
    return reinterpret_cast<const T*>(
        env.AccessBytes(row_addr(i), cols_ * sizeof(T), dsm::AccessMode::kRead));
  }
  T* RowWrite(NodeEnv& env, size_t i) const {
    return reinterpret_cast<T*>(
        env.AccessBytes(row_addr(i), cols_ * sizeof(T), dsm::AccessMode::kWrite));
  }

 private:
  GlobalAddr base_ = 0;
  size_t rows_ = 0;
  size_t cols_ = 0;
  size_t row_stride_ = 0;
};

}  // namespace dfil::core

#endif  // DFIL_CORE_GLOBAL_ARRAY_H_
