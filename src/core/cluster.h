// Cluster: builds and runs a simulated Distributed Filaments cluster.
//
// Usage:
//   core::ClusterConfig cfg;           // nodes, network, PCP, ...
//   core::Cluster cluster(cfg);
//   auto a = cluster.layout().AllocArray2D(...);   // shared data, before Run
//   core::RunReport r = cluster.Run([&](core::NodeEnv& env) { ... SPMD node program ... });
//
// A Cluster runs exactly once; construct a fresh one per experiment (benches sweep node counts by
// building one cluster per point).
#ifndef DFIL_CORE_CLUSTER_H_
#define DFIL_CORE_CLUSTER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/metrics.h"
#include "src/common/poolprof.h"
#include "src/common/stats.h"
#include "src/common/trace.h"
#include "src/common/waitstate.h"
#include "src/core/config.h"
#include "src/core/node_env.h"
#include "src/core/node_runtime.h"
#include "src/dsm/layout.h"
#include "src/sim/machine.h"

namespace dfil::core {

struct NodeReport {
  NodeId node = 0;
  SimTime finished_at = 0;          // virtual time the node's main returned
  SimTime final_clock = 0;          // node clock at end of run (>= finished_at; includes the tail)
  TimeBreakdown breakdown;          // Figure 10 categories
  FilamentStats filaments;
  DsmStats dsm;
  net::PacketStats packet;
  MetricsRegistry metrics;          // live histograms + runtime counters
  // Wait-state ledgers + flight ring (zeroed unless ClusterConfig::waitstate_enabled). After
  // FinalizeWaitstate, run_time + serve_time + wait_time == final_clock exactly.
  WaitStateRecorder waits;
  // Per-pool run/blocked/fault attribution (empty unless ClusterConfig::pool_profile_enabled).
  // Invariant: pool_run_total() + other_run() == waits.run_time() exactly (SimTime resolution).
  PoolProfiler poolprof;
  std::map<uint16_t, uint64_t> sent_by_service;  // Figure 9 message counts
  std::vector<uint32_t> page_heat;  // demand faults per page on this node
};

// Flight-recorder snapshot: every node's recent wait events plus the machine's recent
// fault-injection decisions. Captured the moment the coherence oracle records its first violation
// (at_violation = true, while the rings still hold the lead-up), else at end of run. Empty unless
// ClusterConfig::waitstate_enabled.
struct FlightSnapshot {
  bool at_violation = false;
  std::vector<std::vector<WaitEvent>> node_events;  // indexed by node, oldest first
  std::vector<sim::Machine::InjectionNote> injections;
};

struct RunReport {
  bool completed = false;
  bool deadlocked = false;
  std::string deadlock_report;
  SimTime makespan = 0;             // max node clock (the program's virtual run time)
  uint64_t events = 0;
  MessageStats net;                 // cluster-wide message counters
  SimTime medium_busy = 0;          // total wire occupancy (saturation diagnostics)
  std::string pcp;                  // protocol name (PcpName), for report labelling
  int num_nodes = 0;
  std::vector<NodeReport> nodes;
  // Reproducibility provenance (the config knobs that picked this schedule), stamped into every
  // metrics export; bench_util overlays its CLI-level fields on top.
  std::map<std::string, std::string> provenance;
  FlightSnapshot flight;
  // Execution trace (null unless ClusterConfig::trace_enabled); export with WriteChromeTrace.
  std::shared_ptr<TraceRecorder> trace;

  double seconds() const { return ToSeconds(makespan); }
};

class Cluster {
 public:
  explicit Cluster(const ClusterConfig& config);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  // Shared-memory layout; allocate before Run (it is sealed when Run starts).
  dsm::GlobalLayout& layout() { return layout_; }
  const ClusterConfig& config() const { return config_; }

  using NodeMain = std::function<void(NodeEnv&)>;

  // Runs `node_main` SPMD on every node and simulates to completion (or deadlock).
  RunReport Run(const NodeMain& node_main);

 private:
  ClusterConfig config_;
  dsm::GlobalLayout layout_;
  std::unique_ptr<sim::Machine> machine_;
  std::vector<std::unique_ptr<NodeRuntime>> nodes_;
  bool ran_ = false;
};

}  // namespace dfil::core

#endif  // DFIL_CORE_CLUSTER_H_
