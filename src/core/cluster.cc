#include "src/core/cluster.h"

#include <utility>

#include "src/common/check.h"
#include "src/common/log.h"
#include "src/dsm/coherence_oracle.h"

namespace dfil::core {
namespace {

const char* BarrierName(ClusterConfig::BarrierKind k) {
  switch (k) {
    case ClusterConfig::BarrierKind::kTournamentBroadcast:
      return "tournament";
    case ClusterConfig::BarrierKind::kDissemination:
      return "dissemination";
    case ClusterConfig::BarrierKind::kCentral:
      return "central";
  }
  return "?";
}

}  // namespace

Cluster::Cluster(const ClusterConfig& config) : config_(config), layout_(config.page_shift) {
  const std::vector<std::string> errors = config_.Validate();
  for (const std::string& error : errors) {
    DFIL_LOG(kError, "core") << "invalid ClusterConfig: " << error;
  }
  DFIL_CHECK(errors.empty()) << "invalid ClusterConfig (" << errors.size() << " error"
                             << (errors.size() == 1 ? "" : "s") << "; first: " << errors.front()
                             << ")";
}

Cluster::~Cluster() = default;

RunReport Cluster::Run(const NodeMain& node_main) {
  DFIL_CHECK(!ran_) << "a Cluster runs exactly once; construct a new one per experiment";
  ran_ = true;
  if (!layout_.sealed()) {
    layout_.Seal(config_.nodes);
  }

  std::unique_ptr<sim::NetworkModel> net;
  if (config_.network == NetworkKind::kSharedEthernet) {
    net = std::make_unique<sim::SharedEthernet>(config_.costs);
  } else {
    net = std::make_unique<sim::SwitchedNetwork>(config_.costs, config_.nodes);
  }
  machine_ = std::make_unique<sim::Machine>(std::move(net), config_.costs,
                                            config_.EffectiveFaultPlan());

  std::shared_ptr<TraceRecorder> trace;
  if (config_.trace_enabled) {
    trace = std::make_shared<TraceRecorder>();
  }
  machine_->SetTrace(trace.get());
  nodes_.clear();
  for (NodeId n = 0; n < config_.nodes; ++n) {
    nodes_.push_back(std::make_unique<NodeRuntime>(n, config_, machine_.get(), &layout_));
    nodes_.back()->SetTrace(trace.get());
    machine_->AddHost(nodes_.back().get());
  }
  for (auto& node : nodes_) {
    NodeRuntime* rt = node.get();
    rt->SetMain([rt, &node_main] { node_main(rt->env()); });
  }

  FlightSnapshot flight;
#ifndef DFIL_DISABLE_COHERENCE_ORACLE
  if (config_.coherence_oracle != nullptr && config_.waitstate_enabled) {
    config_.coherence_oracle->on_first_violation = [this, &flight] {
      flight.at_violation = true;
      flight.node_events.clear();
      for (auto& node : nodes_) {
        flight.node_events.push_back(node->waitstate().RecentEvents());
      }
      flight.injections = machine_->RecentInjections();
    };
  }
#endif

  sim::RunResult sim_result = machine_->Run(config_.max_virtual_time);

#ifndef DFIL_DISABLE_COHERENCE_ORACLE
  if (config_.coherence_oracle != nullptr) {
    config_.coherence_oracle->on_first_violation = nullptr;
  }
#endif
  for (auto& node : nodes_) {
    node->FinalizeWaitstate();
  }
  if (config_.waitstate_enabled && !flight.at_violation) {
    for (auto& node : nodes_) {
      flight.node_events.push_back(node->waitstate().RecentEvents());
    }
    flight.injections = machine_->RecentInjections();
  }

  RunReport report;
  report.completed = sim_result.completed;
  report.deadlocked = sim_result.deadlocked;
  report.deadlock_report = sim_result.deadlock_report;
  report.makespan = sim_result.makespan;
  report.events = sim_result.events_dispatched;
  report.net = machine_->net_stats();
  report.medium_busy = machine_->network().MediumBusyTime();
  report.pcp = dsm::PcpName(config_.dsm.pcp);
  report.num_nodes = config_.nodes;
  report.trace = trace;
  report.flight = std::move(flight);
  report.provenance["nodes"] = std::to_string(config_.nodes);
  report.provenance["pcp"] = report.pcp;
  report.provenance["page_shift"] = std::to_string(config_.page_shift);
  report.provenance["seed"] = std::to_string(config_.seed);
  report.provenance["network"] =
      config_.network == NetworkKind::kSharedEthernet ? "shared-ethernet" : "switched";
  report.provenance["barrier"] = BarrierName(config_.barrier);
  report.provenance["coalesce"] = config_.coalesce.enabled ? "on" : "off";
  report.provenance["waitstate"] = config_.waitstate_enabled ? "on" : "off";
  report.provenance["balancer"] = config_.balancer.enabled ? "on" : "off";
  report.provenance["loss_rate"] = std::to_string(config_.EffectiveFaultPlan().loss_rate);
  report.provenance["pool_profile"] = config_.pool_profile_enabled ? "on" : "off";
  // Run-fingerprint fields (DESIGN.md §14): the canonical config digest makes two runs provably
  // comparable (equal = same schedule-affecting configuration) and the build SHA pins the code.
  report.provenance["config_digest"] = config_.DigestHex();
#ifdef DFIL_GIT_SHA
  report.provenance["git"] = DFIL_GIT_SHA;
#else
  report.provenance["git"] = "unknown";
#endif
  for (auto& node : nodes_) {
    NodeReport nr;
    nr.node = node->id();
    nr.finished_at = node->main_finished_at();
    nr.final_clock = node->Clock();
    nr.waits = node->waitstate();
    nr.poolprof = node->poolprof();
    nr.breakdown = node->breakdown();
    nr.filaments = node->fil_stats();
    nr.dsm = node->dsm().stats();
    nr.packet = node->packet().stats();
    nr.metrics = node->metrics();
    nr.sent_by_service = node->packet().sent_by_service();
    nr.page_heat = node->dsm().fault_heat();
    report.nodes.push_back(nr);
  }
  return report;
}

}  // namespace dfil::core
