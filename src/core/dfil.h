// dfil.h — the single public header for Distributed Filaments programs.
//
// Applications, examples, and benches include only this file; everything underneath
// (src/dsm, src/net, src/sim, the split core headers) is internal layout that can move without
// breaking user code. The exported surface:
//
//   core::ClusterConfig   — nodes, network kind, cost model, page size, PCP + adapter knobs
//   core::Cluster         — builds the simulated cluster; cluster.Run(node_program) executes the
//                           SPMD program once and returns a core::RunReport
//   core::NodeEnv         — the per-node handle inside Run: Read/Write on global addresses,
//                           filament pools, fork/join, Barrier, Reduce, bulk messaging
//   core::GlobalRef<T>, core::GlobalArray1D<T>, core::GlobalArray2D<T>
//                         — typed views over cluster.layout() allocations
//   core::ParallelFor*    — forall-style lowering helpers over filament pools
//   dsm::Pcp, dsm::PcpName — the page-consistency protocols (migratory, write-invalidate,
//                           implicit-invalidate, diff) selected via ClusterConfig::dsm
//   dsm::CoherenceOracle  — optional checker attached via ClusterConfig::coherence_oracle
//   sim::FaultPlan        — message-level fault injection via ClusterConfig::fault_plan
//   DFIL_CHECK / DFIL_LOG / DfilSetLogLevel, common::Rng — checks, logging, deterministic RNG
//
// See README.md ("Public API") for a walkthrough and examples/quickstart.cpp for the smallest
// complete program.
#ifndef DFIL_CORE_DFIL_H_
#define DFIL_CORE_DFIL_H_

#include "src/common/check.h"
#include "src/common/log.h"
#include "src/common/rng.h"
#include "src/core/cluster.h"
#include "src/core/config.h"
#include "src/core/forkjoin.h"
#include "src/core/global_array.h"
#include "src/core/node_env.h"
#include "src/core/parallel.h"
#include "src/dsm/coherence_oracle.h"
#include "src/sim/fault_plan.h"

#endif  // DFIL_CORE_DFIL_H_
