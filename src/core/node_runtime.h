// NodeRuntime: one simulated workstation running the Distributed Filaments kernel.
//
// Implements sim::NodeHost. Owns the node's server threads and their (non-preemptive, SR-style)
// scheduler, the Packet endpoint, the DSM node, the pool engine (RTC/iterative filaments), the
// fork/join engine, the tournament-reduction engine, and the explicit-message channels used by
// the coarse-grain comparison programs.
//
// Scheduling contract: the Machine resumes this node via Step(), which switches into a server
// thread; the thread gives the processor back when it blocks, finishes, or — mid-charge — when a
// pending external event (message/timer) must be dispatched, in which case it is resumed first
// afterwards (interrupt semantics: handlers run "under" the interrupted thread, which then
// continues; no reschedule happens on an interrupt, the scheduler is non-preemptive).
#ifndef DFIL_CORE_NODE_RUNTIME_H_
#define DFIL_CORE_NODE_RUNTIME_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <tuple>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/common/intrusive_list.h"
#include "src/common/metrics.h"
#include "src/common/poolprof.h"
#include "src/common/stats.h"
#include "src/common/trace.h"
#include "src/common/types.h"
#include "src/common/waitstate.h"
#include "src/core/config.h"
#include "src/core/node_env.h"
#include "src/dsm/dsm_node.h"
#include "src/net/packet.h"
#include "src/sim/machine.h"
#include "src/threads/server_thread.h"

namespace dfil::core {

class PoolEngine;
class FjEngine;

class NodeRuntime final : public sim::NodeHost {
 public:
  NodeRuntime(NodeId id, const ClusterConfig& config, sim::Machine* machine,
              const dsm::GlobalLayout* layout);
  ~NodeRuntime() override;

  // Installs the node's main program; it runs as the first server thread.
  void SetMain(std::function<void()> body);

  // --- sim::NodeHost ---
  NodeId id() const override { return id_; }
  SimTime Clock() const override { return clock_; }
  bool Runnable() const override { return resume_first_ != nullptr || !ready_.empty(); }
  bool Done() const override { return main_done_; }
  void Step() override;
  void AdvanceTo(SimTime t) override;
  void OnDatagram(sim::Datagram d) override;
  std::string DescribeBlocked() const override;

  // --- Virtual time ---
  // Advances this node's clock by `cost`, attributing it to `category`. When called from a server
  // thread, yields to the machine whenever an external event falls due mid-charge, so message
  // handlers interrupt computation at exact virtual times.
  void Charge(TimeCategory category, SimTime cost);

  // --- Scheduling primitives (used by the engines and by DSM/packet hooks) ---
  // Suspends the current server thread; the caller has already recorded it on some wait queue and
  // set its state/block reason. Returns when the thread is woken.
  void BlockCurrent();
  // Makes `t` runnable. Placement defaults to the configured wake policy (front = fork/join
  // anti-thrashing; tail = iterative frontloading).
  void Wake(threads::ServerThread* t);
  void WakeAtFront(threads::ServerThread* t);
  void WakeAtTail(threads::ServerThread* t);
  // Creates a server thread running `body` and enqueues it (charges creation cost).
  threads::ServerThread* SpawnThread(std::function<void()> body);
  threads::ServerThread* CurrentThread() { return threads_.current(); }

  // Sends a reliable request and blocks the calling server thread until the reply arrives.
  net::Payload CallService(NodeId dst, net::Service service, net::Payload body,
                           TimeCategory charge_as);

  // --- Reductions (tournament with broadcast dissemination, paper §4.5 / [HFM88]) ---
  double Reduce(double value, ReduceOp op);

  // --- Explicit message channels (raw UDP semantics, for the CG programs) ---
  void ChannelSend(NodeId dst, uint32_t tag, std::span<const std::byte> bytes);
  void ChannelBroadcast(uint32_t tag, std::span<const std::byte> bytes);
  std::vector<std::byte> ChannelRecv(NodeId src, uint32_t tag);
  // Non-blocking receive (polling a UDP socket).
  std::optional<std::vector<std::byte>> ChannelTryRecv(NodeId src, uint32_t tag);
  // Blocks until any channel message arrives at this node (select()-style wait).
  void WaitAnyChannel();

  // --- Critical sections ---
  void EnterCritical() { in_critical_ = true; }
  void ExitCritical() { in_critical_ = false; }

  // --- Tracing (no-ops unless ClusterConfig::trace_enabled) ---
  void SetTrace(TraceRecorder* trace) { tracer_.SetRecorder(trace); }
  void TraceBegin(const char* category, std::string name) {
    tracer_.Begin(category, std::move(name));
  }
  void TraceEnd() { tracer_.End(); }
  void TraceInstant(const char* category, std::string name) {
    tracer_.Instant(category, std::move(name));
  }
  // The node's causal tracer (trace-id context + span emission), shared with packet_ and dsm_.
  NodeTracer& tracer() { return tracer_; }
  // Live histograms and runtime counters; flattened with the stats structs by metrics_io.
  MetricsRegistry& metrics() { return metrics_; }

  // Wait-state ledgers and the flight-recorder ring (common/waitstate.h). Only meaningful when
  // ClusterConfig::waitstate_enabled; the recorder stays zeroed otherwise.
  const WaitStateRecorder& waitstate() const { return waitstate_; }
  // Folds the still-unclassified trailing scheduler gap into the idle wait ledger, making
  // run + serve + wait equal the final clock exactly. Called once by Cluster::Run at the end.
  void FinalizeWaitstate();

  // Per-pool run/blocked/fault attribution (common/poolprof.h). Stays empty unless
  // ClusterConfig::pool_profile_enabled.
  const PoolProfiler& poolprof() const { return poolprof_; }

  // --- Accessors ---
  NodeEnv& env() { return env_; }
  const ClusterConfig& config() const { return config_; }
  sim::Machine& machine() { return *machine_; }
  const sim::CostModel& costs() const { return machine_->costs(); }
  dsm::DsmNode& dsm() { return *dsm_; }
  net::PacketEndpoint& packet() { return *packet_; }
  PoolEngine& pools() { return *pools_; }
  FjEngine& fj() { return *fj_; }
  threads::ThreadSystem& threads() { return threads_; }

  TimeBreakdown& breakdown() { return breakdown_; }
  FilamentStats& fil_stats() { return fil_stats_; }
  SimTime main_finished_at() const { return main_finished_at_; }

 private:
  friend class PoolEngine;
  friend class FjEngine;

  // Charge() helper: returns to the machine so a due event can dispatch; resumes afterwards.
  void YieldForEvent();

  // Wake-time accounting shared by WakeAtFront/WakeAtTail: classifies the pending scheduler gap
  // (Figure-10 breakdown + wait-state ledger) and emits the woken thread's blocked-interval
  // record.
  void AccountWake(threads::ServerThread* t);

  // Blocks the current thread until there are no outstanding page fetches (paper §3: nodes delay
  // at synchronization points until all outstanding page requests are satisfied).
  void WaitForFetchDrain();

  // Reduction plumbing.
  void RegisterReduceServices();
  void SendReduceValue(NodeId dst, uint64_t epoch, int round, double value);
  double WaitReduceUp(uint64_t epoch, int round, NodeId from);
  double WaitReduceDone(uint64_t epoch);
  double ReduceTournament(uint64_t epoch, double value, ReduceOp op);
  double ReduceDissemination(uint64_t epoch, double value, ReduceOp op);
  double ReduceCentral(uint64_t epoch, double value, ReduceOp op);
  static double Combine(double a, double b, ReduceOp op);

  // Load-balancer plumbing (config_.balancer; every hook is inert while disabled, keeping the
  // wire format and schedule byte-identical to a balancer-free build).
  void RegisterMigrateService();
  // Snapshots this node's per-epoch ledger deltas into balance_samples_[epoch] before any
  // reduce-up for `epoch` goes out.
  void RecordLoadSample(uint64_t epoch, SimTime entered);
  // Champion only: runs the balancer once all n samples for `epoch` arrived.
  void MaybeEmitPlan(uint64_t epoch);
  // Appends the plan trailer (u8 has_plan [+ epoch/src/dst]) to a done payload / done-carrying
  // reply; writes has_plan=0 unless last_plan_ is exactly `epoch`'s plan.
  void AppendPlan(net::WireWriter& w, uint64_t epoch) const;
  // Parses the plan trailer; keeps the newest plan seen (stale dones carry stale plans).
  void ParsePlan(net::WireReader& r);
  // End of Reduce: source extracts + ships its batch, destination arms the sweep-entry wait.
  // Exactly-once per plan via last_plan_applied_.
  void ApplyPendingPlan();

  NodeId id_;
  ClusterConfig config_;
  sim::Machine* machine_;
  SimTime clock_ = 0;
  SimTime pending_gap_ = 0;  // idle time awaiting classification at the next wake
  bool main_done_ = false;
  SimTime main_finished_at_ = 0;
  bool in_critical_ = false;

  threads::ThreadSystem threads_;
  IntrusiveList<threads::ServerThread, &threads::ServerThread::queue_link> ready_;
  threads::ServerThread* resume_first_ = nullptr;  // mid-charge thread, resumed before any other
  std::vector<threads::ServerThread*> blocked_;    // bookkeeping for deadlock reports

  std::unique_ptr<net::PacketEndpoint> packet_;
  std::unique_ptr<dsm::DsmNode> dsm_;
  std::unique_ptr<PoolEngine> pools_;
  std::unique_ptr<FjEngine> fj_;
  NodeEnv env_;

  // Reduction state.
  uint64_t reduce_epoch_ = 0;
  // (epoch, round, sender) -> value received for this reduction step.
  std::map<std::tuple<uint64_t, int, NodeId>, double> reduce_inbox_;
  std::map<uint64_t, double> reduce_done_;                   // epoch -> disseminated result
  threads::ServerThread* reduce_waiter_ = nullptr;
  threads::ServerThread* drain_waiter_ = nullptr;
  // Coalescing sync-batch state: the unacked (elided-ack) reduce-up awaiting the done broadcast,
  // and the last disseminated result — the answer given to retransmitted ups after done.
  uint64_t pending_up_req_ = 0;
  uint64_t last_done_epoch_ = 0;
  double last_done_value_ = 0;

  // Channels: (src, tag) -> queued payloads / waiting receiver.
  struct Channel {
    std::deque<std::vector<std::byte>> messages;
    threads::ServerThread* waiter = nullptr;
  };
  std::map<std::pair<NodeId, uint32_t>, Channel> channels_;
  threads::ServerThread* any_channel_waiter_ = nullptr;

  uint64_t CurrentTid() {
    threads::ServerThread* t = threads_.current();
    return t != nullptr ? t->id() : 0;
  }

  NodeTracer tracer_;
  MetricsRegistry metrics_;
  // Per-thread fault-block start time (faults never nest within one server thread); feeds the
  // dsm.fault_wait_us histogram. Page-fault *wait records* come from the wake path, which parses
  // the page id out of the thread's block reason.
  std::map<uint64_t, SimTime> fault_wait_start_;
  TimeBreakdown breakdown_;
  FilamentStats fil_stats_;

  // Wait-state accounting (no-ops unless config.waitstate_enabled).
  bool ws_on_ = false;
  WaitStateRecorder waitstate_;
  // Per-pool attribution (no-ops unless config.pool_profile_enabled).
  bool pp_on_ = false;
  PoolProfiler poolprof_;
  // Prior-epoch counter snapshot, so Reduce can record per-epoch deltas.
  struct EpochBase {
    uint64_t faults = 0;
    uint64_t diff_bytes = 0;
    uint64_t datagrams = 0;
    SimTime wait = 0;
    SimTime serve = 0;
  } epoch_base_;
  void RecordEpochSnapshot(uint64_t epoch, SimTime entered);

  // Load-balancer state (empty/zero while config_.balancer.enabled is false).
  std::unique_ptr<LoadBalancer> balancer_;  // constructed on the champion (node 0) only
  // epoch -> (node -> sample): own sample plus every sample carried by received reduce-ups.
  std::map<uint64_t, std::map<int32_t, LoadSample>> balance_samples_;
  // Ledger totals at the previous sync point, so samples carry per-epoch deltas.
  struct BalanceBase {
    SimTime run = 0;
    SimTime wait = 0;
    SimTime serve = 0;
  } balance_base_;
  std::optional<RebalancePlan> last_plan_;  // newest plan seen (emitted here or off a done)
  uint64_t last_plan_applied_ = 0;          // highest plan epoch acted on (src/dst roles)
  uint64_t migrate_applied_epoch_ = 0;      // highest kFilamentMigrate epoch integrated
};

}  // namespace dfil::core

#endif  // DFIL_CORE_NODE_RUNTIME_H_
