// FjEngine: fork/join filaments (paper §2.3).
//
// The computation starts as a single root filament on node 0. Work spreads in two phases:
//
//  1. Sender-initiated tree distribution: nodes form a binomial tree (paper Figure 2). Of each
//     pair of forks a node creates, one is shipped to its next unused tree child and one is kept,
//     so the number of working nodes doubles each step until every node has work.
//  2. Receiver-initiated stealing (optional): a node with no filaments and none suspended on a
//     page queries other nodes round-robin; victims with surplus hand over their oldest (coarsest)
//     queued filament. Balanced workloads disable this — the page traffic outweighs the gain.
//
// Dynamic pruning: once the local queue is deep enough that everyone is busy, forks turn into
// plain procedure calls and joins into returns.
//
// Join results travel back to the forking node as Packet requests; the anti-thrashing mechanisms
// (Mirage hold window in the DSM, wake-at-front scheduling) keep write-shared pages from
// ping-ponging.
#ifndef DFIL_CORE_FORKJOIN_H_
#define DFIL_CORE_FORKJOIN_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "src/common/types.h"
#include "src/core/fj_types.h"
#include "src/sim/event_queue.h"
#include "src/threads/server_thread.h"

namespace dfil::core {

class NodeRuntime;

// A pending join: filled in either locally or by a kJoinResult message from the executing node.
struct JoinCell {
  bool done = false;
  FjResult result{};
  threads::ServerThread* waiter = nullptr;
};

class FjEngine {
 public:
  explicit FjEngine(NodeRuntime* rt);

  // Collective entry point: every node calls this; node 0 runs `root`. Returns the root's result
  // on node 0 (zeroes elsewhere). Ends with a barrier.
  FjResult Run(FjFn root, const FjArgs& args);

  // Fork a child filament (ship / enqueue / pruned inline call) and join on its result.
  FjHandle Fork(FjFn fn, const FjArgs& args);
  FjResult Join(FjHandle& handle);

  // Runtime hook: an fj worker is about to suspend on a page fault; keep the queue served.
  void OnWorkerBlocked();

  // Introspection for tests.
  size_t queue_depth() const { return queue_.size(); }
  const std::vector<NodeId>& tree_children() const { return tree_children_; }
  bool phase_active() const { return phase_active_; }

 private:
  struct Task {
    FjFn fn;
    FjArgs args;
    NodeId origin;       // node holding the join cell
    uint64_t cell_addr;  // JoinCell* on the origin node
  };

  void RegisterServices();
  void ComputeTreeChildren();
  void WorkerLoop(bool is_main);
  void Execute(const Task& task);
  void Deliver(const Task& task, const FjResult& result);
  void EnsureWorkerForQueue(const threads::ServerThread* about_to_block = nullptr);
  void WakeOneIdle();
  void WakeAllIdle();
  bool CanStealNow() const;
  bool TrySteal();
  void ArmStealRetry();

  NodeRuntime* rt_;
  std::deque<Task> queue_;  // local fork/join filaments: LIFO execution, FIFO stealing
  std::vector<NodeId> tree_children_;
  bool ship_next_ = true;  // of each fork pair, ship one and keep one

  bool phase_active_ = false;
  bool terminated_ = false;
  bool got_first_work_ = false;
  SimTime steal_allowed_at_ = 0;

  std::vector<threads::ServerThread*> workers_;  // live worker threads (includes node mains)
  std::vector<threads::ServerThread*> idle_;
  threads::ServerThread* winddown_waiter_ = nullptr;
  int active_workers_ = 0;
  NodeId next_victim_ = 0;
  sim::EventHandle steal_timer_;
  // Exponential backoff for steal polling: full denial rounds double the retry interval (up to
  // 16x) so idle nodes stop burning the busy victim's CPU with hopeless polls; any successful
  // steal or incoming work resets it.
  SimTime steal_backoff_ = 0;
  // Virtual time of the last incoming steal request: while thieves are asking, pruning is
  // suspended so coarse forks stay visible as stealable filaments (the paper's pruning condition
  // is "enough work to keep all nodes busy" — a global property, not a local queue depth).
  SimTime last_steal_demand_ = kSimTimeNever * -1;
};

}  // namespace dfil::core

#endif  // DFIL_CORE_FORKJOIN_H_
