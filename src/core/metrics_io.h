// Uniform metrics export: flattens a RunReport — the ad-hoc stats structs (DsmStats,
// MessageStats, FilamentStats, PacketStats), the time breakdown, per-service message counts,
// per-page fault heat, and the live MetricsRegistry histograms — into one JSON document that
// tools/dfil_report (and the CI regression gate) consume.
//
// Schema (dfil-metrics-v2; v1 lacked provenance, wait_us/run_us/serve_us, final_clock_us and
// epochs — readers must accept both; fingerprint/pools are optional v2 extensions readers must
// tolerate missing):
//   {
//     "schema": "dfil-metrics-v2",
//     "label": "<run label>",
//     "pcp": "<protocol>", "nodes": N, "completed": 0|1, "makespan_us": ...,
//     "fingerprint": {"config": "<16-hex ClusterConfig::DigestHex>", "git": "<sha|unknown>",
//                     "seed": "3", "app": "jacobi"},         // comparability check (dfil_diff)
//     "provenance": {"seed": "3", "coalesce": "on", ...},   // config knobs + bench CLI overlay
//     "cluster": {"counters": {...},                        // cluster-wide totals
//                 "pools_by_fn": [                          // per-filament-fn rollup (all nodes);
//                   {"fn": 0, "run_us": ..., "blocked_us": ...,  //   fn -1 = residual (non-pool
//                    "serve_us": ..., "faults": N,          //   run + all serve time)
//                    "filaments_run": N, "migrated_in": N}, ...]},
//     "per_node": [
//       {"node": i,
//        "finished_at_us": ..., "final_clock_us": ...,
//        "time_us": {"work": ..., "filament_exec": ...,...},// Figure 10 row
//        "run_us": ..., "serve_us": ...,                    // wait-state clock ledgers;
//        "wait_us": {"page_fault": ..., "barrier": ...,...},//   run+serve+sum(wait) ==
//        "wait_events": {"page_fault": N, ...},             //   final_clock_us
//        "pools": [                                         // per-pool ledgers ([] when
//          {"pool": p, "fn": f, "run_us": ...,              //   pool_profile is off); row
//           "blocked_us": ..., "serve_us": 0, "faults": N,  //   pool=-1 is the residual, so
//           "filaments_run": N, "migrated_in": N}, ...],    //   sum(run+serve) == run+serve
//        "epochs": [{"epoch": 1, "barrier_wait_us": ..., "faults": ..., ...}, ...],
//        "counters": {"dsm.read_faults": ..., "net.sent.page_request": ..., ...},
//        "histograms": {"dsm.fault_wait_us": {...}, ...},
//        "page_heat": [[page, faults], ...]},                // non-zero entries only
//       ...]
//   }
// Counter naming: "<layer>.<counter>" with layers dsm/net/fil/sync/time (DESIGN.md
// §Observability).
#ifndef DFIL_CORE_METRICS_IO_H_
#define DFIL_CORE_METRICS_IO_H_

#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "src/core/cluster.h"

namespace dfil::core {

// Cluster-wide totals used by the CI regression gate, also embedded under "cluster" in the JSON:
// "dsm.page_request_messages" (single + bulk page requests across all nodes) and
// "net.barrier_messages" (reduce_up + reduce_done sends across all nodes), among others.
// `extra_provenance` entries overlay the report's own (CLI-level fields win on key collision).
void WriteMetricsJson(const RunReport& report, const std::string& label, std::ostream& os,
                      const std::map<std::string, std::string>& extra_provenance = {});

// Writes METRICS_<label>.json into the current directory; returns the file name.
std::string WriteMetricsFile(const RunReport& report, const std::string& label,
                             const std::map<std::string, std::string>& extra_provenance = {});

// Flight-recorder dump (dfil-flight-v1): the last ~256 wait events per node and the machine's
// recent fault-injection decisions, captured in report.flight (at the first oracle violation when
// one fired, else at end of run), plus whatever failure context the caller supplies. This is the
// artifact the fuzz driver and the oracle write when a run goes wrong, and what
// `dfil_report flight` renders:
//   {"schema": "dfil-flight-v1", "label": ..., "at_violation": 0|1,
//    "violations": ["..."],
//    "nodes": [{"node": i, "events": [
//        {"kind": "page_fault", "detail": 12, "start_us": ..., "end_us": ...}, ...]}, ...],
//    "injections": [
//        {"what": "drop", "class": "request", "type": 3, "src": 0, "dst": 1, "at_us": ...}, ...]}
void WriteFlightJson(const RunReport& report, const std::string& label,
                     const std::vector<std::string>& violations, std::ostream& os);

// Writes FLIGHT_<label>.json into the current directory; returns the file name.
std::string WriteFlightFile(const RunReport& report, const std::string& label,
                            const std::vector<std::string>& violations);

}  // namespace dfil::core

#endif  // DFIL_CORE_METRICS_IO_H_
