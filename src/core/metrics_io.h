// Uniform metrics export: flattens a RunReport — the ad-hoc stats structs (DsmStats,
// MessageStats, FilamentStats, PacketStats), the time breakdown, per-service message counts,
// per-page fault heat, and the live MetricsRegistry histograms — into one JSON document that
// tools/dfil_report (and the CI regression gate) consume.
//
// Schema (dfil-metrics-v1):
//   {
//     "schema": "dfil-metrics-v1",
//     "label": "<run label>",
//     "pcp": "<protocol>", "nodes": N, "completed": 0|1, "makespan_us": ...,
//     "cluster": {"counters": {...}},                       // cluster-wide totals
//     "per_node": [
//       {"node": i,
//        "time_us": {"work": ..., "filament_exec": ..., ...},  // Figure 10 row
//        "counters": {"dsm.read_faults": ..., "net.sent.page_request": ..., ...},
//        "histograms": {"dsm.fault_wait_us": {...}, ...},
//        "page_heat": [[page, faults], ...]},                // non-zero entries only
//       ...]
//   }
// Counter naming: "<layer>.<counter>" with layers dsm/net/fil/sync/time (DESIGN.md
// §Observability).
#ifndef DFIL_CORE_METRICS_IO_H_
#define DFIL_CORE_METRICS_IO_H_

#include <ostream>
#include <string>

#include "src/core/cluster.h"

namespace dfil::core {

// Cluster-wide totals used by the CI regression gate, also embedded under "cluster" in the JSON:
// "dsm.page_request_messages" (single + bulk page requests across all nodes) and
// "net.barrier_messages" (reduce_up + reduce_done sends across all nodes), among others.
void WriteMetricsJson(const RunReport& report, const std::string& label, std::ostream& os);

// Writes METRICS_<label>.json into the current directory; returns the file name.
std::string WriteMetricsFile(const RunReport& report, const std::string& label);

}  // namespace dfil::core

#endif  // DFIL_CORE_METRICS_IO_H_
