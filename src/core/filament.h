// Filament descriptors and pools (paper §2.1–2.2).
//
// A filament is a stackless thread: a code pointer plus a few argument words. It has no private
// stack and no guaranteed execution order relative to other filaments; server threads execute
// filaments one at a time. Pools group filaments that ideally reference the same pages, so that a
// fault suspends the whole pool and a different pool overlaps the communication.
#ifndef DFIL_CORE_FILAMENT_H_
#define DFIL_CORE_FILAMENT_H_

#include <cstdint>
#include <utility>
#include <vector>

namespace dfil::core {

class NodeEnv;

// The body of an RTC or iterative filament. Receives the node environment and the descriptor's
// three argument words (typically array indices).
using FilamentFn = void (*)(NodeEnv&, int64_t, int64_t, int64_t);

// Typed handle for an execution pool on the local node, returned by NodeEnv::CreatePool.
// Replaces the raw `int` ids the API used to take: a default-constructed handle is invalid
// (parallel.h uses that to mean "adaptive — let the runtime cluster filaments"), and accidental
// pool-id arithmetic is impossible by construction.
struct PoolHandle {
  int id = -1;
  bool valid() const { return id >= 0; }
  friend bool operator==(PoolHandle a, PoolHandle b) { return a.id == b.id; }
  friend bool operator!=(PoolHandle a, PoolHandle b) { return a.id != b.id; }
};

struct Filament {
  FilamentFn fn;
  int64_t a0;
  int64_t a1;
  int64_t a2;
};
static_assert(sizeof(Filament) == 32, "filament descriptors are meant to stay lean");

// A contiguous run of filaments with the same code pointer and affine argument progression,
// discovered by run-time pattern recognition (paper §2.1). Executing a strip iterates directly,
// generating arguments "in registers" instead of traversing descriptors, which is what the
// cheaper inlined-switch cost models.
struct Strip {
  FilamentFn fn;
  int64_t a0, a1, a2;     // first filament's arguments
  int64_t d0, d1, d2;     // per-step argument deltas
  int64_t count;
};

// Minimum run length worth executing through the strip path.
inline constexpr int64_t kMinStripLength = 8;

struct Pool {
  explicit Pool(int id_in) : id(id_in) {}

  int id;
  std::vector<Filament> filaments;

  // Pattern-recognition cache: alternating strips and single filaments covering `filaments` in
  // order. Rebuilt lazily when `patterns_valid` is false (i.e., after new filaments are added).
  std::vector<Strip> strips;
  std::vector<Filament> singles;  // filaments not covered by any strip
  bool patterns_valid = false;

  // Set while a server thread is executing (or suspended inside) this pool during a sweep.
  bool running = false;
  // True once every filament of this pool has executed in the current sweep.
  bool completed = false;
  // True if any filament of this pool faulted during the current sweep (frontloading input).
  bool faulted_this_sweep = false;

  // Strip-aware prefetch hints (DESIGN.md §6): the pages this pool's filaments faulted on in
  // previous runs, with the refault period each page exhibited. Iterative programs commonly
  // alternate between two buffers (Jacobi swaps grids every sweep), so a pool's read footprint is
  // periodic rather than constant — replaying last run's footprint verbatim would prefetch the
  // idle buffer's pages every sweep. Instead each hint learns its period from the distance
  // between its last two demand faults and is issued only on runs matching that phase. Hints
  // persist across runs (a successful prefetch prevents the fault that would regenerate them) and
  // are dropped when the DSM reports the prefetched copy died untouched (footprint shifted).
  struct HintRecord {
    uint32_t page;
    int64_t last_fault_run;  // pool run index of this page's most recent demand fault
    int64_t period;          // run distance between its last two faults; 0 = not yet known
  };
  std::vector<HintRecord> hints;
  int64_t runs = 0;  // executions of this pool, the clock for hint periods

  // Adaptive pool assignment (the paper's future-work item "automatic clustering of filaments
  // that share pages into execution pools"): while true, the engine profiles which page each
  // filament first faults on during the sweep, then repartitions this pool's filaments into
  // per-page pools plus a non-faulting pool.
  bool auto_profile = false;
  std::vector<std::pair<int64_t, uint32_t>> fault_profile;  // (filament ordinal, page)

  // Last sweep's write footprint — the pages this pool's filaments wrote, recorded only while
  // the load balancer is on. When a rebalance plan migrates the pool, this is the page set the
  // destination re-homes so the next epoch faults locally instead of chasing ownership remotely.
  std::vector<uint32_t> write_pages;
};

}  // namespace dfil::core

#endif  // DFIL_CORE_FILAMENT_H_
