// NodeEnv: the per-node programming interface of Distributed Filaments.
//
// This is the surface application code programs against — the "Filaments calls" of the paper's
// Figure 1. The same application code runs unchanged at any node count; parallelism is expressed
// in terms of the problem (one filament per point, recursive forks), not the machine.
//
// A NodeEnv is handed to the node's main function and to every filament body. All of its blocking
// operations (DSM access, Join, reductions, channel receives) suspend the calling server thread
// and let other server threads run — that suspension is what overlaps communication with
// computation.
#ifndef DFIL_CORE_NODE_ENV_H_
#define DFIL_CORE_NODE_ENV_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <span>
#include <vector>

#include "src/common/check.h"
#include "src/common/types.h"
#include "src/core/filament.h"
#include "src/core/fj_types.h"
#include "src/dsm/dsm_node.h"

namespace dfil::core {

class NodeRuntime;

// Reduction operators (a reduction is also a barrier; kBarrier computes nothing).
enum class ReduceOp : uint8_t { kBarrier, kSum, kMax, kMin, kLogicalAnd, kLogicalOr };

class NodeEnv {
 public:
  explicit NodeEnv(NodeRuntime* rt) : rt_(rt) {}
  NodeEnv(const NodeEnv&) = delete;
  NodeEnv& operator=(const NodeEnv&) = delete;

  // --- Identity and time ---
  NodeId node() const;
  int nodes() const;
  SimTime Now() const;

  // --- Work accounting: advances this node's virtual clock by the cost of real computation ---
  void ChargeWork(SimTime cost);
  void Charge(TimeCategory category, SimTime cost);

  // --- Distributed shared memory ---
  // Blocking access: returns a pointer valid until the next potential suspension point.
  std::byte* AccessBytes(GlobalAddr addr, size_t len, dsm::AccessMode mode);
  template <typename T>
  T Read(GlobalAddr addr) {
    return *reinterpret_cast<const T*>(AccessBytes(addr, sizeof(T), dsm::AccessMode::kRead));
  }
  template <typename T>
  void Write(GlobalAddr addr, const T& v) {
    *reinterpret_cast<T*>(AccessBytes(addr, sizeof(T), dsm::AccessMode::kWrite)) = v;
  }

  // --- RTC / iterative filaments ---
  PoolHandle CreatePool();
  // Creates one filament in `pool` on this node.
  void CreateFilament(PoolHandle pool, FilamentFn fn, int64_t a0 = 0, int64_t a1 = 0,
                      int64_t a2 = 0);
  // Raw-id overload kept one release for out-of-tree callers; use the PoolHandle one.
  [[deprecated("pass the PoolHandle returned by CreatePool")]] void CreateFilament(
      int pool, FilamentFn fn, int64_t a0 = 0, int64_t a1 = 0, int64_t a2 = 0);
  // Adaptive pool assignment (paper future work): the runtime profiles the first sweep and
  // re-clusters these filaments into pools by the page they fault on.
  void CreateAutoFilament(FilamentFn fn, int64_t a0 = 0, int64_t a1 = 0, int64_t a2 = 0);
  // Runs every pool's filaments once and returns when all have executed (RTC sweep). No implicit
  // barrier: synchronize explicitly, as the paper's matmul does.
  void RunPools();
  // Runs sweeps repeatedly; after each sweep, `after_iteration(iter)` runs on this node's main
  // thread (it must contain a reduction or barrier — that is the iteration's synchronization
  // point) and returns whether to continue. Faulting pools are frontloaded across iterations.
  void RunIterative(const std::function<bool(int iter)>& after_iteration);

  // --- Fork/join filaments ---
  // Collective: call on every node. Node 0 executes `root`; all nodes serve forked work until the
  // root completes. Returns the root's result on node 0 (zeroes elsewhere).
  FjResult RunForkJoin(FjFn root, const FjArgs& args);
  FjHandle Fork(FjFn fn, const FjArgs& args);
  FjResult Join(FjHandle& handle);

  // --- Reductions / barriers (collective; the synchronization points of the paper §3) ---
  double Reduce(double value, ReduceOp op);
  void Barrier() { Reduce(0.0, ReduceOp::kBarrier); }

  // --- Explicit message passing (raw UDP semantics; used by the coarse-grain programs) ---
  void SendData(NodeId dst, uint32_t tag, std::span<const std::byte> bytes);
  void BroadcastData(uint32_t tag, std::span<const std::byte> bytes);
  // Blocks until a message with this (src, tag) arrives. Like the paper's CG programs, a lost
  // message means this never returns (the run ends in a detected deadlock).
  std::vector<std::byte> RecvData(NodeId src, uint32_t tag);

  // Typed convenience wrappers for the CG programs.
  template <typename T>
  void SendValue(NodeId dst, uint32_t tag, const T& v) {
    SendData(dst, tag, std::span<const std::byte>(reinterpret_cast<const std::byte*>(&v),
                                                  sizeof(T)));
  }
  template <typename T>
  T RecvValue(NodeId src, uint32_t tag) {
    std::vector<std::byte> bytes = RecvData(src, tag);
    T v;
    DFIL_CHECK_EQ(bytes.size(), sizeof(T));
    std::memcpy(&v, bytes.data(), sizeof(T));
    return v;
  }

  // --- Critical sections (paper §3: entry/exit are a single assignment) ---
  void EnterCritical();
  void ExitCritical();

  // --- Escape hatches for tests, benches, and application state ---
  NodeRuntime& runtime() { return *rt_; }
  void* user_ctx = nullptr;  // per-node application state, set by the node main

 private:
  NodeRuntime* rt_;
};

}  // namespace dfil::core

#endif  // DFIL_CORE_NODE_ENV_H_
