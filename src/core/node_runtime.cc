#include "src/core/node_runtime.h"

#include <cstdlib>
#include <sstream>
#include <utility>

#include "src/common/check.h"
#include "src/common/log.h"
#include "src/core/forkjoin.h"
#include "src/core/pool_engine.h"
#include "src/dsm/coherence_oracle.h"
#include "src/dsm/page_protocol.h"

namespace dfil::core {
namespace {

// Attributes an idle gap to a breakdown category based on why the woken thread was blocked.
TimeCategory ClassifyGap(const std::string& reason) {
  if (reason.rfind("page", 0) == 0 || reason.rfind("recv", 0) == 0) {
    return TimeCategory::kDataTransfer;
  }
  if (reason.rfind("reduce", 0) == 0 || reason.rfind("drain", 0) == 0 ||
      reason.rfind("join", 0) == 0 || reason.rfind("fj", 0) == 0 ||
      reason.rfind("call", 0) == 0 || reason.rfind("sweep", 0) == 0 ||
      reason.rfind("migrate", 0) == 0) {
    return TimeCategory::kSyncDelay;
  }
  return TimeCategory::kIdle;
}

// Maps a block reason onto a typed wait kind, extracting the kind-specific cause (page id,
// barrier epoch, service number) when the reason string carries one.
WaitKind KindOfBlockReason(const std::string& reason, uint64_t* detail) {
  *detail = 0;
  if (reason.rfind("page ", 0) == 0) {
    *detail = std::strtoull(reason.c_str() + 5, nullptr, 10);
    return WaitKind::kPageFault;
  }
  if (reason.rfind("call ", 0) == 0) {
    *detail = std::strtoull(reason.c_str() + 5, nullptr, 10);
    return WaitKind::kCall;
  }
  if (reason.rfind("reduce up e", 0) == 0) {
    *detail = std::strtoull(reason.c_str() + 11, nullptr, 10);
    return WaitKind::kBarrier;
  }
  if (reason.rfind("reduce done e", 0) == 0) {
    *detail = std::strtoull(reason.c_str() + 13, nullptr, 10);
    return WaitKind::kBarrier;
  }
  if (reason.rfind("drain", 0) == 0) {
    return WaitKind::kFetchDrain;
  }
  if (reason.rfind("recv", 0) == 0) {
    return WaitKind::kChannel;
  }
  if (reason.rfind("join", 0) == 0 || reason.rfind("fj", 0) == 0) {
    return WaitKind::kJoin;
  }
  if (reason.rfind("sweep", 0) == 0 || reason.rfind("migrate", 0) == 0) {
    return WaitKind::kSweep;
  }
  return WaitKind::kIdle;
}

}  // namespace

// Oracle sweep at a globally quiescent point: the combining node of a tournament/central barrier
// holds every contribution, so every node has drained its outstanding fetches (WaitForFetchDrain)
// and run AtSyncPoint before sending up — the cluster-wide page state is stable until the
// dissemination goes out. The dissemination barrier has no such single point, so it never sweeps.
#ifndef DFIL_DISABLE_COHERENCE_ORACLE
#define DFIL_ORACLE_SWEEP()                        \
  do {                                             \
    if (config_.coherence_oracle != nullptr) {     \
      config_.coherence_oracle->AtQuiescentPoint(); \
    }                                              \
  } while (false)
#else
#define DFIL_ORACLE_SWEEP() \
  do {                      \
  } while (false)
#endif

NodeRuntime::NodeRuntime(NodeId id, const ClusterConfig& config, sim::Machine* machine,
                         const dsm::GlobalLayout* layout)
    : id_(id),
      config_(config),
      machine_(machine),
      threads_(config.backend, config.stack_bytes),
      env_(this) {
  tracer_.BindNode(id_, [this] { return CurrentTid(); }, [this] { return clock_; });
  packet_ = std::make_unique<net::PacketEndpoint>(
      machine_, id_, config_.packet,
      [this](TimeCategory c, SimTime t) { Charge(c, t); }, [this] { return clock_; });
  packet_->in_critical_section = [this] { return in_critical_; };
  packet_->set_tracer(&tracer_);
  packet_->set_metrics(&metrics_);
  packet_->set_coalesce(config_.coalesce);
  ws_on_ = config_.waitstate_enabled;
  if (ws_on_) {
    packet_->set_waitstate(&waitstate_);
  }
  pp_on_ = config_.pool_profile_enabled;

  dsm::DsmNode::Hooks hooks;
  hooks.charge = [this](TimeCategory c, SimTime t) { Charge(c, t); };
  hooks.clock = [this] { return clock_; };
  hooks.current_thread = [this] { return threads_.current(); };
  hooks.wake = [this](threads::ServerThread* t) { Wake(t); };
  hooks.pre_block = [this](PageId page) {
    // Let the engines react (start a server thread for another pool / another fj worker) before
    // the faulting thread gives up the processor.
    if (pools_) {
      pools_->OnThreadBlockedOnPage(page);
    }
    if (fj_) {
      fj_->OnWorkerBlocked();
    }
  };
  hooks.block_current = [this] { BlockCurrent(); };
  hooks.trace_fault_begin = [this](PageId page) {
    TraceBegin("dsm", "fault p" + std::to_string(page));
    fault_wait_start_[CurrentTid()] = clock_;
  };
  hooks.trace_fault_end = [this] {
    TraceEnd();
    auto it = fault_wait_start_.find(CurrentTid());
    if (it != fault_wait_start_.end()) {
      metrics_.Hist("dsm.fault_wait_us").Record(ToMicroseconds(clock_ - it->second));
      fault_wait_start_.erase(it);
    }
  };
  hooks.tracer = &tracer_;
  hooks.fetches_drained = [this] {
    if (drain_waiter_ != nullptr) {
      threads::ServerThread* t = drain_waiter_;
      drain_waiter_ = nullptr;
      WakeAtTail(t);
    }
  };
  dsm::DsmConfig dsm_cfg = config_.dsm;
  if (config_.coalesce.enabled && config_.coalesce.sync_batch) {
    // Sync-batch mode: the DSM learns this node's barrier parent so the diff protocol can gate
    // the merge it sends there (ack elided, retransmission canceled by the done broadcast) and
    // the transport can pack it with the reduce-up of the same sync point. The dissemination
    // barrier has no parent/done structure, so gating stays off there.
    dsm_cfg.coalesce_sync_batch = true;
    switch (config_.barrier) {
      case ClusterConfig::BarrierKind::kTournamentBroadcast:
        dsm_cfg.barrier_parent = id_ == 0 ? kNoNode : id_ - (id_ & -id_);
        break;
      case ClusterConfig::BarrierKind::kCentral:
        dsm_cfg.barrier_parent = id_ == 0 ? kNoNode : 0;
        break;
      case ClusterConfig::BarrierKind::kDissemination:
        dsm_cfg.barrier_parent = kNoNode;
        break;
    }
  }
  dsm_ = std::make_unique<dsm::DsmNode>(id_, layout, packet_.get(), &machine_->costs(),
                                        dsm_cfg, std::move(hooks));
#ifndef DFIL_DISABLE_COHERENCE_ORACLE
  if (config_.coherence_oracle != nullptr) {
    dsm_->AttachOracle(config_.coherence_oracle);
  }
#endif
  pools_ = std::make_unique<PoolEngine>(this);
  fj_ = std::make_unique<FjEngine>(this);
  RegisterReduceServices();
  RegisterMigrateService();
  if (config_.balancer.enabled && id_ == 0) {
    // Both champion-structured barriers (tournament, central) combine at node 0; dissemination
    // has no champion and is rejected by ClusterConfig::Validate when the balancer is on.
    balancer_ = std::make_unique<LoadBalancer>(config_.balancer, config_.nodes);
  }

  packet_->RegisterRawHandler(
      net::Service::kAppData,
      [this](NodeId src, net::Payload body) {
        net::WireReader r(body);
        const auto tag = r.Get<uint32_t>();
        Channel& ch = channels_[{src, tag}];
        ch.messages.emplace_back(r.Rest().begin(), r.Rest().end());
        if (ch.waiter != nullptr) {
          threads::ServerThread* t = ch.waiter;
          ch.waiter = nullptr;
          WakeAtTail(t);
        }
        if (any_channel_waiter_ != nullptr) {
          threads::ServerThread* t = any_channel_waiter_;
          any_channel_waiter_ = nullptr;
          WakeAtTail(t);
        }
      },
      TimeCategory::kDataTransfer);
}

NodeRuntime::~NodeRuntime() = default;

void NodeRuntime::SetMain(std::function<void()> body) {
  threads::ServerThread* main = threads_.Create([this, body = std::move(body)] {
    body();
    main_done_ = true;
    main_finished_at_ = clock_;
    // Anchors the critical-path walk: the end-to-end path terminates at the latest "done".
    TraceInstant("node", "done");
  });
  ready_.PushBack(main);
}

void NodeRuntime::Step() {
  threads::ServerThread* t = resume_first_;
  if (t != nullptr) {
    resume_first_ = nullptr;
  } else {
    t = ready_.PopFront();
    if (t == nullptr) {
      return;
    }
    // Switching server threads costs real time (paper Figure 9: 48.8 us on the Sun IPC).
    Charge(TimeCategory::kFilamentExec, costs().thread_context_switch);
  }
  threads_.SwitchTo(t);
  if (t->state() == threads::ThreadState::kDone) {
    threads_.Recycle(t);
  }
}

void NodeRuntime::AdvanceTo(SimTime t) {
  if (t > clock_) {
    pending_gap_ += t - clock_;
    clock_ = t;
  }
}

void NodeRuntime::OnDatagram(sim::Datagram d) { packet_->OnDatagram(std::move(d)); }

void NodeRuntime::Charge(TimeCategory category, SimTime cost) {
  DFIL_DCHECK(cost >= 0);
  breakdown_.Add(category, cost);
  if (threads_.current() == nullptr) {
    // Handler (host) context: interrupt work simply extends the node's clock.
    clock_ += cost;
    if (ws_on_) {
      waitstate_.AddServe(cost);
    }
    return;
  }
  SimTime remaining = cost;
  while (remaining > 0) {
    // Yield both for due events and for the causality horizon: this node must not run ahead of
    // other runnable nodes, or their sends would reach it (and reserve the shared medium) "in the
    // past".
    const SimTime limit = machine_->ChargeLimit(id_);
    if (limit >= clock_ + remaining || limit == kSimTimeNever) {
      clock_ += remaining;
      if (ws_on_) {
        waitstate_.AddRun(remaining);
      }
      if (pp_on_) {
        poolprof_.AddRun(threads_.current()->profile_pool(), remaining);
      }
      return;
    }
    if (limit > clock_) {
      const SimTime step = limit - clock_;
      remaining -= step;
      clock_ = limit;
      if (ws_on_) {
        waitstate_.AddRun(step);
      }
      if (pp_on_) {
        poolprof_.AddRun(threads_.current()->profile_pool(), step);
      }
    }
    YieldForEvent();
  }
}

void NodeRuntime::YieldForEvent() {
  threads::ServerThread* self = threads_.current();
  DFIL_DCHECK(self != nullptr);
  DFIL_CHECK(resume_first_ == nullptr);
  // A thread may charge time after marking itself blocked but before suspending (e.g. the fault
  // path spawns a replacement server thread first); preserve that state across the yield.
  const threads::ThreadState prior = self->state();
  resume_first_ = self;
  self->set_state(threads::ThreadState::kReady);
  threads_.SwitchToHost();
  if (prior == threads::ThreadState::kBlocked) {
    self->set_state(threads::ThreadState::kBlocked);
  }
}

void NodeRuntime::BlockCurrent() {
  threads::ServerThread* self = threads_.current();
  DFIL_CHECK(self != nullptr);
  DFIL_CHECK(self->state() == threads::ThreadState::kBlocked)
      << "callers must set the blocked state and reason before BlockCurrent";
  self->set_blocked_since(clock_);
  blocked_.push_back(self);
  threads_.SwitchToHost();
}

// Page-arrival wake: placement follows the configured policy (paper: front = fork/join
// anti-thrashing, tail = iterative frontloading). All other wake paths use WakeAtTail — FIFO —
// or the ready queue degenerates into a LIFO that can starve resumed workers indefinitely.
void NodeRuntime::Wake(threads::ServerThread* t) {
  if (config_.wake_at_front) {
    WakeAtFront(t);
  } else {
    WakeAtTail(t);
  }
}

void NodeRuntime::AccountWake(threads::ServerThread* t) {
  if (pending_gap_ > 0) {
    breakdown_.Add(ClassifyGap(t->block_reason()), pending_gap_);
    if (ws_on_) {
      uint64_t detail = 0;
      waitstate_.AddWait(KindOfBlockReason(t->block_reason(), &detail), pending_gap_);
    }
    pending_gap_ = 0;
  }
  // blocked_since is -1 for a thread that marked itself blocked but was woken before it ever
  // suspended (the fault path charges — and can take a wake — between marking and BlockCurrent);
  // such a thread never waited, so there is no interval to record.
  if ((ws_on_ || pp_on_) && t->blocked_since() >= 0) {
    if (clock_ > t->blocked_since()) {
      if (ws_on_) {
        uint64_t detail = 0;
        const WaitKind kind = KindOfBlockReason(t->block_reason(), &detail);
        waitstate_.Record(kind, detail, t->blocked_since(), clock_);
      }
      if (pp_on_) {
        poolprof_.AddBlocked(t->profile_pool(), clock_ - t->blocked_since());
      }
    }
    t->set_blocked_since(-1);
  }
}

void NodeRuntime::WakeAtFront(threads::ServerThread* t) {
  DFIL_CHECK(t->state() == threads::ThreadState::kBlocked);
  for (size_t i = 0; i < blocked_.size(); ++i) {
    if (blocked_[i] == t) {
      blocked_.erase(blocked_.begin() + static_cast<ptrdiff_t>(i));
      break;
    }
  }
  AccountWake(t);
  t->set_state(threads::ThreadState::kReady);
  ready_.PushFront(t);
}

void NodeRuntime::WakeAtTail(threads::ServerThread* t) {
  DFIL_CHECK(t->state() == threads::ThreadState::kBlocked);
  for (size_t i = 0; i < blocked_.size(); ++i) {
    if (blocked_[i] == t) {
      blocked_.erase(blocked_.begin() + static_cast<ptrdiff_t>(i));
      break;
    }
  }
  AccountWake(t);
  t->set_state(threads::ThreadState::kReady);
  ready_.PushBack(t);
}

threads::ServerThread* NodeRuntime::SpawnThread(std::function<void()> body) {
  DFIL_CHECK_LT(threads_.live_threads(), static_cast<size_t>(config_.max_server_threads))
      << "node " << id_ << ": server thread limit reached";
  Charge(TimeCategory::kFilamentExec, costs().thread_create);
  threads::ServerThread* t = threads_.Create(std::move(body));
  ready_.PushBack(t);
  fil_stats_.server_threads_started++;
  return t;
}

net::Payload NodeRuntime::CallService(NodeId dst, net::Service service, net::Payload body,
                                      TimeCategory charge_as) {
  threads::ServerThread* self = threads_.current();
  DFIL_CHECK(self != nullptr) << "CallService requires a server thread";
  struct CallState {
    bool done = false;
    net::Payload reply;
  } state;
  packet_->SendRequest(
      dst, service, std::move(body),
      [this, self, &state](net::Payload reply) {
        state.reply = std::move(reply);
        state.done = true;
        if (self->state() == threads::ThreadState::kBlocked &&
            self->block_reason().rfind("call", 0) == 0) {
          WakeAtTail(self);
        }
      },
      charge_as);
  while (!state.done) {
    self->set_state(threads::ThreadState::kBlocked);
    self->set_block_reason("call " + std::to_string(static_cast<int>(service)));
    BlockCurrent();
  }
  return std::move(state.reply);
}

std::string NodeRuntime::DescribeBlocked() const {
  std::ostringstream os;
  os << "blocked: ";
  if (blocked_.empty()) {
    os << "(no blocked threads)";
  }
  for (const threads::ServerThread* t : blocked_) {
    os << "[t" << t->id() << " " << t->block_reason() << "] ";
  }
  return os.str();
}

// --- Reductions ---------------------------------------------------------------------------------

void NodeRuntime::RegisterReduceServices() {
  packet_->RegisterService(
      net::Service::kReduceUp,
      [this](NodeId src, net::WireReader body) -> std::optional<net::Payload> {
        const auto epoch = body.Get<uint64_t>();
        const auto round = body.Get<int32_t>();
        const auto value = body.Get<double>();
        std::vector<LoadSample> samples;
        if (config_.balancer.enabled) {
          // Balancer wire format (config-uniform across the cluster, so the balancer-off format
          // stays byte-identical): the merge-epoch word is always present (0 = none), followed by
          // the sender's subtree of load samples.
          const auto merge_epoch = body.Get<uint64_t>();
          const auto nsamples = body.Get<uint32_t>();
          samples.reserve(nsamples);
          for (uint32_t i = 0; i < nsamples; ++i) {
            LoadSample s;
            s.node = body.Get<int32_t>();
            s.arrival = body.Get<SimTime>();
            s.run = body.Get<SimTime>();
            s.wait = body.Get<SimTime>();
            s.serve = body.Get<SimTime>();
            samples.push_back(s);
          }
          if (merge_epoch > dsm_->DiffAppliedEpoch(src)) {
            return std::nullopt;  // defer until the piggybacked gated merge applied (see below)
          }
          for (const LoadSample& s : samples) {
            balance_samples_[epoch][s.node] = s;  // idempotent under retransmitted ups
          }
        } else if (body.remaining() >= sizeof(uint64_t)) {
          // Piggybacked gated-merge epoch: the sender's diff flush travels unacked in the same
          // datagram (or an earlier one). Defer the contribution until that merge has been
          // applied here, so the champion's quiescent sweep still sees every merge even when
          // injected reordering or duplication splits the pair.
          const auto merge_epoch = body.Get<uint64_t>();
          if (merge_epoch > dsm_->DiffAppliedEpoch(src)) {
            return std::nullopt;
          }
        }
        const bool elide = config_.coalesce.enabled && config_.coalesce.elide_reduce_replies &&
                           config_.barrier != ClusterConfig::BarrierKind::kDissemination;
        if (elide && last_done_epoch_ >= epoch) {
          // A retransmission of a contribution this barrier already consumed (its elided ack was
          // lost on the sender): answer with the done value directly, standing in for the
          // broadcast the sender evidently also missed.
          net::WireWriter w;
          w.Put(epoch);
          w.Put(last_done_value_);
          if (config_.balancer.enabled) {
            AppendPlan(w, epoch);
          }
          return w.Take();
        }
        reduce_inbox_[{epoch, round, src}] = value;
        if (reduce_waiter_ != nullptr) {
          threads::ServerThread* t = reduce_waiter_;
          reduce_waiter_ = nullptr;
          WakeAtTail(t);
        }
        if (elide) {
          // The done broadcast is the real ack of a reduce-up; skip the empty reply datagram.
          packet_->ElideCurrentReply();
        }
        return net::Payload{};
      },
      /*idempotent=*/true);

  auto handle_done = [this](net::WireReader body) {
    const auto epoch = body.Get<uint64_t>();
    const auto value = body.Get<double>();
    if (config_.balancer.enabled) {
      ParsePlan(body);
    }
    reduce_done_[epoch] = value;
    // Only a NEW done may consume the unacked sync-point requests. Under loss a done arrives
    // again — a duplicated raw broadcast, or the reliable done request retransmitted because our
    // reply to it was lost re-runs this handler — and by then this node may already be a barrier
    // ahead, with the next epoch's reduce-up and gated merge in flight. A stale done proves
    // nothing about those; canceling them here would stop the very retransmissions that recover
    // their loss (the parent defers our up until the merge lands, so the run would wedge at the
    // retransmission limit).
    if (epoch > last_done_epoch_) {
      last_done_epoch_ = epoch;
      last_done_value_ = value;
      if (pending_up_req_ != 0) {
        // The done proves our contribution was combined; stop retransmitting the (unacked) up.
        packet_->CancelRequest(pending_up_req_);
        pending_up_req_ = 0;
      }
      dsm_->OnBarrierDone();
    }
    if (reduce_waiter_ != nullptr) {
      threads::ServerThread* t = reduce_waiter_;
      reduce_waiter_ = nullptr;
      WakeAtTail(t);
    }
  };
  packet_->RegisterRawHandler(net::Service::kReduceDone,
                              [handle_done](NodeId, net::Payload body) {
                                handle_done(net::WireReader(body));
                              });
  packet_->RegisterService(
      net::Service::kReduceDone,
      [handle_done](NodeId, net::WireReader body) -> std::optional<net::Payload> {
        handle_done(body);
        return net::Payload{};
      },
      /*idempotent=*/true);
}

double NodeRuntime::Combine(double a, double b, ReduceOp op) {
  switch (op) {
    case ReduceOp::kBarrier:
      return 0.0;
    case ReduceOp::kSum:
      return a + b;
    case ReduceOp::kMax:
      return a > b ? a : b;
    case ReduceOp::kMin:
      return a < b ? a : b;
    case ReduceOp::kLogicalAnd:
      return (a != 0.0 && b != 0.0) ? 1.0 : 0.0;
    case ReduceOp::kLogicalOr:
      return (a != 0.0 || b != 0.0) ? 1.0 : 0.0;
  }
  DFIL_CHECK(false) << "bad reduce op";
  return 0.0;
}

double NodeRuntime::WaitReduceUp(uint64_t epoch, int round, NodeId from) {
  threads::ServerThread* self = threads_.current();
  for (;;) {
    auto it = reduce_inbox_.find({epoch, round, from});
    if (it != reduce_inbox_.end()) {
      const double v = it->second;
      reduce_inbox_.erase(it);
      return v;
    }
    DFIL_CHECK(reduce_waiter_ == nullptr);
    reduce_waiter_ = self;
    self->set_state(threads::ThreadState::kBlocked);
    self->set_block_reason("reduce up e" + std::to_string(epoch));
    BlockCurrent();
  }
}

double NodeRuntime::WaitReduceDone(uint64_t epoch) {
  threads::ServerThread* self = threads_.current();
  for (;;) {
    auto it = reduce_done_.find(epoch);
    if (it != reduce_done_.end()) {
      const double v = it->second;
      reduce_done_.erase(it);
      return v;
    }
    DFIL_CHECK(reduce_waiter_ == nullptr);
    reduce_waiter_ = self;
    self->set_state(threads::ThreadState::kBlocked);
    self->set_block_reason("reduce done e" + std::to_string(epoch));
    BlockCurrent();
  }
}

void NodeRuntime::WaitForFetchDrain() {
  threads::ServerThread* self = threads_.current();
  while (dsm_->pending_fetches() > 0) {
    DFIL_CHECK(drain_waiter_ == nullptr);
    drain_waiter_ = self;
    self->set_state(threads::ThreadState::kBlocked);
    self->set_block_reason("drain");
    BlockCurrent();
  }
}

void NodeRuntime::SendReduceValue(NodeId dst, uint64_t epoch, int round, double value) {
  net::WireWriter w;
  w.Put(epoch);
  w.Put(static_cast<int32_t>(round));
  w.Put(value);
  if (config_.balancer.enabled) {
    // Balancer wire format: merge-epoch word always present (0 = none; an applied-epoch counter
    // can never be outrun by 0, so 0 never defers), then this sender's accumulated samples — its
    // own plus every subtree sample received in earlier tournament rounds, sorted by node id.
    uint64_t merge_epoch = 0;
    if (config_.coalesce.enabled && config_.coalesce.sync_batch) {
      merge_epoch = dsm_->PendingGatedMergeEpoch();
    }
    w.Put(merge_epoch);
    const auto& samples = balance_samples_[epoch];
    w.Put(static_cast<uint32_t>(samples.size()));
    for (const auto& [node, s] : samples) {
      w.Put(s.node);
      w.Put(s.arrival);
      w.Put(s.run);
      w.Put(s.wait);
      w.Put(s.serve);
    }
  } else if (config_.coalesce.enabled && config_.coalesce.sync_batch) {
    // Piggyback the epoch of the still-unacked gated diff merge (it rides to the same parent,
    // held in the same datagram): the receiver defers this contribution until the merge applies.
    if (const uint64_t merge_epoch = dsm_->PendingGatedMergeEpoch(); merge_epoch != 0) {
      w.Put(merge_epoch);
    }
  }
  const bool elide = config_.coalesce.enabled && config_.coalesce.elide_reduce_replies &&
                     config_.barrier != ClusterConfig::BarrierKind::kDissemination;
  const uint64_t req = packet_->SendRequest(
      dst, net::Service::kReduceUp, w.Take(),
      [this](net::Payload reply) {
        pending_up_req_ = 0;
        if (reply.empty()) {
          return;  // plain ack (elision off, or the parent had not seen done yet)
        }
        // Done-carrying reply: the parent answered a retransmitted up with the barrier result.
        net::WireReader r(reply);
        const auto epoch = r.Get<uint64_t>();
        const auto value = r.Get<double>();
        if (config_.balancer.enabled) {
          ParsePlan(r);
        }
        reduce_done_[epoch] = value;
        last_done_epoch_ = epoch;
        last_done_value_ = value;
        dsm_->OnBarrierDone();
        if (reduce_waiter_ != nullptr) {
          threads::ServerThread* t = reduce_waiter_;
          reduce_waiter_ = nullptr;
          WakeAtTail(t);
        }
      },
      TimeCategory::kSyncOverhead);
  if (elide) {
    pending_up_req_ = req;  // canceled when the done broadcast arrives
  }
}

// The paper's barrier (§4.5, [HFM88]): tournament ascent, single broadcast descent. O(p)
// messages, O(log p) latency.
double NodeRuntime::ReduceTournament(uint64_t epoch, double value, ReduceOp op) {
  const int p = config_.nodes;
  const NodeId r = id_;
  double accum = value;
  for (int k = 0; (1 << k) < p; ++k) {
    const int bit = 1 << k;
    if ((r & bit) != 0) {
      // Tournament loser: report our partial value to the winner and await dissemination.
      SendReduceValue(r - bit, epoch, k, accum);
      return WaitReduceDone(epoch);
    }
    if (r + bit < p) {
      accum = Combine(accum, WaitReduceUp(epoch, k, r + bit), op);
    }
  }
  DFIL_CHECK_EQ(r, 0);
  DFIL_ORACLE_SWEEP();
  MaybeEmitPlan(epoch);
  net::WireWriter w;
  w.Put(epoch);
  w.Put(accum);
  if (config_.balancer.enabled) {
    AppendPlan(w, epoch);
  }
  if (config_.reliable_broadcast) {
    net::Payload body = w.Take();
    for (NodeId n = 1; n < p; ++n) {
      packet_->SendRequest(n, net::Service::kReduceDone, body, nullptr,
                           TimeCategory::kSyncOverhead);
    }
  } else {
    packet_->BroadcastRaw(net::Service::kReduceDone, w.Take(), TimeCategory::kSyncOverhead);
  }
  last_done_epoch_ = epoch;  // children's retransmitted ups are answered with the result directly
  last_done_value_ = accum;
  return accum;
}

// Dissemination barrier [HFM88]: ceil(log2 p) rounds; in round k node r sends to (r + 2^k) mod p
// and receives from (r - 2^k) mod p. Every node holds the full combination after the last round —
// no dissemination broadcast — at the price of O(p log p) messages.
double NodeRuntime::ReduceDissemination(uint64_t epoch, double value, ReduceOp op) {
  const int p = config_.nodes;
  // With p a power of two, round k leaves node r holding the exact combination of the window
  // (r - 2^k, r]; otherwise windows overlap and non-idempotent operators (sum) double-count.
  DFIL_CHECK((p & (p - 1)) == 0 || op == ReduceOp::kBarrier || op == ReduceOp::kMax ||
             op == ReduceOp::kMin || op == ReduceOp::kLogicalAnd || op == ReduceOp::kLogicalOr)
      << "dissemination sum-reduction requires a power-of-two node count";
  const NodeId r = id_;
  double accum = value;
  for (int k = 0; (1 << k) < p; ++k) {
    const int dist = 1 << k;
    const NodeId to = static_cast<NodeId>((r + dist) % p);
    const NodeId from = static_cast<NodeId>((r - dist + p) % p);
    SendReduceValue(to, epoch, k, accum);
    accum = Combine(accum, WaitReduceUp(epoch, k, from), op);
  }
  return accum;
}

// Central barrier: everyone reports to node 0, which combines and broadcasts. The paper's
// baseline to beat — the master's CPU serializes 2(p-1) message handlings.
double NodeRuntime::ReduceCentral(uint64_t epoch, double value, ReduceOp op) {
  const int p = config_.nodes;
  if (id_ != 0) {
    SendReduceValue(0, epoch, 0, value);
    return WaitReduceDone(epoch);
  }
  double accum = value;
  for (NodeId n = 1; n < p; ++n) {
    accum = Combine(accum, WaitReduceUp(epoch, 0, n), op);
  }
  DFIL_ORACLE_SWEEP();
  MaybeEmitPlan(epoch);
  net::WireWriter w;
  w.Put(epoch);
  w.Put(accum);
  if (config_.balancer.enabled) {
    AppendPlan(w, epoch);
  }
  if (config_.reliable_broadcast) {
    net::Payload body = w.Take();
    for (NodeId n = 1; n < p; ++n) {
      packet_->SendRequest(n, net::Service::kReduceDone, body, nullptr,
                           TimeCategory::kSyncOverhead);
    }
  } else {
    packet_->BroadcastRaw(net::Service::kReduceDone, w.Take(), TimeCategory::kSyncOverhead);
  }
  last_done_epoch_ = epoch;  // children's retransmitted ups are answered with the result directly
  last_done_value_ = accum;
  return accum;
}

double NodeRuntime::Reduce(double value, ReduceOp op) {
  DFIL_CHECK(threads_.current() != nullptr);
  const SimTime entered = clock_;
  // The epoch is stamped into the span name so the critical-path walk can align the same barrier
  // across nodes. Reductions never overlap on one node (single reduce_waiter_ slot), so the
  // pre-drain value is the epoch this reduction will claim below.
  const uint64_t epoch = reduce_epoch_ + 1;
  TraceBegin("sync", "reduce e" + std::to_string(epoch));
  WaitForFetchDrain();
  // A reduction is a synchronization point: implicit-invalidate drops read-only copies here,
  // before any message is sent, which is why it needs no invalidation traffic (paper §3).
  dsm_->AtSyncPoint();
  // The diff protocol flushes twinned pages inside AtSyncPoint; each merge message counts as an
  // outstanding fetch until the home acks it, and this node may not contribute to the barrier
  // before then (the champion's quiescent sweep must see every merge applied). A no-op for the
  // single-writer protocols, which send nothing at sync points.
  WaitForFetchDrain();

  DFIL_CHECK_EQ(++reduce_epoch_, epoch);
  if (config_.balancer.enabled && config_.nodes > 1) {
    RecordLoadSample(epoch, entered);
  }
  double result = value;
  if (config_.nodes > 1) {
    switch (config_.barrier) {
      case ClusterConfig::BarrierKind::kTournamentBroadcast:
        result = ReduceTournament(epoch, value, op);
        break;
      case ClusterConfig::BarrierKind::kDissemination:
        result = ReduceDissemination(epoch, value, op);
        break;
      case ClusterConfig::BarrierKind::kCentral:
        result = ReduceCentral(epoch, value, op);
        break;
    }
  }
  TraceEnd();
  metrics_.Inc("sync.reductions");
  metrics_.Hist("sync.barrier_wait_us").Record(ToMicroseconds(clock_ - entered));
  if (ws_on_) {
    // Arrival-to-release gap for this epoch. Thread-level "reduce up/done" blocks inside the
    // barrier are recorded separately by the wake path; the node wait LEDGER only ever sees those
    // scheduler gaps, so the ledger is not double-counted by this record.
    waitstate_.Record(WaitKind::kBarrier, epoch, entered, clock_);
    RecordEpochSnapshot(epoch, entered);
  }
  if (config_.balancer.enabled && config_.nodes > 1) {
    // Every node saw the plan on the done broadcast (or its done-carrying stand-in), so source
    // and destination act here, between this epoch's barrier and the next sweep: filaments leave
    // the source before its next sweep and the destination's sweep blocks until they join — no
    // iteration runs anywhere without them.
    ApplyPendingPlan();
    balance_samples_.erase(balance_samples_.begin(), balance_samples_.upper_bound(epoch));
  }
  return result;
}

// One row of the per-epoch time series: what this node spent and shipped between the previous
// sync point and this one (deltas against epoch_base_), keyed "epoch.<name>" into the registry's
// epoch rows so metrics_io can serialize the series per node.
void NodeRuntime::RecordEpochSnapshot(uint64_t epoch, SimTime entered) {
  const DsmStats& d = dsm_->stats();
  const net::PacketStats& p = packet_->stats();
  const uint64_t faults = d.read_faults + d.write_faults;
  std::map<std::string, double> row;
  row["epoch"] = static_cast<double>(epoch);
  row["released_at_us"] = ToMicroseconds(clock_);
  row["barrier_wait_us"] = ToMicroseconds(clock_ - entered);
  row["faults"] = static_cast<double>(faults - epoch_base_.faults);
  row["diff_bytes"] = static_cast<double>(d.diff_bytes_sent - epoch_base_.diff_bytes);
  row["datagrams"] = static_cast<double>(p.datagrams_sent - epoch_base_.datagrams);
  row["wait_us"] = ToMicroseconds(waitstate_.wait_time() - epoch_base_.wait);
  row["serve_us"] = ToMicroseconds(waitstate_.serve_time() - epoch_base_.serve);
  metrics_.AddEpochRow(std::move(row));
  epoch_base_.faults = faults;
  epoch_base_.diff_bytes = d.diff_bytes_sent;
  epoch_base_.datagrams = p.datagrams_sent;
  epoch_base_.wait = waitstate_.wait_time();
  epoch_base_.serve = waitstate_.serve_time();
}

// --- Load balancing (DESIGN.md §13) ---------------------------------------------------------------

void NodeRuntime::RecordLoadSample(uint64_t epoch, SimTime entered) {
  LoadSample s;
  s.node = id_;
  s.arrival = entered;
  s.run = waitstate_.run_time() - balance_base_.run;
  s.wait = waitstate_.wait_time() - balance_base_.wait;
  s.serve = waitstate_.serve_time() - balance_base_.serve;
  balance_samples_[epoch][id_] = s;
  balance_base_.run = waitstate_.run_time();
  balance_base_.wait = waitstate_.wait_time();
  balance_base_.serve = waitstate_.serve_time();
}

void NodeRuntime::MaybeEmitPlan(uint64_t epoch) {
  if (balancer_ == nullptr) {
    return;
  }
  const auto it = balance_samples_.find(epoch);
  if (it == balance_samples_.end() || static_cast<int>(it->second.size()) != config_.nodes) {
    return;  // defensive: reduce-ups are reliable, so all n samples should be here
  }
  std::vector<LoadSample> samples;
  samples.reserve(it->second.size());
  for (const auto& [node, s] : it->second) {
    samples.push_back(s);
  }
  const std::optional<RebalancePlan> plan = balancer_->AtSyncPoint(epoch, samples);
  if (plan.has_value()) {
    last_plan_ = *plan;
    metrics_.Inc("core.rebalance_plans");
    tracer_.InstantOnTrack(dsm::kRebalanceTid, "core",
                           "rebalance plan e" + std::to_string(epoch) + " n" +
                               std::to_string(plan->src) + " -> n" + std::to_string(plan->dst));
  }
}

void NodeRuntime::AppendPlan(net::WireWriter& w, uint64_t epoch) const {
  if (last_plan_.has_value() && last_plan_->epoch == epoch) {
    w.Put(static_cast<uint8_t>(1));
    w.Put(last_plan_->epoch);
    w.Put(last_plan_->src);
    w.Put(last_plan_->dst);
    w.Put(last_plan_->fraction_ppm);
  } else {
    w.Put(static_cast<uint8_t>(0));
  }
}

void NodeRuntime::ParsePlan(net::WireReader& r) {
  if (r.remaining() < sizeof(uint8_t) || r.Get<uint8_t>() == 0) {
    return;
  }
  RebalancePlan plan;
  plan.epoch = r.Get<uint64_t>();
  plan.src = r.Get<int32_t>();
  plan.dst = r.Get<int32_t>();
  plan.fraction_ppm = r.Get<uint32_t>();
  // Stale dones (duplicated broadcasts, retransmission re-runs) carry stale plans; keep newest.
  if (!last_plan_.has_value() || plan.epoch > last_plan_->epoch) {
    last_plan_ = plan;
  }
}

void NodeRuntime::ApplyPendingPlan() {
  if (!last_plan_.has_value() || last_plan_->epoch <= last_plan_applied_) {
    return;
  }
  const RebalancePlan plan = *last_plan_;
  last_plan_applied_ = plan.epoch;
  if (id_ == plan.dst) {
    pools_->ExpectMigration();
  }
  if (id_ != plan.src) {
    return;
  }
  PoolEngine::MigrationBatch batch =
      pools_->ExtractMigration(static_cast<double>(plan.fraction_ppm) / 1e6);
  if (!config_.balancer.balance_rehome_pages) {
    batch.pages.clear();
  }
  net::WireWriter w;
  w.Put(plan.epoch);
  w.Put(static_cast<uint32_t>(batch.filaments.size()));
  for (const Filament& f : batch.filaments) {
    // Filaments are stackless — a code pointer plus three argument words — so migration is this
    // small message. All simulated nodes share one address space; a real cluster would ship a
    // function-table index instead of the pointer bits.
    w.Put(static_cast<uint64_t>(reinterpret_cast<uintptr_t>(f.fn)));
    w.Put(f.a0);
    w.Put(f.a1);
    w.Put(f.a2);
  }
  w.Put(static_cast<uint32_t>(batch.pages.size()));
  for (const PageId page : batch.pages) {
    w.Put(page);
  }
  // Always sent, even empty: the destination armed a sweep-entry wait and needs the release.
  packet_->SendRequest(plan.dst, net::Service::kFilamentMigrate, w.Take(), nullptr,
                       TimeCategory::kSyncOverhead);
  tracer_.InstantOnTrack(dsm::kRebalanceTid, "core",
                         "rebalance migrate_out f" + std::to_string(batch.filaments.size()) +
                             " p" + std::to_string(batch.pages.size()) + " -> n" +
                             std::to_string(plan.dst));
}

void NodeRuntime::RegisterMigrateService() {
  packet_->RegisterService(
      net::Service::kFilamentMigrate,
      [this](NodeId src, net::WireReader body) -> std::optional<net::Payload> {
        const auto plan_epoch = body.Get<uint64_t>();
        if (plan_epoch <= migrate_applied_epoch_) {
          return net::Payload{};  // duplicate of an already-integrated batch
        }
        migrate_applied_epoch_ = plan_epoch;
        const auto nfil = body.Get<uint32_t>();
        std::vector<Filament> filaments;
        filaments.reserve(nfil);
        for (uint32_t i = 0; i < nfil; ++i) {
          Filament f;
          f.fn = reinterpret_cast<FilamentFn>(static_cast<uintptr_t>(body.Get<uint64_t>()));
          f.a0 = body.Get<int64_t>();
          f.a1 = body.Get<int64_t>();
          f.a2 = body.Get<int64_t>();
          filaments.push_back(f);
        }
        const auto npages = body.Get<uint32_t>();
        std::vector<PageId> pages;
        pages.reserve(npages);
        for (uint32_t i = 0; i < npages; ++i) {
          pages.push_back(body.Get<PageId>());
        }
        metrics_.Inc("core.filaments_migrated", nfil);
        tracer_.InstantOnTrack(dsm::kRebalanceTid, "core",
                               "rebalance migrate_in f" + std::to_string(nfil) + " p" +
                                   std::to_string(npages) + " <- n" + std::to_string(src));
        if (!pages.empty()) {
          // Re-home the strips' backing pages now, overlapping the transfers with whatever runs
          // before the next sweep; filaments faulting on an in-flight page join its waiter list.
          dsm_->RequestRehome(pages, src);
        }
        pools_->AcceptMigration(std::move(filaments));
        return net::Payload{};
      },
      /*idempotent=*/true);
}

void NodeRuntime::FinalizeWaitstate() {
  if (!ws_on_) {
    return;
  }
  // The trailing scheduler gap (after the last wake — typically the quiet tail waiting for the
  // cluster to finish) has no wake to classify it; fold it into idle so the three ledgers
  // partition the final clock exactly. Deliberately NOT added to breakdown_, whose contract is
  // "charged or wake-classified time only" (it may undershoot finished_at).
  if (pending_gap_ > 0) {
    waitstate_.AddWait(WaitKind::kIdle, pending_gap_);
    pending_gap_ = 0;
  }
}

// --- Channels ------------------------------------------------------------------------------------

void NodeRuntime::ChannelSend(NodeId dst, uint32_t tag, std::span<const std::byte> bytes) {
  net::WireWriter w;
  w.Put(tag);
  w.PutBytes(bytes.data(), bytes.size());
  packet_->SendRaw(dst, net::Service::kAppData, w.Take(), TimeCategory::kDataTransfer);
}

void NodeRuntime::ChannelBroadcast(uint32_t tag, std::span<const std::byte> bytes) {
  net::WireWriter w;
  w.Put(tag);
  w.PutBytes(bytes.data(), bytes.size());
  packet_->BroadcastRaw(net::Service::kAppData, w.Take(), TimeCategory::kDataTransfer);
}

std::optional<std::vector<std::byte>> NodeRuntime::ChannelTryRecv(NodeId src, uint32_t tag) {
  Channel& ch = channels_[{src, tag}];
  if (ch.messages.empty()) {
    return std::nullopt;
  }
  std::vector<std::byte> msg = std::move(ch.messages.front());
  ch.messages.pop_front();
  return msg;
}

void NodeRuntime::WaitAnyChannel() {
  threads::ServerThread* self = threads_.current();
  DFIL_CHECK(self != nullptr);
  DFIL_CHECK(any_channel_waiter_ == nullptr);
  any_channel_waiter_ = self;
  self->set_state(threads::ThreadState::kBlocked);
  self->set_block_reason("recv any");
  BlockCurrent();
}

std::vector<std::byte> NodeRuntime::ChannelRecv(NodeId src, uint32_t tag) {
  threads::ServerThread* self = threads_.current();
  DFIL_CHECK(self != nullptr);
  Channel& ch = channels_[{src, tag}];
  while (ch.messages.empty()) {
    DFIL_CHECK(ch.waiter == nullptr) << "two receivers on one channel";
    ch.waiter = self;
    self->set_state(threads::ThreadState::kBlocked);
    self->set_block_reason("recv " + std::to_string(src) + ":" + std::to_string(tag));
    BlockCurrent();
  }
  std::vector<std::byte> msg = std::move(ch.messages.front());
  ch.messages.pop_front();
  return msg;
}

}  // namespace dfil::core
