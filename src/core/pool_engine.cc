#include "src/core/pool_engine.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/core/node_runtime.h"

namespace dfil::core {

int PoolEngine::CreatePool() {
  const int id = static_cast<int>(pools_.size());
  pools_.push_back(std::make_unique<Pool>(id));
  return id;
}

void PoolEngine::AddFilament(int pool, FilamentFn fn, int64_t a0, int64_t a1, int64_t a2) {
  DFIL_CHECK_GE(pool, 0);
  DFIL_CHECK_LT(static_cast<size_t>(pool), pools_.size());
  DFIL_CHECK(!sweep_active_) << "cannot create filaments during a sweep";
  Pool& p = *pools_[pool];
  p.filaments.push_back(Filament{fn, a0, a1, a2});
  p.patterns_valid = false;
  if (rt_->pp_on_) {
    rt_->poolprof_.BindPoolFn(pool, reinterpret_cast<const void*>(fn));
  }
  rt_->Charge(TimeCategory::kFilamentExec, rt_->costs().filament_create);
  rt_->fil_stats().filaments_created++;
}

void PoolEngine::AddAutoFilament(FilamentFn fn, int64_t a0, int64_t a1, int64_t a2) {
  if (auto_pool_ < 0) {
    auto_pool_ = CreatePool();
    pools_[auto_pool_]->auto_profile = true;
  }
  AddFilament(auto_pool_, fn, a0, a1, a2);
}

void PoolEngine::BuildPatterns(Pool* pool) {
  // Greedy run detection: extend a strip while the code pointer matches and the three argument
  // words advance by the deltas observed between the first two descriptors.
  pool->strips.clear();
  const std::vector<Filament>& f = pool->filaments;
  size_t i = 0;
  while (i < f.size()) {
    Strip s{f[i].fn, f[i].a0, f[i].a1, f[i].a2, 0, 0, 0, 1};
    size_t j = i + 1;
    if (j < f.size() && f[j].fn == s.fn) {
      s.d0 = f[j].a0 - f[i].a0;
      s.d1 = f[j].a1 - f[i].a1;
      s.d2 = f[j].a2 - f[i].a2;
      while (j < f.size() && f[j].fn == s.fn &&
             f[j].a0 == s.a0 + static_cast<int64_t>(j - i) * s.d0 &&
             f[j].a1 == s.a1 + static_cast<int64_t>(j - i) * s.d1 &&
             f[j].a2 == s.a2 + static_cast<int64_t>(j - i) * s.d2) {
        ++j;
      }
      s.count = static_cast<int64_t>(j - i);
    }
    pool->strips.push_back(s);
    i = j > i + 1 ? j : i + 1;
  }
  pool->patterns_valid = true;
}

void PoolEngine::RunSweep() {
  DFIL_CHECK(!sweep_active_);
  threads::ServerThread* self = rt_->CurrentThread();
  DFIL_CHECK(self != nullptr) << "RunSweep must run on a server thread";
  WaitForMigrations();
  if (pools_.empty()) {
    return;
  }

  // Frontloading: if the previous sweep completed, run pools in reverse completion order — the
  // pools that faulted finished last, so their faults are issued first this time (paper §2.2).
  order_.clear();
  if (finish_stack_.size() == pools_.size()) {
    order_.assign(finish_stack_.rbegin(), finish_stack_.rend());
  } else {
    for (const auto& p : pools_) {
      order_.push_back(p.get());
    }
  }
  last_order_ids_.clear();
  for (Pool* p : order_) {
    last_order_ids_.push_back(p->id);
  }
  finish_stack_.clear();

  int total_filaments = 0;
  for (Pool* p : order_) {
    p->running = false;
    p->completed = false;
    p->faulted_this_sweep = false;
    total_filaments += static_cast<int>(p->filaments.size());
  }
  next_pool_ = 0;
  pools_remaining_ = static_cast<int>(order_.size());
  if (total_filaments == 0) {
    pools_remaining_ = 0;
    return;
  }
  sweep_active_ = true;
  spare_runners_ = 0;
  EnsureRunnerForRemainingPools();

  while (pools_remaining_ > 0) {
    DFIL_CHECK(sweep_waiter_ == nullptr);
    sweep_waiter_ = self;
    self->set_state(threads::ThreadState::kBlocked);
    self->set_block_reason("sweep");
    rt_->BlockCurrent();
  }
  sweep_waiter_ = nullptr;
  sweep_active_ = false;
  RepartitionAutoPools();
}

void PoolEngine::RepartitionAutoPools() {
  // Adaptive pool assignment (paper §2.2 future work): cluster filaments by the page they fault
  // on. The profiling pool stays in profiling mode across sweeps and migrates newly-faulting
  // filaments into per-page pools incrementally — within one sweep only the FIRST filament to
  // touch a missing page faults (the fetch satisfies its neighbours), so convergence to the full
  // edge pools takes a few sweeps under implicit-invalidate's per-sweep re-faulting.
  if (auto_pool_ < 0) {
    return;
  }
  Pool& src = *pools_[auto_pool_];
  if (!src.auto_profile || src.fault_profile.empty()) {
    return;
  }
  // Widen each fault to the whole pattern-recognized strip containing it: filaments of one strip
  // walk adjacent addresses, so they overwhelmingly share pages — the same observation that
  // powers the inlined execution path. This moves a faulting edge ROW at once instead of one
  // filament per sweep.
  if (!src.patterns_valid) {
    BuildPatterns(&src);
  }
  std::vector<std::pair<int64_t, int64_t>> strip_bounds;  // [start, end) ordinals per strip
  int64_t start = 0;
  for (const Strip& strip : src.strips) {
    strip_bounds.emplace_back(start, start + strip.count);
    start += strip.count;
  }
  auto strip_of = [&](int64_t ordinal) {
    for (size_t k = 0; k < strip_bounds.size(); ++k) {
      if (ordinal >= strip_bounds[k].first && ordinal < strip_bounds[k].second) {
        return k;
      }
    }
    return strip_bounds.size();
  };
  std::map<size_t, uint32_t> strip_page;  // strip index -> first faulted page
  for (const auto& [ordinal, page] : src.fault_profile) {
    strip_page.emplace(strip_of(ordinal), page);
  }
  src.fault_profile.clear();

  std::vector<Filament> quiet;
  bool moved = false;
  for (size_t k = 0; k < strip_bounds.size(); ++k) {
    auto it = strip_page.find(k);
    if (it == strip_page.end()) {
      for (int64_t i = strip_bounds[k].first; i < strip_bounds[k].second; ++i) {
        quiet.push_back(src.filaments[static_cast<size_t>(i)]);
      }
      continue;
    }
    moved = true;
    auto [pool_it, created] = auto_page_pools_.try_emplace(it->second, -1);
    if (created) {
      pool_it->second = CreatePool();
    }
    Pool& dst = *pools_[pool_it->second];
    for (int64_t i = strip_bounds[k].first; i < strip_bounds[k].second; ++i) {
      dst.filaments.push_back(src.filaments[static_cast<size_t>(i)]);
    }
    dst.patterns_valid = false;
  }
  if (moved) {
    src.filaments = std::move(quiet);
    src.patterns_valid = false;
    finish_stack_.clear();  // pool set changed: restart frontloading from creation order
  }
}

void PoolEngine::WaitForMigrations() {
  threads::ServerThread* self = rt_->CurrentThread();
  while (applied_migrations_ < expected_migrations_) {
    if (arrived_migrations_.empty()) {
      // The rebalance plan arrived on the done broadcast but the filaments themselves are still
      // in flight from the source; sweeping now would run the iteration without them (the source
      // already dropped them), so the main thread waits for the kFilamentMigrate message.
      DFIL_CHECK(migrate_waiter_ == nullptr);
      migrate_waiter_ = self;
      self->set_state(threads::ThreadState::kBlocked);
      self->set_block_reason("migrate");
      rt_->BlockCurrent();
      continue;
    }
    std::vector<Filament> batch = std::move(arrived_migrations_.front());
    arrived_migrations_.pop_front();
    ++applied_migrations_;
    if (batch.empty()) {
      continue;  // the source had nothing it could spare
    }
    const int pool = CreatePool();
    for (const Filament& f : batch) {
      AddFilament(pool, f.fn, f.a0, f.a1, f.a2);
    }
    if (rt_->pp_on_) {
      rt_->poolprof_.OnMigratedIn(pool, batch.size());
    }
    finish_stack_.clear();  // pool set changed: frontloading restarts from creation order
  }
}

void PoolEngine::AcceptMigration(std::vector<Filament> filaments) {
  arrived_migrations_.push_back(std::move(filaments));
  if (migrate_waiter_ != nullptr) {
    threads::ServerThread* t = migrate_waiter_;
    migrate_waiter_ = nullptr;
    rt_->WakeAtTail(t);
  }
}

PoolEngine::MigrationBatch PoolEngine::ExtractMigration(double fraction) {
  DFIL_CHECK(!sweep_active_);
  MigrationBatch out;
  int64_t total = 0;
  int eligible = 0;
  for (const auto& p : pools_) {
    if (p->auto_profile || p->filaments.empty()) {
      continue;
    }
    total += static_cast<int64_t>(p->filaments.size());
    ++eligible;
  }
  if (eligible <= 1) {
    return out;  // never strip the node bare — a whole-pool move would just invert the imbalance
  }
  const int64_t quota =
      std::max<int64_t>(1, static_cast<int64_t>(static_cast<double>(total) * fraction));
  std::vector<uint32_t> pages;
  int moved_pools = 0;
  for (const auto& p : pools_) {
    if (p->auto_profile || p->filaments.empty()) {
      continue;
    }
    if (moved_pools == eligible - 1) {
      break;
    }
    // Never overshoot the quota (except for the guaranteed first pool): shipping more than the
    // measured gap just inverts the imbalance and the next plan bounces the surplus back.
    if (!out.filaments.empty() &&
        static_cast<int64_t>(out.filaments.size() + p->filaments.size()) > quota) {
      break;
    }
    out.filaments.insert(out.filaments.end(), p->filaments.begin(), p->filaments.end());
    pages.insert(pages.end(), p->write_pages.begin(), p->write_pages.end());
    p->filaments.clear();
    p->strips.clear();
    p->singles.clear();
    p->patterns_valid = false;
    p->hints.clear();
    p->write_pages.clear();
    ++moved_pools;
  }
  if (!out.filaments.empty()) {
    finish_stack_.clear();  // pool set changed: frontloading restarts from creation order
  }
  std::sort(pages.begin(), pages.end());
  pages.erase(std::unique(pages.begin(), pages.end()), pages.end());
  out.pages = std::move(pages);
  return out;
}

void PoolEngine::NoteWriteAccess(uint32_t page) {
  if (!sweep_active_) {
    return;
  }
  const auto it = running_pool_.find(rt_->CurrentThread());
  if (it == running_pool_.end()) {
    return;  // not a pool runner (main-thread writes are not pool footprint)
  }
  std::vector<uint32_t>& pages = it->second.pool->write_pages;
  // Strips walk addresses in order, so consecutive writes overwhelmingly repeat the last page;
  // full dedupe happens once at extraction.
  if (pages.empty() || pages.back() != page) {
    pages.push_back(page);
  }
}

void PoolEngine::RunIterative(const std::function<bool(int)>& after_iteration) {
  for (int iter = 0;; ++iter) {
    RunSweep();
    if (!after_iteration(iter)) {
      return;
    }
  }
}

void PoolEngine::EnsureRunnerForRemainingPools() {
  if (next_pool_ >= order_.size() || spare_runners_ > 0) {
    return;
  }
  ++spare_runners_;
  rt_->SpawnThread([this] { RunnerLoop(); });
}

void PoolEngine::RunnerLoop() {
  bool counted_spare = true;
  for (;;) {
    if (next_pool_ >= order_.size()) {
      break;
    }
    if (counted_spare) {
      --spare_runners_;
      counted_spare = false;
    }
    Pool* pool = order_[next_pool_++];
    pool->running = true;
    running_pool_[rt_->CurrentThread()] = RunnerPosition{pool, 0};
    rt_->CurrentThread()->set_profile_pool(pool->id);
    rt_->TraceBegin("pool", "pool " + std::to_string(pool->id));
    ExecutePool(pool);
    rt_->TraceEnd();
    rt_->CurrentThread()->set_profile_pool(-1);
    running_pool_.erase(rt_->CurrentThread());
    pool->running = false;
    pool->completed = true;
    finish_stack_.push_back(pool);
    if (--pools_remaining_ == 0 && sweep_waiter_ != nullptr) {
      threads::ServerThread* waiter = sweep_waiter_;
      sweep_waiter_ = nullptr;
      rt_->Wake(waiter);
    }
  }
  if (counted_spare) {
    --spare_runners_;
  }
}

void PoolEngine::IssuePrefetchHints(Pool* pool) {
  if (pool->hints.empty()) {
    return;
  }
  dsm::DsmNode& dsm = rt_->dsm();
  // Drop hints whose last prefetch died untouched (the footprint shifted), then collect the
  // pages whose learned period puts a fault in THIS run. A hint with an unknown period (seen
  // only one fault so far) is withheld: issuing it blind would prefetch the idle buffer of a
  // double-buffered program on the off sweeps.
  std::vector<Pool::HintRecord>& hints = pool->hints;
  hints.erase(std::remove_if(hints.begin(), hints.end(),
                             [&](const Pool::HintRecord& h) {
                               return dsm.ConsumePrefetchWasted(h.page);
                             }),
              hints.end());
  std::vector<uint32_t> due;
  for (const Pool::HintRecord& h : hints) {
    if (h.period > 0 && (pool->runs - h.last_fault_run) % h.period == 0) {
      due.push_back(h.page);
    }
  }
  // Issue the due pages as bulk prefetches: one request per contiguous run.
  std::sort(due.begin(), due.end());
  due.erase(std::unique(due.begin(), due.end()), due.end());
  size_t i = 0;
  while (i < due.size()) {
    size_t j = i + 1;
    while (j < due.size() && due[j] == due[j - 1] + 1) {
      ++j;
    }
    dsm.Prefetch(due[i], static_cast<int>(j - i), dsm::AccessMode::kRead);
    i = j;
  }
}

void PoolEngine::ExecutePool(Pool* pool) {
  if (!pool->patterns_valid) {
    BuildPatterns(pool);
  }
  ++pool->runs;
  if (rt_->config().balancer.enabled) {
    pool->write_pages.clear();  // a migrated pool ships its LAST sweep's footprint
  }
  if (rt_->config().dsm.prefetch_hints) {
    IssuePrefetchHints(pool);
  }
  const sim::CostModel& costs = rt_->costs();
  FilamentStats& fs = rt_->fil_stats();
  NodeEnv& env = rt_->env();
  RunnerPosition& pos = running_pool_[rt_->CurrentThread()];
  int64_t ordinal = 0;
  for (const Strip& s : pool->strips) {
    const bool inlined = s.count >= kMinStripLength;
    const SimTime per_filament = inlined ? costs.filament_switch_inlined : costs.filament_switch;
    for (int64_t k = 0; k < s.count; ++k) {
      pos.ordinal = ordinal++;
      rt_->Charge(TimeCategory::kFilamentExec, per_filament);
      fs.filaments_run++;
      if (inlined) {
        fs.filaments_run_inlined++;
      }
      s.fn(env, s.a0 + k * s.d0, s.a1 + k * s.d1, s.a2 + k * s.d2);
    }
    if (rt_->pp_on_) {
      rt_->poolprof_.OnFilamentsRun(pool->id, static_cast<uint64_t>(s.count));
    }
  }
}

void PoolEngine::OnThreadBlockedOnPage(PageId page) {
  if (!sweep_active_) {
    return;
  }
  auto it = running_pool_.find(rt_->CurrentThread());
  if (it == running_pool_.end()) {
    return;  // not a pool runner (e.g. the main thread faulting during initialization)
  }
  Pool* pool = it->second.pool;
  pool->faulted_this_sweep = true;
  if (rt_->config().dsm.prefetch_hints) {
    auto hit = std::find_if(pool->hints.begin(), pool->hints.end(),
                            [&](const Pool::HintRecord& h) { return h.page == page; });
    if (hit == pool->hints.end()) {
      pool->hints.push_back(Pool::HintRecord{page, pool->runs, 0});
    } else if (pool->runs > hit->last_fault_run) {
      // Refault in a later run: the distance is this page's refault period (1 for a stable
      // footprint, 2 for double-buffered programs). Repeated faults within one run don't count.
      hit->period = pool->runs - hit->last_fault_run;
      hit->last_fault_run = pool->runs;
    }
  }
  if (pool->auto_profile) {
    pool->fault_profile.emplace_back(it->second.ordinal, page);
  }
  if (rt_->pp_on_) {
    rt_->poolprof_.OnFault(pool->id);
  }
  rt_->fil_stats().pool_suspensions++;
  // The paper's key move: a fault starts a new server thread on a different pool, so the page
  // round-trip is overlapped with the execution of other filaments.
  EnsureRunnerForRemainingPools();
}

}  // namespace dfil::core
