// Fork/join filament types (paper §2.3).
#ifndef DFIL_CORE_FJ_TYPES_H_
#define DFIL_CORE_FJ_TYPES_H_

#include <cstdint>

#include "src/common/types.h"

namespace dfil::core {

class NodeEnv;

// Arguments of a fork/join filament. Fixed-size so descriptors ship in one small datagram.
struct FjArgs {
  double d[4] = {0, 0, 0, 0};
  int64_t i[4] = {0, 0, 0, 0};
};

// Result of a fork/join filament: a scalar plus an integer word (applications that produce bulk
// results, like the expression-tree matrices, place them in DSM and return the global address).
struct FjResult {
  double d = 0;
  int64_t i = 0;
};

// The body of a fork/join filament. May call NodeEnv::Fork / NodeEnv::Join recursively.
using FjFn = FjResult (*)(NodeEnv&, const FjArgs&);

struct JoinCell;

// Handle returned by Fork and consumed (exactly once) by Join.
struct FjHandle {
  JoinCell* cell = nullptr;   // null when the fork was pruned into a direct call
  FjResult inline_result{};   // valid when cell == nullptr
};

}  // namespace dfil::core

#endif  // DFIL_CORE_FJ_TYPES_H_
