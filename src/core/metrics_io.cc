#include "src/core/metrics_io.h"

#include <cstdio>
#include <fstream>
#include <map>

#include "src/net/packet.h"

namespace dfil::core {
namespace {

// Every stats-struct field becomes a "<layer>.<name>" counter in one per-node registry, so the
// JSON (and everything downstream: dfil_report, the CI gate) sees a single uniform namespace.
MetricsRegistry FlattenNode(const NodeReport& nr) {
  MetricsRegistry m = nr.metrics;  // live histograms + runtime counters first

  const DsmStats& d = nr.dsm;
  m.Set("dsm.read_faults", d.read_faults);
  m.Set("dsm.write_faults", d.write_faults);
  m.Set("dsm.page_requests_served", d.page_requests_served);
  m.Set("dsm.invalidations_sent", d.invalidations_sent);
  m.Set("dsm.invalidations_received", d.invalidations_received);
  m.Set("dsm.implicit_invalidations", d.implicit_invalidations);
  m.Set("dsm.page_forwards", d.page_forwards);
  m.Set("dsm.mirage_deferrals", d.mirage_deferrals);
  m.Set("dsm.fetch_deferrals", d.fetch_deferrals);
  m.Set("dsm.use_deferrals", d.use_deferrals);
  m.Set("dsm.single_page_requests", d.single_page_requests);
  m.Set("dsm.bulk_requests", d.bulk_requests);
  m.Set("dsm.bulk_pages_requested", d.bulk_pages_requested);
  m.Set("dsm.bulk_pages_served", d.bulk_pages_served);
  m.Set("dsm.bulk_misses", d.bulk_misses);
  m.Set("dsm.prefetched_pages", d.prefetched_pages);
  m.Set("dsm.prefetch_wasted", d.prefetch_wasted);
  m.Set("dsm.grant_reserves", d.grant_reserves);
  m.Set("dsm.stale_invalidations_ignored", d.stale_invalidations_ignored);
  m.Set("dsm.stale_transfer_dups_ignored", d.stale_transfer_dups_ignored);
  m.Set("dsm.discarded_installs", d.discarded_installs);
  m.Set("dsm.diff_twins_created", d.diff_twins_created);
  m.Set("dsm.diff_merges_sent", d.diff_merges_sent);
  m.Set("dsm.diff_pages_flushed", d.diff_pages_flushed);
  m.Set("dsm.diff_bytes_sent", d.diff_bytes_sent);
  m.Set("dsm.diff_merges_applied", d.diff_merges_applied);
  m.Set("dsm.diff_pages_merged", d.diff_pages_merged);
  m.Set("dsm.diff_stale_merges_ignored", d.diff_stale_merges_ignored);
  m.Set("dsm.diff_bulk_refetches", d.diff_bulk_refetches);
  m.Set("dsm.adapter_switches_to_diff", d.adapter_switches_to_diff);
  m.Set("dsm.adapter_switches_to_ii", d.adapter_switches_to_ii);
  m.Set("dsm.pages_rehomed", d.pages_rehomed);
  m.Set("dsm.rehome_requests", d.rehome_requests);
  m.Set("dsm.rehome_pages_requested", d.rehome_pages_requested);
  m.Set("dsm.rehome_pages_served", d.rehome_pages_served);
  m.Set("dsm.rehome_misses", d.rehome_misses);
  m.Set("dsm.rehome_misses_served", d.rehome_misses_served);
  m.Set("dsm.page_data_bytes", d.page_data_bytes);
  m.Set("dsm.page_request_messages", d.page_request_messages());

  const net::PacketStats& p = nr.packet;
  m.Set("net.requests_sent", p.requests_sent);
  m.Set("net.replies_sent", p.replies_sent);
  m.Set("net.acks_sent", p.acks_sent);
  m.Set("net.reply_retransmissions", p.reply_retransmissions);
  m.Set("net.retransmissions", p.retransmissions);
  m.Set("net.duplicate_requests", p.duplicate_requests);
  m.Set("net.duplicate_replies", p.duplicate_replies);
  m.Set("net.deferred_requests", p.deferred_requests);
  m.Set("net.raw_sent", p.raw_sent);
  m.Set("net.replies_first_serve", p.replies_first_serve);
  m.Set("net.replies_rebuilt", p.replies_rebuilt);
  m.Set("net.datagrams_sent", p.datagrams_sent);
  m.Set("net.wire_bytes", p.wire_bytes);
  m.Set("net.frames_coalesced", p.frames_coalesced);
  m.Set("net.replies_elided", p.replies_elided);
  m.Set("net.requests_canceled", p.requests_canceled);
  for (const auto& [svc, count] : nr.sent_by_service) {
    m.Set(std::string("net.sent.") + net::ServiceName(static_cast<net::Service>(svc)), count);
  }

  const FilamentStats& f = nr.filaments;
  m.Set("fil.filaments_created", f.filaments_created);
  m.Set("fil.filaments_run", f.filaments_run);
  m.Set("fil.filaments_run_inlined", f.filaments_run_inlined);
  m.Set("fil.forks_local", f.forks_local);
  m.Set("fil.forks_pruned", f.forks_pruned);
  m.Set("fil.forks_sent", f.forks_sent);
  m.Set("fil.steals_attempted", f.steals_attempted);
  m.Set("fil.steals_succeeded", f.steals_succeeded);
  m.Set("fil.steals_denied", f.steals_denied);
  m.Set("fil.steals_attempted_on_us", f.steals_attempted_on_us);
  m.Set("fil.pool_suspensions", f.pool_suspensions);
  m.Set("fil.server_threads_started", f.server_threads_started);

  return m;
}

// Cluster totals: per-node counters summed, plus the network-wide MessageStats and the two gate
// counters the CI workflow tracks.
std::map<std::string, uint64_t> ClusterCounters(const RunReport& report) {
  std::map<std::string, uint64_t> totals;
  for (const NodeReport& nr : report.nodes) {
    const MetricsRegistry flat = FlattenNode(nr);  // bound: counters() refers into it
    for (const auto& [name, value] : flat.counters()) {
      totals[name] += value;
    }
    totals["net.barrier_messages"] +=
        nr.sent_by_service.count(static_cast<uint16_t>(net::Service::kReduceUp)) != 0
            ? nr.sent_by_service.at(static_cast<uint16_t>(net::Service::kReduceUp))
            : 0;
    totals["net.barrier_messages"] +=
        nr.sent_by_service.count(static_cast<uint16_t>(net::Service::kReduceDone)) != 0
            ? nr.sent_by_service.at(static_cast<uint16_t>(net::Service::kReduceDone))
            : 0;
  }
  totals["net.messages_sent"] = report.net.messages_sent;
  totals["net.messages_dropped"] = report.net.messages_dropped;
  totals["net.bytes_sent"] = report.net.bytes_sent;
  totals["net.messages_duplicated"] = report.net.messages_duplicated;
  totals["net.messages_delayed"] = report.net.messages_delayed;
  totals["net.stall_deferrals"] = report.net.stall_deferrals;
  return totals;
}

// Cluster-wide per-filament-function rollup of the per-pool ledgers. Key is the deterministic fn
// id (first-registration order, identical across nodes for SPMD programs); fn -1 is the residual:
// non-pool run time plus all serve time (handlers serve the cluster, not any one pool).
struct FnRollup {
  SimTime run = 0;
  SimTime blocked = 0;
  SimTime serve = 0;
  uint64_t faults = 0;
  uint64_t filaments_run = 0;
  uint64_t migrated_in = 0;
};

std::map<int, FnRollup> RollupByFn(const RunReport& report) {
  std::map<int, FnRollup> by_fn;
  for (const NodeReport& nr : report.nodes) {
    for (const auto& [pool, lg] : nr.poolprof.pools()) {
      FnRollup& r = by_fn[lg.fn];
      r.run += lg.run;
      r.blocked += lg.blocked;
      r.faults += lg.faults;
      r.filaments_run += lg.filaments_run;
      r.migrated_in += lg.migrated_in;
    }
    FnRollup& other = by_fn[-1];
    other.run += nr.poolprof.other_run();
    other.serve += nr.waits.serve_time();
  }
  return by_fn;
}

bool PoolProfilingOn(const RunReport& report) {
  const auto it = report.provenance.find("pool_profile");
  return it != report.provenance.end() && it->second == "on";
}

std::string ProvenanceOr(const std::map<std::string, std::string>& provenance,
                         const std::string& key, const std::string& fallback) {
  const auto it = provenance.find(key);
  return it != provenance.end() ? it->second : fallback;
}

}  // namespace

void WriteMetricsJson(const RunReport& report, const std::string& label, std::ostream& os,
                      const std::map<std::string, std::string>& extra_provenance) {
  std::map<std::string, std::string> provenance = report.provenance;
  for (const auto& [key, value] : extra_provenance) {
    provenance[key] = value;
  }
  os << "{\n  \"schema\": \"dfil-metrics-v2\",\n  \"label\": \"" << label << "\",\n  \"pcp\": \""
     << report.pcp << "\",\n  \"nodes\": " << report.num_nodes
     << ",\n  \"completed\": " << (report.completed ? 1 : 0)
     << ",\n  \"makespan_us\": " << ToMicroseconds(report.makespan)
     // Run fingerprint: the four fields dfil_diff checks before comparing two runs. "config" is
     // the canonical digest of every schedule-affecting ClusterConfig knob (config.cc); "app" is
     // the program identity (bench-supplied; distinct labels like jacobi_wi8/jacobi_ii8 share it).
     << ",\n  \"fingerprint\": {\"config\": \"" << ProvenanceOr(provenance, "config_digest", "")
     << "\", \"git\": \"" << ProvenanceOr(provenance, "git", "unknown") << "\", \"seed\": \""
     << ProvenanceOr(provenance, "seed", "") << "\", \"app\": \""
     << ProvenanceOr(provenance, "app", label) << "\"}"
     << ",\n  \"provenance\": {";
  bool first = true;
  for (const auto& [key, value] : provenance) {
    os << (first ? "\n" : ",\n") << "    \"" << key << "\": \"" << value << "\"";
    first = false;
  }
  os << "\n  },\n  \"cluster\": {\n"
     << "    \"counters\": {";
  first = true;
  for (const auto& [name, value] : ClusterCounters(report)) {
    os << (first ? "\n" : ",\n") << "      \"" << name << "\": " << value;
    first = false;
  }
  os << "\n    },\n    \"pools_by_fn\": [";
  if (PoolProfilingOn(report)) {
    first = true;
    for (const auto& [fn, r] : RollupByFn(report)) {
      os << (first ? "\n" : ",\n") << "      {\"fn\": " << fn
         << ", \"run_us\": " << ToMicroseconds(r.run)
         << ", \"blocked_us\": " << ToMicroseconds(r.blocked)
         << ", \"serve_us\": " << ToMicroseconds(r.serve) << ", \"faults\": " << r.faults
         << ", \"filaments_run\": " << r.filaments_run << ", \"migrated_in\": " << r.migrated_in
         << "}";
      first = false;
    }
    os << (first ? "]" : "\n    ]");
  } else {
    os << "]";
  }
  os << "\n  },\n  \"per_node\": [";
  for (size_t i = 0; i < report.nodes.size(); ++i) {
    const NodeReport& nr = report.nodes[i];
    os << (i == 0 ? "\n" : ",\n") << "    {\n      \"node\": " << nr.node
       << ",\n      \"finished_at_us\": " << ToMicroseconds(nr.finished_at)
       << ",\n      \"final_clock_us\": " << ToMicroseconds(nr.final_clock)
       << ",\n      \"time_us\": {";
    for (size_t c = 0; c < kNumTimeCategories; ++c) {
      const auto cat = static_cast<TimeCategory>(c);
      os << (c == 0 ? "" : ", ") << "\"" << TimeCategoryName(cat)
         << "\": " << ToMicroseconds(nr.breakdown.Get(cat));
    }
    os << "},\n      \"run_us\": " << ToMicroseconds(nr.waits.run_time())
       << ",\n      \"serve_us\": " << ToMicroseconds(nr.waits.serve_time())
       << ",\n      \"wait_us\": {";
    for (size_t k = 0; k < kNumWaitKinds; ++k) {
      const auto kind = static_cast<WaitKind>(k);
      os << (k == 0 ? "" : ", ") << "\"" << WaitKindName(kind)
         << "\": " << ToMicroseconds(nr.waits.wait_time(kind));
    }
    os << "},\n      \"wait_events\": {";
    for (size_t k = 0; k < kNumWaitKinds; ++k) {
      const auto kind = static_cast<WaitKind>(k);
      os << (k == 0 ? "" : ", ") << "\"" << WaitKindName(kind)
         << "\": " << nr.waits.event_count(kind);
    }
    os << "},\n      \"pools\": [";
    if (PoolProfilingOn(report)) {
      bool first_pool = true;
      for (const auto& [pool, lg] : nr.poolprof.pools()) {
        os << (first_pool ? "\n" : ",\n") << "        {\"pool\": " << pool
           << ", \"fn\": " << lg.fn << ", \"run_us\": " << ToMicroseconds(lg.run)
           << ", \"blocked_us\": " << ToMicroseconds(lg.blocked)
           << ", \"serve_us\": 0, \"faults\": " << lg.faults
           << ", \"filaments_run\": " << lg.filaments_run << ", \"migrated_in\": " << lg.migrated_in
           << "}";
        first_pool = false;
      }
      // Residual row: run time outside any pool (main/sync/balancer code) plus all handler serve
      // time. With it, sum(run_us)+sum(serve_us) over rows equals this node's run_us+serve_us.
      os << (first_pool ? "\n" : ",\n") << "        {\"pool\": -1, \"fn\": -1, \"run_us\": "
         << ToMicroseconds(nr.poolprof.other_run())
         << ", \"blocked_us\": 0, \"serve_us\": " << ToMicroseconds(nr.waits.serve_time())
         << ", \"faults\": 0, \"filaments_run\": 0, \"migrated_in\": 0}";
      os << "\n      ]";
    } else {
      os << "]";
    }
    os << ",\n      \"epochs\": [";
    const auto& epochs = nr.metrics.epochs();
    for (size_t e = 0; e < epochs.size(); ++e) {
      os << (e == 0 ? "\n        {" : ",\n        {");
      bool first_col = true;
      for (const auto& [name, value] : epochs[e]) {
        os << (first_col ? "" : ", ") << "\"" << name << "\": " << value;
        first_col = false;
      }
      os << "}";
    }
    os << (epochs.empty() ? "]" : "\n      ]") << ",\n      \"metrics\": ";
    FlattenNode(nr).WriteJson(os, "      ");
    os << ",\n      \"page_heat\": [";
    bool first_page = true;
    for (size_t p = 0; p < nr.page_heat.size(); ++p) {
      if (nr.page_heat[p] == 0) {
        continue;
      }
      os << (first_page ? "" : ",") << "[" << p << "," << nr.page_heat[p] << "]";
      first_page = false;
    }
    os << "]\n    }";
  }
  os << "\n  ]\n}\n";
}

std::string WriteMetricsFile(const RunReport& report, const std::string& label,
                             const std::map<std::string, std::string>& extra_provenance) {
  const std::string name = "METRICS_" + label + ".json";
  std::ofstream out(name);
  WriteMetricsJson(report, label, out, extra_provenance);
  std::printf("wrote %s\n", name.c_str());
  return name;
}

namespace {

// Minimal JSON string escaping for oracle violation text (which embeds page/value dumps).
void WriteEscaped(std::ostream& os, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      os << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned char>(c));
      os << buf;
    } else {
      os << c;
    }
  }
}

const char* MsgClassLabel(sim::MsgClass klass) {
  switch (klass) {
    case sim::MsgClass::kRequest:
      return "request";
    case sim::MsgClass::kReply:
      return "reply";
    case sim::MsgClass::kRaw:
      return "raw";
    case sim::MsgClass::kAck:
      return "ack";
    case sim::MsgClass::kPacked:
      return "packed";
    case sim::MsgClass::kUnknown:
      break;
  }
  return "unknown";
}

}  // namespace

void WriteFlightJson(const RunReport& report, const std::string& label,
                     const std::vector<std::string>& violations, std::ostream& os) {
  const FlightSnapshot& flight = report.flight;
  os << "{\n  \"schema\": \"dfil-flight-v1\",\n  \"label\": \"";
  WriteEscaped(os, label);
  os << "\",\n  \"at_violation\": " << (flight.at_violation ? 1 : 0) << ",\n  \"violations\": [";
  for (size_t i = 0; i < violations.size(); ++i) {
    os << (i == 0 ? "\n    \"" : ",\n    \"");
    WriteEscaped(os, violations[i]);
    os << "\"";
  }
  os << (violations.empty() ? "]" : "\n  ]") << ",\n  \"nodes\": [";
  for (size_t n = 0; n < flight.node_events.size(); ++n) {
    os << (n == 0 ? "\n" : ",\n") << "    {\"node\": " << n << ", \"events\": [";
    const auto& events = flight.node_events[n];
    for (size_t i = 0; i < events.size(); ++i) {
      const WaitEvent& e = events[i];
      os << (i == 0 ? "\n" : ",\n") << "      {\"kind\": \"" << WaitKindName(e.kind)
         << "\", \"detail\": " << e.detail << ", \"start_us\": " << ToMicroseconds(e.start)
         << ", \"end_us\": " << ToMicroseconds(e.end) << "}";
    }
    os << (events.empty() ? "]}" : "\n    ]}");
  }
  os << (flight.node_events.empty() ? "]" : "\n  ]") << ",\n  \"injections\": [";
  for (size_t i = 0; i < flight.injections.size(); ++i) {
    const sim::Machine::InjectionNote& note = flight.injections[i];
    os << (i == 0 ? "\n" : ",\n") << "    {\"what\": \"" << note.what << "\", \"class\": \""
       << MsgClassLabel(note.klass) << "\", \"type\": " << note.type << ", \"src\": " << note.src
       << ", \"dst\": " << note.dst << ", \"at_us\": " << ToMicroseconds(note.at) << "}";
  }
  os << (flight.injections.empty() ? "]" : "\n  ]") << "\n}\n";
}

std::string WriteFlightFile(const RunReport& report, const std::string& label,
                            const std::vector<std::string>& violations) {
  const std::string name = "FLIGHT_" + label + ".json";
  std::ofstream out(name);
  WriteFlightJson(report, label, violations, out);
  std::printf("wrote %s\n", name.c_str());
  return name;
}

}  // namespace dfil::core
