// High-level data-parallel helpers over filaments.
//
// The paper positions Filaments as a least-common-denominator compiler target (its RISC analogy,
// §1): a forall loop in a dataflow language lowers to "one filament per element". These helpers
// are that lowering, packaged for humans: block-distribute an index space across nodes, create
// one filament per local index (adaptive pools by default), run the sweep.
//
// All helpers are collective: every node must call them with the same arguments.
#ifndef DFIL_CORE_PARALLEL_H_
#define DFIL_CORE_PARALLEL_H_

#include <cstdint>

#include "src/common/check.h"
#include "src/core/node_env.h"

namespace dfil::core {

// The strip of [0, count) owned by `node` under block distribution.
struct Block {
  int64_t lo;
  int64_t hi;  // exclusive
  int64_t size() const { return hi - lo; }
};

inline Block BlockOf(int64_t count, NodeId node, int nodes) {
  const int64_t base = count / nodes;
  const int64_t extra = count % nodes;
  const int64_t lo = node * base + (node < extra ? node : extra);
  return Block{lo, lo + base + (node < extra ? 1 : 0)};
}

// Runs fn(env, i, 0, 0) once for every i in [0, count), block-distributed across nodes, followed
// by a barrier. `fn` must be a plain function or captureless lambda (filaments are stackless:
// code pointer + argument words). With `adaptive_pools` the runtime clusters filaments by the
// pages they fault on after the first sweep; this matters only for ParallelForEach/iterative use.
inline void ParallelFor(NodeEnv& env, int64_t count, FilamentFn fn, bool adaptive_pools = false) {
  const Block b = BlockOf(count, env.node(), env.nodes());
  const PoolHandle pool = adaptive_pools ? PoolHandle{} : env.CreatePool();
  for (int64_t i = b.lo; i < b.hi; ++i) {
    if (adaptive_pools) {
      env.CreateAutoFilament(fn, i, 0, 0);
    } else {
      env.CreateFilament(pool, fn, i, 0, 0);
    }
  }
  env.RunPools();
  env.Barrier();
}

// Runs fn(env, i, j, 0) for every (i, j) in [0, rows) x [0, cols), rows block-distributed.
inline void ParallelFor2D(NodeEnv& env, int64_t rows, int64_t cols, FilamentFn fn,
                          bool adaptive_pools = false) {
  const Block b = BlockOf(rows, env.node(), env.nodes());
  const PoolHandle pool = adaptive_pools ? PoolHandle{} : env.CreatePool();
  for (int64_t i = b.lo; i < b.hi; ++i) {
    for (int64_t j = 0; j < cols; ++j) {
      if (adaptive_pools) {
        env.CreateAutoFilament(fn, i, j, 0);
      } else {
        env.CreateFilament(pool, fn, i, j, 0);
      }
    }
  }
  env.RunPools();
  env.Barrier();
}

// Iterative forall (the dataflow `for initial ... while` lowering): creates the filaments once,
// then sweeps until `step(iter)` — which must contain the per-iteration reduction — returns
// false. Filament creation is identical to ParallelFor2D's.
inline void ParallelIterate2D(NodeEnv& env, int64_t rows, int64_t cols, FilamentFn fn,
                              const std::function<bool(int)>& step,
                              bool adaptive_pools = true) {
  const Block b = BlockOf(rows, env.node(), env.nodes());
  const PoolHandle pool = adaptive_pools ? PoolHandle{} : env.CreatePool();
  for (int64_t i = b.lo; i < b.hi; ++i) {
    for (int64_t j = 0; j < cols; ++j) {
      if (adaptive_pools) {
        env.CreateAutoFilament(fn, i, j, 0);
      } else {
        env.CreateFilament(pool, fn, i, j, 0);
      }
    }
  }
  env.RunIterative(step);
}

}  // namespace dfil::core

#endif  // DFIL_CORE_PARALLEL_H_
