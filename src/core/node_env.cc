#include "src/core/node_env.h"

#include "src/core/forkjoin.h"
#include "src/core/node_runtime.h"
#include "src/core/pool_engine.h"

namespace dfil::core {

NodeId NodeEnv::node() const { return rt_->id(); }
int NodeEnv::nodes() const { return rt_->config().nodes; }
SimTime NodeEnv::Now() const { return rt_->Clock(); }

void NodeEnv::ChargeWork(SimTime cost) { rt_->Charge(TimeCategory::kWork, cost); }
void NodeEnv::Charge(TimeCategory category, SimTime cost) { rt_->Charge(category, cost); }

std::byte* NodeEnv::AccessBytes(GlobalAddr addr, size_t len, dsm::AccessMode mode) {
  if (mode == dsm::AccessMode::kWrite && rt_->config().balancer.enabled) {
    // Write-footprint capture for rebalance page re-homing (DESIGN.md §13): each write lands in
    // the current runner's pool record, so a migrated pool carries the pages it produces.
    rt_->pools().NoteWriteAccess(rt_->dsm().layout().PageOf(addr));
  }
  return rt_->dsm().Access(addr, len, mode);
}

PoolHandle NodeEnv::CreatePool() { return PoolHandle{rt_->pools().CreatePool()}; }

void NodeEnv::CreateFilament(PoolHandle pool, FilamentFn fn, int64_t a0, int64_t a1, int64_t a2) {
  DFIL_CHECK(pool.valid()) << "CreateFilament needs a handle from CreatePool";
  rt_->pools().AddFilament(pool.id, fn, a0, a1, a2);
}

void NodeEnv::CreateFilament(int pool, FilamentFn fn, int64_t a0, int64_t a1, int64_t a2) {
  rt_->pools().AddFilament(pool, fn, a0, a1, a2);
}

void NodeEnv::CreateAutoFilament(FilamentFn fn, int64_t a0, int64_t a1, int64_t a2) {
  rt_->pools().AddAutoFilament(fn, a0, a1, a2);
}

void NodeEnv::RunPools() { rt_->pools().RunSweep(); }

void NodeEnv::RunIterative(const std::function<bool(int)>& after_iteration) {
  rt_->pools().RunIterative(after_iteration);
}

FjResult NodeEnv::RunForkJoin(FjFn root, const FjArgs& args) { return rt_->fj().Run(root, args); }
FjHandle NodeEnv::Fork(FjFn fn, const FjArgs& args) { return rt_->fj().Fork(fn, args); }
FjResult NodeEnv::Join(FjHandle& handle) { return rt_->fj().Join(handle); }

double NodeEnv::Reduce(double value, ReduceOp op) { return rt_->Reduce(value, op); }

void NodeEnv::SendData(NodeId dst, uint32_t tag, std::span<const std::byte> bytes) {
  rt_->ChannelSend(dst, tag, bytes);
}

void NodeEnv::BroadcastData(uint32_t tag, std::span<const std::byte> bytes) {
  rt_->ChannelBroadcast(tag, bytes);
}

std::vector<std::byte> NodeEnv::RecvData(NodeId src, uint32_t tag) {
  return rt_->ChannelRecv(src, tag);
}

void NodeEnv::EnterCritical() { rt_->EnterCritical(); }
void NodeEnv::ExitCritical() { rt_->ExitCritical(); }

}  // namespace dfil::core
