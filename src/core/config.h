// Cluster-wide configuration for a Distributed Filaments run.
#ifndef DFIL_CORE_CONFIG_H_
#define DFIL_CORE_CONFIG_H_

#include <cstddef>
#include <string>
#include <vector>

#include "src/common/types.h"
#include "src/core/load_balancer.h"
#include "src/dsm/dsm_node.h"
#include "src/net/packet.h"
#include "src/sim/cost_model.h"
#include "src/sim/fault_plan.h"
#include "src/threads/context.h"

namespace dfil::dsm {
class CoherenceOracle;
}  // namespace dfil::dsm

namespace dfil::core {

enum class NetworkKind {
  kSharedEthernet,  // the paper's testbed: one 10 Mb/s medium
  kSwitched,        // ablation: full-duplex point-to-point
};

// Fork/join knobs, grouped (they travel together: every engine site reads several at once).
struct ForkJoinConfig {
  bool steal_enabled = true;  // receiver-initiated dynamic load balancing
  int prune_threshold = 4;    // local queue depth at which forks become procedure calls
  int steal_min_surplus = 1;  // a victim gives queued work whenever it has any
  SimTime steal_retry = Milliseconds(4.0);   // idle re-poll interval after a full denial round
  SimTime steal_grace = Milliseconds(50.0);  // nodes may steal this long after start even if the
                                             // distribution tree never reached them
};

struct ClusterConfig {
  int nodes = 8;
  sim::CostModel costs = sim::CostModel::SunIpcEthernet();
  NetworkKind network = NetworkKind::kSharedEthernet;
  // DEPRECATED: shorthand for fault_plan.loss_rate, folded by EffectiveFaultPlan(). Kept one
  // release for existing callers; set fault_plan.loss_rate directly.
  double loss_rate = 0.0;
  uint64_t seed = 1;

  // Adversarial fault injection (drops, duplicates, delays, burst loss, node stalls) — the
  // single source of truth for network misbehaviour. The plan's seed defaults to a value derived
  // from this config's seed when left at 0, so (config, seed) alone replays a run. Read it
  // through EffectiveFaultPlan(), which also folds the deprecated loss_rate alias above.
  sim::FaultPlan fault_plan;

  // When set, every DsmNode attaches to this oracle and the barrier champion sweeps it at each
  // globally quiescent point. Testing only (see dsm/coherence_oracle.h); benches leave it null.
  dsm::CoherenceOracle* coherence_oracle = nullptr;

  dsm::DsmConfig dsm;
  net::PacketConfig packet;
  // Per-destination frame coalescing with piggybacked acks and batched sync-point traffic
  // (DESIGN.md §11). Off by default; disabled runs are byte- and schedule-identical to builds
  // without the feature.
  net::CoalesceConfig coalesce;
  // DSM page size (log2). 12 = the 4 KB SunOS pages of the paper.
  size_t page_shift = 12;

  // Ready-queue placement for server threads woken by a page arrival: the tail placement drives
  // the iterative fault-frontloading optimization (paper §2.2); the front placement is the
  // fork/join anti-thrashing mechanism (paper §2.3).
  bool wake_at_front = false;

  // Server threads.
  int max_server_threads = 128;
  size_t stack_bytes = 256 * 1024;
  threads::ContextBackend backend = threads::DefaultContextBackend();

  // Fork/join.
  ForkJoinConfig fj;

  // Epoch-driven load balancing of iterative filaments (DESIGN.md §13). Off by default;
  // disabled runs are byte- and schedule-identical to builds without the feature.
  LoadBalancerConfig balancer;

  // Reductions: disseminate via per-node reliable requests instead of one raw broadcast frame.
  // Required when the fault plan can drop frames (a lost broadcast would hang the barrier).
  bool reliable_broadcast = false;

  // Barrier/reduction algorithm (the paper's future-work item "experiments with different types
  // of barriers"). Tournament+broadcast is the paper's choice (O(p) messages, O(log p) latency).
  // Dissemination is O(p log p) messages but every node finishes after log p rounds with no
  // broadcast; NOTE: nodes combine in different orders, so floating-point sums may differ in the
  // last ulp across nodes — use it for barriers/min/max or bitwise-insensitive programs.
  // Central is the naive 2p-message master-combining baseline.
  enum class BarrierKind { kTournamentBroadcast, kDissemination, kCentral };
  BarrierKind barrier = BarrierKind::kTournamentBroadcast;

  // Record a virtual-time execution trace (pool sweeps, faults, reductions, fj tasks) for
  // export as Chrome trace-event JSON via RunReport::trace.
  bool trace_enabled = false;

  // Wait-state accounting (common/waitstate.h): typed records for every blocked interval, the
  // run/serve/wait clock ledgers, per-epoch metrics snapshots, and the flight-recorder ring.
  // Never charges time or sends messages, so schedules are byte-identical on and off; on by
  // default because every analysis layer (dfil_report critpath/blame, flight dumps) feeds on it.
  bool waitstate_enabled = true;

  // Per-pool profiling (common/poolprof.h): splits the run ledger by the pool whose server
  // thread held the processor, with fault / filament / migration counts per pool, exported as
  // the "pools" section of dfil-metrics-v2. Never charges time or sends messages, so schedules
  // are byte-identical on and off; on by default, like the wait-state recorder it refines.
  bool pool_profile_enabled = true;

  // Runaway guard for the virtual clock.
  SimTime max_virtual_time = Seconds(100000.0);

  // The fault plan with the deprecated loss_rate alias folded in and the seed defaulted from
  // the run seed. Everything that injects faults (Cluster::Run, Validate) reads this, never the
  // raw fields, so the two knobs cannot disagree.
  sim::FaultPlan EffectiveFaultPlan() const;

  // Checks the configuration for contradictions and out-of-range knobs; returns one
  // human-readable line per problem (empty = valid). Cluster's constructor calls this and
  // refuses invalid configs, so errors surface at construction instead of as a mid-run hang.
  std::vector<std::string> Validate() const;

  // Canonical 64-bit FNV-1a digest of every schedule-affecting knob (node count, cost model,
  // network, seed, effective fault plan, DSM/packet/coalesce/fork-join/balancer parameters).
  // Two runs with equal digests executed the same configuration; unequal digests name a real
  // config difference. Observability knobs (trace_enabled, waitstate_enabled,
  // pool_profile_enabled) are deliberately EXCLUDED — they never perturb the schedule, so runs
  // stay provably comparable across instrumentation settings. Stamped into every metrics export
  // as the "fingerprint.config" field; dfil_diff refuses to diff runs whose digests conceal a
  // config change the user did not expect.
  uint64_t Digest() const;
  // Digest() as 16 lowercase hex digits (the JSON/provenance form).
  std::string DigestHex() const;
};

}  // namespace dfil::core

#endif  // DFIL_CORE_CONFIG_H_
