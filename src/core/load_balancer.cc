#include "src/core/load_balancer.h"

#include <algorithm>

#include "src/common/check.h"

namespace dfil::core {

LoadBalancer::LoadBalancer(const LoadBalancerConfig& config, int nodes)
    : config_(config), nodes_(nodes) {
  DFIL_CHECK_GT(nodes_, 0);
}

std::optional<RebalancePlan> LoadBalancer::AtSyncPoint(uint64_t epoch,
                                                       const std::vector<LoadSample>& samples) {
  if (!config_.enabled || nodes_ < 2) {
    return std::nullopt;
  }
  DFIL_CHECK_EQ(samples.size(), static_cast<size_t>(nodes_))
      << "balancer needs every node's sample at epoch " << epoch;

  // Load spread: the epoch's run+serve ledger delta, i.e. the time each node spent computing
  // filaments and serving pages since the previous sync point. Raw barrier arrival would also
  // capture one-epoch transients — a fresh migration's re-home fetches delay the destination's
  // arrival by a full fault round-trip, which read as "the destination is now the slow node" and
  // locked the planner into bouncing the same pools back and forth. Those transients land in the
  // wait ledger, so run+serve sees only the steady load a migration is meant to fix. Ties break
  // to the lower node id so the decision is total-ordered.
  const auto load = [](const LoadSample& s) { return s.run + s.serve; };
  int slow = 0;
  int fast = 0;
  SimTime max_arrival = samples[0].arrival;
  for (int n = 1; n < nodes_; ++n) {
    if (load(samples[n]) > load(samples[slow])) {
      slow = n;
    }
    if (load(samples[n]) < load(samples[fast])) {
      fast = n;
    }
    max_arrival = std::max(max_arrival, samples[n].arrival);
  }
  // The epoch's wall span (last release to last arrival) normalizes the spread: a 10 ms skew
  // matters in a 40 ms epoch and is noise in a 4 s one.
  const SimTime span = max_arrival - prev_max_arrival_;
  prev_max_arrival_ = max_arrival;

  if (cooldown_ > 0) {
    // Sitting out: a fresh migration's page re-homing perturbs the next few epochs, so their
    // spread is not evidence (mirrors the diff adapter's calm-epoch hysteresis).
    --cooldown_;
    streak_ = 0;
    return std::nullopt;
  }
  if (span <= 0) {
    streak_ = 0;
    return std::nullopt;
  }
  const double ratio =
      static_cast<double>(load(samples[slow]) - load(samples[fast])) / static_cast<double>(span);
  if (ratio < config_.balance_trigger_ratio) {
    streak_ = 0;
    return std::nullopt;
  }
  if (++streak_ < config_.balance_patience_epochs) {
    return std::nullopt;
  }
  streak_ = 0;
  cooldown_ = config_.balance_cooldown_epochs;

  // Move work from the slowest node to its fastest *neighbor*: iterative programs place
  // adjacent strips on adjacent nodes, so a neighbor already shares boundary pages with the
  // migrated strips — re-homing stays cheap and the nearest-neighbor exchange pattern survives.
  int dst = kNoNode;
  if (slow > 0) {
    dst = slow - 1;
  }
  if (slow + 1 < nodes_) {
    if (dst == kNoNode || load(samples[slow + 1]) < load(samples[dst])) {
      dst = slow + 1;
    }
  }
  if (dst == kNoNode || load(samples[dst]) >= load(samples[slow])) {
    return std::nullopt;  // both neighbors are just as loaded; moving work would not help
  }
  // Anti-flap: a plan that exactly undoes the previous one means the last migration overshot —
  // pools move whole, and the receiving node may run the same filaments slower than the sender
  // did, so the residual spread can sit below the planner's one-pool resolution. Bouncing the
  // pool back would overshoot again, forever. Such a reversal needs twice the trigger evidence:
  // a real phase change clears that bar, a granularity echo does not.
  if (slow == last_dst_ && dst == last_src_ &&
      ratio < 2.0 * config_.balance_trigger_ratio) {
    return std::nullopt;
  }
  // Move quantum: the fraction of the slow node's work that closes half its gap to the chosen
  // destination, capped by the configured ceiling. Integer arithmetic throughout — the plan must
  // serialize exactly and replay identically.
  const SimTime gap = load(samples[slow]) - load(samples[dst]);
  const int64_t half_gap_ppm = gap * 500'000 / std::max<SimTime>(load(samples[slow]), 1);
  const auto cap_ppm = static_cast<int64_t>(config_.balance_move_fraction * 1'000'000.0);
  const auto fraction_ppm =
      static_cast<uint32_t>(std::clamp<int64_t>(half_gap_ppm, 1, std::max<int64_t>(cap_ppm, 1)));
  ++plans_emitted_;
  last_src_ = slow;
  last_dst_ = dst;
  return RebalancePlan{epoch, slow, dst, fraction_ppm};
}

}  // namespace dfil::core
