#include "src/core/forkjoin.h"

#include <algorithm>
#include <utility>

#include "src/common/check.h"
#include "src/common/log.h"
#include "src/core/node_runtime.h"

namespace dfil::core {
namespace {

struct ShipBody {
  uint64_t fn;
  FjArgs args;
  NodeId origin;
  uint64_t cell_addr;
};

struct ResultBody {
  uint64_t cell_addr;
  FjResult result;
};

}  // namespace

FjEngine::FjEngine(NodeRuntime* rt) : rt_(rt) { RegisterServices(); }

void FjEngine::RegisterServices() {
  net::PacketEndpoint& pk = rt_->packet();

  // A filament shipped to us by the distribution tree. Enqueuing is a mutation of the thread
  // queues, so this service is non-idempotent (duplicates would run the filament twice).
  pk.RegisterService(
      net::Service::kForkShip,
      [this](NodeId src, net::WireReader body) -> std::optional<net::Payload> {
        (void)src;
        const auto ship = body.Get<ShipBody>();
        queue_.push_back(Task{reinterpret_cast<FjFn>(ship.fn), ship.args, ship.origin,
                              ship.cell_addr});
        got_first_work_ = true;
        steal_backoff_ = rt_->config().fj.steal_retry;  // fresh work: poll eagerly again
        EnsureWorkerForQueue();
        return net::Payload{};
      },
      /*idempotent=*/false);

  // A join result coming home. Also non-idempotent: it completes a cell exactly once.
  pk.RegisterService(
      net::Service::kJoinResult,
      [this](NodeId src, net::WireReader body) -> std::optional<net::Payload> {
        (void)src;
        const auto res = body.Get<ResultBody>();
        auto* cell = reinterpret_cast<JoinCell*>(res.cell_addr);
        DFIL_CHECK(!cell->done) << "join cell completed twice";
        cell->result = res.result;
        cell->done = true;
        if (cell->waiter != nullptr) {
          threads::ServerThread* t = cell->waiter;
          cell->waiter = nullptr;
          rt_->WakeAtTail(t);  // FIFO: the front slot is reserved for page-arrival wakes
        }
        return net::Payload{};
      },
      /*idempotent=*/false);

  // A steal request. Handing over a queued filament mutates the thread queues: non-idempotent,
  // and ignored while this node is inside a critical section.
  pk.RegisterService(
      net::Service::kStealWork,
      [this](NodeId src, net::WireReader body) -> std::optional<net::Payload> {
        (void)src;
        (void)body;
        rt_->fil_stats().steals_attempted_on_us++;
        last_steal_demand_ = rt_->Clock();
        net::WireWriter w;
        if (phase_active_ && !terminated_ &&
            queue_.size() >= static_cast<size_t>(rt_->config().fj.steal_min_surplus)) {
          Task task = queue_.front();  // oldest = coarsest work
          queue_.pop_front();
          w.Put(uint8_t{1});
          w.Put(ShipBody{reinterpret_cast<uint64_t>(task.fn), task.args, task.origin,
                         task.cell_addr});
        } else {
          w.Put(uint8_t{0});
        }
        return w.Take();
      },
      /*idempotent=*/false);

  // Termination of the fork/join phase (root join completed on node 0).
  auto handle_terminate = [this] {
    terminated_ = true;
    WakeAllIdle();
  };
  pk.RegisterRawHandler(net::Service::kTerminate,
                        [handle_terminate](NodeId, net::Payload) { handle_terminate(); });
  pk.RegisterService(
      net::Service::kTerminate,
      [handle_terminate](NodeId, net::WireReader) -> std::optional<net::Payload> {
        handle_terminate();
        return net::Payload{};
      },
      /*idempotent=*/true);
}

void FjEngine::ComputeTreeChildren() {
  tree_children_.clear();
  const int p = rt_->config().nodes;
  const NodeId r = rt_->id();
  // Binomial tree rooted at 0 (paper Figure 2): node r's children are r + low/2, r + low/4, ...
  // where `low` is r's lowest set bit (or the power of two covering p for the root). Listed
  // largest-subtree first, so the first fork travels farthest and working nodes double each step.
  int64_t low;
  if (r == 0) {
    low = 1;
    while (low < p) {
      low <<= 1;
    }
  } else {
    low = r & -r;
  }
  for (int64_t b = low >> 1; b >= 1; b >>= 1) {
    if (r + b < p) {
      tree_children_.push_back(static_cast<NodeId>(r + b));
    }
  }
}

FjResult FjEngine::Run(FjFn root, const FjArgs& args) {
  threads::ServerThread* self = rt_->CurrentThread();
  DFIL_CHECK(self != nullptr);
  DFIL_CHECK(!phase_active_);
  phase_active_ = true;
  terminated_ = false;
  ship_next_ = true;
  got_first_work_ = rt_->id() == 0;
  next_victim_ = (rt_->id() + 1) % rt_->config().nodes;
  steal_allowed_at_ = rt_->Clock() + rt_->config().fj.steal_grace;
  steal_backoff_ = rt_->config().fj.steal_retry;
  last_steal_demand_ = rt_->Clock() - Seconds(1.0);
  ComputeTreeChildren();

  FjResult result{};
  if (rt_->id() == 0) {
    rt_->Charge(TimeCategory::kFilamentExec, rt_->costs().filament_create);
    rt_->fil_stats().filaments_created++;
    result = root(rt_->env(), args);
    // Root join complete: every descendant filament has finished, everywhere.
    terminated_ = true;
    if (rt_->config().reliable_broadcast) {
      for (NodeId n = 1; n < rt_->config().nodes; ++n) {
        rt_->packet().SendRequest(n, net::Service::kTerminate, {}, nullptr,
                                  TimeCategory::kSyncOverhead);
      }
    } else if (rt_->config().nodes > 1) {
      rt_->packet().BroadcastRaw(net::Service::kTerminate, {}, TimeCategory::kSyncOverhead);
    }
    WakeAllIdle();
  } else {
    // Non-root mains serve the queue as ordinary workers until termination.
    ++active_workers_;
    workers_.push_back(self);
    WorkerLoop(/*is_main=*/true);
    --active_workers_;
    workers_.erase(std::find(workers_.begin(), workers_.end(), self));
  }

  // Wait for any helper workers this node spawned to wind down.
  while (active_workers_ > 0) {
    DFIL_CHECK(winddown_waiter_ == nullptr);
    winddown_waiter_ = self;
    self->set_state(threads::ThreadState::kBlocked);
    self->set_block_reason("fj-winddown");
    rt_->BlockCurrent();
  }
  steal_timer_.Cancel();
  phase_active_ = false;
  rt_->Reduce(0.0, ReduceOp::kBarrier);
  return result;
}

FjHandle FjEngine::Fork(FjFn fn, const FjArgs& args) {
  DFIL_CHECK(phase_active_) << "Fork outside RunForkJoin";
  FilamentStats& fs = rt_->fil_stats();

  // Phase 1: sender-initiated tree distribution — of each fork pair, ship one, keep one.
  if (!tree_children_.empty() && ship_next_) {
    ship_next_ = false;
    const NodeId child = tree_children_.front();
    tree_children_.erase(tree_children_.begin());
    auto* cell = new JoinCell();
    net::WireWriter w;
    w.Put(ShipBody{reinterpret_cast<uint64_t>(fn), args, rt_->id(),
                   reinterpret_cast<uint64_t>(cell)});
    fs.forks_sent++;
    rt_->packet().SendRequest(child, net::Service::kForkShip, w.Take(), nullptr,
                              TimeCategory::kSyncOverhead);
    return FjHandle{cell, {}};
  }
  ship_next_ = true;

  // Dynamic pruning: enough local work queued to keep everyone busy — a fork is now a call.
  // "Everyone busy" is a cluster property: while steal requests keep arriving, other nodes are
  // NOT busy, so pruning stays off and forks remain visible to thieves (bounded by a queue cap).
  const bool steal_demand =
      rt_->config().fj.steal_enabled && rt_->Clock() - last_steal_demand_ < Milliseconds(100.0) &&
      queue_.size() < 64;
  if (tree_children_.empty() && !steal_demand &&
      queue_.size() >= static_cast<size_t>(rt_->config().fj.prune_threshold)) {
    fs.forks_pruned++;
    rt_->Charge(TimeCategory::kFilamentExec, rt_->costs().fork_inline);
    FjHandle h{nullptr, {}};
    h.inline_result = fn(rt_->env(), args);
    return h;
  }

  // Otherwise: a real local filament. Creating it mutates the thread queues — a critical section
  // (a single flag assignment each way); concurrent steal requests are deferred meanwhile.
  auto* cell = new JoinCell();
  rt_->EnterCritical();
  queue_.push_back(Task{fn, args, rt_->id(), reinterpret_cast<uint64_t>(cell)});
  rt_->Charge(TimeCategory::kFilamentExec, rt_->costs().filament_create);
  rt_->ExitCritical();
  fs.filaments_created++;
  fs.forks_local++;
  EnsureWorkerForQueue();
  return FjHandle{cell, {}};
}

FjResult FjEngine::Join(FjHandle& handle) {
  if (handle.cell == nullptr) {
    return handle.inline_result;  // pruned fork: join is a return
  }
  JoinCell* cell = handle.cell;
  threads::ServerThread* self = rt_->CurrentThread();

  // Self-service: if the child is still sitting in our local queue (not stolen, not picked up by
  // another worker), run it inline right now instead of blocking — the overwhelmingly common
  // case, and it turns the fork/join pair into what the paper calls "joins into returns" without
  // giving up stealability in the window between Fork and Join.
  if (!cell->done) {
    const auto cell_addr = reinterpret_cast<uint64_t>(cell);
    for (auto it = queue_.rbegin(); it != queue_.rend(); ++it) {
      if (it->cell_addr == cell_addr && it->origin == rt_->id()) {
        Task task = *it;
        rt_->EnterCritical();
        queue_.erase(std::next(it).base());
        rt_->ExitCritical();
        Execute(task);
        break;
      }
    }
  }
  while (!cell->done) {
    DFIL_CHECK(cell->waiter == nullptr);
    // While this thread waits, another server thread must keep the local queue moving. Spawning
    // one charges virtual time and may yield — the result can arrive during that yield, before a
    // waiter is registered — so re-check before committing to block.
    EnsureWorkerForQueue(self);
    if (cell->done) {
      break;
    }
    cell->waiter = self;
    self->set_state(threads::ThreadState::kBlocked);
    self->set_block_reason("join");
    rt_->BlockCurrent();
  }
  const FjResult result = cell->result;
  delete cell;
  handle.cell = nullptr;
  return result;
}

void FjEngine::WorkerLoop(bool is_main) {
  for (;;) {
    if (!queue_.empty()) {
      rt_->EnterCritical();
      Task task = queue_.back();  // newest first: depth-first keeps the working set small
      queue_.pop_back();
      rt_->ExitCritical();
      Execute(task);
      continue;
    }
    if (terminated_) {
      return;
    }
    if (CanStealNow()) {
      if (TrySteal()) {
        steal_backoff_ = rt_->config().fj.steal_retry;
        continue;
      }
      // Full denial round: back off so the busy nodes are not flooded with hopeless polls (the
      // paper's §4.3 observation about load-balance denials).
      steal_backoff_ = std::min<SimTime>(steal_backoff_ * 2, rt_->config().fj.steal_retry * 16);
    }
    if (terminated_) {
      return;
    }
    if (!is_main && idle_.size() >= 4) {
      // Enough idle workers already parked: retire this helper so the server-thread pool (and
      // its stacks) stays bounded over long fork/join phases.
      return;
    }
    // Idle: wait for shipped work, a steal retry tick, or termination.
    threads::ServerThread* self = rt_->CurrentThread();
    idle_.push_back(self);
    if (CanStealNow()) {
      ArmStealRetry();
    }
    self->set_state(threads::ThreadState::kBlocked);
    self->set_block_reason("fj-idle");
    rt_->BlockCurrent();
  }
}

void FjEngine::Execute(const Task& task) {
  rt_->Charge(TimeCategory::kFilamentExec, rt_->costs().filament_switch);
  rt_->fil_stats().filaments_run++;
  rt_->TraceBegin("fj", "task");
  const FjResult result = task.fn(rt_->env(), task.args);
  rt_->TraceEnd();
  Deliver(task, result);
}

void FjEngine::Deliver(const Task& task, const FjResult& result) {
  if (task.origin == rt_->id()) {
    auto* cell = reinterpret_cast<JoinCell*>(task.cell_addr);
    DFIL_CHECK(!cell->done);
    cell->result = result;
    cell->done = true;
    if (cell->waiter != nullptr) {
      threads::ServerThread* t = cell->waiter;
      cell->waiter = nullptr;
      rt_->WakeAtTail(t);
    }
    return;
  }
  net::WireWriter w;
  w.Put(ResultBody{task.cell_addr, result});
  rt_->packet().SendRequest(task.origin, net::Service::kJoinResult, w.Take(), nullptr,
                            TimeCategory::kSyncOverhead);
}

void FjEngine::EnsureWorkerForQueue(const threads::ServerThread* about_to_block) {
  if (queue_.empty()) {
    return;
  }
  if (!idle_.empty()) {
    WakeOneIdle();
    return;
  }
  // Spawn only when every live worker is blocked — otherwise one of them will reach the queue.
  for (const threads::ServerThread* w : workers_) {
    if (w == about_to_block) {
      continue;
    }
    if (w->state() == threads::ThreadState::kReady ||
        w->state() == threads::ThreadState::kRunning) {
      return;
    }
  }
  threads::ServerThread* t = rt_->SpawnThread([this] {
    ++active_workers_;
    WorkerLoop(/*is_main=*/false);
    --active_workers_;
    workers_.erase(std::find(workers_.begin(), workers_.end(), rt_->CurrentThread()));
    if (active_workers_ == 0 && winddown_waiter_ != nullptr) {
      threads::ServerThread* waiter = winddown_waiter_;
      winddown_waiter_ = nullptr;
      rt_->Wake(waiter);
    }
  });
  workers_.push_back(t);
}

void FjEngine::WakeOneIdle() {
  if (idle_.empty()) {
    return;
  }
  threads::ServerThread* t = idle_.back();
  idle_.pop_back();
  rt_->WakeAtTail(t);
}

void FjEngine::WakeAllIdle() {
  while (!idle_.empty()) {
    WakeOneIdle();
  }
}

bool FjEngine::CanStealNow() const {
  if (!rt_->config().fj.steal_enabled || !phase_active_ || terminated_) {
    return false;
  }
  // Paper §2.3: a node steals only when it has no new filaments and none suspended on a page.
  if (!queue_.empty() || rt_->dsm().pending_fetches() > 0) {
    return false;
  }
  // Don't flood the root before the distribution tree has reached us (unless it is overdue).
  return got_first_work_ || rt_->Clock() >= steal_allowed_at_;
}

bool FjEngine::TrySteal() {
  const int p = rt_->config().nodes;
  FilamentStats& fs = rt_->fil_stats();
  for (int i = 0; i < p - 1; ++i) {
    const NodeId victim = next_victim_;
    next_victim_ = (next_victim_ + 1) % p;
    if (next_victim_ == rt_->id()) {
      next_victim_ = (next_victim_ + 1) % p;
    }
    if (victim == rt_->id()) {
      continue;
    }
    fs.steals_attempted++;
    net::Payload reply =
        rt_->CallService(victim, net::Service::kStealWork, {}, TimeCategory::kSyncOverhead);
    net::WireReader r(reply);
    if (r.Get<uint8_t>() != 0) {
      const auto ship = r.Get<ShipBody>();
      queue_.push_back(Task{reinterpret_cast<FjFn>(ship.fn), ship.args, ship.origin,
                            ship.cell_addr});
      got_first_work_ = true;
      fs.steals_succeeded++;
      return true;
    }
    fs.steals_denied++;
    if (terminated_) {
      return false;
    }
  }
  return false;
}

void FjEngine::ArmStealRetry() {
  if (steal_timer_.active()) {
    return;
  }
  steal_timer_ = rt_->machine().ScheduleTimer(
      rt_->id(), rt_->Clock() + steal_backoff_, [this] {
        steal_timer_.Release();
        if (terminated_ || !phase_active_ || idle_.empty()) {
          return;  // a worker that idles again re-arms the timer itself
        }
        WakeOneIdle();
        ArmStealRetry();
      });
}

void FjEngine::OnWorkerBlocked() {
  if (!phase_active_) {
    return;
  }
  EnsureWorkerForQueue();
}

}  // namespace dfil::core
