// Epoch-driven load balancing for iterative programs (DESIGN.md §13).
//
// The paper balances fork/join work with stealing but leaves iterative filaments on a static
// block distribution, so one slow node drags every barrier. PR 8's wait-state ledgers already
// measure exactly that — the last arriver's barrier_wait_us is everyone else's idle time — and
// this module closes the loop from measurement to placement: each node's per-epoch
// (arrival, run, wait, serve) sample rides its reduce-up message, the barrier champion feeds the
// aggregated picture into a LoadBalancer, and a persistent imbalance (hysteresis mirroring the
// diff adapter's adapt_* knobs) yields a RebalancePlan broadcast with the barrier done message.
// Every node applies the same plan at the same sync point, so decisions are schedule-
// deterministic from (config, seed) alone and fuzz replay keeps working.
//
// The planner itself is pure and single-threaded: it sees identical inputs on every run and
// holds only integer/ratio hysteresis state, never wall-clock or RNG state.
#ifndef DFIL_CORE_LOAD_BALANCER_H_
#define DFIL_CORE_LOAD_BALANCER_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/common/types.h"

namespace dfil::core {

// Knobs follow the diff adapter's style (dsm::DsmConfig::adapt_*): a trigger threshold, a
// patience count before acting, and a calm/cooldown count before acting again.
struct LoadBalancerConfig {
  bool enabled = false;
  // An epoch counts as imbalanced when the load spread (the heaviest node's run+serve ledger
  // delta minus the lightest's) exceeds this fraction of the epoch's span.
  double balance_trigger_ratio = 0.15;
  // Consecutive imbalanced epochs before a plan is emitted (one-epoch noise never migrates).
  int balance_patience_epochs = 3;
  // Epochs to sit out after a migration, letting re-homed pages settle before re-measuring.
  int balance_cooldown_epochs = 4;
  // Fraction of the slow node's iterative filaments to move per plan (whole pools; see
  // PoolEngine::ExtractMigration).
  double balance_move_fraction = 0.25;
  // Re-home the migrated strips' backing pages to the target node so the next epoch faults
  // locally instead of chasing ownership across the wire.
  bool balance_rehome_pages = true;
};

// One node's contribution to an epoch's load picture, piggybacked on its reduce-up message.
// All fields are virtual-time integers, so aggregation is exact and replay-stable.
struct LoadSample {
  int32_t node = 0;
  SimTime arrival = 0;  // virtual clock at barrier entry this epoch
  SimTime run = 0;      // wait-state ledger deltas since the previous sync point
  SimTime wait = 0;
  SimTime serve = 0;
};

// A decision: move work from `src` to `dst`, tagged with the epoch whose done broadcast carries
// it (receivers apply it exactly once, keyed by epoch). `fraction_ppm` is the move quantum the
// champion computed from the ledgers — the fraction of src's filaments (parts per million)
// closing half the measured load gap. Shipping the gap itself would swap the imbalance to the
// destination and the next plan would bounce it straight back; half the gap meets in the middle.
// Integer ppm keeps the wire encoding and the replay exact.
struct RebalancePlan {
  uint64_t epoch = 0;
  int32_t src = kNoNode;
  int32_t dst = kNoNode;
  uint32_t fraction_ppm = 0;
};

class LoadBalancer {
 public:
  LoadBalancer(const LoadBalancerConfig& config, int nodes);

  // Champion-side decision point, called once per epoch with all `nodes` samples (sorted by
  // node id, one per node). Returns a plan when a persistent imbalance crossed the hysteresis,
  // otherwise nullopt. Deterministic: same sample sequence, same decisions.
  std::optional<RebalancePlan> AtSyncPoint(uint64_t epoch,
                                           const std::vector<LoadSample>& samples);

  int plans_emitted() const { return plans_emitted_; }

 private:
  LoadBalancerConfig config_;
  int nodes_;
  int streak_ = 0;    // consecutive imbalanced epochs
  int cooldown_ = 0;  // epochs left to sit out after a plan
  SimTime prev_max_arrival_ = 0;  // previous epoch's release anchor (spans epochs)
  int last_src_ = kNoNode;  // previous plan's endpoints (anti-flap reversal guard)
  int last_dst_ = kNoNode;
  int plans_emitted_ = 0;
};

}  // namespace dfil::core

#endif  // DFIL_CORE_LOAD_BALANCER_H_
