// Intrusive doubly-linked list.
//
// The runtime's hot queues (ready queues, per-page waiter queues, retransmission lists) are
// intrusive so that linking and unlinking a server thread or request never allocates. An object
// may be on at most one list per ListNode member it embeds.
#ifndef DFIL_COMMON_INTRUSIVE_LIST_H_
#define DFIL_COMMON_INTRUSIVE_LIST_H_

#include <cstddef>

#include "src/common/check.h"

namespace dfil {

// Embed one of these (via a named member) in any type that participates in an IntrusiveList.
struct ListNode {
  ListNode* prev = nullptr;
  ListNode* next = nullptr;

  bool linked() const { return prev != nullptr; }
};

// A circular doubly-linked list of T, where `Member` points at the ListNode embedded in T.
// The list does not own its elements.
template <typename T, ListNode T::* Member>
class IntrusiveList {
 public:
  IntrusiveList() {
    head_.prev = &head_;
    head_.next = &head_;
  }
  IntrusiveList(const IntrusiveList&) = delete;
  IntrusiveList& operator=(const IntrusiveList&) = delete;

  bool empty() const { return head_.next == &head_; }
  size_t size() const { return size_; }

  void PushBack(T* item) { InsertBefore(&head_, item); }
  void PushFront(T* item) { InsertBefore(head_.next, item); }

  // Removes and returns the first element, or nullptr if empty.
  T* PopFront() {
    if (empty()) {
      return nullptr;
    }
    T* item = FromNode(head_.next);
    Remove(item);
    return item;
  }

  // Removes and returns the last element, or nullptr if empty.
  T* PopBack() {
    if (empty()) {
      return nullptr;
    }
    T* item = FromNode(head_.prev);
    Remove(item);
    return item;
  }

  T* Front() const { return empty() ? nullptr : FromNode(head_.next); }
  T* Back() const { return empty() ? nullptr : FromNode(head_.prev); }

  // Unlinks `item`, which must currently be on this list.
  void Remove(T* item) {
    ListNode* node = &(item->*Member);
    DFIL_DCHECK(node->linked());
    node->prev->next = node->next;
    node->next->prev = node->prev;
    node->prev = nullptr;
    node->next = nullptr;
    --size_;
  }

  bool Contains(const T* item) const { return (item->*Member).linked(); }

  // Iterates in order; `fn` must not modify the list except by removing the current element.
  template <typename Fn>
  void ForEach(Fn&& fn) {
    ListNode* node = head_.next;
    while (node != &head_) {
      ListNode* next = node->next;
      fn(FromNode(node));
      node = next;
    }
  }

 private:
  static T* FromNode(ListNode* node) {
    // Recover the containing object from the embedded node.
    const auto offset = reinterpret_cast<size_t>(&(static_cast<T*>(nullptr)->*Member));
    return reinterpret_cast<T*>(reinterpret_cast<char*>(node) - offset);
  }

  void InsertBefore(ListNode* pos, T* item) {
    ListNode* node = &(item->*Member);
    DFIL_DCHECK(!node->linked());
    node->prev = pos->prev;
    node->next = pos;
    pos->prev->next = node;
    pos->prev = node;
    ++size_;
  }

  ListNode head_;
  size_t size_ = 0;
};

}  // namespace dfil

#endif  // DFIL_COMMON_INTRUSIVE_LIST_H_
