// Virtual-time execution tracing.
//
// When enabled (ClusterConfig::trace_enabled), the runtime records spans and instants — pool
// sweeps, page faults, reductions, fork/join task executions, message sends — against each node's
// virtual clock, keyed by (node, server thread). The result exports as Chrome trace-event JSON
// (chrome://tracing, Perfetto), which makes the paper's overlap story *visible*: the interior
// pool's span running under another thread's open page-fault span IS the communication/
// computation overlap.
#ifndef DFIL_COMMON_TRACE_H_
#define DFIL_COMMON_TRACE_H_

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "src/common/types.h"

namespace dfil {

class TraceRecorder {
 public:
  // Opens a span on (node, tid) at virtual time ts.
  void Begin(NodeId node, uint64_t tid, const char* category, std::string name, SimTime ts);
  // Closes the innermost open span on (node, tid).
  void End(NodeId node, uint64_t tid, SimTime ts);
  // A point event.
  void Instant(NodeId node, uint64_t tid, const char* category, std::string name, SimTime ts);

  size_t event_count() const { return events_.size(); }
  // Number of spans still open (should be zero after a clean run).
  size_t open_spans() const;

  // Chrome trace-event format: a JSON array of {name, cat, ph, pid, tid, ts} objects, with pid =
  // node id and ts in microseconds of virtual time.
  void WriteChromeTrace(std::ostream& os) const;

 private:
  struct Event {
    char phase;  // 'B', 'E', 'i'
    NodeId node;
    uint64_t tid;
    const char* category;
    std::string name;
    SimTime ts;
  };

  std::vector<Event> events_;
  std::map<std::pair<NodeId, uint64_t>, int> depth_;
};

}  // namespace dfil

#endif  // DFIL_COMMON_TRACE_H_
