// Virtual-time execution tracing.
//
// When enabled (ClusterConfig::trace_enabled), the runtime records spans and instants — pool
// sweeps, page faults, reductions, fork/join task executions, message sends — against each node's
// virtual clock, keyed by (node, server thread). The result exports as Chrome trace-event JSON
// (chrome://tracing, Perfetto), which makes the paper's overlap story *visible*: the interior
// pool's span running under another thread's open page-fault span IS the communication/
// computation overlap.
//
// Causal cross-node tracing: every packet carries a 64-bit trace id (allocated at the fault that
// started the exchange and propagated through forwards, retransmissions and replies), and the
// runtime emits Chrome flow events ('s'/'t'/'f') carrying that id. Perfetto draws each fault's
// critical path — fault span, owner serve span, install — as one connected arc across nodes.
// DESIGN.md §Observability documents the propagation rules.
#ifndef DFIL_COMMON_TRACE_H_
#define DFIL_COMMON_TRACE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "src/common/types.h"

namespace dfil {

// Chrome trace-event flow phases. Events sharing a flow id form one arrow chain in Perfetto:
// exactly one 's' opens the arc, any number of 't' steps extend it, 'f' terminates it. Flow
// events bind to the slice enclosing them on their (node, tid) track.
inline constexpr char kFlowStart = 's';
inline constexpr char kFlowStep = 't';
inline constexpr char kFlowEnd = 'f';

class TraceRecorder {
 public:
  // Opens a span on (node, tid) at virtual time ts.
  void Begin(NodeId node, uint64_t tid, const char* category, std::string name, SimTime ts);
  // Closes the innermost open span on (node, tid). An End with no open span on the track is
  // dropped and counted (unmatched_ends) rather than aborting: fuzz-replay runs can abort
  // mid-span and their partial traces must still be collectable.
  void End(NodeId node, uint64_t tid, SimTime ts);
  // A point event.
  void Instant(NodeId node, uint64_t tid, const char* category, std::string name, SimTime ts);
  // A flow event; `phase` is one of kFlowStart/kFlowStep/kFlowEnd and `flow_id` links the arc.
  void Flow(NodeId node, uint64_t tid, char phase, const char* category, std::string name,
            SimTime ts, uint64_t flow_id);

  size_t event_count() const { return events_.size(); }
  // Number of spans still open (should be zero after a clean run).
  size_t open_spans() const;
  // End() calls that found no open span (should be zero; nonzero means a caller bug).
  size_t unmatched_ends() const { return unmatched_ends_; }

  // Chrome trace-event format: a JSON array of {name, cat, ph, pid, tid, ts} objects, with pid =
  // node id and ts in microseconds of virtual time. Spans still open (a run that aborted
  // mid-span) are closed with synthetic 'E' events at the final timestamp, so the output is
  // always balanced and loadable.
  void WriteChromeTrace(std::ostream& os) const;

 private:
  struct Event {
    char phase;  // 'B', 'E', 'i', or a flow phase 's'/'t'/'f'
    NodeId node;
    uint64_t tid;
    const char* category;
    std::string name;
    SimTime ts;
    uint64_t flow_id;
  };

  std::vector<Event> events_;
  std::map<std::pair<NodeId, uint64_t>, int> depth_;
  size_t unmatched_ends_ = 0;
};

// Per-node tracing facade: binds one node's identity (id, current server thread, virtual clock)
// to the shared TraceRecorder so lower layers (net, dsm) can trace without depending on the
// runtime. Also owns the node's *causal trace context*: the 64-bit trace id stamped on every
// outgoing packet. The recorder may be null (tracing off) — spans and events become no-ops, but
// trace ids are still allocated and propagated, so the wire format and the message schedule are
// identical with tracing on and off.
class NodeTracer {
 public:
  using TidFn = std::function<uint64_t()>;
  using ClockFn = std::function<SimTime()>;

  void BindNode(NodeId node, TidFn tid, ClockFn clock) {
    node_ = node;
    tid_ = std::move(tid);
    clock_ = std::move(clock);
  }
  void SetRecorder(TraceRecorder* recorder) { rec_ = recorder; }
  bool enabled() const { return rec_ != nullptr; }

  void Begin(const char* category, std::string name) {
    if (rec_ != nullptr) {
      rec_->Begin(node_, tid_(), category, std::move(name), clock_());
    }
  }
  void End() {
    if (rec_ != nullptr) {
      rec_->End(node_, tid_(), clock_());
    }
  }
  void Instant(const char* category, std::string name) {
    if (rec_ != nullptr) {
      rec_->Instant(node_, tid_(), category, std::move(name), clock_());
    }
  }
  // A point event on an explicit tid track instead of the current server thread's — decision
  // lanes like the fault-injection `inject` track (sim::Machine::kInjectionTid) or the protocol
  // adapter's `adapt` track, which group per node in the trace viewer.
  void InstantOnTrack(uint64_t tid, const char* category, std::string name) {
    if (rec_ != nullptr) {
      rec_->Instant(node_, tid, category, std::move(name), clock_());
    }
  }
  void Flow(char phase, const char* category, std::string name, uint64_t flow_id) {
    if (rec_ != nullptr && flow_id != 0) {
      rec_->Flow(node_, tid_(), phase, category, std::move(name), clock_(), flow_id);
    }
  }

  // Allocates a cluster-unique trace id (node id in the top bits, a local counter below; never 0,
  // 0 means "no causal context").
  uint64_t NewTraceId() { return ((static_cast<uint64_t>(node_) + 1) << 40) | ++next_id_; }

  // The trace id of the work currently executing on this node. The Packet layer stamps it on
  // every outgoing message; message handlers run with it set to the incoming message's id, so
  // nested sends (redirect chases, invalidation rounds) inherit the originating fault's id.
  uint64_t current() const { return current_; }
  uint64_t SwapCurrent(uint64_t id) {
    const uint64_t prev = current_;
    current_ = id;
    return prev;
  }

 private:
  TraceRecorder* rec_ = nullptr;
  NodeId node_ = 0;
  TidFn tid_;
  ClockFn clock_;
  uint64_t next_id_ = 0;
  uint64_t current_ = 0;
};

// RAII span on a NodeTracer; tolerates a null tracer. The (prefix, n) constructor skips building
// the name string entirely when the tracer is null or disabled.
class TraceSpan {
 public:
  TraceSpan(NodeTracer* t, const char* category, std::string name) : t_(Live(t)) {
    if (t_ != nullptr) {
      t_->Begin(category, std::move(name));
    }
  }
  TraceSpan(NodeTracer* t, const char* category, const char* prefix, uint64_t n) : t_(Live(t)) {
    if (t_ != nullptr) {
      t_->Begin(category, std::string(prefix) + std::to_string(n));
    }
  }
  ~TraceSpan() {
    if (t_ != nullptr) {
      t_->End();
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  static NodeTracer* Live(NodeTracer* t) { return t != nullptr && t->enabled() ? t : nullptr; }
  NodeTracer* t_;
};

// RAII causal-context switch: runs a scope under `flow_id`, restoring the previous id on exit.
class TraceContext {
 public:
  TraceContext(NodeTracer* t, uint64_t flow_id) : t_(t) {
    if (t_ != nullptr) {
      prev_ = t_->SwapCurrent(flow_id);
    }
  }
  ~TraceContext() {
    if (t_ != nullptr) {
      t_->SwapCurrent(prev_);
    }
  }
  TraceContext(const TraceContext&) = delete;
  TraceContext& operator=(const TraceContext&) = delete;

 private:
  NodeTracer* t_;
  uint64_t prev_ = 0;
};

}  // namespace dfil

#endif  // DFIL_COMMON_TRACE_H_
