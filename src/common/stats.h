// Lightweight counters used to reproduce the paper's overhead analyses.
//
// Figure 10 of the paper breaks per-node execution time into work, filament execution, data
// transfer, synchronization overhead, and synchronization delay. Every virtual-time charge in the
// runtime is tagged with one of these categories so the same breakdown can be printed.
#ifndef DFIL_COMMON_STATS_H_
#define DFIL_COMMON_STATS_H_

#include <array>
#include <cstdint>
#include <string_view>

#include "src/common/types.h"

namespace dfil {

// Category of a virtual-time charge (paper Figure 10 rows, plus Idle for uncharged gaps).
enum class TimeCategory : uint8_t {
  kWork = 0,          // the computation proper
  kFilamentExec,      // creating/running filaments, descriptor traversal
  kDataTransfer,      // page faulting and page-request servicing
  kSyncOverhead,      // sending/receiving synchronization messages
  kSyncDelay,         // waiting at a barrier/join for other nodes
  kIdle,              // node had nothing to run (shows up as tail-end load imbalance)
  kNumCategories,
};

inline constexpr size_t kNumTimeCategories = static_cast<size_t>(TimeCategory::kNumCategories);

constexpr std::string_view TimeCategoryName(TimeCategory c) {
  switch (c) {
    case TimeCategory::kWork:
      return "work";
    case TimeCategory::kFilamentExec:
      return "filament_exec";
    case TimeCategory::kDataTransfer:
      return "data_transfer";
    case TimeCategory::kSyncOverhead:
      return "sync_overhead";
    case TimeCategory::kSyncDelay:
      return "sync_delay";
    case TimeCategory::kIdle:
      return "idle";
    default:
      return "?";
  }
}

// Per-node accumulation of charged virtual time by category.
class TimeBreakdown {
 public:
  void Add(TimeCategory c, SimTime t) { by_category_[static_cast<size_t>(c)] += t; }

  SimTime Get(TimeCategory c) const { return by_category_[static_cast<size_t>(c)]; }

  SimTime Total() const {
    SimTime sum = 0;
    for (SimTime t : by_category_) {
      sum += t;
    }
    return sum;
  }

  void Reset() { by_category_.fill(0); }

 private:
  std::array<SimTime, kNumTimeCategories> by_category_{};
};

// Message-traffic counters, used to verify protocol claims (e.g. implicit-invalidate sends no
// invalidation messages; the tournament barrier sends O(p) messages).
struct MessageStats {
  uint64_t messages_sent = 0;
  uint64_t messages_dropped = 0;
  uint64_t bytes_sent = 0;
  uint64_t retransmissions = 0;
  uint64_t deferred_requests = 0;  // requests ignored because the replier was in a critical section

  // Adversarial fault injection (sim::FaultInjector): extra deliveries and deferrals it created.
  uint64_t messages_duplicated = 0;  // injected duplicate deliveries
  uint64_t messages_delayed = 0;     // deliveries given injected extra latency
  uint64_t stall_deferrals = 0;      // deliveries deferred past a receiver stall window

  void Reset() { *this = MessageStats{}; }
};

// DSM activity counters.
struct DsmStats {
  uint64_t read_faults = 0;
  uint64_t write_faults = 0;
  uint64_t page_requests_served = 0;
  uint64_t invalidations_sent = 0;
  uint64_t invalidations_received = 0;
  uint64_t implicit_invalidations = 0;  // read-only copies dropped at synchronization points
  uint64_t page_forwards = 0;           // requests forwarded along the owner chain
  uint64_t mirage_deferrals = 0;        // page requests delayed by the Mirage hold window
  uint64_t fetch_deferrals = 0;         // page requests deferred because the entry was in flux
  uint64_t use_deferrals = 0;           // serves deferred until a woken faulter touched the page

  // Prefetch / bulk-transfer pipeline.
  uint64_t single_page_requests = 0;  // single-page request messages sent (incl. redirect chases)
  uint64_t bulk_requests = 0;         // bulk page-run request messages sent
  uint64_t bulk_pages_requested = 0;  // pages covered by bulk requests
  uint64_t bulk_pages_served = 0;     // owner side: pages shipped inside bulk replies
  uint64_t bulk_misses = 0;           // pages a bulk reply reported as not-owned-here
  uint64_t prefetched_pages = 0;      // pages installed ahead of any demand access
  uint64_t prefetch_wasted = 0;       // prefetched copies discarded without ever being read

  // Duplication/reordering defenses (exercised by the fault-injection harness).
  uint64_t grant_reserves = 0;               // lost ownership transfers re-served from the grant record
  uint64_t stale_invalidations_ignored = 0;  // duplicated invalidations that arrived after re-acquisition
  uint64_t stale_transfer_dups_ignored = 0;  // duplicated transfer requests for an already-answered fault
  uint64_t discarded_installs = 0;           // page installs dropped because invalidated in flight

  // Multiple-writer diff protocol (kDiff) and the per-page-group adapter.
  uint64_t diff_twins_created = 0;         // pages twinned on first write to a diff copy
  uint64_t diff_merges_sent = 0;           // kDiffMerge messages sent at synchronization points
  uint64_t diff_pages_flushed = 0;         // twinned pages encoded and dropped at sync points
  uint64_t diff_bytes_sent = 0;            // modified-run payload bytes inside sent diffs
  uint64_t diff_merges_applied = 0;        // merge messages applied at this home node
  uint64_t diff_pages_merged = 0;          // pages patched by applied merges
  uint64_t diff_stale_merges_ignored = 0;  // duplicate / old-epoch merges skipped (idempotence)
  uint64_t diff_bulk_refetches = 0;        // sync-batch flush sets re-fetched via bulk requests
  uint64_t adapter_switches_to_diff = 0;   // page groups this owner flipped implicit-inv -> diff
  uint64_t adapter_switches_to_ii = 0;     // page groups flipped back after calm epochs

  // Rebalance page re-homing (load balancer, DESIGN.md §13). All zero when the balancer is off.
  uint64_t pages_rehomed = 0;           // requester side: ownership transfers installed
  uint64_t rehome_requests = 0;         // kRehomePages batches sent
  uint64_t rehome_pages_requested = 0;  // pages covered by those batches
  uint64_t rehome_pages_served = 0;     // source side: transfers shipped inside rehome replies
  uint64_t rehome_misses = 0;           // requester side: pages the source could not release
  uint64_t rehome_misses_served = 0;    // source side: pages it reported back as misses

  // Page-content payload bytes this node shipped: full pages inside data/bulk replies plus diff
  // run bytes. The false-sharing bench's headline metric — diff ships O(bytes changed) where the
  // single-writer protocols ship whole pages.
  uint64_t page_data_bytes = 0;

  // Page-request message count (the Figure-9 hot-path traffic this node generated).
  uint64_t page_request_messages() const { return single_page_requests + bulk_requests; }

  void Reset() { *this = DsmStats{}; }
};

// Filaments runtime counters.
struct FilamentStats {
  uint64_t filaments_created = 0;
  uint64_t filaments_run = 0;
  uint64_t filaments_run_inlined = 0;  // executed via the pattern-recognized strip path
  uint64_t forks_local = 0;
  uint64_t forks_pruned = 0;  // forks converted to procedure calls
  uint64_t forks_sent = 0;    // forks shipped to another node (tree distribution)
  uint64_t steals_attempted = 0;
  uint64_t steals_succeeded = 0;
  uint64_t steals_denied = 0;
  uint64_t steals_attempted_on_us = 0;  // steal requests this node served or denied
  uint64_t pool_suspensions = 0;
  uint64_t server_threads_started = 0;

  void Reset() { *this = FilamentStats{}; }
};

}  // namespace dfil

#endif  // DFIL_COMMON_STATS_H_
