// Metrics registry: named counters and log-scale histograms behind one uniform JSON export.
//
// The runtime's ad-hoc stats structs (DsmStats, MessageStats, FilamentStats, PacketStats) stay as
// the zero-overhead hot-path counters, but they are *subsumed* at report time: the metrics writer
// (src/core/metrics_io.h) flattens every struct field into a named registry counter, so one JSON
// schema covers everything a run produces — struct counters, live histograms (fault latency,
// barrier wait, serve queue depth), and per-page fault heat. tools/dfil_report consumes that JSON
// to print the paper's Figure 9 / Figure 10 tables. Naming scheme: DESIGN.md §Observability.
#ifndef DFIL_COMMON_METRICS_H_
#define DFIL_COMMON_METRICS_H_

#include <array>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace dfil {

// Log-scale histogram: bucket 0 holds values < 1, bucket k (k >= 1) holds [2^(k-1), 2^k).
// Recording is O(1) and allocation-free; percentile queries interpolate within a bucket, so they
// are estimates with bucket (power-of-two) resolution — plenty for p50/p99 latency reporting.
class Histogram {
 public:
  static constexpr size_t kBuckets = 64;

  void Record(double value);

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_); }

  // q in [0, 1]; returns 0 on an empty histogram.
  double Percentile(double q) const;

  const std::array<uint64_t, kBuckets>& buckets() const { return buckets_; }
  static double BucketLow(size_t i);
  static double BucketHigh(size_t i);

  void Merge(const Histogram& other);

  // {"count":N,"sum":S,"min":m,"max":M,"p50":..,"p90":..,"p99":..,"buckets":[[lo,hi,n],...]}
  // (non-empty buckets only).
  void WriteJson(std::ostream& os) const;

 private:
  static size_t BucketOf(double value);

  uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::array<uint64_t, kBuckets> buckets_{};
};

// A per-node (or per-run) registry of named counters and histograms. Deterministic iteration
// (std::map) so exports are byte-stable across runs of the same schedule.
class MetricsRegistry {
 public:
  void Inc(const std::string& name, uint64_t delta = 1) { counters_[name] += delta; }
  void Set(const std::string& name, uint64_t value) { counters_[name] = value; }
  uint64_t Counter(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }
  Histogram& Hist(const std::string& name) { return histograms_[name]; }

  const std::map<std::string, uint64_t>& counters() const { return counters_; }
  const std::map<std::string, Histogram>& histograms() const { return histograms_; }
  bool empty() const { return counters_.empty() && histograms_.empty(); }

  // Per-epoch time-series rows, one map per synchronization point in epoch order; serialized by
  // metrics_io as the per-node "epochs" array of the dfil-metrics-v2 schema.
  void AddEpochRow(std::map<std::string, double> row) { epochs_.push_back(std::move(row)); }
  const std::vector<std::map<std::string, double>>& epochs() const { return epochs_; }

  // {"counters":{...},"histograms":{...}}; `indent` prefixes every line for nested pretty
  // printing.
  void WriteJson(std::ostream& os, const std::string& indent) const;

 private:
  std::map<std::string, uint64_t> counters_;
  std::map<std::string, Histogram> histograms_;
  std::vector<std::map<std::string, double>> epochs_;
};

}  // namespace dfil

#endif  // DFIL_COMMON_METRICS_H_
