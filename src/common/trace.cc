#include "src/common/trace.h"

#include "src/common/check.h"

namespace dfil {
namespace {

// Minimal JSON string escaping (names are runtime-generated identifiers, not user text).
void WriteEscaped(std::ostream& os, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      default:
        os << c;
    }
  }
}

}  // namespace

void TraceRecorder::Begin(NodeId node, uint64_t tid, const char* category, std::string name,
                          SimTime ts) {
  events_.push_back(Event{'B', node, tid, category, std::move(name), ts});
  depth_[{node, tid}]++;
}

void TraceRecorder::End(NodeId node, uint64_t tid, SimTime ts) {
  auto it = depth_.find({node, tid});
  DFIL_CHECK(it != depth_.end() && it->second > 0)
      << "TraceRecorder::End without a matching Begin on node " << node << " thread " << tid;
  it->second--;
  events_.push_back(Event{'E', node, tid, "", "", ts});
}

void TraceRecorder::Instant(NodeId node, uint64_t tid, const char* category, std::string name,
                            SimTime ts) {
  events_.push_back(Event{'i', node, tid, category, std::move(name), ts});
}

size_t TraceRecorder::open_spans() const {
  size_t open = 0;
  for (const auto& [key, depth] : depth_) {
    open += static_cast<size_t>(depth);
  }
  return open;
}

void TraceRecorder::WriteChromeTrace(std::ostream& os) const {
  os << "[";
  bool first = true;
  for (const Event& e : events_) {
    if (!first) {
      os << ",\n";
    }
    first = false;
    os << "{\"ph\":\"" << e.phase << "\",\"pid\":" << e.node << ",\"tid\":" << e.tid
       << ",\"ts\":" << ToMicroseconds(e.ts);
    if (e.phase != 'E') {
      os << ",\"cat\":\"" << e.category << "\",\"name\":\"";
      WriteEscaped(os, e.name);
      os << "\"";
      if (e.phase == 'i') {
        os << ",\"s\":\"t\"";
      }
    }
    os << "}";
  }
  os << "]\n";
}

}  // namespace dfil
