#include "src/common/trace.h"

#include <cstdio>

#include "src/common/check.h"

namespace dfil {
namespace {

// Full JSON string escaping: quotes, backslash, and every control character (event names embed
// runtime-generated identifiers, but fuzz scenarios and app tags can carry arbitrary bytes).
void WriteEscaped(std::ostream& os, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\b':
        os << "\\b";
        break;
      case '\f':
        os << "\\f";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\r':
        os << "\\r";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned char>(c));
          os << buf;
        } else {
          os << c;
        }
    }
  }
}

}  // namespace

void TraceRecorder::Begin(NodeId node, uint64_t tid, const char* category, std::string name,
                          SimTime ts) {
  events_.push_back(Event{'B', node, tid, category, std::move(name), ts, 0});
  depth_[{node, tid}]++;
}

void TraceRecorder::End(NodeId node, uint64_t tid, SimTime ts) {
  auto it = depth_.find({node, tid});
  if (it == depth_.end() || it->second <= 0) {
    // No open span on this track: a caller closed more than it opened (or an aborted run resumed
    // on a different thread). Dropping the event keeps the trace well-formed.
    unmatched_ends_++;
    return;
  }
  it->second--;
  events_.push_back(Event{'E', node, tid, "", "", ts, 0});
}

void TraceRecorder::Instant(NodeId node, uint64_t tid, const char* category, std::string name,
                            SimTime ts) {
  events_.push_back(Event{'i', node, tid, category, std::move(name), ts, 0});
}

void TraceRecorder::Flow(NodeId node, uint64_t tid, char phase, const char* category,
                         std::string name, SimTime ts, uint64_t flow_id) {
  DFIL_DCHECK(phase == kFlowStart || phase == kFlowStep || phase == kFlowEnd);
  events_.push_back(Event{phase, node, tid, category, std::move(name), ts, flow_id});
}

size_t TraceRecorder::open_spans() const {
  size_t open = 0;
  for (const auto& [key, depth] : depth_) {
    open += static_cast<size_t>(depth);
  }
  return open;
}

void TraceRecorder::WriteChromeTrace(std::ostream& os) const {
  os << "[";
  bool first = true;
  SimTime last_ts = 0;
  auto emit = [&](const Event& e) {
    if (!first) {
      os << ",\n";
    }
    first = false;
    // ts is printed at fixed nanosecond precision: default ostream double formatting keeps only
    // six significant digits, which collapses distinct microsecond timestamps on second-long
    // runs — fatal for the critpath walker, which aligns spans across nodes by exact ts.
    char ts_buf[32];
    std::snprintf(ts_buf, sizeof(ts_buf), "%.3f", ToMicroseconds(e.ts));
    os << "{\"ph\":\"" << e.phase << "\",\"pid\":" << e.node << ",\"tid\":" << e.tid
       << ",\"ts\":" << ts_buf;
    if (e.phase != 'E') {
      os << ",\"cat\":\"";
      WriteEscaped(os, e.category);
      os << "\",\"name\":\"";
      WriteEscaped(os, e.name);
      os << "\"";
      if (e.phase == 'i') {
        os << ",\"s\":\"t\"";
      } else if (e.phase == kFlowStart || e.phase == kFlowStep || e.phase == kFlowEnd) {
        // bp:e binds the flow event to its enclosing slice (the default for 'f' is the next
        // slice, which would detach the arc from the install span).
        os << ",\"id\":" << e.flow_id << ",\"bp\":\"e\"";
      }
    }
    os << "}";
  };
  // Replayed open-span depth per track, so an aborted run's dangling spans can be closed.
  std::map<std::pair<NodeId, uint64_t>, int> open;
  for (const Event& e : events_) {
    if (e.phase == 'B') {
      open[{e.node, e.tid}]++;
    } else if (e.phase == 'E') {
      open[{e.node, e.tid}]--;
    }
    if (e.ts > last_ts) {
      last_ts = e.ts;
    }
    emit(e);
  }
  for (const auto& [track, depth] : open) {
    for (int i = 0; i < depth; ++i) {
      emit(Event{'E', track.first, track.second, "", "", last_ts, 0});
    }
  }
  os << "]\n";
}

}  // namespace dfil
