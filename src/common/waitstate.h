// Wait-state accounting: typed, cause-carrying records for every blocked interval.
//
// The Figure 10 breakdown answers "where did the time go" with six coarse buckets; the wait-state
// recorder answers the sharper question "what exactly was each node waiting FOR" — a page (which
// one), a barrier (which epoch), a service call (which service), an RTO (which peer). Every
// blocked interval becomes one WaitEvent {kind, detail, start, end}, and the node's entire
// virtual clock is partitioned exactly into three ledgers:
//
//   run   — time charged while a server thread held the processor (Charge with a current thread)
//   serve — time charged in handler (interrupt) context: serving pages, acks, reduce traffic
//   wait  — scheduler gaps (AdvanceTo), classified by the wake that ended them
//
// Invariant (asserted in tests, documented in DESIGN.md §12): run + serve + wait == the node's
// final virtual clock, exactly — the clock only ever advances through those three paths.
//
// The recorder is allocation-free on the hot path (fixed arrays, a fixed-capacity event ring) and
// schedule-invariant: it never charges time, sends messages, or branches the runtime on its own
// state, so recording on/off yields byte-identical schedules (like the trace recorder). The ring
// doubles as the *flight recorder*: the last kRingCapacity wait events per node, dumped by the
// fuzz driver when the coherence oracle flags a violation or a replay fails.
#ifndef DFIL_COMMON_WAITSTATE_H_
#define DFIL_COMMON_WAITSTATE_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/types.h"

namespace dfil {

// Why a thread (or the node's scheduler) was waiting. Kinds map 1:1 onto the block reasons the
// runtime sets before BlockCurrent, plus kRetransmit (an RTO stall observed by the transport) and
// kIdle (a scheduler gap no wake ever claimed — e.g. the quiet tail after main finishes).
enum class WaitKind : uint8_t {
  kPageFault = 0,  // filament blocked on a page fault; detail = page id
  kFetchDrain,     // sync-point drain of outstanding fetches / diff merges
  kBarrier,        // reduction arrival-to-release; detail = barrier epoch
  kCall,           // blocking service call; detail = service number
  kChannel,        // explicit-message receive (CG programs)
  kJoin,           // fork/join: join wait, worker winddown, fj idle
  kSweep,          // pool engine waiting for a sweep to finish
  kRetransmit,     // request hit its RTO and was retransmitted; detail = service number
  kIdle,           // unclaimed scheduler gap
  kNumKinds,
};
inline constexpr size_t kNumWaitKinds = static_cast<size_t>(WaitKind::kNumKinds);

constexpr const char* WaitKindName(WaitKind k) {
  switch (k) {
    case WaitKind::kPageFault:
      return "page_fault";
    case WaitKind::kFetchDrain:
      return "fetch_drain";
    case WaitKind::kBarrier:
      return "barrier";
    case WaitKind::kCall:
      return "call";
    case WaitKind::kChannel:
      return "channel";
    case WaitKind::kJoin:
      return "join";
    case WaitKind::kSweep:
      return "sweep";
    case WaitKind::kRetransmit:
      return "retransmit";
    case WaitKind::kIdle:
      return "idle";
    case WaitKind::kNumKinds:
      break;
  }
  return "?";
}

// One blocked interval. `detail` is kind-specific (page id, epoch, service number, peer); 0 when
// the kind carries no cause. kRetransmit events span [first send, RTO expiry] — the stall the
// timeout ended — and may overlap thread-level waits of the exchange that stalled.
struct WaitEvent {
  WaitKind kind = WaitKind::kIdle;
  uint64_t detail = 0;
  SimTime start = 0;
  SimTime end = 0;

  SimTime duration() const { return end - start; }
};

// Per-node recorder. All methods are O(1) and allocation-free; RecentEvents() (dump time only)
// allocates its result.
class WaitStateRecorder {
 public:
  static constexpr size_t kRingCapacity = 256;

  void Record(WaitKind kind, uint64_t detail, SimTime start, SimTime end) {
    totals_[static_cast<size_t>(kind)] += end - start;
    counts_[static_cast<size_t>(kind)]++;
    ring_[seen_ % kRingCapacity] = WaitEvent{kind, detail, start, end};
    seen_++;
  }

  // The three clock ledgers (see file comment).
  void AddRun(SimTime t) { run_ += t; }
  void AddServe(SimTime t) { serve_ += t; }
  // Scheduler-gap wait, attributed by the wake that ended it. Separate from Record so the
  // node-level ledger is not double-counted when a thread-level event covers the same interval.
  void AddWait(WaitKind kind, SimTime t) { waits_[static_cast<size_t>(kind)] += t; }

  SimTime run_time() const { return run_; }
  SimTime serve_time() const { return serve_; }
  SimTime wait_time() const {
    SimTime total = 0;
    for (const SimTime t : waits_) {
      total += t;
    }
    return total;
  }
  SimTime wait_time(WaitKind kind) const { return waits_[static_cast<size_t>(kind)]; }
  // Thread-level blocked time by kind (may overlap across threads; the node-level ledger is
  // wait_time()).
  SimTime blocked_time(WaitKind kind) const { return totals_[static_cast<size_t>(kind)]; }
  uint64_t event_count(WaitKind kind) const { return counts_[static_cast<size_t>(kind)]; }
  uint64_t events_seen() const { return seen_; }

  // The flight-recorder window: the last min(seen, kRingCapacity) events, oldest first.
  std::vector<WaitEvent> RecentEvents() const {
    std::vector<WaitEvent> out;
    const uint64_t n = seen_ < kRingCapacity ? seen_ : kRingCapacity;
    out.reserve(n);
    for (uint64_t i = seen_ - n; i < seen_; ++i) {
      out.push_back(ring_[i % kRingCapacity]);
    }
    return out;
  }

 private:
  std::array<SimTime, kNumWaitKinds> totals_{};
  std::array<uint64_t, kNumWaitKinds> counts_{};
  std::array<SimTime, kNumWaitKinds> waits_{};
  SimTime run_ = 0;
  SimTime serve_ = 0;
  uint64_t seen_ = 0;
  std::array<WaitEvent, kRingCapacity> ring_{};
};

}  // namespace dfil

#endif  // DFIL_COMMON_WAITSTATE_H_
