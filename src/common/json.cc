#include "src/common/json.h"

#include <cctype>
#include <cstdlib>

namespace dfil::json {

const Value* Value::Get(const std::string& key) const {
  if (type != Type::kObject) {
    return nullptr;
  }
  const Value* found = nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) {
      found = v.get();
    }
  }
  return found;
}

double Value::GetNumber(const std::string& key, double def) const {
  const Value* v = Get(key);
  return (v != nullptr && v->is_number()) ? v->number : def;
}

std::string Value::GetString(const std::string& key, const std::string& def) const {
  const Value* v = Get(key);
  return (v != nullptr && v->is_string()) ? v->str : def;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  ParseResult Run() {
    ParseResult r;
    ValuePtr v = ParseValue();
    if (!ok_) {
      r.error = error_;
      r.error_offset = pos_;
      return r;
    }
    SkipWs();
    if (pos_ != s_.size()) {
      r.error = "trailing data after value";
      r.error_offset = pos_;
      return r;
    }
    r.value = std::move(v);
    return r;
  }

 private:
  void SkipWs() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_])) != 0) {
      pos_++;
    }
  }

  void Fail(const std::string& msg) {
    if (ok_) {
      ok_ = false;
      error_ = msg;
    }
  }

  bool Consume(char c) {
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == c) {
      pos_++;
      return true;
    }
    return false;
  }

  ValuePtr ParseValue() {
    SkipWs();
    if (pos_ >= s_.size()) {
      Fail("unexpected end of input");
      return nullptr;
    }
    const char c = s_[pos_];
    switch (c) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"':
        return ParseString();
      case 't':
      case 'f':
        return ParseBool();
      case 'n':
        return ParseNull();
      default:
        if (c == '-' || (c >= '0' && c <= '9')) {
          return ParseNumber();
        }
        Fail(std::string("unexpected character '") + c + "'");
        return nullptr;
    }
  }

  ValuePtr ParseObject() {
    pos_++;  // '{'
    auto v = std::make_shared<Value>();
    v->type = Type::kObject;
    SkipWs();
    if (Consume('}')) {
      return v;
    }
    while (ok_) {
      SkipWs();
      if (pos_ >= s_.size() || s_[pos_] != '"') {
        Fail("expected object key");
        return nullptr;
      }
      ValuePtr key = ParseString();
      if (!ok_) {
        return nullptr;
      }
      if (!Consume(':')) {
        Fail("expected ':' after object key");
        return nullptr;
      }
      ValuePtr member = ParseValue();
      if (!ok_) {
        return nullptr;
      }
      v->object.emplace_back(key->str, std::move(member));
      if (Consume(',')) {
        continue;
      }
      if (Consume('}')) {
        return v;
      }
      Fail("expected ',' or '}' in object");
      return nullptr;
    }
    return nullptr;
  }

  ValuePtr ParseArray() {
    pos_++;  // '['
    auto v = std::make_shared<Value>();
    v->type = Type::kArray;
    SkipWs();
    if (Consume(']')) {
      return v;
    }
    while (ok_) {
      ValuePtr item = ParseValue();
      if (!ok_) {
        return nullptr;
      }
      v->array.push_back(std::move(item));
      if (Consume(',')) {
        continue;
      }
      if (Consume(']')) {
        return v;
      }
      Fail("expected ',' or ']' in array");
      return nullptr;
    }
    return nullptr;
  }

  ValuePtr ParseString() {
    pos_++;  // '"'
    auto v = std::make_shared<Value>();
    v->type = Type::kString;
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') {
        return v;
      }
      if (c != '\\') {
        v->str += c;
        continue;
      }
      if (pos_ >= s_.size()) {
        break;
      }
      const char esc = s_[pos_++];
      switch (esc) {
        case '"':
          v->str += '"';
          break;
        case '\\':
          v->str += '\\';
          break;
        case '/':
          v->str += '/';
          break;
        case 'b':
          v->str += '\b';
          break;
        case 'f':
          v->str += '\f';
          break;
        case 'n':
          v->str += '\n';
          break;
        case 'r':
          v->str += '\r';
          break;
        case 't':
          v->str += '\t';
          break;
        case 'u': {
          if (pos_ + 4 > s_.size()) {
            Fail("truncated \\u escape");
            return nullptr;
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              Fail("bad hex digit in \\u escape");
              return nullptr;
            }
          }
          // UTF-8 encode the code point (surrogate pairs not combined; our writers only emit
          // \u00xx control-character escapes).
          if (code < 0x80) {
            v->str += static_cast<char>(code);
          } else if (code < 0x800) {
            v->str += static_cast<char>(0xC0 | (code >> 6));
            v->str += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            v->str += static_cast<char>(0xE0 | (code >> 12));
            v->str += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            v->str += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          Fail(std::string("bad escape '\\") + esc + "'");
          return nullptr;
      }
    }
    Fail("unterminated string");
    return nullptr;
  }

  ValuePtr ParseNumber() {
    const size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') {
      pos_++;
    }
    while (pos_ < s_.size() && ((s_[pos_] >= '0' && s_[pos_] <= '9') || s_[pos_] == '.' ||
                                s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '+' ||
                                s_[pos_] == '-')) {
      pos_++;
    }
    const std::string tok = s_.substr(start, pos_ - start);
    char* end = nullptr;
    const double d = std::strtod(tok.c_str(), &end);
    if (end == tok.c_str() || *end != '\0') {
      Fail("malformed number '" + tok + "'");
      return nullptr;
    }
    auto v = std::make_shared<Value>();
    v->type = Type::kNumber;
    v->number = d;
    return v;
  }

  ValuePtr ParseBool() {
    auto v = std::make_shared<Value>();
    v->type = Type::kBool;
    if (s_.compare(pos_, 4, "true") == 0) {
      v->boolean = true;
      pos_ += 4;
      return v;
    }
    if (s_.compare(pos_, 5, "false") == 0) {
      v->boolean = false;
      pos_ += 5;
      return v;
    }
    Fail("bad literal");
    return nullptr;
  }

  ValuePtr ParseNull() {
    if (s_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return std::make_shared<Value>();
    }
    Fail("bad literal");
    return nullptr;
  }

  const std::string& s_;
  size_t pos_ = 0;
  bool ok_ = true;
  std::string error_;
};

}  // namespace

ParseResult Parse(const std::string& text) { return Parser(text).Run(); }

}  // namespace dfil::json
