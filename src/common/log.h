// Minimal leveled logging. Off by default; enabled per-run via DfilSetLogLevel (tests and the
// debugging benches use it). Log lines carry the virtual time of the emitting node when known.
#ifndef DFIL_COMMON_LOG_H_
#define DFIL_COMMON_LOG_H_

#include <sstream>

namespace dfil {

enum class LogLevel : int {
  kNone = 0,
  kError = 1,
  kInfo = 2,
  kDebug = 3,
  kTrace = 4,
};

void DfilSetLogLevel(LogLevel level);
LogLevel DfilLogLevel();

namespace internal {

class LogLine {
 public:
  explicit LogLine(const char* tag) { stream_ << "[" << tag << "] "; }
  ~LogLine();

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace dfil

#define DFIL_LOG(level, tag)                                     \
  if (::dfil::DfilLogLevel() < ::dfil::LogLevel::level) {        \
  } else /* NOLINT */                                            \
    ::dfil::internal::LogLine(tag)

#endif  // DFIL_COMMON_LOG_H_
