// Minimal JSON parser for the analysis tooling (tools/dfil_report, trace-validity tests).
//
// The runtime writes JSON (traces, metrics, bench reports); this is the read side. Hand-rolled on
// purpose: the container bakes in no JSON library and the build must not grow dependencies.
// Supports the full JSON grammar we emit — objects (insertion-ordered), arrays, strings with
// escapes, numbers, booleans, null. Errors carry a byte offset, not line/column.
#ifndef DFIL_COMMON_JSON_H_
#define DFIL_COMMON_JSON_H_

#include <cstddef>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace dfil::json {

class Value;
using ValuePtr = std::shared_ptr<Value>;

enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

class Value {
 public:
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<ValuePtr> array;
  // Insertion-ordered; duplicate keys keep the last value on lookup.
  std::vector<std::pair<std::string, ValuePtr>> object;

  bool is_null() const { return type == Type::kNull; }
  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }
  bool is_string() const { return type == Type::kString; }
  bool is_number() const { return type == Type::kNumber; }

  // Object member lookup; nullptr when absent or not an object.
  const Value* Get(const std::string& key) const;
  // Convenience accessors with defaults.
  double GetNumber(const std::string& key, double def = 0.0) const;
  std::string GetString(const std::string& key, const std::string& def = "") const;
};

struct ParseResult {
  ValuePtr value;          // null on failure
  std::string error;       // empty on success
  size_t error_offset = 0;

  bool ok() const { return value != nullptr; }
};

ParseResult Parse(const std::string& text);

}  // namespace dfil::json

#endif  // DFIL_COMMON_JSON_H_
