// Per-pool profiling ledgers: cost attribution at the granularity adaptation decisions are made.
//
// The wait-state recorder (waitstate.h) partitions a node's clock into run/serve/wait, but all
// run time lands in one bucket — useless for questions like "which pool got slower after the
// rebalance?" or "did the edge pools or the interior pool eat the regression?". The pool profiler
// splits the RUN ledger by the pool whose server thread held the processor, and tags each pool
// with a deterministic filament-function id so pools doing the same work can be rolled up across
// nodes and compared across runs (dfil_diff).
//
// Attribution contract (DESIGN.md §14):
//   * run    — Charge time while the current server thread is executing a pool (the pool engine
//              brackets ExecutePool with set_profile_pool). Time run outside any pool (main
//              thread, fork/join workers, reduction waiters) accumulates in other_run().
//   * serve  — handler-context time is NOT attributed per pool: an interrupt handler serves the
//              cluster, not the pool it happens to preempt. It stays in the node serve ledger and
//              is emitted as the residual row of the metrics "pools" section.
//   * Exact partition: sum(pool run) + other_run() == WaitStateRecorder::run_time(), at SimTime
//     resolution — both sides are fed from the same Charge quanta.
//   * blocked — thread-level blocked intervals of a pool's runner (overlapping across threads,
//     like WaitStateRecorder::blocked_time); faults/filaments_run/migrated_in are event counts.
//
// Like the wait-state and trace recorders, the profiler never charges time, sends messages, or
// branches the runtime on its own state: profiling on/off yields byte-identical schedules.
#ifndef DFIL_COMMON_POOLPROF_H_
#define DFIL_COMMON_POOLPROF_H_

#include <cstdint>
#include <map>

#include "src/common/types.h"

namespace dfil {

class PoolProfiler {
 public:
  struct Ledger {
    SimTime run = 0;            // thread-context Charge time while running this pool
    SimTime blocked = 0;        // this pool's runner blocked (page fault, mostly)
    uint64_t faults = 0;        // pool suspensions on page faults
    uint64_t filaments_run = 0;
    uint64_t migrated_in = 0;   // filaments integrated from a kFilamentMigrate batch
    int fn = -1;                // id of the pool's first filament function (-1 = none yet)
  };

  // Deterministic id for a filament function: assigned in order of first registration on this
  // node. Raw function pointers are ASLR-unstable across processes, so ids — not addresses — are
  // what the metrics export and dfil_diff key the cross-run rollup on. SPMD programs register
  // functions in the same order on every node, so ids agree cluster-wide.
  int FnIdOf(const void* fn) {
    const auto [it, inserted] = fn_ids_.try_emplace(fn, next_fn_id_);
    if (inserted) {
      ++next_fn_id_;
    }
    return it->second;
  }

  // Ties `pool` to its first filament's function (subsequent calls keep the first binding).
  void BindPoolFn(int pool, const void* fn) {
    Ledger& l = pools_[pool];
    if (l.fn < 0) {
      l.fn = FnIdOf(fn);
    }
  }

  // Run-time attribution; pool < 0 = the current thread is not a pool runner (residual bucket).
  void AddRun(int pool, SimTime t) {
    if (pool < 0) {
      other_run_ += t;
      return;
    }
    pools_[pool].run += t;
  }
  void AddBlocked(int pool, SimTime t) {
    if (pool >= 0) {
      pools_[pool].blocked += t;
    }
  }
  void OnFault(int pool) {
    if (pool >= 0) {
      pools_[pool].faults++;
    }
  }
  void OnFilamentsRun(int pool, uint64_t n) {
    if (pool >= 0) {
      pools_[pool].filaments_run += n;
    }
  }
  void OnMigratedIn(int pool, uint64_t n) {
    if (pool >= 0) {
      pools_[pool].migrated_in += n;
    }
  }

  SimTime other_run() const { return other_run_; }
  SimTime pool_run_total() const {
    SimTime total = 0;
    for (const auto& [id, l] : pools_) {
      total += l.run;
    }
    return total;
  }
  const std::map<int, Ledger>& pools() const { return pools_; }
  bool empty() const { return pools_.empty() && other_run_ == 0; }

 private:
  std::map<int, Ledger> pools_;          // pool id -> ledger, deterministic iteration
  std::map<const void*, int> fn_ids_;    // filament fn -> first-appearance id
  int next_fn_id_ = 0;
  SimTime other_run_ = 0;
};

}  // namespace dfil

#endif  // DFIL_COMMON_POOLPROF_H_
