#include "src/common/log.h"

#include <cstdio>

namespace dfil {
namespace {

LogLevel g_level = LogLevel::kNone;

}  // namespace

void DfilSetLogLevel(LogLevel level) { g_level = level; }

LogLevel DfilLogLevel() { return g_level; }

namespace internal {

LogLine::~LogLine() {
  stream_ << "\n";
  std::fputs(stream_.str().c_str(), stderr);
}

}  // namespace internal
}  // namespace dfil
