#include "src/common/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace dfil {
namespace {

std::string Num(double v) {
  char buf[32];
  if (std::abs(v) < 1e15 && v == static_cast<double>(static_cast<long long>(v))) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  return buf;
}

}  // namespace

size_t Histogram::BucketOf(double value) {
  if (!(value >= 1.0)) {  // also catches NaN and negatives
    return 0;
  }
  int exp = static_cast<int>(std::floor(std::log2(value))) + 1;
  // log2 can land one off at exact powers of two; nudge into [2^(k-1), 2^k).
  while (exp > 1 && value < std::ldexp(1.0, exp - 1)) {
    --exp;
  }
  while (exp < static_cast<int>(kBuckets) - 1 && value >= std::ldexp(1.0, exp)) {
    ++exp;
  }
  return std::min<size_t>(static_cast<size_t>(exp), kBuckets - 1);
}

double Histogram::BucketLow(size_t i) { return i == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(i) - 1); }

double Histogram::BucketHigh(size_t i) { return std::ldexp(1.0, static_cast<int>(i)); }

void Histogram::Record(double value) {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  count_++;
  sum_ += value;
  buckets_[BucketOf(value)]++;
}

double Histogram::Percentile(double q) const {
  if (count_ == 0) {
    return 0.0;
  }
  q = std::min(1.0, std::max(0.0, q));
  // Rank of the target sample (1-based, ceil so p100 == last sample's bucket).
  const uint64_t rank = std::max<uint64_t>(1, static_cast<uint64_t>(std::ceil(q * static_cast<double>(count_))));
  uint64_t seen = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    if (buckets_[i] == 0) {
      continue;
    }
    if (seen + buckets_[i] >= rank) {
      // Interpolate within the bucket, clamped to the observed min/max.
      const double frac = static_cast<double>(rank - seen) / static_cast<double>(buckets_[i]);
      const double lo = std::max(BucketLow(i), min_);
      const double hi = std::min(BucketHigh(i), max_);
      return lo + frac * (std::max(hi, lo) - lo);
    }
    seen += buckets_[i];
  }
  return max_;
}

void Histogram::Merge(const Histogram& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  for (size_t i = 0; i < kBuckets; ++i) {
    buckets_[i] += other.buckets_[i];
  }
}

void Histogram::WriteJson(std::ostream& os) const {
  os << "{\"count\":" << count_ << ",\"sum\":" << Num(sum_) << ",\"min\":" << Num(min())
     << ",\"max\":" << Num(max()) << ",\"p50\":" << Num(Percentile(0.50))
     << ",\"p90\":" << Num(Percentile(0.90)) << ",\"p99\":" << Num(Percentile(0.99))
     << ",\"buckets\":[";
  bool first = true;
  for (size_t i = 0; i < kBuckets; ++i) {
    if (buckets_[i] == 0) {
      continue;
    }
    if (!first) {
      os << ",";
    }
    first = false;
    os << "[" << Num(BucketLow(i)) << "," << Num(BucketHigh(i)) << "," << buckets_[i] << "]";
  }
  os << "]}";
}

void MetricsRegistry::WriteJson(std::ostream& os, const std::string& indent) const {
  os << "{\n" << indent << "  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters_) {
    os << (first ? "\n" : ",\n") << indent << "    \"" << name << "\": " << value;
    first = false;
  }
  os << (first ? "" : "\n" + indent + "  ") << "},\n" << indent << "  \"histograms\": {";
  first = true;
  for (const auto& [name, hist] : histograms_) {
    os << (first ? "\n" : ",\n") << indent << "    \"" << name << "\": ";
    hist.WriteJson(os);
    first = false;
  }
  os << (first ? "" : "\n" + indent + "  ") << "}\n" << indent << "}";
}

}  // namespace dfil
