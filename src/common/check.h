// Runtime invariant checking for the Distributed Filaments runtime.
//
// DFIL_CHECK is always on (it guards protocol and scheduler invariants whose violation would
// corrupt simulation state); DFIL_DCHECK compiles away in NDEBUG builds and is used on hot paths.
#ifndef DFIL_COMMON_CHECK_H_
#define DFIL_COMMON_CHECK_H_

#include <sstream>
#include <string>

namespace dfil {

// Aborts the process after printing `msg` (with source location). Never returns.
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr, const std::string& msg);

namespace internal {

// Collects an optional streamed message for a failed check, then aborts in the destructor.
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}
  [[noreturn]] ~CheckFailure() { CheckFailed(file_, line_, expr_, stream_.str()); }

  template <typename T>
  CheckFailure& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace dfil

#define DFIL_CHECK(cond)                                          \
  if (cond) {                                                     \
  } else /* NOLINT */                                             \
    ::dfil::internal::CheckFailure(__FILE__, __LINE__, #cond)

#define DFIL_CHECK_EQ(a, b) DFIL_CHECK((a) == (b)) << " (" << (a) << " vs " << (b) << ") "
#define DFIL_CHECK_NE(a, b) DFIL_CHECK((a) != (b)) << " (" << (a) << " vs " << (b) << ") "
#define DFIL_CHECK_LT(a, b) DFIL_CHECK((a) < (b)) << " (" << (a) << " vs " << (b) << ") "
#define DFIL_CHECK_LE(a, b) DFIL_CHECK((a) <= (b)) << " (" << (a) << " vs " << (b) << ") "
#define DFIL_CHECK_GT(a, b) DFIL_CHECK((a) > (b)) << " (" << (a) << " vs " << (b) << ") "
#define DFIL_CHECK_GE(a, b) DFIL_CHECK((a) >= (b)) << " (" << (a) << " vs " << (b) << ") "

#ifdef NDEBUG
// `true || (cond)` keeps the operands odr-referenced (no unused-variable warnings) while the
// optimizer removes the whole statement.
#define DFIL_DCHECK(cond) DFIL_CHECK(true || (cond))
#else
#define DFIL_DCHECK(cond) DFIL_CHECK(cond)
#endif

#endif  // DFIL_COMMON_CHECK_H_
