// Fundamental identifier and virtual-time types shared by all Distributed Filaments modules.
#ifndef DFIL_COMMON_TYPES_H_
#define DFIL_COMMON_TYPES_H_

#include <cstdint>

namespace dfil {

// A node (simulated workstation) in the cluster. Nodes are numbered 0..p-1; node 0 is the
// "master" that initializes shared data in the paper's applications.
using NodeId = int32_t;
inline constexpr NodeId kNoNode = -1;

// Virtual time in nanoseconds. All performance in this reproduction is measured in virtual time,
// which is advanced deterministically by the cost model; see src/sim/cost_model.h.
using SimTime = int64_t;
inline constexpr SimTime kSimTimeNever = INT64_MAX;

// Convenience constructors, usable in constant expressions.
constexpr SimTime Nanoseconds(int64_t n) { return n; }
constexpr SimTime Microseconds(double us) { return static_cast<SimTime>(us * 1e3); }
constexpr SimTime Milliseconds(double ms) { return static_cast<SimTime>(ms * 1e6); }
constexpr SimTime Seconds(double s) { return static_cast<SimTime>(s * 1e9); }

constexpr double ToSeconds(SimTime t) { return static_cast<double>(t) * 1e-9; }
constexpr double ToMilliseconds(SimTime t) { return static_cast<double>(t) * 1e-6; }
constexpr double ToMicroseconds(SimTime t) { return static_cast<double>(t) * 1e-3; }

// An address in the distributed shared memory region. Shared addresses have the same meaning on
// every node (the shared section is replicated at the same location, paper §3); in this
// reproduction that property is realized by using offsets into the per-node replica.
using GlobalAddr = uint64_t;

// Index of a DSM page (GlobalAddr >> page_shift).
using PageId = uint32_t;
inline constexpr PageId kNoPage = UINT32_MAX;

}  // namespace dfil

#endif  // DFIL_COMMON_TYPES_H_
