// Deterministic pseudo-random number generation.
//
// Every source of randomness in the simulator (message loss, adaptive workloads, test sweeps)
// draws from an explicitly seeded SplitMix64 stream so that runs are bit-for-bit reproducible.
#ifndef DFIL_COMMON_RNG_H_
#define DFIL_COMMON_RNG_H_

#include <cstdint>

namespace dfil {

// SplitMix64: tiny, fast, and statistically solid for simulation purposes.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  // Returns the next 64 pseudo-random bits.
  uint64_t NextU64() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  // Returns a double uniformly distributed in [0, 1).
  double NextDouble() { return static_cast<double>(NextU64() >> 11) * 0x1.0p-53; }

  // Returns an integer uniformly distributed in [0, bound). `bound` must be positive.
  uint64_t NextBounded(uint64_t bound) { return NextU64() % bound; }

  // Returns true with probability `p` (clamped to [0, 1]).
  bool NextBernoulli(double p) {
    if (p <= 0.0) {
      return false;
    }
    if (p >= 1.0) {
      return true;
    }
    return NextDouble() < p;
  }

  // Derives an independent stream; used to give each node / subsystem its own generator.
  Rng Fork() { return Rng(NextU64() ^ 0xd1b54a32d192ed03ULL); }

 private:
  uint64_t state_;
};

}  // namespace dfil

#endif  // DFIL_COMMON_RNG_H_
