// Byte-order-free POD serialization for message payloads.
//
// All simulated nodes live in one process, so messages use native layout; readers CHECK against
// truncation so malformed payloads fail loudly.
#ifndef DFIL_NET_WIRE_H_
#define DFIL_NET_WIRE_H_

#include <cstddef>
#include <cstring>
#include <span>
#include <type_traits>
#include <vector>

#include "src/common/check.h"

namespace dfil::net {

using Payload = std::vector<std::byte>;

class WireWriter {
 public:
  template <typename T>
  void Put(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    const size_t old = buf_.size();
    buf_.resize(old + sizeof(T));
    std::memcpy(buf_.data() + old, &value, sizeof(T));
  }

  void PutBytes(const void* data, size_t len) {
    if (len == 0) {
      return;  // empty payloads may come with a null pointer; memcpy(p, nullptr, 0) is UB
    }
    const size_t old = buf_.size();
    buf_.resize(old + len);
    std::memcpy(buf_.data() + old, data, len);
  }

  size_t size() const { return buf_.size(); }
  Payload Take() { return std::move(buf_); }

 private:
  Payload buf_;
};

class WireReader {
 public:
  explicit WireReader(std::span<const std::byte> data) : data_(data) {}

  template <typename T>
  T Get() {
    static_assert(std::is_trivially_copyable_v<T>);
    DFIL_CHECK_LE(pos_ + sizeof(T), data_.size());
    T value;
    std::memcpy(&value, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  void GetBytes(void* out, size_t len) {
    if (len == 0) {
      return;
    }
    DFIL_CHECK_LE(pos_ + len, data_.size());
    std::memcpy(out, data_.data() + pos_, len);
    pos_ += len;
  }

  std::span<const std::byte> Rest() const { return data_.subspan(pos_); }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  std::span<const std::byte> data_;
  size_t pos_ = 0;
};

}  // namespace dfil::net

#endif  // DFIL_NET_WIRE_H_
