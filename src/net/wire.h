// Byte-order-free POD serialization for message payloads.
//
// All simulated nodes live in one process, so messages use native layout; readers CHECK against
// truncation so malformed payloads fail loudly.
#ifndef DFIL_NET_WIRE_H_
#define DFIL_NET_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <type_traits>
#include <vector>

#include "src/common/check.h"

namespace dfil::net {

using Payload = std::vector<std::byte>;

class WireWriter {
 public:
  template <typename T>
  void Put(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    const size_t old = buf_.size();
    buf_.resize(old + sizeof(T));
    std::memcpy(buf_.data() + old, &value, sizeof(T));
  }

  void PutBytes(const void* data, size_t len) {
    if (len == 0) {
      return;  // empty payloads may come with a null pointer; memcpy(p, nullptr, 0) is UB
    }
    const size_t old = buf_.size();
    buf_.resize(old + len);
    std::memcpy(buf_.data() + old, data, len);
  }

  size_t size() const { return buf_.size(); }
  Payload Take() { return std::move(buf_); }

 private:
  Payload buf_;
};

class WireReader {
 public:
  explicit WireReader(std::span<const std::byte> data) : data_(data) {}

  template <typename T>
  T Get() {
    static_assert(std::is_trivially_copyable_v<T>);
    DFIL_CHECK_LE(pos_ + sizeof(T), data_.size());
    T value;
    std::memcpy(&value, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  void GetBytes(void* out, size_t len) {
    if (len == 0) {
      return;
    }
    DFIL_CHECK_LE(pos_ + len, data_.size());
    std::memcpy(out, data_.data() + pos_, len);
    pos_ += len;
  }

  std::span<const std::byte> Rest() const { return data_.subspan(pos_); }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  std::span<const std::byte> data_;
  size_t pos_ = 0;
};

// --- Multiple-writer diff wire format (Service::kDiffMerge) ------------------------------------
//
// At a synchronization point a diff-protocol writer run-length-encodes the bytes that differ
// between each twinned page and its twin, and sends one kDiffMerge request per home node:
//
//   DiffMergeHeader { epoch, npages }
//   npages x ( DiffPageHeader { page, nruns }  then  nruns x ( DiffRun { offset, len } + bytes ) )
//
// `epoch` is the sender's sync-point counter; the home node applies a (sender, epoch) pair at
// most once, which makes the service idempotent under duplication and retransmission.

struct DiffMergeHeader {
  uint64_t epoch;
  uint16_t npages;
};

struct DiffPageHeader {
  uint32_t page;  // PageId
  uint16_t nruns;
};

// One run of modified bytes within a page; `len` payload bytes follow the header on the wire.
struct DiffRun {
  uint16_t offset;
  uint16_t len;
};

// Scans `cur` against `twin` and returns the runs of differing bytes. Gaps shorter than
// `min_gap` equal bytes are absorbed into the surrounding run: each run costs a DiffRun header
// on the wire, so shipping a few unchanged bytes beats splitting the run.
inline std::vector<DiffRun> DiffPageRuns(const std::byte* twin, const std::byte* cur,
                                         size_t page_size, size_t min_gap = 8) {
  DFIL_CHECK_LE(page_size, size_t{65535}) << "diff runs use 16-bit offsets";
  std::vector<DiffRun> runs;
  size_t i = 0;
  while (i < page_size) {
    if (twin[i] == cur[i]) {
      ++i;
      continue;
    }
    const size_t start = i;
    size_t last_diff = i;
    ++i;
    while (i < page_size && i - last_diff <= min_gap) {
      if (twin[i] != cur[i]) {
        last_diff = i;
      }
      ++i;
    }
    runs.push_back(DiffRun{static_cast<uint16_t>(start),
                           static_cast<uint16_t>(last_diff - start + 1)});
    i = last_diff + 1;
  }
  return runs;
}

}  // namespace dfil::net

#endif  // DFIL_NET_WIRE_H_
