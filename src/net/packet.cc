#include "src/net/packet.h"

#include <utility>

#include "src/common/check.h"
#include "src/common/log.h"

namespace dfil::net {

const char* ServiceName(Service service) {
  switch (service) {
    case Service::kPageRequest:
      return "page_request";
    case Service::kInvalidate:
      return "invalidate";
    case Service::kBulkPageRequest:
      return "bulk_page_request";
    case Service::kDiffMerge:
      return "diff_merge";
    case Service::kDiffMergeGated:
      return "diff_merge_gated";
    case Service::kRehomePages:
      return "rehome_pages";
    case Service::kReduceUp:
      return "reduce_up";
    case Service::kReduceDone:
      return "reduce_done";
    case Service::kForkShip:
      return "fork_ship";
    case Service::kJoinResult:
      return "join_result";
    case Service::kStealWork:
      return "steal_work";
    case Service::kTerminate:
      return "terminate";
    case Service::kFilamentMigrate:
      return "filament_migrate";
    case Service::kAppData:
      return "app_data";
    case Service::kTestEcho:
      return "test_echo";
    case Service::kTestMutate:
      return "test_mutate";
  }
  return "unknown";
}

PacketEndpoint::PacketEndpoint(sim::Machine* machine, NodeId self, PacketConfig config,
                               ChargeFn charge, ClockFn clock)
    : machine_(machine),
      self_(self),
      config_(config),
      charge_(std::move(charge)),
      clock_(std::move(clock)) {}

PacketEndpoint::~PacketEndpoint() {
  for (auto& [id, out] : outstanding_) {
    out.timer.Cancel();
  }
  for (auto& [id, rep] : pending_replies_) {
    rep.timer.Cancel();
  }
  for (auto& [dst, q] : queues_) {
    if (q.hold_armed) {
      q.hold_timer.Cancel();
    }
  }
  if (flush_event_pending_) {
    flush_event_.Cancel();
  }
}

void PacketEndpoint::RegisterService(Service service, ServiceFn fn, bool idempotent,
                                     TimeCategory recv_category) {
  auto [it, inserted] = services_.emplace(static_cast<uint16_t>(service),
                                          ServiceEntry{std::move(fn), idempotent, recv_category});
  DFIL_CHECK(inserted) << "service registered twice: " << static_cast<int>(service);
}

void PacketEndpoint::RegisterRawHandler(Service service, RawFn fn, TimeCategory recv_category) {
  auto [it, inserted] = raw_handlers_.emplace(static_cast<uint16_t>(service),
                                              RawEntry{std::move(fn), recv_category});
  DFIL_CHECK(inserted) << "raw handler registered twice: " << static_cast<int>(service);
}

void PacketEndpoint::Transmit(NodeId dst, Kind kind, Service service, uint64_t req_id,
                              const Payload& body, TimeCategory charge_as, uint64_t trace) {
  // Kind and sim::MsgClass share the wire numbering so fault rules can filter on the class.
  static_assert(static_cast<uint8_t>(Kind::kRequest) ==
                static_cast<uint8_t>(sim::MsgClass::kRequest));
  static_assert(static_cast<uint8_t>(Kind::kReply) == static_cast<uint8_t>(sim::MsgClass::kReply));
  static_assert(static_cast<uint8_t>(Kind::kRaw) == static_cast<uint8_t>(sim::MsgClass::kRaw));
  static_assert(static_cast<uint8_t>(Kind::kAck) == static_cast<uint8_t>(sim::MsgClass::kAck));
  static_assert(static_cast<uint8_t>(Kind::kPacked) ==
                static_cast<uint8_t>(sim::MsgClass::kPacked));
  if (coalesce_.enabled) {
    // Critical frame: queued, then flushed by the same-clock flush event (or MTU pressure).
    Enqueue(dst, kind, service, req_id, body, charge_as, trace, /*held=*/false, 0);
    return;
  }
  charge_(charge_as, machine_->costs().msg_send_overhead);
  sent_by_service_[static_cast<uint16_t>(service)]++;
  WireWriter w;
  w.Put(Header{kind, static_cast<uint16_t>(service), req_id, trace});
  w.PutBytes(body.data(), body.size());
  RecordDatagram(w.size(), 1);
  sim::Datagram d;
  d.src = self_;
  d.dst = dst;
  d.type = static_cast<uint32_t>(service);
  d.klass = static_cast<sim::MsgClass>(kind);
  d.trace = trace;
  d.payload = w.Take();
  machine_->Send(std::move(d), clock_());
}

namespace {
// A packed frame on the wire: a uint32 length prefix, then a full legacy Header + body.
constexpr size_t kFrameLenBytes = sizeof(uint32_t);
}  // namespace

void PacketEndpoint::Enqueue(NodeId dst, Kind kind, Service service, uint64_t req_id,
                             const Payload& body, TimeCategory charge_as, uint64_t trace,
                             bool held, SimTime hold_for) {
  DstQueue& q = queues_[dst];
  const size_t frame_bytes = kFrameLenBytes + sizeof(Header) + body.size();
  // MTU flush: packing this frame would overflow the datagram, so flush what is queued first.
  // A single frame bigger than the MTU still goes out (as a singleton legacy datagram).
  if (q.bytes > 0 && sizeof(Header) + q.bytes + frame_bytes > coalesce_.max_datagram_bytes) {
    FlushQueue(dst);
  }
  const bool was_empty = (q.bytes == 0);
  // The first frame into an empty queue pays the full send overhead; later frames only the
  // marginal pack cost. Logical per-service message counts are unchanged by coalescing.
  charge_(charge_as, was_empty ? machine_->costs().msg_send_overhead
                               : machine_->costs().coalesce_frame_send);
  if (!was_empty) {
    stats_.frames_coalesced++;
  }
  sent_by_service_[static_cast<uint16_t>(service)]++;
  q.bytes += frame_bytes;
  QueuedFrame frame{kind, service, req_id, body, trace};
  if (held) {
    q.held.push_back(std::move(frame));
    if (!q.hold_armed) {
      q.hold_armed = true;
      q.hold_timer = machine_->ScheduleTimer(self_, clock_() + hold_for, [this, dst] {
        charge_(TimeCategory::kSyncOverhead, machine_->costs().timer_overhead);
        Flush(dst);
      });
    }
  } else {
    q.batch.push_back(std::move(frame));
    ScheduleFlushEvent();
  }
}

bool PacketEndpoint::ShouldHold(NodeId dst, Service service) const {
  if (service == Service::kDiffMergeGated) {
    return true;  // rides the reduce-up frame of the same sync point
  }
  if (!coalesce_.hold_requests) {
    return false;
  }
  if (service != Service::kPageRequest && service != Service::kBulkPageRequest) {
    return false;
  }
  // Asymmetric mutual-peer hold: only the higher-numbered node holds, so its request can ride on
  // the reply it owes the lower-numbered peer — the peer's own request flows immediately.
  if (self_ <= dst) {
    return false;
  }
  auto it = last_req_from_.find(dst);
  if (it == last_req_from_.end()) {
    return false;
  }
  const SimTime age = clock_() - it->second;
  // Just-served filter: a request that arrived within the last hold window has already been
  // answered (serving is synchronous), so the peer's NEXT request — the only carrier this hold
  // could ride on — is a full exchange period away. Holding would stall this fetch for the whole
  // hold and still flush alone; send it now instead.
  if (age < coalesce_.request_hold) {
    return false;
  }
  return age <= coalesce_.mutual_window;
}

void PacketEndpoint::ScheduleFlushEvent() {
  if (flush_event_pending_) {
    return;
  }
  flush_event_pending_ = true;
  // Scheduled at the current clock: Machine::Run dispatches an event due at exactly a node's
  // clock before resuming the node, so every critical frame enqueued at this instant — however
  // many handlers run back to back — is packed before the node executes any further.
  flush_event_ = machine_->ScheduleTimer(self_, clock_(), [this] {
    flush_event_pending_ = false;
    FlushBatches();
  });
}

void PacketEndpoint::FlushBatches() {
  std::vector<NodeId> dsts;
  for (auto& [dst, q] : queues_) {
    if (!q.batch.empty()) {
      dsts.push_back(dst);
    }
  }
  for (NodeId dst : dsts) {
    FlushQueue(dst);
  }
}

void PacketEndpoint::Flush(NodeId dst) {
  if (queues_.count(dst) != 0) {
    FlushQueue(dst);
  }
}

void PacketEndpoint::FlushQueue(NodeId dst) {
  auto it = queues_.find(dst);
  if (it == queues_.end()) {
    return;
  }
  DstQueue& q = it->second;
  if (q.held.empty() && q.batch.empty()) {
    return;
  }
  if (q.hold_armed) {
    q.hold_timer.Cancel();
    q.hold_armed = false;
  }
  // Held frames serialize first: they were enqueued earlier in program order (e.g. a gated diff
  // merge dispatches before the reduce-up it piggybacks on).
  std::vector<QueuedFrame> frames = std::move(q.held);
  frames.insert(frames.end(), std::make_move_iterator(q.batch.begin()),
                std::make_move_iterator(q.batch.end()));
  q.held.clear();
  q.batch.clear();
  q.bytes = 0;
  SendFrames(dst, frames);
}

void PacketEndpoint::SendFrames(NodeId dst, std::vector<QueuedFrame>& frames) {
  sim::Datagram d;
  d.src = self_;
  d.dst = dst;
  WireWriter w;
  if (frames.size() == 1) {
    // A singleton flush uses the legacy wire format — byte-identical to an uncoalesced send.
    QueuedFrame& f = frames[0];
    w.Put(Header{f.kind, static_cast<uint16_t>(f.service), f.req_id, f.trace});
    w.PutBytes(f.body.data(), f.body.size());
    d.type = static_cast<uint32_t>(f.service);
    d.klass = static_cast<sim::MsgClass>(f.kind);
    d.trace = f.trace;
  } else {
    w.Put(Header{Kind::kPacked, 0, static_cast<uint64_t>(frames.size()), 0});
    for (QueuedFrame& f : frames) {
      w.Put(static_cast<uint32_t>(sizeof(Header) + f.body.size()));
      w.Put(Header{f.kind, static_cast<uint16_t>(f.service), f.req_id, f.trace});
      w.PutBytes(f.body.data(), f.body.size());
    }
    d.type = 0;
    d.klass = sim::MsgClass::kPacked;
    d.trace = frames[0].trace;
    if (tracer_ != nullptr && tracer_->enabled()) {
      tracer_->Instant("net", "coalesce " + std::to_string(frames.size()) + "f -> n" +
                                  std::to_string(dst));
    }
  }
  RecordDatagram(w.size(), frames.size());
  d.payload = w.Take();
  machine_->Send(std::move(d), clock_());
}

void PacketEndpoint::RecordDatagram(size_t payload_bytes, size_t nframes) {
  stats_.datagrams_sent++;
  size_t framed = payload_bytes + machine_->costs().frame_overhead_bytes;
  if (framed < machine_->costs().min_frame_bytes) {
    framed = machine_->costs().min_frame_bytes;
  }
  stats_.wire_bytes += framed;
  if (metrics_ != nullptr) {
    metrics_->Hist("net.frames_per_datagram").Record(static_cast<double>(nframes));
    metrics_->Hist("net.bytes_per_datagram").Record(static_cast<double>(framed));
  }
}

uint64_t PacketEndpoint::SendRequest(NodeId dst, Service service, Payload body, ReplyFn on_reply,
                                     TimeCategory charge_as, size_t expected_reply_bytes) {
  DFIL_CHECK_NE(dst, self_);
  const uint64_t req_id = next_req_id_++;
  Outstanding out;
  out.dst = dst;
  out.service = service;
  out.body = body;
  out.on_reply = std::move(on_reply);
  out.timeout = InitialTimeout(dst, expected_reply_bytes);
  if (coalesce_.enabled &&
      (service == Service::kDiffMerge || service == Service::kDiffMergeGated ||
       (coalesce_.elide_reduce_replies && service == Service::kReduceUp)) &&
      out.timeout < coalesce_.elided_ack_timeout) {
    // Sync-point traffic: a gated merge's or reduce-up's ack is elided (the barrier done stands
    // in, arriving an epoch later), and a plain merge's ack queues behind every peer's flush
    // wave at the home. Keep these timers as loss backstops — an RTT-scale RTO retransmits
    // spuriously into the very congestion that delayed the ack.
    out.timeout = coalesce_.elided_ack_timeout;
  }
  out.sent_at = clock_();
  out.expected_reply_bytes = expected_reply_bytes;
  out.attempts = 1;
  out.charge_as = charge_as;
  out.trace = CurTrace();
  stats_.requests_sent++;
  if (metrics_ != nullptr) {
    // Depth of the outstanding-request pipeline including this one: how many replies this node is
    // waiting on whenever it issues a request (a proxy for remote serve-queue pressure).
    metrics_->Hist("net.serve_queue_depth").Record(static_cast<double>(outstanding_.size() + 1));
  }
  if (coalesce_.enabled && ShouldHold(dst, service)) {
    Enqueue(dst, Kind::kRequest, service, req_id, body, charge_as, out.trace, /*held=*/true,
            coalesce_.request_hold);
  } else {
    Transmit(dst, Kind::kRequest, service, req_id, body, charge_as, out.trace);
  }
  outstanding_.emplace(req_id, std::move(out));
  ArmTimer(req_id);
  return req_id;
}

void PacketEndpoint::CancelRequest(uint64_t req_id) {
  auto it = outstanding_.find(req_id);
  if (it == outstanding_.end()) {
    return;
  }
  it->second.timer.Cancel();
  outstanding_.erase(it);
  stats_.requests_canceled++;
}

void PacketEndpoint::ElideCurrentReply() { elide_current_reply_ = true; }

SimTime PacketEndpoint::InitialTimeout(NodeId dst, size_t expected_reply_bytes) const {
  if (!coalesce_.enabled) {
    return config_.retransmit_timeout;  // the paper's fixed timeout; schedules byte-identical
  }
  SimTime rto = config_.retransmit_timeout;
  auto it = peer_rtt_.find(dst);
  if (it != peer_rtt_.end() && it->second.valid) {
    rto = it->second.srtt + 4 * it->second.rttvar;
    if (rto < config_.rto_min) {
      rto = config_.rto_min;
    }
    if (rto > config_.retransmit_timeout_max) {
      rto = config_.retransmit_timeout_max;
    }
  }
  if (expected_reply_bytes > 0) {
    // A large reply can be queued behind every peer's large reply on the shared wire; an RTO
    // learned from short exchanges would retransmit spuriously (and each retransmission rebuilds
    // the whole reply). Floor at the worst-case fully-serialized transfer time.
    const SimTime floor_t = machine_->costs().WireTime(expected_reply_bytes) *
                            static_cast<SimTime>(machine_->num_nodes());
    if (rto < floor_t) {
      rto = floor_t;
    }
  }
  return rto;
}

void PacketEndpoint::UpdateRtt(NodeId src, const Outstanding& out) {
  if (out.attempts != 1) {
    return;  // Karn's rule: a retransmitted exchange yields an ambiguous sample
  }
  const SimTime sample = clock_() - out.sent_at;
  PeerRtt& p = peer_rtt_[src];
  if (!p.valid) {
    p.srtt = sample;
    p.rttvar = sample / 2;
    p.valid = true;
  } else {
    const SimTime err = sample > p.srtt ? sample - p.srtt : p.srtt - sample;
    p.rttvar = (3 * p.rttvar + err) / 4;
    p.srtt = (7 * p.srtt + sample) / 8;
  }
  if (metrics_ != nullptr) {
    SimTime rto = p.srtt + 4 * p.rttvar;
    if (rto < config_.rto_min) {
      rto = config_.rto_min;
    }
    if (rto > config_.retransmit_timeout_max) {
      rto = config_.retransmit_timeout_max;
    }
    metrics_->Hist("net.rto_us").Record(ToMicroseconds(rto));
  }
}

void PacketEndpoint::ArmTimer(uint64_t req_id) {
  auto it = outstanding_.find(req_id);
  DFIL_CHECK(it != outstanding_.end());
  it->second.timer =
      machine_->ScheduleTimer(self_, clock_() + it->second.timeout, [this, req_id] {
        OnTimeout(req_id);
      });
}

void PacketEndpoint::OnTimeout(uint64_t req_id) {
  auto it = outstanding_.find(req_id);
  if (it == outstanding_.end()) {
    return;  // reply arrived while the timer event was in flight
  }
  Outstanding& out = it->second;
  DFIL_CHECK_LT(out.attempts, config_.retransmit_limit)
      << "Packet: request " << req_id << " to node " << out.dst << " (service "
      << static_cast<int>(out.service) << ") exceeded the retransmission limit";
  charge_(out.charge_as, machine_->costs().timer_overhead);
  DFIL_LOG(kDebug, "packet") << "node " << self_ << " retransmit req " << req_id << " to "
                             << out.dst << " attempt " << out.attempts + 1;
  out.attempts++;
  stats_.retransmissions++;
  machine_->net_stats().retransmissions++;
  if (waitstate_ != nullptr) {
    // The stall so far: the exchange has been outstanding since its first transmission.
    waitstate_->Record(WaitKind::kRetransmit, static_cast<uint64_t>(out.service), out.sent_at,
                       clock_());
  }
  if (tracer_ != nullptr && tracer_->enabled()) {
    tracer_->Instant("net", std::string("retx ") + ServiceName(out.service) + " -> n" +
                                std::to_string(out.dst));
  }
  Transmit(out.dst, Kind::kRequest, out.service, req_id, out.body, out.charge_as, out.trace);
  // Exponential backoff, capped.
  out.timeout = std::min<SimTime>(out.timeout * 2, config_.retransmit_timeout_max);
  ArmTimer(req_id);
}

void PacketEndpoint::SendRaw(NodeId dst, Service service, Payload body, TimeCategory charge_as) {
  stats_.raw_sent++;
  Transmit(dst, Kind::kRaw, service, 0, body, charge_as, CurTrace());
}

void PacketEndpoint::BroadcastRaw(Service service, Payload body, TimeCategory charge_as) {
  // Broadcasts cannot be packed per destination; they go out immediately even when coalescing.
  stats_.raw_sent++;
  charge_(charge_as, machine_->costs().msg_send_overhead);
  sent_by_service_[static_cast<uint16_t>(service)]++;
  const uint64_t trace = CurTrace();
  WireWriter w;
  w.Put(Header{Kind::kRaw, static_cast<uint16_t>(service), 0, trace});
  w.PutBytes(body.data(), body.size());
  RecordDatagram(w.size(), 1);
  sim::Datagram d;
  d.src = self_;
  d.dst = sim::kBroadcastDst;
  d.type = static_cast<uint32_t>(service);
  d.klass = sim::MsgClass::kRaw;
  d.trace = trace;
  d.payload = w.Take();
  machine_->Broadcast(std::move(d), clock_());
}

void PacketEndpoint::OnDatagram(sim::Datagram d) {
  if (coalesce_.enabled && flush_event_pending_) {
    // Drain queued critical frames before handling this interrupt. The same-clock flush event is
    // ordered by due time, so under back-to-back deliveries (a home node serving a request wave)
    // it would otherwise starve behind every already-due datagram — batching each reply behind
    // the NEXT serve's receive+serve charges and adding a per-exchange latency the direct send
    // path never had. The real kernel finishes the sendto() before taking the next SIGIO; model
    // that. The event stays armed and fires later as a no-op on the emptied queues.
    FlushBatches();
  }
  WireReader r(d.payload);
  const Header h = r.Get<Header>();
  if (h.kind == Kind::kPacked) {
    // Unpack and dispatch each frame in order. Unpacking is stateless, so a duplicated packed
    // datagram re-dispatches every frame and each frame's own idempotence handling (duplicate
    // request re-serve, duplicate reply drop) applies exactly as for singleton datagrams.
    const size_t nframes = static_cast<size_t>(h.req_id);
    DFIL_CHECK_GE(nframes, size_t{2}) << "packed datagram with fewer than two frames";
    for (size_t i = 0; i < nframes; ++i) {
      const size_t len = r.Get<uint32_t>();
      DFIL_CHECK_GE(len, sizeof(Header)) << "corrupt packed frame";
      Payload frame_bytes(len);
      r.GetBytes(frame_bytes.data(), len);
      WireReader fr(frame_bytes);
      const Header fh = fr.Get<Header>();
      Payload body(fr.Rest().begin(), fr.Rest().end());
      DispatchFrame(d.src, fh, std::move(body), /*first=*/i == 0);
    }
    DFIL_CHECK_EQ(r.remaining(), size_t{0}) << "trailing bytes after packed frames";
    return;
  }
  Payload body(r.Rest().begin(), r.Rest().end());
  DispatchFrame(d.src, h, std::move(body), /*first=*/true);
}

void PacketEndpoint::DispatchFrame(NodeId src, const Header& h, Payload body, bool first) {
  // The first frame of a datagram pays the full receive overhead (SIGIO + syscall + copy); later
  // frames only the marginal unpack-and-dispatch cost.
  const SimTime recv_cost =
      first ? machine_->costs().msg_recv_overhead : machine_->costs().coalesce_frame_recv;
  // Handlers run under the incoming message's causal trace id, so every nested send — the reply,
  // a redirect chase, an invalidation round — inherits the originating fault's id.
  TraceContext trace_ctx(tracer_, h.trace);
  switch (h.kind) {
    case Kind::kRequest: {
      auto it = services_.find(h.service);
      DFIL_CHECK(it != services_.end())
          << "node " << self_ << ": no service " << h.service;
      charge_(it->second.recv_category, recv_cost);
      if (coalesce_.enabled && (static_cast<Service>(h.service) == Service::kPageRequest ||
                                static_cast<Service>(h.service) == Service::kBulkPageRequest)) {
        last_req_from_[src] = clock_();  // drives the mutual-peer hold heuristic
      }
      HandleRequest(src, h.req_id, static_cast<Service>(h.service), std::move(body));
      return;
    }
    case Kind::kReply: {
      auto out = outstanding_.find(h.req_id);
      charge_(out != outstanding_.end() ? out->second.charge_as : TimeCategory::kSyncOverhead,
              recv_cost);
      HandleReply(src, h.req_id, std::move(body));
      return;
    }
    case Kind::kRaw: {
      auto it = raw_handlers_.find(h.service);
      DFIL_CHECK(it != raw_handlers_.end())
          << "node " << self_ << ": no raw handler for service " << h.service;
      charge_(it->second.recv_category, recv_cost);
      it->second.fn(src, std::move(body));
      return;
    }
    case Kind::kAck: {
      charge_(TimeCategory::kSyncOverhead, recv_cost);
      auto it = pending_replies_.find({src, h.req_id});
      if (it != pending_replies_.end()) {
        it->second.timer.Cancel();
        pending_replies_.erase(it);
      }
      return;
    }
    case Kind::kPacked:
      break;  // nested packing is not produced; fall through to the corrupt-kind check
  }
  DFIL_CHECK(false) << "corrupt packet kind";
}

void PacketEndpoint::HandleRequest(NodeId src, uint64_t req_id, Service service, Payload body) {
  ServiceEntry& entry = services_.find(static_cast<uint16_t>(service))->second;

  if (!entry.idempotent) {
    // Ignore mutating requests while this node is inside a critical section; the requester's
    // retransmission will retry (paper §3: entry/exit are a single assignment, ignored messages
    // are recovered by Packet).
    if (in_critical_section && in_critical_section()) {
      stats_.deferred_requests++;
      machine_->net_stats().deferred_requests++;
      return;
    }
    // Duplicate of a request we already served: re-send the cached reply rather than re-running
    // the (mutating) service.
    auto cached = response_cache_.find({src, req_id});
    if (cached != response_cache_.end()) {
      stats_.duplicate_requests++;
      stats_.replies_sent++;
      Transmit(src, Kind::kReply, service, req_id, cached->second.body,
               TimeCategory::kSyncOverhead, CurTrace());
      return;
    }
  }
  if (config_.ack_replies && pending_replies_.count({src, req_id}) != 0) {
    // TCP-like mode: the original reply is still buffered (its ack is pending); the timer-driven
    // retransmission covers this duplicate request.
    stats_.duplicate_requests++;
    return;
  }

  elide_current_reply_ = false;
  std::optional<Payload> reply = entry.fn(src, WireReader(body));
  if (!reply.has_value()) {
    elide_current_reply_ = false;
    stats_.deferred_requests++;
    machine_->net_stats().deferred_requests++;
    return;
  }
  if (entry.idempotent) {
    // No reply buffering for idempotent services: a retransmitted request re-runs the service and
    // the reply is rebuilt from current state. Record which it was (Figure 3a vs 3c).
    if (served_requests_.insert({src, req_id}).second) {
      stats_.replies_first_serve++;
      served_fifo_.push_back({src, req_id});
      while (served_fifo_.size() > kServedIdsCap) {
        served_requests_.erase(served_fifo_.front());
        served_fifo_.pop_front();
      }
    } else {
      stats_.replies_rebuilt++;
    }
  }
  if (elide_current_reply_) {
    // The service asked for its (idempotent) reply to be suppressed: a later frame — e.g. the
    // barrier done broadcast — carries the information instead. The request still counts as
    // served, so a retransmission rebuilds and the requester's retransmit timer still covers
    // loss of the standing-in frame.
    DFIL_CHECK(entry.idempotent) << "reply elision is only valid for idempotent services";
    elide_current_reply_ = false;
    stats_.replies_elided++;
    return;
  }
  if (!entry.idempotent) {
    const SimTime expires =
        clock_() + config_.retransmit_timeout * config_.response_cache_timeouts;
    response_cache_[{src, req_id}] = CachedReply{*reply, expires};
    cache_fifo_.push_back({src, req_id});
    // Evict in FIFO order: anything expired, plus the oldest entries beyond the size cap. A
    // requester that still needed an evicted reply will re-run into the duplicate path and, for
    // the rare non-idempotent case, the CHECK below the service catches it loudly in tests.
    while (!cache_fifo_.empty() &&
           (cache_fifo_.size() > kResponseCacheCap ||
            response_cache_[cache_fifo_.front()].expires < clock_())) {
      response_cache_.erase(cache_fifo_.front());
      cache_fifo_.pop_front();
    }
  }
  stats_.replies_sent++;
  if (config_.ack_replies) {
    SendReplyBuffered(src, service, req_id, std::move(*reply));
  } else {
    Transmit(src, Kind::kReply, service, req_id, *reply, TimeCategory::kSyncOverhead, CurTrace());
  }
}

void PacketEndpoint::HandleReply(NodeId src, uint64_t req_id, Payload body) {
  if (config_.ack_replies) {
    // TCP-like mode: explicitly acknowledge every reply (duplicates included, or the replier
    // would retransmit its buffered copy forever). With coalescing on the ack is held so it can
    // piggyback on any outgoing frame to the same peer; pure-ack datagrams nearly vanish.
    stats_.acks_sent++;
    if (coalesce_.enabled) {
      Enqueue(src, Kind::kAck, static_cast<Service>(0), req_id, {}, TimeCategory::kSyncOverhead,
              CurTrace(), /*held=*/true, coalesce_.ack_hold);
    } else {
      Transmit(src, Kind::kAck, static_cast<Service>(0), req_id, {}, TimeCategory::kSyncOverhead,
               CurTrace());
    }
  }
  auto it = outstanding_.find(req_id);
  if (it == outstanding_.end()) {
    stats_.duplicate_replies++;  // late duplicate (Figure 3d); drop it
    return;
  }
  UpdateRtt(src, it->second);
  it->second.timer.Cancel();
  ReplyFn on_reply = std::move(it->second.on_reply);
  outstanding_.erase(it);
  if (on_reply) {
    on_reply(std::move(body));
  }
}

void PacketEndpoint::SendReplyBuffered(NodeId dst, Service service, uint64_t req_id,
                                       Payload body) {
  Transmit(dst, Kind::kReply, service, req_id, body, TimeCategory::kSyncOverhead, CurTrace());
  PendingReply rep;
  rep.dst = dst;
  rep.service = service;
  rep.body = std::move(body);
  rep.trace = CurTrace();
  rep.timer = machine_->ScheduleTimer(self_, clock_() + config_.retransmit_timeout,
                                      [this, dst, req_id] { OnReplyTimeout(dst, req_id); });
  pending_replies_[{dst, req_id}] = std::move(rep);
}

void PacketEndpoint::OnReplyTimeout(NodeId dst, uint64_t req_id) {
  auto it = pending_replies_.find({dst, req_id});
  if (it == pending_replies_.end()) {
    return;
  }
  PendingReply& rep = it->second;
  DFIL_CHECK_LT(rep.attempts, config_.retransmit_limit) << "buffered reply never acknowledged";
  rep.attempts++;
  stats_.reply_retransmissions++;
  charge_(TimeCategory::kSyncOverhead, machine_->costs().timer_overhead);
  Transmit(rep.dst, Kind::kReply, rep.service, req_id, rep.body, TimeCategory::kSyncOverhead,
           rep.trace);
  rep.timer = machine_->ScheduleTimer(self_, clock_() + config_.retransmit_timeout,
                                      [this, dst, req_id] { OnReplyTimeout(dst, req_id); });
}

}  // namespace dfil::net
