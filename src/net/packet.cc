#include "src/net/packet.h"

#include <utility>

#include "src/common/check.h"
#include "src/common/log.h"

namespace dfil::net {

const char* ServiceName(Service service) {
  switch (service) {
    case Service::kPageRequest:
      return "page_request";
    case Service::kInvalidate:
      return "invalidate";
    case Service::kBulkPageRequest:
      return "bulk_page_request";
    case Service::kDiffMerge:
      return "diff_merge";
    case Service::kReduceUp:
      return "reduce_up";
    case Service::kReduceDone:
      return "reduce_done";
    case Service::kForkShip:
      return "fork_ship";
    case Service::kJoinResult:
      return "join_result";
    case Service::kStealWork:
      return "steal_work";
    case Service::kTerminate:
      return "terminate";
    case Service::kAppData:
      return "app_data";
    case Service::kTestEcho:
      return "test_echo";
    case Service::kTestMutate:
      return "test_mutate";
  }
  return "unknown";
}

PacketEndpoint::PacketEndpoint(sim::Machine* machine, NodeId self, PacketConfig config,
                               ChargeFn charge, ClockFn clock)
    : machine_(machine),
      self_(self),
      config_(config),
      charge_(std::move(charge)),
      clock_(std::move(clock)) {}

PacketEndpoint::~PacketEndpoint() {
  for (auto& [id, out] : outstanding_) {
    out.timer.Cancel();
  }
  for (auto& [id, rep] : pending_replies_) {
    rep.timer.Cancel();
  }
}

void PacketEndpoint::RegisterService(Service service, ServiceFn fn, bool idempotent,
                                     TimeCategory recv_category) {
  auto [it, inserted] = services_.emplace(static_cast<uint16_t>(service),
                                          ServiceEntry{std::move(fn), idempotent, recv_category});
  DFIL_CHECK(inserted) << "service registered twice: " << static_cast<int>(service);
}

void PacketEndpoint::RegisterRawHandler(Service service, RawFn fn, TimeCategory recv_category) {
  auto [it, inserted] = raw_handlers_.emplace(static_cast<uint16_t>(service),
                                              RawEntry{std::move(fn), recv_category});
  DFIL_CHECK(inserted) << "raw handler registered twice: " << static_cast<int>(service);
}

void PacketEndpoint::Transmit(NodeId dst, Kind kind, Service service, uint64_t req_id,
                              const Payload& body, TimeCategory charge_as, uint64_t trace) {
  // Kind and sim::MsgClass share the wire numbering so fault rules can filter on the class.
  static_assert(static_cast<uint8_t>(Kind::kRequest) ==
                static_cast<uint8_t>(sim::MsgClass::kRequest));
  static_assert(static_cast<uint8_t>(Kind::kReply) == static_cast<uint8_t>(sim::MsgClass::kReply));
  static_assert(static_cast<uint8_t>(Kind::kRaw) == static_cast<uint8_t>(sim::MsgClass::kRaw));
  static_assert(static_cast<uint8_t>(Kind::kAck) == static_cast<uint8_t>(sim::MsgClass::kAck));
  charge_(charge_as, machine_->costs().msg_send_overhead);
  sent_by_service_[static_cast<uint16_t>(service)]++;
  WireWriter w;
  w.Put(Header{kind, static_cast<uint16_t>(service), req_id, trace});
  w.PutBytes(body.data(), body.size());
  sim::Datagram d;
  d.src = self_;
  d.dst = dst;
  d.type = static_cast<uint32_t>(service);
  d.klass = static_cast<sim::MsgClass>(kind);
  d.trace = trace;
  d.payload = w.Take();
  machine_->Send(std::move(d), clock_());
}

uint64_t PacketEndpoint::SendRequest(NodeId dst, Service service, Payload body, ReplyFn on_reply,
                                     TimeCategory charge_as) {
  DFIL_CHECK_NE(dst, self_);
  const uint64_t req_id = next_req_id_++;
  Outstanding out;
  out.dst = dst;
  out.service = service;
  out.body = body;
  out.on_reply = std::move(on_reply);
  out.timeout = config_.retransmit_timeout;
  out.attempts = 1;
  out.charge_as = charge_as;
  out.trace = CurTrace();
  stats_.requests_sent++;
  if (metrics_ != nullptr) {
    // Depth of the outstanding-request pipeline including this one: how many replies this node is
    // waiting on whenever it issues a request (a proxy for remote serve-queue pressure).
    metrics_->Hist("net.serve_queue_depth").Record(static_cast<double>(outstanding_.size() + 1));
  }
  Transmit(dst, Kind::kRequest, service, req_id, body, charge_as, out.trace);
  outstanding_.emplace(req_id, std::move(out));
  ArmTimer(req_id);
  return req_id;
}

void PacketEndpoint::ArmTimer(uint64_t req_id) {
  auto it = outstanding_.find(req_id);
  DFIL_CHECK(it != outstanding_.end());
  it->second.timer =
      machine_->ScheduleTimer(self_, clock_() + it->second.timeout, [this, req_id] {
        OnTimeout(req_id);
      });
}

void PacketEndpoint::OnTimeout(uint64_t req_id) {
  auto it = outstanding_.find(req_id);
  if (it == outstanding_.end()) {
    return;  // reply arrived while the timer event was in flight
  }
  Outstanding& out = it->second;
  DFIL_CHECK_LT(out.attempts, config_.retransmit_limit)
      << "Packet: request " << req_id << " to node " << out.dst << " (service "
      << static_cast<int>(out.service) << ") exceeded the retransmission limit";
  charge_(out.charge_as, machine_->costs().timer_overhead);
  DFIL_LOG(kDebug, "packet") << "node " << self_ << " retransmit req " << req_id << " to "
                             << out.dst << " attempt " << out.attempts + 1;
  out.attempts++;
  stats_.retransmissions++;
  machine_->net_stats().retransmissions++;
  if (tracer_ != nullptr && tracer_->enabled()) {
    tracer_->Instant("net", std::string("retx ") + ServiceName(out.service) + " -> n" +
                                std::to_string(out.dst));
  }
  Transmit(out.dst, Kind::kRequest, out.service, req_id, out.body, out.charge_as, out.trace);
  // Exponential backoff, capped.
  out.timeout = std::min<SimTime>(out.timeout * 2, config_.retransmit_timeout_max);
  ArmTimer(req_id);
}

void PacketEndpoint::SendRaw(NodeId dst, Service service, Payload body, TimeCategory charge_as) {
  stats_.raw_sent++;
  Transmit(dst, Kind::kRaw, service, 0, body, charge_as, CurTrace());
}

void PacketEndpoint::BroadcastRaw(Service service, Payload body, TimeCategory charge_as) {
  stats_.raw_sent++;
  charge_(charge_as, machine_->costs().msg_send_overhead);
  sent_by_service_[static_cast<uint16_t>(service)]++;
  const uint64_t trace = CurTrace();
  WireWriter w;
  w.Put(Header{Kind::kRaw, static_cast<uint16_t>(service), 0, trace});
  w.PutBytes(body.data(), body.size());
  sim::Datagram d;
  d.src = self_;
  d.dst = sim::kBroadcastDst;
  d.type = static_cast<uint32_t>(service);
  d.klass = sim::MsgClass::kRaw;
  d.trace = trace;
  d.payload = w.Take();
  machine_->Broadcast(std::move(d), clock_());
}

void PacketEndpoint::OnDatagram(sim::Datagram d) {
  WireReader r(d.payload);
  const Header h = r.Get<Header>();
  Payload body(r.Rest().begin(), r.Rest().end());
  // Handlers run under the incoming message's causal trace id, so every nested send — the reply,
  // a redirect chase, an invalidation round — inherits the originating fault's id.
  TraceContext trace_ctx(tracer_, h.trace);
  switch (h.kind) {
    case Kind::kRequest: {
      auto it = services_.find(h.service);
      DFIL_CHECK(it != services_.end())
          << "node " << self_ << ": no service " << h.service;
      charge_(it->second.recv_category, machine_->costs().msg_recv_overhead);
      HandleRequest(d.src, h.req_id, static_cast<Service>(h.service), std::move(body));
      return;
    }
    case Kind::kReply: {
      auto out = outstanding_.find(h.req_id);
      charge_(out != outstanding_.end() ? out->second.charge_as : TimeCategory::kSyncOverhead,
              machine_->costs().msg_recv_overhead);
      HandleReply(d.src, h.req_id, std::move(body));
      return;
    }
    case Kind::kRaw: {
      auto it = raw_handlers_.find(h.service);
      DFIL_CHECK(it != raw_handlers_.end())
          << "node " << self_ << ": no raw handler for service " << h.service;
      charge_(it->second.recv_category, machine_->costs().msg_recv_overhead);
      it->second.fn(d.src, std::move(body));
      return;
    }
    case Kind::kAck: {
      charge_(TimeCategory::kSyncOverhead, machine_->costs().msg_recv_overhead);
      auto it = pending_replies_.find({d.src, h.req_id});
      if (it != pending_replies_.end()) {
        it->second.timer.Cancel();
        pending_replies_.erase(it);
      }
      return;
    }
  }
  DFIL_CHECK(false) << "corrupt packet kind";
}

void PacketEndpoint::HandleRequest(NodeId src, uint64_t req_id, Service service, Payload body) {
  ServiceEntry& entry = services_.find(static_cast<uint16_t>(service))->second;

  if (!entry.idempotent) {
    // Ignore mutating requests while this node is inside a critical section; the requester's
    // retransmission will retry (paper §3: entry/exit are a single assignment, ignored messages
    // are recovered by Packet).
    if (in_critical_section && in_critical_section()) {
      stats_.deferred_requests++;
      machine_->net_stats().deferred_requests++;
      return;
    }
    // Duplicate of a request we already served: re-send the cached reply rather than re-running
    // the (mutating) service.
    auto cached = response_cache_.find({src, req_id});
    if (cached != response_cache_.end()) {
      stats_.duplicate_requests++;
      stats_.replies_sent++;
      Transmit(src, Kind::kReply, service, req_id, cached->second.body,
               TimeCategory::kSyncOverhead, CurTrace());
      return;
    }
  }
  if (config_.ack_replies && pending_replies_.count({src, req_id}) != 0) {
    // TCP-like mode: the original reply is still buffered (its ack is pending); the timer-driven
    // retransmission covers this duplicate request.
    stats_.duplicate_requests++;
    return;
  }

  std::optional<Payload> reply = entry.fn(src, WireReader(body));
  if (!reply.has_value()) {
    stats_.deferred_requests++;
    machine_->net_stats().deferred_requests++;
    return;
  }
  if (entry.idempotent) {
    // No reply buffering for idempotent services: a retransmitted request re-runs the service and
    // the reply is rebuilt from current state. Record which it was (Figure 3a vs 3c).
    if (served_requests_.insert({src, req_id}).second) {
      stats_.replies_first_serve++;
      served_fifo_.push_back({src, req_id});
      while (served_fifo_.size() > kServedIdsCap) {
        served_requests_.erase(served_fifo_.front());
        served_fifo_.pop_front();
      }
    } else {
      stats_.replies_rebuilt++;
    }
  }
  if (!entry.idempotent) {
    const SimTime expires =
        clock_() + config_.retransmit_timeout * config_.response_cache_timeouts;
    response_cache_[{src, req_id}] = CachedReply{*reply, expires};
    cache_fifo_.push_back({src, req_id});
    // Evict in FIFO order: anything expired, plus the oldest entries beyond the size cap. A
    // requester that still needed an evicted reply will re-run into the duplicate path and, for
    // the rare non-idempotent case, the CHECK below the service catches it loudly in tests.
    while (!cache_fifo_.empty() &&
           (cache_fifo_.size() > kResponseCacheCap ||
            response_cache_[cache_fifo_.front()].expires < clock_())) {
      response_cache_.erase(cache_fifo_.front());
      cache_fifo_.pop_front();
    }
  }
  stats_.replies_sent++;
  if (config_.ack_replies) {
    SendReplyBuffered(src, service, req_id, std::move(*reply));
  } else {
    Transmit(src, Kind::kReply, service, req_id, *reply, TimeCategory::kSyncOverhead, CurTrace());
  }
}

void PacketEndpoint::HandleReply(NodeId src, uint64_t req_id, Payload body) {
  if (config_.ack_replies) {
    // TCP-like mode: explicitly acknowledge every reply (duplicates included, or the replier
    // would retransmit its buffered copy forever).
    stats_.acks_sent++;
    Transmit(src, Kind::kAck, static_cast<Service>(0), req_id, {}, TimeCategory::kSyncOverhead,
             CurTrace());
  }
  auto it = outstanding_.find(req_id);
  if (it == outstanding_.end()) {
    stats_.duplicate_replies++;  // late duplicate (Figure 3d); drop it
    return;
  }
  it->second.timer.Cancel();
  ReplyFn on_reply = std::move(it->second.on_reply);
  outstanding_.erase(it);
  if (on_reply) {
    on_reply(std::move(body));
  }
}

void PacketEndpoint::SendReplyBuffered(NodeId dst, Service service, uint64_t req_id,
                                       Payload body) {
  Transmit(dst, Kind::kReply, service, req_id, body, TimeCategory::kSyncOverhead, CurTrace());
  PendingReply rep;
  rep.dst = dst;
  rep.service = service;
  rep.body = std::move(body);
  rep.trace = CurTrace();
  rep.timer = machine_->ScheduleTimer(self_, clock_() + config_.retransmit_timeout,
                                      [this, dst, req_id] { OnReplyTimeout(dst, req_id); });
  pending_replies_[{dst, req_id}] = std::move(rep);
}

void PacketEndpoint::OnReplyTimeout(NodeId dst, uint64_t req_id) {
  auto it = pending_replies_.find({dst, req_id});
  if (it == pending_replies_.end()) {
    return;
  }
  PendingReply& rep = it->second;
  DFIL_CHECK_LT(rep.attempts, config_.retransmit_limit) << "buffered reply never acknowledged";
  rep.attempts++;
  stats_.reply_retransmissions++;
  charge_(TimeCategory::kSyncOverhead, machine_->costs().timer_overhead);
  Transmit(rep.dst, Kind::kReply, rep.service, req_id, rep.body, TimeCategory::kSyncOverhead,
           rep.trace);
  rep.timer = machine_->ScheduleTimer(self_, clock_() + config_.retransmit_timeout,
                                      [this, dst, req_id] { OnReplyTimeout(dst, req_id); });
}

}  // namespace dfil::net
