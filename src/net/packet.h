// Packet: the paper's low-overhead reliable datagram protocol (§3, Figure 3).
//
// Communication occurs in request/reply pairs over an unreliable datagram substrate (simulated
// UDP). Only requests are buffered — they are short — and a request is retransmitted until its
// reply arrives; replies are never buffered, they are rebuilt from current state when a duplicate
// request is served (so services must be idempotent, like page replies, which are constructed
// from the current page contents). For the few non-idempotent services (e.g. fork results) an
// endpoint keeps a small, time-bounded response cache per requester, a VMTP-style extension
// documented in DESIGN.md. Unlike VMTP, send/receive/reply is fully asynchronous.
//
// The critical-section mechanism (§3): a node marks itself "in a critical section" with a single
// flag assignment; while the flag is set, requests whose service mutates critical data are simply
// ignored — the requester's retransmission recovers them.
//
// Raw (unreliable) sends are also provided; the paper's coarse-grain comparison programs use bare
// UDP and hang when a message is lost, which the benches reproduce.
#ifndef DFIL_NET_PACKET_H_
#define DFIL_NET_PACKET_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <unordered_map>
#include <vector>

#include "src/common/metrics.h"
#include "src/common/stats.h"
#include "src/common/trace.h"
#include "src/common/types.h"
#include "src/common/waitstate.h"
#include "src/net/wire.h"
#include "src/sim/machine.h"

namespace dfil::net {

// Upper-layer service numbers. Declared centrally so traces are readable.
enum class Service : uint16_t {
  // DSM
  kPageRequest = 1,
  kInvalidate = 2,
  kBulkPageRequest = 3,  // page-run [first, count] fetch; unowned pages come back as misses
  kDiffMerge = 4,        // multiple-writer diff flush, merged into the home node's frame
  kDiffMergeGated = 5,   // a diff merge whose ack is elided: the barrier done broadcast stands in
  kRehomePages = 6,      // rebalance ownership handoff: a batch of pages re-homed to the requester
  // Reductions
  kReduceUp = 10,
  kReduceDone = 11,  // raw broadcast dissemination
  // Fork/join
  kForkShip = 20,
  kJoinResult = 21,
  kStealWork = 22,
  kTerminate = 23,  // raw broadcast: fork/join computation finished
  kFilamentMigrate = 24,  // rebalance plan execution: a batch of stackless filaments changes node
  // Coarse-grain application traffic (raw UDP semantics)
  kAppData = 30,
  // Tests
  kTestEcho = 100,
  kTestMutate = 101,
};

// Human-readable service name for traces and metric keys ("page_request", "reduce_up", ...).
const char* ServiceName(Service service);

// Per-destination frame coalescing (DESIGN.md §11). Off by default; when disabled the wire
// format, charges, and message schedule are byte-identical to the uncoalesced protocol.
struct CoalesceConfig {
  bool enabled = false;
  // Flush when packing one more frame would push the datagram payload past this limit (a
  // UDP-practical MTU on the simulated network; a single oversized frame still goes out alone).
  size_t max_datagram_bytes = 8800;
  // How long a tolerant (held) frame may wait for a carrier before its hold timer flushes it.
  // Sized to cover the fault skew between neighbouring nodes in a phase-locked exchange (they
  // reach their boundary pages several ms apart); the just-served filter in ShouldHold keeps
  // this from charging fetches whose carrier already left.
  SimTime request_hold = Milliseconds(20.0);
  // How long a piggybacked ack may wait (ack_replies mode only).
  SimTime ack_hold = Milliseconds(2.0);
  // A page/bulk request to a lower-numbered mutual peer — one that requested from us within this
  // window — is held briefly so it can ride on our reply to that peer's next request.
  SimTime mutual_window = Milliseconds(250.0);
  bool hold_requests = true;  // enable the mutual-peer request hold
  // Sync-point batching above the transport: diff flush-set bulk refetch and gated merges that
  // piggyback on the reduce-up frame (src/dsm, src/core).
  bool sync_batch = true;
  // Elide reduce-up acks; the barrier done broadcast (or a done-carrying rebuilt reply) stands in.
  bool elide_reduce_replies = true;
  // Retransmission floor for requests whose ack is elided (gated merges, reduce-ups): their
  // "ack" is the barrier done broadcast, which arrives an epoch-scale time later, so the timer
  // is a loss-recovery backstop — an RTT-scale RTO would retransmit spuriously every barrier.
  SimTime elided_ack_timeout = Milliseconds(1000.0);
};

struct PacketConfig {
  SimTime retransmit_timeout = Milliseconds(100.0);  // >> quiet RTT and transient reply queueing
  SimTime retransmit_timeout_max = Milliseconds(400.0);
  // Lower clamp for the Jacobson/Karels estimated retransmission timeout (coalescing mode).
  // Defaults to the legacy fixed timeout: the estimator exists to stretch the RTO on slow or
  // congested paths, not to undercut a value the uncoalesced protocol never retransmits at —
  // a shared-medium barrier routinely queues an ack past any quiet-time RTT estimate.
  SimTime rto_min = Milliseconds(100.0);
  int retransmit_limit = 60;
  // How long a cached non-idempotent reply stays valid (relative to the initial timeout).
  int response_cache_timeouts = 20;
  // TCP-like ablation (paper §3: "a different reliability mechanism—such as the one in TCP—might
  // perform better" on lossy networks): replies are buffered at the replier and retransmitted
  // until explicitly acknowledged, instead of being rebuilt on request retransmission. Costs one
  // extra ack message per exchange and reply buffering — Packet's whole savings.
  bool ack_replies = false;
};

// Statistics specific to the Packet layer of one node.
struct PacketStats {
  uint64_t requests_sent = 0;
  uint64_t replies_sent = 0;
  uint64_t acks_sent = 0;
  uint64_t reply_retransmissions = 0;
  uint64_t retransmissions = 0;
  uint64_t duplicate_requests = 0;
  uint64_t duplicate_replies = 0;
  uint64_t deferred_requests = 0;  // ignored due to a critical section or a busy service
  uint64_t raw_sent = 0;
  // Idempotent services only: replies are never buffered, so a retransmitted request makes the
  // service rebuild its reply from current state (paper Figure 3c). Splitting first serves from
  // rebuilds makes that loss-recovery path — and bulk-reply idempotence — observable in tests.
  uint64_t replies_first_serve = 0;
  uint64_t replies_rebuilt = 0;
  // Wire-level accounting: one datagram may carry many logical frames when coalescing is on.
  uint64_t datagrams_sent = 0;
  uint64_t wire_bytes = 0;         // framed bytes on the wire (link headers + packed frames)
  uint64_t frames_coalesced = 0;   // frames that rode an already-open datagram
  uint64_t replies_elided = 0;     // idempotent replies suppressed (a later frame stands in)
  uint64_t requests_canceled = 0;  // outstanding requests canceled before their reply arrived
};

// One node's endpoint of the Packet protocol.
class PacketEndpoint {
 public:
  // A service consumes a request body and returns the reply body, or nullopt to defer the request
  // entirely (it will be served on a later retransmission).
  using ServiceFn = std::function<std::optional<Payload>(NodeId src, WireReader body)>;
  using ReplyFn = std::function<void(Payload reply)>;
  using RawFn = std::function<void(NodeId src, Payload body)>;
  // Charges CPU cost to the owning node's virtual clock.
  using ChargeFn = std::function<void(TimeCategory, SimTime)>;
  // Reads the owning node's virtual clock.
  using ClockFn = std::function<SimTime()>;

  PacketEndpoint(sim::Machine* machine, NodeId self, PacketConfig config, ChargeFn charge,
                 ClockFn clock);
  ~PacketEndpoint();

  PacketEndpoint(const PacketEndpoint&) = delete;
  PacketEndpoint& operator=(const PacketEndpoint&) = delete;

  // Registers the handler for `service`. Non-idempotent services get the response cache.
  // `recv_category` is the accounting bucket charged for receiving traffic of this service
  // (page traffic counts as data transfer, barrier traffic as synchronization overhead, ...).
  void RegisterService(Service service, ServiceFn fn, bool idempotent,
                       TimeCategory recv_category = TimeCategory::kSyncOverhead);
  void RegisterRawHandler(Service service, RawFn fn,
                          TimeCategory recv_category = TimeCategory::kSyncOverhead);

  // Sends a reliable request; `on_reply` runs on this node when the reply arrives. The request
  // body is buffered (it must be small; the paper's are <= 20 bytes) and retransmitted on timeout.
  // Returns the request id. `expected_reply_bytes`, when nonzero and coalescing is on, floors the
  // initial timeout at the worst-case serialized wire time of the reply, so a bulk reply queued
  // behind its peers on the shared wire is not spuriously retransmitted by a short estimated RTO.
  uint64_t SendRequest(NodeId dst, Service service, Payload body, ReplyFn on_reply,
                       TimeCategory charge_as = TimeCategory::kSyncOverhead,
                       size_t expected_reply_bytes = 0);

  // Cancels an outstanding request: its retransmission timer stops and a late reply is dropped as
  // a duplicate. Used when a broader signal (the barrier done broadcast) supersedes the reply.
  void CancelRequest(uint64_t req_id);

  // Callable from inside a ServiceFn of an *idempotent* service: the reply the service is about
  // to return is not transmitted (a later frame — e.g. the done broadcast — stands in for it).
  // The service still counts as served, so a retransmission rebuilds normally.
  void ElideCurrentReply();

  // Flushes every queued frame (held and batched) to `dst` immediately. No-op when nothing is
  // queued or coalescing is off.
  void Flush(NodeId dst);

  // Enables/configures coalescing. Call before traffic flows (the runtime does, at construction).
  void set_coalesce(const CoalesceConfig& coalesce) { coalesce_ = coalesce; }
  const CoalesceConfig& coalesce() const { return coalesce_; }

  // Unreliable one-shot datagrams (bare UDP semantics).
  void SendRaw(NodeId dst, Service service, Payload body,
               TimeCategory charge_as = TimeCategory::kSyncOverhead);
  void BroadcastRaw(Service service, Payload body,
                    TimeCategory charge_as = TimeCategory::kSyncOverhead);

  // Datagram ingress (wired from the owning NodeHost). Charges receive overhead.
  void OnDatagram(sim::Datagram d);

  // Requests still awaiting a reply. Nodes delay at synchronization points until this is zero.
  size_t outstanding() const { return outstanding_.size(); }

  // When set and returning true, requests for mutating (non-idempotent) services are ignored.
  std::function<bool()> in_critical_section;

  const PacketStats& stats() const { return stats_; }
  PacketConfig& config() { return config_; }

  // Observability wiring (optional; set by the runtime after construction). The tracer supplies
  // the causal trace id stamped on every outgoing packet — requests carry the sender's current
  // context, replies/acks echo the request's id, retransmissions re-stamp the original — and
  // incoming handlers run under the message's id so nested sends inherit it. The metrics registry
  // receives the per-service send counters and the outstanding-pipeline-depth histogram.
  void set_tracer(NodeTracer* tracer) { tracer_ = tracer; }
  void set_metrics(MetricsRegistry* metrics) { metrics_ = metrics; }
  // When set, every RTO expiry records a kRetransmit wait event spanning [first send, expiry] —
  // the stall the retransmission is recovering from. Recording only; never perturbs the schedule.
  void set_waitstate(WaitStateRecorder* waitstate) { waitstate_ = waitstate; }

  // Messages transmitted per service (requests, replies, raws and acks combined), for the
  // Figure 9 message-count table.
  const std::map<uint16_t, uint64_t>& sent_by_service() const { return sent_by_service_; }

 private:
  // kPacked marks a coalesced multi-frame datagram: Header{kPacked, 0, nframes, 0} followed by
  // nframes x (uint32_t len, then a full legacy Header + body of `len` bytes).
  enum class Kind : uint8_t { kRequest = 1, kReply = 2, kRaw = 3, kAck = 4, kPacked = 5 };

  struct Header {
    Kind kind;
    uint16_t service;
    uint64_t req_id;
    uint64_t trace;  // causal trace id; 0 = no context
  };

  struct Outstanding {
    NodeId dst;
    Service service;
    Payload body;  // buffered for retransmission
    ReplyFn on_reply;
    sim::EventHandle timer;
    SimTime timeout;
    SimTime sent_at = 0;              // first-send time, for RTT sampling (Karn's rule)
    size_t expected_reply_bytes = 0;  // floors the estimated RTO (see SendRequest)
    int attempts;
    TimeCategory charge_as;
    uint64_t trace = 0;  // re-stamped on retransmissions
  };

  // One logical message waiting in a per-destination coalescing queue.
  struct QueuedFrame {
    Kind kind;
    Service service;
    uint64_t req_id;
    Payload body;
    uint64_t trace;
  };

  struct DstQueue {
    std::vector<QueuedFrame> held;   // tolerant frames: wait for a carrier or their hold timer
    std::vector<QueuedFrame> batch;  // critical frames: flushed by the same-clock flush event
    size_t bytes = 0;                // serialized frame bytes queued (excluding the outer header)
    sim::EventHandle hold_timer;
    bool hold_armed = false;
  };

  // Jacobson/Karels per-peer RTT estimate (srtt/rttvar in SimTime units).
  struct PeerRtt {
    SimTime srtt = 0;
    SimTime rttvar = 0;
    bool valid = false;
  };

  struct ServiceEntry {
    ServiceFn fn;
    bool idempotent = true;
    TimeCategory recv_category = TimeCategory::kSyncOverhead;
  };

  struct RawEntry {
    RawFn fn;
    TimeCategory recv_category = TimeCategory::kSyncOverhead;
  };

  struct CachedReply {
    Payload body;
    SimTime expires;
  };

  void Transmit(NodeId dst, Kind kind, Service service, uint64_t req_id, const Payload& body,
                TimeCategory charge_as, uint64_t trace);
  // Coalescing send path: queues the frame to `dst` (charging send overhead for the first frame,
  // the marginal pack cost for the rest). Critical frames arm the same-clock flush event; held
  // frames wait for a carrier or their per-destination hold timer.
  void Enqueue(NodeId dst, Kind kind, Service service, uint64_t req_id, const Payload& body,
               TimeCategory charge_as, uint64_t trace, bool held, SimTime hold_for);
  // True when a page/bulk request to `dst` should be held for mutual-peer piggybacking, or the
  // service is a gated diff merge (always held; it rides the reduce-up frame).
  bool ShouldHold(NodeId dst, Service service) const;
  // Arms the flush event at the current clock; the strict event-before-step rule in Machine::Run
  // guarantees it fires before this node executes past the current instant.
  void ScheduleFlushEvent();
  void FlushBatches();
  void FlushQueue(NodeId dst);
  void SendFrames(NodeId dst, std::vector<QueuedFrame>& frames);
  // Datagram-level stats: wire bytes (link framing + payload) and the per-datagram histograms.
  void RecordDatagram(size_t payload_bytes, size_t nframes);
  // Initial retransmission timeout for a request to `dst` (fixed when coalescing is off; the
  // estimated RTO clamped to [rto_min, retransmit_timeout_max] and floored by the expected-reply
  // wire time when on).
  SimTime InitialTimeout(NodeId dst, size_t expected_reply_bytes) const;
  // Feeds one reply into the per-peer RTT estimator (Karn's rule: first-attempt samples only).
  void UpdateRtt(NodeId src, const Outstanding& out);
  // Dispatches one unpacked frame; `first` selects full receive overhead vs the marginal cost.
  void DispatchFrame(NodeId src, const Header& h, Payload body, bool first);
  // The node's current causal trace id (0 when no tracer is wired).
  uint64_t CurTrace() const { return tracer_ != nullptr ? tracer_->current() : 0; }
  void ArmTimer(uint64_t req_id);
  void OnTimeout(uint64_t req_id);
  void HandleRequest(NodeId src, uint64_t req_id, Service service, Payload body);
  void HandleReply(NodeId src, uint64_t req_id, Payload body);
  // ack_replies mode: buffer an outgoing reply and retransmit it until acknowledged.
  void SendReplyBuffered(NodeId dst, Service service, uint64_t req_id, Payload body);
  void OnReplyTimeout(NodeId dst, uint64_t req_id);

  sim::Machine* machine_;
  NodeId self_;
  PacketConfig config_;
  CoalesceConfig coalesce_;
  ChargeFn charge_;
  ClockFn clock_;
  PacketStats stats_;
  NodeTracer* tracer_ = nullptr;
  MetricsRegistry* metrics_ = nullptr;
  WaitStateRecorder* waitstate_ = nullptr;
  std::map<uint16_t, uint64_t> sent_by_service_;

  uint64_t next_req_id_ = 1;
  std::map<uint64_t, Outstanding> outstanding_;

  // --- Coalescing state (all empty/idle when coalesce_.enabled is false) ---
  std::map<NodeId, DstQueue> queues_;
  bool flush_event_pending_ = false;
  sim::EventHandle flush_event_;
  // Last time each peer sent us a page/bulk request (drives the mutual-peer hold heuristic).
  std::map<NodeId, SimTime> last_req_from_;
  // Set by ElideCurrentReply() from inside the currently-running ServiceFn.
  bool elide_current_reply_ = false;

  // Per-peer RTT estimates; always maintained (net.rto_us), applied to timers when coalescing on.
  std::map<NodeId, PeerRtt> peer_rtt_;
  std::unordered_map<uint16_t, ServiceEntry> services_;
  std::unordered_map<uint16_t, RawEntry> raw_handlers_;
  // ack_replies mode: replies awaiting acknowledgement, keyed by (requester, request id) — the
  // request-id namespace is per sender.
  struct PendingReply {
    NodeId dst;
    Service service;
    Payload body;
    sim::EventHandle timer;
    int attempts = 1;
    uint64_t trace = 0;
  };
  std::map<std::pair<NodeId, uint64_t>, PendingReply> pending_replies_;

  // Response cache for non-idempotent services: (src, req_id) -> reply, evicted FIFO.
  static constexpr size_t kResponseCacheCap = 1024;
  std::map<std::pair<NodeId, uint64_t>, CachedReply> response_cache_;
  std::deque<std::pair<NodeId, uint64_t>> cache_fifo_;

  // Request ids already served to each requester (idempotent services), splitting first serves
  // from rebuilt-from-state re-serves in the stats. Bounded FIFO; an evicted id at worst
  // misclassifies a very late retransmission as a first serve.
  static constexpr size_t kServedIdsCap = 4096;
  std::set<std::pair<NodeId, uint64_t>> served_requests_;
  std::deque<std::pair<NodeId, uint64_t>> served_fifo_;
};

}  // namespace dfil::net

#endif  // DFIL_NET_PACKET_H_
