#include "src/threads/stack.h"

#include <cstdint>
#include <cstring>

#include "src/common/check.h"

namespace dfil::threads {
namespace {

constexpr uint64_t kCanary = 0xdeadfacef11a3217ULL;
constexpr size_t kCanaryWords = 8;
constexpr size_t kCanaryBytes = kCanaryWords * sizeof(uint64_t);

}  // namespace

Stack::Stack(size_t bytes) : bytes_(bytes) {
  DFIL_CHECK_GE(bytes, kCanaryBytes + 4096);
  memory_ = std::make_unique<std::byte[]>(bytes_);
  uint64_t canary = kCanary;
  for (size_t i = 0; i < kCanaryWords; ++i) {
    std::memcpy(memory_.get() + i * sizeof(uint64_t), &canary, sizeof(canary));
  }
}

std::span<std::byte> Stack::usable() {
  return std::span<std::byte>(memory_.get() + kCanaryBytes, bytes_ - kCanaryBytes);
}

bool Stack::CanaryIntact() const {
  for (size_t i = 0; i < kCanaryWords; ++i) {
    uint64_t word;
    std::memcpy(&word, memory_.get() + i * sizeof(uint64_t), sizeof(word));
    if (word != kCanary) {
      return false;
    }
  }
  return true;
}

std::unique_ptr<Stack> StackPool::Acquire() {
  if (!free_.empty()) {
    std::unique_ptr<Stack> stack = std::move(free_.back());
    free_.pop_back();
    return stack;
  }
  ++allocated_;
  return std::make_unique<Stack>(stack_bytes_);
}

void StackPool::Release(std::unique_ptr<Stack> stack) {
  DFIL_CHECK(stack->CanaryIntact()) << "server thread stack overflow detected";
  free_.push_back(std::move(stack));
}

}  // namespace dfil::threads
