// Execution contexts for server threads.
//
// Two backends implement the same save/restore contract:
//  * kAsm — the hand-written x86-64 switch in context_switch_x86_64.S (the default; this mirrors
//    the paper, where the only machine-dependent code in DF is a small context switch).
//  * kUcontext — POSIX makecontext/swapcontext, the portable fallback for other architectures.
//
// The backend is chosen per Context at Init time; a switch requires both sides to use the same
// backend. Server threads are cooperative, so no signal masks or FP control state are saved.
#ifndef DFIL_THREADS_CONTEXT_H_
#define DFIL_THREADS_CONTEXT_H_

#include <ucontext.h>

#include <cstddef>
#include <memory>
#include <span>

namespace dfil::threads {

enum class ContextBackend { kAsm, kUcontext };

// Process-wide default backend (kAsm on x86-64). Tests exercise both.
ContextBackend DefaultContextBackend();

class Context {
 public:
  // Entry functions receive the opaque argument and must never return; they must switch away to
  // another context (the trampoline traps if they fall off the end).
  using EntryFn = void (*)(void*);

  Context() = default;
  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;

  // Prepares this context to start running `entry(arg)` on `stack` at the first switch-in.
  void Init(std::span<std::byte> stack, EntryFn entry, void* arg, ContextBackend backend);

  // Marks this context as the carrier of the currently running (host) stack, so it can be
  // switched out of. No stack is attached.
  void InitAsCaller(ContextBackend backend);

  ContextBackend backend() const { return backend_; }

  // Saves the current context into `from` and resumes `to`. Both must share a backend.
  static void Switch(Context* from, Context* to);

 private:
  ContextBackend backend_ = ContextBackend::kAsm;
  void* sp_ = nullptr;                     // kAsm: saved stack pointer
  std::unique_ptr<ucontext_t> ucontext_;   // kUcontext
};

}  // namespace dfil::threads

#endif  // DFIL_THREADS_CONTEXT_H_
