// Stack allocation for server threads.
//
// Stacks are recycled through a free list (a node parks finished server threads and reuses them,
// paper §2.2), and each stack carries a canary word at its low end so overflows are caught when
// the stack is recycled or the pool is destroyed.
#ifndef DFIL_THREADS_STACK_H_
#define DFIL_THREADS_STACK_H_

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

namespace dfil::threads {

inline constexpr size_t kDefaultStackBytes = 256 * 1024;

class Stack {
 public:
  explicit Stack(size_t bytes = kDefaultStackBytes);

  // Usable region (excludes the canary words at the low end).
  std::span<std::byte> usable();

  // True while the canary below the usable region is intact.
  bool CanaryIntact() const;

 private:
  size_t bytes_;
  std::unique_ptr<std::byte[]> memory_;
};

// LIFO free list of equally sized stacks.
class StackPool {
 public:
  explicit StackPool(size_t stack_bytes = kDefaultStackBytes) : stack_bytes_(stack_bytes) {}

  // Returns a stack, reusing a recycled one when available.
  std::unique_ptr<Stack> Acquire();

  // Returns a stack to the pool. CHECK-fails if its canary was smashed.
  void Release(std::unique_ptr<Stack> stack);

  size_t allocated() const { return allocated_; }
  size_t pooled() const { return free_.size(); }

 private:
  size_t stack_bytes_;
  size_t allocated_ = 0;
  std::vector<std::unique_ptr<Stack>> free_;
};

}  // namespace dfil::threads

#endif  // DFIL_THREADS_STACK_H_
