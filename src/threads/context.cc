#include "src/threads/context.h"

#include <cstdint>

#include "src/common/check.h"

#if defined(__SANITIZE_ADDRESS__)
#define DFIL_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define DFIL_ASAN 1
#endif
#endif
#if defined(DFIL_ASAN)
#include <sanitizer/asan_interface.h>
#endif

extern "C" {
// Implemented in context_switch_x86_64.S.
void dfil_ctx_switch(void** save_sp, void* load_sp);
void dfil_ctx_boot();
}

namespace dfil::threads {
namespace {

// Register frame popped by dfil_ctx_switch, lowest address first.
struct BootFrame {
  uint64_t r15;
  uint64_t r14;
  uint64_t r13;  // entry argument, moved to rdi by dfil_ctx_boot
  uint64_t r12;  // entry function pointer, called by dfil_ctx_boot
  uint64_t rbx;
  uint64_t rbp;
  uint64_t ret;  // dfil_ctx_boot
};
static_assert(sizeof(BootFrame) == 7 * 8);

// glibc makecontext passes int arguments only; smuggle the 64-bit pointers through two ints each.
void UcontextTrampoline(unsigned int entry_hi, unsigned int entry_lo, unsigned int arg_hi,
                        unsigned int arg_lo) {
  auto entry = reinterpret_cast<Context::EntryFn>((static_cast<uint64_t>(entry_hi) << 32) |
                                                  static_cast<uint64_t>(entry_lo));
  void* arg = reinterpret_cast<void*>((static_cast<uint64_t>(arg_hi) << 32) |
                                      static_cast<uint64_t>(arg_lo));
  entry(arg);
  DFIL_CHECK(false) << "context entry function returned";
}

}  // namespace

ContextBackend DefaultContextBackend() {
#if defined(__x86_64__)
  return ContextBackend::kAsm;
#else
  return ContextBackend::kUcontext;
#endif
}

void Context::Init(std::span<std::byte> stack, EntryFn entry, void* arg, ContextBackend backend) {
  backend_ = backend;
  DFIL_CHECK_GE(stack.size(), static_cast<size_t>(1024));

#if defined(DFIL_ASAN)
  // A fiber that switches away forever never unwinds, so its frame redzones stay poisoned in
  // ASan's shadow. When the stack pool recycles that memory, writing the new boot frame (or the
  // new fiber's first frames) trips a false stack-buffer-overflow. The old contents are dead by
  // contract, so clear the shadow for the whole stack.
  __asan_unpoison_memory_region(stack.data(), stack.size());
#endif

  if (backend == ContextBackend::kAsm) {
    // 16-align the stack top; plant the boot frame so the first switch "returns" into
    // dfil_ctx_boot with entry/arg in r12/r13 and rsp 16-aligned.
    auto top = reinterpret_cast<uintptr_t>(stack.data() + stack.size());
    top &= ~static_cast<uintptr_t>(15);
    // After the first switch pops this frame and returns, rsp == top, which is 16-aligned as
    // dfil_ctx_boot requires.
    auto* frame = reinterpret_cast<BootFrame*>(top - sizeof(BootFrame));
    frame->r15 = 0;
    frame->r14 = 0;
    frame->r13 = reinterpret_cast<uint64_t>(arg);
    frame->r12 = reinterpret_cast<uint64_t>(entry);
    frame->rbx = 0;
    frame->rbp = 0;
    frame->ret = reinterpret_cast<uint64_t>(&dfil_ctx_boot);
    sp_ = frame;
    return;
  }

  ucontext_ = std::make_unique<ucontext_t>();
  DFIL_CHECK_EQ(getcontext(ucontext_.get()), 0);
  ucontext_->uc_stack.ss_sp = stack.data();
  ucontext_->uc_stack.ss_size = stack.size();
  ucontext_->uc_link = nullptr;
  auto entry_bits = reinterpret_cast<uint64_t>(entry);
  auto arg_bits = reinterpret_cast<uint64_t>(arg);
  makecontext(ucontext_.get(), reinterpret_cast<void (*)()>(&UcontextTrampoline), 4,
              static_cast<unsigned int>(entry_bits >> 32),
              static_cast<unsigned int>(entry_bits & 0xffffffffu),
              static_cast<unsigned int>(arg_bits >> 32),
              static_cast<unsigned int>(arg_bits & 0xffffffffu));
}

void Context::InitAsCaller(ContextBackend backend) {
  backend_ = backend;
  if (backend == ContextBackend::kUcontext) {
    ucontext_ = std::make_unique<ucontext_t>();
  }
}

void Context::Switch(Context* from, Context* to) {
  DFIL_DCHECK(from != to);
  DFIL_CHECK(from->backend_ == to->backend_) << "mixed context backends";
  if (from->backend_ == ContextBackend::kAsm) {
    dfil_ctx_switch(&from->sp_, to->sp_);
    return;
  }
  DFIL_CHECK_EQ(swapcontext(from->ucontext_.get(), to->ucontext_.get()), 0);
}

}  // namespace dfil::threads
