// Server threads: the stackful carriers that execute stackless filaments.
//
// In the paper's design (§2.1–2.2), filaments have no private stack; they are executed one at a
// time by server threads — traditional threads with stacks, scheduled non-preemptively by a
// scheduler written for DF (based on the SR runtime's package). A ThreadSystem manages the server
// threads of one node: creation, recycling through a stack pool, and switching between the node's
// host context (the simulator loop) and thread contexts.
//
// Control flow discipline: the host switches into a thread with SwitchTo(); a thread gives up the
// processor only through SwitchToHost() (when it blocks, yields for a pending event, or exits).
// Threads never switch directly to each other, so the scheduler policy lives entirely with the
// caller.
#ifndef DFIL_THREADS_SERVER_THREAD_H_
#define DFIL_THREADS_SERVER_THREAD_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/intrusive_list.h"
#include "src/threads/context.h"
#include "src/threads/stack.h"

namespace dfil::threads {

enum class ThreadState : uint8_t {
  kReady,    // on a ready queue, has work
  kRunning,  // currently executing on this node
  kBlocked,  // waiting (page, barrier, join, channel)
  kDone,     // body finished; awaiting recycle
};

class ThreadSystem;

class ServerThread {
 public:
  uint64_t id() const { return id_; }
  ThreadState state() const { return state_; }
  void set_state(ThreadState s) { state_ = s; }

  // Why the thread is blocked; used for deadlock reports and idle-gap accounting.
  const std::string& block_reason() const { return block_reason_; }
  void set_block_reason(std::string reason) { block_reason_ = std::move(reason); }

  // Virtual time at which the thread last suspended in BlockCurrent; paired with the block
  // reason at wake to produce the typed wait-state record for the blocked interval. -1 between
  // records (a thread can be marked blocked yet woken before it ever suspends — no interval).
  int64_t blocked_since() const { return blocked_since_; }
  void set_blocked_since(int64_t t) { blocked_since_ = t; }

  // Pool this thread is currently executing for (-1 = not a pool runner). Set by the pool
  // engine around ExecutePool; read by the runtime's Charge/AccountWake paths to attribute run
  // and blocked time per pool (common/poolprof.h). Stays set while the runner is suspended on a
  // fault, so the blocked interval lands on the faulting pool.
  int profile_pool() const { return profile_pool_; }
  void set_profile_pool(int pool) { profile_pool_ = pool; }

  // Link used by ready queues and wait queues (a thread is on at most one at a time).
  ListNode queue_link;

 private:
  friend class ThreadSystem;

  uint64_t id_ = 0;
  ThreadState state_ = ThreadState::kReady;
  std::string block_reason_;
  int64_t blocked_since_ = -1;
  int profile_pool_ = -1;
  Context context_;
  std::unique_ptr<Stack> stack_;
  std::function<void()> body_;
  ThreadSystem* system_ = nullptr;
};

// Per-node thread manager.
class ThreadSystem {
 public:
  ThreadSystem(ContextBackend backend, size_t stack_bytes = kDefaultStackBytes);
  ~ThreadSystem();

  ThreadSystem(const ThreadSystem&) = delete;
  ThreadSystem& operator=(const ThreadSystem&) = delete;

  // Creates a ready-to-run thread executing `body`. Reuses a recycled thread when available.
  ServerThread* Create(std::function<void()> body);

  // Host side: resumes `thread`. Returns when the thread switches back to the host.
  void SwitchTo(ServerThread* thread);

  // Thread side: gives the processor back to the host context. The caller must already have set
  // its state (kBlocked with a reason, or kReady if merely yielding).
  void SwitchToHost();

  // The thread currently running on this node, or nullptr when the host context is active.
  ServerThread* current() const { return current_; }

  // Returns a finished thread's stack to the pool and parks the ServerThread for reuse.
  void Recycle(ServerThread* thread);

  // Number of live (non-recycled) threads.
  size_t live_threads() const { return live_; }
  size_t stacks_allocated() const { return stack_pool_.allocated(); }

  // Invoked (on the host context) after a thread's body returns, before the thread is parked.
  std::function<void(ServerThread*)> on_exit;

 private:
  static void ThreadEntry(void* arg);

  ContextBackend backend_;
  StackPool stack_pool_;
  Context host_context_;
  ServerThread* current_ = nullptr;
  std::vector<std::unique_ptr<ServerThread>> all_threads_;
  std::vector<ServerThread*> parked_;  // recycled, ready for Create to reuse
  size_t live_ = 0;
  uint64_t next_id_ = 1;
};

}  // namespace dfil::threads

#endif  // DFIL_THREADS_SERVER_THREAD_H_
