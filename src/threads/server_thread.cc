#include "src/threads/server_thread.h"

#include <utility>

#include "src/common/check.h"

namespace dfil::threads {

ThreadSystem::ThreadSystem(ContextBackend backend, size_t stack_bytes)
    : backend_(backend), stack_pool_(stack_bytes) {
  host_context_.InitAsCaller(backend_);
}

ThreadSystem::~ThreadSystem() = default;

void ThreadSystem::ThreadEntry(void* arg) {
  auto* thread = static_cast<ServerThread*>(arg);
  thread->body_();
  thread->state_ = ThreadState::kDone;
  thread->system_->SwitchToHost();
  DFIL_CHECK(false) << "resumed a finished server thread";
}

ServerThread* ThreadSystem::Create(std::function<void()> body) {
  ServerThread* thread;
  if (!parked_.empty()) {
    thread = parked_.back();
    parked_.pop_back();
  } else {
    all_threads_.push_back(std::make_unique<ServerThread>());
    thread = all_threads_.back().get();
  }
  thread->id_ = next_id_++;
  thread->state_ = ThreadState::kReady;
  thread->block_reason_.clear();
  thread->body_ = std::move(body);
  thread->system_ = this;
  thread->stack_ = stack_pool_.Acquire();
  thread->context_.Init(thread->stack_->usable(), &ThreadEntry, thread, backend_);
  ++live_;
  return thread;
}

void ThreadSystem::SwitchTo(ServerThread* thread) {
  DFIL_CHECK(current_ == nullptr) << "SwitchTo must be called from the host context";
  DFIL_CHECK(thread->state_ == ThreadState::kReady);
  thread->state_ = ThreadState::kRunning;
  current_ = thread;
  Context::Switch(&host_context_, &thread->context_);
  // The thread switched back: either it blocked/yielded, or it finished.
  current_ = nullptr;
  if (thread->state_ == ThreadState::kDone && on_exit) {
    on_exit(thread);
  }
}

void ThreadSystem::SwitchToHost() {
  ServerThread* thread = current_;
  DFIL_CHECK(thread != nullptr) << "SwitchToHost must be called from a server thread";
  DFIL_CHECK(thread->state_ != ThreadState::kRunning)
      << "set the thread state (blocked/ready/done) before switching away";
  Context::Switch(&thread->context_, &host_context_);
}

void ThreadSystem::Recycle(ServerThread* thread) {
  DFIL_CHECK(thread->state_ == ThreadState::kDone);
  DFIL_CHECK(thread != current_);
  stack_pool_.Release(std::move(thread->stack_));
  thread->body_ = nullptr;
  parked_.push_back(thread);
  --live_;
}

}  // namespace dfil::threads
