// Seed-replay coherence fuzzer (the adversarial test harness's driver).
//
// One fuzz case is fully described by a (scenario, seed) pair: the seed drives a SplitMix64
// stream that picks an application (jacobi / sor / matmul, shrunk to seconds-scale sizes), a page
// consistency protocol, a node count, a page size, and the scenario's fault-plan parameters. The
// run executes the DF variant with a CoherenceOracle attached and fault injection enabled, then
// validates three ways:
//
//  1. the run completed (no deadlock, no virtual-time runaway);
//  2. the oracle recorded no invariant violations;
//  3. the output is bit-identical to the sequential reference of the same problem.
//
// Any failure reproduces from the printed (scenario, seed) alone — rerun with the same pair (and
// optionally log_packets) to replay the exact message schedule. tests/fuzz_smoke_test.cc sweeps a
// fixed seed range in CI; tools/fuzz_coherence.cc is the standalone sweep/replay binary.
#ifndef DFIL_APPS_FUZZ_DRIVER_H_
#define DFIL_APPS_FUZZ_DRIVER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/stats.h"
#include "src/common/trace.h"
#include "src/core/cluster.h"

namespace dfil::apps {

struct FuzzOptions {
  bool log_packets = false;   // enable kDebug logging for the faulted run (single-seed replay aid)
  bool capture_trace = false;  // record a Chrome trace of the faulted run (FuzzResult::trace)
  // Write FLIGHT_<scenario>_seed<N>.json (dfil-flight-v1, rendered by `dfil_report flight`) into
  // the working directory whenever the case fails — the crash forensics CI attaches to a red
  // fuzz-smoke lane.
  bool flight_dump_on_failure = false;
  // > 0 overrides the runaway guard. Applied after every RNG draw, so overriding it never
  // reshuffles the configs of the existing (scenario, seed) corpus.
  SimTime max_virtual_time = 0;
};

struct FuzzResult {
  std::string scenario;
  uint64_t seed = 0;
  std::string config_desc;  // resolved app/pcp/nodes/... (human-readable, for failure reports)

  bool completed = false;
  bool output_ok = false;
  std::vector<std::string> violations;  // oracle violations (empty on a clean run)

  uint64_t oracle_checks = 0;
  uint64_t quiescent_points = 0;
  SimTime makespan = 0;

  // Cluster-wide totals from the faulted run (what the adversary actually exercised).
  MessageStats net;
  DsmStats dsm;

  // The faulted run's trace (null unless FuzzOptions::capture_trace): spans plus the injection
  // instants ("inject" track), so a replayed failure shows exactly which drop/dup/delay/stall
  // decisions surrounded the misbehaving exchange.
  std::shared_ptr<TraceRecorder> trace;

  // Flight-recorder snapshot from the faulted run: every node's last wait events and the
  // adversary's recent injection decisions, frozen at the first oracle violation (else end of
  // run). FuzzOptions::flight_dump_on_failure serializes it; flight_path names the file written
  // (empty when none was).
  core::FlightSnapshot flight;
  std::string flight_path;

  bool ok() const { return completed && output_ok && violations.empty(); }
  // One-line verdict, e.g. "FAIL reorder seed=17 [jacobi wi n=3 ps=9]: 2 violations".
  std::string Summary() const;
};

// The scenario registry, in a fixed order (tools/fuzz_coherence.cc --list prints it).
const std::vector<std::string>& FuzzScenarios();

// Runs one fuzz case. `scenario` must come from FuzzScenarios(); unknown names abort.
FuzzResult RunFuzzCase(const std::string& scenario, uint64_t seed, const FuzzOptions& opts = {});

}  // namespace dfil::apps

#endif  // DFIL_APPS_FUZZ_DRIVER_H_
