#include "src/apps/fft.h"

#include <cmath>
#include <complex>
#include <numbers>


namespace dfil::apps {
namespace {

using core::Cluster;
using core::ClusterConfig;
using core::FjArgs;
using core::FjHandle;
using core::FjResult;
using core::NodeEnv;
using Complex = std::complex<double>;

// Deterministic input signal.
Complex Signal(int64_t i) {
  return Complex(std::sin(0.05 * static_cast<double>(i)),
                 std::cos(0.11 * static_cast<double>(i)) * 0.5);
}

// Virtual cost of one butterfly (complex multiply-add pair).
constexpr SimTime kButterflyCost = Microseconds(0.9);
// Virtual cost of moving one element during the even/odd split.
constexpr SimTime kSplitCost = Microseconds(0.15);

struct FftState {
  GlobalAddr data = 0;     // complex array, n entries
  GlobalAddr scratch = 0;  // same size
  int cutoff = 256;
};

// Local (in-buffer) recursive FFT on `n` contiguous complex values; charges virtual work.
void FftLocal(NodeEnv& env, Complex* buf, Complex* tmp, int64_t n) {
  if (n == 1) {
    return;
  }
  const int64_t half = n / 2;
  for (int64_t i = 0; i < half; ++i) {
    tmp[i] = buf[2 * i];
    tmp[half + i] = buf[2 * i + 1];
  }
  env.ChargeWork(kSplitCost * n);
  FftLocal(env, tmp, buf, half);
  FftLocal(env, tmp + half, buf, half);
  for (int64_t k = 0; k < half; ++k) {
    const double angle = -2.0 * std::numbers::pi * static_cast<double>(k) / static_cast<double>(n);
    const Complex w(std::cos(angle), std::sin(angle));
    const Complex e = tmp[k];
    const Complex o = w * tmp[half + k];
    buf[k] = e + o;
    buf[half + k] = e - o;
  }
  env.ChargeWork(kButterflyCost * half);
}

// Fork/join filament: transform data[off, off+n) using scratch[off, off+n).
// args.i = {offset, n}.
FjResult FftTask(NodeEnv& env, const FjArgs& a) {
  auto* st = static_cast<FftState*>(env.user_ctx);
  const int64_t off = a.i[0];
  const int64_t n = a.i[1];
  const size_t bytes = static_cast<size_t>(n) * sizeof(Complex);
  const GlobalAddr data = st->data + static_cast<GlobalAddr>(off) * sizeof(Complex);
  const GlobalAddr scratch = st->scratch + static_cast<GlobalAddr>(off) * sizeof(Complex);

  if (n <= st->cutoff) {
    auto* buf = reinterpret_cast<Complex*>(env.AccessBytes(data, bytes, dsm::AccessMode::kWrite));
    auto* tmp =
        reinterpret_cast<Complex*>(env.AccessBytes(scratch, bytes, dsm::AccessMode::kWrite));
    FftLocal(env, buf, tmp, n);
    return FjResult{};
  }

  const int64_t half = n / 2;
  {
    // Split evens/odds into the scratch halves (pages migrate here).
    auto* buf = reinterpret_cast<Complex*>(env.AccessBytes(data, bytes, dsm::AccessMode::kRead));
    auto* tmp =
        reinterpret_cast<Complex*>(env.AccessBytes(scratch, bytes, dsm::AccessMode::kWrite));
    for (int64_t i = 0; i < half; ++i) {
      tmp[i] = buf[2 * i];
      tmp[half + i] = buf[2 * i + 1];
    }
    env.ChargeWork(kSplitCost * n);
    auto* bufw = reinterpret_cast<Complex*>(env.AccessBytes(data, bytes, dsm::AccessMode::kWrite));
    for (int64_t i = 0; i < n; ++i) {
      bufw[i] = tmp[i];
    }
    env.ChargeWork(kSplitCost * n);
  }

  FjArgs left;
  left.i[0] = off;
  left.i[1] = half;
  FjArgs right;
  right.i[0] = off + half;
  right.i[1] = half;
  FjHandle hl = env.Fork(&FftTask, left);
  FjHandle hr = env.Fork(&FftTask, right);
  env.Join(hl);
  env.Join(hr);

  // Combine: data holds [FFT(evens), FFT(odds)] — butterfly into scratch, copy back.
  auto* buf = reinterpret_cast<Complex*>(env.AccessBytes(data, bytes, dsm::AccessMode::kWrite));
  auto* tmp = reinterpret_cast<Complex*>(env.AccessBytes(scratch, bytes, dsm::AccessMode::kWrite));
  for (int64_t k = 0; k < half; ++k) {
    const double angle = -2.0 * std::numbers::pi * static_cast<double>(k) / static_cast<double>(n);
    const Complex w(std::cos(angle), std::sin(angle));
    const Complex e = buf[k];
    const Complex o = w * buf[half + k];
    tmp[k] = e + o;
    tmp[half + k] = e - o;
  }
  env.ChargeWork(kButterflyCost * half);
  for (int64_t i = 0; i < n; ++i) {
    buf[i] = tmp[i];
  }
  env.ChargeWork(kSplitCost * n);
  return FjResult{};
}

std::vector<double> Flatten(const Complex* data, int64_t n) {
  std::vector<double> out;
  out.reserve(2 * n);
  for (int64_t i = 0; i < n; ++i) {
    out.push_back(data[i].real());
    out.push_back(data[i].imag());
  }
  return out;
}

}  // namespace

AppRun RunFftSeq(const FftParams& p, const ClusterConfig& base) {
  ClusterConfig cfg = base;
  cfg.nodes = 1;
  Cluster cluster(cfg);
  const int64_t n = int64_t{1} << p.log2_n;
  AppRun run;
  run.report = cluster.Run([&](NodeEnv& env) {
    std::vector<Complex> buf(n);
    std::vector<Complex> tmp(n);
    for (int64_t i = 0; i < n; ++i) {
      buf[i] = Signal(i);
    }
    FftLocal(env, buf.data(), tmp.data(), n);
    run.output = Flatten(buf.data(), n);
  });
  for (double x : run.output) {
    run.checksum += x;
  }
  return run;
}

AppRun RunFftDf(const FftParams& p, const ClusterConfig& base) {
  ClusterConfig cfg = base;
  cfg.dsm.pcp = dsm::Pcp::kMigratory;
  cfg.wake_at_front = true;
  Cluster cluster(cfg);
  const int64_t n = int64_t{1} << p.log2_n;
  const size_t bytes = static_cast<size_t>(n) * sizeof(Complex);
  const GlobalAddr data = cluster.layout().AllocPadded(bytes, "fft_data");
  const GlobalAddr scratch = cluster.layout().AllocPadded(bytes, "fft_scratch");

  AppRun run;
  std::vector<FftState> states(cfg.nodes);
  run.report = cluster.Run([&](NodeEnv& env) {
    FftState& st = states[env.node()];
    st.data = data;
    st.scratch = scratch;
    st.cutoff = p.sequential_cutoff;
    env.user_ctx = &st;
    if (env.node() == 0) {
      auto* buf =
          reinterpret_cast<Complex*>(env.AccessBytes(data, bytes, dsm::AccessMode::kWrite));
      for (int64_t i = 0; i < n; ++i) {
        buf[i] = Signal(i);
      }
      env.ChargeWork(kSplitCost * n);
    }
    env.Barrier();

    FjArgs root;
    root.i[0] = 0;
    root.i[1] = n;
    env.RunForkJoin(&FftTask, root);

    if (env.node() == 0) {
      const auto* buf =
          reinterpret_cast<const Complex*>(env.AccessBytes(data, bytes, dsm::AccessMode::kRead));
      run.output = Flatten(buf, n);
    }
  });
  for (double x : run.output) {
    run.checksum += x;
  }
  return run;
}

}  // namespace dfil::apps
