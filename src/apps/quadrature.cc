#include "src/apps/quadrature.h"

#include <cmath>
#include <deque>


namespace dfil::apps {
namespace {

using core::Cluster;
using core::ClusterConfig;
using core::FjArgs;
using core::FjHandle;
using core::FjResult;
using core::NodeEnv;

// Two sharp bumps near the interval ends over a smooth background: the left one dominates, so
// equal static subintervals suffer the paper's severe load imbalance while the extremes hold most
// of the work.
constexpr double kBump1Center = 1.2, kBump1Height = 1200.0, kBump1Width = 0.05;
constexpr double kBump2Center = 22.8, kBump2Height = 320.0, kBump2Width = 0.05;

double Bump(double x, double c, double h, double w) {
  const double t = (x - c) / w;
  return h / (1.0 + t * t);
}

struct QuadState {
  double tolerance = 0;
  double min_width = 1e-10;
  int64_t evals = 0;  // host-side counter (diagnostics)
};

double Eval(NodeEnv& env, QuadState* st, double x) {
  st->evals++;
  env.ChargeWork(env.runtime().costs().quad_feval);
  return QuadF(x);
}

// One adaptive bisection step; returns the accepted trapezoid value or recurses.
double QuadRecurse(NodeEnv& env, QuadState* st, double a, double b, double fa, double fb) {
  const double m = 0.5 * (a + b);
  const double fm = Eval(env, st, m);
  const double whole = 0.5 * (fa + fb) * (b - a);
  const double halves = 0.5 * (fa + fm) * (m - a) + 0.5 * (fm + fb) * (b - m);
  if (std::fabs(whole - halves) <= st->tolerance * (b - a) || (b - a) < st->min_width) {
    return halves;
  }
  return QuadRecurse(env, st, a, m, fa, fm) + QuadRecurse(env, st, m, b, fm, fb);
}

// Fork/join filament: identical association as the sequential recursion, so the DF result matches
// the sequential value bit-for-bit.
FjResult QuadTask(NodeEnv& env, const FjArgs& args) {
  auto* st = static_cast<QuadState*>(env.user_ctx);
  const double a = args.d[0], b = args.d[1], fa = args.d[2], fb = args.d[3];
  const double m = 0.5 * (a + b);
  const double fm = Eval(env, st, m);
  const double whole = 0.5 * (fa + fb) * (b - a);
  const double halves = 0.5 * (fa + fm) * (m - a) + 0.5 * (fm + fb) * (b - m);
  if (std::fabs(whole - halves) <= st->tolerance * (b - a) || (b - a) < st->min_width) {
    return FjResult{halves, 0};
  }
  FjArgs left;
  left.d[0] = a;
  left.d[1] = m;
  left.d[2] = fa;
  left.d[3] = fm;
  FjArgs right;
  right.d[0] = m;
  right.d[1] = b;
  right.d[2] = fm;
  right.d[3] = fb;
  FjHandle hl = env.Fork(&QuadTask, left);
  FjHandle hr = env.Fork(&QuadTask, right);
  const FjResult rl = env.Join(hl);
  const FjResult rr = env.Join(hr);
  return FjResult{rl.d + rr.d, 0};
}

}  // namespace

double QuadF(double x) {
  return std::cos(x) + 2.0 + Bump(x, kBump1Center, kBump1Height, kBump1Width) +
         Bump(x, kBump2Center, kBump2Height, kBump2Width);
}

AppRun RunQuadratureSeq(const QuadratureParams& p, const ClusterConfig& base) {
  ClusterConfig cfg = base;
  cfg.nodes = 1;
  Cluster cluster(cfg);
  AppRun run;
  run.report = cluster.Run([&](NodeEnv& env) {
    QuadState st;
    st.tolerance = p.tolerance;
    env.user_ctx = &st;
    const double fa = Eval(env, &st, p.a);
    const double fb = Eval(env, &st, p.b);
    run.checksum = QuadRecurse(env, &st, p.a, p.b, fa, fb);
    run.output = {run.checksum, static_cast<double>(st.evals)};
  });
  return run;
}

AppRun RunQuadratureCgStatic(const QuadratureParams& p, const ClusterConfig& base) {
  ClusterConfig cfg = base;
  Cluster cluster(cfg);
  AppRun run;
  std::vector<double> evals(cfg.nodes, 0.0);
  double total = 0;
  run.report = cluster.Run([&](NodeEnv& env) {
    QuadState st;
    st.tolerance = p.tolerance;
    env.user_ctx = &st;
    // Equal-width subinterval per node (the paper's first CG program).
    const double width = (p.b - p.a) / env.nodes();
    const double a = p.a + env.node() * width;
    const double b = env.node() == env.nodes() - 1 ? p.b : a + width;
    const double fa = Eval(env, &st, a);
    const double fb = Eval(env, &st, b);
    const double local = QuadRecurse(env, &st, a, b, fa, fb);
    const double sum = CgAllReduce(env, local, CgOp::kSum, 700);
    evals[env.node()] = static_cast<double>(st.evals);
    if (env.node() == 0) {
      total = sum;
    }
  });
  run.checksum = total;
  run.output = evals;
  return run;
}

AppRun RunQuadratureCgBag(const QuadratureParams& p, const ClusterConfig& base) {
  ClusterConfig cfg = base;
  Cluster cluster(cfg);
  AppRun run;
  double total = 0;

  struct BagTask {
    double a, b, fa, fb;
  };
  // Tags: 60 worker->master (request/completion), 61 master->worker (task/terminate),
  //       62 worker->master final partial sum.
  struct ReqMsg {
    uint8_t completed;     // previous task finished
    uint8_t npush;         // subdivided halves pushed back to the bag
    BagTask push[2];
  };
  struct TaskMsg {
    uint8_t kind;  // 0 = task, 1 = terminate
    BagTask task;
  };

  run.report = cluster.Run([&](NodeEnv& env) {
    QuadState st;
    st.tolerance = p.tolerance;
    env.user_ctx = &st;
    const double bag_min_width = (p.b - p.a) / p.bag_tasks;

    if (env.node() == 0) {
      // Master: dedicated dispatcher of the centralized bag (workers split tasks adaptively and
      // push halves back, so the bag sees the full stream of small tasks — the paper's overhead).
      std::deque<BagTask> bag;
      const double fa = Eval(env, &st, p.a);
      const double fb = Eval(env, &st, p.b);
      bag.push_back(BagTask{p.a, p.b, fa, fb});
      int outstanding = 0;
      double sum = 0;

      if (env.nodes() == 1) {
        // Degenerate case: master processes its own bag.
        while (!bag.empty()) {
          BagTask t = bag.front();
          bag.pop_front();
          if (t.b - t.a > bag_min_width) {
            const double m = 0.5 * (t.a + t.b);
            const double fm = Eval(env, &st, m);
            const double whole = 0.5 * (t.fa + t.fb) * (t.b - t.a);
            const double halves =
                0.5 * (t.fa + fm) * (m - t.a) + 0.5 * (fm + t.fb) * (t.b - m);
            if (std::fabs(whole - halves) <= st.tolerance * (t.b - t.a)) {
              sum += halves;
            } else {
              bag.push_back(BagTask{t.a, m, t.fa, fm});
              bag.push_back(BagTask{m, t.b, fm, t.fb});
            }
          } else {
            sum += QuadRecurse(env, &st, t.a, t.b, t.fa, t.fb);
          }
        }
        total = sum;
        return;
      }

      int active_workers = env.nodes() - 1;
      std::deque<NodeId> waiting;  // workers whose request could not be served yet
      while (active_workers > 0) {
        // Serve any waiting worker when the bag has work; otherwise terminate them when all
        // intervals are accounted for.
        while (!waiting.empty() && !bag.empty()) {
          TaskMsg tm{0, bag.front()};
          bag.pop_front();
          ++outstanding;
          env.SendValue(waiting.front(), 61, tm);
          waiting.pop_front();
        }
        if (!waiting.empty() && bag.empty() && outstanding == 0) {
          while (!waiting.empty()) {
            env.SendValue(waiting.front(), 61, TaskMsg{1, {}});
            waiting.pop_front();
            --active_workers;
          }
          continue;
        }
        if (active_workers == 0) {
          break;
        }
        // Wait for the next worker message (any worker: poll round-robin over channels).
        bool got = false;
        for (NodeId w = 1; w < env.nodes() && !got; ++w) {
          auto msg = env.runtime().ChannelTryRecv(w, 60);
          if (msg.has_value()) {
            ReqMsg rm;
            DFIL_CHECK_EQ(msg->size(), sizeof(ReqMsg));
            std::memcpy(&rm, msg->data(), sizeof(rm));
            if (rm.completed != 0) {
              --outstanding;
            }
            for (int i = 0; i < rm.npush; ++i) {
              bag.push_back(rm.push[i]);
            }
            waiting.push_back(w);
            got = true;
          }
        }
        if (!got) {
          env.runtime().WaitAnyChannel();
        }
      }
      // Collect partial sums.
      for (NodeId w = 1; w < env.nodes(); ++w) {
        sum += env.RecvValue<double>(w, 62);
      }
      total = sum;
      return;
    }

    // Worker: request a task, process it (split-and-push while coarse, recurse locally once
    // fine), report completion with any pushed halves, repeat until terminated.
    double partial = 0;
    ReqMsg rm{0, 0, {}};
    for (;;) {
      env.SendValue(0, 60, rm);
      const TaskMsg tm = env.RecvValue<TaskMsg>(0, 61);
      if (tm.kind == 1) {
        break;
      }
      const BagTask& t = tm.task;
      rm = ReqMsg{1, 0, {}};
      if (t.b - t.a > bag_min_width) {
        const double m = 0.5 * (t.a + t.b);
        const double fm = Eval(env, &st, m);
        const double whole = 0.5 * (t.fa + t.fb) * (t.b - t.a);
        const double halves = 0.5 * (t.fa + fm) * (m - t.a) + 0.5 * (fm + t.fb) * (t.b - m);
        if (std::fabs(whole - halves) <= st.tolerance * (t.b - t.a)) {
          partial += halves;
        } else {
          rm.npush = 2;
          rm.push[0] = BagTask{t.a, m, t.fa, fm};
          rm.push[1] = BagTask{m, t.b, fm, t.fb};
        }
      } else {
        partial += QuadRecurse(env, &st, t.a, t.b, t.fa, t.fb);
      }
    }
    env.SendValue(0, 62, partial);
  });
  run.checksum = total;
  return run;
}

AppRun RunQuadratureDf(const QuadratureParams& p, const ClusterConfig& base) {
  ClusterConfig cfg = base;
  cfg.wake_at_front = true;  // fork/join anti-thrashing policy
  cfg.fj.steal_enabled = true;  // adaptive quadrature is the paper's case where stealing is vital
  Cluster cluster(cfg);
  AppRun run;
  std::vector<double> evals(cfg.nodes, 0.0);
  double total = 0;
  std::vector<QuadState> states(cfg.nodes);
  run.report = cluster.Run([&](NodeEnv& env) {
    QuadState& st = states[env.node()];
    st.tolerance = p.tolerance;
    env.user_ctx = &st;
    FjArgs args;
    if (env.node() == 0) {
      args.d[0] = p.a;
      args.d[1] = p.b;
      args.d[2] = Eval(env, &st, p.a);
      args.d[3] = Eval(env, &st, p.b);
    }
    const FjResult res = env.RunForkJoin(&QuadTask, args);
    evals[env.node()] = static_cast<double>(st.evals);
    if (env.node() == 0) {
      total = res.d;
    }
  });
  run.checksum = total;
  run.output = evals;
  return run;
}

}  // namespace dfil::apps
