// Recursive FFT — an extension application (paper §2.3 lists recursive FFT among the balanced
// fork/join workloads for which dynamic load balancing does not pay; it is not part of the
// paper's evaluation tables).
//
// Radix-2 decimation-in-time over a complex array in DSM: each fork/join filament splits its
// segment into even/odd halves (through a scratch array), forks both halves, and combines with
// twiddle factors. Work is perfectly balanced, so the interesting ablation is stealing on/off.
#ifndef DFIL_APPS_FFT_H_
#define DFIL_APPS_FFT_H_

#include "src/apps/common.h"

namespace dfil::apps {

struct FftParams {
  int log2_n = 14;          // 16384-point transform
  int sequential_cutoff = 256;  // segments at or below this size transform locally
};

AppRun RunFftSeq(const FftParams& p, const core::ClusterConfig& base);
AppRun RunFftDf(const FftParams& p, const core::ClusterConfig& base);

}  // namespace dfil::apps

#endif  // DFIL_APPS_FFT_H_
