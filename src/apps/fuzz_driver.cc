#include "src/apps/fuzz_driver.h"

#include <sstream>
#include <utility>

#include "src/apps/jacobi.h"
#include "src/apps/matmul.h"
#include "src/apps/sor.h"
#include "src/core/dfil.h"
#include "src/core/metrics_io.h"
#include "src/net/packet.h"

namespace dfil::apps {
namespace {

// FNV-1a, so a scenario name perturbs the seed identically in every binary (std::hash is not
// guaranteed stable and the whole point is cross-run replay).
uint64_t HashName(const std::string& s) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : s) {
    h = (h ^ static_cast<uint8_t>(c)) * 0x100000001b3ULL;
  }
  return h;
}

uint32_t ServiceNum(net::Service s) { return static_cast<uint32_t>(s); }

// Builds the scenario's fault plan from the config stream. Parameters are drawn per seed so a
// sweep covers a band of intensities, not one fixed operating point.
sim::FaultPlan BuildPlan(const std::string& scenario, Rng& rng, int nodes) {
  sim::FaultPlan plan;
  auto delay_rule = [&](sim::FaultRule r, double lo_ms, double hi_ms) {
    r.delay_min = 0;
    r.delay_max = Milliseconds(lo_ms + (hi_ms - lo_ms) * rng.NextDouble());
    return r;
  };
  if (scenario == "clean") {
    // No faults: the oracle baseline (and a canary for false positives in the oracle itself).
  } else if (scenario == "uniform-loss") {
    plan.loss_rate = 0.05 + 0.25 * rng.NextDouble();
  } else if (scenario == "burst-loss") {
    plan.burst.p_good_to_bad = 0.02 + 0.08 * rng.NextDouble();
    plan.burst.p_bad_to_good = 0.2 + 0.4 * rng.NextDouble();
    plan.burst.loss_good = 0.0;
    plan.burst.loss_bad = 0.8 + 0.2 * rng.NextDouble();
  } else if (scenario == "dup-requests") {
    sim::FaultRule r;
    r.klass = sim::MsgClass::kRequest;
    r.duplicate = 0.3 + 0.5 * rng.NextDouble();
    plan.rules.push_back(delay_rule(r, 0.2, 2.0));
  } else if (scenario == "dup-replies") {
    sim::FaultRule r;
    r.klass = sim::MsgClass::kReply;
    r.duplicate = 0.3 + 0.5 * rng.NextDouble();
    plan.rules.push_back(delay_rule(r, 0.2, 2.0));
  } else if (scenario == "reorder") {
    sim::FaultRule r;
    r.delay = 0.3 + 0.4 * rng.NextDouble();
    plan.rules.push_back(delay_rule(r, 0.5, 3.0));
  } else if (scenario == "page-chaos") {
    // Concentrated abuse of the DSM services: dropped/duplicated/delayed page traffic and
    // duplicated invalidations (the mix that flushes out stale-install and stale-duplicate bugs).
    sim::FaultRule pages;
    pages.type = ServiceNum(net::Service::kPageRequest);
    pages.drop = 0.1 + 0.2 * rng.NextDouble();
    pages.duplicate = 0.2 + 0.3 * rng.NextDouble();
    pages.delay = 0.2;
    plan.rules.push_back(delay_rule(pages, 0.2, 1.5));
    sim::FaultRule invals;
    invals.type = ServiceNum(net::Service::kInvalidate);
    invals.drop = 0.1 + 0.2 * rng.NextDouble();
    invals.duplicate = 0.3 + 0.4 * rng.NextDouble();
    plan.rules.push_back(delay_rule(invals, 0.2, 1.5));
    sim::FaultRule bulk;
    bulk.type = ServiceNum(net::Service::kBulkPageRequest);
    bulk.drop = 0.1 + 0.2 * rng.NextDouble();
    bulk.duplicate = 0.2 + 0.3 * rng.NextDouble();
    plan.rules.push_back(delay_rule(bulk, 0.2, 1.5));
    sim::FaultRule merges;
    merges.type = ServiceNum(net::Service::kDiffMerge);
    merges.drop = 0.1 + 0.2 * rng.NextDouble();
    merges.duplicate = 0.2 + 0.3 * rng.NextDouble();
    plan.rules.push_back(delay_rule(merges, 0.2, 1.5));
  } else if (scenario == "stall") {
    const int count = 1 + static_cast<int>(rng.NextBounded(2));
    for (int i = 0; i < count; ++i) {
      sim::StallSpec s;
      s.node = static_cast<NodeId>(rng.NextBounded(static_cast<uint64_t>(nodes)));
      s.first = Milliseconds(1.0 + static_cast<double>(rng.NextBounded(10)));
      s.period = rng.NextBernoulli(0.5)
                     ? 0
                     : Milliseconds(5.0 + static_cast<double>(rng.NextBounded(20)));
      s.duration = Milliseconds(0.5 + 2.0 * rng.NextDouble());
      plan.stalls.push_back(s);
    }
  } else if (scenario == "mixed") {
    plan.loss_rate = 0.02 + 0.08 * rng.NextDouble();
    sim::FaultRule reorder;
    reorder.delay = 0.2 + 0.3 * rng.NextDouble();
    plan.rules.push_back(delay_rule(reorder, 0.3, 2.0));
    sim::FaultRule dup;
    dup.duplicate = 0.2 + 0.4 * rng.NextDouble();
    plan.rules.push_back(delay_rule(dup, 0.2, 1.0));
    sim::StallSpec s;
    s.node = static_cast<NodeId>(rng.NextBounded(static_cast<uint64_t>(nodes)));
    s.first = Milliseconds(2.0 + static_cast<double>(rng.NextBounded(8)));
    s.period = Milliseconds(10.0 + static_cast<double>(rng.NextBounded(15)));
    s.duration = Milliseconds(0.5 + 1.5 * rng.NextDouble());
    plan.stalls.push_back(s);
  } else {
    DFIL_CHECK(false) << "unknown fuzz scenario '" << scenario << "'";
  }
  return plan;
}

}  // namespace

const std::vector<std::string>& FuzzScenarios() {
  static const std::vector<std::string> kScenarios = {
      "clean",       "uniform-loss", "burst-loss", "dup-requests", "dup-replies",
      "reorder",     "page-chaos",   "stall",      "mixed",
  };
  return kScenarios;
}

std::string FuzzResult::Summary() const {
  std::ostringstream os;
  os << (ok() ? "ok  " : "FAIL") << " " << scenario << " seed=" << seed << " [" << config_desc
     << "]";
  if (!completed) {
    os << ": did not complete";
  }
  if (!output_ok) {
    os << ": output diverges from sequential reference";
  }
  if (!violations.empty()) {
    os << ": " << violations.size() << " oracle violation(s), first: " << violations.front();
  }
  return os.str();
}

FuzzResult RunFuzzCase(const std::string& scenario, uint64_t seed, const FuzzOptions& opts) {
  FuzzResult result;
  result.scenario = scenario;
  result.seed = seed;

  // Everything below draws from this one stream, in a fixed order — the (scenario, seed) pair is
  // the complete description of the case.
  Rng rng(seed ^ HashName(scenario));

  core::ClusterConfig cfg;
  cfg.nodes = 2 + static_cast<int>(rng.NextBounded(3));
  cfg.seed = rng.NextU64() | 1;
  cfg.page_shift = 9 + rng.NextBounded(2);  // 512 B / 1 KB pages: small problems still share pages
  static const dsm::Pcp kPcps[] = {dsm::Pcp::kMigratory, dsm::Pcp::kWriteInvalidate,
                                   dsm::Pcp::kImplicitInvalidate, dsm::Pcp::kDiff};
  cfg.dsm.pcp = kPcps[rng.NextBounded(4)];
  // Never 0: the Mirage hold window is the progress guarantee when pages ping-pong (dsm_node.h),
  // and the fuzzed problems are small enough that strips genuinely share writable pages.
  static const double kMirageMs[] = {0.5, 2.0};
  cfg.dsm.mirage_window = Milliseconds(kMirageMs[rng.NextBounded(2)]);
  if (cfg.dsm.pcp != dsm::Pcp::kMigratory && rng.NextBernoulli(0.5)) {
    cfg.dsm.prefetch_detector = true;  // exercise the bulk-transfer install path under faults
  }
  if (cfg.dsm.pcp == dsm::Pcp::kImplicitInvalidate && rng.NextBernoulli(0.5)) {
    // Per-page-group adaptation: groups flip between implicit-invalidate and diff mid-run, so
    // the sweep also covers the transition machinery (mode races self-correct via reply tags).
    cfg.dsm.adapt_protocols = true;
    cfg.dsm.adapt_to_diff_threshold = 1 + static_cast<uint32_t>(rng.NextBounded(3));
  }
  cfg.barrier = rng.NextBernoulli(0.5) ? core::ClusterConfig::BarrierKind::kTournamentBroadcast
                                       : core::ClusterConfig::BarrierKind::kCentral;
  cfg.reliable_broadcast = true;  // a lost result broadcast would hang the barrier under loss
  cfg.packet.retransmit_timeout = Milliseconds(10.0);
  cfg.packet.retransmit_timeout_max = Milliseconds(40.0);
  cfg.max_virtual_time = Seconds(120.0);
  cfg.trace_enabled = opts.capture_trace;
  cfg.fault_plan = BuildPlan(scenario, rng, cfg.nodes);
  cfg.fault_plan.seed = rng.NextU64() | 1;
  // Coalescing on/off dimension (DESIGN.md §11), drawn from a derived stream rather than `rng` so
  // adding it did not reshuffle the config draws of the pre-existing (scenario, seed) corpus.
  // With it on, every fault scenario also hits packed datagrams (dropping one is correlated loss
  // of every frame inside), the mutual-peer hold, and the elided-ack sync-point batching.
  Rng coalesce_rng(seed ^ HashName(scenario) ^ HashName("coalesce"));
  if (coalesce_rng.NextBernoulli(0.5)) {
    cfg.coalesce.enabled = true;
    // Scale the estimator floor to the fuzz's shortened timeouts (rto_min defaults to the
    // production 100ms fixed timeout, which would pin every estimated RTO at the 40ms max here).
    cfg.packet.rto_min = cfg.packet.retransmit_timeout;
  }
  // Load-balancer dimension (DESIGN.md §13), likewise drawn from its own derived stream. Knobs
  // are drawn aggressive (low trigger, short patience/cooldown) so the tiny fuzz problems really
  // do emit plans, migrate pools, and re-home pages while every fault scenario is active —
  // the output must stay bitwise equal to the sequential reference regardless.
  Rng balance_rng(seed ^ HashName(scenario) ^ HashName("balance"));
  if (balance_rng.NextBernoulli(0.35)) {
    cfg.balancer.enabled = true;
    cfg.waitstate_enabled = true;  // the balancer's signal; Validate insists on it
    cfg.balancer.balance_trigger_ratio = 0.05 + 0.25 * balance_rng.NextDouble();
    cfg.balancer.balance_patience_epochs = 1 + static_cast<int>(balance_rng.NextBounded(3));
    cfg.balancer.balance_cooldown_epochs = 1 + static_cast<int>(balance_rng.NextBounded(4));
    cfg.balancer.balance_move_fraction = 0.25 + 0.5 * balance_rng.NextDouble();
    cfg.balancer.balance_rehome_pages = balance_rng.NextBernoulli(0.75);
  }
  if (opts.max_virtual_time > 0) {
    cfg.max_virtual_time = opts.max_virtual_time;
  }
  // Every generated config must pass the same validation Cluster enforces at construction; a
  // draw that can produce an invalid combination is a bug in this driver, not in the run.
  DFIL_CHECK(cfg.Validate().empty())
      << "fuzz driver drew an invalid config: " << cfg.Validate().front();

  dsm::CoherenceOracle oracle;
  cfg.coherence_oracle = &oracle;

  const LogLevel prior_level = DfilLogLevel();
  if (opts.log_packets) {
    DfilSetLogLevel(LogLevel::kDebug);
  }

  const int app = static_cast<int>(rng.NextBounded(3));
  core::ClusterConfig seq_cfg;  // sequential reference: one node, no faults, no oracle
  seq_cfg.nodes = 1;
  seq_cfg.page_shift = cfg.page_shift;
  AppRun faulted;
  AppRun reference;
  std::ostringstream desc;
  switch (app) {
    case 0: {
      JacobiParams p;
      p.n = 16 + 4 * static_cast<int>(rng.NextBounded(3));
      p.iterations = 3 + static_cast<int>(rng.NextBounded(3));
      p.pools = rng.NextBernoulli(0.25) ? 1 : 3;
      desc << "jacobi n=" << p.n << " it=" << p.iterations << " pools=" << p.pools;
      faulted = RunJacobiDf(p, cfg);
      reference = RunJacobiSeq(p, seq_cfg);
      break;
    }
    case 1: {
      SorParams p;
      p.n = 12 + 4 * static_cast<int>(rng.NextBounded(2));
      p.iterations = 2 + static_cast<int>(rng.NextBounded(3));
      desc << "sor n=" << p.n << " it=" << p.iterations;
      faulted = RunSorDf(p, cfg);
      reference = RunSorSeq(p, seq_cfg);
      break;
    }
    default: {
      MatmulParams p;
      p.n = 12 + 4 * static_cast<int>(rng.NextBounded(2));
      p.pools_per_node = 2 + static_cast<int>(rng.NextBounded(3));
      desc << "matmul n=" << p.n;
      faulted = RunMatmulDf(p, cfg);
      reference = RunMatmulSeq(p, seq_cfg);
      break;
    }
  }
  if (opts.log_packets) {
    DfilSetLogLevel(prior_level);
  }

  desc << " pcp=" << dsm::PcpName(cfg.dsm.pcp) << " nodes=" << cfg.nodes
       << " ps=" << cfg.page_shift << (cfg.dsm.prefetch_detector ? " prefetch" : "")
       << (cfg.dsm.adapt_protocols ? " adapt" : "")
       << (cfg.coalesce.enabled ? " coalesce" : "") << (cfg.balancer.enabled ? " balance" : "")
       << (cfg.barrier == core::ClusterConfig::BarrierKind::kCentral ? " central" : " tournament");
  result.config_desc = desc.str();

  result.completed = faulted.report.completed;
  // Bitwise equality: every app's DF variant performs the identical per-element arithmetic as the
  // sequential program, so any divergence is a coherence bug, not floating-point noise.
  result.output_ok = result.completed && faulted.output == reference.output;
  result.violations = oracle.violations();
  result.oracle_checks = oracle.checks_run();
  result.quiescent_points = oracle.quiescent_points();
  result.makespan = faulted.report.makespan;
  result.net = faulted.report.net;
  result.trace = faulted.report.trace;
  result.flight = faulted.report.flight;
  if (opts.flight_dump_on_failure && !result.ok()) {
    result.flight_path = core::WriteFlightFile(
        faulted.report, scenario + "_seed" + std::to_string(seed), result.violations);
  }
  for (const core::NodeReport& nr : faulted.report.nodes) {
    const DsmStats& d = nr.dsm;
    result.dsm.read_faults += d.read_faults;
    result.dsm.write_faults += d.write_faults;
    result.dsm.page_requests_served += d.page_requests_served;
    result.dsm.invalidations_sent += d.invalidations_sent;
    result.dsm.invalidations_received += d.invalidations_received;
    result.dsm.implicit_invalidations += d.implicit_invalidations;
    result.dsm.page_forwards += d.page_forwards;
    result.dsm.mirage_deferrals += d.mirage_deferrals;
    result.dsm.fetch_deferrals += d.fetch_deferrals;
    result.dsm.use_deferrals += d.use_deferrals;
    result.dsm.grant_reserves += d.grant_reserves;
    result.dsm.stale_invalidations_ignored += d.stale_invalidations_ignored;
    result.dsm.stale_transfer_dups_ignored += d.stale_transfer_dups_ignored;
    result.dsm.discarded_installs += d.discarded_installs;
  }
  return result;
}

}  // namespace dfil::apps
