#include "src/apps/exprtree.h"

#include <cmath>
#include <cstring>


namespace dfil::apps {
namespace {

using core::Cluster;
using core::ClusterConfig;
using core::FjArgs;
using core::FjHandle;
using core::FjResult;
using core::NodeEnv;

double LeafEntry(int64_t leaf, int64_t i, int64_t j) {
  return static_cast<double>((i * 3 + j * 7 + leaf * 11) % 19 - 9) * 0.01;
}

// c = a * b for dim x dim row-major matrices, charging the calibrated per-MAC cost.
void MatMulLocal(NodeEnv& env, const double* a, const double* b, double* c, int dim) {
  for (int i = 0; i < dim; ++i) {
    for (int j = 0; j < dim; ++j) {
      double sum = 0;
      for (int k = 0; k < dim; ++k) {
        sum += a[static_cast<size_t>(i) * dim + k] * b[static_cast<size_t>(k) * dim + j];
      }
      c[static_cast<size_t>(i) * dim + j] = sum;
    }
  }
  env.ChargeWork(env.runtime().costs().tree_mac * dim * dim * dim);
}

struct DfState {
  std::vector<GlobalAddr> matrix;  // heap-indexed matrix base addresses (index 0 unused)
  int dim = 0;
  int leaf_base = 0;  // first leaf heap index (2^height)
};

// Fork/join filament: evaluate the subtree rooted at heap index args.i[0]; the result matrix
// lands at matrix[args.i[0]] and the filament returns that heap index.
FjResult TreeTask(NodeEnv& env, const FjArgs& args) {
  auto* st = static_cast<DfState*>(env.user_ctx);
  const int64_t node = args.i[0];
  if (node >= st->leaf_base) {
    return FjResult{0.0, node};  // leaf: the matrix is already in DSM
  }
  FjArgs left;
  left.i[0] = 2 * node;
  FjArgs right;
  right.i[0] = 2 * node + 1;
  FjHandle hl = env.Fork(&TreeTask, left);
  FjHandle hr = env.Fork(&TreeTask, right);
  const FjResult rl = env.Join(hl);
  const FjResult rr = env.Join(hr);
  const int dim = st->dim;
  const size_t bytes = static_cast<size_t>(dim) * dim * sizeof(double);
  // Page faults migrate the children's matrices here; the write fault claims our result pages.
  const auto* a = reinterpret_cast<const double*>(
      env.AccessBytes(st->matrix[rl.i], bytes, dsm::AccessMode::kRead));
  const auto* b = reinterpret_cast<const double*>(
      env.AccessBytes(st->matrix[rr.i], bytes, dsm::AccessMode::kRead));
  auto* c = reinterpret_cast<double*>(
      env.AccessBytes(st->matrix[node], bytes, dsm::AccessMode::kWrite));
  MatMulLocal(env, a, b, c, dim);
  return FjResult{0.0, node};
}

}  // namespace

AppRun RunExprTreeSeq(const ExprTreeParams& p, const ClusterConfig& base) {
  ClusterConfig cfg = base;
  cfg.nodes = 1;
  Cluster cluster(cfg);
  const int dim = p.matrix_dim;
  const int leaves = 1 << p.height;
  AppRun run;
  run.report = cluster.Run([&](NodeEnv& env) {
    const sim::CostModel& costs = env.runtime().costs();
    const size_t mat = static_cast<size_t>(dim) * dim;
    // Evaluate bottom-up, level by level (same association as the recursive traversal).
    std::vector<std::vector<double>> level(leaves);
    for (int leaf = 0; leaf < leaves; ++leaf) {
      level[leaf].resize(mat);
      for (int i = 0; i < dim; ++i) {
        for (int j = 0; j < dim; ++j) {
          level[leaf][static_cast<size_t>(i) * dim + j] = LeafEntry(leaves + leaf, i, j);
        }
      }
      env.ChargeWork(costs.loop_iter_overhead * dim * dim);
    }
    for (int width = leaves / 2; width >= 1; width /= 2) {
      std::vector<std::vector<double>> next(width);
      for (int q = 0; q < width; ++q) {
        next[q].resize(mat);
        MatMulLocal(env, level[2 * q].data(), level[2 * q + 1].data(), next[q].data(), dim);
      }
      level = std::move(next);
    }
    run.output = level[0];
  });
  for (double x : run.output) {
    run.checksum += x;
  }
  return run;
}

AppRun RunExprTreeCg(const ExprTreeParams& p, const ClusterConfig& base) {
  ClusterConfig cfg = base;
  const int pnodes = cfg.nodes;
  DFIL_CHECK((pnodes & (pnodes - 1)) == 0) << "CG expression tree requires a power-of-two nodes";
  DFIL_CHECK_LE(pnodes, 1 << p.height);
  Cluster cluster(cfg);
  const int dim = p.matrix_dim;
  const int leaves = 1 << p.height;
  AppRun run;
  run.report = cluster.Run([&](NodeEnv& env) {
    const sim::CostModel& costs = env.runtime().costs();
    const size_t mat = static_cast<size_t>(dim) * dim;
    const int k = env.node();
    int m = 0;
    while ((1 << m) < pnodes) {
      ++m;
    }
    // Phase 1: evaluate my subtree (heap root pnodes + k) sequentially.
    const int my_leaves = leaves / pnodes;
    const int first_leaf = leaves + k * my_leaves;  // heap index of my first leaf
    std::vector<std::vector<double>> level(my_leaves);
    for (int q = 0; q < my_leaves; ++q) {
      level[q].resize(mat);
      for (int i = 0; i < dim; ++i) {
        for (int j = 0; j < dim; ++j) {
          level[q][static_cast<size_t>(i) * dim + j] = LeafEntry(first_leaf + q, i, j);
        }
      }
      env.ChargeWork(costs.loop_iter_overhead * dim * dim);
    }
    while (level.size() > 1) {
      std::vector<std::vector<double>> next(level.size() / 2);
      for (size_t q = 0; q < next.size(); ++q) {
        next[q].resize(mat);
        MatMulLocal(env, level[2 * q].data(), level[2 * q + 1].data(), next[q].data(), dim);
      }
      level = std::move(next);
    }
    std::vector<double> mine = std::move(level[0]);

    // Phase 2: combining tree — half the active nodes drop out at each level; a total of p-1
    // result matrices cross the network (the paper counts 2(p-1) messages: header + data).
    for (int l = m - 1; l >= 0; --l) {
      const int stride = 1 << (m - l - 1);  // holder spacing at the child level
      if (k % stride != 0) {
        break;  // already inactive
      }
      const int q_child = k / stride;
      if (q_child % 2 == 1) {
        SendBulk(env, (q_child - 1) * stride, /*tag=*/40 + static_cast<uint32_t>(l),
                 AsBytes(mine));
        break;  // inactive from here up
      }
      std::vector<double> right(mat);
      RecvBulk(env, (q_child + 1) * stride, 40 + static_cast<uint32_t>(l),
               AsWritableBytes(right));
      std::vector<double> product(mat);
      MatMulLocal(env, mine.data(), right.data(), product.data(), dim);
      mine = std::move(product);
    }
    if (k == 0) {
      run.output = mine;
    }
  });
  for (double x : run.output) {
    run.checksum += x;
  }
  return run;
}

AppRun RunExprTreeDf(const ExprTreeParams& p, const ClusterConfig& base) {
  ClusterConfig cfg = base;
  cfg.dsm.pcp = dsm::Pcp::kMigratory;  // the paper's choice for this application
  cfg.wake_at_front = true;
  cfg.fj.steal_enabled = false;  // balanced workload: page acquisition outweighs balancing (§2.3)
  Cluster cluster(cfg);
  const int dim = p.matrix_dim;
  const int leaves = 1 << p.height;
  const int total = 2 * leaves;  // heap size (index 0 unused)
  const size_t bytes = static_cast<size_t>(dim) * dim * sizeof(double);

  std::vector<GlobalAddr> matrix(total);
  for (int node = 1; node < total; ++node) {
    matrix[node] = cluster.layout().AllocPadded(bytes, "m" + std::to_string(node));
    // Group each matrix's pages: a request for any page fetches the whole matrix.
    const PageId first = cluster.layout().PageOf(matrix[node]);
    const PageId last = cluster.layout().PageOf(matrix[node] + bytes - 1);
    if (last > first) {
      cluster.layout().GroupPages(first, last - first + 1);
    }
  }

  AppRun run;
  std::vector<DfState> states(cfg.nodes);
  run.report = cluster.Run([&](NodeEnv& env) {
    DfState& st = states[env.node()];
    st.matrix = matrix;
    st.dim = dim;
    st.leaf_base = leaves;
    env.user_ctx = &st;
    const sim::CostModel& costs = env.runtime().costs();

    if (env.node() == 0) {
      // The master initializes the leaf matrices (it owns all pages initially).
      for (int leaf = leaves; leaf < total; ++leaf) {
        auto* mdata = reinterpret_cast<double*>(
            env.AccessBytes(matrix[leaf], bytes, dsm::AccessMode::kWrite));
        for (int i = 0; i < dim; ++i) {
          for (int j = 0; j < dim; ++j) {
            mdata[static_cast<size_t>(i) * dim + j] = LeafEntry(leaf, i, j);
          }
        }
        env.ChargeWork(costs.loop_iter_overhead * dim * dim);
      }
    }
    env.Barrier();

    FjArgs args;
    args.i[0] = 1;  // heap root
    env.RunForkJoin(&TreeTask, args);

    if (env.node() == 0) {
      // The root multiply ran on node 0, so this read is local (validation only, uncharged).
      const auto* root = reinterpret_cast<const double*>(
          env.AccessBytes(matrix[1], bytes, dsm::AccessMode::kRead));
      run.output.assign(root, root + static_cast<size_t>(dim) * dim);
    }
  });
  for (double x : run.output) {
    run.checksum += x;
  }
  return run;
}

}  // namespace dfil::apps
