// Binary expression tree evaluation (paper §4.4, Figure 7; application from Chores [EZ93]).
//
// The leaves are 70x70 matrices, interior operators are matrix multiplication, and the balanced
// tree of height 7 is traversed in parallel (the multiplications themselves run sequentially).
// The DF program uses fork/join filaments over DSM with the migratory PCP, and — unlike adaptive
// quadrature — stealing off: the workload is balanced, so for this application the cost of
// acquiring pages outweighs the gain of load balancing. The maximum possible speedup is limited
// by tail-end imbalance near the root (3.85 / 7.06 at 4 / 8 nodes for height 7).
#ifndef DFIL_APPS_EXPRTREE_H_
#define DFIL_APPS_EXPRTREE_H_

#include "src/apps/common.h"

namespace dfil::apps {

struct ExprTreeParams {
  int height = 7;        // 2^height leaf matrices
  int matrix_dim = 70;   // leaves are matrix_dim x matrix_dim
};

AppRun RunExprTreeSeq(const ExprTreeParams& p, const core::ClusterConfig& base);
// Two-phase CG program: even subtree split, then a combining tree with 2(p-1) matrix transfers.
// Supports power-of-two node counts only (the combining tree requires it).
AppRun RunExprTreeCg(const ExprTreeParams& p, const core::ClusterConfig& base);
AppRun RunExprTreeDf(const ExprTreeParams& p, const core::ClusterConfig& base);

}  // namespace dfil::apps

#endif  // DFIL_APPS_EXPRTREE_H_
