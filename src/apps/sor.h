// Red-black successive over-relaxation (SOR) — an extension application.
//
// A second "regular problem with a stable sharing pattern" (the class implicit-invalidate is
// designed for, paper §3), but with a twist Jacobi lacks: each iteration is TWO dependent
// half-sweeps (red points, then black points) over a single grid, so there are two
// synchronization points per iteration and the edge pages are fetched twice. Convergence is
// faster per iteration than Jacobi; the DSM traffic per iteration is doubled — a nice trade-off
// study for the overlap machinery.
#ifndef DFIL_APPS_SOR_H_
#define DFIL_APPS_SOR_H_

#include "src/apps/common.h"

namespace dfil::apps {

struct SorParams {
  int n = 128;
  int iterations = 100;
  double omega = 1.5;  // over-relaxation factor in (1, 2)
};

AppRun RunSorSeq(const SorParams& p, const core::ClusterConfig& base);
AppRun RunSorDf(const SorParams& p, const core::ClusterConfig& base);

}  // namespace dfil::apps

#endif  // DFIL_APPS_SOR_H_
