#include "src/apps/sor.h"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace dfil::apps {
namespace {

using core::Cluster;
using core::ClusterConfig;
using core::GlobalArray2D;
using core::NodeEnv;

// Boundary: hot left edge, cold elsewhere (asymmetric so convergence is nontrivial).
double BoundaryValue(int i, int j, int n) {
  (void)i;
  if (j == 0) {
    return 100.0;
  }
  if (j == n - 1) {
    return 0.0;
  }
  return 0.0;
}

constexpr SimTime kSorPointCost = Microseconds(11.0);  // 5-point stencil + relaxation

struct SorState {
  GlobalArray2D<double> grid;
  double omega = 1.5;
  double local_max = 0;
  int color = 0;  // 0 = red half-sweep, 1 = black
};

// One iterative filament per interior point; it only relaxes when the point's color matches the
// current half-sweep (the other half's filaments are cheap no-ops that keep the pools uniform).
void SorFilament(NodeEnv& env, int64_t i, int64_t j, int64_t) {
  auto* st = static_cast<SorState*>(env.user_ctx);
  if (((i + j) & 1) != st->color) {
    return;
  }
  const auto& g = st->grid;
  const double old = g.Read(env, i, j);
  const double gs = 0.25 * (g.Read(env, i - 1, j) + g.Read(env, i + 1, j) +
                            g.Read(env, i, j - 1) + g.Read(env, i, j + 1));
  const double next = old + st->omega * (gs - old);
  g.Write(env, i, j, next);
  const double diff = std::fabs(next - old);
  if (diff > st->local_max) {
    st->local_max = diff;
  }
  env.ChargeWork(kSorPointCost);
}

}  // namespace

AppRun RunSorSeq(const SorParams& p, const ClusterConfig& base) {
  ClusterConfig cfg = base;
  cfg.nodes = 1;
  Cluster cluster(cfg);
  const int n = p.n;
  AppRun run;
  run.report = cluster.Run([&](NodeEnv& env) {
    std::vector<double> g(static_cast<size_t>(n) * n, 0.0);
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        if (i == 0 || j == 0 || i == n - 1 || j == n - 1) {
          g[static_cast<size_t>(i) * n + j] = BoundaryValue(i, j, n);
        }
      }
    }
    double maxdiff = 0;
    for (int iter = 0; iter < p.iterations; ++iter) {
      maxdiff = 0;
      for (int color = 0; color < 2; ++color) {
        for (int i = 1; i < n - 1; ++i) {
          for (int j = 1; j < n - 1; ++j) {
            if (((i + j) & 1) != color) {
              continue;
            }
            const size_t idx = static_cast<size_t>(i) * n + j;
            const double old = g[idx];
            const double gs = 0.25 * (g[idx - n] + g[idx + n] + g[idx - 1] + g[idx + 1]);
            const double next = old + p.omega * (gs - old);
            g[idx] = next;
            maxdiff = std::max(maxdiff, std::fabs(next - old));
          }
          env.ChargeWork(kSorPointCost * ((n - 2) / 2));
        }
      }
    }
    run.output = g;
    run.checksum = maxdiff;
  });
  return run;
}

AppRun RunSorDf(const SorParams& p, const ClusterConfig& base) {
  ClusterConfig cfg = base;
  Cluster cluster(cfg);
  const int n = p.n;
  auto grid = GlobalArray2D<double>::Alloc(cluster.layout(), n, n, /*pad_rows_to_pages=*/false,
                                           "sor");
  for (NodeId node = 0; node < cfg.nodes; ++node) {
    const Strip s = StripOf(n, node, cfg.nodes);
    if (s.size() > 0) {
      cluster.layout().SetInitialOwner(grid.row_addr(s.lo),
                                       static_cast<size_t>(s.size()) * n * sizeof(double), node);
    }
  }

  AppRun run;
  run.output.assign(static_cast<size_t>(n) * n, 0.0);
  std::vector<SorState> states(cfg.nodes);
  std::vector<double> final_maxdiff(cfg.nodes, 0.0);
  run.report = cluster.Run([&](NodeEnv& env) {
    SorState& st = states[env.node()];
    st.grid = grid;
    st.omega = p.omega;
    env.user_ctx = &st;

    const Strip strip = StripOf(n, env.node(), env.nodes());
    for (int i = strip.lo; i < strip.hi; ++i) {
      double* row = grid.RowWrite(env, i);
      for (int j = 0; j < n; ++j) {
        row[j] = (i == 0 || j == 0 || i == n - 1 || j == n - 1) ? BoundaryValue(i, j, n) : 0.0;
      }
    }
    env.Barrier();

    const int first = std::max(strip.lo, 1);
    const int last = std::min(strip.hi, n - 1);
    if (first < last) {
      // Edge rows fault on neighbour pages; interior overlaps — same structure as Jacobi, but
      // here the sharing repeats twice per iteration (once per colour).
      const core::PoolHandle top = env.CreatePool();
      const core::PoolHandle bottom = env.CreatePool();
      const core::PoolHandle interior = env.CreatePool();
      auto fill = [&](core::PoolHandle pool, int i) {
        for (int j = 1; j < n - 1; ++j) {
          env.CreateFilament(pool, &SorFilament, i, j, 0);
        }
      };
      fill(top, first);
      if (last - 1 != first) {
        fill(bottom, last - 1);
      }
      for (int i = first + 1; i < last - 1; ++i) {
        fill(interior, i);
      }
    }

    // Each sweep is one half-iteration; a reduction separates the colours.
    env.RunIterative([&](int half_sweep) {
      const double local = st.local_max;
      if (st.color == 1) {
        st.local_max = 0;  // maxdiff accumulates over a full (red+black) iteration
      }
      const double global = env.Reduce(local, core::ReduceOp::kMax);
      final_maxdiff[env.node()] = global;
      st.color = 1 - st.color;
      return half_sweep + 1 < 2 * p.iterations;
    });

    for (int i = strip.lo; i < strip.hi; ++i) {
      const double* row = grid.RowRead(env, i);
      std::memcpy(run.output.data() + static_cast<size_t>(i) * n, row, n * sizeof(double));
    }
  });
  run.checksum = final_maxdiff[0];
  return run;
}

}  // namespace dfil::apps
