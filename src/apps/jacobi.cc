#include "src/apps/jacobi.h"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace dfil::apps {
namespace {

using core::Cluster;
using core::ClusterConfig;
using core::GlobalArray2D;
using core::NodeEnv;

constexpr double kTopBoundary = 100.0;
constexpr double kBottomBoundary = 0.0;
constexpr double kLeftBoundary = 25.0;
constexpr double kRightBoundary = 75.0;

// Fills boundary conditions for row i of an n-wide grid row buffer.
void FillRow(double* row, int i, int n) {
  for (int j = 0; j < n; ++j) {
    row[j] = 0.0;
  }
  if (i == 0) {
    for (int j = 0; j < n; ++j) {
      row[j] = kTopBoundary;
    }
  } else if (i == n - 1) {
    for (int j = 0; j < n; ++j) {
      row[j] = kBottomBoundary;
    }
  } else {
    row[0] = kLeftBoundary;
    row[n - 1] = kRightBoundary;
  }
}

struct DfState {
  GlobalArray2D<double> grids[2];
  int src = 0;  // index of the current-iteration source grid
  int n = 0;
  double local_max = 0;
};

// One iterative filament per interior point.
void PointFilament(NodeEnv& env, int64_t i, int64_t j, int64_t) {
  auto* st = static_cast<DfState*>(env.user_ctx);
  const GlobalArray2D<double>& u = st->grids[st->src];
  const GlobalArray2D<double>& v = st->grids[1 - st->src];
  const auto si = static_cast<size_t>(i);
  const auto sj = static_cast<size_t>(j);
  const double up = u.Read(env, si - 1, sj);
  const double down = u.Read(env, si + 1, sj);
  const double left = u.Read(env, si, sj - 1);
  const double right = u.Read(env, si, sj + 1);
  const double next = 0.25 * (up + down + left + right);
  v.Write(env, si, sj, next);
  const double diff = std::fabs(next - u.Read(env, si, sj));
  if (diff > st->local_max) {
    st->local_max = diff;
  }
  env.ChargeWork(env.runtime().costs().jacobi_point);
}

}  // namespace

AppRun RunJacobiSeq(const JacobiParams& p, const ClusterConfig& base) {
  ClusterConfig cfg = base;
  cfg.nodes = 1;
  Cluster cluster(cfg);
  const int n = p.n;
  AppRun run;
  run.report = cluster.Run([&](NodeEnv& env) {
    const sim::CostModel& costs = env.runtime().costs();
    std::vector<double> u(static_cast<size_t>(n) * n);
    std::vector<double> v(static_cast<size_t>(n) * n);
    for (int i = 0; i < n; ++i) {
      FillRow(&u[static_cast<size_t>(i) * n], i, n);
      FillRow(&v[static_cast<size_t>(i) * n], i, n);
      env.ChargeWork(costs.loop_iter_overhead * n);
    }
    double maxdiff = 0;
    for (int iter = 0; iter < p.iterations; ++iter) {
      maxdiff = 0;
      for (int i = 1; i < n - 1; ++i) {
        for (int j = 1; j < n - 1; ++j) {
          const size_t idx = static_cast<size_t>(i) * n + j;
          const double next = 0.25 * (u[idx - n] + u[idx + n] + u[idx - 1] + u[idx + 1]);
          v[idx] = next;
          maxdiff = std::max(maxdiff, std::fabs(next - u[idx]));
        }
        env.ChargeWork(costs.jacobi_point * (n - 2));
      }
      std::swap(u, v);
    }
    run.output = u;
    run.checksum = maxdiff;
  });
  return run;
}

AppRun RunJacobiCg(const JacobiParams& p, const ClusterConfig& base) {
  ClusterConfig cfg = base;
  Cluster cluster(cfg);
  const int n = p.n;
  AppRun run;
  run.output.assign(static_cast<size_t>(n) * n, 0.0);
  std::vector<double> final_maxdiff(cfg.nodes, 0.0);
  run.report = cluster.Run([&](NodeEnv& env) {
    const sim::CostModel& costs = env.runtime().costs();
    const int nodes = env.nodes();
    const Strip strip = StripOf(n, env.node(), nodes);
    const int rows = strip.size();
    // Local strip with ghost rows at 0 and rows+1.
    const size_t w = static_cast<size_t>(n);
    std::vector<double> u((rows + 2) * w, 0.0);
    std::vector<double> v((rows + 2) * w, 0.0);
    for (int i = 0; i < rows; ++i) {
      FillRow(&u[(i + 1) * w], strip.lo + i, n);
      FillRow(&v[(i + 1) * w], strip.lo + i, n);
      env.ChargeWork(costs.loop_iter_overhead * n);
    }
    const bool has_up = strip.lo > 0;
    const bool has_down = strip.hi < n;
    auto row_span = [&](std::vector<double>& g, int r) {
      return std::span<const std::byte>(reinterpret_cast<const std::byte*>(&g[r * w]),
                                        w * sizeof(double));
    };

    // Updatable rows in local coordinates [1, rows]: global interior rows only.
    const int first = strip.lo == 0 ? 2 : 1;
    const int last = strip.hi == n ? rows - 1 : rows;

    double maxdiff = 0;
    for (int iter = 0; iter < p.iterations; ++iter) {
      // Maximal overlap (paper §4.2): send edges, update interior, receive edges, update edges.
      if (has_up) {
        env.SendData(env.node() - 1, 10, row_span(u, 1));
      }
      if (has_down) {
        env.SendData(env.node() + 1, 11, row_span(u, rows));
      }
      maxdiff = 0;
      auto update_row = [&](int r) {
        for (int j = 1; j < n - 1; ++j) {
          const size_t idx = static_cast<size_t>(r) * w + j;
          const double next = 0.25 * (u[idx - w] + u[idx + w] + u[idx - 1] + u[idx + 1]);
          v[idx] = next;
          maxdiff = std::max(maxdiff, std::fabs(next - u[idx]));
        }
        env.ChargeWork(costs.jacobi_point * (n - 2));
      };
      for (int r = first + 1; r <= last - 1; ++r) {
        update_row(r);
      }
      if (has_up) {
        std::vector<std::byte> ghost = env.RecvData(env.node() - 1, 11);
        std::memcpy(&u[0], ghost.data(), w * sizeof(double));
      }
      if (has_down) {
        std::vector<std::byte> ghost = env.RecvData(env.node() + 1, 10);
        std::memcpy(&u[(rows + 1) * w], ghost.data(), w * sizeof(double));
      }
      if (last >= first) {
        update_row(first);
        if (last != first) {
          update_row(last);
        }
      }
      const double global = CgAllReduce(env, maxdiff, CgOp::kMax, 900);
      std::swap(u, v);
      if (global < 0) {
        break;  // unreachable; keeps the reduction observable
      }
    }
    final_maxdiff[env.node()] = maxdiff;
    // Assemble the final grid for validation (each node contributes its local strip).
    for (int i = 0; i < rows; ++i) {
      std::memcpy(run.output.data() + static_cast<size_t>(strip.lo + i) * w, &u[(i + 1) * w],
                  w * sizeof(double));
    }
  });
  double global_max = 0;
  for (double m : final_maxdiff) {
    global_max = std::max(global_max, m);
  }
  run.checksum = global_max;
  return run;
}

AppRun RunJacobiDf(const JacobiParams& p, const ClusterConfig& base) {
  ClusterConfig cfg = base;
  Cluster cluster(cfg);
  const int n = p.n;
  // Unpadded allocation: one 4 KB page holds two 256-double rows, exactly the paper's geometry.
  auto g0 = GlobalArray2D<double>::Alloc(cluster.layout(), n, n, /*pad_rows_to_pages=*/false, "u");
  auto g1 = GlobalArray2D<double>::Alloc(cluster.layout(), n, n, false, "v");
  // Strip ownership: each node owns the pages of its rows (strips of even size align to pages).
  for (NodeId node = 0; node < cfg.nodes; ++node) {
    const Strip s = StripOf(n, node, cfg.nodes);
    if (s.size() > 0) {
      const size_t bytes = static_cast<size_t>(s.size()) * n * sizeof(double);
      cluster.layout().SetInitialOwner(g0.row_addr(s.lo), bytes, node);
      cluster.layout().SetInitialOwner(g1.row_addr(s.lo), bytes, node);
    }
  }

  AppRun run;
  run.output.assign(static_cast<size_t>(n) * n, 0.0);
  std::vector<DfState> states(cfg.nodes);
  std::vector<double> final_maxdiff(cfg.nodes, 0.0);
  run.report = cluster.Run([&](NodeEnv& env) {
    DfState& st = states[env.node()];
    st.grids[0] = g0;
    st.grids[1] = g1;
    st.src = 0;
    st.n = n;
    env.user_ctx = &st;
    const sim::CostModel& costs = env.runtime().costs();

    const Strip strip = StripOf(n, env.node(), env.nodes());
    for (int i = strip.lo; i < strip.hi; ++i) {
      FillRow(g0.RowWrite(env, i), i, n);
      FillRow(g1.RowWrite(env, i), i, n);
      env.ChargeWork(costs.loop_iter_overhead * n);
    }
    env.Barrier();

    // Updatable (interior) rows of this strip.
    const int first = std::max(strip.lo, 1);
    const int last = std::min(strip.hi, n - 1);  // exclusive
    if (first < last) {
      if (p.pools < 0) {
        // Adaptive pool assignment: one profiling sweep, then automatic per-page clustering.
        for (int i = first; i < last; ++i) {
          for (int j = 1; j < n - 1; ++j) {
            env.CreateAutoFilament(&PointFilament, i, j, 0);
          }
        }
      } else {
        // Pools: top edge row, bottom edge row, interior (paper §4.2). The edge pools fault on
        // the neighbour's page; the interior pool overlaps those fetches. pools=1 disables the
        // overlap (Figure 12's ablation).
        const bool three = p.pools >= 3 && last - first >= 3;
        const core::PoolHandle top_pool = env.CreatePool();
        const core::PoolHandle bottom_pool = three ? env.CreatePool() : top_pool;
        const core::PoolHandle interior_pool = three ? env.CreatePool() : top_pool;
        auto fill_row = [&](core::PoolHandle pool, int i) {
          for (int j = 1; j < n - 1; ++j) {
            env.CreateFilament(pool, &PointFilament, i, j, 0);
          }
        };
        fill_row(top_pool, first);
        if (last - 1 != first) {
          fill_row(bottom_pool, last - 1);
        }
        for (int i = first + 1; i < last - 1; ++i) {
          fill_row(interior_pool, i);
        }
      }
    }

    int iterations_done = 0;
    env.RunIterative([&](int iter) {
      const double local = st.local_max;
      st.local_max = 0;
      const double global = env.Reduce(local, core::ReduceOp::kMax);
      st.src = 1 - st.src;
      iterations_done = iter + 1;
      final_maxdiff[env.node()] = global;
      return iter + 1 < p.iterations;
    });

    // Validation extraction: local strip only, uncharged.
    const GlobalArray2D<double>& final_grid = st.grids[st.src];
    for (int i = strip.lo; i < strip.hi; ++i) {
      const double* row = final_grid.RowRead(env, i);
      std::memcpy(run.output.data() + static_cast<size_t>(i) * n, row, n * sizeof(double));
    }
  });
  run.checksum = final_maxdiff[0];
  return run;
}

}  // namespace dfil::apps
