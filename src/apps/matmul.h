// Matrix multiplication C = A x B (paper §4.1, Figure 4).
//
// Size 512x512 in the paper: each matrix is exactly 512 four-KB pages (one row per page). The DF
// program uses one run-to-completion filament per point of C and the write-invalidate PCP; the
// master node (0) initializes A and B, so the p-1 slaves generate O(p n^2) page requests — 4032
// on 8 nodes — which saturates the shared Ethernet and is why DF's speedup drops off at 8 nodes.
// The CG program distributes B by broadcast and A strips point-to-point up front.
#ifndef DFIL_APPS_MATMUL_H_
#define DFIL_APPS_MATMUL_H_

#include "src/apps/common.h"

namespace dfil::apps {

struct MatmulParams {
  int n = 512;
  int pools_per_node = 4;  // DF: row-block pools, so a fault overlaps with other blocks
};

AppRun RunMatmulSeq(const MatmulParams& p, const core::ClusterConfig& base);
AppRun RunMatmulCg(const MatmulParams& p, const core::ClusterConfig& base);
AppRun RunMatmulDf(const MatmulParams& p, const core::ClusterConfig& base);

}  // namespace dfil::apps

#endif  // DFIL_APPS_MATMUL_H_
