// Adaptive quadrature over an imbalanced integrand (paper §4.3, Figure 6).
//
// The integrand has sharp features near both ends of [0, 24], so the equal-subinterval CG
// program suffers severe load imbalance, the centralized bag-of-tasks CG variant drowns in small
// messages to the master, and the DF fork/join program with receiver-initiated stealing wins —
// the paper's motivating case for decentralized dynamic load balancing.
#ifndef DFIL_APPS_QUADRATURE_H_
#define DFIL_APPS_QUADRATURE_H_

#include "src/apps/common.h"

namespace dfil::apps {

struct QuadratureParams {
  double a = 0.0;
  double b = 24.0;
  double tolerance = 3.5e-10;  // calibrated: ~10.7M f-evals = the paper's 203 s sequential
  int bag_tasks = 2048;     // bag-of-tasks CG variant: number of fixed-width subintervals
};

// The integrand: smooth background plus two sharp bumps near the interval ends.
double QuadF(double x);

AppRun RunQuadratureSeq(const QuadratureParams& p, const core::ClusterConfig& base);
// Static decomposition: p equal subintervals (paper's first CG program).
AppRun RunQuadratureCgStatic(const QuadratureParams& p, const core::ClusterConfig& base);
// Centralized bag of tasks on the master (paper's second CG program).
AppRun RunQuadratureCgBag(const QuadratureParams& p, const core::ClusterConfig& base);
// Fork/join filaments with tree distribution and stealing.
AppRun RunQuadratureDf(const QuadratureParams& p, const core::ClusterConfig& base);

}  // namespace dfil::apps

#endif  // DFIL_APPS_QUADRATURE_H_
