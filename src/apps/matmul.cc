#include "src/apps/matmul.h"

#include <cstring>


namespace dfil::apps {
namespace {

using core::Cluster;
using core::ClusterConfig;
using core::GlobalArray2D;
using core::NodeEnv;

// Per-node state for the DF filament bodies (reached through env.user_ctx).
struct DfState {
  GlobalArray2D<double> a, b, c;
  int n = 0;
};

// One RTC filament: compute C[i][j] = dot(A row i, B column j).
void PointFilament(NodeEnv& env, int64_t i, int64_t j, int64_t) {
  auto* st = static_cast<DfState*>(env.user_ctx);
  const int n = st->n;
  const double* arow = st->a.RowRead(env, static_cast<size_t>(i));
  double sum = 0;
  for (int k = 0; k < n; ++k) {
    // Column access: walks one element per row of B (page-granular fetches satisfy it).
    sum += arow[k] * st->b.Read(env, static_cast<size_t>(k), static_cast<size_t>(j));
  }
  st->c.Write(env, static_cast<size_t>(i), static_cast<size_t>(j), sum);
  env.ChargeWork(env.runtime().costs().matmul_mac * n);
}

void InitMatrices(NodeEnv& env, const GlobalArray2D<double>& a, const GlobalArray2D<double>& b,
                  int n) {
  const sim::CostModel& costs = env.runtime().costs();
  for (int i = 0; i < n; ++i) {
    double* ra = a.RowWrite(env, i);
    double* rb = b.RowWrite(env, i);
    for (int j = 0; j < n; ++j) {
      ra[j] = MatrixEntryA(i, j);
      rb[j] = MatrixEntryB(i, j);
    }
    env.ChargeWork(costs.loop_iter_overhead * 2 * n);
  }
}

double Checksum(std::span<const double> v) {
  double s = 0;
  for (double x : v) {
    s += x;
  }
  return s;
}

}  // namespace

AppRun RunMatmulSeq(const MatmulParams& p, const ClusterConfig& base) {
  ClusterConfig cfg = base;
  cfg.nodes = 1;
  Cluster cluster(cfg);
  const int n = p.n;
  AppRun run;
  run.output.assign(static_cast<size_t>(n) * n, 0.0);
  run.report = cluster.Run([&](NodeEnv& env) {
    const sim::CostModel& costs = env.runtime().costs();
    std::vector<double> a(static_cast<size_t>(n) * n);
    std::vector<double> b(static_cast<size_t>(n) * n);
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        a[static_cast<size_t>(i) * n + j] = MatrixEntryA(i, j);
        b[static_cast<size_t>(i) * n + j] = MatrixEntryB(i, j);
      }
      env.ChargeWork(costs.loop_iter_overhead * 2 * n);
    }
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        double sum = 0;
        for (int k = 0; k < n; ++k) {
          sum += a[static_cast<size_t>(i) * n + k] * b[static_cast<size_t>(k) * n + j];
        }
        run.output[static_cast<size_t>(i) * n + j] = sum;
      }
      env.ChargeWork(costs.matmul_mac * n * n);
    }
  });
  run.checksum = Checksum(run.output);
  return run;
}

AppRun RunMatmulCg(const MatmulParams& p, const ClusterConfig& base) {
  ClusterConfig cfg = base;
  Cluster cluster(cfg);
  const int n = p.n;
  AppRun run;
  run.output.assign(static_cast<size_t>(n) * n, 0.0);
  run.report = cluster.Run([&](NodeEnv& env) {
    const sim::CostModel& costs = env.runtime().costs();
    const int nodes = env.nodes();
    const Strip strip = StripOf(n, env.node(), nodes);
    std::vector<double> b(static_cast<size_t>(n) * n);
    std::vector<double> a_strip(static_cast<size_t>(strip.size()) * n);
    std::vector<double> c_strip(static_cast<size_t>(strip.size()) * n, 0.0);

    if (env.node() == 0) {
      // Master initializes everything, broadcasts B, and sends each slave its strip of A.
      std::vector<double> a(static_cast<size_t>(n) * n);
      for (int i = 0; i < n; ++i) {
        for (int j = 0; j < n; ++j) {
          a[static_cast<size_t>(i) * n + j] = MatrixEntryA(i, j);
          b[static_cast<size_t>(i) * n + j] = MatrixEntryB(i, j);
        }
        env.ChargeWork(costs.loop_iter_overhead * 2 * n);
      }
      if (nodes > 1) {
        BroadcastBulk(env, /*tag=*/1, AsBytes(b));
        for (NodeId s = 1; s < nodes; ++s) {
          const Strip ss = StripOf(n, s, nodes);
          SendBulk(env, s, /*tag=*/2,
                   std::span<const std::byte>(
                       reinterpret_cast<const std::byte*>(a.data() + static_cast<size_t>(ss.lo) * n),
                       static_cast<size_t>(ss.size()) * n * sizeof(double)));
        }
      }
      std::memcpy(a_strip.data(), a.data() + static_cast<size_t>(strip.lo) * n,
                  a_strip.size() * sizeof(double));
    } else {
      RecvBulk(env, 0, 1, AsWritableBytes(b));
      RecvBulk(env, 0, 2, AsWritableBytes(a_strip));
    }

    for (int i = 0; i < strip.size(); ++i) {
      for (int j = 0; j < n; ++j) {
        double sum = 0;
        for (int k = 0; k < n; ++k) {
          sum += a_strip[static_cast<size_t>(i) * n + k] * b[static_cast<size_t>(k) * n + j];
        }
        c_strip[static_cast<size_t>(i) * n + j] = sum;
      }
      env.ChargeWork(costs.matmul_mac * n * n);
    }

    // Slaves return their strips; the master assembles C (this is the paper's "before the master
    // prints it" step).
    if (env.node() == 0) {
      std::memcpy(run.output.data() + static_cast<size_t>(strip.lo) * n, c_strip.data(),
                  c_strip.size() * sizeof(double));
      for (NodeId s = 1; s < nodes; ++s) {
        const Strip ss = StripOf(n, s, nodes);
        RecvBulk(env, s, 3,
                 std::span<std::byte>(
                     reinterpret_cast<std::byte*>(run.output.data() + static_cast<size_t>(ss.lo) * n),
                     static_cast<size_t>(ss.size()) * n * sizeof(double)));
      }
    } else {
      SendBulk(env, 0, 3, AsBytes(c_strip));
    }
  });
  run.checksum = Checksum(run.output);
  return run;
}

AppRun RunMatmulDf(const MatmulParams& p, const ClusterConfig& base) {
  ClusterConfig cfg = base;
  if (cfg.dsm.pcp == dsm::Pcp::kImplicitInvalidate && !cfg.dsm.adapt_protocols) {
    // The paper uses write-invalidate here; implicit-invalidate would needlessly re-fetch B.
    // Under protocol adaptation the base must stay implicit-invalidate, and the adapter itself
    // takes care of hot pages, so the override only applies to the fixed-protocol case.
    cfg.dsm.pcp = dsm::Pcp::kWriteInvalidate;
  }
  Cluster cluster(cfg);
  const int n = p.n;
  auto a = GlobalArray2D<double>::Alloc(cluster.layout(), n, n, /*pad_rows_to_pages=*/true, "A");
  auto b = GlobalArray2D<double>::Alloc(cluster.layout(), n, n, true, "B");
  auto c = GlobalArray2D<double>::Alloc(cluster.layout(), n, n, true, "C");
  // C needs no initialization: each node owns the pages of the strip it will write, so the only
  // page traffic is fetching A strips and B from the master (4032 requests at 8 nodes, §4.1).
  for (NodeId node = 0; node < cfg.nodes; ++node) {
    const Strip s = StripOf(n, node, cfg.nodes);
    if (s.size() > 0) {
      cluster.layout().SetInitialOwner(c.row_addr(s.lo),
                                       static_cast<size_t>(s.size()) *
                                           (c.row_addr(1) - c.row_addr(0)),
                                       node);
    }
  }

  AppRun run;
  run.output.assign(static_cast<size_t>(n) * n, 0.0);
  std::vector<DfState> states(cfg.nodes);
  run.report = cluster.Run([&](NodeEnv& env) {
    DfState& st = states[env.node()];
    st = DfState{a, b, c, n};
    env.user_ctx = &st;

    if (env.node() == 0) {
      InitMatrices(env, a, b, n);
    }
    // Barrier 1: A and B are initialized before anyone computes (paper §4.1).
    env.Barrier();

    const Strip strip = StripOf(n, env.node(), env.nodes());
    const int pools = std::max(1, std::min(p.pools_per_node, strip.size()));
    std::vector<core::PoolHandle> pool_ids(pools);
    for (int q = 0; q < pools; ++q) {
      pool_ids[q] = env.CreatePool();
    }
    for (int i = strip.lo; i < strip.hi; ++i) {
      const int q = ((i - strip.lo) * pools) / std::max(1, strip.size());
      for (int j = 0; j < n; ++j) {
        env.CreateFilament(pool_ids[q], &PointFilament, i, j, 0);
      }
    }
    env.RunPools();
    // Barrier 2: all of C computed before the master prints it.
    env.Barrier();

    // Result extraction for validation only: each node copies its own (local) strip; no messages,
    // no charge — the paper's print phase is likewise outside the measurement.
    for (int i = strip.lo; i < strip.hi; ++i) {
      const double* row = c.RowRead(env, i);
      std::memcpy(run.output.data() + static_cast<size_t>(i) * n, row, n * sizeof(double));
    }
  });
  run.checksum = Checksum(run.output);
  return run;
}

}  // namespace dfil::apps
