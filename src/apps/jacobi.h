// Jacobi iteration for Laplace's equation (paper §4.2, Figures 5, 10, 11, 12).
//
// 256x256 grid, 360 iterations in the paper. Strips of rows per node; a row is 2 KB, so a page
// holds two rows and (with strip sizes even) strips never share a writable page — only the edge
// pages are read-shared between neighbours. The DF program uses one iterative filament per point
// and three pools (top row / bottom row / interior): the edge pools fault on the neighbour's edge
// page, the interior pool overlaps those fetches. Implicit-invalidate is the paper's default PCP
// here; Figures 11 and 12 ablate the PCP and the pool count.
#ifndef DFIL_APPS_JACOBI_H_
#define DFIL_APPS_JACOBI_H_

#include "src/apps/common.h"

namespace dfil::apps {

struct JacobiParams {
  int n = 256;
  int iterations = 360;
  // 3 = paper default (top/bottom/interior). 1 = the no-overlap ablation of Figure 12.
  // -1 = adaptive pool assignment (this reproduction's future-work extension): the runtime
  // profiles the first sweep and clusters filaments by faulted page automatically.
  int pools = 3;
};

AppRun RunJacobiSeq(const JacobiParams& p, const core::ClusterConfig& base);
AppRun RunJacobiCg(const JacobiParams& p, const core::ClusterConfig& base);
AppRun RunJacobiDf(const JacobiParams& p, const core::ClusterConfig& base);

}  // namespace dfil::apps

#endif  // DFIL_APPS_JACOBI_H_
