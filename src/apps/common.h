// Shared helpers for the four evaluation applications (paper §4).
//
// Every application comes in three variants, mirroring the paper's methodology:
//  * sequential  — a distinct single-node program (not a parallel program on one node);
//  * coarse-grain (CG) — one heavyweight process per node, explicit message passing over raw
//    (unreliable) datagrams, hand-coded reductions;
//  * DF          — filaments over the DSM.
// All variants run the same computation kernels and are validated against each other.
#ifndef DFIL_APPS_COMMON_H_
#define DFIL_APPS_COMMON_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "src/core/dfil.h"

namespace dfil::apps {

// Contiguous strip [lo, hi) of `total` rows assigned to `node` out of `nodes`.
struct Strip {
  int lo;
  int hi;
  int size() const { return hi - lo; }
};
inline Strip StripOf(int total, int node, int nodes) {
  const int base = total / nodes;
  const int extra = total % nodes;
  const int lo = node * base + (node < extra ? node : extra);
  const int hi = lo + base + (node < extra ? 1 : 0);
  return Strip{lo, hi};
}

// Deterministic synthetic matrix entries (the paper does not publish its inputs).
inline double MatrixEntryA(int64_t i, int64_t j) {
  return static_cast<double>((i * 7 + j * 13) % 21 - 10) * 0.25;
}
inline double MatrixEntryB(int64_t i, int64_t j) {
  return static_cast<double>((i * 11 + j * 5) % 17 - 8) * 0.5;
}

// --- Chunked bulk transfer over the raw channels (UDP keeps datagrams small) -------------------

inline constexpr size_t kBulkChunkBytes = 32 * 1024;

inline void SendBulk(core::NodeEnv& env, NodeId dst, uint32_t tag,
                     std::span<const std::byte> bytes) {
  size_t off = 0;
  do {
    const size_t n = std::min(kBulkChunkBytes, bytes.size() - off);
    env.SendData(dst, tag, bytes.subspan(off, n));
    off += n;
  } while (off < bytes.size());
}

inline void RecvBulk(core::NodeEnv& env, NodeId src, uint32_t tag, std::span<std::byte> out) {
  size_t off = 0;
  do {
    std::vector<std::byte> chunk = env.RecvData(src, tag);
    DFIL_CHECK_LE(off + chunk.size(), out.size());
    std::memcpy(out.data() + off, chunk.data(), chunk.size());
    off += chunk.size();
  } while (off < out.size());
}

inline void BroadcastBulk(core::NodeEnv& env, uint32_t tag, std::span<const std::byte> bytes) {
  size_t off = 0;
  do {
    const size_t n = std::min(kBulkChunkBytes, bytes.size() - off);
    env.BroadcastData(tag, bytes.subspan(off, n));
    off += n;
  } while (off < bytes.size());
}

template <typename T>
std::span<const std::byte> AsBytes(const std::vector<T>& v) {
  return std::span<const std::byte>(reinterpret_cast<const std::byte*>(v.data()),
                                    v.size() * sizeof(T));
}
template <typename T>
std::span<std::byte> AsWritableBytes(std::vector<T>& v) {
  return std::span<std::byte>(reinterpret_cast<std::byte*>(v.data()), v.size() * sizeof(T));
}

// --- Hand-coded CG reductions (what the paper's message-passing programs do themselves) --------

enum class CgOp { kSum, kMax };

// Tournament all-reduce over explicit messages; tag space `tag_base + round` must be unused.
inline double CgAllReduce(core::NodeEnv& env, double value, CgOp op, uint32_t tag_base) {
  const int p = env.nodes();
  const NodeId r = env.node();
  double accum = value;
  if (p == 1) {
    return accum;
  }
  for (int k = 0; (1 << k) < p; ++k) {
    const int bit = 1 << k;
    if ((r & bit) != 0) {
      env.SendValue<double>(r - bit, tag_base + static_cast<uint32_t>(k), accum);
      // Await dissemination from the champion.
      return env.RecvValue<double>(0, tag_base + 100);
    }
    if (r + bit < p) {
      const double other = env.RecvValue<double>(r + bit, tag_base + static_cast<uint32_t>(k));
      accum = op == CgOp::kSum ? accum + other : (other > accum ? other : accum);
    }
  }
  // Champion: disseminate with one broadcast datagram.
  env.BroadcastData(tag_base + 100,
                    std::span<const std::byte>(reinterpret_cast<const std::byte*>(&accum),
                                               sizeof(accum)));
  return accum;
}

// --- Result containers shared by all apps -------------------------------------------------------

struct AppRun {
  core::RunReport report;
  double checksum = 0;              // validation scalar (app-specific)
  std::vector<double> output;       // full result for exact cross-variant comparison
  double seconds() const { return report.seconds(); }
};

}  // namespace dfil::apps

#endif  // DFIL_APPS_COMMON_H_
