#include "src/sim/network.h"

#include "src/common/check.h"

namespace dfil::sim {

SimTime SharedEthernet::Transmit(size_t bytes, SimTime ready) {
  SimTime start = ready > medium_free_at_ ? ready : medium_free_at_;
  SimTime wire = costs_.WireTime(bytes);
  medium_free_at_ = start + wire;
  busy_total_ += wire;
  return medium_free_at_;
}

TxPlan SharedEthernet::PlanUnicast(NodeId src, NodeId dst, size_t bytes, SimTime ready) {
  DFIL_DCHECK(src != dst);
  TxPlan plan;
  plan.deliver_at = Transmit(bytes, ready) + costs_.propagation_delay;
  return plan;
}

void SharedEthernet::PlanBroadcast(NodeId src, const std::vector<NodeId>& dsts, size_t bytes,
                                   SimTime ready, std::vector<TxPlan>& plans) {
  (void)src;
  // One transmission; every station hears the same frame.
  SimTime done = Transmit(bytes, ready) + costs_.propagation_delay;
  plans.clear();
  plans.reserve(dsts.size());
  for (size_t i = 0; i < dsts.size(); ++i) {
    TxPlan plan;
    plan.deliver_at = done;
    plans.push_back(plan);
  }
}

TxPlan SwitchedNetwork::PlanUnicast(NodeId src, NodeId dst, size_t bytes, SimTime ready) {
  DFIL_DCHECK(src != dst);
  DFIL_CHECK_LT(static_cast<size_t>(src), nic_free_at_.size());
  SimTime start = ready > nic_free_at_[src] ? ready : nic_free_at_[src];
  SimTime wire = costs_.WireTime(bytes);
  nic_free_at_[src] = start + wire;
  busy_total_ += wire;
  TxPlan plan;
  plan.deliver_at = start + wire + costs_.propagation_delay;
  return plan;
}

void SwitchedNetwork::PlanBroadcast(NodeId src, const std::vector<NodeId>& dsts, size_t bytes,
                                    SimTime ready, std::vector<TxPlan>& plans) {
  // No shared medium: broadcast is replicated unicast, serialized at the sender's NIC.
  plans.clear();
  plans.reserve(dsts.size());
  for (NodeId dst : dsts) {
    plans.push_back(PlanUnicast(src, dst, bytes, ready));
  }
}

}  // namespace dfil::sim
