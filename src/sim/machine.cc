#include "src/sim/machine.h"

#include <sstream>
#include <utility>

#include "src/common/check.h"
#include "src/common/log.h"

namespace dfil::sim {

void Machine::AddHost(NodeHost* host) {
  DFIL_CHECK_EQ(host->id(), static_cast<NodeId>(hosts_.size()));
  hosts_.push_back(host);
}

void Machine::Deliver(NodeId dst, Datagram d, SimTime at) {
  DFIL_CHECK_GE(dst, 0);
  DFIL_CHECK_LT(static_cast<size_t>(dst), hosts_.size());
  events_.Schedule(at, [this, dst, msg = std::move(d), at]() mutable {
    NodeHost* host = hosts_[dst];
    host->AdvanceTo(at);
    host->OnDatagram(std::move(msg));
  }).Release();
}

namespace {

const char* MsgClassName(MsgClass klass) {
  switch (klass) {
    case MsgClass::kRequest:
      return "request";
    case MsgClass::kReply:
      return "reply";
    case MsgClass::kRaw:
      return "raw";
    case MsgClass::kAck:
      return "ack";
    case MsgClass::kPacked:
      return "packed";
    default:
      return "unknown";
  }
}

}  // namespace

void Machine::InjectionInstant(const Datagram& d, const char* what, SimTime at) {
  injection_log_[injections_seen_ % kInjectionLogCapacity] =
      InjectionNote{what, d.klass, d.type, d.src, d.dst, at};
  injections_seen_++;
  if (trace_ == nullptr) {
    return;
  }
  std::ostringstream os;
  os << what << " " << MsgClassName(d.klass) << " svc" << d.type << " n" << d.src << "->n"
     << d.dst;
  if (d.trace != 0) {
    os << " #" << d.trace;
  }
  trace_->Instant(d.dst, kInjectionTid, "inject", os.str(), at);
}

void Machine::InjectAndDeliver(Datagram d, SimTime at) {
  if (!injector_.enabled()) {
    Deliver(d.dst, std::move(d), at);
    return;
  }
  FaultDecision dec = injector_.Decide(d.src, d.dst, d.type, d.klass);
  std::vector<Datagram> dups(dec.dup_delays.size(), d);
  if (dec.extra_delay > 0) {
    net_stats_.messages_delayed++;
  }
  if (dec.drop) {
    net_stats_.messages_dropped++;
    InjectionInstant(d, "drop", at);
    DFIL_LOG(kDebug, "net") << "drop " << d.src << "->" << d.dst << " type=" << d.type
                            << " class=" << static_cast<int>(d.klass);
  } else {
    const SimTime t = injector_.AdjustForStall(d.dst, at + dec.extra_delay);
    if (dec.extra_delay > 0) {
      InjectionInstant(d, "delay", at + dec.extra_delay);
    }
    if (t != at + dec.extra_delay) {
      net_stats_.stall_deferrals++;
      InjectionInstant(d, "stall", t);
    }
    Deliver(d.dst, std::move(d), t);
  }
  for (size_t i = 0; i < dups.size(); ++i) {
    net_stats_.messages_duplicated++;
    const SimTime base = at + dec.dup_delays[i];
    const SimTime t = injector_.AdjustForStall(dups[i].dst, base);
    if (t != base) {
      net_stats_.stall_deferrals++;
      InjectionInstant(dups[i], "stall", t);
    }
    InjectionInstant(dups[i], "dup", t);
    DFIL_LOG(kDebug, "net") << "dup " << dups[i].src << "->" << dups[i].dst
                            << " type=" << dups[i].type << " at+" << ToMilliseconds(t - at)
                            << "ms";
    Deliver(dups[i].dst, std::move(dups[i]), t);
  }
}

void Machine::Send(Datagram d, SimTime ready) {
  DFIL_CHECK(d.dst != kBroadcastDst) << "use Broadcast()";
  net_stats_.messages_sent++;
  net_stats_.bytes_sent += d.payload.size();
  TxPlan plan = network_->PlanUnicast(d.src, d.dst, d.payload.size(), ready);
  if (plan.dropped) {
    // Forced by a scripted network model.
    net_stats_.messages_dropped++;
    DFIL_LOG(kDebug, "net") << "drop " << d.src << "->" << d.dst << " type=" << d.type;
    return;
  }
  InjectAndDeliver(std::move(d), plan.deliver_at);
}

void Machine::Broadcast(Datagram d, SimTime ready) {
  std::vector<NodeId> dsts;
  dsts.reserve(hosts_.size());
  for (const NodeHost* host : hosts_) {
    if (host->id() != d.src) {
      dsts.push_back(host->id());
    }
  }
  net_stats_.messages_sent++;
  net_stats_.bytes_sent += d.payload.size();
  std::vector<TxPlan> plans;
  network_->PlanBroadcast(d.src, dsts, d.payload.size(), ready, plans);
  DFIL_CHECK_EQ(plans.size(), dsts.size());
  for (size_t i = 0; i < dsts.size(); ++i) {
    if (plans[i].dropped) {
      net_stats_.messages_dropped++;
      continue;
    }
    Datagram copy = d;
    copy.dst = dsts[i];
    InjectAndDeliver(std::move(copy), plans[i].deliver_at);
  }
}

EventHandle Machine::ScheduleTimer(NodeId node, SimTime at, std::function<void()> fn) {
  DFIL_CHECK_GE(node, 0);
  DFIL_CHECK_LT(static_cast<size_t>(node), hosts_.size());
  return events_.Schedule(at, [this, node, at, fn = std::move(fn)]() {
    hosts_[node]->AdvanceTo(at);
    fn();
  });
}

RunResult Machine::Run(SimTime max_virtual_time) {
  RunResult result;
  for (;;) {
    // Pick the runnable node with the smallest clock (ties by id, for determinism).
    NodeHost* next = nullptr;
    for (NodeHost* host : hosts_) {
      if (host->Runnable() && (next == nullptr || host->Clock() < next->Clock())) {
        next = host;
      }
    }
    SimTime event_time = events_.NextTime();

    // Strict inequality: an event due at exactly the node's clock dispatches first — otherwise a
    // node that yielded for that event would be resumed only to yield again, forever.
    if (next != nullptr && next->Clock() < event_time) {
      if (next->Clock() > max_virtual_time) {
        result.deadlock_report = "virtual time limit exceeded";
        break;
      }
      next->Step();
      continue;
    }
    if (event_time != kSimTimeNever) {
      if (event_time > max_virtual_time) {
        result.deadlock_report = "virtual time limit exceeded";
        break;
      }
      auto [at, fn] = events_.Pop();
      ++events_dispatched_;
      fn();
      continue;
    }

    // No runnable node and no pending event: either everyone finished, or we are deadlocked.
    bool all_done = true;
    for (const NodeHost* host : hosts_) {
      if (!host->Done()) {
        all_done = false;
        break;
      }
    }
    result.completed = all_done;
    result.deadlocked = !all_done;
    if (result.deadlocked) {
      result.deadlock_report = BuildDeadlockReport();
    }
    break;
  }

  for (const NodeHost* host : hosts_) {
    if (host->Clock() > result.makespan) {
      result.makespan = host->Clock();
    }
  }
  result.events_dispatched = events_dispatched_;
  return result;
}

std::string Machine::BuildDeadlockReport() const {
  std::ostringstream os;
  os << "deadlock: no runnable node, no pending event\n";
  for (const NodeHost* host : hosts_) {
    os << "  node " << host->id() << " @" << ToMilliseconds(host->Clock()) << "ms "
       << (host->Done() ? "done" : host->DescribeBlocked()) << "\n";
  }
  return os.str();
}

}  // namespace dfil::sim
