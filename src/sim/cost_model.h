// Calibrated virtual-time cost model.
//
// Every operation the Distributed Filaments runtime performs — creating a filament, switching a
// server thread, handling a page fault, processing a UDP message — advances the acting node's
// virtual clock by a constant from this table. The SunIpcEthernet() preset is calibrated from the
// paper's own measurements (Figures 8 and 9 and the §4 application timings) so that the benches
// reproduce the published tables' shape. See DESIGN.md §2 for the calibration notes.
#ifndef DFIL_SIM_COST_MODEL_H_
#define DFIL_SIM_COST_MODEL_H_

#include <cstddef>

#include "src/common/types.h"

namespace dfil::sim {

struct CostModel {
  // --- Filaments package (paper Figure 9) ---
  SimTime filament_create = Microseconds(2.10);
  SimTime filament_switch = Microseconds(0.643);          // descriptor traversal per filament
  SimTime filament_switch_inlined = Microseconds(0.126);  // pattern-recognized strip path
  SimTime thread_context_switch = Microseconds(48.8);     // server (stackful) thread switch
  SimTime thread_create = Microseconds(150.0);            // allocating + initializing a server thread
  SimTime fork_inline = Microseconds(0.30);               // a pruned fork: plain procedure call

  // --- DSM (paper Figure 9: quiet-network page fault = 4.12 ms end to end) ---
  SimTime fault_handle = Microseconds(350.0);   // SIGSEGV delivery, queue insert, request build
  SimTime page_service = Microseconds(250.0);   // owner-side: build reply from page contents
  SimTime page_install = Microseconds(300.0);   // copy-in + mprotect + waking waiters
  SimTime invalidate_handle = Microseconds(150.0);  // apply one invalidation (write-invalidate)
  SimTime page_redirect = Microseconds(60.0);       // answer a request with an owner redirect

  // --- Bulk transfers / prefetching (extension; see DESIGN.md §6) ---
  // A bulk reply charges the full page_service once plus this marginal cost per additional page
  // (the reply build amortizes one software pass over the run), and page_install per page on the
  // requester. A 1-page bulk therefore costs exactly one single-page fault: fault/issue handling
  // + page_service + wire + page_install, with no extra entries charged.
  SimTime bulk_service_extra_page = Microseconds(60.0);
  // Issuing an asynchronous prefetch (hint or detector): request build + queue insert, but no
  // SIGSEGV delivery and no thread suspension, so cheaper than fault_handle.
  SimTime prefetch_issue = Microseconds(150.0);

  // --- Multiple-writer diff protocol (extension; see DESIGN.md §10) ---
  // Twinning copies one page (memcpy + mprotect); encoding compares twin and page and builds the
  // run list; applying patches the runs into the home frame. All software-only page walks on a
  // Sun IPC, so they sit between invalidate_handle and page_install.
  SimTime diff_twin_copy = Microseconds(120.0);
  SimTime diff_encode_page = Microseconds(220.0);
  SimTime diff_apply_page = Microseconds(130.0);

  // --- Messaging (SunOS UDP stack on a Sun IPC) ---
  SimTime msg_send_overhead = Microseconds(620.0);  // syscall + copy + protocol processing
  SimTime msg_recv_overhead = Microseconds(680.0);  // SIGIO + syscall + copy + dispatch
  SimTime timer_overhead = Microseconds(50.0);      // servicing a retransmission timer
  // Marginal cost of adding one more frame to an already-open coalesced datagram (a copy into the
  // pack buffer) and of dispatching one additional unpacked frame on receive (no extra SIGIO or
  // syscall — just header parse + handler dispatch). The first frame of a datagram always pays
  // the full msg_send/recv_overhead.
  SimTime coalesce_frame_send = Microseconds(90.0);
  SimTime coalesce_frame_recv = Microseconds(100.0);

  // --- Network (10 Mb/s shared Ethernet) ---
  double wire_bytes_per_us = 1.25;          // 10 Mb/s
  size_t frame_overhead_bytes = 58;         // Ethernet + IP + UDP headers and preamble
  size_t min_frame_bytes = 64;              // Ethernet minimum frame
  SimTime propagation_delay = Microseconds(5.0);

  // --- Packet protocol ---
  SimTime retransmit_timeout = Milliseconds(100.0);  // >> quiet RTT and transient reply queueing
  SimTime retransmit_timeout_max = Milliseconds(400.0);
  int retransmit_limit = 60;

  // --- Application work costs (per-application calibration, DESIGN.md §2) ---
  SimTime matmul_mac = Microseconds(1.529);       // 512x512x512 macs -> ~205 s sequential
  SimTime jacobi_point = Microseconds(9.257);     // 254*254*360 updates -> ~215 s sequential
  SimTime quad_feval = Microseconds(19.0);        // function evaluation in adaptive quadrature
  SimTime tree_mac = Microseconds(2.115);         // 127 70^3 multiplies -> ~92.1 s sequential
  SimTime loop_iter_overhead = Microseconds(0.05);  // per-element loop bookkeeping in CG/seq code

  // Wire time for a payload of `bytes` (excluding queueing and propagation).
  SimTime WireTime(size_t bytes) const {
    size_t framed = bytes + frame_overhead_bytes;
    if (framed < min_frame_bytes) {
      framed = min_frame_bytes;
    }
    return static_cast<SimTime>(static_cast<double>(framed) / wire_bytes_per_us * 1e3);
  }

  // The calibrated model for the paper's testbed: 8 Sun IPCs on 10 Mb/s Ethernet under SunOS.
  static CostModel SunIpcEthernet() { return CostModel{}; }

  // A faster, lower-latency network (FDDI/ATM-era ablation; paper §1 argues overlap still pays).
  static CostModel SunIpcFastNetwork() {
    CostModel m;
    m.wire_bytes_per_us = 12.5;  // 100 Mb/s
    m.msg_send_overhead = Microseconds(250.0);
    m.msg_recv_overhead = Microseconds(275.0);
    m.retransmit_timeout = Milliseconds(5.0);
    return m;
  }
};

}  // namespace dfil::sim

#endif  // DFIL_SIM_COST_MODEL_H_
