// Deterministic discrete-event queue.
//
// Events are ordered by (time, insertion sequence), so simultaneous events dispatch in FIFO order
// and runs are bit-for-bit reproducible. Timers are cancelled lazily via a tombstone flag.
#ifndef DFIL_SIM_EVENT_QUEUE_H_
#define DFIL_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <utility>
#include <vector>

#include "src/common/types.h"

namespace dfil::sim {

using EventFn = std::function<void()>;

// Opaque handle used to cancel a scheduled event. Default-constructed handles are inert.
class EventHandle {
 public:
  EventHandle() = default;

  bool active() const { return cancelled_ != nullptr && !*cancelled_; }
  void Cancel() {
    if (cancelled_ != nullptr) {
      *cancelled_ = true;
      cancelled_.reset();
    }
  }
  void Release() { cancelled_.reset(); }

 private:
  friend class EventQueue;
  explicit EventHandle(std::shared_ptr<bool> cancelled) : cancelled_(std::move(cancelled)) {}

  std::shared_ptr<bool> cancelled_;
};

class EventQueue {
 public:
  // Schedules `fn` at absolute virtual time `at`.
  EventHandle Schedule(SimTime at, EventFn fn) {
    auto cancelled = std::make_shared<bool>(false);
    heap_.push(Entry{at, next_seq_++, std::move(fn), cancelled});
    return EventHandle(std::move(cancelled));
  }

  // True when no live (non-cancelled) event remains.
  bool empty() const {
    Prune();
    return heap_.empty();
  }

  // Virtual time of the earliest pending event, or kSimTimeNever if none.
  SimTime NextTime() const {
    Prune();
    return heap_.empty() ? kSimTimeNever : heap_.top().time;
  }

  // Removes and returns the earliest live event. The queue must not be empty.
  std::pair<SimTime, EventFn> Pop() {
    Prune();
    Entry top = std::move(const_cast<Entry&>(heap_.top()));
    heap_.pop();
    return {top.time, std::move(top.fn)};
  }

 private:
  struct Entry {
    SimTime time;
    uint64_t seq;
    EventFn fn;
    std::shared_ptr<bool> cancelled;

    bool operator>(const Entry& other) const {
      if (time != other.time) {
        return time > other.time;
      }
      return seq > other.seq;
    }
  };

  // Discards cancelled entries at the head. A cancelled entry deeper in the heap is harmless: it
  // is skipped once it reaches the head.
  void Prune() const {
    auto* self = const_cast<EventQueue*>(this);
    while (!self->heap_.empty() && *self->heap_.top().cancelled) {
      self->heap_.pop();
    }
  }

  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  uint64_t next_seq_ = 0;
};

}  // namespace dfil::sim

#endif  // DFIL_SIM_EVENT_QUEUE_H_
