// Network models.
//
// A NetworkModel decides when a datagram handed to the wire at `ready` arrives at its
// destination(s). Two models are provided:
//
//  * SharedEthernet — the paper's testbed: one 10 Mb/s medium shared by all nodes. Transmissions
//    serialize on the medium, which is what saturates the network in the 8-node matmul run
//    (paper §4.1) and makes communication/computation overlap profitable.
//  * SwitchedNetwork — an ablation: full-duplex point-to-point links with no shared contention.
//
// Network models are pure timing: loss, duplication, reordering, and stalls are injected by the
// Machine-owned sim::FaultInjector (src/sim/fault_plan.h), so fault decisions are independent of
// the timing model and stable under topology changes. A model may still force-drop a frame via
// TxPlan::dropped — scripted test networks use that for deterministic single-frame scenarios.
#ifndef DFIL_SIM_NETWORK_H_
#define DFIL_SIM_NETWORK_H_

#include <cstddef>
#include <vector>

#include "src/common/types.h"
#include "src/sim/cost_model.h"

namespace dfil::sim {

// Outcome of presenting one frame to the network.
struct TxPlan {
  SimTime deliver_at = 0;  // arrival time at the receiver's interface
  bool dropped = false;    // forced drop (scripted models only; timing models never set it)
};

class NetworkModel {
 public:
  virtual ~NetworkModel() = default;

  // Plans a unicast transmission of `bytes` payload handed to the interface at `ready`.
  virtual TxPlan PlanUnicast(NodeId src, NodeId dst, size_t bytes, SimTime ready) = 0;

  // Plans a broadcast; fills `plans` with one entry per destination in `dsts`. On a shared medium
  // this is a single transmission heard by everyone; on a switched network it is replicated.
  virtual void PlanBroadcast(NodeId src, const std::vector<NodeId>& dsts, size_t bytes,
                             SimTime ready, std::vector<TxPlan>& plans) = 0;

  // Total busy time accumulated on the medium (used to verify saturation claims).
  virtual SimTime MediumBusyTime() const = 0;
};

// One shared half-duplex medium; transmissions serialize (CSMA contention is approximated by
// FIFO queueing at the medium).
class SharedEthernet : public NetworkModel {
 public:
  explicit SharedEthernet(const CostModel& costs) : costs_(costs) {}

  TxPlan PlanUnicast(NodeId src, NodeId dst, size_t bytes, SimTime ready) override;
  void PlanBroadcast(NodeId src, const std::vector<NodeId>& dsts, size_t bytes, SimTime ready,
                     std::vector<TxPlan>& plans) override;
  SimTime MediumBusyTime() const override { return busy_total_; }

 private:
  // Acquires the medium at or after `ready` for one frame of `bytes`; returns completion time.
  SimTime Transmit(size_t bytes, SimTime ready);

  CostModel costs_;
  SimTime medium_free_at_ = 0;
  SimTime busy_total_ = 0;
};

// Full-duplex switched fabric: per-source serialization only (a NIC sends one frame at a time),
// no shared-medium contention.
class SwitchedNetwork : public NetworkModel {
 public:
  SwitchedNetwork(const CostModel& costs, int num_nodes)
      : costs_(costs), nic_free_at_(num_nodes, 0) {}

  TxPlan PlanUnicast(NodeId src, NodeId dst, size_t bytes, SimTime ready) override;
  void PlanBroadcast(NodeId src, const std::vector<NodeId>& dsts, size_t bytes, SimTime ready,
                     std::vector<TxPlan>& plans) override;
  SimTime MediumBusyTime() const override { return busy_total_; }

 private:
  CostModel costs_;
  std::vector<SimTime> nic_free_at_;
  SimTime busy_total_ = 0;
};

}  // namespace dfil::sim

#endif  // DFIL_SIM_NETWORK_H_
