// Network models.
//
// A NetworkModel decides when a datagram handed to the wire at `ready` arrives at its
// destination(s), and whether it is lost. Two models are provided:
//
//  * SharedEthernet — the paper's testbed: one 10 Mb/s medium shared by all nodes. Transmissions
//    serialize on the medium, which is what saturates the network in the 8-node matmul run
//    (paper §4.1) and makes communication/computation overlap profitable.
//  * SwitchedNetwork — an ablation: full-duplex point-to-point links with no shared contention.
//
// Loss is injected with a seeded RNG so lossy runs are reproducible.
#ifndef DFIL_SIM_NETWORK_H_
#define DFIL_SIM_NETWORK_H_

#include <cstddef>
#include <vector>

#include "src/common/rng.h"
#include "src/common/types.h"
#include "src/sim/cost_model.h"

namespace dfil::sim {

// Outcome of presenting one frame to the network.
struct TxPlan {
  SimTime deliver_at = 0;  // arrival time at the receiver's interface
  bool dropped = false;
};

class NetworkModel {
 public:
  virtual ~NetworkModel() = default;

  // Plans a unicast transmission of `bytes` payload handed to the interface at `ready`.
  virtual TxPlan PlanUnicast(NodeId src, NodeId dst, size_t bytes, SimTime ready) = 0;

  // Plans a broadcast; fills `plans` with one entry per destination in `dsts`. On a shared medium
  // this is a single transmission heard by everyone; on a switched network it is replicated.
  virtual void PlanBroadcast(NodeId src, const std::vector<NodeId>& dsts, size_t bytes,
                             SimTime ready, std::vector<TxPlan>& plans) = 0;

  // Total busy time accumulated on the medium (used to verify saturation claims).
  virtual SimTime MediumBusyTime() const = 0;
};

// One shared half-duplex medium; transmissions serialize (CSMA contention is approximated by
// FIFO queueing at the medium).
class SharedEthernet : public NetworkModel {
 public:
  SharedEthernet(const CostModel& costs, double loss_rate, uint64_t seed)
      : costs_(costs), loss_rate_(loss_rate), rng_(seed) {}

  TxPlan PlanUnicast(NodeId src, NodeId dst, size_t bytes, SimTime ready) override;
  void PlanBroadcast(NodeId src, const std::vector<NodeId>& dsts, size_t bytes, SimTime ready,
                     std::vector<TxPlan>& plans) override;
  SimTime MediumBusyTime() const override { return busy_total_; }

 private:
  // Acquires the medium at or after `ready` for one frame of `bytes`; returns completion time.
  SimTime Transmit(size_t bytes, SimTime ready);

  CostModel costs_;
  double loss_rate_;
  Rng rng_;
  SimTime medium_free_at_ = 0;
  SimTime busy_total_ = 0;
};

// Full-duplex switched fabric: per-source serialization only (a NIC sends one frame at a time),
// no shared-medium contention.
class SwitchedNetwork : public NetworkModel {
 public:
  SwitchedNetwork(const CostModel& costs, int num_nodes, double loss_rate, uint64_t seed)
      : costs_(costs), loss_rate_(loss_rate), rng_(seed), nic_free_at_(num_nodes, 0) {}

  TxPlan PlanUnicast(NodeId src, NodeId dst, size_t bytes, SimTime ready) override;
  void PlanBroadcast(NodeId src, const std::vector<NodeId>& dsts, size_t bytes, SimTime ready,
                     std::vector<TxPlan>& plans) override;
  SimTime MediumBusyTime() const override { return busy_total_; }

 private:
  CostModel costs_;
  double loss_rate_;
  Rng rng_;
  std::vector<SimTime> nic_free_at_;
  SimTime busy_total_ = 0;
};

}  // namespace dfil::sim

#endif  // DFIL_SIM_NETWORK_H_
