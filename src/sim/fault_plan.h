// Scriptable, deterministic network fault injection (the adversarial test harness).
//
// A FaultPlan replaces the old single loss_rate knob of the network models with a composable
// description of network misbehaviour:
//
//  * plan-level uniform Bernoulli loss (the legacy knob);
//  * Gilbert-Elliott burst loss — a per-(src,dst) two-state Markov chain with a per-state loss
//    rate, producing correlated loss bursts instead of independent drops;
//  * FaultRules — per-message-type / per-message-class / per-(src,dst) drop, duplication, and
//    bounded extra delay (reordering), optionally gated to a window of matching messages so a
//    specific exchange ("the 3rd page reply from node 1 to node 0") can be targeted;
//  * transient node stalls — a receiver stops taking deliveries for a window; everything that
//    would have arrived inside the window arrives, in order, at its end (a GC pause / scheduling
//    hiccup analog).
//
// Determinism and topology stability: every probabilistic decision is drawn from an Rng keyed by
// hash(plan seed, src, dst, per-pair message ordinal, salt) — NOT from one sequentially consumed
// stream. Two runs with the same plan make identical decisions, and the decision for the Nth
// (src,dst) message does not change when unrelated traffic (or a node count change) reshuffles
// global message order. The FaultInjector is owned by the sim::Machine, which applies decisions
// on the delivery path; the NetworkModels are pure timing models.
#ifndef DFIL_SIM_FAULT_PLAN_H_
#define DFIL_SIM_FAULT_PLAN_H_

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/common/types.h"

namespace dfil::sim {

// Transport-level class of a datagram, stamped by the Packet layer so fault rules can target
// e.g. only replies. Values match net::PacketEndpoint's wire header kinds.
enum class MsgClass : uint8_t {
  kUnknown = 0,  // sent below the Packet layer (raw Machine::Send in tests)
  kRequest = 1,
  kReply = 2,
  kRaw = 3,
  kAck = 4,
  // A coalesced multi-frame datagram (net::PacketEndpoint with config.coalesce on). Fault rules
  // matching on a specific class or service type never match packed datagrams — target them with
  // klass == kPacked, or use plan-level loss/burst/stalls, which apply to every delivery. A packed
  // datagram is one delivery unit: dropping it drops every frame inside (correlated loss).
  kPacked = 5,
};

// One match-and-act rule. All match fields are wildcards by default; `seq_from`/`seq_to` bound a
// half-open window over this rule's match ordinal (the Nth message matching the rule's filters,
// counted globally), which makes deterministic single-message scripts expressible. The action
// probabilities are evaluated independently per matching message.
struct FaultRule {
  // --- Match (defaults match everything) ---
  NodeId src = kNoNode;                      // kNoNode = any sender
  NodeId dst = kNoNode;                      // kNoNode = any receiver
  uint32_t type = kAnyMsgType;               // Datagram::type (a net::Service number)
  MsgClass klass = MsgClass::kUnknown;       // kUnknown = any class
  uint64_t seq_from = 0;                     // match-ordinal window [seq_from, seq_to)
  uint64_t seq_to = UINT64_MAX;

  // --- Actions (independent Bernoulli draws) ---
  double drop = 0.0;       // drop the message
  double duplicate = 0.0;  // deliver one extra copy (delayed by a sample of [delay_min, delay_max])
  double delay = 0.0;      // delay the original by a sample of [delay_min, delay_max]
  SimTime delay_min = 0;
  SimTime delay_max = 0;

  static constexpr uint32_t kAnyMsgType = UINT32_MAX;
};

// Gilbert-Elliott burst loss: per (src,dst) pair, a two-state chain advances one step per
// message; each state has its own loss rate. Disabled unless p_good_to_bad > 0.
struct BurstLoss {
  double p_good_to_bad = 0.0;
  double p_bad_to_good = 1.0;
  double loss_good = 0.0;
  double loss_bad = 1.0;

  bool enabled() const { return p_good_to_bad > 0.0; }
};

// A transient receiver stall: node `node` takes no deliveries during [first + k*period,
// first + k*period + duration) for k = 0,1,... (one window only when period == 0). Deliveries
// falling inside a window are deferred to its end, preserving arrival order.
struct StallSpec {
  NodeId node = kNoNode;
  SimTime first = 0;
  SimTime period = 0;  // 0 = a single window
  SimTime duration = 0;
};

struct FaultPlan {
  // Seed for every probabilistic decision; 0 lets the owner (core::Cluster) derive one from the
  // run seed so `ClusterConfig::seed` alone still determines the whole run.
  uint64_t seed = 0;
  double loss_rate = 0.0;  // uniform per-delivery loss (the legacy knob)
  BurstLoss burst;
  std::vector<FaultRule> rules;
  std::vector<StallSpec> stalls;

  bool enabled() const {
    return loss_rate > 0.0 || burst.enabled() || !rules.empty() || !stalls.empty();
  }

  static FaultPlan UniformLoss(double rate, uint64_t seed) {
    FaultPlan plan;
    plan.loss_rate = rate;
    plan.seed = seed;
    return plan;
  }
};

// What the injector decided for one delivery. `drop` kills the original (duplicates, if any,
// still deliver — a dropped-original-plus-surviving-duplicate is just a delayed delivery);
// `dup_delays` holds one extra-delay entry per duplicate copy to inject.
struct FaultDecision {
  bool drop = false;
  SimTime extra_delay = 0;
  std::vector<SimTime> dup_delays;
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan = {});

  bool enabled() const { return enabled_; }
  const FaultPlan& plan() const { return plan_; }

  // Decides the fate of one delivery (one receiver of a send/broadcast). Advances the
  // per-(src,dst) ordinal and any burst-loss chain for the pair.
  FaultDecision Decide(NodeId src, NodeId dst, uint32_t type, MsgClass klass);

  // Applies receiver stalls: returns the (possibly deferred) delivery time at `dst`.
  SimTime AdjustForStall(NodeId dst, SimTime deliver_at) const;

 private:
  Rng StreamFor(NodeId src, NodeId dst, uint64_t seq, uint64_t salt) const;

  FaultPlan plan_;
  bool enabled_ = false;
  std::map<std::pair<NodeId, NodeId>, uint64_t> pair_seq_;
  std::map<std::pair<NodeId, NodeId>, bool> burst_bad_;
  std::vector<uint64_t> rule_matches_;  // per-rule match ordinals (for seq windows)
};

}  // namespace dfil::sim

#endif  // DFIL_SIM_FAULT_PLAN_H_
