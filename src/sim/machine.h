// The cluster: N simulated workstations plus a network, executed in virtual time.
//
// Execution model (DESIGN.md §2): each node has its own virtual clock, advanced by explicit
// charges from the cost model. The Machine repeatedly resumes the runnable node with the smallest
// clock; a running node yields back whenever its clock would pass the next pending external event
// (a datagram delivery or timer), so messages interrupt computation at exact virtual times — the
// simulated analog of SunOS delivering SIGIO mid-computation. Event dispatch at equal times is
// FIFO, so runs are fully deterministic.
#ifndef DFIL_SIM_MACHINE_H_
#define DFIL_SIM_MACHINE_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/stats.h"
#include "src/common/trace.h"
#include "src/common/types.h"
#include "src/sim/cost_model.h"
#include "src/sim/event_queue.h"
#include "src/sim/fault_plan.h"
#include "src/sim/network.h"

namespace dfil::sim {

inline constexpr NodeId kBroadcastDst = -2;

// A raw (unreliable, UDP-like) datagram. `type` is an upper-layer tag the simulator does not
// interpret; the payload is opaque bytes. `klass` is the transport class stamped by the Packet
// layer (request/reply/raw/ack) so fault rules can target e.g. only replies.
struct Datagram {
  NodeId src = kNoNode;
  NodeId dst = kNoNode;
  uint32_t type = 0;
  MsgClass klass = MsgClass::kUnknown;
  // Causal trace id stamped by the Packet layer (0 = none); lets fault-injection instants name
  // the flow they perturbed.
  uint64_t trace = 0;
  std::vector<std::byte> payload;
};

// Per-node execution engine, implemented by the runtime layer (src/core). The Machine calls these
// from its own (host) stack; OnDatagram and timer callbacks must not block or switch contexts.
class NodeHost {
 public:
  virtual ~NodeHost() = default;

  virtual NodeId id() const = 0;
  virtual SimTime Clock() const = 0;

  // True when the node has a ready server thread to run.
  virtual bool Runnable() const = 0;

  // True when the node's main program has finished.
  virtual bool Done() const = 0;

  // Resumes execution. Returns when the node blocks (no ready thread) or when its clock reaches
  // the machine's next external event time.
  virtual void Step() = 0;

  // Moves the node clock forward to at least `t` (used for deliveries to idle nodes). Must not
  // move the clock backwards.
  virtual void AdvanceTo(SimTime t) = 0;

  // Asynchronous message-arrival handler (the SIGIO analog). Charges receive overhead to this
  // node's clock, then dispatches; never blocks.
  virtual void OnDatagram(Datagram d) = 0;

  // Human-readable description of why the node is blocked, for deadlock reports.
  virtual std::string DescribeBlocked() const = 0;
};

struct RunResult {
  bool completed = false;  // all hosts Done
  bool deadlocked = false;
  SimTime makespan = 0;  // max node clock at termination
  std::string deadlock_report;
  uint64_t events_dispatched = 0;
};

class Machine {
 public:
  // `fault_plan` drives the adversarial fault injection applied on the delivery path (drop,
  // duplication, extra delay, receiver stalls); the default plan injects nothing.
  Machine(std::unique_ptr<NetworkModel> network, const CostModel& costs,
          FaultPlan fault_plan = {})
      : network_(std::move(network)), costs_(costs), injector_(std::move(fault_plan)) {}

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  // Registers a host. Hosts must be added in NodeId order, ids dense from 0.
  void AddHost(NodeHost* host);

  const CostModel& costs() const { return costs_; }
  NetworkModel& network() { return *network_; }
  int num_nodes() const { return static_cast<int>(hosts_.size()); }
  MessageStats& net_stats() { return net_stats_; }

  const FaultInjector& injector() const { return injector_; }

  // Optional: when set, every fault-injection decision (drop/dup/delay/stall) emits a trace
  // instant on the victim node's injection track, so injected faults are visible in the same
  // Perfetto timeline they perturb. May be null (tracing off).
  void SetTrace(TraceRecorder* trace) { trace_ = trace; }

  // Dedicated tid for injection instants (keeps them off the server-thread span tracks).
  static constexpr uint64_t kInjectionTid = 1000000;

  // Recent fault-injection decisions, kept in a fixed ring independent of tracing so flight
  // recorder dumps (fuzz failures replayed without a trace) still carry the adversary's last
  // moves. `what` points at a string literal.
  struct InjectionNote {
    const char* what = "";
    MsgClass klass = MsgClass::kRaw;
    uint32_t type = 0;
    NodeId src = 0;
    NodeId dst = 0;
    SimTime at = 0;
  };
  static constexpr size_t kInjectionLogCapacity = 256;
  // Oldest first, at most kInjectionLogCapacity entries.
  std::vector<InjectionNote> RecentInjections() const {
    std::vector<InjectionNote> out;
    const uint64_t n = injections_seen_ < kInjectionLogCapacity ? injections_seen_
                                                                : kInjectionLogCapacity;
    out.reserve(n);
    for (uint64_t i = injections_seen_ - n; i < injections_seen_; ++i) {
      out.push_back(injection_log_[i % kInjectionLogCapacity]);
    }
    return out;
  }

  // Hands a datagram to the network at time `ready` (normally the sender's current clock, after
  // it charged send overhead). Lost datagrams count in net_stats but are never delivered.
  void Send(Datagram d, SimTime ready);

  // Broadcasts to every other node. On SharedEthernet this is a single transmission.
  void Broadcast(Datagram d, SimTime ready);

  // Schedules `fn` to run on `node` at virtual time `at` (a SIGALRM analog: the host clock is
  // advanced to `at` and charged timer overhead before `fn` runs).
  EventHandle ScheduleTimer(NodeId node, SimTime at, std::function<void()> fn);

  // Earliest pending external event; running nodes yield when their clock reaches this.
  SimTime NextExternalTime() const { return events_.NextTime(); }

  // Conservative causality horizon for `self`: no other runnable node can affect `self` (or the
  // network) before its own clock plus the lookahead — the minimum CPU cost of initiating any
  // action (a message send). A charging node must not advance past min(next event, horizon), or
  // it would act "in the past" of its peers.
  SimTime CausalHorizon(NodeId self) const {
    SimTime min_other = kSimTimeNever;
    for (const NodeHost* host : hosts_) {
      if (host->id() != self && host->Runnable() && host->Clock() < min_other) {
        min_other = host->Clock();
      }
    }
    return min_other == kSimTimeNever ? kSimTimeNever : min_other + lookahead_;
  }

  // The limit a node running on behalf of `self` may charge up to before yielding.
  SimTime ChargeLimit(NodeId self) const {
    const SimTime ev = NextExternalTime();
    const SimTime hz = CausalHorizon(self);
    return ev < hz ? ev : hz;
  }

  // Runs until every host is Done, or no progress is possible (deadlock), or `max_virtual_time`
  // is exceeded (a runaway guard; kSimTimeNever disables it).
  RunResult Run(SimTime max_virtual_time = kSimTimeNever);

 private:
  // Applies the fault plan (drop/duplicate/delay/stall) to one planned delivery.
  void InjectAndDeliver(Datagram d, SimTime at);
  void Deliver(NodeId dst, Datagram d, SimTime at);
  std::string BuildDeadlockReport() const;

  // Logs the decision to the injection ring, and emits an injection instant on
  // (node, kInjectionTid) at `at` when tracing is on.
  void InjectionInstant(const Datagram& d, const char* what, SimTime at);

  std::unique_ptr<NetworkModel> network_;
  CostModel costs_;
  FaultInjector injector_;
  TraceRecorder* trace_ = nullptr;
  std::vector<NodeHost*> hosts_;
  EventQueue events_;
  MessageStats net_stats_;
  SimTime lookahead_ = Microseconds(200.0);
  uint64_t events_dispatched_ = 0;
  std::array<InjectionNote, kInjectionLogCapacity> injection_log_{};
  uint64_t injections_seen_ = 0;
};

}  // namespace dfil::sim

#endif  // DFIL_SIM_MACHINE_H_
