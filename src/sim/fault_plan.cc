#include "src/sim/fault_plan.h"

#include <cstddef>
#include <utility>

namespace dfil::sim {
namespace {

// SplitMix64 finalizer, used to key independent Rng streams off (seed, src, dst, seq, salt)
// without consuming a shared stream (which would make decisions order-dependent).
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

constexpr uint64_t kSaltUniform = 0x1001;
constexpr uint64_t kSaltBurst = 0x1002;
constexpr uint64_t kSaltRuleBase = 0x2000;

SimTime SampleDelay(Rng& rng, SimTime lo, SimTime hi) {
  if (hi <= lo) {
    return lo > 0 ? lo : 0;
  }
  return lo + static_cast<SimTime>(rng.NextBounded(static_cast<uint64_t>(hi - lo)));
}

bool Matches(const FaultRule& r, NodeId src, NodeId dst, uint32_t type, MsgClass klass) {
  if (r.src != kNoNode && r.src != src) {
    return false;
  }
  if (r.dst != kNoNode && r.dst != dst) {
    return false;
  }
  if (r.type != FaultRule::kAnyMsgType && r.type != type) {
    return false;
  }
  if (r.klass != MsgClass::kUnknown && r.klass != klass) {
    return false;
  }
  return true;
}

}  // namespace

FaultInjector::FaultInjector(FaultPlan plan)
    : plan_(std::move(plan)), enabled_(plan_.enabled()), rule_matches_(plan_.rules.size(), 0) {}

Rng FaultInjector::StreamFor(NodeId src, NodeId dst, uint64_t seq, uint64_t salt) const {
  const uint64_t a = Mix(seq ^ (salt << 32));
  const uint64_t b = Mix(a ^ (static_cast<uint64_t>(static_cast<uint32_t>(dst)) + 1));
  const uint64_t c = Mix(b ^ (static_cast<uint64_t>(static_cast<uint32_t>(src)) + 1));
  return Rng(Mix(plan_.seed ^ c));
}

FaultDecision FaultInjector::Decide(NodeId src, NodeId dst, uint32_t type, MsgClass klass) {
  FaultDecision dec;
  if (!enabled_) {
    return dec;
  }
  const uint64_t seq = pair_seq_[{src, dst}]++;

  if (plan_.loss_rate > 0.0) {
    Rng rng = StreamFor(src, dst, seq, kSaltUniform);
    if (rng.NextBernoulli(plan_.loss_rate)) {
      dec.drop = true;
    }
  }

  if (plan_.burst.enabled()) {
    Rng rng = StreamFor(src, dst, seq, kSaltBurst);
    bool& bad = burst_bad_[{src, dst}];
    if (rng.NextBernoulli(bad ? plan_.burst.loss_bad : plan_.burst.loss_good)) {
      dec.drop = true;
    }
    if (rng.NextBernoulli(bad ? plan_.burst.p_bad_to_good : plan_.burst.p_good_to_bad)) {
      bad = !bad;
    }
  }

  for (size_t i = 0; i < plan_.rules.size(); ++i) {
    const FaultRule& r = plan_.rules[i];
    if (!Matches(r, src, dst, type, klass)) {
      continue;
    }
    const uint64_t ord = rule_matches_[i]++;
    if (ord < r.seq_from || ord >= r.seq_to) {
      continue;
    }
    Rng rng = StreamFor(src, dst, seq, kSaltRuleBase + i);
    if (rng.NextBernoulli(r.drop)) {
      dec.drop = true;
    }
    if (rng.NextBernoulli(r.duplicate)) {
      dec.dup_delays.push_back(SampleDelay(rng, r.delay_min, r.delay_max));
    }
    if (rng.NextBernoulli(r.delay)) {
      dec.extra_delay += SampleDelay(rng, r.delay_min, r.delay_max);
    }
  }
  return dec;
}

SimTime FaultInjector::AdjustForStall(NodeId dst, SimTime deliver_at) const {
  SimTime t = deliver_at;
  // A deferred delivery can land inside a later window (periodic stalls), so iterate to a
  // fixpoint; each pass moves t strictly forward, and windows are finite, so this terminates.
  for (bool moved = true; moved;) {
    moved = false;
    for (const StallSpec& s : plan_.stalls) {
      if (s.node != dst || s.duration <= 0 || t < s.first) {
        continue;
      }
      SimTime window_start = s.first;
      if (s.period > 0) {
        window_start = s.first + ((t - s.first) / s.period) * s.period;
      } else if (t >= s.first + s.duration) {
        continue;
      }
      if (t >= window_start && t < window_start + s.duration) {
        t = window_start + s.duration;
        moved = true;
      }
    }
  }
  return t;
}

}  // namespace dfil::sim
