// Figure 5: Jacobi iteration, 256x256, eps = 1e-3, 360 iterations. Sequential paper time: 215 s.
//
// Expected shape: both programs scale well; DF (implicit-invalidate, 3 pools) stays within ~10%
// of CG because the edge-page fetches overlap with the interior pool's computation.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/apps/jacobi.h"

int main(int argc, char** argv) {
  using namespace dfil;
  const bench::BenchArgs args = bench::ParseBenchArgs(argc, argv);
  apps::JacobiParams p;
  p.n = 256;
  p.iterations = args.quick ? 60 : 360;
  p.pools = 3;

  bench::Header("Figure 5: Jacobi iteration, 256x256, " + std::to_string(p.iterations) +
                " iterations (paper: 360 iterations, sequential 215 s)");

  apps::AppRun seq = apps::RunJacobiSeq(p, bench::PaperConfig(1));
  std::printf("sequential: %.1f s (paper 215 s), final residual %.6g\n", seq.seconds(),
              seq.checksum);

  const double scale = p.iterations / 360.0;  // paper numbers prorated in quick mode
  const double paper_cg[] = {215, 98.1, 53.1, 35.8};
  const double paper_df[] = {212, 102, 59.8, 38.5};
  const int node_counts[] = {1, 2, 4, 8};
  std::vector<bench::SpeedupRow> rows;
  for (int i = 0; i < 4; ++i) {
    const int nodes = node_counts[i];
    if (args.nodes > 0 && nodes != args.nodes) {
      continue;
    }
    core::ClusterConfig cfg = bench::PaperConfig(nodes);
    cfg.dsm.pcp = dsm::Pcp::kImplicitInvalidate;
    args.Apply(cfg);
    apps::AppRun cg = apps::RunJacobiCg(p, bench::PaperConfig(nodes));
    apps::AppRun df = apps::RunJacobiDf(p, cfg);
    DFIL_CHECK(cg.report.completed) << cg.report.deadlock_report;
    DFIL_CHECK(df.report.completed) << df.report.deadlock_report;
    DFIL_CHECK_EQ(df.checksum, seq.checksum);
    rows.push_back(bench::SpeedupRow{nodes, cg.seconds(), df.seconds(), paper_cg[i] * scale,
                                     paper_df[i] * scale, seq.seconds(), 215.0 * scale});
    if (nodes == 8) {
      uint64_t impl = 0, inv_msgs = 0, rf = 0;
      for (const auto& nr : df.report.nodes) {
        impl += nr.dsm.implicit_invalidations;
        inv_msgs += nr.dsm.invalidations_sent;
        rf += nr.dsm.read_faults;
      }
      std::printf("notes (8 nodes, DF): implicit invalidations %llu, invalidation MESSAGES %llu "
                  "(implicit-invalidate sends none), read faults %llu\n",
                  static_cast<unsigned long long>(impl),
                  static_cast<unsigned long long>(inv_msgs),
                  static_cast<unsigned long long>(rf));
      bench::EmitMetrics(df.report, "jacobi_df8", &args, "jacobi");
    }
  }
  bench::PrintSpeedupTable(rows);
  bench::JsonReport jr("jacobi");
  jr.Scalar("n", p.n);
  jr.Scalar("iterations", p.iterations);
  jr.Scalar("sequential_s", seq.seconds());
  bench::EmitSpeedupRows(&jr, rows);
  jr.Write();
  return 0;
}
